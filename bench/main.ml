(* The benchmark harness.

   Part 1 regenerates every table of the paper's evaluation section
   (Tables 1-12 — the paper has no figures) and prints measured values
   next to the paper's, with a per-table shape score.  The parallel
   regeneration schedules individual simulation runs (not whole tables)
   across the pool, so its output is byte-identical to the serial run
   by construction; the harness exits non-zero if it is not.

   Part 2 measures the event core in steady state — events/sec and
   minor words/event for a bare engine tick loop and for a Resource
   service loop.  Both loops use preallocated continuations so the
   harness itself allocates nothing per event and the numbers measure
   the core, not the benchmark.

   Part 3 exercises the content-addressed run cache: it counts how many
   of the suite's runs collapse onto shared digests (the dedup ratio),
   then times a cold regeneration that populates a fresh on-disk store
   against a warm one that replays it, asserting the two renders are
   byte-identical.

   Part 4 measures the storage half (Storage_bench): per-engine
   committed-txns/sec under the 2PL scheduler, the wakeup scheduler
   against its pre-overhaul polling version head-to-head (with an
   equivalence gate on the reports), recovery wall time vs log length,
   vs worker-domain count and vs fuzzy-checkpoint age (every recovery
   point fingerprint-gated against the serial reference replay), the
   log-format head-to-head (physical full-image vs delta vs operation
   logging: log bytes per committed txn, append cost, replay wall, all
   gated on cross-format fingerprint equivalence and a >= 2x delta
   log-volume reduction), the
   open-loop transaction server (Poisson offered-load sweep through the
   group-commit pipeline, tail latency and sustained throughput, plus a
   grouped-vs-eager head-to-head gated on a >= 2x speedup and on
   recovered-state equivalence), and buffer-pool / journal
   microbenchmarks.

   Part 5 runs Bechamel micro-benchmarks of the substrate primitives.
   [--fast] skips parts that exist for reporting (charts, ablations,
   Bechamel) and keeps the timed/validated parts — the CI smoke mode. *)

let separator title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables                                          *)
(* ------------------------------------------------------------------ *)

let timed_serial () =
  Dbm_core.Experiment.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let tables =
    List.map
      (fun i ->
        let t0 = Unix.gettimeofday () in
        let t = Dbm_core.Tables.by_id i in
        (t, (Unix.gettimeofday () -. t0) *. 1000.0))
      (List.init 12 (fun i -> i + 1))
  in
  (tables, (Unix.gettimeofday () -. t0) *. 1000.0)

(* One timed regeneration through the pool: the individual runs are
   fanned out first (filling the memo cache), the tables assembled
   serially from cache hits. *)
let timed_parallel pool =
  Dbm_core.Experiment.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let tables = Dbm_core.Tables.all ~pool () in
  (tables, (Unix.gettimeofday () -. t0) *. 1000.0)

let render_all tables = String.concat "" (List.map Dbm_core.Report.to_string tables)

type table_report = {
  serial_ms : float;
  parallel_ms : float;
  jobs_requested : int;
  jobs_measured : int; (* the pool size of the timed parallel run *)
  oversubscribed : bool; (* jobs_measured exceeds the host's cores *)
  scheduling_efficiency : float; (* parallel wall / (serial wall / jobs) *)
  byte_identical_j2 : bool;
  byte_identical_j4 : bool;
  overall_score : float;
  per_table : (string * float * float) list; (* id, shape score, wall ms *)
  top_runs : Dbm_core.Experiment.observation list; (* 10 slowest serial runs *)
}

let run_tables ~jobs ~allow_oversubscribe () =
  separator "Reproduction of Agrawal & DeWitt (1985), Tables 1-12";
  Printf.printf "(each cell: measured [paper]; all times in ms)\n";
  Dbm_core.Experiment.reset_profile ();
  let serial, serial_ms = timed_serial () in
  (* The serial pass just populated the cost model, so every parallel
     pass below schedules from observed walls, not priors. *)
  let top_runs =
    let open Dbm_core.Experiment in
    profile ()
    |> List.sort (fun a b -> Float.compare b.wall_ms a.wall_ms)
    |> List.filteri (fun i _ -> i < 10)
  in
  let serial_render = render_all (List.map fst serial) in
  let host = Dbm_util.Pool.default_jobs () in
  (* A 1-core host would clamp every pool to one domain and report no
     parallel metrics at all (BENCH_3 emitted nulls); measure an
     oversubscribed 2-domain run instead and say so. *)
  let effective = if allow_oversubscribe then jobs else min jobs host in
  let jobs_measured, oversubscribed =
    if effective > 1 then (effective, effective > host) else (2, true)
  in
  let timed_at n = Dbm_util.Pool.with_pool ~jobs:n ~allow_oversubscribe:true timed_parallel in
  let par_tables, parallel_ms = timed_at jobs_measured in
  let par_render = render_all par_tables in
  (* Determinism gate at jobs in {1, 2, 4}: the serial render is the
     jobs=1 reference; reuse the timed render when the size matches. *)
  let render_at n =
    if n = jobs_measured then par_render else render_all (fst (timed_at n))
  in
  let byte_identical_j2 = String.equal serial_render (render_at 2) in
  let byte_identical_j4 = String.equal serial_render (render_at 4) in
  let scheduling_efficiency = parallel_ms /. (serial_ms /. float_of_int jobs_measured) in
  let per_table =
    List.map
      (fun (t, serial_wall_ms) ->
        print_newline ();
        print_string (Dbm_core.Report.to_string t);
        let score = Dbm_core.Report.mean_abs_log_ratio t in
        Printf.printf "shape score (mean |log measured/paper|): %.3f\n" score;
        (t.Dbm_core.Report.id, score, serial_wall_ms))
      serial
  in
  separator "Shape summary";
  List.iter (fun (id, s, _) -> Printf.printf "%-9s %.3f\n" id s) per_table;
  let overall_score =
    List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 per_table
    /. float_of_int (List.length per_table)
  in
  Printf.printf "%-9s %.3f  (0 = exact; 0.7 ~ 2x average miss)\n" "overall" overall_score;
  separator "Table regeneration wall clock";
  Printf.printf "serial (1 job): %.0f ms\n" serial_ms;
  Printf.printf "%d jobs (of %d requested%s): %.0f ms  (%.2fx)\n" jobs_measured jobs
    (if oversubscribed then "; oversubscribed" else "")
    parallel_ms (serial_ms /. parallel_ms);
  Printf.printf
    "scheduling efficiency (parallel wall / ideal wall at %d jobs): %.2f  (1.0 = perfect \
     packing%s)\n"
    jobs_measured scheduling_efficiency
    (if oversubscribed then "; ~jobs expected when oversubscribed on fewer cores" else "");
  Printf.printf "byte-identical to serial at 2 jobs: %b; at 4 jobs: %b\n" byte_identical_j2
    byte_identical_j4;
  separator "Slowest runs (serial pass, cost-model estimate vs observed)";
  List.iter
    (fun (o : Dbm_core.Experiment.observation) ->
      Printf.printf "%-13s %-44s %9.3f ms (est. %9.3f)\n"
        (String.sub o.Dbm_core.Experiment.obs_digest 0 12)
        o.Dbm_core.Experiment.obs_label o.Dbm_core.Experiment.wall_ms
        o.Dbm_core.Experiment.estimate_ms)
    top_runs;
  {
    serial_ms;
    parallel_ms;
    jobs_requested = jobs;
    jobs_measured;
    oversubscribed;
    scheduling_efficiency;
    byte_identical_j2;
    byte_identical_j4;
    overall_score;
    per_table;
    top_runs;
  }

(* ------------------------------------------------------------------ *)
(* Per-run major-heap allocation: fresh state vs recycled arenas       *)
(* ------------------------------------------------------------------ *)

type arena_report = { major_fresh : float; major_arena : float }

(* One full serial regeneration per mode, major words divided by the
   simulations actually computed.  Fresh first: its throwaway engines
   and resource pools are exactly what the arena path recycles. *)
let run_arena_alloc () =
  separator "Per-run major-heap allocation (arena recycling)";
  let measure ~recycle =
    Dbm_sim.Arena.set_enabled recycle;
    Dbm_core.Experiment.clear_cache ();
    Dbm_core.Experiment.reset_counters ();
    Gc.full_major ();
    let s0 = Gc.quick_stat () in
    ignore (Dbm_core.Tables.all ());
    let s1 = Gc.quick_stat () in
    Dbm_sim.Arena.set_enabled true;
    let computed = (Dbm_core.Experiment.counters ()).Dbm_core.Experiment.computed in
    (s1.Gc.major_words -. s0.Gc.major_words) /. float_of_int (max 1 computed)
  in
  let major_fresh = measure ~recycle:false in
  let major_arena = measure ~recycle:true in
  Printf.printf "fresh state per run:  %10.0f major words\n" major_fresh;
  Printf.printf "arena reuse per run:  %10.0f major words  (%.1f%% reduction)\n" major_arena
    (100.0 *. (1.0 -. (major_arena /. major_fresh)));
  { major_fresh; major_arena }

(* Sweep shapes, at a glance. *)
let run_charts () =
  separator "Sweep shapes";
  let cell_of table ~row ~col =
    let t = Dbm_core.Tables.by_id table in
    let r = List.nth t.Dbm_core.Report.rows row in
    (List.nth r.Dbm_core.Report.cells col).Dbm_core.Report.measured
  in
  Printf.printf "\nTable 3: execution time per page vs number of log disks (cyclic):\n";
  print_string
    (Dbm_core.Report.ascii_bars
       (List.init 5 (fun i ->
            (Printf.sprintf "%d log disk%s" (i + 1) (if i > 0 then "s" else ""),
             cell_of 3 ~row:i ~col:0))
       @ [ ("no logging", cell_of 3 ~row:5 ~col:0) ]));
  Printf.printf "\nTable 11: execution time per page vs differential size (Conventional-Random):\n";
  print_string
    (Dbm_core.Report.ascii_bars
       (List.mapi
          (fun i label -> (label, cell_of 11 ~row:0 ~col:i))
          [ "bare"; "10%"; "15%"; "20%" ]))

let run_ablations ~jobs ~allow_oversubscribe () =
  separator "Ablations (design-choice experiments beyond the paper)";
  List.iter
    (fun t ->
      print_newline ();
      print_string (Dbm_core.Report.to_string t))
    (Dbm_util.Pool.with_pool ~jobs ~allow_oversubscribe (fun pool ->
         Dbm_core.Ablations.all ~pool ()))

(* ------------------------------------------------------------------ *)
(* Part 2: event-core steady state                                     *)
(* ------------------------------------------------------------------ *)

type event_core = {
  tick_events_per_sec : float;
  tick_minor_words_per_event : float;
  resource_events_per_sec : float;
  resource_minor_words_per_event : float;
}

let run_event_core () =
  separator "Event core (steady state, preallocated continuations)";
  (* A self-rescheduling chain: one live event, recycled forever.  The
     single [tick] closure is allocated before measurement starts. *)
  let e = Dbm_sim.Engine.create () in
  let n = 2_000_000 in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired < n then ignore (Dbm_sim.Engine.schedule e ~delay:1.0 tick)
  in
  ignore (Dbm_sim.Engine.schedule e ~delay:1.0 tick);
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Dbm_sim.Engine.run e;
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  let tick_events_per_sec = float_of_int n /. dt in
  let tick_minor_words_per_event =
    (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int n
  in
  Printf.printf "engine tick loop:    %10.0f events/s, %5.2f minor words/event\n"
    tick_events_per_sec tick_minor_words_per_event;
  (* Four customers cycling through a 2-server resource: exercises the
     queue, the per-server finishers and the recycled think-time events.
     The three continuations are allocated once, before measurement. *)
  let e = Dbm_sim.Engine.create () in
  let r = Dbm_sim.Resource.create e ~name:"core-bench" ~servers:2 () in
  let target = 1_000_000 in
  let rec submit_next () =
    if Dbm_sim.Resource.completed r < target then
      Dbm_sim.Resource.submit r ~service:3.0 k_done
  and k_done () = ignore (Dbm_sim.Engine.schedule e ~delay:1.0 k_think)
  and k_think () = submit_next () in
  for _ = 1 to 4 do
    submit_next ()
  done;
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Dbm_sim.Engine.run e;
  let dt = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  (* one service completion plus one think-time event per job *)
  let events = float_of_int (2 * target) in
  let resource_events_per_sec = events /. dt in
  let resource_minor_words_per_event = (s1.Gc.minor_words -. s0.Gc.minor_words) /. events in
  Printf.printf "resource loop:       %10.0f events/s, %5.2f minor words/event\n"
    resource_events_per_sec resource_minor_words_per_event;
  {
    tick_events_per_sec;
    tick_minor_words_per_event;
    resource_events_per_sec;
    resource_minor_words_per_event;
  }

(* ------------------------------------------------------------------ *)
(* Part 3: content-addressed run cache                                 *)
(* ------------------------------------------------------------------ *)

type cache_report = {
  total_runs : int; (* requests across tables + ablations + extensions *)
  unique_runs : int; (* distinct digests among them *)
  cold_ms : float; (* tables regenerated into an empty disk cache *)
  warm_ms : float; (* tables replayed from that disk cache *)
  warm_disk_hits : int;
  cache_byte_identical : bool;
}

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let run_cache () =
  separator "Content-addressed run cache";
  let reqs =
    Dbm_core.Tables.runs () @ Dbm_core.Ablations.runs () @ Dbm_core.Extensions.runs ()
  in
  let total_runs = List.length reqs in
  let unique_runs = List.length (Dbm_core.Experiment.dedup reqs) in
  Printf.printf "suite requests: %d runs, %d unique digests (%.1f%% deduped)\n"
    total_runs unique_runs
    (100.0 *. float_of_int (total_runs - unique_runs) /. float_of_int total_runs);
  (* Cold vs warm regeneration through a scratch on-disk store.  Both
     runs go through the same serial [Tables.all], so any wall-clock
     difference is the cache, and the renders must match exactly. *)
  let dir = Printf.sprintf "_bench_cache.%d.tmp" (Unix.getpid ()) in
  rm_rf dir;
  Dbm_core.Experiment.enable_disk_cache ~dir;
  let timed_render () =
    Dbm_core.Experiment.clear_cache ();
    Dbm_core.Experiment.reset_counters ();
    let t0 = Unix.gettimeofday () in
    let tables = Dbm_core.Tables.all () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (render_all tables, ms, Dbm_core.Experiment.counters ())
  in
  let cold_render, cold_ms, cold_counters = timed_render () in
  let warm_render, warm_ms, warm_counters = timed_render () in
  Dbm_core.Experiment.disable_disk_cache ();
  Dbm_core.Experiment.clear_cache ();
  rm_rf dir;
  let cache_byte_identical = String.equal cold_render warm_render in
  Printf.printf "cold regeneration (empty store): %.1f ms (%d computed)\n" cold_ms
    cold_counters.Dbm_core.Experiment.computed;
  Printf.printf "warm regeneration (full store):  %.1f ms (%d disk hits, %d computed)\n"
    warm_ms warm_counters.Dbm_core.Experiment.disk_hits
    warm_counters.Dbm_core.Experiment.computed;
  Printf.printf "warm speedup: %.1fx; warm output byte-identical to cold: %b\n"
    (cold_ms /. warm_ms) cache_byte_identical;
  {
    total_runs;
    unique_runs;
    cold_ms;
    warm_ms;
    warm_disk_hits = warm_counters.Dbm_core.Experiment.disk_hits;
    cache_byte_identical;
  }

(* ------------------------------------------------------------------ *)
(* Part 4: storage-half throughput                                     *)
(* ------------------------------------------------------------------ *)

let run_storage_bench ~allow_oversubscribe () =
  separator "Storage half (recovery engines, 2PL scheduler, substrate)";
  let b =
    Dbm_storage.Storage_bench.run ~jobs:[ 1; 2; 4 ] ~allow_oversubscribe
      ~now:Unix.gettimeofday ()
  in
  let open Dbm_storage.Storage_bench in
  Printf.printf "contended scheduler (%d scripts): polling %.2f ms -> wakeup %.2f ms (%.1fx, reports %s)\n"
    b.sched_txns b.sched_naive_ms b.sched_opt_ms b.sched_speedup
    (if b.sched_equivalent then "identical" else "DIVERGED");
  Printf.printf "committed txns/sec (low | high contention):\n";
  List.iter
    (fun e ->
      Printf.printf "  %-22s %10.0f | %10.0f  (%d restarts)\n" e.engine e.low_tps e.high_tps
        e.high_restarts)
    b.engines;
  Printf.printf "recovery: %d records %.2f ms; %d records %.2f ms (ratio %.2f)\n"
    b.recovery_records_l b.recovery_wall_l_ms b.recovery_records_2l b.recovery_wall_2l_ms
    b.recovery_wall_ratio;
  Printf.printf "parallel recovery (%d records):\n" b.recovery_records_l;
  List.iter
    (fun p ->
      Printf.printf "  %d job%s%s %8.2f ms  (%s)\n" p.rj_jobs
        (if p.rj_jobs > 1 then "s" else " ")
        (if p.rj_oversubscribed then " [oversubscribed]" else "")
        p.rj_wall_ms
        (if p.rj_equivalent then "state identical to serial reference" else "STATE DIVERGED"))
    b.recovery_jobs;
  Printf.printf "  best parallel speedup over serial: %.2fx\n" b.recovery_parallel_speedup;
  Printf.printf "fuzzy-checkpointed recovery (serial replay, same committed work):\n";
  List.iter
    (fun p ->
      Printf.printf "  checkpoint after %3.0f%% of commits: %7d records %8.2f ms  (%s)\n"
        (100. *. p.ck_fraction) p.ck_records p.ck_wall_ms
        (if p.ck_equivalent then "state identical to full replay" else "STATE DIVERGED"))
    b.recovery_ckpt;
  Printf.printf "  newest checkpoint vs full replay: %.2fx cheaper\n" b.recovery_ckpt_speedup;
  Printf.printf "log formats (same committed workload; %d txns):\n"
    (match b.log_formats with p :: _ -> p.lf_committed_txns | [] -> 0);
  List.iter
    (fun p ->
      Printf.printf
        "  %-9s %8d records %10d bytes  %8.1f B/txn  append %7.0f ns/rec  replay %7.2f ms \
         serial, %7.2f ms parallel  (%s)\n"
        p.lf_format p.lf_records p.lf_log_bytes p.lf_bytes_per_txn p.lf_append_ns_per_record
        p.lf_replay_wall_ms p.lf_replay_parallel_ms
        (if p.lf_equivalent then "state identical to physical reference" else "STATE DIVERGED"))
    b.log_formats;
  Printf.printf "  log volume reduction over physical: delta %.1fx, oplog %.1fx\n"
    b.log_delta_reduction b.log_oplog_reduction;
  Printf.printf "open-loop server (simulated time, group commit, mpl 64):\n";
  List.iter
    (fun s ->
      Printf.printf "  %s:\n" s.sv_engine;
      List.iter
        (fun p ->
          Printf.printf
            "    offered %8.0f tps -> sustained %8.0f tps  p50 %8.1f us  p99 %9.1f us  \
             p999 %9.1f us  (%d forces, %d restarts, queue peak %d)\n"
            p.sv_offered_tps p.sv_sustained_tps p.sv_p50_us p.sv_p99_us p.sv_p999_us
            p.sv_forces p.sv_restarts p.sv_max_queued)
        s.sv_sweep;
      Printf.printf
        "    top load head-to-head: eager %8.0f tps (p99 %9.1f us) -> grouped %8.0f tps \
         (p99 %9.1f us)  %.1fx, recovery %s\n"
        s.sv_eager_tps s.sv_eager_p99_us s.sv_grouped_tps s.sv_grouped_p99_us s.sv_speedup
        (if s.sv_equivalent then "equivalent" else "DIVERGED"))
    b.server;
  Printf.printf "  worst grouped/eager speedup across engines: %.2fx\n" b.server_speedup;
  Printf.printf "read-heavy snapshot sweep (eager commits, Zipfian pages, simulated time):\n";
  List.iter
    (fun e ->
      Printf.printf "  %s:\n" e.re_engine;
      List.iter
        (fun p ->
          Printf.printf "    read fraction %.2f%s:\n" p.rf_read_frac
            (if p.rf_heavy_tail then " [Pareto sizes]" else "");
          List.iter
            (fun m ->
              Printf.printf
                "      %-8s %8.0f tps  %6d locks  %3d restarts (%d ro)  ro p50/p99 %8.1f/%9.1f us  \
                 rw p50/p99 %8.1f/%9.1f us\n"
                m.rm_mode m.rm_sustained_tps m.rm_lock_acquires m.rm_restarts m.rm_ro_restarts
                m.rm_ro_p50_us m.rm_ro_p99_us m.rm_rw_p50_us m.rm_rw_p99_us)
            p.rf_modes;
          Printf.printf "      snapshot over xlock: %.2fx, recovered scans %s\n"
            p.rf_snapshot_speedup
            (if p.rf_equivalent then "identical across modes" else "DIVERGED"))
        e.re_points)
    b.read_heavy;
  Printf.printf
    "  worst snapshot/xlock speedup near read fraction 0.9: %.2fx (%d ro restarts on the \
     snapshot path)\n"
    b.read_speedup b.read_ro_restarts;
  Printf.printf "sharded execution (zero-cross workload, group commit, simulated time):\n";
  List.iter
    (fun p ->
      Printf.printf
        "  %d shard%s%s %8.0f tps  makespan %10.0f us  p99 %9.1f us  (%d restarts, %d in \
         doubt, scan %s%s)\n"
        p.sh_shards
        (if p.sh_shards > 1 then "s" else " ")
        (if p.sh_oversubscribed then " [oversubscribed]" else "")
        p.sh_sustained_tps p.sh_makespan_us p.sh_p99_us p.sh_restarts p.sh_in_doubt
        (if p.sh_scan_equal then "identical" else "DIVERGED")
        (if p.sh_shards = 1 then
           if p.sh_serial_identical then ", bit-identical to Server.run" else ", SERIAL DRIFT"
         else ""))
    b.shard.sb_points;
  Printf.printf "  scaling at the top shard count: %.2fx over 1 shard\n" b.shard.sb_scaling;
  Printf.printf "cross-shard fraction sweep (two-phase commit at the top shard count):\n";
  List.iter
    (fun c ->
      Printf.printf
        "  cross %.2f: %4d cross txns  %8.0f tps  cross p99 %9.1f us  (%d in doubt, scan %s)\n"
        c.cf_cross_frac c.cf_cross_txns c.cf_sustained_tps c.cf_p99_cross_us c.cf_in_doubt
        (if c.cf_scan_equal then "identical" else "DIVERGED"))
    b.shard.sb_cross;
  Printf.printf "buffer pool get: %.0f ns hit, %.0f ns miss\n" b.pool_hit_ns b.pool_miss_ns;
  Printf.printf "journal: %.2fM appends/s, %.2fM appends/s with sync every 64\n"
    (b.journal_append_per_sec /. 1e6)
    (b.journal_append_sync_per_sec /. 1e6);
  b

(* ------------------------------------------------------------------ *)
(* Part 5: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Table 1/2 dominant primitive: assembling and writing log pages ->
   the event engine + drive service path. *)
let bench_event_engine =
  Test.make ~name:"table1-2: event engine schedule+run (1k events)"
    (Staged.stage (fun () ->
         let e = Dbm_sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Dbm_sim.Engine.schedule e ~delay:(float_of_int (i mod 17)) (fun () -> ()))
         done;
         Dbm_sim.Engine.run e))

(* Table 3: log fragment distribution -> PRNG + selection. *)
let bench_prng =
  Test.make ~name:"table3: prng draws (10k)"
    (Staged.stage (fun () ->
         let rng = Dbm_util.Prng.create 1 in
         let acc = ref 0 in
         for _ = 1 to 10_000 do
           acc := !acc + Dbm_util.Prng.int rng 5
         done;
         ignore !acc))

(* Table 4/5: page-table indirection -> drive access-time model. *)
let bench_drive_model =
  Test.make ~name:"table4-5: conventional drive service (256 pages)"
    (Staged.stage (fun () ->
         let e = Dbm_sim.Engine.create () in
         let d =
           Dbm_disk.Drive.create e ~params:Dbm_disk.Params.ibm_3350
             ~layout:Dbm_disk.Layout.Sequential ~name:"bench" ()
         in
         for p = 0 to 255 do
           Dbm_disk.Drive.submit d Dbm_disk.Drive.Read ~pages:[ p * 31 mod 60000 ] (fun () -> ())
         done;
         Dbm_sim.Engine.run e))

(* Table 6: page-table buffer -> LRU operations. *)
let bench_lru =
  Test.make ~name:"table6: lru find/add (10k ops, cap 50)"
    (Staged.stage (fun () ->
         let l = Dbm_util.Lru.create ~capacity:50 () in
         for i = 0 to 9_999 do
           let k = i * 7919 mod 200 in
           match Dbm_util.Lru.find l k with
           | Some _ -> ()
           | None -> ignore (Dbm_util.Lru.add l k k)
         done))

(* Table 7/8: scrambled placement -> layout permutation. *)
let bench_layout =
  Test.make ~name:"table7-8: scrambled locate (10k pages)"
    (Staged.stage (fun () ->
         let layout = Dbm_disk.Layout.Scrambled 11 in
         let acc = ref 0 in
         for p = 0 to 9_999 do
           acc :=
             !acc + (Dbm_disk.Layout.locate Dbm_disk.Params.ibm_3350 layout ~page:p).Dbm_disk.Layout.cylinder
         done;
         ignore !acc))

(* Table 9-11: differential files -> page record set operations. *)
let bench_page_ops =
  Test.make ~name:"table9-11: page update/lookup (1k ops)"
    (Staged.stage (fun () ->
         let p = Dbm_storage.Page.empty ~page_size:2048 in
         for i = 0 to 999 do
           Dbm_storage.Page.update p ~key:(i mod 16) ~value:(Some "value");
           ignore (Dbm_storage.Page.lookup p ~key:(i mod 16))
         done))

(* A page holding 64 records, scanned without materializing the record
   list: the minor-allocation estimate proves lookup allocates only the
   result (a handful of words), not the whole record set. *)
let lookup_page =
  let p = Dbm_storage.Page.empty ~page_size:2048 in
  Dbm_storage.Page.set_records p (List.init 64 (fun i -> (i, Printf.sprintf "value-%02d" i)));
  p

let bench_page_lookup =
  Test.make ~name:"page lookup, 64-record page (alloc-free scan)"
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Dbm_storage.Page.lookup lookup_page ~key:48))))

(* Table 12 (grand comparison): a whole miniature simulation run. *)
let bench_mini_simulation =
  Test.make ~name:"table12: full machine run (5 txns)"
    (Staged.stage (fun () ->
         let machine = { Dbm_machine.Config.paper_base with Dbm_machine.Config.db_pages = 16384 } in
         let workload =
           Dbm_workload.Workload.generate
             {
               Dbm_workload.Workload.default with
               Dbm_workload.Workload.n_transactions = 5;
               max_pages = 40;
               db_pages = 16384;
             }
         in
         ignore
           (Dbm_machine.Machine.run ~config:machine
              ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
              ~workload)))

(* Storage-engine commit paths (the functional counterparts). *)
let bench_engine (module E : Dbm_storage.Kv.S) =
  Test.make ~name:(Printf.sprintf "engine %s: 32-put txn commit" E.engine_name)
    (Staged.stage (fun () ->
         let e = E.create ~n_keys:64 () in
         let t = E.begin_txn e in
         for k = 0 to 31 do
           E.put t k "benchmark-value"
         done;
         E.commit t))

let bench_relation_select =
  Test.make ~name:"relation: optimal select over (B u A) - D (400 tuples)"
    (Staged.stage
       (let r =
          Dbm_relation.Diff_relation.create ~tuples_per_page:8
            (List.init 400 (fun i -> { Dbm_relation.Diff_relation.key = i; value = "v" }))
        in
        List.iteri
          (fun i () ->
            if i mod 3 = 0 then Dbm_relation.Diff_relation.delete r ~key:(i * 7 mod 400)
            else
              Dbm_relation.Diff_relation.insert r
                { Dbm_relation.Diff_relation.key = i * 11 mod 400; value = "u" })
          (List.init 40 (fun _ -> ()));
        fun () ->
          ignore
            (Dbm_relation.Diff_relation.select r ~strategy:Dbm_relation.Diff_relation.Optimal
               (fun t -> t.Dbm_relation.Diff_relation.key mod 7 = 0))))

let bench_wal_codec =
  Test.make ~name:"wal encode+decode (full-page images)"
    (Staged.stage (fun () ->
         let r =
           Dbm_storage.Wal.Update
             {
               lsn = 12;
               txn = 3;
               page = 9;
               before = Bytes.make 1024 'b';
               after = Bytes.make 1024 'a';
             }
         in
         ignore (Dbm_storage.Wal.decode (Dbm_storage.Wal.encode r))))

let benchmarks =
  [
    bench_event_engine;
    bench_prng;
    bench_drive_model;
    bench_lru;
    bench_layout;
    bench_page_ops;
    bench_page_lookup;
    bench_mini_simulation;
    bench_relation_select;
    bench_wal_codec;
    bench_engine (module Dbm_storage.Engine_log);
    bench_engine (module Dbm_storage.Engine_shadow);
    bench_engine (module Dbm_storage.Engine_versel);
    bench_engine (module Dbm_storage.Engine_overwrite.No_undo);
    bench_engine (module Dbm_storage.Engine_overwrite.No_redo);
    bench_engine (module Dbm_storage.Engine_diff);
  ]

let bench_cfg () = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 200) ()

(* Per-run estimate of one instance (ns or minor words) for one test. *)
let estimate instance test =
  let results =
    Benchmark.all (bench_cfg ()) [ instance ]
      (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
  in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance results
  in
  Hashtbl.fold
    (fun _ result acc ->
      match Analyze.OLS.estimates result with Some [ est ] -> Some est | _ -> acc)
    ols None

let run_benchmarks () =
  separator "Micro-benchmarks (Bechamel)";
  List.iter
    (fun test ->
      let results =
        Benchmark.all (bench_cfg ()) Instance.[ monotonic_clock ]
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-55s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-55s (no estimate)\n" name)
        ols)
    benchmarks;
  let lookup_ns = estimate Instance.monotonic_clock bench_page_lookup in
  let lookup_minor = estimate Instance.minor_allocated bench_page_lookup in
  (match lookup_minor with
  | Some words ->
    Printf.printf "%-55s %12.1f minor words/run\n" "page lookup, 64-record page (allocation)"
      words
  | None -> ());
  (lookup_ns, lookup_minor)

(* ------------------------------------------------------------------ *)
(* BENCH_7.json: the perf trajectory record for later PRs              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let storage_json (b : Dbm_storage.Storage_bench.t) =
  let open Dbm_storage.Storage_bench in
  let engines =
    List.map
      (fun e ->
        Printf.sprintf
          "      {\"engine\": \"%s\", \"low_tps\": %.0f, \"low_restarts\": %d, \"high_tps\": \
           %.0f, \"high_restarts\": %d}"
          (json_escape e.engine) e.low_tps e.low_restarts e.high_tps e.high_restarts)
      b.engines
  in
  String.concat ""
    [
      "  \"storage\": {\n";
      Printf.sprintf "    \"scale\": %d,\n" b.scale;
      Printf.sprintf "    \"sched_contended_scripts\": %d,\n" b.sched_txns;
      Printf.sprintf "    \"sched_naive_wall_ms\": %.4f,\n" b.sched_naive_ms;
      Printf.sprintf "    \"sched_opt_wall_ms\": %.4f,\n" b.sched_opt_ms;
      Printf.sprintf "    \"sched_speedup\": %.2f,\n" b.sched_speedup;
      Printf.sprintf "    \"sched_reports_equivalent\": %b,\n" b.sched_equivalent;
      "    \"engines\": [\n";
      String.concat ",\n" engines;
      "\n    ],\n";
      Printf.sprintf "    \"recovery_txns_l\": %d,\n" b.recovery_txns_l;
      Printf.sprintf "    \"recovery_records_l\": %d,\n" b.recovery_records_l;
      Printf.sprintf "    \"recovery_wall_l_ms\": %.4f,\n" b.recovery_wall_l_ms;
      Printf.sprintf "    \"recovery_records_2l\": %d,\n" b.recovery_records_2l;
      Printf.sprintf "    \"recovery_wall_2l_ms\": %.4f,\n" b.recovery_wall_2l_ms;
      Printf.sprintf "    \"recovery_wall_ratio\": %.4f,\n" b.recovery_wall_ratio;
      "    \"recovery_jobs\": [\n";
      String.concat ",\n"
        (List.map
           (fun p ->
             Printf.sprintf
               "      {\"jobs\": %d, \"oversubscribed\": %b, \"wall_ms\": %.4f, \
                \"equivalent\": %b}"
               p.rj_jobs p.rj_oversubscribed p.rj_wall_ms p.rj_equivalent)
           b.recovery_jobs);
      "\n    ],\n";
      Printf.sprintf "    \"recovery_parallel_speedup\": %.4f,\n" b.recovery_parallel_speedup;
      "    \"recovery_checkpoint\": [\n";
      String.concat ",\n"
        (List.map
           (fun p ->
             Printf.sprintf
               "      {\"fraction\": %.2f, \"records\": %d, \"wall_ms\": %.4f, \
                \"equivalent\": %b}"
               p.ck_fraction p.ck_records p.ck_wall_ms p.ck_equivalent)
           b.recovery_ckpt);
      "\n    ],\n";
      Printf.sprintf "    \"recovery_checkpoint_speedup\": %.4f,\n" b.recovery_ckpt_speedup;
      Printf.sprintf "    \"recovery_equivalent\": %b,\n" b.recovery_equivalent;
      "    \"log_formats\": [\n";
      String.concat ",\n"
        (List.map
           (fun p ->
             Printf.sprintf
               "      {\"format\": \"%s\", \"committed_txns\": %d, \"records\": %d, \
                \"log_bytes\": %d, \"log_bytes_per_txn\": %.2f, \"append_ns_per_record\": \
                %.1f, \"replay_wall_ms\": %.4f, \"replay_parallel_ms\": %.4f, \
                \"equivalent\": %b}"
               (json_escape p.lf_format) p.lf_committed_txns p.lf_records p.lf_log_bytes
               p.lf_bytes_per_txn p.lf_append_ns_per_record p.lf_replay_wall_ms
               p.lf_replay_parallel_ms p.lf_equivalent)
           b.log_formats);
      "\n    ],\n";
      Printf.sprintf "    \"log_delta_reduction\": %.2f,\n" b.log_delta_reduction;
      Printf.sprintf "    \"log_oplog_reduction\": %.2f,\n" b.log_oplog_reduction;
      Printf.sprintf "    \"log_format_equivalent\": %b,\n" b.log_format_equivalent;
      "    \"server\": [\n";
      String.concat ",\n"
        (List.map
           (fun s ->
             String.concat ""
               [
                 Printf.sprintf "      {\"engine\": \"%s\",\n" (json_escape s.sv_engine);
                 "       \"sweep\": [\n";
                 String.concat ",\n"
                   (List.map
                      (fun p ->
                        Printf.sprintf
                          "        {\"offered_tps\": %.0f, \"sustained_tps\": %.1f, \
                           \"completed\": %d, \"p50_us\": %.2f, \"p99_us\": %.2f, \
                           \"p999_us\": %.2f, \"mean_us\": %.2f, \"max_us\": %.2f, \
                           \"restarts\": %d, \"forces\": %d, \"max_queued\": %d}"
                          p.sv_offered_tps p.sv_sustained_tps p.sv_completed p.sv_p50_us
                          p.sv_p99_us p.sv_p999_us p.sv_mean_us p.sv_max_us p.sv_restarts
                          p.sv_forces p.sv_max_queued)
                      s.sv_sweep);
                 "\n       ],\n";
                 Printf.sprintf "       \"eager_tps\": %.1f,\n" s.sv_eager_tps;
                 Printf.sprintf "       \"grouped_tps\": %.1f,\n" s.sv_grouped_tps;
                 Printf.sprintf "       \"group_commit_speedup\": %.2f,\n" s.sv_speedup;
                 Printf.sprintf "       \"eager_p99_us\": %.2f,\n" s.sv_eager_p99_us;
                 Printf.sprintf "       \"grouped_p99_us\": %.2f,\n" s.sv_grouped_p99_us;
                 Printf.sprintf "       \"equivalent\": %b}" s.sv_equivalent;
               ])
           b.server);
      "\n    ],\n";
      Printf.sprintf "    \"server_group_commit_speedup\": %.2f,\n" b.server_speedup;
      Printf.sprintf "    \"server_equivalent\": %b,\n" b.server_equivalent;
      "    \"read_heavy\": [\n";
      String.concat ",\n"
        (List.map
           (fun e ->
             String.concat ""
               [
                 Printf.sprintf "      {\"engine\": \"%s\",\n" (json_escape e.re_engine);
                 "       \"points\": [\n";
                 String.concat ",\n"
                   (List.map
                      (fun p ->
                        String.concat ""
                          [
                            Printf.sprintf
                              "        {\"read_frac\": %.2f, \"heavy_tail\": %b,\n"
                              p.rf_read_frac p.rf_heavy_tail;
                            "         \"modes\": [\n";
                            String.concat ",\n"
                              (List.map
                                 (fun m ->
                                   Printf.sprintf
                                     "          {\"mode\": \"%s\", \"sustained_tps\": %.1f, \
                                      \"restarts\": %d, \"ro_restarts\": %d, \
                                      \"lock_acquires\": %d, \"ro_p50_us\": %.2f, \
                                      \"ro_p99_us\": %.2f, \"rw_p50_us\": %.2f, \
                                      \"rw_p99_us\": %.2f}"
                                     (json_escape m.rm_mode) m.rm_sustained_tps m.rm_restarts
                                     m.rm_ro_restarts m.rm_lock_acquires m.rm_ro_p50_us
                                     m.rm_ro_p99_us m.rm_rw_p50_us m.rm_rw_p99_us)
                                 p.rf_modes);
                            "\n         ],\n";
                            Printf.sprintf "         \"snapshot_speedup\": %.2f,\n"
                              p.rf_snapshot_speedup;
                            Printf.sprintf "         \"equivalent\": %b}" p.rf_equivalent;
                          ])
                      e.re_points);
                 "\n       ]}";
               ])
           b.read_heavy);
      "\n    ],\n";
      Printf.sprintf "    \"read_snapshot_speedup\": %.2f,\n" b.read_speedup;
      Printf.sprintf "    \"read_ro_restarts\": %d,\n" b.read_ro_restarts;
      Printf.sprintf "    \"read_equivalent\": %b,\n" b.read_equivalent;
      "    \"shard\": {\n";
      "      \"points\": [\n";
      String.concat ",\n"
        (List.map
           (fun (p : Dbm_storage.Storage_bench.shard_point) ->
             Printf.sprintf
               "        {\"shards\": %d, \"oversubscribed\": %b, \"sustained_tps\": %.1f, \
                \"makespan_us\": %.1f, \"p99_us\": %.2f, \"restarts\": %d, \
                \"serial_identical\": %b, \"scan_equal\": %b, \"in_doubt\": %d}"
               p.sh_shards p.sh_oversubscribed p.sh_sustained_tps p.sh_makespan_us p.sh_p99_us
               p.sh_restarts p.sh_serial_identical p.sh_scan_equal p.sh_in_doubt)
           b.shard.sb_points);
      "\n      ],\n";
      Printf.sprintf "      \"scaling\": %.2f,\n" b.shard.sb_scaling;
      "      \"cross\": [\n";
      String.concat ",\n"
        (List.map
           (fun (c : Dbm_storage.Storage_bench.cross_point) ->
             Printf.sprintf
               "        {\"cross_frac\": %.2f, \"cross_txns\": %d, \"sustained_tps\": %.1f, \
                \"p99_cross_us\": %.2f, \"scan_equal\": %b, \"in_doubt\": %d}"
               c.cf_cross_frac c.cf_cross_txns c.cf_sustained_tps c.cf_p99_cross_us
               c.cf_scan_equal c.cf_in_doubt)
           b.shard.sb_cross);
      "\n      ],\n";
      Printf.sprintf "      \"equivalent\": %b\n" b.shard.sb_equivalent;
      "    },\n";
      Printf.sprintf "    \"pool_hit_ns\": %.1f,\n" b.pool_hit_ns;
      Printf.sprintf "    \"pool_miss_ns\": %.1f,\n" b.pool_miss_ns;
      Printf.sprintf "    \"journal_append_per_sec\": %.0f,\n" b.journal_append_per_sec;
      Printf.sprintf "    \"journal_append_sync_per_sec\": %.0f\n" b.journal_append_sync_per_sec;
      "  },\n";
    ]

let write_bench_json path (tr : table_report) (core : event_core) (cr : cache_report)
    (ar : arena_report) (sb : Dbm_storage.Storage_bench.t) (lookup_ns, lookup_minor) total_s =
  let buf = Buffer.create 1024 in
  let field_opt name = function
    | None -> Printf.sprintf "  \"%s\": null" name
    | Some v -> Printf.sprintf "  \"%s\": %.1f" name v
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": 10,\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n" (Dbm_util.Pool.default_jobs ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs_requested\": %d,\n" tr.jobs_requested);
  Buffer.add_string buf (Printf.sprintf "  \"jobs_effective\": %d,\n" tr.jobs_measured);
  Buffer.add_string buf (Printf.sprintf "  \"oversubscribed\": %b,\n" tr.oversubscribed);
  Buffer.add_string buf
    (Printf.sprintf "  \"tables_serial_wall_ms\": %.1f,\n" tr.serial_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"tables_parallel_wall_ms\": %.1f,\n" tr.parallel_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"tables_speedup\": %.2f,\n" (tr.serial_ms /. tr.parallel_ms));
  Buffer.add_string buf
    (Printf.sprintf "  \"scheduling_efficiency\": %.4f,\n" tr.scheduling_efficiency);
  Buffer.add_string buf
    (Printf.sprintf "  \"parallel_output_byte_identical\": %b,\n"
       (tr.byte_identical_j2 && tr.byte_identical_j4));
  Buffer.add_string buf
    (Printf.sprintf "  \"byte_identical_jobs2\": %b,\n" tr.byte_identical_j2);
  Buffer.add_string buf
    (Printf.sprintf "  \"byte_identical_jobs4\": %b,\n" tr.byte_identical_j4);
  Buffer.add_string buf
    (Printf.sprintf "  \"major_words_per_run_fresh\": %.1f,\n" ar.major_fresh);
  Buffer.add_string buf
    (Printf.sprintf "  \"major_words_per_run\": %.1f,\n" ar.major_arena);
  Buffer.add_string buf
    (Printf.sprintf "  \"major_words_reduction\": %.4f,\n"
       (1.0 -. (ar.major_arena /. ar.major_fresh)));
  Buffer.add_string buf
    (Printf.sprintf "  \"cost_model_entries\": %d,\n"
       (match Dbm_core.Experiment.cost_model () with
       | Some m -> Dbm_util.Cost_model.size m
       | None -> 0));
  Buffer.add_string buf "  \"top_runs\": [\n";
  let run_rows =
    List.map
      (fun (o : Dbm_core.Experiment.observation) ->
        Printf.sprintf
          "    {\"digest\": \"%s\", \"run\": \"%s\", \"wall_ms\": %.4f, \"estimate_ms\": %.4f}"
          (String.sub o.Dbm_core.Experiment.obs_digest 0 12)
          (json_escape o.Dbm_core.Experiment.obs_label)
          o.Dbm_core.Experiment.wall_ms o.Dbm_core.Experiment.estimate_ms)
      tr.top_runs
  in
  Buffer.add_string buf (String.concat ",\n" run_rows);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.0f,\n" core.tick_events_per_sec);
  Buffer.add_string buf
    (Printf.sprintf "  \"minor_words_per_event\": %.3f,\n" core.tick_minor_words_per_event);
  Buffer.add_string buf
    (Printf.sprintf "  \"resource_events_per_sec\": %.0f,\n" core.resource_events_per_sec);
  Buffer.add_string buf
    (Printf.sprintf "  \"resource_minor_words_per_event\": %.3f,\n"
       core.resource_minor_words_per_event);
  Buffer.add_string buf
    (Printf.sprintf "  \"overall_shape_score\": %.4f,\n" tr.overall_score);
  Buffer.add_string buf (Printf.sprintf "  \"suite_total_runs\": %d,\n" cr.total_runs);
  Buffer.add_string buf (Printf.sprintf "  \"suite_unique_runs\": %d,\n" cr.unique_runs);
  Buffer.add_string buf
    (Printf.sprintf "  \"suite_dedup_ratio\": %.4f,\n"
       (float_of_int cr.total_runs /. float_of_int cr.unique_runs));
  Buffer.add_string buf (Printf.sprintf "  \"cache_cold_wall_ms\": %.4f,\n" cr.cold_ms);
  Buffer.add_string buf (Printf.sprintf "  \"cache_warm_wall_ms\": %.4f,\n" cr.warm_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_warm_speedup\": %.2f,\n" (cr.cold_ms /. cr.warm_ms));
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_warm_disk_hits\": %d,\n" cr.warm_disk_hits);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_output_byte_identical\": %b,\n" cr.cache_byte_identical);
  Buffer.add_string buf "  \"tables\": [\n";
  let rows =
    List.map
      (fun (id, score, wall_ms) ->
        (* %.4f: the fastest tables regenerate in tens of microseconds,
           which %.2f rounded to 0.00/0.01 — a useless trajectory datum. *)
        Printf.sprintf "    {\"id\": \"%s\", \"shape_score\": %.4f, \"wall_ms\": %.4f}" id
          score wall_ms)
      tr.per_table
  in
  Buffer.add_string buf (String.concat ",\n" rows);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf (storage_json sb);
  Buffer.add_string buf (field_opt "page_lookup_ns_per_run" lookup_ns);
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (field_opt "page_lookup_minor_words_per_run" lookup_minor);
  Buffer.add_string buf ",\n";
  Buffer.add_string buf (Printf.sprintf "  \"total_wall_s\": %.1f\n" total_s);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let jobs = ref (max 2 (Dbm_util.Pool.default_jobs ())) in
  let json_path = ref "BENCH_10.json" in
  let fast = ref false in
  let allow_oversubscribe = ref false in
  Arg.parse
    [
      ("--jobs", Arg.Set_int jobs, "N worker domains for table/ablation regeneration");
      ("-j", Arg.Set_int jobs, "N same as --jobs");
      ("--json", Arg.Set_string json_path, "PATH where to write the benchmark record");
      ("--fast", Arg.Set fast, " tables + event core only (CI smoke mode)");
      ( "--allow-oversubscribe",
        Arg.Set allow_oversubscribe,
        " run more domains than cores instead of clamping" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe [--jobs N] [--json PATH] [--fast] [--allow-oversubscribe]";
  if !jobs < 1 then begin
    prerr_endline "--jobs must be >= 1";
    exit 2
  end;
  (* The LPT scheduler needs cost observations to sort by; an in-memory
     model keeps the bench hermetic (no file left behind) while the
     serial pass feeds every parallel pass real walls. *)
  Dbm_core.Experiment.set_cost_model
    (Some (Dbm_util.Cost_model.in_memory ~version:"bench"));
  let t0 = Unix.gettimeofday () in
  let table_report =
    run_tables ~jobs:!jobs ~allow_oversubscribe:!allow_oversubscribe ()
  in
  let core = run_event_core () in
  let arena_report = run_arena_alloc () in
  let cache_report = run_cache () in
  (* The storage half runs even under --fast: CI asserts on its metrics. *)
  let storage_report = run_storage_bench ~allow_oversubscribe:!allow_oversubscribe () in
  let lookup_estimates =
    if !fast then (None, None)
    else begin
      run_charts ();
      run_ablations ~jobs:!jobs ~allow_oversubscribe:!allow_oversubscribe ();
      run_benchmarks ()
    end
  in
  let total_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal wall time: %.1f s\n" total_s;
  write_bench_json !json_path table_report core cache_report arena_report storage_report
    lookup_estimates total_s;
  (* A parallel run that does not reproduce the serial bytes is a
     correctness failure, not a perf datum.  Same for a warm cache
     replay that renders different bytes than the cold computation. *)
  if not (table_report.byte_identical_j2 && table_report.byte_identical_j4) then begin
    prerr_endline "FAIL: parallel table output differs from serial output";
    exit 1
  end;
  if not cache_report.cache_byte_identical then begin
    prerr_endline "FAIL: warm-cache table output differs from cold output";
    exit 1
  end;
  if not storage_report.Dbm_storage.Storage_bench.sched_equivalent then begin
    prerr_endline "FAIL: wakeup scheduler report diverged from the polling reference";
    exit 1
  end;
  (* A parallel or checkpoint-skipping restart that leaves different
     bytes than the serial reference replay is a recovery bug. *)
  if not storage_report.Dbm_storage.Storage_bench.recovery_equivalent then begin
    prerr_endline "FAIL: parallel/checkpointed recovery state diverged from the serial reference";
    exit 1
  end;
  (* Group commit is only worth its durability window if it buys real
     throughput, and only sound if a crash mid-batch recovers to the
     same state the eager path would. *)
  if not storage_report.Dbm_storage.Storage_bench.server_equivalent then begin
    prerr_endline "FAIL: grouped-commit recovered state diverged from the eager reference";
    exit 1
  end;
  if storage_report.Dbm_storage.Storage_bench.server_speedup < 2.0 then begin
    Printf.eprintf "FAIL: group-commit speedup %.2fx below the 2x floor\n"
      storage_report.Dbm_storage.Storage_bench.server_speedup;
    exit 1
  end;
  (* The slimmer log formats are only an optimization if they recover to
     byte-identical state — at every worker-domain count — and actually
     shrink the log. *)
  if not storage_report.Dbm_storage.Storage_bench.log_format_equivalent then begin
    prerr_endline "FAIL: a log format recovered to different state than the physical reference";
    exit 1
  end;
  if storage_report.Dbm_storage.Storage_bench.log_delta_reduction < 2.0 then begin
    Printf.eprintf "FAIL: delta log reduction %.2fx below the 2x floor\n"
      storage_report.Dbm_storage.Storage_bench.log_delta_reduction;
    exit 1
  end;
  (* The snapshot read path is only an optimization if it actually beats
     the lock-everything baseline on read-heavy load, never restarts a
     read-only transaction, and every lock regime crash-recovers to the
     same data. *)
  if not storage_report.Dbm_storage.Storage_bench.read_equivalent then begin
    prerr_endline "FAIL: a read-lock regime recovered to different data than its peers";
    exit 1
  end;
  if storage_report.Dbm_storage.Storage_bench.read_ro_restarts <> 0 then begin
    Printf.eprintf "FAIL: %d read-only restarts on the snapshot path (must be 0)\n"
      storage_report.Dbm_storage.Storage_bench.read_ro_restarts;
    exit 1
  end;
  if storage_report.Dbm_storage.Storage_bench.read_speedup < 2.0 then begin
    Printf.eprintf "FAIL: snapshot read speedup %.2fx below the 2x floor\n"
      storage_report.Dbm_storage.Storage_bench.read_speedup;
    exit 1
  end;
  List.iter
    (fun p ->
      let open Dbm_storage.Storage_bench in
      if not (Float.is_finite p.lf_append_ns_per_record && p.lf_append_ns_per_record > 0.) then begin
        Printf.eprintf "FAIL: %s append throughput came back null\n" p.lf_format;
        exit 1
      end)
    storage_report.Dbm_storage.Storage_bench.log_formats;
  (* Sharded execution is only sound if every shard count and cross
     fraction crash-recovers to the serial engine's data with no
     transaction left in doubt — and only a perf win if the top shard
     count actually scales (skipped when the host can't give each shard
     a real core). *)
  let shard = storage_report.Dbm_storage.Storage_bench.shard in
  if not shard.Dbm_storage.Storage_bench.sb_equivalent then begin
    prerr_endline "FAIL: a sharded run diverged from the serial reference after recovery";
    exit 1
  end;
  let in_doubt =
    List.fold_left
      (fun acc p -> acc + p.Dbm_storage.Storage_bench.sh_in_doubt)
      0 shard.Dbm_storage.Storage_bench.sb_points
    + List.fold_left
        (fun acc c -> acc + c.Dbm_storage.Storage_bench.cf_in_doubt)
        0 shard.Dbm_storage.Storage_bench.sb_cross
  in
  if in_doubt <> 0 then begin
    Printf.eprintf "FAIL: %d transactions left in doubt after sharded recovery (must be 0)\n"
      in_doubt;
    exit 1
  end;
  let top_oversubscribed =
    List.exists
      (fun p -> p.Dbm_storage.Storage_bench.sh_oversubscribed)
      shard.Dbm_storage.Storage_bench.sb_points
  in
  if top_oversubscribed then
    Printf.printf
      "note: shard scaling gate skipped (more shards than cores on this host)\n"
  else if shard.Dbm_storage.Storage_bench.sb_scaling < 1.5 then begin
    Printf.eprintf "FAIL: shard scaling %.2fx below the 1.5x floor\n"
      shard.Dbm_storage.Storage_bench.sb_scaling;
    exit 1
  end
