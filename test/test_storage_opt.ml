(* Equivalence tests for the storage-half data-structure overhaul.

   The optimized lock manager (per-transaction page sets), scheduler
   (wakeup parking) and buffer pool (intrusive LRU list) must make
   decisions indistinguishable from the pre-overhaul algorithms, which
   are preserved verbatim in Dbm_storage.Naive.  The journal's growable
   array must behave like the reference list model under any mix of
   append/sync/crash/truncate, including logs long enough to have blown
   the old non-tail-recursive truncate. *)

module Vdisk = Dbm_storage.Vdisk
module Journal = Dbm_storage.Journal
module Pool = Dbm_storage.Buffer_pool
module Lock = Dbm_storage.Lock_mgr
module Naive = Dbm_storage.Naive
module Scheduler = Dbm_storage.Scheduler
module Kv = Dbm_storage.Kv

let check = Alcotest.check

(* --- lock manager vs the whole-table-fold reference ------------------- *)

type lock_op =
  | Acquire of int * int * Lock.mode
  | Withdraw of int * int
  | Release_all of int

let lock_op_print = function
  | Acquire (t, p, Lock.S) -> Printf.sprintf "A%d:S%d" t p
  | Acquire (t, p, Lock.X) -> Printf.sprintf "A%d:X%d" t p
  | Withdraw (t, p) -> Printf.sprintf "W%d:%d" t p
  | Release_all t -> Printf.sprintf "R%d" t

let n_txns = 5
let n_pages = 4

let lock_op_gen =
  QCheck.Gen.(
    let txn = int_range 1 n_txns and page = int_range 0 (n_pages - 1) in
    frequency
      [
        (5, map3 (fun t p m -> Acquire (t, p, m)) txn page (oneofl [ Lock.S; Lock.X ]));
        (1, map2 (fun t p -> Withdraw (t, p)) txn page);
        (2, map (fun t -> Release_all t) txn);
      ])

let outcome_tag = function
  | Lock.Granted -> "granted"
  | Lock.Would_block -> "would-block"
  | Lock.Deadlock _ -> "deadlock"

(* Replays a trace on both managers and demands identical observables at
   every step: the outcome constructor of each acquire (cycle payloads
   may legitimately list the same cycle from a different starting
   point), then every (txn, page) hold and every waiting flag. *)
let prop_lock_mgr_matches_naive =
  QCheck.Test.make ~name:"lock manager matches whole-table reference" ~count:500
    (QCheck.make
       ~print:(fun ops -> String.concat " " (List.map lock_op_print ops))
       QCheck.Gen.(list_size (int_range 0 40) lock_op_gen))
    (fun ops ->
      let opt = Lock.create () and ref_ = Naive.Locks.create () in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | Acquire (txn, page, mode) ->
                let a = Lock.acquire opt ~txn ~page ~mode in
                let b = Naive.Locks.acquire ref_ ~txn ~page ~mode in
                outcome_tag a = outcome_tag b
            | Withdraw (txn, page) ->
                Lock.withdraw opt ~txn ~page;
                Naive.Locks.withdraw ref_ ~txn ~page;
                true
            | Release_all txn ->
                Lock.release_all opt ~txn;
                Naive.Locks.release_all ref_ ~txn;
                true
          in
          step_ok
          && Lock.locked_pages opt = Naive.Locks.locked_pages ref_
          && List.for_all
               (fun txn ->
                 Lock.waiting opt ~txn = Naive.Locks.waiting ref_ ~txn
                 && List.for_all
                      (fun page ->
                        Lock.holds opt ~txn ~page = Naive.Locks.holds ref_ ~txn ~page)
                      (List.init n_pages Fun.id))
               (List.init n_txns (fun i -> i + 1)))
        ops)

(* release_all_pages must name every page whose entry the release
   touched, so a scheduler waking exactly those pages misses nobody. *)
let test_release_all_pages () =
  let l = Lock.create () in
  check (Alcotest.of_pp Fmt.nop) "t1 holds 0" Lock.Granted (Lock.acquire l ~txn:1 ~page:0 ~mode:Lock.X);
  check (Alcotest.of_pp Fmt.nop) "t1 holds 1" Lock.Granted (Lock.acquire l ~txn:1 ~page:1 ~mode:Lock.S);
  check (Alcotest.of_pp Fmt.nop) "t2 blocks on 0" Lock.Would_block
    (Lock.acquire l ~txn:2 ~page:0 ~mode:Lock.S);
  let pages = List.sort compare (Lock.release_all_pages l ~txn:1) in
  check (Alcotest.list Alcotest.int) "released pages" [ 0; 1 ] pages;
  check (Alcotest.of_pp Fmt.nop) "t2 now granted" Lock.Granted
    (Lock.acquire l ~txn:2 ~page:0 ~mode:Lock.S)

(* --- wakeup scheduler vs the polling reference ------------------------ *)

let sched_n_keys = 8

let script_print scripts =
  String.concat "\n"
    (List.map
       (fun (id, ops) ->
         Printf.sprintf "%d: %s" id
           (String.concat ";"
              (List.map
                 (function
                   | Scheduler.Get k -> Printf.sprintf "G%d" k
                   | Scheduler.Put (k, v) -> Printf.sprintf "P%d=%s" k v
                   | Scheduler.Delete k -> Printf.sprintf "D%d" k)
                 ops)))
       scripts)

let scripts_gen =
  QCheck.Gen.(
    let op =
      frequency
        [
          (3, map2 (fun k v -> Scheduler.Put (k, v)) (int_range 0 (sched_n_keys - 1))
               (string_size (int_range 1 3)));
          (1, map (fun k -> Scheduler.Delete k) (int_range 0 (sched_n_keys - 1)));
          (2, map (fun k -> Scheduler.Get k) (int_range 0 (sched_n_keys - 1)));
        ]
    in
    map
      (fun opss -> List.mapi (fun i ops -> (i + 1, ops)) opss)
      (list_size (int_range 1 6) (list_size (int_range 0 8) op)))

let sched_equal_prop (module E : Kv.S) count =
  let module NS = Naive.Sched (E) in
  let module OS = Scheduler.Make (E) in
  QCheck.Test.make
    ~name:(E.engine_name ^ ": wakeup scheduler report equals polling reference")
    ~count
    (QCheck.make ~print:script_print scripts_gen)
    (fun scripts ->
      let rn = NS.run (E.create ~n_keys:sched_n_keys ()) ~scripts in
      let ro = OS.run (E.create ~n_keys:sched_n_keys ()) ~scripts in
      rn.Scheduler.commit_order = ro.Scheduler.commit_order
      && rn.Scheduler.restarts = ro.Scheduler.restarts
      && rn.Scheduler.steps = ro.Scheduler.steps)

(* The bench's contended shape — many private pages plus one hot page —
   pinned as a deterministic regression across two real engines. *)
let test_sched_contended_shape () =
  let scripts =
    List.init 6 (fun i ->
        let base = i * 4 in
        ( i + 1,
          List.init 4 (fun j -> Scheduler.Put (base + j, "p"))
          @ [ Scheduler.Put (24, "h"); Scheduler.Get 24 ] ))
  in
  let run_both (module E : Kv.S) =
    let module NS = Naive.Sched (E) in
    let module OS = Scheduler.Make (E) in
    let rn = NS.run (E.create ~n_keys:32 ()) ~scripts in
    let ro = OS.run (E.create ~n_keys:32 ()) ~scripts in
    check (Alcotest.list Alcotest.int)
      (E.engine_name ^ " commit order")
      rn.Scheduler.commit_order ro.Scheduler.commit_order;
    check Alcotest.int (E.engine_name ^ " restarts") rn.Scheduler.restarts ro.Scheduler.restarts;
    check Alcotest.int (E.engine_name ^ " steps") rn.Scheduler.steps ro.Scheduler.steps
  in
  run_both (module Kv.Model);
  run_both (module Dbm_storage.Engine_shadow)

(* --- buffer pool: intrusive list keeps seed LRU order ----------------- *)

let fresh_pool ?can_evict ?before_evict ~frames () =
  let disk = Vdisk.create ~pages:16 ~page_size:32 () in
  (disk, Pool.create disk ~frames ?can_evict ?before_evict ())

let touch pool p =
  ignore (Pool.get pool p);
  Pool.unpin pool p

let test_pool_eviction_order () =
  let _, pool = fresh_pool ~frames:3 () in
  touch pool 0;
  touch pool 1;
  touch pool 2;
  touch pool 0;
  (* last-use order now 1 < 2 < 0 *)
  touch pool 3;
  check Alcotest.bool "page 1 evicted" false (Pool.resident pool 1);
  check Alcotest.bool "page 0 kept" true (Pool.resident pool 0);
  check Alcotest.bool "page 2 kept" true (Pool.resident pool 2);
  touch pool 4;
  (* order was 2 < 0 < 3 *)
  check Alcotest.bool "page 2 evicted next" false (Pool.resident pool 2);
  touch pool 0;
  touch pool 5;
  (* order was 3 < 4 < 0 *)
  check Alcotest.bool "page 3 evicted after re-touch of 0" false (Pool.resident pool 3);
  check Alcotest.bool "page 0 still resident" true (Pool.resident pool 0);
  check Alcotest.int "three evictions" 3 (Pool.evictions pool)

let test_pool_pinned_skipped () =
  let _, pool = fresh_pool ~frames:2 () in
  ignore (Pool.get pool 0);
  (* page 0 stays pinned: LRU but unevictable *)
  touch pool 1;
  touch pool 2;
  check Alcotest.bool "pinned page 0 kept" true (Pool.resident pool 0);
  check Alcotest.bool "unpinned page 1 evicted" false (Pool.resident pool 1);
  ignore (Pool.get pool 2);
  (match Pool.get pool 3 with
  | exception Pool.No_free_frame -> ()
  | _ -> Alcotest.fail "all-pinned pool handed out a frame");
  Pool.unpin pool 0;
  Pool.unpin pool 2

let test_pool_gate_refusal_skips () =
  let gated = ref 9 in
  let _, pool = fresh_pool ~frames:2 ~can_evict:(fun ~page ~lsn:_ -> page <> !gated) () in
  ignore (Pool.get pool 0);
  Pool.mark_dirty pool 0;
  Pool.unpin pool 0;
  touch pool 1;
  gated := 0;
  (* page 0 is LRU and dirty but the gate refuses it; 1 must go instead *)
  touch pool 2;
  check Alcotest.bool "gated dirty page kept" true (Pool.resident pool 0);
  check Alcotest.bool "next candidate evicted" false (Pool.resident pool 1)

let test_pool_counters () =
  let _, pool = fresh_pool ~frames:3 () in
  check Alcotest.int "no pins" 0 (Pool.pinned pool);
  ignore (Pool.get pool 0);
  ignore (Pool.get pool 0);
  ignore (Pool.get pool 1);
  check Alcotest.int "two pinned frames (nested pin counts once)" 2 (Pool.pinned pool);
  Pool.mark_dirty pool 0;
  Pool.mark_dirty pool 0;
  check Alcotest.int "one dirty frame" 1 (Pool.dirty_frames pool);
  Pool.unpin pool 0;
  check Alcotest.int "still pinned via nested pin" 2 (Pool.pinned pool);
  Pool.unpin pool 0;
  Pool.unpin pool 1;
  check Alcotest.int "all unpinned" 0 (Pool.pinned pool);
  Pool.flush_page pool 0;
  check Alcotest.int "flushed clean" 0 (Pool.dirty_frames pool)

let test_pool_dirty_eviction_writes_back () =
  let disk, pool = fresh_pool ~frames:1 () in
  let b = Pool.get pool 0 in
  Bytes.blit_string "dirty!" 0 b 0 6;
  Pool.mark_dirty pool 0;
  Pool.unpin pool 0;
  touch pool 1;
  check Alcotest.bool "page 0 evicted" false (Pool.resident pool 0);
  check Alcotest.string "contents written back" "dirty!"
    (Bytes.sub_string (Vdisk.read disk 0) 0 6)

(* --- journal vs a list reference model -------------------------------- *)

type j_op = Append of string | Sync | Crash | Truncate of int

let j_op_print = function
  | Append s -> Printf.sprintf "A%s" s
  | Sync -> "S"
  | Crash -> "C"
  | Truncate k -> Printf.sprintf "T%d" k

(* Truncate carries an offset interpreted against the live model state:
   -1 probes the below-base no-op, anything beyond the durable count
   probes the invalid_arg branch. *)
let j_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Append s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5)));
        (2, return Sync);
        (1, return Crash);
        (2, map (fun k -> Truncate k) (int_range (-1) 12));
      ])

type j_model = {
  mutable m_durable : string list;  (* oldest first *)
  mutable m_pending : string list;  (* oldest first *)
  mutable m_base : int;
  mutable m_syncs : int;
}

let j_model_step m j op =
  match op with
  | Append s ->
      let seq = m.m_base + List.length m.m_durable + List.length m.m_pending in
      m.m_pending <- m.m_pending @ [ s ];
      seq = Journal.append j s
  | Sync ->
      m.m_durable <- m.m_durable @ m.m_pending;
      m.m_pending <- [];
      m.m_syncs <- m.m_syncs + 1;
      Journal.sync j;
      true
  | Crash ->
      m.m_pending <- [];
      Journal.crash j;
      true
  | Truncate off ->
      let keep_from = m.m_base + off in
      if off < 0 then (
        Journal.truncate j ~keep_from;
        true)
      else if off > List.length m.m_durable then (
        match Journal.truncate j ~keep_from with
        | exception Invalid_argument _ -> true
        | () -> false)
      else (
        m.m_durable <- List.filteri (fun i _ -> i >= off) m.m_durable;
        m.m_base <- keep_from;
        Journal.truncate j ~keep_from;
        true)

let j_model_agrees m j =
  Journal.read_all j = m.m_durable
  && Journal.read_live j = m.m_durable @ m.m_pending
  && Journal.length j = List.length m.m_durable
  && Journal.synced j = m.m_base + List.length m.m_durable
  && Journal.appended j = m.m_base + List.length m.m_durable + List.length m.m_pending
  && Journal.sync_count j = m.m_syncs

let prop_journal_matches_model =
  QCheck.Test.make ~name:"journal matches list reference model" ~count:500
    (QCheck.make
       ~print:(fun ops -> String.concat " " (List.map j_op_print ops))
       QCheck.Gen.(list_size (int_range 0 60) j_op_gen))
    (fun ops ->
      let j = Journal.create () in
      let m = { m_durable = []; m_pending = []; m_base = 0; m_syncs = 0 } in
      List.for_all (fun op -> j_model_step m j op && j_model_agrees m j) ops)

(* The old truncate rebuilt the kept suffix with a non-tail-recursive
   take: half a million records is far past where that blew the stack. *)
let test_journal_long_log_truncate () =
  let j = Journal.create () in
  let n = 500_000 in
  let r = "record" in
  for _ = 1 to n do
    ignore (Journal.append j r)
  done;
  Journal.sync j;
  Journal.truncate j ~keep_from:10;
  check Alcotest.int "length after small truncate" (n - 10) (Journal.length j);
  Journal.truncate j ~keep_from:(n - 3);
  check Alcotest.int "length after deep truncate" 3 (Journal.length j);
  check Alcotest.int "seq numbers unchanged" n (Journal.append j r);
  Journal.sync j;
  check (Alcotest.list Alcotest.string) "records intact" [ r; r; r; r ] (Journal.read_all j);
  Journal.truncate j ~keep_from:(n + 1);
  check Alcotest.int "empty after full truncate" 0 (Journal.length j)

(* --- run -------------------------------------------------------------- *)

let () =
  Alcotest.run "storage_opt"
    [
      ( "lock manager",
        [
          QCheck_alcotest.to_alcotest prop_lock_mgr_matches_naive;
          Alcotest.test_case "release_all_pages names touched pages" `Quick
            test_release_all_pages;
        ] );
      ( "scheduler",
        [
          QCheck_alcotest.to_alcotest (sched_equal_prop (module Kv.Model) 200);
          QCheck_alcotest.to_alcotest (sched_equal_prop (module Dbm_storage.Engine_log) 40);
          Alcotest.test_case "contended shape across engines" `Quick test_sched_contended_shape;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_pool_eviction_order;
          Alcotest.test_case "pinned frames skipped" `Quick test_pool_pinned_skipped;
          Alcotest.test_case "gate refusal skips to next" `Quick test_pool_gate_refusal_skips;
          Alcotest.test_case "pinned/dirty counters" `Quick test_pool_counters;
          Alcotest.test_case "dirty eviction writes back" `Quick
            test_pool_dirty_eviction_writes_back;
        ] );
      ( "journal",
        [
          QCheck_alcotest.to_alcotest prop_journal_matches_model;
          Alcotest.test_case "long-log truncate" `Quick test_journal_long_log_truncate;
        ] );
    ]
