(* Sanity tests for the table-regeneration layer: structure of every
   table, the report renderer, and the qualitative findings the paper's
   conclusions rest on (run at reduced scale to stay fast; the full
   reproduction is `dune exec bench/main.exe`). *)

module Report = Dbm_core.Report
module Scenario = Dbm_core.Scenario
module Experiment = Dbm_core.Experiment
module Results = Dbm_machine.Results
module Logging = Dbm_recovery.Logging
module Shadow = Dbm_recovery.Shadow

let check = Alcotest.check

(* --- Report ----------------------------------------------------------- *)

let sample_table =
  {
    Report.id = "Table T";
    title = "sample";
    columns = [ "a"; "b" ];
    rows =
      [
        { Report.row_label = "r1"; cells = [ Report.cell ~paper:2.0 2.0; Report.cell 5.0 ] };
        { Report.row_label = "r2"; cells = [ Report.cell ~paper:1.0 2.0; Report.cell 7.0 ] };
      ];
    notes = [ "a note" ];
  }

let test_report_render () =
  let s = Report.to_string sample_table in
  check Alcotest.bool "has id" true (String.length s > 0 && String.sub s 0 3 = "===");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "shows paper value" true (contains "[2.00]" s);
  check Alcotest.bool "shows note" true (contains "a note" s)

let test_report_csv () =
  let csv = Report.to_csv sample_table in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + 4 cells" 5 (List.length lines);
  check Alcotest.string "header" "row,column,measured,paper" (List.hd lines)

let test_ascii_bars () =
  let out = Report.ascii_bars ~width:10 [ ("a", 10.0); ("b", 5.0); ("zero", 0.0) ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  check Alcotest.int "three rows" 3 (List.length lines);
  let count_hashes s = String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 s in
  check Alcotest.int "longest bar = width" 10 (count_hashes (List.nth lines 0));
  check Alcotest.int "half bar" 5 (count_hashes (List.nth lines 1));
  check Alcotest.int "zero bar" 0 (count_hashes (List.nth lines 2))

let test_shape_score () =
  (* cells: exact match (log ratio 0) and a 2x miss (log 2); cells
     without paper values are ignored *)
  check (Alcotest.float 1e-6) "mean |log ratio|" (log 2.0 /. 2.0)
    (Report.mean_abs_log_ratio sample_table)

let test_shape_score_empty () =
  let t = { sample_table with Report.rows = [] } in
  check (Alcotest.float 1e-9) "empty table scores 0" 0.0 (Report.mean_abs_log_ratio t)

(* --- small-scale qualitative findings ---------------------------------- *)

(* Reduced-size runs of the pivotal comparisons.  These deliberately use
   a private (non-memoized-key) workload so they stay fast. *)

let small_run ?scramble ?(seed = 42) scenario make_arch =
  let machine =
    match scramble with
    | None -> Scenario.machine_config scenario
    | Some s -> Scenario.machine_config ~scramble:s scenario
  in
  let workload =
    {
      (Scenario.workload_config ~seed scenario) with
      Dbm_workload.Workload.n_transactions = 10;
    }
  in
  let txns = Dbm_workload.Workload.generate workload in
  Dbm_machine.Machine.run ~config:machine ~make_arch ~workload:txns

let exec (r : Results.t) = r.Results.exec_ms_per_page

let test_logging_is_cheap () =
  let bare = small_run Scenario.Conventional_random (fun _ -> Dbm_machine.Arch.bare) in
  let log = small_run Scenario.Conventional_random (Logging.make Logging.default) in
  (* the paper's headline: logging barely affects throughput *)
  check Alcotest.bool "within 10%" true (exec log < 1.10 *. exec bare)

let test_scrambled_ruins_parallel_sequential () =
  let clustered =
    small_run Scenario.Parallel_sequential (Shadow.make Shadow.default_thru)
  in
  let scrambled =
    small_run ~scramble:3 Scenario.Parallel_sequential (Shadow.make Shadow.default_thru)
  in
  (* Table 7's largest effect: 1.94 -> 18.54 in the paper *)
  check Alcotest.bool "at least 4x worse" true (exec scrambled > 4.0 *. exec clustered)

let test_overwriting_ok_on_parallel_sequential () =
  let bare = small_run Scenario.Parallel_sequential (fun _ -> Dbm_machine.Arch.bare) in
  let ow = small_run Scenario.Parallel_sequential (Shadow.make Shadow.overwrite_no_undo) in
  check Alcotest.bool "within 2x of bare" true (exec ow < 2.0 *. exec bare)

let test_overwriting_bad_on_conventional () =
  let bare = small_run Scenario.Conventional_random (fun _ -> Dbm_machine.Arch.bare) in
  let ow = small_run Scenario.Conventional_random (Shadow.make Shadow.overwrite_no_undo) in
  check Alcotest.bool "clearly worse than bare" true (exec ow > 1.2 *. exec bare)

let test_findings_robust_to_seed () =
  (* the pivotal orderings are not artifacts of the default seed *)
  List.iter
    (fun seed ->
      let bare = small_run ~seed Scenario.Conventional_random (fun _ -> Dbm_machine.Arch.bare) in
      let log = small_run ~seed Scenario.Conventional_random (Logging.make Logging.default) in
      check Alcotest.bool
        (Printf.sprintf "seed %d: logging cheap" seed)
        true
        (exec log < 1.10 *. exec bare);
      let clu = small_run ~seed Scenario.Parallel_sequential (Shadow.make Shadow.default_thru) in
      let scr =
        small_run ~seed ~scramble:3 Scenario.Parallel_sequential (Shadow.make Shadow.default_thru)
      in
      check Alcotest.bool
        (Printf.sprintf "seed %d: scrambling ruinous" seed)
        true
        (exec scr > 4.0 *. exec clu))
    [ 7; 99; 1234 ]

(* --- table structure (uses the real memoized tables; heavier) ---------- *)

let table_structure () =
  List.iteri
    (fun i t ->
      let id = i + 1 in
      check Alcotest.string "table id" (Printf.sprintf "Table %d" id) t.Report.id;
      check Alcotest.bool "has rows" true (t.Report.rows <> []);
      check Alcotest.bool "has columns" true (t.Report.columns <> []);
      List.iter
        (fun r ->
          check Alcotest.int
            (Printf.sprintf "row %s width" r.Report.row_label)
            (List.length t.Report.columns) (List.length r.Report.cells);
          List.iter
            (fun (c : Report.cell) ->
              if not (Float.is_finite c.Report.measured) then
                Alcotest.failf "non-finite cell in %s" t.Report.id)
            r.Report.cells)
        t.Report.rows)
    (Dbm_core.Tables.all ())

let table_shape_scores () =
  (* every reproduced table should be within ~2x of the paper on
     average; most are far closer *)
  List.iter
    (fun t ->
      let score = Report.mean_abs_log_ratio t in
      if score > 0.7 then
        Alcotest.failf "%s diverges from the paper: score %.3f" t.Report.id score)
    (Dbm_core.Tables.all ())

let shape_checks_pass () =
  match Dbm_core.Shape_checks.failures () with
  | [] -> ()
  | fs ->
    Alcotest.failf "paper conclusions violated: %s"
      (String.concat "; " (List.map (fun c -> c.Dbm_core.Shape_checks.claim) fs))

let parallel_determinism () =
  (* the paper's tables are independent seeded simulations: for a fixed
     seed the rendered output must not depend on the pool size.
     Oversubscription is forced so real domains run even on a one-core
     host, where ~jobs:4 alone would clamp to the serial path. *)
  Experiment.clear_cache ();
  let serial = List.map Report.to_string (Dbm_core.Tables.all ()) in
  Experiment.clear_cache ();
  let parallel =
    Dbm_util.Pool.with_pool ~jobs:4 ~allow_oversubscribe:true (fun pool ->
        List.map Report.to_string (Dbm_core.Tables.all ~pool ()))
  in
  check (Alcotest.list Alcotest.string) "jobs=4 output byte-identical to jobs=1" serial parallel

let test_by_id_bounds () =
  match Dbm_core.Tables.by_id 13 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "table 13 accepted"

let () =
  Alcotest.run "dbm_core tables"
    [
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "ascii bars" `Quick test_ascii_bars;
          Alcotest.test_case "shape score" `Quick test_shape_score;
          Alcotest.test_case "shape score empty" `Quick test_shape_score_empty;
        ] );
      ( "qualitative findings",
        [
          Alcotest.test_case "logging is cheap" `Quick test_logging_is_cheap;
          Alcotest.test_case "scrambling ruins par-seq" `Quick
            test_scrambled_ruins_parallel_sequential;
          Alcotest.test_case "overwriting ok on par-seq" `Quick
            test_overwriting_ok_on_parallel_sequential;
          Alcotest.test_case "overwriting bad on conventional" `Quick
            test_overwriting_bad_on_conventional;
          Alcotest.test_case "findings robust to seed" `Slow test_findings_robust_to_seed;
        ] );
      ( "full tables",
        [
          Alcotest.test_case "structure" `Slow table_structure;
          Alcotest.test_case "shape scores" `Slow table_shape_scores;
          Alcotest.test_case "paper conclusions hold" `Slow shape_checks_pass;
          Alcotest.test_case "parallel determinism" `Slow parallel_determinism;
          Alcotest.test_case "by_id bounds" `Quick test_by_id_bounds;
        ] );
    ]
