(* Tests for the storage substrate: virtual disk, journal, pages, WAL
   records, lock manager. *)

module Vdisk = Dbm_storage.Vdisk
module Journal = Dbm_storage.Journal
module Page = Dbm_storage.Page
module Wal = Dbm_storage.Wal
module Lock = Dbm_storage.Lock_mgr

let check = Alcotest.check

let bytes_testable = Alcotest.testable (fun ppf b -> Format.fprintf ppf "%S" (Bytes.to_string b))
    Bytes.equal

(* --- Vdisk ------------------------------------------------------------- *)

let page_of_string size s =
  let b = Bytes.make size '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let test_vdisk_read_write () =
  let d = Vdisk.create ~pages:4 ~page_size:16 () in
  let b = page_of_string 16 "hello" in
  Vdisk.write d 2 b;
  check bytes_testable "read back cached" b (Vdisk.read d 2);
  check Alcotest.int "one unsynced" 1 (Vdisk.unsynced_pages d)

let test_vdisk_crash_drops_unsynced () =
  let d = Vdisk.create ~pages:4 ~page_size:16 () in
  Vdisk.write d 0 (page_of_string 16 "lost");
  Vdisk.crash d;
  check bytes_testable "back to zeros" (Bytes.make 16 '\000') (Vdisk.read d 0)

let test_vdisk_sync_persists () =
  let d = Vdisk.create ~pages:4 ~page_size:16 () in
  let b = page_of_string 16 "kept" in
  Vdisk.write d 1 b;
  Vdisk.sync d;
  Vdisk.crash d;
  check bytes_testable "survives crash" b (Vdisk.read d 1);
  check Alcotest.int "cache empty" 0 (Vdisk.unsynced_pages d)

let test_vdisk_write_isolated () =
  let d = Vdisk.create ~pages:2 ~page_size:8 () in
  let b = page_of_string 8 "x" in
  Vdisk.write d 0 b;
  Bytes.set b 0 'y';
  check bytes_testable "defensive copy" (page_of_string 8 "x") (Vdisk.read d 0)

let test_vdisk_bounds () =
  let d = Vdisk.create ~pages:2 ~page_size:8 () in
  (match Vdisk.read d 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range read accepted");
  match Vdisk.write d 0 (Bytes.create 7) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short buffer accepted"

(* --- Journal ------------------------------------------------------------ *)

let test_journal_order () =
  let j = Journal.create () in
  ignore (Journal.append j "a");
  ignore (Journal.append j "b");
  Journal.sync j;
  check (Alcotest.list Alcotest.string) "append order" [ "a"; "b" ] (Journal.read_all j)

let test_journal_crash () =
  let j = Journal.create () in
  ignore (Journal.append j "durable");
  Journal.sync j;
  ignore (Journal.append j "volatile");
  Journal.crash j;
  check (Alcotest.list Alcotest.string) "tail dropped" [ "durable" ] (Journal.read_all j);
  check Alcotest.int "synced count" 1 (Journal.synced j)

let test_journal_seq_numbers () =
  let j = Journal.create () in
  check Alcotest.int "first" 0 (Journal.append j "a");
  check Alcotest.int "second" 1 (Journal.append j "b");
  Journal.sync j;
  check Alcotest.int "third" 2 (Journal.append j "c")

let test_journal_truncate () =
  let j = Journal.create () in
  List.iter (fun s -> ignore (Journal.append j s)) [ "a"; "b"; "c"; "d" ];
  Journal.sync j;
  Journal.truncate j ~keep_from:2;
  check (Alcotest.list Alcotest.string) "kept suffix" [ "c"; "d" ] (Journal.read_all j);
  (* sequence numbers keep counting from where they were *)
  check Alcotest.int "next seq" 4 (Journal.append j "e");
  Journal.sync j;
  check (Alcotest.list Alcotest.string) "append after truncate" [ "c"; "d"; "e" ]
    (Journal.read_all j)

let test_journal_truncate_bounds () =
  let j = Journal.create () in
  ignore (Journal.append j "a");
  match Journal.truncate j ~keep_from:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "truncating unsynced records accepted"

(* --- Page ---------------------------------------------------------------- *)

let test_page_roundtrip () =
  let p = Page.empty ~page_size:256 in
  Page.set_records p [ (3, "three"); (1, "one"); (2, "two") ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "sorted roundtrip"
    [ (1, "one"); (2, "two"); (3, "three") ]
    (Page.records p)

let test_page_lsn () =
  let p = Page.empty ~page_size:64 in
  check Alcotest.int "initial lsn" 0 (Page.get_lsn p);
  Page.set_lsn p 42;
  check Alcotest.int "lsn set" 42 (Page.get_lsn p);
  Page.set_records p [ (1, "v") ];
  check Alcotest.int "records keep lsn" 42 (Page.get_lsn p)

let test_page_update_lookup () =
  let p = Page.empty ~page_size:256 in
  Page.update p ~key:5 ~value:(Some "five");
  check (Alcotest.option Alcotest.string) "lookup" (Some "five") (Page.lookup p ~key:5);
  Page.update p ~key:5 ~value:(Some "FIVE");
  check (Alcotest.option Alcotest.string) "overwrite" (Some "FIVE") (Page.lookup p ~key:5);
  Page.update p ~key:5 ~value:None;
  check (Alcotest.option Alcotest.string) "delete" None (Page.lookup p ~key:5)

let test_page_full () =
  let p = Page.empty ~page_size:64 in
  match Page.set_records p [ (1, String.make 100 'x') ] with
  | exception Page.Page_full -> ()
  | _ -> Alcotest.fail "overfull page accepted"

let test_page_duplicate_keys_last_wins () =
  let p = Page.empty ~page_size:128 in
  Page.set_records p [ (1, "old"); (1, "new") ];
  check (Alcotest.option Alcotest.string) "last wins" (Some "new") (Page.lookup p ~key:1);
  check Alcotest.int "single record" 1 (List.length (Page.records p))

let test_page_update_in_place () =
  (* the equal-length overwrite fast path must agree with a full re-encode *)
  let p = Page.empty ~page_size:256 in
  Page.set_records p [ (1, "one"); (2, "two"); (3, "three") ];
  Page.set_lsn p 9;
  let free_before = Page.free_bytes p in
  Page.update p ~key:2 ~value:(Some "TWO");
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "splice in place"
    [ (1, "one"); (2, "TWO"); (3, "three") ]
    (Page.records p);
  check Alcotest.int "free space unchanged" free_before (Page.free_bytes p);
  check Alcotest.int "lsn untouched" 9 (Page.get_lsn p)

let test_page_lookup_allocation_bounded () =
  (* lookup scans the record area directly: allocation per call must not
     scale with the number of records on the page *)
  let p = Page.empty ~page_size:4096 in
  Page.set_records p (List.init 128 (fun i -> (i, Printf.sprintf "value-%03d" i)));
  (* warm up so the check measures the steady state *)
  ignore (Sys.opaque_identity (Page.lookup p ~key:100));
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Sys.opaque_identity (Page.lookup p ~key:100))
  done;
  let words_per_call = (Gc.minor_words () -. before) /. 1000.0 in
  (* the result option + a 9-byte string is ~8 words; decoding the full
     128-record list would be thousands *)
  if words_per_call > 64.0 then
    Alcotest.failf "lookup allocates %.1f words/call (record list materialized?)" words_per_call

let prop_page_lookup_matches_records =
  QCheck.Test.make ~name:"lookup agrees with the decoded record list" ~count:300
    QCheck.(
      pair
        (small_list (pair (int_range 0 50) (string_of_size (Gen.int_range 0 10))))
        (int_range 0 60))
    (fun (kvs, probe) ->
      let p = Page.empty ~page_size:2048 in
      Page.set_records p kvs;
      Page.lookup p ~key:probe = List.assoc_opt probe (Page.records p))

let prop_page_update_equal_length =
  QCheck.Test.make ~name:"equal-length update behaves like set_records" ~count:300
    QCheck.(
      pair (small_list (pair (int_range 0 20) (string_of_size (Gen.return 4)))) (int_range 0 20))
    (fun (kvs, key) ->
      let fast = Page.empty ~page_size:2048 and slow = Page.empty ~page_size:2048 in
      Page.set_records fast kvs;
      (* canonical form: unique keys, last duplicate won *)
      let canonical = Page.records fast in
      QCheck.assume (List.mem_assoc key canonical);
      Page.update fast ~key ~value:(Some "NEWV");
      Page.set_records slow ((key, "NEWV") :: List.remove_assoc key canonical);
      Page.records fast = Page.records slow)

let prop_page_roundtrip =
  QCheck.Test.make ~name:"page records roundtrip" ~count:300
    QCheck.(small_list (pair (int_range 0 50) (string_of_size (Gen.int_range 0 10))))
    (fun kvs ->
      let p = Page.empty ~page_size:2048 in
      Page.set_records p kvs;
      let expected =
        let tbl = Hashtbl.create 16 in
        List.iter (fun (k, v) -> Hashtbl.replace tbl k v) kvs;
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      Page.records p = expected)

(* --- Wal ------------------------------------------------------------------ *)

let sample_records =
  [
    Wal.Update { lsn = 7; txn = 3; page = 9; before = Bytes.of_string "abc"; after = Bytes.of_string "xyz" };
    Wal.Commit { lsn = 8; txn = 3 };
    Wal.Abort { lsn = 9; txn = 4 };
    Wal.Checkpoint { lsn = 10; active = [ 5; 6 ] };
    Wal.Checkpoint { lsn = 11; active = [] };
    Wal.Delta
      { lsn = 12; txn = 5; page = 2; off = 17; prev_lsn = 4; before_slice = "old"; after_slice = "new" };
    Wal.Delta { lsn = 13; txn = 5; page = 0; off = 8; prev_lsn = 0; before_slice = ""; after_slice = "" };
    Wal.Op { lsn = 14; txn = 6; key = 31; value = Some "payload" };
    Wal.Op { lsn = 15; txn = 6; key = 0; value = None };
    Wal.Fuzzy_checkpoint { lsn = 16; start_lsn = 3; active = [ 1; 2 ]; dirty = [ (0, 3); (7, 9) ] };
    Wal.Fuzzy_checkpoint { lsn = 17; start_lsn = 17; active = []; dirty = [] };
  ]

(* Every record shape that predates the codec; [encode_legacy] still
   produces the old fixed-width framing for them. *)
let legacy_shapes =
  List.filter (function Wal.Delta _ | Wal.Op _ -> false | _ -> true) sample_records

let test_wal_roundtrip () =
  List.iter
    (fun r ->
      let r' = Wal.decode (Wal.encode r) in
      if r <> r' then Alcotest.failf "roundtrip failed for %s" (Format.asprintf "%a" Wal.pp r))
    sample_records

let test_wal_checksum_detects_corruption () =
  let s = Wal.encode (Wal.Commit { lsn = 1; txn = 2 }) in
  let b = Bytes.of_string s in
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 0xFF));
  match Wal.decode (Bytes.to_string b) with
  | exception Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "corruption not detected"

let test_wal_truncated () =
  let s = Wal.encode (Wal.Commit { lsn = 1; txn = 2 }) in
  match Wal.decode (String.sub s 0 5) with
  | exception Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated record accepted"

let test_wal_legacy_roundtrip () =
  (* journals written before the codec change must still decode: the
     uppercase-tag legacy framing is dispatched on the tag byte *)
  List.iter
    (fun r ->
      let r' = Wal.decode (Wal.encode_legacy r) in
      if r <> r' then
        Alcotest.failf "legacy roundtrip failed for %s" (Format.asprintf "%a" Wal.pp r))
    legacy_shapes;
  match Wal.encode_legacy (Wal.Op { lsn = 1; txn = 1; key = 0; value = None }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "legacy encoding of a post-codec shape accepted"

let test_wal_peeks_agree_across_framings () =
  List.iter
    (fun r ->
      let s = Wal.encode r in
      check Alcotest.int "peek_lsn (codec)" (Wal.lsn r) (Wal.peek_lsn s);
      check (Alcotest.option Alcotest.int) "peek_txn (codec)" (Wal.txn_of r) (Wal.peek_txn s);
      check Alcotest.bool "peek fuzzy (codec)"
        (match r with Wal.Fuzzy_checkpoint _ -> true | _ -> false)
        (Wal.peek_is_fuzzy_checkpoint s))
    sample_records;
  List.iter
    (fun r ->
      let s = Wal.encode_legacy r in
      check Alcotest.int "peek_lsn (legacy)" (Wal.lsn r) (Wal.peek_lsn s);
      check (Alcotest.option Alcotest.int) "peek_txn (legacy)" (Wal.txn_of r) (Wal.peek_txn s))
    legacy_shapes

let test_wal_encode_allocation_bounded () =
  (* the scratch-buffer encoder's one allocation per record is the
     returned string: ~(record size / 8) words.  The old Buffer path
     (8-byte boxes per int, body-then-checksum concat) was several
     times that. *)
  let page = 1024 in
  let r =
    Wal.Update
      { lsn = 123456; txn = 789; page = 42; before = Bytes.make page 'b'; after = Bytes.make page 'a' }
  in
  let enc = Dbm_storage.Wal_codec.Enc.create ~size:(2 * page + 64) () in
  ignore (Sys.opaque_identity (Wal.encode_with enc r));
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Sys.opaque_identity (Wal.encode_with enc r))
  done;
  let words_per_call = (Gc.minor_words () -. before) /. 1000.0 in
  (* the two 1024-byte images encode to ~2080 bytes = ~261 words *)
  if words_per_call > 320.0 then
    Alcotest.failf "encode_with allocates %.0f words/call (want ~261: result string only)"
      words_per_call

let test_wal_decode_allocation_bounded () =
  (* decode extracts each image with exactly one copy; the old cursor
     path copied every payload twice *)
  let page = 1024 in
  let s =
    Wal.encode
      (Wal.Update
         { lsn = 123456; txn = 789; page = 42; before = Bytes.make page 'b'; after = Bytes.make page 'a' })
  in
  ignore (Sys.opaque_identity (Wal.decode s));
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Sys.opaque_identity (Wal.decode s))
  done;
  let words_per_call = (Gc.minor_words () -. before) /. 1000.0 in
  (* two 1024-byte images = ~258 words + the record block; double-copy
     would be ~520+ *)
  if words_per_call > 340.0 then
    Alcotest.failf "decode allocates %.0f words/call (payloads copied twice?)" words_per_call

let test_wal_accessors () =
  check Alcotest.int "lsn" 8 (Wal.lsn (Wal.Commit { lsn = 8; txn = 3 }));
  check (Alcotest.option Alcotest.int) "txn" (Some 3) (Wal.txn_of (Wal.Commit { lsn = 8; txn = 3 }));
  check (Alcotest.option Alcotest.int) "checkpoint has no txn" None
    (Wal.txn_of (Wal.Checkpoint { lsn = 1; active = [] }))

(* Generator over every record shape the codec frames. *)
let wal_record_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun lsn txn -> Wal.Commit { lsn; txn }) (int_range 0 1000) (int_range 0 1000);
        map2 (fun lsn txn -> Wal.Abort { lsn; txn }) (int_range 0 1000) (int_range 0 1000);
        map
          (fun (lsn, txn, page, b, a) ->
            Wal.Update
              { lsn; txn; page; before = Bytes.of_string b; after = Bytes.of_string a })
          (tup5 (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)
             (string_size (int_range 0 40))
             (string_size (int_range 0 40)));
        (int_range 0 30 >>= fun n ->
         map
           (fun (lsn, txn, page, off, prev_lsn, (b, a)) ->
             Wal.Delta { lsn; txn; page; off; prev_lsn; before_slice = b; after_slice = a })
           (tup6 (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)
              (* slices never overlap the 8-byte page header *)
              (int_range 8 2000) (int_range 0 1000)
              (tup2 (string_size (return n)) (string_size (return n)))));
        map
          (fun (lsn, txn, key, value) -> Wal.Op { lsn; txn; key; value })
          (tup4 (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)
             (option (string_size (int_range 0 40))));
        map2
          (fun lsn active -> Wal.Checkpoint { lsn; active })
          (int_range 0 1000)
          (small_list (int_range 0 100));
        map
          (fun (lsn, start_lsn, active, dirty) ->
            Wal.Fuzzy_checkpoint { lsn; start_lsn; active; dirty })
          (tup4 (int_range 0 1000) (int_range 0 1000)
             (small_list (int_range 0 100))
             (small_list (pair (int_range 0 100) (int_range 0 1000))));
      ])

let wal_arbitrary =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Wal.pp r) wal_record_gen

let prop_wal_roundtrip =
  (* roundtrip through a reused scratch encoder — the hot append path:
     the buffer must not leak one record's bytes into the next *)
  let enc = Dbm_storage.Wal_codec.Enc.create () in
  QCheck.Test.make ~name:"wal encode/decode roundtrip (all shapes, shared scratch)" ~count:500
    wal_arbitrary (fun r -> Wal.decode (Wal.encode_with enc r) = r)

let prop_wal_injective =
  QCheck.Test.make ~name:"wal encoding is injective" ~count:500
    (QCheck.pair wal_arbitrary wal_arbitrary) (fun (r1, r2) ->
      r1 = r2 || Wal.encode r1 <> Wal.encode r2)

let prop_wal_truncation_corrupt =
  QCheck.Test.make ~name:"any truncation decodes as Corrupt" ~count:500
    (QCheck.pair wal_arbitrary (QCheck.int_range 0 10_000))
    (fun (r, cut) ->
      let s = Wal.encode r in
      let cut = cut mod String.length s in
      match Wal.decode (String.sub s 0 cut) with
      | exception Wal.Corrupt _ -> true
      | _ -> false)

let prop_wal_bitflip_corrupt =
  (* the checksum step [h <- (h xor word) * prime] is injective in [h]
     for fixed input, so a single flipped bit always changes the
     trailer: every one-bit corruption must be detected *)
  QCheck.Test.make ~name:"any single bit-flip decodes as Corrupt" ~count:500
    (QCheck.pair wal_arbitrary (QCheck.pair (QCheck.int_range 0 10_000) (QCheck.int_range 0 7)))
    (fun (r, (pos, bit)) ->
      let s = Wal.encode r in
      let b = Bytes.of_string s in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Wal.decode (Bytes.to_string b) with
      | exception Wal.Corrupt _ -> true
      | _ -> false)

let prop_wal_delta_apply =
  (* delta_update on random page pairs: applying the after slice (plus
     the record's lsn in the header) to the before image must reproduce
     the after image exactly, and the before slice plus [prev_lsn] must
     invert it — whatever side of the threshold the diff lands on.
     Images are page-shaped: an 8-byte LSN header, then a random body;
     the after header holds the record's LSN (the engine stamps it
     before logging — delta_update's contract). *)
  let lsn = 77 in
  let gen =
    QCheck.Gen.(
      int_range 1 64 >>= fun n ->
      tup3 (int_range 0 1000) (string_size (return n)) (string_size (return n)))
  in
  let page_of ~hdr body =
    let img = Bytes.create (8 + String.length body) in
    Bytes.set_int64_le img 0 (Int64.of_int hdr);
    Bytes.blit_string body 0 img 8 (String.length body);
    img
  in
  QCheck.Test.make ~name:"delta encode/apply = full-image restore" ~count:500
    (QCheck.make ~print:(fun (p, b, a) -> Printf.sprintf "hdr=%d %S -> %S" p b a) gen)
    (fun (prev, b, a) ->
      let before = page_of ~hdr:prev b and after = page_of ~hdr:lsn a in
      match Wal.delta_update ~threshold:32 ~lsn ~txn:1 ~page:0 ~before ~after with
      | Wal.Delta { off; prev_lsn; before_slice; after_slice; _ } ->
        let fwd = Bytes.copy before in
        Wal.apply_slice fwd ~off after_slice;
        Bytes.set_int64_le fwd 0 (Int64.of_int lsn);
        let bwd = Bytes.copy after in
        Wal.apply_slice bwd ~off before_slice;
        Bytes.set_int64_le bwd 0 (Int64.of_int prev_lsn);
        prev_lsn = prev && Bytes.equal fwd after && Bytes.equal bwd before
      | Wal.Update { before = b'; after = a'; _ } ->
        (* fallback path: full images, verbatim *)
        Bytes.equal b' before && Bytes.equal a' after
      | _ -> false)

let prop_wal_diff_range =
  QCheck.Test.make ~name:"diff_range bounds the disagreement exactly" ~count:500
    QCheck.(
      make
        Gen.(
          int_range 0 48 >>= fun n ->
          tup2 (string_size (return n)) (string_size (return n))))
    (fun (b, a) ->
      let before = Bytes.of_string b and after = Bytes.of_string a in
      match Wal.diff_range ~before ~after with
      | None -> Bytes.equal before after
      | Some (off, len) ->
        len > 0 && off >= 0
        && off + len <= Bytes.length before
        && Bytes.sub before 0 off = Bytes.sub after 0 off
        && Bytes.sub before (off + len) (Bytes.length before - off - len)
           = Bytes.sub after (off + len) (Bytes.length after - off - len)
        && Bytes.get before off <> Bytes.get after off
        && Bytes.get before (off + len - 1) <> Bytes.get after (off + len - 1))

(* --- Buffer_pool ------------------------------------------------------------ *)

module Pool = Dbm_storage.Buffer_pool

let make_pool ?can_evict ?before_evict ~frames () =
  let d = Vdisk.create ~pages:16 ~page_size:64 () in
  (* give the disk distinguishable contents *)
  for p = 0 to 15 do
    let b = Bytes.make 64 '\000' in
    Bytes.set b 16 (Char.chr (Char.code 'a' + p));
    Vdisk.write d p b
  done;
  Vdisk.sync d;
  (d, Pool.create d ~frames ?can_evict ?before_evict ())

let test_pool_hit_miss () =
  let _, pool = make_pool ~frames:2 () in
  let b = Pool.get pool 3 in
  check Alcotest.char "fetched from disk" 'd' (Bytes.get b 16);
  Pool.unpin pool 3;
  ignore (Pool.get pool 3);
  Pool.unpin pool 3;
  check Alcotest.int "one miss" 1 (Pool.misses pool);
  check Alcotest.int "one hit" 1 (Pool.hits pool)

let test_pool_eviction_lru () =
  let _, pool = make_pool ~frames:2 () in
  ignore (Pool.get pool 0);
  Pool.unpin pool 0;
  ignore (Pool.get pool 1);
  Pool.unpin pool 1;
  ignore (Pool.get pool 0);  (* touch 0: 1 becomes LRU *)
  Pool.unpin pool 0;
  ignore (Pool.get pool 2);
  Pool.unpin pool 2;
  check Alcotest.bool "page 1 evicted" false (Pool.resident pool 1);
  check Alcotest.bool "page 0 kept" true (Pool.resident pool 0);
  check Alcotest.int "one eviction" 1 (Pool.evictions pool)

let test_pool_pinned_not_evicted () =
  let _, pool = make_pool ~frames:1 () in
  ignore (Pool.get pool 0);  (* pinned *)
  match Pool.get pool 1 with
  | exception Pool.No_free_frame -> ()
  | _ -> Alcotest.fail "evicted a pinned frame"

let test_pool_dirty_writeback () =
  let d, pool = make_pool ~frames:1 () in
  let b = Pool.get pool 0 in
  Bytes.set b 16 'Z';
  Pool.mark_dirty pool 0;
  Pool.unpin pool 0;
  (* force eviction: the dirty frame must reach the disk *)
  ignore (Pool.get pool 1);
  Pool.unpin pool 1;
  check Alcotest.char "dirty page written back" 'Z' (Bytes.get (Vdisk.read d 0) 16)

let test_pool_wal_gate () =
  let allowed = ref false in
  let forced = ref 0 in
  let _, pool =
    make_pool ~frames:1
      ~can_evict:(fun ~page:_ ~lsn:_ -> !allowed)
      ~before_evict:(fun ~page:_ ~lsn:_ -> incr forced)
      ()
  in
  let b = Pool.get pool 0 in
  Bytes.set b 16 'Z';
  Pool.mark_dirty pool 0;
  Pool.unpin pool 0;
  (* gate closed: the only candidate is unevictable *)
  (match Pool.get pool 1 with
  | exception Pool.No_free_frame -> ()
  | _ -> Alcotest.fail "evicted past a closed WAL gate");
  check Alcotest.bool "before_evict ran (a chance to force the log)" true (!forced > 0);
  allowed := true;
  ignore (Pool.get pool 1);
  Pool.unpin pool 1;
  check Alcotest.bool "evicted once the gate opened" true (Pool.resident pool 1)

let test_pool_flush_all () =
  let d, pool = make_pool ~frames:4 () in
  List.iter
    (fun p ->
      let b = Pool.get pool p in
      Bytes.set b 16 'X';
      Pool.mark_dirty pool p;
      Pool.unpin pool p)
    [ 0; 1; 2 ];
  Pool.flush_all pool;
  Vdisk.crash d;
  List.iter
    (fun p -> check Alcotest.char "durable after flush_all" 'X' (Bytes.get (Vdisk.read d p) 16))
    [ 0; 1; 2 ];
  check Alcotest.bool "frames clean" false (Pool.is_dirty pool 0)

let test_pool_nested_pins () =
  let _, pool = make_pool ~frames:2 () in
  ignore (Pool.get pool 0);
  ignore (Pool.get pool 0);
  Pool.unpin pool 0;
  check Alcotest.int "still pinned" 1 (Pool.pinned pool);
  Pool.unpin pool 0;
  check Alcotest.int "fully unpinned" 0 (Pool.pinned pool);
  match Pool.unpin pool 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-unpin accepted"

(* --- Lock_mgr --------------------------------------------------------------- *)

let test_lock_grant_and_conflict () =
  let t = Lock.create () in
  check Alcotest.bool "S granted" true (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.S = Lock.Granted);
  check Alcotest.bool "S shared" true (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.S = Lock.Granted);
  check Alcotest.bool "X blocks" true (Lock.acquire t ~txn:3 ~page:1 ~mode:Lock.X = Lock.Would_block);
  check Alcotest.bool "t3 recorded waiting" true (Lock.waiting t ~txn:3)

let test_lock_release_then_grant () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X);
  check Alcotest.bool "blocked" true (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.X = Lock.Would_block);
  Lock.release_all t ~txn:1;
  check Alcotest.bool "granted after release" true
    (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.X = Lock.Granted)

let test_lock_upgrade () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.S);
  check Alcotest.bool "sole holder upgrades" true
    (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X = Lock.Granted);
  check Alcotest.bool "holds X" true (Lock.holds t ~txn:1 ~page:1 = Some Lock.X)

let test_lock_upgrade_blocked_by_other_reader () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.S);
  ignore (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.S);
  check Alcotest.bool "upgrade must wait" true
    (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X = Lock.Would_block)

let test_lock_deadlock_detected () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:2 ~page:2 ~mode:Lock.X);
  check Alcotest.bool "t1 waits for p2" true
    (Lock.acquire t ~txn:1 ~page:2 ~mode:Lock.X = Lock.Would_block);
  match Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.X with
  | Lock.Deadlock cycle ->
    check Alcotest.bool "cycle mentions both" true (List.mem 1 cycle && List.mem 2 cycle)
  | _ -> Alcotest.fail "deadlock not detected"

let test_lock_three_way_deadlock () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:2 ~page:2 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:3 ~page:3 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:1 ~page:2 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:2 ~page:3 ~mode:Lock.X);
  match Lock.acquire t ~txn:3 ~page:1 ~mode:Lock.X with
  | Lock.Deadlock cycle -> check Alcotest.bool "3-cycle" true (List.length cycle >= 3)
  | _ -> Alcotest.fail "3-way deadlock not detected"

let test_lock_fifo_fairness () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.S);
  (* writer queues behind the reader *)
  check Alcotest.bool "writer waits" true
    (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.X = Lock.Would_block);
  (* a later reader may not overtake the queued writer *)
  check Alcotest.bool "reader cannot overtake writer" true
    (Lock.acquire t ~txn:3 ~page:1 ~mode:Lock.S = Lock.Would_block)

let test_lock_withdraw () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:2 ~page:1 ~mode:Lock.X);
  Lock.withdraw t ~txn:2 ~page:1;
  check Alcotest.bool "no longer waiting" false (Lock.waiting t ~txn:2)

let test_lock_locked_pages () =
  let t = Lock.create () in
  ignore (Lock.acquire t ~txn:1 ~page:1 ~mode:Lock.X);
  ignore (Lock.acquire t ~txn:1 ~page:2 ~mode:Lock.S);
  check Alcotest.int "two pages" 2 (Lock.locked_pages t);
  Lock.release_all t ~txn:1;
  check Alcotest.int "none" 0 (Lock.locked_pages t)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_page_roundtrip; prop_page_lookup_matches_records; prop_page_update_equal_length;
      prop_wal_roundtrip; prop_wal_injective; prop_wal_truncation_corrupt;
      prop_wal_bitflip_corrupt; prop_wal_delta_apply; prop_wal_diff_range;
    ]

let () =
  Alcotest.run "dbm_storage substrate"
    [
      ( "vdisk",
        [
          Alcotest.test_case "read/write" `Quick test_vdisk_read_write;
          Alcotest.test_case "crash drops unsynced" `Quick test_vdisk_crash_drops_unsynced;
          Alcotest.test_case "sync persists" `Quick test_vdisk_sync_persists;
          Alcotest.test_case "defensive copies" `Quick test_vdisk_write_isolated;
          Alcotest.test_case "bounds" `Quick test_vdisk_bounds;
        ] );
      ( "journal",
        [
          Alcotest.test_case "order" `Quick test_journal_order;
          Alcotest.test_case "crash" `Quick test_journal_crash;
          Alcotest.test_case "sequence numbers" `Quick test_journal_seq_numbers;
          Alcotest.test_case "truncate" `Quick test_journal_truncate;
          Alcotest.test_case "truncate bounds" `Quick test_journal_truncate_bounds;
        ] );
      ( "page",
        [
          Alcotest.test_case "roundtrip" `Quick test_page_roundtrip;
          Alcotest.test_case "lsn" `Quick test_page_lsn;
          Alcotest.test_case "update/lookup" `Quick test_page_update_lookup;
          Alcotest.test_case "in-place update" `Quick test_page_update_in_place;
          Alcotest.test_case "lookup allocation bounded" `Quick
            test_page_lookup_allocation_bounded;
          Alcotest.test_case "page full" `Quick test_page_full;
          Alcotest.test_case "duplicate keys" `Quick test_page_duplicate_keys_last_wins;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "legacy roundtrip" `Quick test_wal_legacy_roundtrip;
          Alcotest.test_case "peeks agree across framings" `Quick
            test_wal_peeks_agree_across_framings;
          Alcotest.test_case "checksum" `Quick test_wal_checksum_detects_corruption;
          Alcotest.test_case "truncated" `Quick test_wal_truncated;
          Alcotest.test_case "accessors" `Quick test_wal_accessors;
          Alcotest.test_case "encode allocation bounded" `Quick
            test_wal_encode_allocation_bounded;
          Alcotest.test_case "decode allocation bounded" `Quick
            test_wal_decode_allocation_bounded;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_pool_eviction_lru;
          Alcotest.test_case "pinned not evicted" `Quick test_pool_pinned_not_evicted;
          Alcotest.test_case "dirty write-back" `Quick test_pool_dirty_writeback;
          Alcotest.test_case "WAL gate" `Quick test_pool_wal_gate;
          Alcotest.test_case "flush_all" `Quick test_pool_flush_all;
          Alcotest.test_case "nested pins" `Quick test_pool_nested_pins;
        ] );
      ( "lock_mgr",
        [
          Alcotest.test_case "grant and conflict" `Quick test_lock_grant_and_conflict;
          Alcotest.test_case "release then grant" `Quick test_lock_release_then_grant;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "upgrade blocked" `Quick test_lock_upgrade_blocked_by_other_reader;
          Alcotest.test_case "deadlock" `Quick test_lock_deadlock_detected;
          Alcotest.test_case "3-way deadlock" `Quick test_lock_three_way_deadlock;
          Alcotest.test_case "fifo fairness" `Quick test_lock_fifo_fairness;
          Alcotest.test_case "withdraw" `Quick test_lock_withdraw;
          Alcotest.test_case "locked pages" `Quick test_lock_locked_pages;
        ] );
      ("properties", qsuite);
    ]
