(* Tests for MVCC snapshot reads: a pinned snapshot must observe
   exactly the committed state at its pin point — never a later commit,
   never uncommitted work — under random histories of transactions,
   crashes and engine housekeeping, for every snapshot-capable engine;
   the scheduler's snapshot read-only class must run lock-free and
   restart-free; and the per-class latency histograms must merge into
   the combined one exactly. *)

module Kv = Dbm_storage.Kv
module Scheduler = Dbm_storage.Scheduler
module Server = Dbm_storage.Server
module Commit_pipeline = Dbm_storage.Commit_pipeline
module Engine_diff = Dbm_storage.Engine_diff
module Engine_versel = Dbm_storage.Engine_versel
module Engine_oplog = Dbm_storage.Engine_oplog
module Hist = Dbm_util.Stats.Histogram
module W = Dbm_workload.Workload

let check = Alcotest.check

(* --- snapshot-vs-model equivalence property ----------------------- *)

(* A random history interleaves transactional writes with snapshot
   pins, reads and releases, plus crashes and checkpoints.  The
   reference is a plain committed-state array maintained alongside
   (one live transaction at a time, so commit = apply the pending
   writes).  Every live snapshot carries the copy of the committed
   state taken at its pin; at every [SRead] each live snapshot must
   return exactly that copy for all keys — later commits and the open
   transaction's pending writes must both be invisible.  A crash kills
   every snapshot: reading through one must raise [Txn_finished]. *)

type sop =
  | SPut of int
  | SDel of int
  | SCommit
  | SAbort
  | SCrash
  | SCheckpoint
  | SPin
  | SRead
  | SRelease

let n_keys = 32

let sop_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> SPut k) (int_range 0 (n_keys - 1)));
        (2, map (fun k -> SDel k) (int_range 0 (n_keys - 1)));
        (3, return SCommit);
        (1, return SAbort);
        (1, return SCrash);
        (1, return SCheckpoint);
        (3, return SPin);
        (3, return SRead);
        (2, return SRelease);
      ])

let sop_print = function
  | SPut k -> Printf.sprintf "put%d" k
  | SDel k -> Printf.sprintf "del%d" k
  | SCommit -> "commit"
  | SAbort -> "abort"
  | SCrash -> "crash"
  | SCheckpoint -> "ckpt"
  | SPin -> "pin"
  | SRead -> "read"
  | SRelease -> "release"

let history_arb =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map sop_print ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 80) sop_gen)

module Snapshot_equiv (E : Kv.SNAPSHOT) = struct
  let run ops =
    let e = E.create ~n_keys () in
    let committed = Array.make n_keys None in
    let pending : (int, string option) Hashtbl.t = Hashtbl.create 16 in
    let txn = ref None in
    let snaps : (E.snapshot * string option array) list ref = ref [] in
    let ok = ref true in
    let ensure_txn () =
      match !txn with
      | Some t -> t
      | None ->
        let t = E.begin_txn e in
        txn := Some t;
        t
    in
    let check_snaps () =
      List.iter
        (fun (s, pinned) ->
          for k = 0 to n_keys - 1 do
            if E.snapshot_get s k <> pinned.(k) then ok := false
          done)
        !snaps
    in
    List.iteri
      (fun step op ->
        match op with
        | SPut k ->
          let v = Printf.sprintf "v%d" step in
          E.put (ensure_txn ()) k v;
          Hashtbl.replace pending k (Some v);
          check_snaps ()
        | SDel k ->
          E.delete (ensure_txn ()) k;
          Hashtbl.replace pending k None;
          check_snaps ()
        | SCommit -> (
          match !txn with
          | None -> ()
          | Some t ->
            E.commit t;
            txn := None;
            Hashtbl.iter (fun k v -> committed.(k) <- v) pending;
            Hashtbl.reset pending;
            check_snaps ())
        | SAbort -> (
          match !txn with
          | None -> ()
          | Some t ->
            E.abort t;
            txn := None;
            Hashtbl.reset pending;
            check_snaps ())
        | SCrash ->
          E.crash_and_recover e;
          txn := None;
          Hashtbl.reset pending;
          (* every snapshot died with the crash *)
          List.iter
            (fun (s, _) ->
              match E.snapshot_get s 0 with
              | _ -> ok := false
              | exception Kv.Txn_finished -> ())
            !snaps;
          snaps := [];
          if E.live_snapshots e <> 0 then ok := false
        | SCheckpoint ->
          (* housekeeping (merge/truncation) may require quiescence but
             must respect the snapshot horizon *)
          if !txn = None then begin
            E.checkpoint e;
            check_snaps ()
          end
        | SPin ->
          if List.length !snaps < 6 then
            snaps := (E.snapshot e, Array.copy committed) :: !snaps;
          check_snaps ()
        | SRead -> check_snaps ()
        | SRelease -> (
          match !snaps with
          | [] -> ()
          | (s, _) :: rest ->
            E.snapshot_release s;
            snaps := rest;
            check_snaps ()))
      ops;
    (match !txn with Some t -> E.abort t | None -> ());
    List.iter (fun (s, _) -> E.snapshot_release s) !snaps;
    if E.live_snapshots e <> 0 then ok := false;
    (* with every snapshot gone the store must still read back the
       committed state through an ordinary transaction *)
    let t = E.begin_txn e in
    for k = 0 to n_keys - 1 do
      if E.get t k <> committed.(k) then ok := false
    done;
    E.abort t;
    !ok

  let property name =
    QCheck.Test.make ~name ~count:120 history_arb run
end

module Diff_equiv = Snapshot_equiv (Engine_diff)
module Versel_equiv = Snapshot_equiv (Engine_versel)
module Oplog_equiv = Snapshot_equiv (Engine_oplog)

(* --- the read-only class is lock-free and restart-free ------------ *)

(* Drive the open-loop server over Engine_diff with every transaction
   read-only on the snapshot path: the lock manager must never be
   consulted and nothing can restart.  Then a contended mixed run:
   writers may restart, the read-only class may not, and the per-class
   histograms must partition the combined one. *)

let snapshot_factory e () =
  let s = Engine_diff.snapshot e in
  {
    Scheduler.view_get = (fun k -> Engine_diff.snapshot_get s k);
    view_close = (fun () -> Engine_diff.snapshot_release s);
  }

let mixed_workload ~n ~seed ~read_frac =
  let cfg =
    {
      W.n_transactions = n;
      min_pages = 2;
      max_pages = 6;
      write_fraction = 0.8;
      pattern = W.Zipfian { theta = 0.99 };
      db_pages = 32;
      seed;
    }
  in
  let txns =
    W.apply_read_fraction (Dbm_util.Prng.create (seed lxor 0x5eed)) ~read_frac (W.generate cfg)
  in
  let read_only = Array.map (fun t -> W.write_set_size t = 0) txns in
  let scripts =
    Array.map
      (fun t ->
        List.init (Array.length t.W.pages) (fun i ->
            let k = t.W.pages.(i) * 4 in
            if t.W.writes.(i) then Scheduler.Put (k, "snap-test") else Scheduler.Get k))
      txns
  in
  (scripts, read_only)

let server_run ~read_frac =
  let n = 120 in
  let scripts, read_only = mixed_workload ~n ~seed:9125 ~read_frac in
  let e = Engine_diff.create ~n_keys:256 () in
  let module Srv = Server.Make (Engine_diff) in
  let arrivals =
    let rng = Dbm_util.Prng.create 9125 in
    Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (W.Poisson { rate = 20_000.0 }) ~n)
  in
  let r =
    Srv.run ~snapshot:(snapshot_factory e) ~read_only ~mode:Commit_pipeline.Eager
      ~arrivals_us:arrivals ~scripts e
  in
  (r, read_only, e)

let test_all_read_only_lock_free () =
  let n = 80 in
  let scripts, _ = mixed_workload ~n ~seed:77 ~read_frac:1.0 in
  let read_only = Array.make n true in
  let e = Engine_diff.create ~n_keys:256 () in
  let module Srv = Server.Make (Engine_diff) in
  let arrivals =
    let rng = Dbm_util.Prng.create 77 in
    Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (W.Poisson { rate = 20_000.0 }) ~n)
  in
  let r =
    Srv.run ~snapshot:(snapshot_factory e) ~read_only ~mode:Commit_pipeline.Eager
      ~arrivals_us:arrivals ~scripts e
  in
  check Alcotest.int "all transactions acknowledged" n r.Server.completed;
  check Alcotest.int "zero lock acquisitions" 0 r.Server.lock_acquires;
  check Alcotest.int "zero restarts" 0 r.Server.restarts;
  check Alcotest.int "zero read-only restarts" 0 r.Server.ro_restarts;
  check Alcotest.int "no leaked snapshot" 0 (Engine_diff.live_snapshots e)

let test_mixed_run_read_only_class () =
  let r, read_only, e = server_run ~read_frac:0.5 in
  let n = Array.length read_only in
  let n_ro = Array.fold_left (fun a ro -> if ro then a + 1 else a) 0 read_only in
  check Alcotest.int "all transactions acknowledged" n r.Server.completed;
  check Alcotest.int "zero read-only restarts" 0 r.Server.ro_restarts;
  check Alcotest.int "no leaked snapshot" 0 (Engine_diff.live_snapshots e);
  check Alcotest.int "read-only class histogram" n_ro (Hist.count r.Server.ro_latency_us);
  check Alcotest.int "read-write class histogram" (n - n_ro) (Hist.count r.Server.rw_latency_us);
  check Alcotest.int "combined histogram is the merge" n (Hist.count r.Server.latency_us)

(* a read-only script containing a write must be rejected up front *)
let test_read_only_script_validated () =
  let e = Engine_diff.create ~n_keys:64 () in
  let module Sch = Scheduler.Make (Engine_diff) in
  let ex = Sch.Exec.create ~snapshot:(snapshot_factory e) e in
  Alcotest.check_raises "write in a read-only script"
    (Invalid_argument "Scheduler.Exec.spawn: write in read-only script")
    (fun () ->
      ignore (Sch.Exec.spawn ex ~read_only:true ~index:0 ~id:0 [ Scheduler.Put (0, "x") ]))

(* --- Histogram.merge ---------------------------------------------- *)

(* Merging two histograms must be indistinguishable from recording the
   union into one: same count, total, max and percentiles — on the
   exact small-sample path and on the bucketed path alike (sizes up to
   1200 straddle the default 512-sample exact limit). *)
let prop_histogram_merge =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 1200) (map abs_float (float_bound_exclusive 1e6)))
        (list_size (int_range 0 1200) (map abs_float (float_bound_exclusive 1e6))))
  in
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "|a|=%d |b|=%d" (List.length a) (List.length b))
      gen
  in
  QCheck.Test.make ~name:"Histogram.merge = recording the union" ~count:200 arb
    (fun (l1, l2) ->
      let h1 = Hist.create () and h2 = Hist.create () and u = Hist.create () in
      List.iter (fun x -> Hist.add h1 x; Hist.add u x) l1;
      List.iter (fun x -> Hist.add h2 x; Hist.add u x) l2;
      let m = Hist.merge h1 h2 in
      (* totals are float sums taken in different orders; only the
         percentile machinery (counts, buckets, exact prefixes, max) is
         bit-exact under merge *)
      Hist.count m = Hist.count u
      && Float.abs (Hist.total m -. Hist.total u)
         <= 1e-9 *. (1.0 +. Float.abs (Hist.total u))
      && (Hist.count u = 0
         || Float.equal (Hist.max m) (Hist.max u)
            && List.for_all
                 (fun p -> Float.equal (Hist.percentile m ~p) (Hist.percentile u ~p))
                 [ 1.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]))

let test_merge_empty_sides () =
  let h = Hist.create () in
  Hist.add h 5.0;
  Hist.add h 7.0;
  let e = Hist.create () in
  check Alcotest.int "empty right" 2 (Hist.count (Hist.merge h e));
  check Alcotest.int "empty left" 2 (Hist.count (Hist.merge e h));
  check Alcotest.int "both empty" 0 (Hist.count (Hist.merge e e));
  check (Alcotest.float 1e-9) "values survive" 7.0 (Hist.max (Hist.merge e h))

(* --- heavy-tailed size distributions ------------------------------ *)

let size_cfg =
  {
    W.n_transactions = 400;
    min_pages = 2;
    max_pages = 64;
    write_fraction = 0.2;
    pattern = W.Random_access;
    db_pages = 1024;
    seed = 4242;
  }

let sizes dist = Array.map W.read_set_size (W.generate_with ~size_dist:dist size_cfg)

let test_size_dist_bounds () =
  List.iter
    (fun dist ->
      Array.iter
        (fun s ->
          if s < size_cfg.W.min_pages || s > size_cfg.W.max_pages then
            Alcotest.failf "size %d outside [%d,%d]" s size_cfg.W.min_pages
              size_cfg.W.max_pages)
        (sizes dist))
    [
      W.Uniform_size;
      W.Pareto_size { alpha = 1.5 };
      W.Lognormal_size { mu = 1.5; sigma = 1.0 };
    ]

let test_size_dist_heavy_tail () =
  (* Pareto at alpha 1.5 must be mostly-small with a real tail: the
     median stays near min_pages while the maximum escapes it. *)
  let s = sizes (W.Pareto_size { alpha = 1.5 }) in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let median = sorted.(Array.length sorted / 2) in
  let max_s = sorted.(Array.length sorted - 1) in
  if median > 8 then Alcotest.failf "Pareto median %d too large" median;
  if max_s < 32 then Alcotest.failf "Pareto max %d shows no tail" max_s

let test_size_dist_deterministic_and_uniform_identity () =
  let a = W.generate_with ~size_dist:(W.Pareto_size { alpha = 1.5 }) size_cfg in
  let b = W.generate_with ~size_dist:(W.Pareto_size { alpha = 1.5 }) size_cfg in
  check Alcotest.string "same seed, same stream" (W.to_string a) (W.to_string b);
  check Alcotest.string "Uniform_size = generate"
    (W.to_string (W.generate size_cfg))
    (W.to_string (W.generate_with ~size_dist:W.Uniform_size size_cfg))

let test_size_dist_digest_tags () =
  let hex dist =
    let d = Dbm_util.Digest.create () in
    W.feed_size_dist d dist;
    Dbm_util.Digest.hex d
  in
  let all =
    [
      hex W.Uniform_size;
      hex (W.Pareto_size { alpha = 1.5 });
      hex (W.Pareto_size { alpha = 2.0 });
      hex (W.Lognormal_size { mu = 1.5; sigma = 1.0 });
    ]
  in
  check Alcotest.int "distinct digests" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_size_dist_validation () =
  List.iter
    (fun dist ->
      match W.validate_size_dist dist with
      | () -> Alcotest.fail "bad size_dist accepted"
      | exception Invalid_argument _ -> ())
    [
      W.Pareto_size { alpha = 0.0 };
      W.Pareto_size { alpha = Float.nan };
      W.Lognormal_size { mu = 0.0; sigma = -1.0 };
    ]

(* --- apply_read_fraction ------------------------------------------ *)

let test_read_fraction_extremes () =
  let txns = W.generate size_cfg in
  let before = W.to_string txns in
  let none = W.apply_read_fraction (Dbm_util.Prng.create 1) ~read_frac:0.0 txns in
  let all = W.apply_read_fraction (Dbm_util.Prng.create 1) ~read_frac:1.0 txns in
  check Alcotest.string "read_frac 0 changes nothing" before (W.to_string none);
  Array.iter
    (fun t ->
      if W.write_set_size t <> 0 then Alcotest.fail "read_frac 1 left a write")
    all;
  check Alcotest.string "input not modified" before (W.to_string txns)

let test_read_fraction_deterministic () =
  let txns = W.generate size_cfg in
  let a = W.apply_read_fraction (Dbm_util.Prng.create 7) ~read_frac:0.5 txns in
  let b = W.apply_read_fraction (Dbm_util.Prng.create 7) ~read_frac:0.5 txns in
  check Alcotest.string "same rng, same carve" (W.to_string a) (W.to_string b);
  let ro = Array.fold_left (fun n t -> if W.write_set_size t = 0 then n + 1 else n) 0 a in
  if ro = 0 || ro = Array.length a then
    Alcotest.failf "read_frac 0.5 carved a degenerate class (%d of %d)" ro (Array.length a)

let () =
  Alcotest.run "snapshot"
    [
      ( "snapshot-vs-model",
        [
          QCheck_alcotest.to_alcotest
            (Diff_equiv.property "diff snapshot sees exactly the pinned committed state");
          QCheck_alcotest.to_alcotest
            (Versel_equiv.property "versel snapshot sees exactly the pinned committed state");
          QCheck_alcotest.to_alcotest
            (Oplog_equiv.property "oplog snapshot sees exactly the pinned committed state");
        ] );
      ( "read-only-class",
        [
          Alcotest.test_case "all-read-only run is lock-free" `Quick
            test_all_read_only_lock_free;
          Alcotest.test_case "mixed run: ro class never restarts" `Quick
            test_mixed_run_read_only_class;
          Alcotest.test_case "read-only script with a write is rejected" `Quick
            test_read_only_script_validated;
        ] );
      ( "histogram-merge",
        [
          QCheck_alcotest.to_alcotest prop_histogram_merge;
          Alcotest.test_case "empty sides" `Quick test_merge_empty_sides;
        ] );
      ( "size-dist",
        [
          Alcotest.test_case "draws clipped to the page range" `Quick test_size_dist_bounds;
          Alcotest.test_case "Pareto is mostly-small with a tail" `Quick
            test_size_dist_heavy_tail;
          Alcotest.test_case "deterministic; Uniform_size = generate" `Quick
            test_size_dist_deterministic_and_uniform_identity;
          Alcotest.test_case "digest tags distinct" `Quick test_size_dist_digest_tags;
          Alcotest.test_case "bad parameters rejected" `Quick test_size_dist_validation;
        ] );
      ( "read-fraction",
        [
          Alcotest.test_case "extremes" `Quick test_read_fraction_extremes;
          Alcotest.test_case "deterministic, non-degenerate" `Quick
            test_read_fraction_deterministic;
        ] );
    ]
