(* Tests for the persistent EWMA cost model: exact roundtrip through
   the flat-file format (hex floats), the smoothing math, and the
   failure modes — every kind of damaged file must load as an empty
   model, never an error, because the model only orders the schedule. *)

module Cost_model = Dbm_util.Cost_model

let check = Alcotest.check

let digest_a = String.make 32 'a'

let digest_b = "0123456789abcdef0123456789abcdef"

let seq = ref 0

let temp_path () =
  incr seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbm-cost-model-test-%d-%d" (Unix.getpid ()) !seq)

let with_temp_file f =
  let path = temp_path () in
  if Sys.file_exists path then Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* --- estimates and the EWMA ------------------------------------------- *)

let test_empty_model () =
  let m = Cost_model.in_memory ~version:"v1" in
  check Alcotest.int "empty size" 0 (Cost_model.size m);
  check (Alcotest.option (Alcotest.float 0.0)) "unknown digest has no estimate" None
    (Cost_model.estimate m ~digest:digest_a);
  check Alcotest.int "unknown digest has no observations" 0
    (Cost_model.observations m ~digest:digest_a)

let test_ewma_math () =
  let m = Cost_model.in_memory ~version:"v1" in
  Cost_model.observe m ~digest:digest_a ~wall_ms:10.0;
  check (Alcotest.option (Alcotest.float 1e-12)) "first observation sets the estimate"
    (Some 10.0)
    (Cost_model.estimate m ~digest:digest_a);
  Cost_model.observe m ~digest:digest_a ~wall_ms:20.0;
  let a = Cost_model.ewma_alpha in
  check (Alcotest.option (Alcotest.float 1e-9)) "second observation smooths"
    (Some (10.0 +. (a *. (20.0 -. 10.0))))
    (Cost_model.estimate m ~digest:digest_a);
  check Alcotest.int "observation count" 2 (Cost_model.observations m ~digest:digest_a)

let test_bad_observations_ignored () =
  let m = Cost_model.in_memory ~version:"v1" in
  Cost_model.observe m ~digest:digest_a ~wall_ms:Float.nan;
  Cost_model.observe m ~digest:digest_a ~wall_ms:Float.infinity;
  Cost_model.observe m ~digest:digest_a ~wall_ms:(-1.0);
  check (Alcotest.option (Alcotest.float 0.0)) "non-finite/negative walls ignored" None
    (Cost_model.estimate m ~digest:digest_a);
  Cost_model.observe m ~digest:digest_a ~wall_ms:5.0;
  check (Alcotest.option (Alcotest.float 1e-12)) "valid wall still lands" (Some 5.0)
    (Cost_model.estimate m ~digest:digest_a)

let test_in_memory_save_noop () =
  let m = Cost_model.in_memory ~version:"v1" in
  Cost_model.observe m ~digest:digest_a ~wall_ms:1.0;
  check Alcotest.string "no backing path" "" (Cost_model.path m);
  Cost_model.save m (* must not raise or create a file named "" *)

(* --- persistence ------------------------------------------------------- *)

let test_roundtrip_exact () =
  with_temp_file (fun path ->
      let m = Cost_model.load ~path ~version:"v1" in
      (* Awkward values on purpose: the hex-float encoding must
         round-trip every bit, not just pretty decimals. *)
      Cost_model.observe m ~digest:digest_a ~wall_ms:(1.0 /. 3.0);
      Cost_model.observe m ~digest:digest_a ~wall_ms:0.1;
      Cost_model.observe m ~digest:digest_b ~wall_ms:1234.5678;
      Cost_model.save m;
      let m' = Cost_model.load ~path ~version:"v1" in
      check Alcotest.int "size survives" 2 (Cost_model.size m');
      check (Alcotest.option (Alcotest.float 0.0)) "estimate bit-identical"
        (Cost_model.estimate m ~digest:digest_a)
        (Cost_model.estimate m' ~digest:digest_a);
      check (Alcotest.option (Alcotest.float 0.0)) "second digest bit-identical"
        (Cost_model.estimate m ~digest:digest_b)
        (Cost_model.estimate m' ~digest:digest_b);
      check Alcotest.int "observation counts survive" 2
        (Cost_model.observations m' ~digest:digest_a))

let test_missing_file_is_empty () =
  let m = Cost_model.load ~path:(temp_path ()) ~version:"v1" in
  check Alcotest.int "missing file loads empty" 0 (Cost_model.size m)

let test_version_mismatch_is_empty () =
  with_temp_file (fun path ->
      let m = Cost_model.load ~path ~version:"v1" in
      Cost_model.observe m ~digest:digest_a ~wall_ms:10.0;
      Cost_model.save m;
      let m' = Cost_model.load ~path ~version:"v2" in
      check Alcotest.int "stale schema loads empty" 0 (Cost_model.size m');
      let m'' = Cost_model.load ~path ~version:"v1" in
      check Alcotest.int "matching schema still loads" 1 (Cost_model.size m''))

let clobber path f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f content);
  close_out oc

let test_damage_is_empty () =
  with_temp_file (fun path ->
      let populate () =
        let m = Cost_model.load ~path ~version:"v1" in
        Cost_model.observe m ~digest:digest_a ~wall_ms:10.0;
        Cost_model.observe m ~digest:digest_b ~wall_ms:20.0;
        Cost_model.save m
      in
      let loads_empty label =
        check Alcotest.int label 0 (Cost_model.size (Cost_model.load ~path ~version:"v1"))
      in
      populate ();
      clobber path (fun s -> String.sub s 0 (String.length s - 5));
      loads_empty "truncated file loads empty";
      populate ();
      clobber path (fun s ->
          let b = Bytes.of_string s in
          let i = Bytes.length b - 2 in
          Bytes.set b i (if Bytes.get b i = '1' then '2' else '1');
          Bytes.to_string b);
      loads_empty "corrupted entry fails the checksum";
      clobber path (fun _ -> "not a cost model at all\n");
      loads_empty "foreign file loads empty";
      clobber path (fun _ -> "");
      loads_empty "empty file loads empty")

let () =
  Alcotest.run "dbm cost model"
    [
      ( "ewma",
        [
          Alcotest.test_case "empty model" `Quick test_empty_model;
          Alcotest.test_case "smoothing math" `Quick test_ewma_math;
          Alcotest.test_case "bad observations ignored" `Quick test_bad_observations_ignored;
          Alcotest.test_case "in-memory save is a no-op" `Quick test_in_memory_save_noop;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "exact roundtrip" `Quick test_roundtrip_exact;
          Alcotest.test_case "missing file" `Quick test_missing_file_is_empty;
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch_is_empty;
          Alcotest.test_case "damage loads empty" `Quick test_damage_is_empty;
        ] );
    ]
