(* Tests for the transaction workload generator. *)

module W = Dbm_workload.Workload

let check = Alcotest.check

let cfg = { W.default with W.n_transactions = 40; seed = 5 }

let test_determinism () =
  let a = W.generate cfg and b = W.generate cfg in
  check Alcotest.bool "same seed same workload" true (a = b);
  let c = W.generate { cfg with W.seed = 6 } in
  check Alcotest.bool "different seed differs" true (a <> c)

let test_sizes_in_range () =
  Array.iter
    (fun t ->
      let n = W.read_set_size t in
      if n < cfg.W.min_pages || n > cfg.W.max_pages then
        Alcotest.failf "size %d out of [%d,%d]" n cfg.W.min_pages cfg.W.max_pages)
    (W.generate cfg)

let test_pages_in_db () =
  Array.iter
    (fun t ->
      Array.iter
        (fun p -> if p < 0 || p >= cfg.W.db_pages then Alcotest.failf "page %d out of db" p)
        t.W.pages)
    (W.generate cfg)

let test_random_pages_distinct () =
  Array.iter
    (fun t ->
      let n = Array.length t.W.pages in
      let d = List.length (List.sort_uniq Int.compare (Array.to_list t.W.pages)) in
      check Alcotest.int "distinct pages" n d)
    (W.generate cfg)

let test_sequential_runs () =
  let seq = W.generate { cfg with W.pattern = W.Sequential } in
  Array.iter
    (fun t ->
      Array.iteri
        (fun i p -> if i > 0 && p <> t.W.pages.(i - 1) + 1 then Alcotest.fail "not consecutive")
        t.W.pages)
    seq

let test_write_fraction () =
  let txns = W.generate { cfg with W.n_transactions = 200 } in
  let reads = W.total_pages txns and writes = W.total_writes txns in
  let f = float_of_int writes /. float_of_int reads in
  check Alcotest.bool "write fraction ~20%" true (f > 0.18 && f < 0.22);
  (* per transaction, the rounding is exact *)
  Array.iter
    (fun t ->
      let expected =
        int_of_float (Float.round (0.20 *. float_of_int (W.read_set_size t)))
      in
      check Alcotest.int "per-txn write count" expected (W.write_set_size t))
    txns

let test_write_subset_of_read () =
  Array.iter
    (fun t ->
      let reads = Array.to_list t.W.pages in
      List.iter
        (fun w -> if not (List.mem w reads) then Alcotest.fail "write outside read set")
        (W.write_pages t))
    (W.generate cfg)

let test_write_pages_order () =
  let txns = W.generate cfg in
  Array.iter
    (fun t ->
      let expected =
        List.filteri (fun i _ -> t.W.writes.(i)) (Array.to_list t.W.pages)
      in
      check (Alcotest.list Alcotest.int) "reference order" expected (W.write_pages t))
    txns

let test_zero_write_fraction () =
  let txns = W.generate { cfg with W.write_fraction = 0.0 } in
  check Alcotest.int "no writes" 0 (W.total_writes txns)

let test_full_write_fraction () =
  let txns = W.generate { cfg with W.write_fraction = 1.0 } in
  check Alcotest.int "all writes" (W.total_pages txns) (W.total_writes txns)

let test_validation () =
  let bad config msg =
    match W.generate config with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail msg
  in
  bad { cfg with W.min_pages = 0 } "min_pages 0 accepted";
  bad { cfg with W.max_pages = 0 } "max < min accepted";
  bad { cfg with W.db_pages = 10 } "db smaller than max accepted";
  bad { cfg with W.write_fraction = 1.5 } "write fraction > 1 accepted"

let test_hotspot_skew () =
  let cfg =
    { cfg with
      W.pattern = W.Hotspot { hot_fraction = 0.05; hot_access_prob = 0.8 };
      n_transactions = 60 }
  in
  let hot_limit = int_of_float (0.05 *. float_of_int cfg.W.db_pages) in
  let hot = ref 0 and total = ref 0 in
  Array.iter
    (fun t ->
      Array.iter
        (fun p ->
          incr total;
          if p < hot_limit then incr hot)
        t.W.pages)
    (W.generate cfg);
  let f = float_of_int !hot /. float_of_int !total in
  check Alcotest.bool "hot region draws ~80% of accesses" true (f > 0.7 && f < 0.9)

let test_hotspot_pages_distinct () =
  let cfg =
    { cfg with W.pattern = W.Hotspot { hot_fraction = 0.1; hot_access_prob = 0.9 } }
  in
  Array.iter
    (fun t ->
      let n = Array.length t.W.pages in
      let d = List.length (List.sort_uniq Int.compare (Array.to_list t.W.pages)) in
      check Alcotest.int "distinct" n d)
    (W.generate cfg)

let test_hotspot_validation () =
  let bad pattern msg =
    match W.generate { cfg with W.pattern } with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail msg
  in
  bad (W.Hotspot { hot_fraction = 0.0; hot_access_prob = 0.5 }) "hot_fraction 0 accepted";
  bad (W.Hotspot { hot_fraction = 1.5; hot_access_prob = 0.5 }) "hot_fraction > 1 accepted";
  bad (W.Hotspot { hot_fraction = 0.5; hot_access_prob = 1.5 }) "hot_access_prob > 1 accepted";
  (* hot region must still fit max_pages distinct pages *)
  bad (W.Hotspot { hot_fraction = 0.001; hot_access_prob = 0.9 }) "tiny hot region accepted"

let test_serialization_roundtrip () =
  let txns = W.generate cfg in
  check Alcotest.bool "roundtrip" true (W.of_string (W.to_string txns) = txns)

let test_serialization_format () =
  let txns =
    [| { W.id = 3; pages = [| 10; 20; 30 |]; writes = [| false; true; false |] } |]
  in
  check Alcotest.string "format" "3 10 20! 30\n" (W.to_string txns);
  check Alcotest.bool "parses back" true (W.of_string "3 10 20! 30" = txns)

let test_serialization_rejects_garbage () =
  (match W.of_string "not-a-number 1 2" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad id accepted");
  match W.of_string "1 2 x!" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad page accepted"

let test_empty_workload () =
  check Alcotest.int "no transactions" 0
    (Array.length (W.generate { cfg with W.n_transactions = 0 }))

(* --- Zipfian access pattern ---------------------------------------- *)

let zipf_cfg = { cfg with W.pattern = W.Zipfian { theta = 0.99 }; db_pages = 1024 }

let test_zipfian_skew () =
  (* the hottest 1% of pages must draw far more than 1% of accesses
     (small read sets: duplicate rejection barely perturbs the skew) *)
  let txns =
    W.generate { zipf_cfg with W.n_transactions = 400; min_pages = 1; max_pages = 8 }
  in
  let total = ref 0 and hot = ref 0 in
  Array.iter
    (fun t ->
      Array.iter
        (fun p ->
          incr total;
          if p < zipf_cfg.W.db_pages / 100 then incr hot)
        t.W.pages)
    txns;
  let frac = float_of_int !hot /. float_of_int !total in
  if frac < 0.10 then Alcotest.failf "zipfian skew too weak: hot fraction %.3f" frac

let test_zipfian_pages_distinct () =
  Array.iter
    (fun t ->
      let sorted = List.sort_uniq Int.compare (Array.to_list t.W.pages) in
      check Alcotest.int "pages distinct within a txn" (Array.length t.W.pages)
        (List.length sorted))
    (W.generate zipf_cfg)

let test_zipfian_validation () =
  List.iter
    (fun theta ->
      match W.generate { zipf_cfg with W.pattern = W.Zipfian { theta } } with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "theta %f accepted" theta)
    [ 0.0; -1.0; Float.nan; Float.infinity ]

let test_zipfian_digest_distinct () =
  let dg pattern =
    let d = Dbm_util.Digest.create () in
    W.feed_config d { cfg with W.pattern };
    Dbm_util.Digest.hex d
  in
  let all =
    [
      dg W.Random_access;
      dg (W.Hotspot { hot_fraction = 0.05; hot_access_prob = 0.8 });
      dg (W.Zipfian { theta = 0.99 });
      dg (W.Zipfian { theta = 1.2 });
    ]
  in
  check Alcotest.int "patterns digest distinctly" 4 (List.length (List.sort_uniq compare all))

(* --- open-loop arrival processes ----------------------------------- *)

let test_arrival_deterministic () =
  let gen seed a = W.gen_arrival_times (Dbm_util.Prng.create seed) a ~n:50 in
  let a = W.Poisson { rate = 100.0 } in
  check Alcotest.bool "same seed same trace" true (gen 3 a = gen 3 a);
  check Alcotest.bool "different seed differs" true (gen 3 a <> gen 4 a)

let test_arrival_increasing () =
  List.iter
    (fun a ->
      let ts = W.gen_arrival_times (Dbm_util.Prng.create 9) a ~n:200 in
      check Alcotest.int "n arrivals" 200 (Array.length ts);
      Array.iteri
        (fun i t ->
          if t <= 0.0 then Alcotest.failf "arrival %d not positive" i;
          if i > 0 && t <= ts.(i - 1) then Alcotest.failf "arrival %d not increasing" i)
        ts)
    [
      W.Poisson { rate = 500.0 };
      W.Bursty { on_rate = 900.0; off_rate = 0.0; mean_on = 0.01; mean_off = 0.02 };
      W.Bursty { on_rate = 800.0; off_rate = 50.0; mean_on = 0.05; mean_off = 0.01 };
    ]

let test_poisson_mean_rate () =
  let rate = 1000.0 in
  let n = 20_000 in
  let ts = W.gen_arrival_times (Dbm_util.Prng.create 21) (W.Poisson { rate }) ~n in
  let observed = float_of_int n /. ts.(n - 1) in
  if Float.abs (observed -. rate) /. rate > 0.05 then
    Alcotest.failf "poisson rate off: asked %.0f observed %.1f" rate observed;
  check (Alcotest.float 1e-9) "mean_rate is the rate" rate (W.mean_rate (W.Poisson { rate }))

let test_bursty_mean_rate () =
  let a = W.Bursty { on_rate = 2000.0; off_rate = 0.0; mean_on = 0.02; mean_off = 0.02 } in
  check (Alcotest.float 1e-9) "duty-cycle weighted" 1000.0 (W.mean_rate a);
  let n = 20_000 in
  let ts = W.gen_arrival_times (Dbm_util.Prng.create 22) a ~n in
  let observed = float_of_int n /. ts.(n - 1) in
  if Float.abs (observed -. 1000.0) /. 1000.0 > 0.10 then
    Alcotest.failf "bursty long-run rate off: observed %.1f" observed

let test_bursty_is_bursty () =
  (* interarrival variance of an on/off process must exceed Poisson's at
     the same mean rate (coefficient of variation > 1) *)
  let n = 10_000 in
  let gaps a seed =
    let ts = W.gen_arrival_times (Dbm_util.Prng.create seed) a ~n in
    Array.init (n - 1) (fun i -> ts.(i + 1) -. ts.(i))
  in
  let cv g =
    let m = Array.fold_left ( +. ) 0.0 g /. float_of_int (Array.length g) in
    let v =
      Array.fold_left (fun acc x -> acc +. (((x -. m) /. m) ** 2.0)) 0.0 g
      /. float_of_int (Array.length g)
    in
    sqrt v
  in
  let bursty =
    cv (gaps (W.Bursty { on_rate = 5000.0; off_rate = 0.0; mean_on = 0.01; mean_off = 0.04 }) 31)
  in
  let poisson = cv (gaps (W.Poisson { rate = 1000.0 }) 31) in
  if bursty <= poisson *. 1.3 then
    Alcotest.failf "bursty cv %.2f not above poisson cv %.2f" bursty poisson

let test_arrival_validation () =
  List.iter
    (fun a ->
      match W.validate_arrival a with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "bad arrival accepted")
    [
      W.Poisson { rate = 0.0 };
      W.Poisson { rate = -5.0 };
      W.Poisson { rate = Float.nan };
      W.Bursty { on_rate = 0.0; off_rate = 0.0; mean_on = 0.1; mean_off = 0.1 };
      W.Bursty { on_rate = 100.0; off_rate = -1.0; mean_on = 0.1; mean_off = 0.1 };
      W.Bursty { on_rate = 100.0; off_rate = 0.0; mean_on = 0.0; mean_off = 0.1 };
    ];
  match W.gen_arrival_times (Dbm_util.Prng.create 1) (W.Poisson { rate = 1.0 }) ~n:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative n accepted"

let test_arrival_digest_distinct () =
  let dg a =
    let d = Dbm_util.Digest.create () in
    W.feed_arrival d a;
    Dbm_util.Digest.hex d
  in
  let all =
    [
      dg (W.Poisson { rate = 100.0 });
      dg (W.Poisson { rate = 200.0 });
      dg (W.Bursty { on_rate = 100.0; off_rate = 0.0; mean_on = 0.1; mean_off = 0.1 });
      dg (W.Bursty { on_rate = 100.0; off_rate = 0.0; mean_on = 0.1; mean_off = 0.2 });
    ]
  in
  check Alcotest.int "arrival processes digest distinctly" 4
    (List.length (List.sort_uniq compare all))

let () =
  Alcotest.run "dbm_workload"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "sizes in range" `Quick test_sizes_in_range;
          Alcotest.test_case "pages in db" `Quick test_pages_in_db;
          Alcotest.test_case "random pages distinct" `Quick test_random_pages_distinct;
          Alcotest.test_case "sequential runs" `Quick test_sequential_runs;
          Alcotest.test_case "write fraction" `Quick test_write_fraction;
          Alcotest.test_case "write subset of read" `Quick test_write_subset_of_read;
          Alcotest.test_case "write pages order" `Quick test_write_pages_order;
          Alcotest.test_case "zero write fraction" `Quick test_zero_write_fraction;
          Alcotest.test_case "full write fraction" `Quick test_full_write_fraction;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "hotspot skew" `Quick test_hotspot_skew;
          Alcotest.test_case "hotspot distinct pages" `Quick test_hotspot_pages_distinct;
          Alcotest.test_case "hotspot validation" `Quick test_hotspot_validation;
          Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "serialization format" `Quick test_serialization_format;
          Alcotest.test_case "serialization rejects garbage" `Quick
            test_serialization_rejects_garbage;
          Alcotest.test_case "empty workload" `Quick test_empty_workload;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "zipfian distinct pages" `Quick test_zipfian_pages_distinct;
          Alcotest.test_case "zipfian validation" `Quick test_zipfian_validation;
          Alcotest.test_case "zipfian digests distinctly" `Quick test_zipfian_digest_distinct;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "strictly increasing" `Quick test_arrival_increasing;
          Alcotest.test_case "poisson mean rate" `Quick test_poisson_mean_rate;
          Alcotest.test_case "bursty mean rate" `Quick test_bursty_mean_rate;
          Alcotest.test_case "bursty is bursty" `Quick test_bursty_is_bursty;
          Alcotest.test_case "validation" `Quick test_arrival_validation;
          Alcotest.test_case "digests distinctly" `Quick test_arrival_digest_distinct;
        ] );
    ]
