(* Tests for the database machine: lock table, configuration,
   end-to-end bare-machine simulation invariants. *)

module Config = Dbm_machine.Config
module Lock = Dbm_machine.Lock_table
module Machine = Dbm_machine.Machine
module Arch = Dbm_machine.Arch
module Results = Dbm_machine.Results
module W = Dbm_workload.Workload

let check = Alcotest.check

(* --- Lock_table ------------------------------------------------------- *)

let test_shared_compatible () =
  let t = Lock.create () in
  check Alcotest.bool "t1 S" true (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Shared) ]);
  check Alcotest.bool "t2 S" true (Lock.acquire_all t ~owner:2 ~locks:[ (5, Lock.Shared) ])

let test_exclusive_conflicts () =
  let t = Lock.create () in
  check Alcotest.bool "t1 X" true (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Exclusive) ]);
  check Alcotest.bool "t2 S blocked" false (Lock.acquire_all t ~owner:2 ~locks:[ (5, Lock.Shared) ]);
  check Alcotest.bool "t2 X blocked" false
    (Lock.acquire_all t ~owner:2 ~locks:[ (5, Lock.Exclusive) ])

let test_all_or_nothing () =
  let t = Lock.create () in
  ignore (Lock.acquire_all t ~owner:1 ~locks:[ (7, Lock.Exclusive) ]);
  (* t2 wants pages 6 and 7: must get neither *)
  check Alcotest.bool "refused" false
    (Lock.acquire_all t ~owner:2 ~locks:[ (6, Lock.Shared); (7, Lock.Shared) ]);
  check (Alcotest.option Alcotest.bool) "page 6 untouched" None
    (Option.map (fun _ -> true) (Lock.holds t ~owner:2 ~page:6))

let test_release_unblocks () =
  let t = Lock.create () in
  ignore (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Exclusive) ]);
  Lock.release_all t ~owner:1;
  check Alcotest.bool "free after release" true
    (Lock.acquire_all t ~owner:2 ~locks:[ (5, Lock.Exclusive) ]);
  check Alcotest.int "one page locked" 1 (Lock.locked_pages t)

let test_duplicate_upgrade () =
  let t = Lock.create () in
  check Alcotest.bool "dup request" true
    (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Shared); (5, Lock.Exclusive) ]);
  check Alcotest.bool "holds X" true (Lock.holds t ~owner:1 ~page:5 = Some Lock.Exclusive)

let test_own_locks_never_conflict () =
  let t = Lock.create () in
  ignore (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Exclusive) ]);
  check Alcotest.bool "re-acquire own" true
    (Lock.acquire_all t ~owner:1 ~locks:[ (5, Lock.Shared); (6, Lock.Shared) ])

(* --- Config ------------------------------------------------------------ *)

let test_locate_striping () =
  let cfg = { Config.paper_base with Config.db_pages = 65536 } in
  let per_cyl = Dbm_disk.Params.pages_per_cylinder cfg.Config.disk in
  (* consecutive pages within a chunk stay on one disk *)
  let d0, l0 = Config.locate cfg ~page:0 in
  let d1, l1 = Config.locate cfg ~page:1 in
  check Alcotest.int "same disk" d0 d1;
  check Alcotest.int "adjacent" (l0 + 1) l1;
  (* the next chunk goes to the other disk *)
  let d2, _ = Config.locate cfg ~page:per_cyl in
  check Alcotest.bool "alternating chunks" true (d2 <> d0)

let test_locate_covers_all_pages () =
  let cfg = { Config.paper_base with Config.db_pages = 65536 } in
  let zone = Config.data_zone_pages cfg in
  for page = 0 to cfg.Config.db_pages - 1 do
    let d, local = Config.locate cfg ~page in
    if d < 0 || d >= cfg.Config.n_data_disks then Alcotest.failf "bad disk %d" d;
    if local < 0 || local >= zone then Alcotest.failf "local %d outside data zone %d" local zone
  done

let test_locate_scrambled_bijective () =
  let cfg = Config.with_scramble 11 { Config.paper_base with Config.db_pages = 4096 } in
  let seen = Hashtbl.create 4096 in
  for page = 0 to cfg.Config.db_pages - 1 do
    let key = Config.locate cfg ~page in
    if Hashtbl.mem seen key then Alcotest.failf "collision at page %d" page;
    Hashtbl.replace seen key ()
  done

let test_validate_rejects () =
  let bad cfg = match Config.validate cfg with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "invalid config accepted"
  in
  bad { Config.paper_base with Config.n_query_processors = 0 };
  bad { Config.paper_base with Config.mpl = 0 };
  bad { Config.paper_base with Config.db_pages = 10_000_000 }

(* --- Machine (bare) ----------------------------------------------------- *)

let small_machine = { Config.paper_base with Config.db_pages = 16384 }

let small_workload ?(pattern = W.Random_access) ?(n = 12) () =
  { W.default with W.n_transactions = n; pattern; db_pages = 16384; max_pages = 60; seed = 3 }

let run_bare ?pattern ?n () =
  Machine.run ~config:small_machine
    ~make_arch:(fun _ -> Arch.bare)
    ~workload:(W.generate (small_workload ?pattern ?n ()))

let test_all_pages_processed () =
  let txns = W.generate (small_workload ()) in
  let r = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:txns in
  check Alcotest.int "pages processed = total read set" (W.total_pages txns)
    r.Results.pages_processed;
  check Alcotest.int "all transactions" (Array.length txns) r.Results.n_transactions

let test_exec_time_consistent () =
  let r = run_bare () in
  check (Alcotest.float 1e-9) "exec/page = makespan / pages"
    (r.Results.makespan_ms /. float_of_int r.Results.pages_processed)
    r.Results.exec_ms_per_page

let test_determinism () =
  let a = run_bare () and b = run_bare () in
  check (Alcotest.float 1e-9) "same makespan" a.Results.makespan_ms b.Results.makespan_ms;
  check (Alcotest.float 1e-9) "same completion" a.Results.mean_completion_ms
    b.Results.mean_completion_ms

let test_utilizations_bounded () =
  let r = run_bare () in
  List.iter
    (fun (d : Results.disk_report) ->
      if d.Results.utilization < 0.0 || d.Results.utilization > 1.0 then
        Alcotest.failf "disk utilization %f out of range" d.Results.utilization)
    r.Results.data_disks;
  check Alcotest.bool "qp util bounded" true
    (r.Results.qp_utilization >= 0.0 && r.Results.qp_utilization <= 1.0)

let test_completion_bounds () =
  let r = run_bare () in
  check Alcotest.bool "mean <= max" true
    (r.Results.mean_completion_ms <= r.Results.max_completion_ms +. 1e-9);
  check Alcotest.bool "max <= makespan" true
    (r.Results.max_completion_ms <= r.Results.makespan_ms +. 1e-9)

let test_sequential_faster_than_random () =
  let rnd = run_bare ~pattern:W.Random_access () in
  let seq = run_bare ~pattern:W.Sequential () in
  check Alcotest.bool "sequential cheaper per page" true
    (seq.Results.exec_ms_per_page < rnd.Results.exec_ms_per_page)

let test_parallel_disks_help_sequential () =
  let txns = W.generate (small_workload ~pattern:W.Sequential ()) in
  let conv = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:txns in
  let par =
    Machine.run
      ~config:(Config.with_parallel_disks small_machine)
      ~make_arch:(fun _ -> Arch.bare)
      ~workload:txns
  in
  check Alcotest.bool "parallel-access much faster" true
    (par.Results.exec_ms_per_page *. 2.0 < conv.Results.exec_ms_per_page)

let test_bare_no_blocked_frames () =
  let r = run_bare () in
  check (Alcotest.float 1e-9) "no WAL blocking on the bare machine" 0.0
    r.Results.mean_frames_blocked_on_log

let test_writes_hit_disk () =
  let txns = W.generate (small_workload ()) in
  let r = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:txns in
  (* every read + every write is at least one page transfer *)
  let total = W.total_pages txns + W.total_writes txns in
  let moved =
    List.fold_left (fun acc (d : Results.disk_report) -> acc + d.Results.pages) 0
      r.Results.data_disks
  in
  check Alcotest.int "reads + writes transferred" total moved

let test_empty_workload () =
  let r = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:[||] in
  check Alcotest.int "nothing processed" 0 r.Results.pages_processed;
  check (Alcotest.float 1e-9) "zero makespan" 0.0 r.Results.makespan_ms

let test_effective_mpl_bounded () =
  let r = run_bare () in
  check Alcotest.bool "effective MPL within configured" true
    (r.Results.mean_active_txns > 0.0
    && r.Results.mean_active_txns <= float_of_int small_machine.Config.mpl +. 1e-9)

let test_completions_list () =
  let txns = W.generate (small_workload ()) in
  let r = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:txns in
  check Alcotest.int "one completion per txn" (Array.length txns)
    (List.length r.Results.completions);
  let ids = List.sort Int.compare (List.map fst r.Results.completions) in
  check (Alcotest.list Alcotest.int) "every txn id present"
    (List.init (Array.length txns) (fun i -> i))
    ids;
  List.iter
    (fun (_, c) -> if c < 0.0 then Alcotest.fail "negative completion time")
    r.Results.completions

let test_hotspot_reduces_effective_mpl () =
  let uniform = run_bare () in
  let skewed =
    Machine.run ~config:small_machine
      ~make_arch:(fun _ -> Arch.bare)
      ~workload:
        (W.generate
           {
             (small_workload ()) with
             W.pattern = W.Hotspot { hot_fraction = 0.02; hot_access_prob = 0.9 };
             max_pages = 60;
           })
  in
  check Alcotest.bool "contention lowers concurrency" true
    (skewed.Results.mean_active_txns < uniform.Results.mean_active_txns)

let test_mpl_one_serializes () =
  let txns = W.generate (small_workload ~n:4 ()) in
  let r =
    Machine.run
      ~config:{ small_machine with Config.mpl = 1 }
      ~make_arch:(fun _ -> Arch.bare)
      ~workload:txns
  in
  (* with MPL 1, the sum of completions cannot exceed the makespan *)
  check Alcotest.bool "serial execution" true
    (r.Results.mean_completion_ms *. float_of_int r.Results.n_transactions
    <= r.Results.makespan_ms +. 1.0)

(* --- arena recycling ---------------------------------------------------- *)

(* Consecutive runs through one recycled domain arena must be
   byte-identical (marshalled results) to runs on fresh state: the
   recycled engine records, resource rings and lock/arrival scratch may
   carry capacity from earlier runs, but never behaviour. *)
let test_arena_recycling_byte_identical () =
  let marshal (r : Results.t) = Marshal.to_string r [] in
  (* A mixed sequence, so the second run inherits storage sized by a
     differently-shaped first run. *)
  let sequence () =
    [ run_bare (); run_bare ~pattern:W.Sequential ~n:5 (); run_bare () ]
  in
  Dbm_sim.Arena.set_enabled false;
  let fresh =
    Fun.protect ~finally:(fun () -> Dbm_sim.Arena.set_enabled true) sequence
  in
  let recycled = sequence () in
  let recycled_again = sequence () in
  List.iteri
    (fun i (f, r) ->
      check Alcotest.string
        (Printf.sprintf "arena run %d = fresh run %d" i i)
        (marshal f) (marshal r))
    (List.combine fresh recycled);
  List.iteri
    (fun i (f, r) ->
      check Alcotest.string
        (Printf.sprintf "second arena pass, run %d" i)
        (marshal f) (marshal r))
    (List.combine fresh recycled_again)

(* --- metamorphic properties (tiny workloads, many configs) ------------- *)

let tiny_workload seed =
  W.generate
    { W.default with W.n_transactions = 6; db_pages = 16384; max_pages = 30; seed }

let prop_more_disks_never_slower =
  QCheck.Test.make ~name:"more data disks never hurt throughput" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run n_data_disks =
        Machine.run
          ~config:{ small_machine with Config.n_data_disks }
          ~make_arch:(fun _ -> Arch.bare)
          ~workload:(tiny_workload seed)
      in
      let two = run 2 and four = run 4 in
      four.Results.exec_ms_per_page <= two.Results.exec_ms_per_page *. 1.02)

let prop_faster_cpu_never_slower =
  QCheck.Test.make ~name:"faster query processors never hurt" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run cpu_ms_per_page =
        Machine.run
          ~config:{ small_machine with Config.cpu_ms_per_page }
          ~make_arch:(fun _ -> Arch.bare)
          ~workload:(tiny_workload seed)
      in
      (run 10.0).Results.exec_ms_per_page
      <= (run 80.0).Results.exec_ms_per_page *. 1.02)

let prop_seed_independent_conservation =
  QCheck.Test.make ~name:"pages processed equals the read set for any seed" ~count:15
    QCheck.(int_range 1 1000)
    (fun seed ->
      let txns = tiny_workload seed in
      let r = Machine.run ~config:small_machine ~make_arch:(fun _ -> Arch.bare) ~workload:txns in
      r.Results.pages_processed = W.total_pages txns)

let prop_poisson_arrivals_complete =
  QCheck.Test.make ~name:"open-system runs complete for any interarrival mean" ~count:10
    QCheck.(pair (int_range 1 1000) (float_range 50.0 5000.0))
    (fun (seed, mean) ->
      let r =
        Machine.run
          ~config:{ small_machine with Config.arrivals = Config.Poisson mean }
          ~make_arch:(fun _ -> Arch.bare)
          ~workload:(tiny_workload seed)
      in
      r.Results.n_transactions = 6 && List.length r.Results.completions = 6)

let metamorphic =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_more_disks_never_slower; prop_faster_cpu_never_slower;
      prop_seed_independent_conservation; prop_poisson_arrivals_complete;
    ]

let () =
  Alcotest.run "dbm_machine"
    [
      ( "lock_table",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick test_exclusive_conflicts;
          Alcotest.test_case "all or nothing" `Quick test_all_or_nothing;
          Alcotest.test_case "release unblocks" `Quick test_release_unblocks;
          Alcotest.test_case "duplicate upgrade" `Quick test_duplicate_upgrade;
          Alcotest.test_case "own locks never conflict" `Quick test_own_locks_never_conflict;
        ] );
      ( "config",
        [
          Alcotest.test_case "striping" `Quick test_locate_striping;
          Alcotest.test_case "locate covers db" `Quick test_locate_covers_all_pages;
          Alcotest.test_case "scrambled locate bijective" `Quick test_locate_scrambled_bijective;
          Alcotest.test_case "validation" `Quick test_validate_rejects;
        ] );
      ( "machine",
        [
          Alcotest.test_case "all pages processed" `Quick test_all_pages_processed;
          Alcotest.test_case "exec time consistent" `Quick test_exec_time_consistent;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "utilizations bounded" `Quick test_utilizations_bounded;
          Alcotest.test_case "completion bounds" `Quick test_completion_bounds;
          Alcotest.test_case "sequential < random" `Quick test_sequential_faster_than_random;
          Alcotest.test_case "parallel disks help sequential" `Quick
            test_parallel_disks_help_sequential;
          Alcotest.test_case "bare has no WAL blocking" `Quick test_bare_no_blocked_frames;
          Alcotest.test_case "writes hit disk" `Quick test_writes_hit_disk;
          Alcotest.test_case "empty workload" `Quick test_empty_workload;
          Alcotest.test_case "mpl=1 serializes" `Quick test_mpl_one_serializes;
          Alcotest.test_case "effective MPL bounded" `Quick test_effective_mpl_bounded;
          Alcotest.test_case "completions list" `Quick test_completions_list;
          Alcotest.test_case "hotspot reduces effective MPL" `Quick
            test_hotspot_reduces_effective_mpl;
          Alcotest.test_case "arena recycling byte-identical" `Quick
            test_arena_recycling_byte_identical;
        ] );
      ("metamorphic", metamorphic);
    ]
