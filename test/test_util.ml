(* Unit and property tests for the foundation library (dbm_util). *)

module Prng = Dbm_util.Prng
module Heap = Dbm_util.Heap
module Lru = Dbm_util.Lru
module Ring = Dbm_util.Ring
module Stats = Dbm_util.Stats

let check = Alcotest.check

(* --- Prng ----------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 17 and b = Prng.create 17 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 17 and b = Prng.create 18 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.int "different seeds diverge" 0 !same

let test_prng_int_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_prng_int_in_inclusive () =
  let rng = Prng.create 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let v = Prng.int_in rng ~lo:10 ~hi:14 in
    check Alcotest.bool "in range" true (v >= 10 && v <= 14);
    seen.(v - 10) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "value %d seen" (i + 10)) true s) seen

let test_prng_float_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check Alcotest.bool "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bool_extremes () =
  let rng = Prng.create 6 in
  check Alcotest.bool "p=0 never true" false (Prng.bool rng ~p:0.0);
  check Alcotest.bool "p=1 always true" true (Prng.bool rng ~p:1.0)

let test_prng_bool_frequency () =
  let rng = Prng.create 7 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bool rng ~p:0.2 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "frequency near 0.2" true (f > 0.17 && f < 0.23)

let test_prng_exponential_mean () =
  let rng = Prng.create 8 in
  let acc = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential rng ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  check Alcotest.bool "mean near 5" true (mean > 4.7 && mean < 5.3)

let test_sample_distinct () =
  let rng = Prng.create 9 in
  let s = Prng.sample_distinct rng ~n:50 ~lo:0 ~hi:99 in
  check Alcotest.int "size" 50 (Array.length s);
  let sorted = List.sort_uniq Int.compare (Array.to_list s) in
  check Alcotest.int "distinct" 50 (List.length sorted);
  List.iter (fun v -> check Alcotest.bool "in range" true (v >= 0 && v <= 99)) sorted

let test_sample_distinct_full_range () =
  let rng = Prng.create 10 in
  let s = Prng.sample_distinct rng ~n:10 ~lo:5 ~hi:14 in
  check Alcotest.int "whole range" 10 (List.length (List.sort_uniq Int.compare (Array.to_list s)))

let test_sample_distinct_invalid () =
  let rng = Prng.create 11 in
  Alcotest.check_raises "range too small" (Invalid_argument "Prng.sample_distinct: range too small")
    (fun () -> ignore (Prng.sample_distinct rng ~n:11 ~lo:0 ~hi:9))

let test_shuffle_permutation () =
  let rng = Prng.create 12 in
  let a = Array.init 30 (fun i -> i) in
  Prng.shuffle rng a;
  check (Alcotest.list Alcotest.int) "same elements" (List.init 30 (fun i -> i))
    (List.sort Int.compare (Array.to_list a))

let test_split_independent () =
  let a = Prng.create 13 in
  let b = Prng.split a in
  let va = Prng.bits64 a and vb = Prng.bits64 b in
  check Alcotest.bool "split streams differ" true (va <> vb)

(* --- Heap ------------------------------------------------------------ *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare () in
  let rng = Prng.create 21 in
  let input = List.init 200 (fun _ -> Prng.int rng 1000) in
  List.iter (Heap.push h) input;
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  check (Alcotest.list Alcotest.int) "heap sorts" (List.sort Int.compare input) (drain [])

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:Int.compare () in
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h);
  Heap.push h 5;
  Heap.push h 2;
  check (Alcotest.option Alcotest.int) "peek min" (Some 2) (Heap.peek h);
  check Alcotest.int "length" 2 (Heap.length h);
  check (Alcotest.option Alcotest.int) "pop min" (Some 2) (Heap.pop h);
  check (Alcotest.option Alcotest.int) "pop next" (Some 5) (Heap.pop h);
  check Alcotest.bool "empty" true (Heap.is_empty h)

let test_heap_to_sorted_list () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  check (Alcotest.list Alcotest.int) "sorted view" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  check Alcotest.int "non-destructive" 3 (Heap.length h)

let test_heap_pop_releases () =
  (* popping must overwrite the vacated slot: a long-lived heap may not
     pin elements that have left it *)
  let h = Heap.create ~cmp:(fun a b -> Int.compare !a !b) () in
  List.iter (fun i -> Heap.push h (ref i)) [ 3; 1; 2 ];
  let w = Weak.create 1 in
  (fun () ->
    match Heap.pop h with
    | Some r ->
      check Alcotest.int "pops min" 1 !r;
      Weak.set w 0 (Some r)
    | None -> Alcotest.fail "expected an element")
    ();
  Gc.full_major ();
  Gc.full_major ();
  check Alcotest.int "rest retained" 2 (Heap.length h);
  check Alcotest.bool "popped element is collectable" false (Weak.check w 0)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun input ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) input;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare input)

(* --- Pool ------------------------------------------------------------ *)

module Pool = Dbm_util.Pool

let squares n = List.init n (fun i -> i * i)

let test_pool_serial_path () =
  Pool.with_pool ~jobs:1 (fun p ->
      check Alcotest.int "jobs" 1 (Pool.jobs p);
      check (Alcotest.list Alcotest.int) "maps in order" (squares 10)
        (Pool.map_ordered p (List.init 10 (fun i -> i)) ~f:(fun x -> x * x)))

(* The parallel-path tests oversubscribe deliberately so they exercise
   real domains even on a single-core host, where plain ~jobs would
   clamp to 1 and test nothing. *)
let test_pool_parallel_ordering () =
  Pool.with_pool ~jobs:4 ~allow_oversubscribe:true (fun p ->
      check (Alcotest.list Alcotest.int) "order preserved across domains" (squares 100)
        (Pool.map_ordered p (List.init 100 (fun i -> i)) ~f:(fun x -> x * x)))

let test_pool_matches_serial () =
  let f x = (x * 7919) mod 101 in
  let xs = List.init 57 (fun i -> i) in
  let serial = Pool.with_pool ~jobs:1 (fun p -> Pool.map_ordered p xs ~f) in
  let parallel =
    Pool.with_pool ~jobs:3 ~allow_oversubscribe:true (fun p -> Pool.map_ordered p xs ~f)
  in
  check (Alcotest.list Alcotest.int) "identical results" serial parallel

let test_pool_empty_and_reuse () =
  Pool.with_pool ~jobs:2 ~allow_oversubscribe:true (fun p ->
      check (Alcotest.list Alcotest.int) "empty" [] (Pool.map_ordered p [] ~f:(fun x -> x));
      check (Alcotest.list Alcotest.int) "first use" [ 2; 4 ]
        (Pool.map_ordered p [ 1; 2 ] ~f:(fun x -> 2 * x));
      check (Alcotest.list Alcotest.int) "pool is reusable" [ 3; 6 ]
        (Pool.map_ordered p [ 1; 2 ] ~f:(fun x -> 3 * x)))

let test_pool_exception () =
  Pool.with_pool ~jobs:4 ~allow_oversubscribe:true (fun p ->
      match
        Pool.map_ordered p [ 1; 2; 3; 4 ] ~f:(fun x ->
            if x mod 2 = 0 then failwith (string_of_int x) else x)
      with
      | exception Failure m -> check Alcotest.string "smallest failing index wins" "2" m
      | _ -> Alcotest.fail "expected the worker exception to propagate")

let test_pool_invalid_jobs () =
  match Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs = 0 accepted"

let test_pool_clamps_to_cores () =
  let cores = Pool.default_jobs () in
  Pool.with_pool ~jobs:(cores + 63) (fun p ->
      check Alcotest.int "request is remembered" (cores + 63) (Pool.requested_jobs p);
      check Alcotest.int "effective size clamps to the cores" cores (Pool.jobs p));
  Pool.with_pool ~jobs:1 (fun p ->
      check Alcotest.int "small requests pass through" 1 (Pool.jobs p))

let test_pool_oversubscribe_escape_hatch () =
  Pool.with_pool ~jobs:(Pool.default_jobs () + 2) ~allow_oversubscribe:true (fun p ->
      check Alcotest.int "oversubscription honoured when asked for"
        (Pool.default_jobs () + 2) (Pool.jobs p))

(* --- weighted scheduling --------------------------------------------- *)

let test_weighted_serial_path () =
  Pool.with_pool ~jobs:1 (fun p ->
      let weight_calls = ref 0 in
      let r =
        Pool.map_ordered_weighted p
          (List.init 10 (fun i -> i))
          ~weight:(fun _ ->
            incr weight_calls;
            1.0)
          ~f:(fun x -> x * x)
      in
      check (Alcotest.list Alcotest.int) "maps in order" (squares 10) r;
      (* jobs=1 must reproduce the serial path bit-for-bit: no sort, no
         cost estimation, nothing the weight could influence. *)
      check Alcotest.int "weight never consulted" 0 !weight_calls)

let test_weighted_reuse_any_weights () =
  let f x = (x * 31) mod 97 in
  let xs = List.init 57 (fun i -> i) in
  Pool.with_pool ~jobs:3 ~allow_oversubscribe:true (fun p ->
      check (Alcotest.list Alcotest.int) "ascending weights" (List.map f xs)
        (Pool.map_ordered_weighted p xs ~weight:float_of_int ~f);
      check (Alcotest.list Alcotest.int) "descending weights (pool reused)" (List.map f xs)
        (Pool.map_ordered_weighted p xs ~weight:(fun x -> -.float_of_int x) ~f);
      check (Alcotest.list Alcotest.int) "empty input" []
        (Pool.map_ordered_weighted p [] ~weight:float_of_int ~f))

let test_weighted_exception () =
  Pool.with_pool ~jobs:4 ~allow_oversubscribe:true (fun p ->
      match
        Pool.map_ordered_weighted p [ 1; 2; 3; 4 ]
          ~weight:(fun x -> float_of_int (10 - x))
          ~f:(fun x -> if x mod 2 = 0 then failwith (string_of_int x) else x)
      with
      | exception Failure m -> check Alcotest.string "smallest failing index wins" "2" m
      | _ -> Alcotest.fail "expected the worker exception to propagate")

(* Whatever the weights (including ties, negatives, NaN and infinities)
   and whatever the pool size, the result is exactly [List.map f]. *)
let prop_weighted_matches_list_map =
  QCheck.Test.make ~name:"map_ordered_weighted = List.map f" ~count:30
    QCheck.(triple (int_range 1 4) (small_list int) (int_range 0 1000))
    (fun (jobs, xs, wseed) ->
      let f x = (x * 7919) mod 101 in
      let weight x =
        match abs (x + wseed) mod 5 with
        | 0 -> Float.nan
        | 1 -> Float.infinity
        | 2 -> Float.neg_infinity
        | _ -> float_of_int ((abs (x * wseed) mod 13) - 3)
      in
      Pool.with_pool ~jobs ~allow_oversubscribe:true (fun p ->
          Pool.map_ordered_weighted p xs ~weight ~f = List.map f xs))

(* --- Lru ------------------------------------------------------------- *)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  (* touch 1 so 2 becomes the LRU victim *)
  ignore (Lru.find l 1);
  match Lru.add l 3 "c" with
  | Some { Lru.key; _ } -> check Alcotest.int "evicts LRU" 2 key
  | None -> Alcotest.fail "expected an eviction"

let test_lru_hit_miss_counters () =
  let l = Lru.create ~capacity:4 () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.find l 1);
  ignore (Lru.find l 2);
  check Alcotest.int "hits" 1 (Lru.hits l);
  check Alcotest.int "misses" 1 (Lru.misses l)

let test_lru_dirty_eviction () =
  let l = Lru.create ~capacity:1 () in
  ignore (Lru.add l 1 "a");
  Lru.set_dirty l 1 true;
  (match Lru.add l 2 "b" with
  | Some { Lru.key; dirty; _ } ->
    check Alcotest.int "victim" 1 key;
    check Alcotest.bool "dirty flag" true dirty
  | None -> Alcotest.fail "expected an eviction");
  check Alcotest.bool "gone" false (Lru.mem l 1)

let test_lru_overwrite_no_eviction () =
  let l = Lru.create ~capacity:1 () in
  ignore (Lru.add l 1 "a");
  check Alcotest.bool "overwrite evicts nothing" true (Lru.add l 1 "b" = None);
  check (Alcotest.option Alcotest.string) "new value" (Some "b") (Lru.peek l 1)

let test_lru_dirty_entries () =
  let l = Lru.create ~capacity:4 () in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b" ~dirty:true);
  ignore (Lru.add l 3 "c");
  Lru.set_dirty l 1 true;
  let keys = List.sort Int.compare (List.map fst (Lru.dirty_entries l)) in
  check (Alcotest.list Alcotest.int) "dirty set" [ 1; 2 ] keys

let test_lru_remove_and_clear () =
  let l = Lru.create ~capacity:4 () in
  ignore (Lru.add l 1 "a");
  Lru.remove l 1;
  check Alcotest.bool "removed" false (Lru.mem l 1);
  ignore (Lru.add l 2 "b");
  Lru.clear l;
  check Alcotest.int "cleared" 0 (Lru.length l)

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap () in
      List.iter (fun k -> ignore (Lru.add l k k)) keys;
      Lru.length l <= cap)

(* --- Ring ------------------------------------------------------------ *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 () in
  check Alcotest.bool "push 1" true (Ring.push r 1);
  check Alcotest.bool "push 2" true (Ring.push r 2);
  check Alcotest.bool "push 3" true (Ring.push r 3);
  check Alcotest.bool "full rejects" false (Ring.push r 4);
  check (Alcotest.option Alcotest.int) "fifo pop" (Some 1) (Ring.pop r);
  check Alcotest.bool "room again" true (Ring.push r 4);
  check (Alcotest.list Alcotest.int) "contents" [ 2; 3; 4 ] (Ring.to_list r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:2 () in
  for i = 1 to 10 do
    check Alcotest.bool "push" true (Ring.push r i);
    check (Alcotest.option Alcotest.int) "pop" (Some i) (Ring.pop r)
  done;
  check Alcotest.bool "empty at end" true (Ring.is_empty r)

let test_ring_push_exn () =
  let r = Ring.create ~capacity:1 () in
  Ring.push_exn r 1;
  Alcotest.check_raises "overflow" (Failure "Ring.push_exn: buffer full") (fun () ->
      Ring.push_exn r 2)

(* --- Stats ----------------------------------------------------------- *)

let test_acc_moments () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Acc.mean a);
  check (Alcotest.float 1e-9) "variance" 4.0 (Stats.Acc.variance a);
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.Acc.stddev a);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.Acc.min a);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.Acc.max a);
  check Alcotest.int "count" 8 (Stats.Acc.count a)

let test_acc_empty () =
  let a = Stats.Acc.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Stats.Acc.mean a);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.Acc.min: empty accumulator")
    (fun () -> ignore (Stats.Acc.min a))

let test_acc_merge () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () and whole = Stats.Acc.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0 ] in
  List.iter (Stats.Acc.add a) xs;
  List.iter (Stats.Acc.add b) ys;
  List.iter (Stats.Acc.add whole) (xs @ ys);
  let m = Stats.Acc.merge a b in
  check (Alcotest.float 1e-9) "merged mean" (Stats.Acc.mean whole) (Stats.Acc.mean m);
  check (Alcotest.float 1e-6) "merged variance" (Stats.Acc.variance whole) (Stats.Acc.variance m);
  check Alcotest.int "merged count" 5 (Stats.Acc.count m)

let test_timeweighted () =
  let tw = Stats.Timeweighted.create () in
  Stats.Timeweighted.update tw ~now:0.0 ~level:2.0;
  Stats.Timeweighted.update tw ~now:10.0 ~level:4.0;
  (* 2.0 for 10 units, then 4.0 for 10 units -> mean 3.0 at t=20 *)
  check (Alcotest.float 1e-9) "time-weighted mean" 3.0 (Stats.Timeweighted.mean tw ~now:20.0);
  check (Alcotest.float 1e-9) "level" 4.0 (Stats.Timeweighted.level tw)

let test_busy_utilization () =
  let b = Stats.Busy.create () in
  Stats.Busy.add_busy b 30.0;
  check (Alcotest.float 1e-9) "utilization" 0.3
    (Stats.Busy.utilization b ~elapsed:100.0 ~servers:1);
  check (Alcotest.float 1e-9) "two servers" 0.15
    (Stats.Busy.utilization b ~elapsed:100.0 ~servers:2);
  check (Alcotest.float 1e-9) "empty interval" 0.0 (Stats.Busy.utilization b ~elapsed:0.0 ~servers:1)

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check (Alcotest.float 1e-9) "p0 = min" 10.0 (Stats.percentile xs ~p:0.0);
  check (Alcotest.float 1e-9) "p100 = max" 40.0 (Stats.percentile xs ~p:100.0);
  check (Alcotest.float 1e-9) "p50 interpolates" 25.0 (Stats.percentile xs ~p:50.0);
  check (Alcotest.float 1e-9) "singleton" 7.0 (Stats.percentile [ 7.0 ] ~p:95.0);
  match Stats.percentile [] ~p:50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample accepted"

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies within sample bounds" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Stats.percentile xs ~p in
      let mn = List.fold_left Float.min infinity xs
      and mx = List.fold_left Float.max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

(* --- streaming histogram ------------------------------------------- *)

module H = Stats.Histogram

let test_hist_small_n_exact () =
  (* below the exact-prefix limit the histogram must reproduce
     Stats.percentile bit-for-bit, interpolation included *)
  let rng = Dbm_util.Prng.create 11 in
  let xs = List.init 100 (fun _ -> Dbm_util.Prng.float rng 5_000.0 +. 0.001) in
  let h = H.create () in
  List.iter (H.add h) xs;
  List.iter
    (fun p ->
      check (Alcotest.float 1e-12)
        (Printf.sprintf "p%g exact on small n" p)
        (Stats.percentile xs ~p) (H.percentile h ~p))
    [ 0.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]

let test_hist_large_n_bounded_error () =
  let rng = Dbm_util.Prng.create 12 in
  let xs = Array.init 50_000 (fun _ -> Dbm_util.Prng.exponential rng ~mean:800.0 +. 1.0) in
  let h = H.create () in
  Array.iter (H.add h) xs;
  let exact = Array.copy xs in
  Array.sort Float.compare exact;
  List.iter
    (fun p ->
      let truth = Stats.percentile (Array.to_list exact) ~p in
      let est = H.percentile h ~p in
      check Alcotest.bool
        (Printf.sprintf "p%g within 2%%" p)
        true
        (Float.abs (est -. truth) /. truth < 0.02))
    [ 50.0; 99.0; 99.9 ];
  check (Alcotest.float 1e-9) "max is exact" (Array.fold_left Float.max 0.0 xs) (H.max h);
  check Alcotest.bool "p100 never exceeds the true max" true
    (H.percentile h ~p:100.0 <= H.max h);
  check Alcotest.int "count" 50_000 (H.count h);
  check (Alcotest.float 1e-6) "mean"
    (Array.fold_left ( +. ) 0.0 xs /. 50_000.0)
    (H.mean h)

let test_hist_monotone_and_range () =
  let h = H.create () in
  List.iter (H.add h) [ 1e-9; 0.5; 3.0; 1e6; 1e12 ];
  let last = ref neg_infinity in
  for p = 0 to 100 do
    let v = H.percentile h ~p:(float_of_int p) in
    check Alcotest.bool "percentile monotone in p" true (v >= !last);
    last := v
  done;
  check Alcotest.bool "extreme magnitudes bracketed" true
    (H.percentile h ~p:0.0 <= 1e-8 && H.percentile h ~p:100.0 >= 1e11)

let test_hist_validation () =
  let h = H.create () in
  (match H.percentile h ~p:50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty histogram accepted");
  H.add h 1.0;
  (match H.percentile h ~p:101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p out of range accepted");
  match H.add h Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN accepted"

let prop_hist_relative_error =
  QCheck.Test.make ~name:"histogram percentile within bucket error of exact" ~count:100
    QCheck.(list_of_size (Gen.int_range 600 900) (float_range 0.001 1e7))
    (fun xs ->
      (* above the exact prefix: every estimate within the ~0.8%
         bucket-midpoint bound (with slack), and never above the max *)
      let h = H.create () in
      List.iter (H.add h) xs;
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      List.for_all
        (fun p ->
          (* the estimate shares a log-scale bucket with the rank-th
             order statistic, so it sits within the bucket's ~0.8%
             half-width of it (and never above the exact max) *)
          let rank = Stdlib.max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))) in
          let v = a.(rank - 1) in
          let est = H.percentile h ~p in
          est <= H.max h +. 1e-9 && Float.abs (est -. v) <= (0.015 *. v) +. 1e-9)
        [ 1.0; 25.0; 50.0; 75.0; 99.0; 100.0 ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_heap_sorted; prop_lru_capacity; prop_percentile_bounds; prop_hist_relative_error ]

let () =
  Alcotest.run "dbm_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in inclusive" `Quick test_prng_int_in_inclusive;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bool extremes" `Quick test_prng_bool_extremes;
          Alcotest.test_case "bool frequency" `Quick test_prng_bool_frequency;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "sample_distinct full range" `Quick test_sample_distinct_full_range;
          Alcotest.test_case "sample_distinct invalid" `Quick test_sample_distinct_invalid;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_split_independent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list;
          Alcotest.test_case "pop releases references" `Quick test_heap_pop_releases;
        ] );
      ( "pool",
        [
          Alcotest.test_case "serial path" `Quick test_pool_serial_path;
          Alcotest.test_case "parallel ordering" `Quick test_pool_parallel_ordering;
          Alcotest.test_case "matches serial" `Quick test_pool_matches_serial;
          Alcotest.test_case "empty and reuse" `Quick test_pool_empty_and_reuse;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "clamps to host cores" `Quick test_pool_clamps_to_cores;
          Alcotest.test_case "oversubscribe escape hatch" `Quick
            test_pool_oversubscribe_escape_hatch;
          Alcotest.test_case "weighted serial path" `Quick test_weighted_serial_path;
          Alcotest.test_case "weighted reuse + any weights" `Quick
            test_weighted_reuse_any_weights;
          Alcotest.test_case "weighted exception propagation" `Quick test_weighted_exception;
          QCheck_alcotest.to_alcotest prop_weighted_matches_list_map;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "hit/miss counters" `Quick test_lru_hit_miss_counters;
          Alcotest.test_case "dirty eviction" `Quick test_lru_dirty_eviction;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite_no_eviction;
          Alcotest.test_case "dirty entries" `Quick test_lru_dirty_entries;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_and_clear;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "push_exn overflow" `Quick test_ring_push_exn;
        ] );
      ( "stats",
        [
          Alcotest.test_case "acc moments" `Quick test_acc_moments;
          Alcotest.test_case "acc empty" `Quick test_acc_empty;
          Alcotest.test_case "acc merge" `Quick test_acc_merge;
          Alcotest.test_case "timeweighted" `Quick test_timeweighted;
          Alcotest.test_case "busy utilization" `Quick test_busy_utilization;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram small-n exact" `Quick test_hist_small_n_exact;
          Alcotest.test_case "histogram large-n error bound" `Quick
            test_hist_large_n_bounded_error;
          Alcotest.test_case "histogram monotone + range" `Quick test_hist_monotone_and_range;
          Alcotest.test_case "histogram validation" `Quick test_hist_validation;
        ] );
      ("properties", qsuite);
    ]
