(* Tests for the open-loop server stack: the commit pipeline, the
   admission front end, group-commit equivalence on both recovery
   engines, per-used-disk commit forcing, and checkpoint-aware log
   truncation. *)

module Kv = Dbm_storage.Kv
module Scheduler = Dbm_storage.Scheduler
module Server = Dbm_storage.Server
module Commit_pipeline = Dbm_storage.Commit_pipeline
module Engine_log = Dbm_storage.Engine_log
module Engine_diff = Dbm_storage.Engine_diff

let check = Alcotest.check

(* --- grouped-vs-eager equivalence property ------------------------ *)

(* Random programs of group-committed transactions, forces and crashes.
   Every transaction commits through [commit_group]; a transaction
   survives iff a [force_commits] ran after it and before the next
   crash.  The reference engine eagerly commits exactly the surviving
   transactions: after a final force and crash on both sides the state
   fingerprints must be identical — group commit changes {e when}
   durability happens, never {e what} is durable.  Because recovery
   re-seeds the LSN and txn counters from the durable log, the
   surviving records on the grouped side are LSN/id-continuous exactly
   like the reference's, so even the counters agree. *)

type gev = T of int | F | X

let gev_gen =
  QCheck.Gen.(
    frequency [ (5, map (fun k -> T k) (int_range 0 15)); (2, return F); (2, return X) ])

let gev_print evs =
  String.concat ";"
    (List.map (function T k -> Printf.sprintf "T%d" k | F -> "F" | X -> "X") evs)

module Grouped_equiv (E : sig
  include Kv.S

  val commit_group : txn -> unit

  val force_commits : t -> unit

  val crash_and_recover : t -> unit

  val state_fingerprint : t -> string

  val create_fresh : unit -> t
end) =
struct
  let run_program evs =
    let g = E.create_fresh () in
    let durable = ref [] and volatile = ref [] in
    List.iteri
      (fun i ev ->
        match ev with
        | T k ->
          let t = E.begin_txn g in
          E.put t k (Printf.sprintf "v%d" i);
          E.commit_group t;
          volatile := (k, Printf.sprintf "v%d" i) :: !volatile
        | F ->
          E.force_commits g;
          durable := !volatile @ !durable;
          volatile := []
        | X ->
          E.crash_and_recover g;
          volatile := [])
      evs;
    E.force_commits g;
    durable := !volatile @ !durable;
    E.crash_and_recover g;
    let r = E.create_fresh () in
    List.iter
      (fun (k, v) ->
        let t = E.begin_txn r in
        E.put t k v;
        E.commit t)
      (List.rev !durable);
    E.crash_and_recover r;
    (E.state_fingerprint g, E.state_fingerprint r)

  let prop name =
    QCheck.Test.make ~name ~count:150
      (QCheck.make ~print:gev_print QCheck.Gen.(list_size (int_range 0 40) gev_gen))
      (fun evs ->
        let fp_grouped, fp_ref = run_program evs in
        fp_grouped = fp_ref)
end

module Equiv_log = Grouped_equiv (struct
  include Engine_log

  let create_fresh () = create_with ~n_keys:16 ~n_log_disks:3 ~selection:Cyclic ()
end)

module Equiv_diff = Grouped_equiv (struct
  include Engine_diff

  let create_fresh () = create_with ~n_keys:16 ()
end)

let prop_equiv_log = Equiv_log.prop "grouped = eager reference after crash (engine_log)"

let prop_equiv_diff = Equiv_diff.prop "grouped = eager reference after crash (engine_diff)"

(* --- per-used-disk commit forcing (and its dependency closure) ----- *)

let log_syncs e = List.assoc "log_syncs" (Engine_log.stats e)

let test_commit_forces_only_used_disks () =
  (* By_txn on 4 disks puts all of a transaction's records (updates and
     commit) on one disk: an eager commit needs exactly two forces (one
     for the updates under the WAL rule, one for the commit record),
     not one per log disk. *)
  let e = Engine_log.create_with ~n_keys:32 ~n_log_disks:4 ~selection:Engine_log.By_txn () in
  let before = log_syncs e in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 0 "a";
  Engine_log.put t 5 "b";
  Engine_log.commit t;
  check Alcotest.int "two syncs, not one per disk" 2 (log_syncs e - before);
  (* and it really is durable *)
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "durable" (Some "a") (Engine_log.get t 0);
  Engine_log.abort t

let test_partial_force_closure () =
  (* By_page on 2 disks: txn A's update goes to disk 1 but its group
     commit record to disk 0.  A later eager committer touching only
     disk 0 must drag disk 1 along (the recorded dependency), otherwise
     A's commit record would be durable without A's update — a torn
     transaction after the crash. *)
  let e =
    Engine_log.create_with ~n_keys:32 ~n_log_disks:2 ~selection:Engine_log.By_page
      ~keys_per_page:4 ()
  in
  let a = Engine_log.begin_txn e in
  Engine_log.put a 4 "atomic" (* page 1 -> disk 1 *);
  Engine_log.commit_group a (* commit record: page 0 -> disk 0 *);
  let b = Engine_log.begin_txn e in
  Engine_log.put b 0 "forcing" (* page 0 -> disk 0 *);
  Engine_log.commit b (* forces disk 0 and, via the dependency, disk 1 *);
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "group txn durable atomically" (Some "atomic")
    (Engine_log.get t 4);
  check (Alcotest.option Alcotest.string) "eager txn durable" (Some "forcing")
    (Engine_log.get t 0);
  Engine_log.abort t

(* --- checkpoint-aware log truncation ------------------------------- *)

let durable_records e =
  let n = ref 0 in
  for d = 0 to Engine_log.log_disks e - 1 do
    n := !n + List.length (Engine_log.dump_log e ~disk:d)
  done;
  !n

let fill e ~first ~count =
  for i = first to first + count - 1 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t (i mod 24) (Printf.sprintf "t%d" i);
    Engine_log.put t ((i + 7) mod 24) (Printf.sprintf "u%d" i);
    Engine_log.commit t
  done

let truncation_pair strategy =
  let mk () =
    let e = Engine_log.create_with ~n_keys:24 ~n_log_disks:2 () in
    Engine_log.set_recovery_strategy e strategy;
    e
  in
  let a = mk () and b = mk () in
  List.iter
    (fun e ->
      fill e ~first:0 ~count:20;
      Engine_log.flush e (* clean pages: the fuzzy checkpoint's replay start is its own LSN *);
      Engine_log.checkpoint_fuzzy e;
      fill e ~first:20 ~count:10)
    [ a; b ];
  (a, b)

let test_truncate_matches_reference strategy () =
  let a, b = truncation_pair strategy in
  let before = durable_records a in
  Engine_log.truncate_to_checkpoint a;
  let after = durable_records a in
  check Alcotest.bool "truncation dropped records" true (after < before);
  (* more traffic after truncating, including an unforced group commit
     that the crash must lose on both sides identically *)
  List.iter
    (fun e ->
      fill e ~first:30 ~count:5;
      let t = Engine_log.begin_txn e in
      Engine_log.put t 3 "windowed";
      Engine_log.commit_group t)
    [ a; b ];
  Engine_log.crash_and_recover a;
  Engine_log.crash_and_recover b;
  check Alcotest.string "truncated recovery = untruncated reference"
    (Engine_log.state_fingerprint b) (Engine_log.state_fingerprint a)

let test_truncate_then_reference_replay () =
  (* The naive from-zero replay must also survive truncation: records
     below the replay-start LSN are exactly those whose effects are
     already on the flushed pages. *)
  let a, b = truncation_pair Engine_log.Sorted in
  Engine_log.truncate_to_checkpoint a;
  Engine_log.crash_and_recover_reference a;
  Engine_log.crash_and_recover_reference b;
  check Alcotest.string "reference replay agrees after truncation"
    (Engine_log.state_fingerprint b) (Engine_log.state_fingerprint a)

let test_truncate_without_checkpoint_is_noop () =
  let e = Engine_log.create_with ~n_keys:24 ~n_log_disks:2 () in
  fill e ~first:0 ~count:8;
  let before = durable_records e in
  Engine_log.truncate_to_checkpoint e;
  check Alcotest.int "no durable fuzzy checkpoint: nothing dropped" before (durable_records e)

let test_truncate_idempotent () =
  let a, b = truncation_pair Engine_log.Sorted in
  Engine_log.truncate_to_checkpoint a;
  let once = durable_records a in
  Engine_log.truncate_to_checkpoint a;
  check Alcotest.int "second truncation drops nothing" once (durable_records a);
  Engine_log.crash_and_recover a;
  Engine_log.crash_and_recover b;
  check Alcotest.string "still equivalent" (Engine_log.state_fingerprint b)
    (Engine_log.state_fingerprint a)

(* --- pipeline edges: exact-timeout boundary, batch of one ---------- *)

module Log_pipe = Commit_pipeline.Make (Engine_log)

(* [poll] forces exactly when the deadline has been {e reached}, not
   only once it is strictly past: a server that jumps its idle clock to
   [deadline] must flush on that very poll, or the batch waits for the
   next unrelated event. *)
let test_pipeline_exact_timeout_boundary () =
  let e = Engine_log.create_with ~n_keys:8 () in
  let acks = ref [] in
  let p =
    Log_pipe.create ~sync_cost_us:100.0
      ~on_ack:(fun ~id ~now -> acks := (id, now) :: !acks)
      (Commit_pipeline.Grouped { batch = 8; timeout_us = 50.0 })
      e
  in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 0 "x";
  let now = Log_pipe.submit p ~now:10.0 ~id:0 t in
  check (Alcotest.float 0.0) "submit does not advance the clock" 10.0 now;
  check (Alcotest.option (Alcotest.float 0.0)) "deadline armed" (Some 60.0)
    (Log_pipe.deadline p);
  let now = Log_pipe.poll p ~now:59.999 in
  check (Alcotest.float 0.0) "just before the deadline: no force" 59.999 now;
  check Alcotest.int "still pending" 1 (Log_pipe.pending p);
  let now = Log_pipe.poll p ~now:60.0 in
  check (Alcotest.float 0.0) "at the deadline: forced, sync charged" 160.0 now;
  check Alcotest.int "drained" 0 (Log_pipe.pending p);
  check Alcotest.int "one force" 1 (Log_pipe.forces p);
  check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
    "acked at the post-force instant" [ (0, 160.0) ] !acks;
  check (Alcotest.option (Alcotest.float 0.0)) "deadline disarmed" None (Log_pipe.deadline p)

(* Grouped with [batch = 1] degenerates to eager cadence — every submit
   forces inside the submit — while still driving the group-commit
   engine path ([commit_group] + [force_commits]). *)
let test_pipeline_batch_of_one () =
  let e = Engine_log.create_with ~n_keys:8 () in
  let p =
    Log_pipe.create ~sync_cost_us:100.0
      (Commit_pipeline.Grouped { batch = 1; timeout_us = 1000.0 })
      e
  in
  let now = ref 0.0 in
  for i = 0 to 2 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t i (Printf.sprintf "b%d" i);
    now := Log_pipe.submit p ~now:!now ~id:i t;
    check (Alcotest.float 0.0)
      (Printf.sprintf "submit %d forced immediately" i)
      (float_of_int (i + 1) *. 100.0)
      !now;
    check Alcotest.int "nothing pending" 0 (Log_pipe.pending p);
    check (Alcotest.option (Alcotest.float 0.0)) "no deadline" None (Log_pipe.deadline p)
  done;
  check Alcotest.int "one force per submit" 3 (Log_pipe.forces p);
  check Alcotest.int "all acked" 3 (Log_pipe.acked p);
  (* durable without any flush: batch-1 leaves no window *)
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  for i = 0 to 2 do
    check (Alcotest.option Alcotest.string) "survived" (Some (Printf.sprintf "b%d" i))
      (Engine_log.get t i)
  done;
  Engine_log.abort t

(* --- the open-loop server ------------------------------------------ *)

module Log_server = Server.Make (Engine_log)
module Diff_server = Server.Make (Engine_diff)

let burst_scripts n = Array.init n (fun i -> [ Scheduler.Put (i mod 32, Printf.sprintf "s%d" i) ])

let grouped = Commit_pipeline.Grouped { batch = 4; timeout_us = 200.0 }

let test_backpressure_never_drops () =
  let n = 200 in
  let e = Engine_log.create_with ~n_keys:32 () in
  let r =
    Log_server.run ~mpl:8 ~mode:grouped ~arrivals_us:(Array.make n 0.0)
      ~scripts:(burst_scripts n) e
  in
  check Alcotest.int "every arrival acked" n r.Server.completed;
  check Alcotest.int "every latency recorded" n
    (Dbm_util.Stats.Histogram.count r.Server.latency_us);
  check Alcotest.bool "admission bound respected" true (r.Server.max_inflight <= 8);
  check Alcotest.bool "the burst queued" true (r.Server.max_queued >= n - 8);
  let p50 = Dbm_util.Stats.Histogram.p50 r.Server.latency_us in
  let p99 = Dbm_util.Stats.Histogram.p99 r.Server.latency_us in
  let p999 = Dbm_util.Stats.Histogram.p999 r.Server.latency_us in
  check Alcotest.bool "tail ordering" true
    (p50 <= p99 && p99 <= p999 && Float.is_finite p999 && p50 > 0.0)

let test_acked_means_durable () =
  let n = 64 in
  let e = Engine_log.create_with ~n_keys:64 () in
  let scripts = Array.init n (fun i -> [ Scheduler.Put (i, Printf.sprintf "d%d" i) ]) in
  let r = Log_server.run ~mpl:16 ~mode:grouped ~arrivals_us:(Array.make n 0.0) ~scripts e in
  check Alcotest.int "all acked" n r.Server.completed;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  for i = 0 to n - 1 do
    check (Alcotest.option Alcotest.string)
      (Printf.sprintf "acked txn %d survived the crash" i)
      (Some (Printf.sprintf "d%d" i))
      (Engine_log.get t i)
  done;
  Engine_log.abort t

let test_grouped_beats_eager () =
  let n = 256 in
  let run mode =
    let e = Engine_log.create_with ~n_keys:32 () in
    Log_server.run ~mpl:32 ~op_cost_us:1.0 ~sync_cost_us:100.0 ~mode
      ~arrivals_us:(Array.make n 0.0) ~scripts:(burst_scripts n) e
  in
  let eager = run Commit_pipeline.Eager in
  let batched = run (Commit_pipeline.Grouped { batch = 32; timeout_us = 1000.0 }) in
  check Alcotest.bool "fewer forces" true (batched.Server.forces * 4 < eager.Server.forces);
  check Alcotest.bool "at least 2x sustained throughput" true
    (batched.Server.sustained_tps >= 2.0 *. eager.Server.sustained_tps)

let test_server_deterministic () =
  let n = 128 in
  let rng = Dbm_util.Prng.create 7 in
  let arrivals = Array.init n (fun i -> float_of_int i *. 40.0) in
  let scripts =
    Array.init n (fun _ ->
        [
          Scheduler.Put (Dbm_util.Prng.int_in rng ~lo:0 ~hi:31, "w");
          Scheduler.Get (Dbm_util.Prng.int_in rng ~lo:0 ~hi:31);
        ])
  in
  let run () =
    let e = Engine_log.create_with ~n_keys:32 () in
    Log_server.run ~mpl:8 ~mode:grouped ~arrivals_us:arrivals ~scripts e
  in
  let r1 = run () and r2 = run () in
  check (Alcotest.float 0.0) "same makespan" r1.Server.makespan_us r2.Server.makespan_us;
  check Alcotest.int "same forces" r1.Server.forces r2.Server.forces;
  check (Alcotest.float 0.0) "same p99"
    (Dbm_util.Stats.Histogram.p99 r1.Server.latency_us)
    (Dbm_util.Stats.Histogram.p99 r2.Server.latency_us)

let test_server_contention_completes () =
  (* every transaction updates the same hot page: heavy parking and
     deadlock restarts, but the server must still drain the queue *)
  let n = 96 in
  let scripts =
    Array.init n (fun i -> [ Scheduler.Put (0, Printf.sprintf "h%d" i); Scheduler.Put (1 + (i mod 3), "x") ])
  in
  let e = Engine_log.create_with ~n_keys:8 () in
  let r = Log_server.run ~mpl:6 ~mode:grouped ~arrivals_us:(Array.make n 0.0) ~scripts e in
  check Alcotest.int "hot-page burst drains" n r.Server.completed

let test_server_diff_engine () =
  let n = 80 in
  let e = Engine_diff.create_with ~n_keys:64 () in
  let scripts = Array.init n (fun i -> [ Scheduler.Put (i mod 64, Printf.sprintf "d%d" i) ]) in
  let r = Diff_server.run ~mpl:8 ~mode:grouped ~arrivals_us:(Array.make n 0.0) ~scripts e in
  check Alcotest.int "diff engine serves the burst" n r.Server.completed;
  Engine_diff.crash_and_recover e;
  let t = Engine_diff.begin_txn e in
  check (Alcotest.option Alcotest.string) "acked write durable" (Some (Printf.sprintf "d%d" (n - 1)))
    (Engine_diff.get t ((n - 1) mod 64));
  Engine_diff.abort t

let test_open_loop_idle_gaps () =
  (* arrivals far apart: the server must jump its clock across idle
     gaps, and each lone transaction pays the batch timeout before its
     force — the group-commit latency floor at low load *)
  let n = 10 in
  let e = Engine_log.create_with ~n_keys:32 () in
  let arrivals = Array.init n (fun i -> float_of_int i *. 100_000.0) in
  let r =
    Log_server.run ~mpl:4
      ~mode:(Commit_pipeline.Grouped { batch = 64; timeout_us = 500.0 })
      ~arrivals_us:arrivals ~scripts:(burst_scripts n) e
  in
  check Alcotest.int "all served" n r.Server.completed;
  check Alcotest.bool "makespan spans the arrival horizon" true
    (r.Server.makespan_us >= 900_000.0);
  let p50 = Dbm_util.Stats.Histogram.p50 r.Server.latency_us in
  check Alcotest.bool "lone txns wait out the batch timeout" true (p50 >= 500.0)

let test_server_validation () =
  let e = Engine_log.create_with ~n_keys:8 () in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check Alcotest.bool "mpl >= 1" true
    (raises (fun () ->
         Log_server.run ~mpl:0 ~mode:Commit_pipeline.Eager ~arrivals_us:[| 0.0 |]
           ~scripts:[| [] |] e));
  check Alcotest.bool "length mismatch" true
    (raises (fun () ->
         Log_server.run ~mode:Commit_pipeline.Eager ~arrivals_us:[| 0.0; 1.0 |]
           ~scripts:[| [] |] e));
  check Alcotest.bool "decreasing arrivals" true
    (raises (fun () ->
         Log_server.run ~mode:Commit_pipeline.Eager ~arrivals_us:[| 5.0; 1.0 |]
           ~scripts:[| []; [] |] e));
  check Alcotest.bool "bad batch" true
    (raises (fun () ->
         Log_server.run
           ~mode:(Commit_pipeline.Grouped { batch = 0; timeout_us = 1.0 })
           ~arrivals_us:[| 0.0 |] ~scripts:[| [] |] e))

let () =
  Alcotest.run "dbm_storage open-loop server"
    [
      ( "grouped vs eager equivalence",
        [
          QCheck_alcotest.to_alcotest prop_equiv_log;
          QCheck_alcotest.to_alcotest prop_equiv_diff;
        ] );
      ( "per-used-disk forcing",
        [
          Alcotest.test_case "commit forces only used disks" `Quick
            test_commit_forces_only_used_disks;
          Alcotest.test_case "partial force closes dependencies" `Quick
            test_partial_force_closure;
        ] );
      ( "log truncation",
        [
          Alcotest.test_case "matches reference (sorted)" `Quick
            (test_truncate_matches_reference Engine_log.Sorted);
          Alcotest.test_case "matches reference (unmerged)" `Quick
            (test_truncate_matches_reference Engine_log.Unmerged);
          Alcotest.test_case "naive replay agrees" `Quick test_truncate_then_reference_replay;
          Alcotest.test_case "no checkpoint: no-op" `Quick
            test_truncate_without_checkpoint_is_noop;
          Alcotest.test_case "idempotent" `Quick test_truncate_idempotent;
        ] );
      ( "pipeline edges",
        [
          Alcotest.test_case "exact-timeout boundary" `Quick
            test_pipeline_exact_timeout_boundary;
          Alcotest.test_case "batch of one degenerates to eager cadence" `Quick
            test_pipeline_batch_of_one;
        ] );
      ( "open-loop server",
        [
          Alcotest.test_case "backpressure never drops" `Quick test_backpressure_never_drops;
          Alcotest.test_case "acked means durable" `Quick test_acked_means_durable;
          Alcotest.test_case "grouped beats eager" `Quick test_grouped_beats_eager;
          Alcotest.test_case "deterministic" `Quick test_server_deterministic;
          Alcotest.test_case "hot-page contention completes" `Quick
            test_server_contention_completes;
          Alcotest.test_case "differential engine" `Quick test_server_diff_engine;
          Alcotest.test_case "idle gaps and timeout floor" `Quick test_open_loop_idle_gaps;
          Alcotest.test_case "validation" `Quick test_server_validation;
        ] );
    ]
