(* Tests for the sharded execution layer: the page-aligned router, the
   two-phase-commit engine hooks and their crash-recovery resolution
   against a serial reference, and the Shard server itself (state
   equivalence across shard counts; shards = 1 delegation). *)

module Scheduler = Dbm_storage.Scheduler
module Server = Dbm_storage.Server
module Shard = Dbm_storage.Shard
module Shard_router = Dbm_storage.Shard_router
module Coordinator_log = Dbm_storage.Coordinator_log
module Commit_pipeline = Dbm_storage.Commit_pipeline
module Engine_log = Dbm_storage.Engine_log
module Engine_oplog = Dbm_storage.Engine_oplog
module Prng = Dbm_util.Prng

let check = Alcotest.check

(* --- router properties -------------------------------------------- *)

(* A random script over a small key space, plus a shard count. *)
let script_gen =
  QCheck.Gen.(
    let op =
      frequency
        [
          (3, map (fun k -> Scheduler.Get k) (int_range 0 255));
          (3, map (fun k -> Scheduler.Put (k, "v")) (int_range 0 255));
          (1, map (fun k -> Scheduler.Delete k) (int_range 0 255));
        ]
    in
    pair (int_range 1 8) (list_size (int_range 0 30) op))

let script_print (shards, script) =
  Printf.sprintf "shards=%d [%s]" shards
    (String.concat ";"
       (List.map
          (function
            | Scheduler.Get k -> Printf.sprintf "G%d" k
            | Scheduler.Put (k, _) -> Printf.sprintf "P%d" k
            | Scheduler.Delete k -> Printf.sprintf "D%d" k)
          script))

let key_of = function Scheduler.Get k | Scheduler.Put (k, _) | Scheduler.Delete k -> k

(* Every operation of a script lands in exactly one slice, slices
   preserve per-shard operation order, every op sits on the shard the
   router assigns its key, and routing is page-aligned and total. *)
let prop_router_covers =
  QCheck.Test.make ~name:"split covers every op exactly once, on its routed shard"
    ~count:500
    (QCheck.make ~print:script_print script_gen)
    (fun (shards, script) ->
      let keys_per_page = 4 in
      let slices = Shard_router.split ~shards ~keys_per_page script in
      (* slice shards ascend, are distinct, in range, never empty *)
      let shards_of = List.map fst slices in
      let ascending =
        List.sort_uniq Int.compare shards_of = shards_of
        && List.for_all (fun s -> s >= 0 && s < shards) shards_of
        && List.for_all (fun (_, ops) -> ops <> []) slices
      in
      (* concatenating the slices is a permutation of the script that
         keeps each op on its routed shard, in original relative order *)
      let remaining = Hashtbl.create 16 in
      List.iter (fun (s, ops) -> Hashtbl.replace remaining s ops) slices;
      let routed_ok =
        List.for_all
          (fun op ->
            let s = Shard_router.shard_of_key ~shards ~keys_per_page (key_of op) in
            match Hashtbl.find_opt remaining s with
            | Some (hd :: tl) when hd = op ->
              Hashtbl.replace remaining s tl;
              true
            | _ -> false)
          script
        && Hashtbl.fold (fun _ ops acc -> acc && ops = []) remaining true
      in
      (* participants agrees with split *)
      let parts = Shard_router.participants ~shards ~keys_per_page script in
      let parts_ok = parts = shards_of in
      (* page alignment: keys of one page agree; determinism: pure *)
      let page_aligned =
        List.for_all
          (fun op ->
            let k = key_of op in
            Shard_router.shard_of_key ~shards ~keys_per_page k
            = Shard_router.shard_of_page ~shards (k / keys_per_page))
          script
      in
      let deterministic = Shard_router.split ~shards ~keys_per_page script = slices in
      ascending && routed_ok && parts_ok && page_aligned && deterministic)

let prop_router_single_shard =
  QCheck.Test.make ~name:"shards = 1 routes everything to shard 0" ~count:100
    (QCheck.make ~print:script_print script_gen)
    (fun (_, script) ->
      match Shard_router.split ~shards:1 ~keys_per_page:4 script with
      | [] -> script = []
      | [ (0, ops) ] -> ops = script
      | _ -> false)

(* --- 2PC crash-recovery equivalence ------------------------------- *)

(* Random histories of cross-shard transactions over two participant
   engines and one coordinator.  Each episode writes one key on each
   shard and then follows one of five fates:

     Commit        prepare both, coordinator decides, both apply
     LocalAbort    deadlock victim before any vote: both roll back
     CrashPrepare  only shard 0 voted, crash — coordinator never
                   decided, so presumed abort must win
     CrashDecide   both voted and the coordinator's decision is
                   durable, crash — recovery must commit both sides
     CrashApplied  decided and applied (unforced!), crash — the local
                   decision records may be lost, the coordinator still
                   resolves commit

   A crash hits both participants and the coordinator, recovery runs
   with the coordinator's resolver, and the surviving state must equal
   a serial reference that eagerly applied exactly the episodes whose
   fate is commit.  Afterwards no transaction may be in doubt, and no
   episode may be half-applied (one shard committed, the other not). *)

type fate = Commit | LocalAbort | CrashPrepare | CrashDecide | CrashApplied

let fate_gen =
  QCheck.Gen.(
    frequency
      [
        (4, return Commit);
        (2, return LocalAbort);
        (2, return CrashPrepare);
        (2, return CrashDecide);
        (2, return CrashApplied);
      ])

let fate_print f =
  match f with
  | Commit -> "C"
  | LocalAbort -> "A"
  | CrashPrepare -> "Xp"
  | CrashDecide -> "Xd"
  | CrashApplied -> "Xa"

let prop_2pc_equivalence =
  QCheck.Test.make ~name:"2PC histories recover to the serial reference" ~count:120
    (QCheck.make
       ~print:(fun fs -> String.concat ";" (List.map fate_print fs))
       QCheck.Gen.(list_size (int_range 0 25) fate_gen))
    (fun fates ->
      let n_keys = 32 in
      let fresh () = Engine_log.create_with ~n_keys ~n_log_disks:2 () in
      let shards = [| fresh (); fresh () |] in
      let coord = Coordinator_log.create () in
      let resolve ~gid = Coordinator_log.resolve coord ~gid in
      let recover_all () =
        Coordinator_log.crash_and_recover coord;
        Array.iter (Engine_log.crash_and_recover_resolved ~resolve) shards
      in
      let committed = Hashtbl.create 16 in
      List.iteri
        (fun gid fate ->
          let key = gid mod (n_keys / 2) in
          let v = Printf.sprintf "g%d" gid in
          let t0 = Engine_log.begin_txn shards.(0) in
          let t1 = Engine_log.begin_txn shards.(1) in
          Engine_log.put t0 key v;
          Engine_log.put t1 key v;
          match fate with
          | Commit ->
            Engine_log.prepare t0 ~gid;
            Engine_log.prepare t1 ~gid;
            Coordinator_log.decide coord ~gid ~commit:true;
            Engine_log.commit_group t0;
            Engine_log.commit_group t1;
            Hashtbl.replace committed key v
          | LocalAbort ->
            Engine_log.abort t0;
            Engine_log.abort t1
          | CrashPrepare ->
            Engine_log.prepare t0 ~gid;
            recover_all ()
          | CrashDecide ->
            Engine_log.prepare t0 ~gid;
            Engine_log.prepare t1 ~gid;
            Coordinator_log.decide coord ~gid ~commit:true;
            recover_all ();
            Hashtbl.replace committed key v
          | CrashApplied ->
            Engine_log.prepare t0 ~gid;
            Engine_log.prepare t1 ~gid;
            Coordinator_log.decide coord ~gid ~commit:true;
            Engine_log.commit_group t0;
            Engine_log.commit_group t1;
            recover_all ();
            Hashtbl.replace committed key v)
        fates;
      recover_all ();
      (* nothing in doubt once resolution records are down, and a second
         restart (without any resolver) must not change the state *)
      let no_doubt = Array.for_all (fun e -> Engine_log.in_doubt e = []) shards in
      let fp = Array.map Engine_log.state_fingerprint shards in
      Array.iter Engine_log.crash_and_recover shards;
      let idempotent =
        Array.for_all2 (fun f e -> f = Engine_log.state_fingerprint e) fp shards
      in
      (* surviving values vs the serial reference, and never half-applied *)
      let read e k =
        let t = Engine_log.begin_txn e in
        let v = Engine_log.get t k in
        Engine_log.abort t;
        v
      in
      let state_ok = ref true in
      for k = 0 to n_keys - 1 do
        let expect = Hashtbl.find_opt committed k in
        let v0 = read shards.(0) k and v1 = read shards.(1) k in
        if v0 <> v1 then state_ok := false (* half-applied *)
        else if v0 <> expect then state_ok := false
      done;
      no_doubt && idempotent && !state_ok)

(* The oplog engine exposes the same participant hooks; run a focused
   version of the crash fates through it. *)
let test_2pc_oplog () =
  let e = Engine_oplog.create ~n_keys:16 () in
  let coord = Coordinator_log.create () in
  (* decided but unapplied: must commit after recovery *)
  let t = Engine_oplog.begin_txn e in
  Engine_oplog.put t 3 "yes";
  Engine_oplog.prepare t ~gid:7;
  Coordinator_log.decide coord ~gid:7 ~commit:true;
  (* prepared, never decided: presumed abort *)
  let u = Engine_oplog.begin_txn e in
  Engine_oplog.put u 4 "no";
  Engine_oplog.prepare u ~gid:8;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "both in doubt pre-crash"
    [ (1, 7); (2, 8) ]
    (Engine_oplog.in_doubt e);
  Coordinator_log.crash_and_recover coord;
  Engine_oplog.crash_and_recover_resolved e
    ~resolve:(fun ~gid -> Coordinator_log.resolve coord ~gid);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "resolved" []
    (Engine_oplog.in_doubt e);
  let r = Engine_oplog.begin_txn e in
  check (Alcotest.option Alcotest.string) "decided commit applied" (Some "yes")
    (Engine_oplog.get r 3);
  check (Alcotest.option Alcotest.string) "presumed abort" None (Engine_oplog.get r 4);
  Engine_oplog.abort r

(* --- the sharded server ------------------------------------------- *)

module Sharded = Shard.Make (Engine_log)
module Serial = Server.Make (Engine_log)

let n_keys = 256

let fresh_engine () = Engine_log.create_with ~n_keys ~n_log_disks:2 ()

(* Scripts whose final state is commit-order independent: every put
   writes a constant function of the key, so any serializable execution
   of the same transaction set ends in the same store. *)
let mk_workload ~n ~rng ~cross_frac ~shards =
  let keys_per_page = 4 in
  let arrivals = Array.init n (fun i -> float_of_int i *. 40.0) in
  let scripts =
    Array.init n (fun i ->
        let len = 1 + Prng.int rng 4 in
        let base = Prng.int rng (n_keys - len) in
        List.init len (fun j ->
            let k =
              if cross_frac > 0.0 && i mod int_of_float (1.0 /. cross_frac) = 0 then
                (base + (j * 64)) mod n_keys (* long stride: hops shards *)
              else base + j
            in
            if Prng.bool rng ~p:0.5 then Scheduler.Put (k, Printf.sprintf "k%d" k)
            else Scheduler.Get k))
  in
  ignore shards;
  ignore keys_per_page;
  (arrivals, scripts)

let scan_digest ~shards engines =
  let keys_per_page = Engine_log.keys_per_page engines.(0) in
  let buf = Buffer.create 1024 in
  for k = 0 to n_keys - 1 do
    let s = Shard_router.shard_of_key ~shards ~keys_per_page k in
    let t = Engine_log.begin_txn engines.(s) in
    (match Engine_log.get t k with
    | Some v ->
      Buffer.add_string buf (string_of_int k);
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf ';'
    | None -> ());
    Engine_log.abort t
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_sharded ~shards ~cross_frac =
  let rng = Prng.create 7 in
  let arrivals_us, scripts = mk_workload ~n:60 ~rng ~cross_frac ~shards in
  let serial_engine = fresh_engine () in
  let sr =
    Serial.run ~mode:(Commit_pipeline.Grouped { batch = 4; timeout_us = 300.0 })
      ~arrivals_us ~scripts serial_engine
  in
  Engine_log.crash_and_recover serial_engine;
  let reference = scan_digest ~shards:1 [| serial_engine |] in
  let engines = Array.init shards (fun _ -> fresh_engine ()) in
  let coord = Coordinator_log.create () in
  let r =
    Sharded.run ~mode:(Commit_pipeline.Grouped { batch = 4; timeout_us = 300.0 })
      ~arrivals_us ~scripts ~coordinator:coord engines
  in
  Coordinator_log.crash_and_recover coord;
  Array.iter
    (Engine_log.crash_and_recover_resolved ~resolve:(fun ~gid ->
         Coordinator_log.resolve coord ~gid))
    engines;
  let in_doubt =
    Array.fold_left (fun acc e -> acc + List.length (Engine_log.in_doubt e)) 0 engines
  in
  (sr, r, reference, scan_digest ~shards engines, in_doubt)

let test_sharded_state_equivalence () =
  List.iter
    (fun (shards, cross_frac) ->
      let sr, r, reference, sharded, in_doubt = run_sharded ~shards ~cross_frac in
      check Alcotest.int "all completed" sr.Server.completed r.Shard.completed;
      check Alcotest.string
        (Printf.sprintf "scan digest (%d shards, cross %.2f)" shards cross_frac)
        reference sharded;
      check Alcotest.int "no in-doubt transactions" 0 in_doubt)
    [ (2, 0.0); (2, 0.25); (4, 0.0); (4, 0.25); (3, 0.5) ]

let test_sharded_cross_counted () =
  let _, r, _, _, _ = run_sharded ~shards:4 ~cross_frac:0.25 in
  Alcotest.(check bool) "some cross-shard transactions ran" true (r.Shard.cross_committed > 0);
  Alcotest.(check bool)
    "cross latencies recorded" true
    (Dbm_util.Stats.Histogram.count r.Shard.cross_latency_us = r.Shard.cross_committed)

let test_single_shard_delegates () =
  let rng = Prng.create 11 in
  let arrivals_us, scripts = mk_workload ~n:40 ~rng ~cross_frac:0.2 ~shards:1 in
  let mode = Commit_pipeline.Grouped { batch = 4; timeout_us = 300.0 } in
  let e1 = fresh_engine () in
  let direct = Serial.run ~mode ~arrivals_us ~scripts e1 in
  let e2 = fresh_engine () in
  let via =
    Sharded.run ~mode ~arrivals_us ~scripts ~coordinator:(Coordinator_log.create ()) [| e2 |]
  in
  check Alcotest.int "completed" direct.Server.completed via.Shard.completed;
  check (Alcotest.float 0.0) "makespan" direct.Server.makespan_us via.Shard.makespan_us;
  check Alcotest.int "forces" direct.Server.forces via.Shard.forces;
  check Alcotest.int "restarts" direct.Server.restarts via.Shard.restarts;
  check Alcotest.int "lock acquires" direct.Server.lock_acquires via.Shard.lock_acquires;
  check Alcotest.int "cross" 0 via.Shard.cross_committed;
  (match via.Shard.serial with
  | Some s ->
    check Alcotest.int "max_inflight" direct.Server.max_inflight s.Server.max_inflight;
    check Alcotest.int "max_queued" direct.Server.max_queued s.Server.max_queued
  | None -> Alcotest.fail "shards = 1 must expose the delegated Server result");
  check Alcotest.string "engine states identical"
    (Engine_log.state_fingerprint e1) (Engine_log.state_fingerprint e2)

let () =
  Alcotest.run "dbm_storage sharded execution"
    [
      ( "shard router",
        [
          QCheck_alcotest.to_alcotest prop_router_covers;
          QCheck_alcotest.to_alcotest prop_router_single_shard;
        ] );
      ( "two-phase commit",
        [
          QCheck_alcotest.to_alcotest prop_2pc_equivalence;
          Alcotest.test_case "oplog participant hooks" `Quick test_2pc_oplog;
        ] );
      ( "sharded server",
        [
          Alcotest.test_case "state equals serial reference" `Quick
            test_sharded_state_equivalence;
          Alcotest.test_case "cross-shard transactions counted" `Quick
            test_sharded_cross_counted;
          Alcotest.test_case "one shard delegates to Server" `Quick
            test_single_shard_delegates;
        ] );
    ]
