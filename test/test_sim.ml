(* Tests for the discrete-event engine and queued resources. *)

module Engine = Dbm_sim.Engine
module Resource = Dbm_sim.Resource
module Trace = Dbm_sim.Trace

let check = Alcotest.check

let test_event_order () =
  let e = Engine.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Engine.schedule e ~delay:5.0 (note "c"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:3.0 (note "b"));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  check (Alcotest.float 1e-9) "clock at last event" 5.0 (Engine.now e)

let test_fifo_ties () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:2.0 (fun () -> order := i :: !order))
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "scheduling order breaks ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  check Alcotest.int "pending" 1 (Engine.pending e);
  Engine.cancel e id;
  check Alcotest.int "cancelled" 0 (Engine.pending e);
  Engine.run e;
  check Alcotest.bool "never fires" false !fired;
  (* double cancel is a no-op *)
  Engine.cancel e id

let test_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:2.0 (fun () -> times := Engine.now e :: !times))));
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "chained events" [ 1.0; 3.0 ] (List.rev !times)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> ignore (Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)))
    [ 1.0; 2.0; 3.0 ];
  Engine.run ~until:2.0 e;
  check (Alcotest.list (Alcotest.float 1e-9)) "horizon inclusive" [ 1.0; 2.0 ] (List.rev !fired);
  Engine.run e;
  check Alcotest.int "resumes" 3 (List.length !fired)

let test_run_until_cancelled_top () =
  (* Regression: a cancelled event past the horizon used to count as
     "within horizon", letting the live event behind it (also past the
     horizon) fire during [run ~until]. *)
  let e = Engine.create () in
  let fired = ref [] in
  let note d () = fired := d :: !fired in
  ignore (Engine.schedule e ~delay:1.0 (note 1.0));
  let cancelled = Engine.schedule e ~delay:5.0 (note 5.0) in
  ignore (Engine.schedule e ~delay:6.0 (note 6.0));
  Engine.cancel e cancelled;
  Engine.run ~until:2.0 e;
  check (Alcotest.list (Alcotest.float 1e-9)) "nothing past the horizon fires" [ 1.0 ]
    (List.rev !fired);
  check (Alcotest.float 1e-9) "clock at last fired event" 1.0 (Engine.now e);
  check Alcotest.int "live event still pending" 1 (Engine.pending e);
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "resumes cleanly" [ 1.0; 6.0 ] (List.rev !fired)

let test_invalid_schedules () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative or non-finite delay") (fun () ->
      ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ())));
  ignore (Engine.schedule e ~delay:4.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:1.0 (fun () -> ())))

(* --- free-list recycling ---------------------------------------------- *)

let test_recycled_record_drops_old_action () =
  (* A cancelled record goes back to the free list when it surfaces; the
     next schedule must reuse it with the new action only. *)
  let e = Engine.create () in
  let old_fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> old_fired := true) in
  Engine.cancel e h;
  Engine.run e;
  let new_fired = ref 0 in
  for _ = 1 to 3 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> incr new_fired));
    Engine.run e
  done;
  check Alcotest.bool "cancelled action never fires" false !old_fired;
  check Alcotest.int "recycled records fire the new action" 3 !new_fired

let test_stale_cancel_misses_recycled_record () =
  (* A handle kept across its event's firing must not cancel whatever
     event recycled the record afterwards. *)
  let e = Engine.create () in
  let stale = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  Engine.run e;
  let b_fired = ref false in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> b_fired := true));
  Engine.cancel e stale;
  check Alcotest.int "stale cancel is a no-op" 1 (Engine.pending e);
  Engine.run e;
  check Alcotest.bool "successor still fires" true !b_fired

let test_steady_state_allocation () =
  (* One live self-rescheduling event, recycled forever: the engine must
     not allocate a record per event.  A fresh record every time would
     cost >10 words/event; the bound leaves room for GC noise only. *)
  let e = Engine.create () in
  let n = 100_000 in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired < n then ignore (Engine.schedule e ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~delay:1.0 tick);
  let s0 = Gc.quick_stat () in
  Engine.run e;
  let s1 = Gc.quick_stat () in
  let words_per_event = (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int n in
  check Alcotest.int "all events fired" n !fired;
  if words_per_event > 4.0 then
    Alcotest.failf "steady-state engine allocates %.2f minor words/event (want <= 4)"
      words_per_event

let test_step () =
  let e = Engine.create () in
  let n = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr n));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr n));
  check Alcotest.bool "step 1" true (Engine.step e);
  check Alcotest.int "one fired" 1 !n;
  check Alcotest.bool "step 2" true (Engine.step e);
  check Alcotest.bool "exhausted" false (Engine.step e)

(* A fixed event script whose observable behaviour (tags and firing
   times) must be identical on a fresh engine and on a reset one. *)
let engine_script e =
  let log = ref [] in
  let note tag () = log := (tag, Engine.now e) :: !log in
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  let h = Engine.schedule e ~delay:5.0 (note "cancelled") in
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:2.0 (note "b-tie"));
  Engine.cancel e h;
  Engine.run e;
  List.rev !log

let test_engine_reset () =
  let e = Engine.create () in
  (* Leave the engine mid-flight: a fired event, a pending one, a live
     handle — reset must discard all of it. *)
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  let stale = Engine.schedule e ~delay:3.0 (fun () -> Alcotest.fail "survived reset") in
  check Alcotest.bool "something fired" true (Engine.step e);
  Engine.reset e;
  check (Alcotest.float 0.0) "clock back to zero" 0.0 (Engine.now e);
  check Alcotest.int "agenda empty" 0 (Engine.pending e);
  check Alcotest.bool "nothing to run" false (Engine.step e);
  let expected = engine_script (Engine.create ()) in
  let pairs = Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)) in
  check pairs "reset engine replays the script exactly" expected (engine_script e);
  (* The pre-reset handle must not touch whatever recycled its record. *)
  Engine.cancel e stale;
  Engine.reset e;
  check pairs "second recycle still exact" expected (engine_script e)

(* --- Resource -------------------------------------------------------- *)

let test_resource_serializes () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:1 () in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Resource.submit r ~service:10.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "sequential completions" [ 10.0; 20.0; 30.0 ]
    (List.rev !done_at);
  check Alcotest.int "completed" 3 (Resource.completed r)

let test_resource_parallel_servers () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:3 () in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Resource.submit r ~service:10.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  check (Alcotest.list (Alcotest.float 1e-9)) "parallel completions" [ 10.0; 10.0; 10.0 ]
    (List.rev !done_at)

let test_resource_utilization () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:2 () in
  (* 2 jobs of 10 on 2 servers, then idle until t=40 *)
  Resource.submit r ~service:10.0 (fun () -> ());
  Resource.submit r ~service:10.0 (fun () -> ());
  ignore (Engine.schedule e ~delay:40.0 (fun () -> ()));
  Engine.run e;
  check (Alcotest.float 1e-9) "utilization 20/80" 0.25 (Resource.utilization r)

let test_resource_fcfs () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:1 () in
  let order = ref [] in
  List.iter
    (fun tag -> Resource.submit r ~service:1.0 (fun () -> order := tag :: !order))
    [ "first"; "second"; "third" ];
  Engine.run e;
  check (Alcotest.list Alcotest.string) "fcfs" [ "first"; "second"; "third" ] (List.rev !order)

let test_resource_queue_length () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:1 () in
  for _ = 1 to 4 do
    Resource.submit r ~service:5.0 (fun () -> ())
  done;
  check Alcotest.int "three waiting" 3 (Resource.queue_length r);
  check Alcotest.int "one busy" 1 (Resource.busy_servers r);
  Engine.run e;
  check Alcotest.int "drained" 0 (Resource.queue_length r)

let test_resource_reset () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" ~servers:2 () in
  let script servers =
    let done_at = ref [] in
    for _ = 1 to 2 * servers do
      Resource.submit r ~service:10.0 (fun () -> done_at := Engine.now e :: !done_at)
    done;
    Engine.run e;
    (List.rev !done_at, Resource.completed r, Resource.utilization r)
  in
  let first = script 2 in
  (* the engine owning the resource must be reset first *)
  Engine.reset e;
  Resource.reset r ~name:"cpu" ~servers:2;
  let second = script 2 in
  let floats = Alcotest.list (Alcotest.float 1e-9) in
  let check3 label (ts, n, u) (ts', n', u') =
    check floats (label ^ ": completion times") ts ts';
    check Alcotest.int (label ^ ": completed count") n n';
    check (Alcotest.float 1e-9) (label ^ ": utilization") u u'
  in
  check3 "same servers" first second;
  (* a different server count must rebuild the per-server state *)
  Engine.reset e;
  Resource.reset r ~name:"cpu" ~servers:1;
  let serial, completed, _ = script 1 in
  check floats "one server serializes after reset" [ 10.0; 20.0 ] serial;
  check Alcotest.int "counters restart" 2 completed;
  (* and back again *)
  Engine.reset e;
  Resource.reset r ~name:"cpu" ~servers:2;
  check3 "restored server count" first (script 2);
  match Resource.reset r ~name:"cpu" ~servers:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "servers=0 accepted"

(* The ring-buffered, preallocated-finisher Resource must behave exactly
   like the textbook model: an FCFS queue in front of [servers] identical
   servers, each job taking the earliest-free server.  Integer-valued
   gaps and service times keep every sum exact, so the comparison needs
   no tolerance. *)
let reference_model ~servers jobs =
  let free_at = Array.make servers 0.0 in
  List.map
    (fun (arrival, service) ->
      let s = ref 0 in
      for i = 1 to servers - 1 do
        if free_at.(i) < free_at.(!s) then s := i
      done;
      let start = Float.max arrival free_at.(!s) in
      free_at.(!s) <- start +. service;
      (start, start +. service))
    jobs

let simulate_resource ~servers jobs =
  let e = Engine.create () in
  let r = Resource.create e ~name:"model" ~servers () in
  let completion = Array.make (List.length jobs) Float.nan in
  List.iteri
    (fun i (arrival, service) ->
      ignore
        (Engine.schedule e ~delay:arrival (fun () ->
             Resource.submit r ~service (fun () -> completion.(i) <- Engine.now e))))
    jobs;
  Engine.run e;
  (r, completion, Engine.now e)

let prop_resource_matches_reference =
  QCheck.Test.make ~name:"resource matches naive FCFS multi-server model" ~count:300
    QCheck.(
      pair (int_range 1 3)
        (small_list (pair (int_range 0 5) (int_range 0 6))))
    (fun (servers, raw) ->
      (* integer gaps -> non-decreasing integer arrival times *)
      let _, jobs =
        List.fold_left
          (fun (t, acc) (gap, svc) ->
            let t = t + gap in
            (t, (float_of_int t, float_of_int svc) :: acc))
          (0, []) raw
      in
      let jobs = List.rev jobs in
      let expected = reference_model ~servers jobs in
      let r, completion, now = simulate_resource ~servers jobs in
      let ok_completions =
        List.for_all2
          (fun (_, finish) measured -> Float.equal finish measured)
          expected (Array.to_list completion)
      in
      let ok_count = Resource.completed r = List.length jobs in
      let ok_stats =
        now = 0.0
        || begin
             let busy = List.fold_left (fun a (_, s) -> a +. s) 0.0 jobs in
             let wait =
               List.fold_left2
                 (fun a (arr, _) (start, _) -> a +. (start -. arr))
                 0.0 jobs expected
             in
             Float.abs (Resource.utilization r -. (busy /. (float_of_int servers *. now)))
               < 1e-9
             && Float.abs (Resource.mean_queue_length r -. (wait /. now)) < 1e-9
           end
      in
      ok_completions && ok_count && ok_stats)

(* --- Trace ------------------------------------------------------------ *)

let test_trace_order_and_filter () =
  let t = Trace.create () in
  Trace.emit t ~time:1.0 ~source:"a" ~tag:"x" ~detail:"first";
  Trace.emit t ~time:2.0 ~source:"b" ~tag:"y" ~detail:"second";
  Trace.emit t ~time:3.0 ~source:"a" ~tag:"x" ~detail:"third";
  check Alcotest.int "all retained" 3 (List.length (Trace.events t));
  check Alcotest.int "total" 3 (Trace.total t);
  let xs = Trace.with_tag t "x" in
  check Alcotest.int "filtered" 2 (List.length xs);
  check Alcotest.string "oldest first" "first" (List.hd xs).Trace.detail

let test_trace_bounded () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.emit t ~time:(float_of_int i) ~source:"s" ~tag:"t" ~detail:(string_of_int i)
  done;
  check Alcotest.int "bounded" 2 (List.length (Trace.events t));
  check Alcotest.int "total counts drops" 5 (Trace.total t);
  check Alcotest.string "keeps newest" "4" (List.hd (Trace.events t)).Trace.detail

let test_trace_machine_integration () =
  let machine = { Dbm_machine.Config.paper_base with Dbm_machine.Config.db_pages = 16384 } in
  let workload =
    Dbm_workload.Workload.generate
      {
        Dbm_workload.Workload.default with
        Dbm_workload.Workload.n_transactions = 3;
        max_pages = 20;
        db_pages = 16384;
      }
  in
  let trace = Trace.create () in
  let r =
    Dbm_machine.Machine.run_traced ~trace ~config:machine
      ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
      ~workload
  in
  check Alcotest.int "one admit per txn" 3 (List.length (Trace.with_tag trace "admit"));
  check Alcotest.int "one finish per txn" 3 (List.length (Trace.with_tag trace "finish"));
  check Alcotest.bool "reads traced" true (Trace.with_tag trace "read" <> []);
  (* traced and untraced runs are identical *)
  let r' =
    Dbm_machine.Machine.run ~config:machine
      ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
      ~workload
  in
  check (Alcotest.float 1e-9) "tracing does not perturb the run"
    r'.Dbm_machine.Results.makespan_ms r.Dbm_machine.Results.makespan_ms;
  (* events are time-ordered *)
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Trace.time <= b.Trace.time && ordered rest
    | _ -> true
  in
  check Alcotest.bool "monotone timeline" true (ordered (Trace.events trace))

let () =
  Alcotest.run "dbm_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "run until with cancelled top" `Quick test_run_until_cancelled_top;
          Alcotest.test_case "invalid schedules" `Quick test_invalid_schedules;
          Alcotest.test_case "recycled record drops old action" `Quick
            test_recycled_record_drops_old_action;
          Alcotest.test_case "stale cancel misses recycled record" `Quick
            test_stale_cancel_misses_recycled_record;
          Alcotest.test_case "steady-state allocation bound" `Quick
            test_steady_state_allocation;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "reset recycles deterministically" `Quick test_engine_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order and filter" `Quick test_trace_order_and_filter;
          Alcotest.test_case "bounded ring" `Quick test_trace_bounded;
          Alcotest.test_case "machine integration" `Quick test_trace_machine_integration;
        ] );
      ( "resource",
        [
          Alcotest.test_case "single server serializes" `Quick test_resource_serializes;
          Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "fcfs order" `Quick test_resource_fcfs;
          Alcotest.test_case "queue length" `Quick test_resource_queue_length;
          Alcotest.test_case "reset" `Quick test_resource_reset;
          QCheck_alcotest.to_alcotest prop_resource_matches_reference;
        ] );
    ]
