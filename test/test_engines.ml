(* Crash-recovery tests for every storage engine.

   The generic part runs random operation sequences (puts, deletes,
   commits, aborts, crashes, checkpoints) simultaneously against an
   engine and against the executable specification (Kv.Model), checking
   full-state equality after every crash and at the end: committed data
   is durable, uncommitted data is invisible — atomicity + durability
   for each of the paper's recovery mechanisms. *)

module Kv = Dbm_storage.Kv
module Engine_log = Dbm_storage.Engine_log
module Engine_oplog = Dbm_storage.Engine_oplog
module Engine_shadow = Dbm_storage.Engine_shadow
module Engine_versel = Dbm_storage.Engine_versel
module Engine_overwrite = Dbm_storage.Engine_overwrite
module Engine_diff = Dbm_storage.Engine_diff

let check = Alcotest.check

let n_keys = 64

type op =
  | Put of int * string
  | Delete of int
  | Commit
  | Abort
  | Crash
  | Checkpoint

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Put (k, v)) (int_range 0 (n_keys - 1)) (string_size (int_range 0 12)));
        (2, map (fun k -> Delete k) (int_range 0 (n_keys - 1)));
        (3, return Commit);
        (1, return Abort);
        (2, return Crash);
        (1, return Checkpoint);
      ])

let ops_arbitrary =
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Put (k, v) -> Printf.sprintf "Put(%d,%S)" k v
           | Delete k -> Printf.sprintf "Del(%d)" k
           | Commit -> "Commit"
           | Abort -> "Abort"
           | Crash -> "Crash"
           | Checkpoint -> "Ckpt")
         ops)
  in
  QCheck.make ~print (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) op_gen)

module Crash_harness (E : Kv.S) = struct
  (* Compare the full committed state of engine and model. *)
  let states_equal e m =
    let te = E.begin_txn e and tm = Kv.Model.begin_txn m in
    let ok = ref true in
    for k = 0 to n_keys - 1 do
      if E.get te k <> Kv.Model.get tm k then ok := false
    done;
    E.abort te;
    Kv.Model.abort tm;
    !ok

  let run_ops ops =
    let e = E.create ~n_keys () and m = Kv.Model.create ~n_keys () in
    let live = ref None in
    let ensure_live () =
      match !live with
      | Some pair -> pair
      | None ->
        let pair = (E.begin_txn e, Kv.Model.begin_txn m) in
        live := Some pair;
        pair
    in
    let ok = ref true in
    List.iter
      (fun op ->
        match op with
        | Put (k, v) ->
          let te, tm = ensure_live () in
          E.put te k v;
          Kv.Model.put tm k v
        | Delete k ->
          let te, tm = ensure_live () in
          E.delete te k;
          Kv.Model.delete tm k
        | Commit ->
          (match !live with
          | Some (te, tm) ->
            E.commit te;
            Kv.Model.commit tm;
            live := None
          | None -> ())
        | Abort ->
          (match !live with
          | Some (te, tm) ->
            E.abort te;
            Kv.Model.abort tm;
            live := None
          | None -> ())
        | Crash ->
          E.crash_and_recover e;
          Kv.Model.crash_and_recover m;
          live := None;
          if not (states_equal e m) then ok := false
        | Checkpoint ->
          (* Checkpoints/merges require quiescence in some engines;
             exercise them only between transactions. *)
          if !live = None then begin
            E.checkpoint e;
            Kv.Model.checkpoint m
          end)
      ops;
    (match !live with
    | Some (te, tm) ->
      E.commit te;
      Kv.Model.commit tm
    | None -> ());
    !ok && states_equal e m

  let property =
    QCheck.Test.make
      ~name:(E.engine_name ^ " matches the model under crashes")
      ~count:150 ops_arbitrary run_ops

  (* --- deterministic scenarios, one per core guarantee -------------- *)

  let test_committed_survives_crash () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 1 "alpha";
    E.put t 2 "beta";
    E.commit t;
    E.crash_and_recover e;
    let t = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "key 1 durable" (Some "alpha") (E.get t 1);
    check (Alcotest.option Alcotest.string) "key 2 durable" (Some "beta") (E.get t 2);
    E.abort t

  let test_uncommitted_invisible_after_crash () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 1 "committed";
    E.commit t;
    let t = E.begin_txn e in
    E.put t 1 "torn";
    E.put t 5 "torn";
    E.crash_and_recover e;
    let t2 = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "old value back" (Some "committed") (E.get t2 1);
    check (Alcotest.option Alcotest.string) "never-committed key empty" None (E.get t2 5);
    E.abort t2;
    (* the dead handle is unusable *)
    match E.get t 1 with
    | exception Kv.Txn_finished -> ()
    | _ -> Alcotest.fail "stale handle still usable"

  let test_abort_undoes () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 3 "keep";
    E.commit t;
    let t = E.begin_txn e in
    E.put t 3 "drop";
    E.delete t 3;
    E.put t 4 "drop";
    E.abort t;
    let t = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "abort undone" (Some "keep") (E.get t 3);
    check (Alcotest.option Alcotest.string) "no leak" None (E.get t 4);
    E.abort t

  let test_read_own_writes () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 7 "mine";
    check (Alcotest.option Alcotest.string) "own write visible" (Some "mine") (E.get t 7);
    E.delete t 7;
    check (Alcotest.option Alcotest.string) "own delete visible" None (E.get t 7);
    E.abort t

  let test_delete_then_crash () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 9 "gone soon";
    E.commit t;
    let t = E.begin_txn e in
    E.delete t 9;
    E.commit t;
    E.crash_and_recover e;
    let t = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "committed delete durable" None (E.get t 9);
    E.abort t

  let test_double_crash () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 2 "v";
    E.commit t;
    E.crash_and_recover e;
    E.crash_and_recover e;
    let t = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "stable across repeated recovery" (Some "v")
      (E.get t 2);
    E.abort t

  let test_checkpoint_preserves_state () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    E.put t 11 "a";
    E.put t 12 "b";
    E.commit t;
    E.checkpoint e;
    E.crash_and_recover e;
    let t = E.begin_txn e in
    check (Alcotest.option Alcotest.string) "after checkpoint+crash" (Some "a") (E.get t 11);
    check (Alcotest.option Alcotest.string) "after checkpoint+crash 2" (Some "b") (E.get t 12);
    E.abort t

  let test_key_bounds () =
    let e = E.create ~n_keys () in
    let t = E.begin_txn e in
    (match E.put t n_keys "x" with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "out-of-range key accepted");
    E.abort t

  let suite =
    ( E.engine_name,
      [
        Alcotest.test_case "committed survives crash" `Quick test_committed_survives_crash;
        Alcotest.test_case "uncommitted invisible after crash" `Quick
          test_uncommitted_invisible_after_crash;
        Alcotest.test_case "abort undoes" `Quick test_abort_undoes;
        Alcotest.test_case "read own writes" `Quick test_read_own_writes;
        Alcotest.test_case "delete then crash" `Quick test_delete_then_crash;
        Alcotest.test_case "double crash" `Quick test_double_crash;
        Alcotest.test_case "checkpoint preserves state" `Quick test_checkpoint_preserves_state;
        Alcotest.test_case "key bounds" `Quick test_key_bounds;
        QCheck_alcotest.to_alcotest property;
      ] )
end

(* Engine variants under test. *)

module Log_default = Crash_harness (Engine_log)

module Log3_by_txn = Crash_harness (struct
  include Engine_log

  let engine_name = "logging-3-disks-by-txn"
  let create ?n_keys () = create_with ?n_keys ~n_log_disks:3 ~selection:Engine_log.By_txn ()
end)

module Log_by_page = Crash_harness (struct
  include Engine_log

  let engine_name = "logging-2-disks-by-page"
  let create ?n_keys () = create_with ?n_keys ~n_log_disks:2 ~selection:Engine_log.By_page ()
end)

module Log_unmerged = Crash_harness (struct
  include Engine_log

  let engine_name = "logging-unmerged-recovery"

  let create ?n_keys () =
    let e = create_with ?n_keys ~n_log_disks:3 () in
    set_recovery_strategy e Engine_log.Unmerged;
    e
end)

module Log_delta = Crash_harness (struct
  include Engine_log

  let engine_name = "logging-delta-records"
  let create ?n_keys () = create_with ?n_keys ~log_format:Engine_log.Delta ()
end)

module Oplog_h = Crash_harness (Engine_oplog)
module Shadow_h = Crash_harness (Engine_shadow)
module Versel_h = Crash_harness (Engine_versel)
module No_undo_h = Crash_harness (Engine_overwrite.No_undo)
module No_redo_h = Crash_harness (Engine_overwrite.No_redo)
module Diff_h = Crash_harness (Engine_diff)
module Model_h = Crash_harness (Kv.Model)

(* --- engine-specific behaviours -------------------------------------- *)

let test_log_wal_order () =
  let e = Engine_log.create () in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 0 "x";
  Engine_log.commit t;
  (* somewhere in the logs there is an Update for page 0 followed (in
     LSN order) by a Commit of the same transaction *)
  let records =
    List.concat
      (List.init (Engine_log.log_disks e) (fun d -> Engine_log.dump_log e ~disk:d))
  in
  let ordered = List.sort (fun a b -> Int.compare (Dbm_storage.Wal.lsn a) (Dbm_storage.Wal.lsn b)) records in
  let rec scan saw_update = function
    | [] -> Alcotest.fail "no commit after update"
    | Dbm_storage.Wal.Update _ :: rest -> scan true rest
    | Dbm_storage.Wal.Commit _ :: _ when saw_update -> ()
    | _ :: rest -> scan saw_update rest
  in
  scan false ordered

let test_log_distributes_over_disks () =
  let e = Engine_log.create_with ~n_log_disks:3 ~selection:Engine_log.Cyclic () in
  let t = Engine_log.begin_txn e in
  for k = 0 to 20 do
    Engine_log.put t k "v"
  done;
  Engine_log.commit t;
  for d = 0 to 2 do
    if Engine_log.dump_log e ~disk:d = [] then Alcotest.failf "log disk %d unused" d
  done

let test_log_checkpoint_truncates () =
  let e = Engine_log.create () in
  for i = 0 to 9 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t i "v";
    Engine_log.commit t
  done;
  let before = List.assoc "durable_records" (Engine_log.stats e) in
  Engine_log.checkpoint e;
  let after = List.assoc "durable_records" (Engine_log.stats e) in
  check Alcotest.bool "log shrank" true (after < before);
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "state preserved" (Some "v") (Engine_log.get t 4);
  Engine_log.abort t

let test_log_fuzzy_checkpoint_with_active_txn () =
  let e = Engine_log.create () in
  let t1 = Engine_log.begin_txn e in
  Engine_log.put t1 1 "uncommitted";
  (* fuzzy checkpoint with t1 still active *)
  Engine_log.checkpoint e;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "active txn undone despite checkpoint" None
    (Engine_log.get t 1);
  Engine_log.abort t

let test_log_flush_steal_then_crash () =
  let e = Engine_log.create () in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 1 "dirty";
  (* steal: the dirty page reaches disk before commit *)
  Engine_log.flush e;
  Engine_log.crash_and_recover e;
  let t2 = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "stolen page rolled back" None (Engine_log.get t2 1);
  Engine_log.abort t2;
  match Engine_log.get t 1 with
  | exception Kv.Txn_finished -> ()
  | _ -> Alcotest.fail "stale handle usable"

let test_log_unmerged_equals_sorted () =
  (* drive two engines through the same history (including a steal and
     an uncommitted tail), crash both, recover with the two strategies,
     and compare every key *)
  let build () =
    let e = Engine_log.create_with ~n_log_disks:3 () in
    let t = Engine_log.begin_txn e in
    Engine_log.put t 1 "a1";
    Engine_log.put t 2 "a2";
    Engine_log.commit t;
    let t = Engine_log.begin_txn e in
    Engine_log.put t 1 "b1";
    Engine_log.commit t;
    let loser = Engine_log.begin_txn e in
    Engine_log.put loser 1 "loser";
    Engine_log.put loser 3 "loser";
    (* steal: the loser's dirty pages reach the disk *)
    Engine_log.flush e;
    e
  in
  let sorted = build () in
  let unmerged = build () in
  Engine_log.set_recovery_strategy unmerged Engine_log.Unmerged;
  Engine_log.crash_and_recover sorted;
  Engine_log.crash_and_recover unmerged;
  let ts = Engine_log.begin_txn sorted and tu = Engine_log.begin_txn unmerged in
  for k = 0 to 63 do
    check (Alcotest.option Alcotest.string)
      (Printf.sprintf "key %d equal under both strategies" k)
      (Engine_log.get ts k) (Engine_log.get tu k)
  done;
  check (Alcotest.option Alcotest.string) "winner survived" (Some "b1") (Engine_log.get tu 1);
  check (Alcotest.option Alcotest.string) "stolen loser page rolled back" None
    (Engine_log.get tu 3);
  Engine_log.abort ts;
  Engine_log.abort tu

let test_log_auto_checkpoint_bounds_log () =
  let e = Engine_log.create_with ~auto_checkpoint_records:40 () in
  for i = 0 to 49 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t (i mod 32) (Printf.sprintf "v%d" i);
    Engine_log.commit t
  done;
  let durable = List.assoc "durable_records" (Engine_log.stats e) in
  check Alcotest.bool "log stays bounded" true (durable < 60);
  check Alcotest.bool "checkpoints ran" true (List.assoc "checkpoints" (Engine_log.stats e) > 0);
  (* state is intact across a crash despite the truncations *)
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "latest value survived" (Some "v49")
    (Engine_log.get t 17);
  Engine_log.abort t

let test_log_auto_checkpoint_keeps_active_undo () =
  let e = Engine_log.create_with ~auto_checkpoint_records:5 () in
  let long = Engine_log.begin_txn e in
  Engine_log.put long 1 "uncommitted";
  (* churn enough committed txns to trigger several auto checkpoints *)
  for i = 0 to 19 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t (8 + (i mod 8)) "churn";
    Engine_log.commit t
  done;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "active txn still undone" None (Engine_log.get t 1);
  check (Alcotest.option Alcotest.string) "churn survived" (Some "churn") (Engine_log.get t 8);
  Engine_log.abort t;
  ignore long

let test_shadow_blocks_move () =
  let e = Engine_shadow.create () in
  let b0 = Engine_shadow.current_block e ~page:0 in
  let t = Engine_shadow.begin_txn e in
  Engine_shadow.put t 0 "moved";
  Engine_shadow.commit t;
  let b1 = Engine_shadow.current_block e ~page:0 in
  check Alcotest.bool "update relocated the page" true (b0 <> b1)

let test_shadow_free_blocks_conserved () =
  let e = Engine_shadow.create () in
  let before = Engine_shadow.free_blocks e in
  let t = Engine_shadow.begin_txn e in
  Engine_shadow.put t 0 "x";
  Engine_shadow.commit t;
  check Alcotest.int "one old block freed, one new used" before (Engine_shadow.free_blocks e);
  let t = Engine_shadow.begin_txn e in
  Engine_shadow.put t 4 "y";
  Engine_shadow.abort t;
  check Alcotest.int "abort returns the block" before (Engine_shadow.free_blocks e)

let test_shadow_crash_keeps_generation () =
  let e = Engine_shadow.create () in
  let t = Engine_shadow.begin_txn e in
  Engine_shadow.put t 0 "committed";
  Engine_shadow.commit t;
  let flips = Engine_shadow.table_flips e in
  let t = Engine_shadow.begin_txn e in
  Engine_shadow.put t 0 "uncommitted";
  Engine_shadow.crash_and_recover e;
  check Alcotest.int "flips survive" flips (Engine_shadow.table_flips e);
  ignore t

let test_versel_versions_grow () =
  let e = Engine_versel.create () in
  let t = Engine_versel.begin_txn e in
  Engine_versel.put t 0 "v1";
  Engine_versel.commit t;
  let a1, b1 = Engine_versel.slot_versions e ~page:0 in
  let t = Engine_versel.begin_txn e in
  Engine_versel.put t 0 "v2";
  Engine_versel.commit t;
  let a2, b2 = Engine_versel.slot_versions e ~page:0 in
  check Alcotest.bool "version advanced" true (max a2 b2 > max a1 b1);
  check Alcotest.bool "both slots populated" true (min a2 b2 > 0)

let test_versel_txn_ids_not_reused_after_crash () =
  let e = Engine_versel.create () in
  let t = Engine_versel.begin_txn e in
  Engine_versel.put t 0 "garbage";
  (* crash with the uncommitted slot written but not selected *)
  Engine_versel.crash_and_recover e;
  (* a new transaction must NOT pick up the crashed transaction's id,
     or the garbage slot would suddenly become visible on its commit *)
  let t2 = Engine_versel.begin_txn e in
  Engine_versel.put t2 5 "fresh";
  Engine_versel.commit t2;
  let t3 = Engine_versel.begin_txn e in
  check (Alcotest.option Alcotest.string) "garbage still invisible" None (Engine_versel.get t3 0);
  Engine_versel.abort t3

let test_overwrite_scratch_released () =
  let e = Engine_overwrite.No_undo.create () in
  let t = Engine_overwrite.No_undo.begin_txn e in
  Engine_overwrite.No_undo.put t 0 "a";
  Engine_overwrite.No_undo.put t 10 "b";
  check Alcotest.int "two slots held" 2 (Engine_overwrite.No_undo.scratch_in_use e);
  Engine_overwrite.No_undo.commit t;
  check Alcotest.int "slots released after install" 0 (Engine_overwrite.No_undo.scratch_in_use e)

let test_overwrite_scratch_overflow () =
  let e = Engine_overwrite.No_undo.create_with ~n_keys:64 ~scratch_slots:2 () in
  let t = Engine_overwrite.No_undo.begin_txn e in
  Engine_overwrite.No_undo.put t 0 "a";
  Engine_overwrite.No_undo.put t 4 "b";
  match Engine_overwrite.No_undo.put t 8 "c" with
  | exception Kv.Scratch_full -> ()
  | _ -> Alcotest.fail "scratch overflow not detected"

let test_overwrite_no_undo_reinstall_after_crash () =
  let e = Engine_overwrite.No_undo.create () in
  let t = Engine_overwrite.No_undo.begin_txn e in
  Engine_overwrite.No_undo.put t 3 "durable";
  (* committed, but the install pass never ran *)
  Engine_overwrite.No_undo.commit_without_install t;
  Engine_overwrite.No_undo.crash_and_recover e;
  let t2 = Engine_overwrite.No_undo.begin_txn e in
  check (Alcotest.option Alcotest.string) "recovery re-installed" (Some "durable")
    (Engine_overwrite.No_undo.get t2 3);
  Engine_overwrite.No_undo.abort t2;
  check Alcotest.int "slots reclaimed" 0 (Engine_overwrite.No_undo.scratch_in_use e)

let test_overwrite_no_redo_restores_after_crash () =
  let e = Engine_overwrite.No_redo.create () in
  let t = Engine_overwrite.No_redo.begin_txn e in
  Engine_overwrite.No_redo.put t 3 "old";
  Engine_overwrite.No_redo.commit t;
  let t = Engine_overwrite.No_redo.begin_txn e in
  Engine_overwrite.No_redo.put t 3 "overwritten in place";
  (* the home block now holds uncommitted data; crash *)
  Engine_overwrite.No_redo.crash_and_recover e;
  let t2 = Engine_overwrite.No_redo.begin_txn e in
  check (Alcotest.option Alcotest.string) "shadow restored" (Some "old")
    (Engine_overwrite.No_redo.get t2 3);
  Engine_overwrite.No_redo.abort t2;
  ignore t

let test_shadow_out_of_blocks () =
  (* spare_factor 1 gives one spare block per logical page; a single
     transaction can shadow every page, but two concurrent ones cannot *)
  let e = Engine_shadow.create_with ~n_keys:8 ~keys_per_page:4 ~spare_factor:1 () in
  let t1 = Engine_shadow.begin_txn e in
  Engine_shadow.put t1 0 "a";
  Engine_shadow.put t1 4 "b";
  let t2 = Engine_shadow.begin_txn e in
  (match Engine_shadow.put t2 0 "c" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "block exhaustion not reported");
  Engine_shadow.abort t2;
  Engine_shadow.commit t1;
  (* after commit the old blocks are free again *)
  let t3 = Engine_shadow.begin_txn e in
  Engine_shadow.put t3 0 "d";
  Engine_shadow.commit t3

let test_journal_truncate_then_crash_recovery () =
  (* checkpoint truncation followed by a crash must still recover: the
     truncated history's effects are on the durable data disk *)
  let e = Engine_log.create () in
  for i = 0 to 5 do
    let t = Engine_log.begin_txn e in
    Engine_log.put t i (Printf.sprintf "v%d" i);
    Engine_log.commit t
  done;
  Engine_log.checkpoint e;
  let t = Engine_log.begin_txn e in
  Engine_log.put t 0 "after-checkpoint";
  Engine_log.commit t;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "pre-checkpoint data" (Some "v5") (Engine_log.get t 5);
  check (Alcotest.option Alcotest.string) "post-checkpoint data" (Some "after-checkpoint")
    (Engine_log.get t 0);
  Engine_log.abort t

let test_versel_interleaved_commits () =
  (* two transactions on different pages, interleaved commit order *)
  let e = Engine_versel.create () in
  let t1 = Engine_versel.begin_txn e in
  let t2 = Engine_versel.begin_txn e in
  Engine_versel.put t1 0 "from-t1";
  Engine_versel.put t2 8 "from-t2";
  Engine_versel.commit t2;
  Engine_versel.commit t1;
  Engine_versel.crash_and_recover e;
  let t = Engine_versel.begin_txn e in
  check (Alcotest.option Alcotest.string) "t1 durable" (Some "from-t1") (Engine_versel.get t 0);
  check (Alcotest.option Alcotest.string) "t2 durable" (Some "from-t2") (Engine_versel.get t 8);
  Engine_versel.abort t

let test_diff_files_grow_then_merge () =
  let e = Engine_diff.create () in
  let t = Engine_diff.begin_txn e in
  Engine_diff.put t 0 "a";
  Engine_diff.put t 1 "b";
  Engine_diff.delete t 2;
  Engine_diff.commit t;
  check Alcotest.int "A records" 2 (Engine_diff.a_size e);
  check Alcotest.int "D records" 1 (Engine_diff.d_size e);
  Engine_diff.checkpoint e;
  check Alcotest.int "A merged away" 0 (Engine_diff.a_size e);
  check Alcotest.int "D merged away" 0 (Engine_diff.d_size e);
  check Alcotest.int "one merge" 1 (Engine_diff.merges e);
  let t = Engine_diff.begin_txn e in
  check (Alcotest.option Alcotest.string) "base holds the value" (Some "a") (Engine_diff.get t 0);
  Engine_diff.abort t

let test_diff_auto_merge_bounds_files () =
  let e = Engine_diff.create_with ~auto_merge_records:20 () in
  for i = 0 to 59 do
    let t = Engine_diff.begin_txn e in
    Engine_diff.put t (i mod 32) (Printf.sprintf "v%d" i);
    if i mod 7 = 6 then Engine_diff.delete t ((i + 1) mod 32);
    Engine_diff.commit t
  done;
  check Alcotest.bool "differential files stay bounded" true
    (Engine_diff.a_size e + Engine_diff.d_size e < 25);
  check Alcotest.bool "merges ran" true (Engine_diff.merges e >= 2);
  Engine_diff.crash_and_recover e;
  let t = Engine_diff.begin_txn e in
  check (Alcotest.option Alcotest.string) "data survives auto-merges and a crash"
    (Some "v59") (Engine_diff.get t 27);
  Engine_diff.abort t

let test_diff_merge_requires_quiescence () =
  let e = Engine_diff.create () in
  let t = Engine_diff.begin_txn e in
  Engine_diff.put t 0 "x";
  (match Engine_diff.checkpoint e with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "merge with a live transaction accepted");
  Engine_diff.abort t

let test_diff_newest_wins () =
  let e = Engine_diff.create () in
  let t = Engine_diff.begin_txn e in
  Engine_diff.put t 0 "first";
  Engine_diff.commit t;
  let t = Engine_diff.begin_txn e in
  Engine_diff.delete t 0;
  Engine_diff.commit t;
  let t = Engine_diff.begin_txn e in
  Engine_diff.put t 0 "second";
  Engine_diff.commit t;
  let t = Engine_diff.begin_txn e in
  check (Alcotest.option Alcotest.string) "A beats older D" (Some "second") (Engine_diff.get t 0);
  Engine_diff.abort t

(* --- log-format head-to-head: physical / delta / logical -------------- *)

(* The three formats' LSN streams are aligned by construction (one LSN
   per update, one per commit/abort, one per abort-restored page), so on
   the same history they must recover to identical state fingerprints —
   page images, header LSNs and re-seeded counters alike.  Run the same
   random op script against two engines and compare the fingerprint
   after every crash, after the final crash, and after the serial
   reference recovery. *)
module type Fp_engine = sig
  include Kv.S

  val crash_and_recover_reference : t -> unit
  val state_fingerprint : t -> string
end

module Fp_harness (E : Fp_engine) = struct
  let run ops =
    let e = E.create ~n_keys () in
    let live = ref None in
    let fps = ref [] in
    let ensure () =
      match !live with
      | Some t -> t
      | None ->
        let t = E.begin_txn e in
        live := Some t;
        t
    in
    List.iter
      (fun op ->
        match op with
        | Put (k, v) -> E.put (ensure ()) k v
        | Delete k -> E.delete (ensure ()) k
        | Commit ->
          (match !live with
          | Some t ->
            E.commit t;
            live := None
          | None -> ())
        | Abort ->
          (match !live with
          | Some t ->
            E.abort t;
            live := None
          | None -> ())
        | Crash ->
          live := None;
          E.crash_and_recover e;
          fps := E.state_fingerprint e :: !fps
        | Checkpoint -> if !live = None then E.checkpoint e)
      ops;
    (match !live with
    | Some t ->
      E.commit t;
      live := None
    | None -> ());
    E.crash_and_recover e;
    fps := E.state_fingerprint e :: !fps;
    E.crash_and_recover_reference e;
    fps := E.state_fingerprint e :: !fps;
    List.rev !fps
end

module Fp_physical = Fp_harness (Engine_log)

module Fp_delta = Fp_harness (struct
  include Engine_log

  let create ?n_keys () = create_with ?n_keys ~log_format:Engine_log.Delta ()
end)

module Fp_oplog = Fp_harness (Engine_oplog)

let prop_delta_fingerprint_parity =
  QCheck.Test.make ~name:"delta log recovers to the physical fingerprint" ~count:100
    ops_arbitrary (fun ops -> Fp_physical.run ops = Fp_delta.run ops)

let prop_oplog_fingerprint_parity =
  QCheck.Test.make ~name:"operation log recovers to the physical fingerprint" ~count:100
    ops_arbitrary (fun ops -> Fp_physical.run ops = Fp_oplog.run ops)

let test_delta_steal_then_crash_matches_physical () =
  (* a steal (flush with a live loser) is the sharpest delta-chain test:
     the durable base holds the loser's bytes and replay must unwind
     through delta records to reproduce the rollback *)
  let build fmt =
    let e = Engine_log.create_with ~log_format:fmt () in
    let t = Engine_log.begin_txn e in
    Engine_log.put t 1 "committed-1";
    Engine_log.put t 9 "committed-9";
    Engine_log.commit t;
    let t = Engine_log.begin_txn e in
    Engine_log.put t 1 "churn-a";
    Engine_log.put t 1 "churn-b";
    Engine_log.commit t;
    let loser = Engine_log.begin_txn e in
    Engine_log.put loser 1 "loser";
    Engine_log.put loser 5 "loser";
    Engine_log.flush e;
    (* steal: loser pages durable *)
    Engine_log.crash_and_recover e;
    e
  in
  let p = build Engine_log.Physical and d = build Engine_log.Delta in
  check Alcotest.string "fingerprints equal after steal+crash"
    (Engine_log.state_fingerprint p) (Engine_log.state_fingerprint d);
  let t = Engine_log.begin_txn d in
  check (Alcotest.option Alcotest.string) "winner survived" (Some "churn-b") (Engine_log.get t 1);
  check (Alcotest.option Alcotest.string) "stolen loser page rolled back" None
    (Engine_log.get t 5);
  Engine_log.abort t

let test_delta_log_diet () =
  (* repeated small in-place updates: delta records must at least halve
     the log volume relative to full before/after images *)
  let run fmt =
    let e = Engine_log.create_with ~log_format:fmt () in
    for i = 0 to 199 do
      let t = Engine_log.begin_txn e in
      Engine_log.put t (i mod 8) (Printf.sprintf "v%03d" i);
      Engine_log.commit t
    done;
    e
  in
  let p = run Engine_log.Physical and d = run Engine_log.Delta in
  let pb = Engine_log.log_bytes p and db = Engine_log.log_bytes d in
  check Alcotest.bool
    (Printf.sprintf "delta log at most half the physical log (%d vs %d bytes)" db pb)
    true
    (2 * db <= pb);
  Engine_log.crash_and_recover p;
  Engine_log.crash_and_recover d;
  check Alcotest.string "same recovered fingerprint" (Engine_log.state_fingerprint p)
    (Engine_log.state_fingerprint d)

let test_oplog_log_diet () =
  let run_log () =
    let e = Engine_log.create () in
    for i = 0 to 199 do
      let t = Engine_log.begin_txn e in
      Engine_log.put t (i mod 8) (Printf.sprintf "v%03d" i);
      Engine_log.commit t
    done;
    Engine_log.log_bytes e
  in
  let run_oplog () =
    let e = Engine_oplog.create () in
    for i = 0 to 199 do
      let t = Engine_oplog.begin_txn e in
      Engine_oplog.put t (i mod 8) (Printf.sprintf "v%03d" i);
      Engine_oplog.commit t
    done;
    Engine_oplog.log_bytes e
  in
  let pb = run_log () and ob = run_oplog () in
  check Alcotest.bool
    (Printf.sprintf "operation log an order of magnitude smaller (%d vs %d bytes)" ob pb)
    true
    (10 * ob <= pb)

let test_oplog_no_steal_gate () =
  (* flush with a live writer must not force the dirty page to the
     durable image: a crash right after may not surface the uncommitted
     value *)
  let e = Engine_oplog.create () in
  let t = Engine_oplog.begin_txn e in
  Engine_oplog.put t 1 "committed";
  Engine_oplog.commit t;
  Engine_oplog.flush e;
  let loser = Engine_oplog.begin_txn e in
  Engine_oplog.put loser 1 "uncommitted";
  Engine_oplog.flush e;
  (* gated: no data force *)
  Engine_oplog.crash_and_recover e;
  let t2 = Engine_oplog.begin_txn e in
  check (Alcotest.option Alcotest.string) "uncommitted never durable" (Some "committed")
    (Engine_oplog.get t2 1);
  Engine_oplog.abort t2

let specific =
  [
    Alcotest.test_case "log: WAL order" `Quick test_log_wal_order;
    Alcotest.test_case "log: distributes over disks" `Quick test_log_distributes_over_disks;
    Alcotest.test_case "log: checkpoint truncates" `Quick test_log_checkpoint_truncates;
    Alcotest.test_case "log: fuzzy checkpoint keeps undo" `Quick
      test_log_fuzzy_checkpoint_with_active_txn;
    Alcotest.test_case "log: steal then crash rolls back" `Quick test_log_flush_steal_then_crash;
    Alcotest.test_case "log: unmerged recovery = sorted recovery" `Quick
      test_log_unmerged_equals_sorted;
    Alcotest.test_case "log: auto-checkpoint bounds the log" `Quick
      test_log_auto_checkpoint_bounds_log;
    Alcotest.test_case "log: auto-checkpoint keeps active undo" `Quick
      test_log_auto_checkpoint_keeps_active_undo;
    Alcotest.test_case "shadow: blocks move" `Quick test_shadow_blocks_move;
    Alcotest.test_case "shadow: free blocks conserved" `Quick test_shadow_free_blocks_conserved;
    Alcotest.test_case "shadow: crash keeps generation" `Quick test_shadow_crash_keeps_generation;
    Alcotest.test_case "versel: versions grow" `Quick test_versel_versions_grow;
    Alcotest.test_case "versel: txn ids not reused" `Quick
      test_versel_txn_ids_not_reused_after_crash;
    Alcotest.test_case "overwrite: scratch released" `Quick test_overwrite_scratch_released;
    Alcotest.test_case "overwrite: scratch overflow" `Quick test_overwrite_scratch_overflow;
    Alcotest.test_case "overwrite: no-undo reinstall" `Quick
      test_overwrite_no_undo_reinstall_after_crash;
    Alcotest.test_case "overwrite: no-redo restore" `Quick
      test_overwrite_no_redo_restores_after_crash;
    Alcotest.test_case "shadow: out of blocks" `Quick test_shadow_out_of_blocks;
    Alcotest.test_case "log: truncate then crash" `Quick
      test_journal_truncate_then_crash_recovery;
    Alcotest.test_case "versel: interleaved commits" `Quick test_versel_interleaved_commits;
    Alcotest.test_case "diff: grow then merge" `Quick test_diff_files_grow_then_merge;
    Alcotest.test_case "diff: auto-merge bounds files" `Quick test_diff_auto_merge_bounds_files;
    Alcotest.test_case "diff: merge needs quiescence" `Quick test_diff_merge_requires_quiescence;
    Alcotest.test_case "diff: newest wins" `Quick test_diff_newest_wins;
    Alcotest.test_case "delta: steal then crash matches physical" `Quick
      test_delta_steal_then_crash_matches_physical;
    Alcotest.test_case "delta: log diet >= 2x" `Quick test_delta_log_diet;
    Alcotest.test_case "oplog: log diet >= 10x" `Quick test_oplog_log_diet;
    Alcotest.test_case "oplog: no-steal gate" `Quick test_oplog_no_steal_gate;
    QCheck_alcotest.to_alcotest prop_delta_fingerprint_parity;
    QCheck_alcotest.to_alcotest prop_oplog_fingerprint_parity;
  ]

let () =
  Alcotest.run "dbm_storage engines"
    [
      Model_h.suite;
      Log_default.suite;
      Log3_by_txn.suite;
      Log_by_page.suite;
      Log_unmerged.suite;
      Log_delta.suite;
      Oplog_h.suite;
      Shadow_h.suite;
      Versel_h.suite;
      No_undo_h.suite;
      No_redo_h.suite;
      Diff_h.suite;
      ("engine specifics", specific);
    ]
