(* Tests for the content-addressed run cache: the digest's canonical
   encoding (golden values guard the on-disk addressing scheme), the
   persistent store's failure modes (every malformed entry must read as
   a miss, never an error), and end-to-end identity of disk-loaded vs
   freshly computed results. *)

module Digest = Dbm_util.Digest
module Run_cache = Dbm_util.Run_cache
module Experiment = Dbm_core.Experiment
module Scenario = Dbm_core.Scenario
module Workload = Dbm_workload.Workload
module Logging = Dbm_recovery.Logging

let check = Alcotest.check

(* --- scratch directories ---------------------------------------------- *)

let dir_seq = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  incr dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbm-cache-test-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- digest: golden values -------------------------------------------- *)

(* These pin the canonical encoding.  A deliberate change to the feeder
   encoding (new tags, different length prefixes, ...) must update them
   — and with them every persisted cache entry self-invalidates, which
   is exactly the contract. *)

let test_digest_golden () =
  check Alcotest.string "of_string"
    "229da392d39d31be24726f96384d7c44" (Digest.of_string "dbm");
  check Alcotest.string "fnv64_hex" "ca892518f453844a" (Digest.fnv64_hex "dbm");
  let d = Digest.create () in
  Digest.int d 42;
  Digest.float d 1.5;
  Digest.bool d true;
  Digest.string d "log";
  Digest.tag d 3;
  check Alcotest.string "mixed feed sequence"
    "eb54fc78cb4f6dcd5e3e5b768ffc7343" (Digest.hex d)

let test_digest_deterministic () =
  let feed () =
    let d = Digest.create () in
    Digest.string d "machine-config";
    Digest.int d 25;
    Digest.float d 0.2;
    Digest.tag d 1;
    Digest.hex d
  in
  check Alcotest.string "same feeds, same digest" (feed ()) (feed ())

(* The encoding is injective: values of different types, and different
   splits of the same bytes, must never collide. *)
let test_digest_framing () =
  let one feed =
    let d = Digest.create () in
    feed d;
    Digest.hex d
  in
  let all_distinct label xs =
    let sorted = List.sort_uniq compare xs in
    check Alcotest.int label (List.length xs) (List.length sorted)
  in
  all_distinct "string split matters"
    [
      one (fun d -> Digest.string d "ab");
      one (fun d ->
          Digest.string d "a";
          Digest.string d "b");
      one (fun d -> Digest.string d "ba");
    ];
  all_distinct "type tags matter"
    [
      one (fun d -> Digest.int d 1);
      one (fun d -> Digest.tag d 1);
      one (fun d -> Digest.bool d true);
      one (fun d -> Digest.float d 1.0);
    ];
  all_distinct "float bit patterns"
    [ one (fun d -> Digest.float d 0.0); one (fun d -> Digest.float d (-0.0)) ]

let prop_digest_int_injective_in_practice =
  QCheck.Test.make ~name:"distinct ints digest distinctly" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let one v =
        let d = Digest.create () in
        Digest.int d v;
        Digest.hex d
      in
      QCheck.assume (a <> b);
      one a <> one b)

(* --- request digests --------------------------------------------------- *)

let small_workload ?(seed = 7) ?(n = 5) scenario =
  { (Scenario.workload_config ~seed scenario) with Workload.n_transactions = n }

let bare_req ?seed ?n scenario =
  Experiment.request ~arch:"bare"
    ~machine:(Scenario.machine_config scenario)
    ~workload:(small_workload ?seed ?n scenario)
    ~make_arch:(fun _ -> Dbm_machine.Arch.bare)

let test_request_digest_stable () =
  (* Rebuilding a request from the same inputs lands on the same digest:
     the digest is a function of content, not of closure identity. *)
  check Alcotest.string "bare conv-random"
    (Experiment.digest (bare_req Scenario.Conventional_random))
    (Experiment.digest (bare_req Scenario.Conventional_random));
  (* Golden: pins the full request serialization (arch descriptor +
     machine config + workload config feeds, in order).  Adding a config
     field changes this — update the golden and note that all persisted
     entries correctly self-invalidate. *)
  check Alcotest.string "request digest golden"
    "e06cb1f2a1b17472b1e374296c668dec"
    (Experiment.digest (bare_req Scenario.Conventional_random))

let test_request_digest_sensitivity () =
  let d ?seed ?n s = Experiment.digest (bare_req ?seed ?n s) in
  let base = d Scenario.Conventional_random in
  check Alcotest.bool "workload seed feeds the digest" true
    (base <> d ~seed:8 Scenario.Conventional_random);
  check Alcotest.bool "workload size feeds the digest" true
    (base <> d ~n:6 Scenario.Conventional_random);
  check Alcotest.bool "machine config feeds the digest" true
    (base <> d Scenario.Parallel_random);
  let logging_req =
    Experiment.scenario_request
      ~arch:(Logging.descriptor Logging.default)
      Scenario.Conventional_random (Logging.make Logging.default)
  in
  check Alcotest.bool "arch descriptor feeds the digest" true
    (Experiment.digest
       (Experiment.scenario_request ~arch:"bare" Scenario.Conventional_random (fun _ ->
            Dbm_machine.Arch.bare))
    <> Experiment.digest logging_req)

(* BENCH_5 regression: with no cost model loaded every run of a scenario
   got the same flat prior (the formula only looked at the workload), so
   LPT scheduling of a cold suite degenerated to arbitrary order — the
   bench's top_runs all claimed 313.75 ms.  The prior must now separate
   the architecture families, and distinct configs within one family. *)
let test_cold_priors_differentiate () =
  Experiment.set_cost_model None;
  let sc = Scenario.Conventional_random in
  let machine = Scenario.machine_config sc in
  let workload = small_workload sc in
  let prior arch =
    Experiment.estimated_cost
      (Experiment.request ~arch ~machine ~workload ~make_arch:(fun _ -> Dbm_machine.Arch.bare))
  in
  let archs =
    [
      "bare";
      "version-select";
      Logging.descriptor Logging.default;
      Dbm_recovery.Shadow.descriptor Dbm_recovery.Shadow.overwrite_no_undo;
      Dbm_recovery.Diff_file.descriptor Dbm_recovery.Diff_file.default;
    ]
  in
  let priors = List.map prior archs in
  check Alcotest.int "cold priors pairwise distinct" (List.length archs)
    (List.length (List.sort_uniq compare priors));
  check Alcotest.bool "variant configs of one family differ" true
    (prior (Logging.descriptor Logging.default)
    <> prior
         (Logging.descriptor { Logging.default with Logging.n_log_processors = 7 }))

let test_dedup_keeps_first_occurrences () =
  let a = bare_req Scenario.Conventional_random in
  let b = bare_req ~seed:8 Scenario.Conventional_random in
  let a' = bare_req Scenario.Conventional_random in
  let deduped = Experiment.dedup [ a; b; a' ] in
  check Alcotest.int "duplicate dropped" 2 (List.length deduped);
  check
    (Alcotest.list Alcotest.string)
    "stable order"
    [ Experiment.digest a; Experiment.digest b ]
    (List.map Experiment.digest deduped)

(* The suites really do overlap: several ablation/extension runs are
   content-identical to table runs (A2's coalesce=on column is Table 1's
   logging run, E1's uniform rows are Table 1's, ...), so deduping the
   combined work list must collapse it. *)
let test_cross_suite_dedup () =
  let tables = Dbm_core.Tables.runs () in
  let others = Dbm_core.Ablations.runs () @ Dbm_core.Extensions.runs () in
  let total = List.length tables + List.length others in
  let unique = List.length (Experiment.dedup (tables @ others)) in
  check Alcotest.bool "combined list collapses" true (unique < total);
  let table_digests = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace table_digests (Experiment.digest r) ()) tables;
  let overlap =
    List.exists (fun r -> Hashtbl.mem table_digests (Experiment.digest r)) others
  in
  check Alcotest.bool "ablations/extensions share table runs" true overlap

(* --- the persistent store --------------------------------------------- *)

let digest_a = String.make 32 'a'
let digest_b = "0123456789abcdef0123456789abcdef"

let test_store_roundtrip () =
  with_temp_dir (fun dir ->
      let c = Run_cache.create ~dir ~version:"v1" in
      check (Alcotest.option Alcotest.string) "empty store misses" None
        (Run_cache.find c ~digest:digest_a);
      Run_cache.store c ~digest:digest_a "payload-one\nwith\x00binary bytes";
      check (Alcotest.option Alcotest.string) "roundtrip" (Some "payload-one\nwith\x00binary bytes")
        (Run_cache.find c ~digest:digest_a);
      check (Alcotest.option Alcotest.string) "other digest still misses" None
        (Run_cache.find c ~digest:digest_b);
      Run_cache.store c ~digest:digest_a "payload-two";
      check (Alcotest.option Alcotest.string) "store overwrites" (Some "payload-two")
        (Run_cache.find c ~digest:digest_a);
      (* survives reopening (a fresh process) *)
      let c' = Run_cache.create ~dir ~version:"v1" in
      check (Alcotest.option Alcotest.string) "persists across handles" (Some "payload-two")
        (Run_cache.find c' ~digest:digest_a))

let test_store_sharding () =
  with_temp_dir (fun dir ->
      let c = Run_cache.create ~dir ~version:"v1" in
      let path = Run_cache.entry_path c ~digest:digest_b in
      check Alcotest.string "sharded by digest prefix"
        (Filename.concat (Filename.concat dir "01") (digest_b ^ ".res"))
        path)

let clobber path f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  let content' = f content in
  let oc = open_out_bin path in
  output_string oc content';
  close_out oc

let test_store_rejects_damage () =
  with_temp_dir (fun dir ->
      let c = Run_cache.create ~dir ~version:"v1" in
      let payload = "a result payload, long enough to truncate meaningfully" in
      let path = Run_cache.entry_path c ~digest:digest_a in
      let store () = Run_cache.store c ~digest:digest_a payload in
      store ();
      check (Alcotest.option Alcotest.string) "intact entry hits" (Some payload)
        (Run_cache.find c ~digest:digest_a);
      (* truncation *)
      clobber path (fun s -> String.sub s 0 (String.length s - 10));
      check (Alcotest.option Alcotest.string) "truncated entry misses" None
        (Run_cache.find c ~digest:digest_a);
      (* payload corruption (checksum must catch it) *)
      store ();
      clobber path (fun s ->
          let b = Bytes.of_string s in
          let i = Bytes.length b - 3 in
          Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
          Bytes.to_string b);
      check (Alcotest.option Alcotest.string) "corrupted entry misses" None
        (Run_cache.find c ~digest:digest_a);
      (* garbage from another tool entirely *)
      clobber path (fun _ -> "not a cache entry at all");
      check (Alcotest.option Alcotest.string) "garbage entry misses" None
        (Run_cache.find c ~digest:digest_a);
      (* empty file (e.g. a crashed writer) *)
      clobber path (fun _ -> "");
      check (Alcotest.option Alcotest.string) "empty entry misses" None
        (Run_cache.find c ~digest:digest_a))

let test_store_version_mismatch () =
  with_temp_dir (fun dir ->
      let v1 = Run_cache.create ~dir ~version:"results-schema-1" in
      Run_cache.store v1 ~digest:digest_a "old-format payload";
      let v2 = Run_cache.create ~dir ~version:"results-schema-2" in
      check (Alcotest.option Alcotest.string) "old version misses under new schema" None
        (Run_cache.find v2 ~digest:digest_a);
      check (Alcotest.option Alcotest.string) "still hits under its own schema"
        (Some "old-format payload")
        (Run_cache.find v1 ~digest:digest_a))

(* --- end-to-end: Experiment + persistent store ------------------------ *)

(* Alcotest runs cases sequentially in-process, so toggling the global
   disk cache is safe as long as every test restores the default
   (disabled, memo cleared) on exit. *)
let with_disk_cache dir f =
  Experiment.clear_cache ();
  Experiment.enable_disk_cache ~dir;
  Fun.protect
    ~finally:(fun () ->
      Experiment.disable_disk_cache ();
      Experiment.clear_cache ())
    f

let test_persistent_identity () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let req = bare_req Scenario.Conventional_random in
          Experiment.reset_counters ();
          let fresh = Experiment.force req in
          let c1 = Experiment.counters () in
          check Alcotest.int "first force computes" 1 c1.Experiment.computed;
          check Alcotest.int "first force misses disk" 0 c1.Experiment.disk_hits;
          (* drop the memo so the next force must go to disk *)
          Experiment.clear_cache ();
          let loaded = Experiment.force req in
          let c2 = Experiment.counters () in
          check Alcotest.int "second force does not compute" 1 c2.Experiment.computed;
          check Alcotest.int "second force hits disk" 1 c2.Experiment.disk_hits;
          check Alcotest.bool "disk-loaded result structurally identical" true
            (Stdlib.compare fresh loaded = 0)))

let test_corrupt_entry_recomputes () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let req = bare_req ~seed:11 Scenario.Conventional_random in
          let fresh = Experiment.force req in
          (* mangle the persisted entry behind the runner's back *)
          let store = Run_cache.create ~dir ~version:"unused" in
          let path = Run_cache.entry_path store ~digest:(Experiment.digest req) in
          check Alcotest.bool "entry was persisted" true (Sys.file_exists path);
          clobber path (fun s -> String.sub s 0 (String.length s / 2));
          Experiment.clear_cache ();
          Experiment.reset_counters ();
          let recomputed = Experiment.force req in
          let c = Experiment.counters () in
          check Alcotest.int "corrupt entry falls back to compute" 1 c.Experiment.computed;
          check Alcotest.int "no disk hit" 0 c.Experiment.disk_hits;
          check Alcotest.bool "recomputed result identical" true
            (Stdlib.compare fresh recomputed = 0);
          (* and the recomputation healed the entry *)
          Experiment.clear_cache ();
          Experiment.reset_counters ();
          ignore (Experiment.force req);
          check Alcotest.int "healed entry hits" 1
            (Experiment.counters ()).Experiment.disk_hits))

(* Cache hits must record NO cost observation: a hit's near-zero wall
   is cache-load time, not simulation cost, and folding it into the
   EWMA would wreck the schedule of the next cold regeneration. *)
let test_cache_hit_records_no_observation () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let model = Dbm_util.Cost_model.in_memory ~version:"test" in
          Experiment.set_cost_model (Some model);
          Fun.protect
            ~finally:(fun () -> Experiment.set_cost_model None)
            (fun () ->
              Experiment.reset_profile ();
              let req = bare_req ~seed:13 Scenario.Conventional_random in
              let digest = Experiment.digest req in
              ignore (Experiment.force req);
              check Alcotest.int "the compute was observed" 1
                (Dbm_util.Cost_model.observations model ~digest);
              let profiled = List.length (Experiment.profile ()) in
              check Alcotest.int "the compute was profiled" 1 profiled;
              (* memo hit *)
              ignore (Experiment.force req);
              (* disk hit *)
              Experiment.clear_cache ();
              ignore (Experiment.force req);
              check Alcotest.int "memo/disk hits recorded no observation" 1
                (Dbm_util.Cost_model.observations model ~digest);
              check Alcotest.int "memo/disk hits were not profiled" 1
                (List.length (Experiment.profile ()));
              Experiment.reset_profile ())))

(* Random small configurations: whatever the workload, a disk-loaded
   result is structurally identical to the fresh computation. *)
let prop_cache_hit_identity =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* n = int_range 1 4 in
      let* max_pages = int_range 2 30 in
      let* write_fraction = oneofl [ 0.0; 0.2; 0.5 ] in
      let* sequential = bool in
      return (seed, n, max_pages, write_fraction, sequential))
  in
  let print (seed, n, mp, wf, sq) =
    Printf.sprintf "seed=%d n=%d max_pages=%d write=%.1f seq=%b" seed n mp wf sq
  in
  QCheck.Test.make ~name:"disk-loaded result = fresh computation" ~count:6
    (QCheck.make ~print gen)
    (fun (seed, n, max_pages, write_fraction, sequential) ->
      let workload =
        {
          (Scenario.workload_config ~seed Scenario.Conventional_random) with
          Workload.n_transactions = n;
          max_pages;
          write_fraction;
          pattern = (if sequential then Workload.Sequential else Workload.Random_access);
        }
      in
      let req =
        Experiment.request ~arch:"bare"
          ~machine:(Scenario.machine_config Scenario.Conventional_random)
          ~workload
          ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
      in
      with_temp_dir (fun dir ->
          with_disk_cache dir (fun () ->
              let fresh = Experiment.force req in
              Experiment.clear_cache ();
              Experiment.reset_counters ();
              let loaded = Experiment.force req in
              (Experiment.counters ()).Experiment.disk_hits = 1
              && Stdlib.compare fresh loaded = 0)))

let () =
  Alcotest.run "dbm run cache"
    [
      ( "digest",
        [
          Alcotest.test_case "golden values" `Quick test_digest_golden;
          Alcotest.test_case "deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "injective framing" `Quick test_digest_framing;
          QCheck_alcotest.to_alcotest prop_digest_int_injective_in_practice;
        ] );
      ( "request digests",
        [
          Alcotest.test_case "stable + golden" `Quick test_request_digest_stable;
          Alcotest.test_case "sensitivity" `Quick test_request_digest_sensitivity;
          Alcotest.test_case "cold priors differentiate" `Quick test_cold_priors_differentiate;
          Alcotest.test_case "dedup order" `Quick test_dedup_keeps_first_occurrences;
          Alcotest.test_case "cross-suite overlap" `Quick test_cross_suite_dedup;
        ] );
      ( "persistent store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "sharded paths" `Quick test_store_sharding;
          Alcotest.test_case "damage reads as miss" `Quick test_store_rejects_damage;
          Alcotest.test_case "version mismatch" `Quick test_store_version_mismatch;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "persistent identity" `Quick test_persistent_identity;
          Alcotest.test_case "corrupt entry recomputes" `Quick test_corrupt_entry_recomputes;
          Alcotest.test_case "cache hit records no observation" `Quick
            test_cache_hit_records_no_observation;
          QCheck_alcotest.to_alcotest prop_cache_hit_identity;
        ] );
    ]
