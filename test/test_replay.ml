(* Tests for the page-partitioned parallel recovery path (Replay), the
   fuzzy checkpoints of Engine_log and Engine_diff, and the Journal
   truncation boundary cases that feed it.

   The load-bearing property is a THREE-way equivalence over random
   histories: an engine recovering through the partitioned parallel
   path (4 oversubscribed domains, checkpoint-seeking) and an identical
   twin recovering through the preserved serial from-zero reference
   must land on the same state fingerprint after every crash, and both
   must show the executable specification's (Kv.Model) visible state. *)

module Kv = Dbm_storage.Kv
module Engine_log = Dbm_storage.Engine_log
module Engine_diff = Dbm_storage.Engine_diff
module Journal = Dbm_storage.Journal
module Replay = Dbm_storage.Replay
module Wal = Dbm_storage.Wal
module Pool = Dbm_util.Pool

let check = Alcotest.check

(* Oversubscribed so the parallel path crosses real domain boundaries
   even on a 1-core CI host. *)
let pool = lazy (Pool.create ~jobs:4 ~allow_oversubscribe:true ())

let () = at_exit (fun () -> if Lazy.is_val pool then Pool.shutdown (Lazy.force pool))

let n_keys = 64

(* --- random-history equivalence --------------------------------------- *)

type op =
  | Put of int * string
  | Delete of int
  | Commit
  | Abort
  | Crash
  | Fuzzy of bool  (* force the checkpoint record? [false] leaves it volatile *)
  | Sharp

let op_print = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%S)" k v
  | Delete k -> Printf.sprintf "Del(%d)" k
  | Commit -> "Commit"
  | Abort -> "Abort"
  | Crash -> "Crash"
  | Fuzzy true -> "FuzzyCkpt"
  | Fuzzy false -> "FuzzyCkpt-nosync"
  | Sharp -> "SharpCkpt"

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun k v -> Put (k, v)) (int_range 0 (n_keys - 1)) (string_size (int_range 0 12)));
        (2, map (fun k -> Delete k) (int_range 0 (n_keys - 1)));
        (3, return Commit);
        (1, return Abort);
        (2, return Crash);
        (2, map (fun b -> Fuzzy b) bool);
        (1, return Sharp);
      ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map op_print ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 80) op_gen)

(* What the equivalence harness needs beyond Kv.S — both converted
   engines provide exactly this. *)
module type CONVERTED = sig
  include Kv.S

  val flush : t -> unit

  val checkpoint_fuzzy : ?sync:bool -> t -> unit

  val set_recovery_pool : t -> Pool.t option -> unit

  val state_fingerprint : t -> string

  val crash_and_recover_reference : t -> unit
end

module Equiv_harness (E : CONVERTED) = struct
  (* [a] recovers via the parallel checkpoint-seeking path, its twin
     [b] via the serial from-zero reference; [m] is the spec.  Every
     operation is applied to all three, so any fingerprint divergence
     is recovery's fault alone. *)
  let run_ops ops =
    let a = E.create ~n_keys () and b = E.create ~n_keys () and m = Kv.Model.create ~n_keys () in
    E.set_recovery_pool a (Some (Lazy.force pool));
    let live = ref None in
    let ensure_live () =
      match !live with
      | Some triple -> triple
      | None ->
        let triple = (E.begin_txn a, E.begin_txn b, Kv.Model.begin_txn m) in
        live := Some triple;
        triple
    in
    let ok = ref true in
    (* Fingerprints first (reads only), then the visible state — the
       probe transactions are begun and aborted on [a] and [b] alike so
       the twins' counters stay in lock-step. *)
    let assert_equal () =
      if E.state_fingerprint a <> E.state_fingerprint b then ok := false;
      let ta = E.begin_txn a and tb = E.begin_txn b and tm = Kv.Model.begin_txn m in
      for k = 0 to n_keys - 1 do
        let expect = Kv.Model.get tm k in
        if E.get ta k <> expect then ok := false;
        if E.get tb k <> expect then ok := false
      done;
      E.abort ta;
      E.abort tb;
      Kv.Model.abort tm
    in
    List.iter
      (fun op ->
        match op with
        | Put (k, v) ->
          let ta, tb, tm = ensure_live () in
          E.put ta k v;
          E.put tb k v;
          Kv.Model.put tm k v
        | Delete k ->
          let ta, tb, tm = ensure_live () in
          E.delete ta k;
          E.delete tb k;
          Kv.Model.delete tm k
        | Commit ->
          (match !live with
          | Some (ta, tb, tm) ->
            E.commit ta;
            E.commit tb;
            Kv.Model.commit tm;
            live := None
          | None -> ())
        | Abort ->
          (match !live with
          | Some (ta, tb, tm) ->
            E.abort ta;
            E.abort tb;
            Kv.Model.abort tm;
            live := None
          | None -> ())
        | Crash ->
          E.crash_and_recover a;
          E.crash_and_recover_reference b;
          Kv.Model.crash_and_recover m;
          live := None;
          assert_equal ()
        | Fuzzy sync ->
          (* No quiescence needed: fuzzy checkpoints run mid-transaction. *)
          E.checkpoint_fuzzy ~sync a;
          E.checkpoint_fuzzy ~sync b
        | Sharp ->
          (* Sharp checkpoints/merges require quiescence in some engines;
             exercise them only between transactions. *)
          if !live = None then begin
            E.checkpoint a;
            E.checkpoint b;
            Kv.Model.checkpoint m
          end)
      ops;
    (match !live with
    | Some (ta, tb, tm) ->
      E.commit ta;
      E.commit tb;
      Kv.Model.commit tm;
      live := None
    | None -> ());
    E.crash_and_recover a;
    E.crash_and_recover_reference b;
    Kv.Model.crash_and_recover m;
    assert_equal ();
    !ok

  let property count =
    QCheck.Test.make
      ~name:(E.engine_name ^ ": parallel recovery = serial reference = model")
      ~count ops_arbitrary run_ops
end


(* --- crash during a fuzzy checkpoint ----------------------------------- *)

(* A crash after the checkpoint record is appended but before the next
   log force must recover to the same state as replay-from-zero: the
   volatile record is simply lost, never half-trusted. *)
let crash_during_checkpoint (module E : CONVERTED) () =
  let seed e =
    let t = E.begin_txn e in
    E.put t 1 "one";
    E.put t 9 "nine";
    E.commit t;
    let t = E.begin_txn e in
    E.put t 2 "two";
    E.commit t;
    (* an in-flight loser holds page state while the checkpoint runs *)
    let t = E.begin_txn e in
    E.put t 1 "loser";
    E.checkpoint_fuzzy ~sync:false e;
    (* appended, NOT forced *)
    E.put t 3 "loser3"
  in
  let a = E.create ~n_keys () and b = E.create ~n_keys () in
  E.set_recovery_pool a (Some (Lazy.force pool));
  seed a;
  seed b;
  E.crash_and_recover a;
  (* the tail — and the checkpoint record with it — is gone *)
  E.crash_and_recover_reference b;
  check Alcotest.string "fingerprint matches from-zero replay" (E.state_fingerprint b)
    (E.state_fingerprint a);
  let t = E.begin_txn a in
  check (Alcotest.option Alcotest.string) "committed value survives" (Some "one") (E.get t 1);
  check (Alcotest.option Alcotest.string) "committed value survives (2)" (Some "two") (E.get t 2);
  check (Alcotest.option Alcotest.string) "loser write invisible" None (E.get t 3);
  E.abort t

(* The durable-record flavor: same history, but the checkpoint record
   IS forced; recovery starts mid-log and must still match. *)
let durable_checkpoint_matches (module E : CONVERTED) () =
  let seed e =
    let t = E.begin_txn e in
    E.put t 1 "one";
    E.commit t;
    E.flush e;
    (* data durable: the checkpoint can actually skip the prefix *)
    E.checkpoint_fuzzy e;
    let t = E.begin_txn e in
    E.put t 2 "two";
    E.commit t;
    let t = E.begin_txn e in
    E.put t 1 "loser"
  in
  let a = E.create ~n_keys () and b = E.create ~n_keys () in
  E.set_recovery_pool a (Some (Lazy.force pool));
  seed a;
  seed b;
  E.crash_and_recover a;
  E.crash_and_recover_reference b;
  check Alcotest.string "mid-log replay = from-zero replay" (E.state_fingerprint b)
    (E.state_fingerprint a);
  let t = E.begin_txn a in
  check (Alcotest.option Alcotest.string) "pre-checkpoint commit" (Some "one") (E.get t 1);
  check (Alcotest.option Alcotest.string) "post-checkpoint commit" (Some "two") (E.get t 2);
  E.abort t

(* Engine_diff has no [flush] in its extras beyond Kv.S — adapt both
   engines through first-class modules with the common signature. *)
module Log_c : CONVERTED with type t = Engine_log.t = struct
  include Engine_log
end

module Diff_c : CONVERTED with type t = Engine_diff.t = struct
  include Engine_diff

  (* Writes never touch the base outside the merge (which forces it),
     and commit already forces the differential files: nothing volatile
     to flush. *)
  let flush _ = ()
end

module Log_equiv = Equiv_harness (Log_c)
module Diff_equiv = Equiv_harness (Diff_c)

(* --- the checkpoint actually moves the replay start -------------------- *)

let test_replay_start_advances () =
  let e = Engine_log.create ~n_keys () in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 1 "one";
  Engine_log.put t 2 "two";
  Engine_log.commit t;
  Engine_log.flush e;
  (* clean data, no live txns: the checkpoint may skip everything *)
  Engine_log.checkpoint_fuzzy e;
  let decoded =
    Array.init (Engine_log.log_disks e) (fun d ->
        Array.of_list (Engine_log.dump_log e ~disk:d))
  in
  check Alcotest.bool "start LSN advanced past zero" true (Replay.replay_start decoded > 0);
  (* and the engine still recovers to the right values through it *)
  let t = Engine_log.begin_txn e in
  Engine_log.put t 3 "three";
  Engine_log.commit t;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "pre-checkpoint value" (Some "one") (Engine_log.get t 1);
  check (Alcotest.option Alcotest.string) "post-checkpoint value" (Some "three")
    (Engine_log.get t 3);
  Engine_log.abort t

(* --- chunk_ranges ------------------------------------------------------ *)

let prop_chunk_ranges_cover =
  QCheck.Test.make ~name:"chunk_ranges covers [0,len) contiguously" ~count:500
    QCheck.(pair (int_range 0 200) (int_range 1 40))
    (fun (len, pieces) ->
      let ranges = Replay.chunk_ranges ~len ~pieces in
      if len = 0 then ranges = []
      else begin
        let sizes_ok = List.for_all (fun (lo, hi) -> hi > lo) ranges in
        let contiguous =
          let rec go expect = function
            | [] -> expect = len
            | (lo, hi) :: rest -> lo = expect && go hi rest
          in
          go 0 ranges
        in
        let count_ok = List.length ranges <= min pieces len in
        let balanced =
          let szs = List.map (fun (lo, hi) -> hi - lo) ranges in
          List.fold_left max 0 szs - List.fold_left min max_int szs <= 1
        in
        sizes_ok && contiguous && count_ok && balanced
      end)

(* --- Journal.truncate on exact chunk boundaries ------------------------ *)

(* Truncation that lands exactly on a decode chunk boundary (or on the
   retained window's own edges) must leave iteration AND the parallel
   decode/replay agreeing with a plain list model: an off-by-one in the
   base/start arithmetic would drop or duplicate a record right at the
   seam. *)
let prop_truncate_chunk_boundary =
  let gen = QCheck.Gen.(triple (int_range 1 120) (int_range 1 16) (int_range 0 16)) in
  QCheck.Test.make ~name:"truncate on chunk boundary: iter_live + replay = model" ~count:300
    (QCheck.make
       ~print:(fun (n, pieces, pick) -> Printf.sprintf "n=%d pieces=%d pick=%d" n pieces pick)
       gen)
    (fun (n, pieces, pick) ->
      let j = Journal.create () in
      let record i = Wal.encode (Wal.Commit { lsn = i + 1; txn = i + 1 }) in
      let model = ref [] in
      for i = 0 to n - 1 do
        ignore (Journal.append j (record i));
        model := record i :: !model
      done;
      Journal.sync j;
      let model = List.rev !model in
      (* boundaries of a [pieces]-way decode of the current log, plus
         both edges of the retained window *)
      let boundaries =
        0 :: n :: List.concat_map (fun (lo, hi) -> [ lo; hi ]) (Replay.chunk_ranges ~len:n ~pieces)
        |> List.sort_uniq Int.compare
      in
      let keep_from = List.nth boundaries (pick mod List.length boundaries) in
      Journal.truncate j ~keep_from;
      let kept = List.filteri (fun i _ -> i >= keep_from) model in
      (* a pending (unsynced) tail must ride along untouched *)
      let tail = Wal.encode (Wal.Commit { lsn = n + 1; txn = n + 1 }) in
      ignore (Journal.append j tail);
      let live = ref [] in
      Journal.iter_live (fun r -> live := r :: !live) j;
      let iter_ok = List.rev !live = kept @ [ tail ] in
      let read_ok = Journal.read_all j = kept in
      (* checkpoint replay over the truncated journal: the parallel
         decode must see exactly the kept records, in order *)
      let serial = List.map Wal.decode kept in
      let parallel =
        Replay.decode ~pool:(Lazy.force pool) [| j |] |> fun a -> Array.to_list a.(0)
      in
      iter_ok && read_ok && parallel = serial)

(* --- run --------------------------------------------------------------- *)

let () =
  Alcotest.run "parallel replay"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest (Log_equiv.property 60);
          QCheck_alcotest.to_alcotest (Diff_equiv.property 60);
        ] );
      ( "fuzzy checkpoints",
        [
          Alcotest.test_case "log: crash during checkpoint" `Quick
            (crash_during_checkpoint (module Log_c));
          Alcotest.test_case "diff: crash during checkpoint" `Quick
            (crash_during_checkpoint (module Diff_c));
          Alcotest.test_case "log: durable checkpoint matches" `Quick
            (durable_checkpoint_matches (module Log_c));
          Alcotest.test_case "diff: durable checkpoint matches" `Quick
            (durable_checkpoint_matches (module Diff_c));
          Alcotest.test_case "log: replay start advances" `Quick test_replay_start_advances;
        ] );
      ( "partitioning",
        [
          QCheck_alcotest.to_alcotest prop_chunk_ranges_cover;
          QCheck_alcotest.to_alcotest prop_truncate_chunk_boundary;
        ] );
    ]
