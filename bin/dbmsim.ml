(* Command-line driver for the recovery-architecture simulator. *)

open Cmdliner

let scenario_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "conv-random" | "conventional-random" -> Ok Dbm_core.Scenario.Conventional_random
    | "par-random" | "parallel-random" -> Ok Dbm_core.Scenario.Parallel_random
    | "conv-seq" | "conventional-sequential" -> Ok Dbm_core.Scenario.Conventional_sequential
    | "par-seq" | "parallel-sequential" -> Ok Dbm_core.Scenario.Parallel_sequential
    | other -> Error (`Msg (Printf.sprintf "unknown scenario %S" other))
  in
  let print ppf sc = Format.pp_print_string ppf (Dbm_core.Scenario.name sc) in
  Arg.conv (parse, print)

let arch_names =
  [
    "bare"; "logging"; "logging-physical"; "shadow"; "shadow-2pt"; "shadow-buf50";
    "overwrite"; "overwrite-no-redo"; "diff"; "diff-basic"; "version-select";
  ]

(* Canonical architecture descriptors for the same names, so a CLI run
   shares its digest (and any cached result) with the corresponding
   table/ablation runs. *)
let arch_descriptor = function
  | "bare" -> "bare"
  | "logging" -> Dbm_recovery.Logging.descriptor Dbm_recovery.Logging.default
  | "logging-physical" ->
    Dbm_recovery.Logging.descriptor
      { Dbm_recovery.Logging.default with Dbm_recovery.Logging.mode = Dbm_recovery.Logging.Physical }
  | "shadow" -> Dbm_recovery.Shadow.descriptor Dbm_recovery.Shadow.default_thru
  | "shadow-2pt" ->
    Dbm_recovery.Shadow.descriptor (Dbm_recovery.Shadow.thru ~n_pt_processors:2 ~buffer_pages:10)
  | "shadow-buf50" ->
    Dbm_recovery.Shadow.descriptor (Dbm_recovery.Shadow.thru ~n_pt_processors:1 ~buffer_pages:50)
  | "overwrite" -> Dbm_recovery.Shadow.descriptor Dbm_recovery.Shadow.overwrite_no_undo
  | "overwrite-no-redo" -> Dbm_recovery.Shadow.descriptor Dbm_recovery.Shadow.overwrite_no_redo
  | "diff" -> Dbm_recovery.Diff_file.descriptor Dbm_recovery.Diff_file.default
  | "diff-basic" -> Dbm_recovery.Diff_file.descriptor Dbm_recovery.Diff_file.basic
  | "version-select" -> "version-select"
  | other -> invalid_arg (Printf.sprintf "unknown architecture %S" other)

let make_arch = function
  | "bare" -> fun _ -> Dbm_machine.Arch.bare
  | "logging" -> Dbm_recovery.Logging.make Dbm_recovery.Logging.default
  | "logging-physical" ->
    Dbm_recovery.Logging.make
      { Dbm_recovery.Logging.default with Dbm_recovery.Logging.mode = Dbm_recovery.Logging.Physical }
  | "shadow" -> Dbm_recovery.Shadow.make Dbm_recovery.Shadow.default_thru
  | "shadow-2pt" ->
    Dbm_recovery.Shadow.make (Dbm_recovery.Shadow.thru ~n_pt_processors:2 ~buffer_pages:10)
  | "shadow-buf50" ->
    Dbm_recovery.Shadow.make (Dbm_recovery.Shadow.thru ~n_pt_processors:1 ~buffer_pages:50)
  | "overwrite" -> Dbm_recovery.Shadow.make Dbm_recovery.Shadow.overwrite_no_undo
  | "overwrite-no-redo" -> Dbm_recovery.Shadow.make Dbm_recovery.Shadow.overwrite_no_redo
  | "diff" -> Dbm_recovery.Diff_file.make Dbm_recovery.Diff_file.default
  | "diff-basic" -> Dbm_recovery.Diff_file.make Dbm_recovery.Diff_file.basic
  | "version-select" -> Dbm_recovery.Version_select.make_sim
  | other -> invalid_arg (Printf.sprintf "unknown architecture %S" other)

(* -- parallel execution -------------------------------------------- *)

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok _ -> Error (`Msg "must be >= 1")
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let jobs_arg =
  Arg.(
    value
    & opt positive_int (Dbm_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulation runs (default: the number of \
           cores, which is also the clamp — asking for more than the host has only \
           slows every domain down). $(docv)=1 spawns no domains at all and runs \
           inline; any $(docv) produces byte-identical output.")

let oversubscribe_arg =
  Arg.(
    value & flag
    & info [ "allow-oversubscribe" ]
        ~doc:
          "Let $(b,--jobs) exceed the host's core count instead of being clamped to it.  \
           Output is still byte-identical; only useful for exercising the parallel path \
           on small hosts (CI, single-core machines).")

let with_jobs jobs allow_oversubscribe f = Dbm_util.Pool.with_pool ~jobs ~allow_oversubscribe f

(* -- persistent run cache ------------------------------------------- *)

let cache_dir_arg =
  Arg.(
    value & opt string "_cache"
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persistent run cache: simulation results are stored under $(docv) keyed by a \
           content digest of their full input, so a rerun (warm start) reloads them \
           instead of recomputing.  Output is byte-identical either way; stale or \
           corrupt entries are recomputed and overwritten.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the persistent run cache.")

let cost_model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cost-model" ] ~docv:"FILE"
        ~doc:
          "Persistent cost model: an EWMA wall-time estimate per run digest, used to \
           schedule parallel regeneration longest-run-first (LPT).  Defaults to \
           $(i,CACHE-DIR)/cost-model; kept in memory only under $(b,--no-cache).  A \
           damaged or missing file means an empty model — scheduling quality, never \
           correctness, depends on it.")

let setup_cache dir no_cache cost_model_path =
  if no_cache then Dbm_core.Experiment.disable_disk_cache ()
  else Dbm_core.Experiment.enable_disk_cache ~dir;
  let version = Printf.sprintf "cost-schema-%d" Dbm_core.Experiment.schema_version in
  let model =
    match cost_model_path with
    | Some path -> Dbm_util.Cost_model.load ~path ~version
    | None ->
      if no_cache then Dbm_util.Cost_model.in_memory ~version
      else Dbm_util.Cost_model.load ~path:(Filename.concat dir "cost-model") ~version
  in
  Dbm_core.Experiment.set_cost_model (Some model);
  at_exit (fun () -> Dbm_util.Cost_model.save model)

let cache_term = Term.(const setup_cache $ cache_dir_arg $ no_cache_arg $ cost_model_arg)

(* -- table command ------------------------------------------------- *)

let print_table ~csv t =
  if csv then print_string (Dbm_core.Report.to_csv t)
  else begin
    print_string (Dbm_core.Report.to_string t);
    Printf.printf "shape score (mean |log measured/paper|): %.3f\n\n"
      (Dbm_core.Report.mean_abs_log_ratio t)
  end

(* Top-10 slowest simulations actually executed this process, with what
   the cost model predicted for each just before it ran — the drift
   check for --cost-model without re-running bench. *)
let print_profile () =
  let open Dbm_core.Experiment in
  let obs = profile () in
  if obs = [] then
    print_endline "\nprofile: no simulations executed (every run was served from a cache)"
  else begin
    let sorted = List.sort (fun a b -> Float.compare b.wall_ms a.wall_ms) obs in
    let top = List.filteri (fun i _ -> i < 10) sorted in
    Printf.printf "\ntop %d slowest of %d executed runs:\n" (List.length top) (List.length obs);
    Printf.printf "%-13s %-44s %12s %12s\n" "digest" "run" "wall ms" "est. ms";
    List.iter
      (fun o ->
        Printf.printf "%-13s %-44s %12.3f %12.3f\n"
          (String.sub o.obs_digest 0 12)
          o.obs_label o.wall_ms o.estimate_ms)
      top
  end

let table_cmd =
  let id =
    Arg.(
      value
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Table number (1-12); all when omitted.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned text.") in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "After the tables, print the top-10 slowest runs (digest prefix, run, observed \
             wall ms, cost-model estimate) so cost-model drift is inspectable.  Runs served \
             from a cache executed no simulation and never appear.")
  in
  let run id csv profile jobs allow_oversubscribe () =
    (match id with
    | Some n -> print_table ~csv (Dbm_core.Tables.by_id n)
    | None ->
      with_jobs jobs allow_oversubscribe (fun pool ->
          List.iter (print_table ~csv) (Dbm_core.Tables.all ~pool ())));
    if profile then print_profile ()
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one or all of the paper's Tables 1-12.")
    Term.(const run $ id $ csv $ profile $ jobs_arg $ oversubscribe_arg $ cache_term)

(* -- run command --------------------------------------------------- *)

let run_cmd =
  let scenario =
    Arg.(
      value
      & opt scenario_conv Dbm_core.Scenario.Conventional_random
      & info [ "s"; "scenario" ] ~docv:"SCENARIO"
          ~doc:"conv-random | par-random | conv-seq | par-seq")
  in
  let arch =
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) arch_names)) "bare"
      & info [ "a"; "arch" ] ~docv:"ARCH" ~doc:"Recovery architecture.")
  in
  let txns =
    Arg.(value & opt int 50 & info [ "n"; "transactions" ] ~docv:"N" ~doc:"Transaction count.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let trace_n =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N" ~doc:"Print the last N machine trace events (0 = off).")
  in
  let run scenario arch txns seed trace_n () =
    let machine = Dbm_core.Scenario.machine_config scenario in
    let workload = Dbm_core.Scenario.workload_config ~n_transactions:txns ~seed scenario in
    let r =
      if trace_n > 0 then begin
        let trace = Dbm_sim.Trace.create ~capacity:trace_n () in
        let txns_arr = Dbm_workload.Workload.generate workload in
        let r =
          Dbm_machine.Machine.run_traced ~trace ~config:machine
            ~make_arch:(make_arch arch) ~workload:txns_arr
        in
        Format.printf "--- last %d of %d trace events ---@." trace_n
          (Dbm_sim.Trace.total trace);
        Dbm_sim.Trace.dump Format.std_formatter trace;
        r
      end
      else
        Dbm_core.Experiment.run ~arch:(arch_descriptor arch) ~machine ~workload
          ~make_arch:(make_arch arch) ()
    in
    Format.printf "%s on %s:@.%a@." arch (Dbm_core.Scenario.name scenario)
      Dbm_machine.Results.pp r;
    List.iter (fun (k, v) -> Format.printf "  %s = %.3f@." k v) r.Dbm_machine.Results.extra
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one architecture on one configuration and print the metrics.")
    Term.(const run $ scenario $ arch $ txns $ seed $ trace_n $ cache_term)

(* -- ablation command ----------------------------------------------- *)

let ablation_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned text.") in
  let run csv jobs allow_oversubscribe () =
    with_jobs jobs allow_oversubscribe (fun pool ->
        List.iter (print_table ~csv) (Dbm_core.Ablations.all ~pool ()))
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Run the ablation experiments for the design choices listed in DESIGN.md.")
    Term.(const run $ csv $ jobs_arg $ oversubscribe_arg $ cache_term)

(* -- workload command --------------------------------------------------- *)

let workload_cmd =
  let scenario =
    Arg.(
      value
      & opt scenario_conv Dbm_core.Scenario.Conventional_random
      & info [ "s"; "scenario" ] ~docv:"SCENARIO"
          ~doc:"conv-random | par-random | conv-seq | par-seq")
  in
  let txns =
    Arg.(value & opt int 50 & info [ "n"; "transactions" ] ~docv:"N" ~doc:"Transaction count.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the workload to FILE instead of stdout.")
  in
  let run scenario txns seed out =
    let w =
      Dbm_workload.Workload.generate
        (Dbm_core.Scenario.workload_config ~n_transactions:txns ~seed scenario)
    in
    let text = Dbm_workload.Workload.to_string w in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %d transactions (%d pages) to %s\n" (Array.length w)
        (Dbm_workload.Workload.total_pages w) path
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a paper workload and print or save its exact reference strings.")
    Term.(const run $ scenario $ txns $ seed $ out)

(* -- validate command --------------------------------------------------- *)

let validate_cmd =
  let run () () =
    let checks = Dbm_core.Shape_checks.all () in
    List.iter
      (fun c ->
        Printf.printf "[%s] %s\n        (%s)\n"
          (if c.Dbm_core.Shape_checks.holds then "PASS" else "FAIL")
          c.Dbm_core.Shape_checks.claim c.Dbm_core.Shape_checks.where)
      checks;
    let failed = List.length (List.filter (fun c -> not c.Dbm_core.Shape_checks.holds) checks) in
    Printf.printf "\n%d/%d of the paper's conclusions hold in the reproduction\n"
      (List.length checks - failed) (List.length checks);
    if failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check the paper's qualitative conclusions (orderings, crossovers) against the \
             regenerated tables; non-zero exit on any failure.")
    Term.(const run $ const () $ cache_term)

(* -- export command --------------------------------------------------- *)

let export_cmd =
  let dir =
    Arg.(
      value & opt string "results"
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory (created if missing).")
  in
  let slug s = String.map (fun c -> if c = ' ' then '_' else Char.lowercase_ascii c) s in
  let run dir jobs allow_oversubscribe () =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write (t : Dbm_core.Report.table) =
      let path = Filename.concat dir (slug t.Dbm_core.Report.id ^ ".csv") in
      let oc = open_out path in
      output_string oc (Dbm_core.Report.to_csv t);
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    with_jobs jobs allow_oversubscribe (fun pool ->
        List.iter write (Dbm_core.Tables.all ~pool ());
        List.iter write (Dbm_core.Ablations.all ~pool ());
        List.iter write (Dbm_core.Extensions.all ~pool ()))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write every table (paper, ablation, extension) as CSV files to a directory.")
    Term.(const run $ dir $ jobs_arg $ oversubscribe_arg $ cache_term)

(* -- extension command ----------------------------------------------- *)

let extension_cmd =
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned text.") in
  let run csv jobs allow_oversubscribe () =
    with_jobs jobs allow_oversubscribe (fun pool ->
        List.iter (print_table ~csv) (Dbm_core.Extensions.all ~pool ()))
  in
  Cmd.v
    (Cmd.info "extension"
       ~doc:"Run the extension experiments (hot-spot contention, mixed transaction sizes).")
    Term.(const run $ csv $ jobs_arg $ oversubscribe_arg $ cache_term)

(* -- recovery-time command ------------------------------------------ *)

(* Restart-recovery cost per engine: load W committed transactions of
   10 updates each, crash, and measure the recovery pass (wall time and
   disk traffic).  The differential and shadow families pay nothing at
   restart; logging pays in proportion to the retained log — until a
   checkpoint truncates it. *)
let recovery_time_cmd =
  let measure (module E : Dbm_storage.Kv.S) ~txns ~checkpointed =
    let e = E.create ~n_keys:512 () in
    let rng = Dbm_util.Prng.create 7 in
    for _ = 1 to txns do
      let t = E.begin_txn e in
      for _ = 1 to 10 do
        E.put t (Dbm_util.Prng.int rng 512) "recovery-workload-value"
      done;
      E.commit t
    done;
    if checkpointed then E.checkpoint e;
    let reads0 = Option.value (List.assoc_opt "disk_reads" (E.stats e)) ~default:0 in
    let writes0 = Option.value (List.assoc_opt "disk_writes" (E.stats e)) ~default:0 in
    let t0 = Sys.time () in
    E.crash_and_recover e;
    let dt = (Sys.time () -. t0) *. 1000.0 in
    let reads1 = Option.value (List.assoc_opt "disk_reads" (E.stats e)) ~default:0 in
    let writes1 = Option.value (List.assoc_opt "disk_writes" (E.stats e)) ~default:0 in
    (dt, reads1 - reads0, writes1 - writes0)
  in
  let engines : (string * (module Dbm_storage.Kv.S)) list =
    [
      ("logging", (module Dbm_storage.Engine_log));
      ("shadow", (module Dbm_storage.Engine_shadow));
      ("version-selection", (module Dbm_storage.Engine_versel));
      ("overwrite-no-undo", (module Dbm_storage.Engine_overwrite.No_undo));
      ("overwrite-no-redo", (module Dbm_storage.Engine_overwrite.No_redo));
      ("differential-file", (module Dbm_storage.Engine_diff));
    ]
  in
  let run () =
    Printf.printf
      "Restart-recovery cost after a crash, by committed workload size\n\
       (each transaction updates 10 of 512 keys; cpu ms / disk reads / disk writes):\n\n";
    Printf.printf "%-22s" "engine";
    List.iter (fun w -> Printf.printf "%22s" (Printf.sprintf "%d txns" w)) [ 10; 50; 200 ];
    Printf.printf "%22s\n" "200 txns + ckpt";
    List.iter
      (fun (name, e) ->
        Printf.printf "%-22s" name;
        List.iter
          (fun txns ->
            let ms, r, w = measure e ~txns ~checkpointed:false in
            Printf.printf "%22s" (Printf.sprintf "%.1fms %dr %dw" ms r w))
          [ 10; 50; 200 ];
        let ms, r, w = measure e ~txns:200 ~checkpointed:true in
        Printf.printf "%22s\n" (Printf.sprintf "%.1fms %dr %dw" ms r w))
      engines;
    print_newline ();
    print_endline
      "Shape to expect: logging's recovery work grows with the retained log and\n\
       collapses after a checkpoint; the shadow family and differential files do\n\
       (almost) nothing at restart — they pay during normal processing instead,\n\
       which is exactly the trade-off the paper's Section 3 lays out."
  in
  Cmd.v
    (Cmd.info "recovery-time"
       ~doc:
         "Measure restart-recovery cost for every functional storage engine (an \
          extension experiment beyond the paper).")
    Term.(const run $ const ())

(* -- storage-bench command ------------------------------------------ *)

(* The storage-half throughput suite (Storage_bench): per-engine
   committed-txns/sec under the 2PL scheduler, the polling-vs-wakeup
   scheduler head-to-head, recovery wall vs log length, and buffer-pool
   / journal microbenchmarks.  bench/main folds the same numbers into
   BENCH_5.json; this command prints them interactively. *)
let storage_bench_cmd =
  let open Cmdliner in
  let scale_arg =
    Arg.(
      value & opt positive_int 1
      & info [ "scale" ] ~docv:"N" ~doc:"Workload multiplier (1 = the CI smoke size).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (list positive_int) [ 1; 2; 4 ]
      & info [ "jobs"; "j" ] ~docv:"N,..."
          ~doc:
            "Worker-domain counts for the parallel-recovery curve (a jobs=1 serial \
             baseline is always included).")
  in
  let oversubscribe_arg =
    Arg.(
      value & flag
      & info [ "allow-oversubscribe" ]
          ~doc:"Measure requested job counts beyond the host's cores instead of skipping them.")
  in
  let log_formats_arg =
    Arg.(
      value
      & opt (list (enum [ ("physical", "physical"); ("delta", "delta"); ("oplog", "oplog") ]))
          [ "physical"; "delta"; "oplog" ]
      & info [ "log-format" ] ~docv:"FMT,..."
          ~doc:
            "Log formats for the physical-vs-delta-vs-oplog head-to-head: physical | delta \
             | oplog (the physical baseline always runs).")
  in
  let read_fracs_arg =
    Arg.(
      value
      & opt (list float) Dbm_storage.Storage_bench.default_read_fracs
      & info [ "read-frac" ] ~docv:"F,..."
          ~doc:
            "Read fractions (each in [0,1]) for the MVCC snapshot sweep; at each one the \
             same Zipfian workload runs under exclusive-lock reads, S/X shared reads and \
             the lock-free snapshot read-only class.  A Pareto-size heavy-tail point at \
             read fraction 0.9 is always appended.")
  in
  let shard_counts_arg =
    Arg.(
      value
      & opt (list positive_int) Dbm_storage.Storage_bench.default_shard_counts
      & info [ "shard-counts" ] ~docv:"N,..."
          ~doc:
            "Shard counts for the sharded-execution sweep (a 1-shard serial baseline is \
             always included; the workload is generated against the largest count so \
             every smaller count serves the identical transactions).")
  in
  let cross_fracs_arg =
    Arg.(
      value
      & opt (list float) Dbm_storage.Storage_bench.default_cross_fracs
      & info [ "cross-fracs" ] ~docv:"F,..."
          ~doc:
            "Cross-shard transaction fractions (each in [0,1]) for the two-phase-commit \
             sweep at the largest shard count.")
  in
  let run scale jobs allow_oversubscribe log_formats read_fracs shard_counts cross_fracs =
    let b =
      Dbm_storage.Storage_bench.run ~scale ~jobs ~allow_oversubscribe ~log_formats
        ~read_fracs ~shard_counts ~cross_fracs ~now:Unix.gettimeofday ()
    in
    let open Dbm_storage.Storage_bench in
    Printf.printf "Contended scheduler (%d scripts, hot page behind private locks):\n" b.sched_txns;
    Printf.printf "  polling (pre-overhaul)  %8.2f ms\n" b.sched_naive_ms;
    Printf.printf "  wakeup parking          %8.2f ms   (%.1fx, reports %s)\n\n" b.sched_opt_ms
      b.sched_speedup
      (if b.sched_equivalent then "identical" else "DIVERGED");
    Printf.printf "Committed txns/sec under 2PL (low contention | high contention + restarts):\n";
    List.iter
      (fun e ->
        Printf.printf "  %-22s %12.0f | %12.0f  (%d restarts)\n" e.engine e.low_tps e.high_tps
          e.high_restarts)
      b.engines;
    Printf.printf "\nLogging-engine restart recovery vs durable log length:\n";
    Printf.printf "  %6d txns  %7d records  %8.2f ms\n" b.recovery_txns_l b.recovery_records_l
      b.recovery_wall_l_ms;
    Printf.printf "  %6d txns  %7d records  %8.2f ms   (ratio %.2f, linear ~2)\n\n"
      (2 * b.recovery_txns_l) b.recovery_records_2l b.recovery_wall_2l_ms b.recovery_wall_ratio;
    Printf.printf "Page-partitioned parallel recovery (%d records, best of five):\n"
      b.recovery_records_l;
    List.iter
      (fun p ->
        Printf.printf "  %2d job%s%s  %8.2f ms   (%s)\n" p.rj_jobs
          (if p.rj_jobs > 1 then "s" else " ")
          (if p.rj_oversubscribed then " [oversubscribed]" else "")
          p.rj_wall_ms
          (if p.rj_equivalent then "state identical to serial reference" else "STATE DIVERGED"))
      b.recovery_jobs;
    Printf.printf "  best parallel speedup: %.2fx\n\n" b.recovery_parallel_speedup;
    Printf.printf "Fuzzy-checkpointed recovery (serial replay, same committed work):\n";
    List.iter
      (fun p ->
        Printf.printf "  checkpoint after %3.0f%%  %7d records  %8.2f ms   (%s)\n"
          (100. *. p.ck_fraction) p.ck_records p.ck_wall_ms
          (if p.ck_equivalent then "state identical to full replay" else "STATE DIVERGED"))
      b.recovery_ckpt;
    Printf.printf "  newest checkpoint vs full replay: %.2fx cheaper\n\n" b.recovery_ckpt_speedup;
    Printf.printf "Log formats (same committed workload):\n";
    List.iter
      (fun p ->
        Printf.printf
          "  %-9s %7d records %10d bytes  %8.1f B/txn  append %6.0f ns/rec  replay %7.2f \
           ms  (%s)\n"
          p.lf_format p.lf_records p.lf_log_bytes p.lf_bytes_per_txn p.lf_append_ns_per_record
          p.lf_replay_wall_ms
          (if p.lf_equivalent then "state identical to physical reference"
           else "STATE DIVERGED"))
      b.log_formats;
    Printf.printf "  log volume reduction over physical: delta %.1fx, oplog %.1fx\n\n"
      b.log_delta_reduction b.log_oplog_reduction;
    Printf.printf "MVCC snapshot reads (eager commits, Zipfian pages, simulated time):\n";
    List.iter
      (fun e ->
        Printf.printf "  %s:\n" e.re_engine;
        List.iter
          (fun p ->
            Printf.printf "    read fraction %.2f%s:\n" p.rf_read_frac
              (if p.rf_heavy_tail then " [Pareto sizes]" else "");
            List.iter
              (fun m ->
                Printf.printf
                  "      %-8s %9.0f tps  %6d locks  %3d restarts (%d ro)  ro p99 %9.1f us  \
                   rw p99 %9.1f us\n"
                  m.rm_mode m.rm_sustained_tps m.rm_lock_acquires m.rm_restarts
                  m.rm_ro_restarts m.rm_ro_p99_us m.rm_rw_p99_us)
              p.rf_modes;
            Printf.printf "      snapshot over xlock: %.2fx, recovered scans %s\n"
              p.rf_snapshot_speedup
              (if p.rf_equivalent then "identical across modes" else "DIVERGED"))
          e.re_points)
      b.read_heavy;
    Printf.printf
      "  worst snapshot/xlock speedup near read fraction 0.9: %.2fx (%d ro restarts on \
       the snapshot path)\n\n"
      b.read_speedup b.read_ro_restarts;
    Printf.printf "Sharded execution (domain per shard, grouped commits, simulated time):\n";
    List.iter
      (fun p ->
        Printf.printf
          "  %d shard%s%s  %10.0f tps  makespan %9.0f us  p99 %9.1f us  %3d restarts  \
           %d in doubt  (scan %s%s)\n"
          p.sh_shards
          (if p.sh_shards > 1 then "s" else " ")
          (if p.sh_oversubscribed then " [oversubscribed]" else "")
          p.sh_sustained_tps p.sh_makespan_us p.sh_p99_us p.sh_restarts p.sh_in_doubt
          (if p.sh_scan_equal then "identical" else "DIVERGED")
          (if p.sh_shards = 1 then
             if p.sh_serial_identical then ", bit-identical to Server.run"
             else ", SERIAL DRIFT"
           else ""))
      b.shard.sb_points;
    Printf.printf "  scaling at the top shard count: %.2fx over 1 shard\n" b.shard.sb_scaling;
    List.iter
      (fun c ->
        Printf.printf
          "  cross %.2f: %4d cross txns  %10.0f tps  cross p99 %9.1f us  %d in doubt  \
           (scan %s)\n"
          c.cf_cross_frac c.cf_cross_txns c.cf_sustained_tps c.cf_p99_cross_us c.cf_in_doubt
          (if c.cf_scan_equal then "identical" else "DIVERGED"))
      b.shard.sb_cross;
    Printf.printf "\n";
    Printf.printf "Buffer pool get: %.0f ns hit, %.0f ns miss\n" b.pool_hit_ns b.pool_miss_ns;
    Printf.printf "Journal: %.2fM appends/sec, %.2fM appends/sec with sync every 64\n"
      (b.journal_append_per_sec /. 1e6)
      (b.journal_append_sync_per_sec /. 1e6);
    if not b.sched_equivalent then exit 1;
    if not b.recovery_equivalent then exit 1;
    if not b.log_format_equivalent then exit 1;
    if not b.read_equivalent then exit 1;
    if b.read_ro_restarts <> 0 then exit 1;
    if not b.shard.sb_equivalent then exit 1
  in
  Cmd.v
    (Cmd.info "storage-bench"
       ~doc:
         "Benchmark the storage half: per-engine transaction throughput under the 2PL \
          scheduler, scheduler and lock-manager hot paths against their pre-overhaul \
          versions, recovery wall time vs log length, vs worker-domain count and vs \
          fuzzy-checkpoint age, the physical-vs-delta-vs-oplog log-format head-to-head \
          ($(b,--log-format)), the MVCC snapshot-read sweep ($(b,--read-frac)), the \
          sharded-execution sweep ($(b,--shard-counts) / $(b,--cross-fracs)), \
          buffer-pool and journal microbenchmarks.")
    Term.(
      const run $ scale_arg $ jobs_arg $ oversubscribe_arg $ log_formats_arg
      $ read_fracs_arg $ shard_counts_arg $ cross_fracs_arg)

(* -- serve-bench command -------------------------------------------- *)

(* The open-loop transaction server, interactively: offered-load sweep
   on a chosen engine through the group-commit pipeline (or per-txn
   sync under --eager), printing sustained throughput and the latency
   tail at each load.  Entirely simulated time — the numbers depend on
   the cost knobs and the seed, never on the host. *)
let serve_bench_cmd =
  let open Cmdliner in
  let loads_arg =
    Arg.(
      value
      & opt (list float) [ 2_000.0; 10_000.0; 40_000.0; 160_000.0; 400_000.0 ]
      & info [ "load" ] ~docv:"TPS,..."
          ~doc:"Offered arrival rates (transactions per second) to sweep, in order.")
  in
  let batch_arg =
    Arg.(
      value & opt positive_int 32
      & info [ "batch" ] ~docv:"N"
          ~doc:"Group-commit batch size: force the log once every $(docv) commits.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 1000.0
      & info [ "timeout-us" ] ~docv:"US"
          ~doc:
            "Group-commit timeout: a pending batch is forced at most $(docv) simulated \
             microseconds after its first commit, full or not.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("logging", `Logging); ("diff", `Diff); ("versel", `Versel) ]) `Logging
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"Storage engine: logging | diff | versel.")
  in
  let log_format_arg =
    Arg.(
      value
      & opt (enum [ ("physical", `Physical); ("delta", `Delta); ("oplog", `Oplog) ]) `Physical
      & info [ "log-format" ] ~docv:"FORMAT"
          ~doc:
            "Log-record granularity for the logging engine: physical (full page \
             images), delta (changed byte ranges) or oplog (operation logging). The \
             diff engine keeps its own format and accepts only physical.")
  in
  let mpl_arg =
    Arg.(
      value & opt positive_int 64
      & info [ "mpl" ] ~docv:"N"
          ~doc:"Multiprogramming limit: admission control holds arrivals beyond $(docv) \
                in-flight transactions in a FIFO queue.")
  in
  let txns_arg =
    Arg.(
      value & opt positive_int 800
      & info [ "n"; "transactions" ] ~docv:"N" ~doc:"Transactions per load point.")
  in
  let seed_arg =
    Arg.(value & opt int 20_250 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload/arrival seed.")
  in
  let arrival_arg =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrival" ] ~docv:"PROCESS"
          ~doc:
            "Arrival process: poisson | bursty (on/off phases of 10 ms mean at double \
             rate / silence, same long-run offered load).")
  in
  let eager_arg =
    Arg.(
      value & flag
      & info [ "eager" ]
          ~doc:"Sync the log on every commit instead of group-committing (the baseline \
                the group-commit pipeline is measured against).")
  in
  let op_cost_arg =
    Arg.(
      value & opt float 1.0
      & info [ "op-cost-us" ] ~docv:"US" ~doc:"Simulated cost of one scheduler turn.")
  in
  let sync_cost_arg =
    Arg.(
      value & opt float 100.0
      & info [ "sync-cost-us" ] ~docv:"US" ~doc:"Simulated cost of one log force.")
  in
  let read_frac_arg =
    Arg.(
      value & opt float 0.0
      & info [ "read-frac" ] ~docv:"F"
          ~doc:
            "Make each transaction read-only (its whole write set cleared) with \
             probability $(docv) in [0,1].")
  in
  let snapshot_arg =
    Arg.(
      value & flag
      & info [ "snapshot" ]
          ~doc:
            "Run read-only transactions lock-free over pinned MVCC snapshots instead of \
             the locked path; they bypass the commit pipeline and can never restart.  \
             Needs a version-retaining engine: diff, versel, or logging with \
             $(b,--log-format oplog).")
  in
  let shards_arg =
    Arg.(
      value & opt positive_int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the key space page-wise across $(docv) engine shards, each \
             served by its own domain; transactions spanning shards commit by \
             two-phase commit through a coordinator decision log.  Needs an engine \
             with a durable prepare vote: logging, any $(b,--log-format).")
  in
  let cross_frac_arg =
    Arg.(
      value & opt float 0.0
      & info [ "cross-frac" ] ~docv:"F"
          ~doc:
            "Re-home workload pages so a $(docv) fraction of transactions in [0,1] \
             spans two shards and the rest stay confined to one.  Only meaningful \
             with $(b,--shards) > 1.")
  in
  let run engine log_format loads batch timeout_us mpl txns seed arrival eager op_cost
      sync_cost read_frac use_snapshot shards cross_frac =
    if not (Float.is_finite read_frac && read_frac >= 0.0 && read_frac <= 1.0) then begin
      prerr_endline "serve-bench: --read-frac must be in [0,1]";
      exit 2
    end;
    if not (Float.is_finite cross_frac && cross_frac >= 0.0 && cross_frac <= 1.0) then begin
      prerr_endline "serve-bench: --cross-frac must be in [0,1]";
      exit 2
    end;
    if cross_frac > 0.0 && shards = 1 then begin
      prerr_endline "serve-bench: --cross-frac needs --shards > 1";
      exit 2
    end;
    let module W = Dbm_workload.Workload in
    let module Hist = Dbm_util.Stats.Histogram in
    let module Sch = Dbm_storage.Scheduler in
    let txns_w =
      let cfg =
        {
          W.n_transactions = txns;
          min_pages = 2;
          max_pages = 8;
          write_fraction = 0.7;
          pattern = W.Random_access;
          db_pages = 1024;
          seed;
        }
      in
      W.apply_read_fraction
        (Dbm_util.Prng.create (seed lxor 0x5eed))
        ~read_frac (W.generate cfg)
    in
    (* Sharded runs re-home pages so exactly the requested fraction of
       transactions spans two shards; shards = 1 leaves the workload
       byte-identical to the serial path. *)
    let txns_w =
      if shards = 1 then txns_w
      else
        W.apply_cross_fraction
          (Dbm_util.Prng.create (seed lxor 0xc105))
          ~cross_frac ~classes:shards
          ~class_of:(fun p -> Dbm_storage.Shard_router.shard_of_page ~shards p)
          ~db_pages:1024 txns_w
    in
    let read_only = Array.map (fun t -> W.write_set_size t = 0) txns_w in
    let n_ro = Array.fold_left (fun a ro -> if ro then a + 1 else a) 0 read_only in
    let scripts =
      Array.map
        (fun t ->
          List.init (Array.length t.W.pages) (fun i ->
              let k = t.W.pages.(i) * 4 in
              if t.W.writes.(i) then Sch.Put (k, "serve-bench-value") else Sch.Get k))
        txns_w
    in
    let process rate =
      match arrival with
      | `Poisson -> W.Poisson { rate }
      | `Bursty ->
        W.Bursty { on_rate = 2.0 *. rate; off_rate = 0.0; mean_on = 0.01; mean_off = 0.01 }
    in
    let arrivals rate =
      let rng = Dbm_util.Prng.create (seed + int_of_float rate) in
      Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (process rate) ~n:txns)
    in
    let mode =
      if eager then Dbm_storage.Commit_pipeline.Eager
      else Dbm_storage.Commit_pipeline.Grouped { batch; timeout_us }
    in
    let sweep (type a) ?snapshot_of (module E : Dbm_storage.Server.ENGINE with type t = a)
        name =
      let module Srv = Dbm_storage.Server.Make (E) in
      Printf.printf
        "open-loop server: engine %s, %s commits%s, mpl %d, %d txns/point%s, %s arrivals\n\
         (simulated time: %.1f us/turn, %.1f us/force)\n\n"
        name
        (if eager then "eager" else "grouped")
        (if eager then "" else Printf.sprintf " (batch %d, timeout %.0f us)" batch timeout_us)
        mpl txns
        (if read_frac > 0.0 then
           Printf.sprintf " (%d read-only%s)" n_ro
             (if snapshot_of <> None then ", lock-free snapshot reads" else "")
         else "")
        (match arrival with `Poisson -> "poisson" | `Bursty -> "bursty")
        op_cost sync_cost;
      Printf.printf "%12s %12s %10s %10s %10s %10s %8s %8s %8s\n" "offered/s" "sustained/s"
        "p50 us" "p99 us" "p999 us" "max us" "forces" "restarts" "queue";
      List.iter
        (fun rate ->
          let e = E.create ~n_keys:4096 () in
          let snapshot = Option.map (fun f () -> f e) snapshot_of in
          let r =
            Srv.run ?snapshot ~read_only ~mpl ~op_cost_us:op_cost ~sync_cost_us:sync_cost
              ~mode ~arrivals_us:(arrivals rate) ~scripts e
          in
          let h = r.Dbm_storage.Server.latency_us in
          Printf.printf "%12.0f %12.0f %10.1f %10.1f %10.1f %10.1f %8d %8d %8d\n" rate
            r.Dbm_storage.Server.sustained_tps (Hist.p50 h) (Hist.p99 h) (Hist.p999 h)
            (Hist.max h) r.Dbm_storage.Server.forces r.Dbm_storage.Server.restarts
            r.Dbm_storage.Server.max_queued)
        loads
    in
    let module Engine_log_delta = struct
      include Dbm_storage.Engine_log

      let create ?n_keys () = create_with ?n_keys ~log_format:Delta ()
    end in
    (* A snapshot view factory over any Kv.SNAPSHOT engine, in the
       engine-agnostic shape the scheduler consumes. *)
    let reject_snapshot what =
      if use_snapshot then begin
        Printf.eprintf "serve-bench: --snapshot is not supported by %s\n" what;
        exit 2
      end;
      None
    in
    (* One domain per shard, cross-shard commits through the 2PC
       coordinator; [wire] lets an engine family share process-global
       state across the shard engines before the run. *)
    let sweep_sharded (type a) ?(wire = fun (_ : a array) -> ())
        (module E : Dbm_storage.Shard.ENGINE with type t = a) name =
      let module Shd = Dbm_storage.Shard.Make (E) in
      Printf.printf
        "sharded server: engine %s, %d shards, cross fraction %.2f, %s commits%s, mpl %d \
         per shard, %d txns/point%s, %s arrivals\n\
         (simulated time: %.1f us/turn, %.1f us/force)\n\n"
        name shards cross_frac
        (if eager then "eager" else "grouped")
        (if eager then "" else Printf.sprintf " (batch %d, timeout %.0f us)" batch timeout_us)
        mpl txns
        (if read_frac > 0.0 then Printf.sprintf " (%d read-only)" n_ro else "")
        (match arrival with `Poisson -> "poisson" | `Bursty -> "bursty")
        op_cost sync_cost;
      Printf.printf "%12s %12s %10s %10s %12s %8s %8s %8s\n" "offered/s" "sustained/s"
        "p50 us" "p99 us" "cross p99" "forces" "restarts" "cross";
      List.iter
        (fun rate ->
          let engines = Array.init shards (fun _ -> E.create ~n_keys:4096 ()) in
          wire engines;
          let coordinator = Dbm_storage.Coordinator_log.create () in
          let r =
            Shd.run ~mpl ~op_cost_us:op_cost ~sync_cost_us:sync_cost ~mode
              ~arrivals_us:(arrivals rate) ~scripts ~coordinator engines
          in
          let h = r.Dbm_storage.Shard.latency_us in
          let xh = r.Dbm_storage.Shard.cross_latency_us in
          Printf.printf "%12.0f %12.0f %10.1f %10.1f %12.1f %8d %8d %8d%s\n" rate
            r.Dbm_storage.Shard.sustained_tps (Hist.p50 h) (Hist.p99 h)
            (if Hist.count xh = 0 then 0.0 else Hist.p99 xh)
            r.Dbm_storage.Shard.forces r.Dbm_storage.Shard.restarts
            r.Dbm_storage.Shard.cross_committed
            (if r.Dbm_storage.Shard.oversubscribed then "  (oversubscribed)" else ""))
        loads
    in
    if shards > 1 then begin
      if use_snapshot then begin
        prerr_endline "serve-bench: --snapshot is not supported with --shards > 1";
        exit 2
      end;
      match (engine, log_format) with
      | `Logging, `Physical -> sweep_sharded (module Dbm_storage.Engine_log) "logging"
      | `Logging, `Delta -> sweep_sharded (module Engine_log_delta) "logging-delta"
      | `Logging, `Oplog ->
        sweep_sharded
          ~wire:(fun engines ->
            (* One process-global commit-sequence source so snapshot
               horizons order commits consistently across the shards. *)
            let seq = Atomic.make 0 in
            Array.iter
              (fun e ->
                Dbm_storage.Engine_oplog.set_seq_source e
                  (Some (fun () -> Atomic.fetch_and_add seq 1)))
              engines)
          (module Dbm_storage.Engine_oplog) "operation-logging"
      | (`Diff | `Versel), _ ->
        prerr_endline
          "serve-bench: --shards > 1 needs an engine with a durable prepare vote \
           (--engine logging, any --log-format)";
        exit 2
    end
    else
      match (engine, log_format) with
    | `Logging, `Physical ->
      sweep
        ?snapshot_of:(reject_snapshot "the physical logging engine (try --log-format oplog)")
        (module Dbm_storage.Engine_log) "logging"
    | `Logging, `Delta ->
      sweep
        ?snapshot_of:(reject_snapshot "the delta logging engine (try --log-format oplog)")
        (module Engine_log_delta) "logging-delta"
    | `Logging, `Oplog ->
      let snapshot_of e =
        let s = Dbm_storage.Engine_oplog.snapshot e in
        {
          Sch.view_get = (fun k -> Dbm_storage.Engine_oplog.snapshot_get s k);
          view_close = (fun () -> Dbm_storage.Engine_oplog.snapshot_release s);
        }
      in
      sweep
        ?snapshot_of:(if use_snapshot then Some snapshot_of else None)
        (module Dbm_storage.Engine_oplog) "operation-logging"
    | `Diff, `Physical ->
      let snapshot_of e =
        let s = Dbm_storage.Engine_diff.snapshot e in
        {
          Sch.view_get = (fun k -> Dbm_storage.Engine_diff.snapshot_get s k);
          view_close = (fun () -> Dbm_storage.Engine_diff.snapshot_release s);
        }
      in
      sweep
        ?snapshot_of:(if use_snapshot then Some snapshot_of else None)
        (module Dbm_storage.Engine_diff) "differential-file"
    | `Versel, `Physical ->
      let snapshot_of e =
        let s = Dbm_storage.Engine_versel.snapshot e in
        {
          Sch.view_get = (fun k -> Dbm_storage.Engine_versel.snapshot_get s k);
          view_close = (fun () -> Dbm_storage.Engine_versel.snapshot_release s);
        }
      in
      sweep
        ?snapshot_of:(if use_snapshot then Some snapshot_of else None)
        (module Dbm_storage.Engine_versel) "version-select"
    | `Diff, (`Delta | `Oplog) ->
      prerr_endline "serve-bench: --engine diff supports only --log-format physical";
      exit 2
    | `Versel, (`Delta | `Oplog) ->
      prerr_endline "serve-bench: --engine versel supports only --log-format physical";
      exit 2
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:
         "Drive the open-loop transaction server: Poisson or bursty arrivals at each \
          $(b,--load), admission control at $(b,--mpl), commits batched by the \
          group-commit pipeline ($(b,--batch) / $(b,--timeout-us)) or synced per \
          transaction under $(b,--eager); the logging engine can write physical, delta \
          or operation-logging records ($(b,--log-format)); a $(b,--read-frac) share of \
          transactions runs read-only, lock-free over pinned MVCC snapshots under \
          $(b,--snapshot); $(b,--shards) partitions the key space across domain-parallel \
          engine shards with two-phase commit for the $(b,--cross-frac) share of \
          transactions that spans two of them; prints sustained throughput and the \
          arrival-to-durable-ack latency tail per load point.")
    Term.(
      const run $ engine_arg $ log_format_arg $ loads_arg $ batch_arg $ timeout_arg
      $ mpl_arg $ txns_arg $ seed_arg $ arrival_arg $ eager_arg $ op_cost_arg
      $ sync_cost_arg $ read_frac_arg $ snapshot_arg $ shards_arg $ cross_frac_arg)

(* -- version-select command ---------------------------------------- *)

let version_select_cmd =
  let run () =
    let a = Dbm_recovery.Version_select.analyze Dbm_disk.Params.ibm_3350 in
    Printf.printf
      "plain read: %.2f ms\nversioned read: %.2f ms\npenalty: %.2fx\nspace: %.1fx\n%s\n"
      a.Dbm_recovery.Version_select.plain_read_ms a.Dbm_recovery.Version_select.versioned_read_ms
      a.Dbm_recovery.Version_select.read_penalty a.Dbm_recovery.Version_select.space_overhead
      (Dbm_recovery.Version_select.verdict a)
  in
  Cmd.v
    (Cmd.info "version-select"
       ~doc:"Print the Section 4.2.5 analysis of the version-selection architecture.")
    Term.(const run $ const ())

let () =
  let doc =
    "Recovery architectures for multiprocessor database machines (Agrawal & DeWitt 1985)"
  in
  let info = Cmd.info "dbmsim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ table_cmd; run_cmd; workload_cmd; ablation_cmd; extension_cmd; export_cmd;
         validate_cmd; recovery_time_cmd; storage_bench_cmd; serve_bench_cmd;
         version_select_cmd ]))
