(* Developer tool: prints the bare-machine metrics for the four paper
   configurations next to the paper's Table 1 values, plus key
   architecture runs.  Used to calibrate the simulator's constants. *)

let () =
  let open Dbm_core in
  Printf.printf "%-26s %10s %10s %12s %12s %8s %8s\n" "configuration" "exec/page" "paper"
    "completion" "paper" "disk" "qp";
  let paper_exec = [ 18.0; 16.6; 11.0; 1.9 ] in
  let paper_comp = [ 7398.4; 6476.0; 4016.5; 758.1 ] in
  List.iteri
    (fun i sc ->
      let r = Experiment.bare sc in
      Printf.printf "%-26s %10.2f %10.2f %12.1f %12.1f %8.2f %8.2f\n" (Scenario.name sc)
        r.Dbm_machine.Results.exec_ms_per_page (List.nth paper_exec i)
        r.Dbm_machine.Results.mean_completion_ms (List.nth paper_comp i)
        (Dbm_machine.Results.data_disk_utilization r)
        r.Dbm_machine.Results.qp_utilization)
    Scenario.all;

  (* Logging, 1 log disk (Table 1 "With Log" column). *)
  Printf.printf "\nWith logging (1 log disk, logical):\n";
  List.iter
    (fun sc ->
      let r =
        Experiment.on_scenario
          ~arch:(Dbm_recovery.Logging.descriptor Dbm_recovery.Logging.default)
          sc
          (Dbm_recovery.Logging.make Dbm_recovery.Logging.default)
      in
      let log_util =
        Option.value (Dbm_machine.Results.find_extra r "log_disk_util") ~default:0.0
      in
      Printf.printf "%-26s %10.2f %12.1f  log_util=%.3f blocked=%.1f\n" (Scenario.name sc)
        r.Dbm_machine.Results.exec_ms_per_page r.Dbm_machine.Results.mean_completion_ms log_util
        r.Dbm_machine.Results.mean_frames_blocked_on_log)
    Scenario.all
