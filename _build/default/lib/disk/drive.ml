type kind = Read | Write

type request = {
  kind : kind;
  mutable remaining : int list;
  extra_transfers : int;
  on_complete : unit -> unit;
}

type t = {
  engine : Dbm_sim.Engine.t;
  params : Params.t;
  layout : Layout.t;
  name : string;
  coalesce : bool;
  mutable queue : request list; (* FCFS order; head is oldest *)
  mutable busy : bool;
  mutable head_cylinder : int;
  busy_acc : Dbm_util.Stats.Busy.t;
  qlen : Dbm_util.Stats.Timeweighted.t;
  mutable accesses : int;
  mutable pages : int;
}

let create engine ~params ~layout ~name ?(coalesce = true) () =
  {
    engine;
    params;
    layout;
    name;
    coalesce;
    queue = [];
    busy = false;
    head_cylinder = 0;
    busy_acc = Dbm_util.Stats.Busy.create ();
    qlen = Dbm_util.Stats.Timeweighted.create ~t0:(Dbm_sim.Engine.now engine) ();
    accesses = 0;
    pages = 0;
  }

let name t = t.name
let params t = t.params
let queue_length t = List.length t.queue
let busy t = t.busy
let access_count t = t.accesses
let pages_transferred t = t.pages
let utilization t =
  Dbm_util.Stats.Busy.utilization t.busy_acc ~elapsed:(Dbm_sim.Engine.now t.engine) ~servers:1

let mean_queue_length t = Dbm_util.Stats.Timeweighted.mean t.qlen ~now:(Dbm_sim.Engine.now t.engine)

let note_queue t =
  Dbm_util.Stats.Timeweighted.update t.qlen ~now:(Dbm_sim.Engine.now t.engine)
    ~level:(float_of_int (List.length t.queue))

let cylinder_of t page = (Layout.locate t.params t.layout ~page).Layout.cylinder

(* One conventional access per page; arm position carried along. *)
let conventional_service t ~extra_transfers pages =
  let per_page_transfer =
    float_of_int (1 + extra_transfers) *. t.params.Params.page_transfer_ms
  in
  List.fold_left
    (fun acc page ->
      let cyl = cylinder_of t page in
      let seek = Params.seek_time t.params ~from_cyl:t.head_cylinder ~to_cyl:cyl in
      t.head_cylinder <- cyl;
      t.accesses <- t.accesses + 1;
      t.pages <- t.pages + 1;
      acc +. seek +. Params.avg_rotational_latency t.params +. per_page_transfer)
    0.0 pages

(* One parallel access: every page served lives in [target] cylinder. *)
let parallel_service t ~extra_transfers target served =
  let seek = Params.seek_time t.params ~from_cyl:t.head_cylinder ~to_cyl:target in
  t.head_cylinder <- target;
  t.accesses <- t.accesses + 1;
  t.pages <- t.pages + List.length served;
  let slots =
    Layout.slot_positions t.params t.layout served + (extra_transfers * List.length served)
  in
  seek
  +. Params.avg_rotational_latency t.params
  +. (float_of_int slots *. t.params.Params.page_transfer_ms)

let finish_completed t =
  let done_, rest = List.partition (fun r -> r.remaining = []) t.queue in
  t.queue <- rest;
  note_queue t;
  List.iter (fun r -> r.on_complete ()) done_

let rec serve t =
  if (not t.busy) && t.queue <> [] then begin
    match t.queue with
    | [] -> ()
    | head :: _ ->
      let service =
        if not t.params.Params.parallel_access then begin
          let pages = head.remaining in
          head.remaining <- [];
          conventional_service t ~extra_transfers:head.extra_transfers pages
        end
        else begin
          match head.remaining with
          | [] -> 0.0
          | first :: _ ->
            let target = cylinder_of t first in
            (* Absorb, from every queued same-kind request, the pages that
               live in the target cylinder. *)
            let served = ref [] in
            let candidates = if t.coalesce then t.queue else [ head ] in
            List.iter
              (fun r ->
                if r.kind = head.kind then begin
                  let hit, miss =
                    List.partition (fun p -> cylinder_of t p = target) r.remaining
                  in
                  if hit <> [] then begin
                    r.remaining <- miss;
                    served := List.rev_append hit !served
                  end
                end)
              candidates;
            parallel_service t ~extra_transfers:head.extra_transfers target !served
        end
      in
      t.busy <- true;
      Dbm_util.Stats.Busy.add_busy t.busy_acc service;
      ignore
        (Dbm_sim.Engine.schedule t.engine ~delay:service (fun () ->
             t.busy <- false;
             finish_completed t;
             serve t))
  end

let submit t ?(extra_transfers = 0) kind ~pages on_complete =
  let r = { kind; remaining = pages; extra_transfers; on_complete } in
  if pages = [] then
    ignore (Dbm_sim.Engine.schedule t.engine ~delay:0.0 on_complete)
  else begin
    t.queue <- t.queue @ [ r ];
    note_queue t;
    serve t
  end
