(** A disk drive attached to the event engine.

    Requests name a set of logical pages plus a completion callback and
    are served FCFS.

    A {e conventional} drive transfers one page per access (the paper's
    contrast with parallel-access drives); a multi-page request is a
    back-to-back train of accesses, with the arm position carried from
    page to page, so sequential trains pay only short seeks.

    A {e parallel-access} drive serves one cylinder per access.  When it
    begins an access it also absorbs, from anywhere in the queue, the
    pages of other same-kind requests that fall in the target cylinder —
    this is how "all the corresponding updated data pages [that] belong
    to the same cylinder ... may be written to disk in one I/O"
    (Section 4.1.2).  The access costs
    [seek + latency + (distinct rotational slots) * transfer]. *)

type t

type kind = Read | Write

val create :
  Dbm_sim.Engine.t ->
  params:Params.t ->
  layout:Layout.t ->
  name:string ->
  ?coalesce:bool ->
  unit ->
  t
(** [coalesce] (default [true]) controls whether a parallel-access
    drive absorbs other queued same-kind requests that fall in the
    target cylinder; disabling it is the queue-coalescing ablation. *)

val name : t -> string

val params : t -> Params.t

val submit : t -> ?extra_transfers:int -> kind -> pages:int list -> (unit -> unit) -> unit
(** Enqueue a request; the callback fires when {e all} its pages have
    been transferred.  An empty page list completes immediately (but
    still asynchronously, via a zero-delay event).

    [extra_transfers] charges that many additional block-transfer times
    {e per page served} from this request — the version-selection
    architecture's "read both copies" cost (Section 3.2.2.1), where the
    second copy is physically adjacent so only transfer time is added.
    When a parallel-access drive absorbs other requests into an access,
    the absorbed pages are charged at the head request's rate. *)

val queue_length : t -> int
(** Requests not yet fully served (including the one in progress). *)

val busy : t -> bool

val access_count : t -> int
(** Number of physical disk accesses performed. *)

val pages_transferred : t -> int

val utilization : t -> float
(** Busy time over elapsed simulation time. *)

val mean_queue_length : t -> float
