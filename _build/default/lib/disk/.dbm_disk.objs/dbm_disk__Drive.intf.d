lib/disk/drive.mli: Dbm_sim Layout Params
