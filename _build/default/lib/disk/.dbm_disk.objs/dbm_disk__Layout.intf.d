lib/disk/layout.mli: Params
