lib/disk/drive.ml: Dbm_sim Dbm_util Layout List Params
