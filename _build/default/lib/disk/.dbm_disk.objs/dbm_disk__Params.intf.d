lib/disk/params.mli:
