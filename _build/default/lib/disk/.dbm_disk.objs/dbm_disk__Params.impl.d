lib/disk/params.ml:
