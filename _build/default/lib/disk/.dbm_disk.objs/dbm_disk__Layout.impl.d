lib/disk/layout.ml: Dbm_util Hashtbl Int List Params
