(** Results of one simulation run.

    The paper's two headline metrics (Section 4):
    - {e execution time per page}: machine time to execute the whole
      transaction load divided by the total number of pages processed;
    - {e transaction completion time}: from the allocation of a
      transaction's first cache frame to the write of its last updated
      page. *)

type disk_report = {
  disk_name : string;
  utilization : float;
  accesses : int;
  pages : int;
}

type t = {
  makespan_ms : float;
  pages_processed : int;
  exec_ms_per_page : float;
  mean_completion_ms : float;
  max_completion_ms : float;
  n_transactions : int;
  data_disks : disk_report list;
  qp_utilization : float;
  mean_frames_blocked_on_log : float;
      (** time-weighted mean number of dirty frames held in the cache
          waiting for their log records to reach stable storage *)
  mean_free_frames : float;
  mean_active_txns : float;
      (** time-weighted mean number of admitted transactions — the
          effective multiprogramming level (lock conflicts at admission
          push it below the configured MPL) *)
  data_disk_accesses : int;  (** summed over the data disks *)
  completions : (int * float) list;
      (** (transaction id, completion time in ms), in completion order *)
  extra : (string * float) list;
      (** architecture-specific statistics (log-disk utilization,
          page-table disk utilization, ...) *)
}

val data_disk_utilization : t -> float
(** Mean utilization across the data disks. *)

val find_extra : t -> string -> float option

val pp : Format.formatter -> t -> unit
