type ctx = {
  engine : Dbm_sim.Engine.t;
  rng : Dbm_util.Prng.t;
  config : Config.t;
  data_drives : Dbm_disk.Drive.t array;
  drive_of_page : int -> Dbm_disk.Drive.t * int;
  scratch_page : disk:int -> int;
  diff_read_pages : disk:int -> n:int -> int list;
  diff_append_page : disk:int -> int;
  take_frames : int -> bool;
  release_frames : int -> unit;
}

type t = {
  arch_name : string;
  extra_read_pages : n_base:int -> int;
  read_extra_transfers : int;
  before_read : txn:Dbm_workload.Workload.txn -> page:int -> k:(unit -> unit) -> unit;
  cpu_extra_ms : txn:Dbm_workload.Workload.txn -> page:int -> write:bool -> float;
  on_update :
    txn:Dbm_workload.Workload.txn -> page:int -> qp:int -> release:(unit -> unit) -> unit;
  write_back :
    (txn:Dbm_workload.Workload.txn -> page:int -> written:(unit -> unit) -> unit) option;
  on_commit : txn:Dbm_workload.Workload.txn -> k:(unit -> unit) -> unit;
  extra_stats : unit -> (string * float) list;
}

let no_extra_reads ~n_base:_ = 0
let pass_read ~txn:_ ~page:_ ~k = k ()
let no_cpu ~txn:_ ~page:_ ~write:_ = 0.0
let immediate_release ~txn:_ ~page:_ ~qp:_ ~release = release ()
let immediate_commit ~txn:_ ~k = k ()
let no_stats () = []

let bare =
  {
    arch_name = "bare";
    extra_read_pages = no_extra_reads;
    read_extra_transfers = 0;
    before_read = pass_read;
    cpu_extra_ms = no_cpu;
    on_update = immediate_release;
    write_back = None;
    on_commit = immediate_commit;
    extra_stats = no_stats;
  }

let make ?(extra_read_pages = no_extra_reads) ?(read_extra_transfers = 0)
    ?(before_read = pass_read) ?(cpu_extra_ms = no_cpu) ?(on_update = immediate_release)
    ?write_back ?(on_commit = immediate_commit) ?(extra_stats = no_stats) arch_name =
  {
    arch_name;
    extra_read_pages;
    read_extra_transfers;
    before_read;
    cpu_extra_ms;
    on_update;
    write_back;
    on_commit;
    extra_stats;
  }
