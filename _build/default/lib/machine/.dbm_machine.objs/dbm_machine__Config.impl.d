lib/machine/config.ml: Dbm_disk
