lib/machine/lock_table.ml: Hashtbl List
