lib/machine/machine.ml: Arch Array Config Dbm_disk Dbm_sim Dbm_util Dbm_workload Float Hashtbl List Lock_table Option Printf Results String
