lib/machine/config.mli: Dbm_disk
