lib/machine/lock_table.mli:
