lib/machine/arch.mli: Config Dbm_disk Dbm_sim Dbm_util Dbm_workload
