lib/machine/machine.mli: Arch Config Dbm_sim Dbm_workload Results
