lib/machine/arch.ml: Config Dbm_disk Dbm_sim Dbm_util Dbm_workload
