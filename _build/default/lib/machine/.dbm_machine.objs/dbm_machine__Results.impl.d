lib/machine/results.ml: Format List
