lib/machine/results.mli: Format
