(** The multiprocessor-cache database machine (Section 2 of the paper).

    One {!run} simulates the execution of a transaction workload on a
    machine with a back-end controller, a pool of query processors, a
    page-addressable disk cache, and a set of data disks, under a given
    recovery architecture:

    - the back-end controller admits transactions up to the
      multiprogramming level, acquiring their page locks (static
      page-level locking) at admission;
    - for each admitted transaction it performs anticipatory paging:
      batches of up to [read_batch] pages are fetched into free cache
      frames, each gated by the architecture's [before_read] hook;
    - pages that arrive in the cache are handed to free query
      processors; processing an updated page triggers the architecture's
      [on_update] hook, and the dirty frame is written back (through the
      architecture's write path) once the hook releases it — the WAL
      rule of Section 3.1;
    - when every page is processed and every dirty frame flushed, the
      architecture's commit protocol runs and the transaction completes.

    The simulation is fully deterministic given the machine seed and the
    workload. *)

val run :
  config:Config.t ->
  make_arch:(Arch.ctx -> Arch.t) ->
  workload:Dbm_workload.Workload.txn array ->
  Results.t
(** @raise Invalid_argument on an invalid configuration.
    @raise Failure if the simulation stalls (an architecture hook never
    completed). *)

val run_traced :
  trace:Dbm_sim.Trace.t ->
  config:Config.t ->
  make_arch:(Arch.ctx -> Arch.t) ->
  workload:Dbm_workload.Workload.txn array ->
  Results.t
(** Like {!run}, additionally emitting one trace event per machine
    state transition (admission, read batch issue, commit start,
    completion). *)
