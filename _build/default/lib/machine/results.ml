type disk_report = {
  disk_name : string;
  utilization : float;
  accesses : int;
  pages : int;
}

type t = {
  makespan_ms : float;
  pages_processed : int;
  exec_ms_per_page : float;
  mean_completion_ms : float;
  max_completion_ms : float;
  n_transactions : int;
  data_disks : disk_report list;
  qp_utilization : float;
  mean_frames_blocked_on_log : float;
  mean_free_frames : float;
  mean_active_txns : float;
  data_disk_accesses : int;
  completions : (int * float) list;
  extra : (string * float) list;
}

let data_disk_utilization t =
  match t.data_disks with
  | [] -> 0.0
  | ds -> List.fold_left (fun acc d -> acc +. d.utilization) 0.0 ds /. float_of_int (List.length ds)

let find_extra t key = List.assoc_opt key t.extra

let pp ppf t =
  Format.fprintf ppf
    "@[<v>makespan: %.1f ms@ pages: %d@ exec/page: %.2f ms@ mean completion: %.1f ms@ \
     qp utilization: %.2f@ data-disk utilization: %.2f@ data-disk accesses: %d@ effective \
     MPL: %.2f@]"
    t.makespan_ms t.pages_processed t.exec_ms_per_page t.mean_completion_ms t.qp_utilization
    (data_disk_utilization t) t.data_disk_accesses t.mean_active_txns
