(** The interface between the database machine and a recovery
    architecture.

    A recovery architecture is a bundle of hooks the back-end controller
    calls at the points where recovery work can occur.  Every hook that
    may take simulated time is continuation-passing: the architecture
    calls the supplied continuation (possibly later, via the event
    engine) when the machine may proceed.  The bare machine ({!bare})
    completes every hook immediately. *)

type ctx = {
  engine : Dbm_sim.Engine.t;
  rng : Dbm_util.Prng.t;
  config : Config.t;
  data_drives : Dbm_disk.Drive.t array;
  drive_of_page : int -> Dbm_disk.Drive.t * int;
      (** logical data page -> (drive, drive-local page) *)
  scratch_page : disk:int -> int;
      (** next page of the disk's scratch ring (overwriting archs) *)
  diff_read_pages : disk:int -> n:int -> int list;
      (** [n] pages from the disk's differential zone, for reads *)
  diff_append_page : disk:int -> int;
      (** next append slot of the disk's differential zone *)
  take_frames : int -> bool;
      (** claim cache frames (for log fragments routed through the
          cache); [false] when not enough are free *)
  release_frames : int -> unit;
}
(** Facilities the machine exposes to an architecture. *)

type t = {
  arch_name : string;
  extra_read_pages : n_base:int -> int;
      (** extra same-drive pages to fetch with a batch of [n_base] data
          pages (differential A and D pages); 0 for other architectures *)
  read_extra_transfers : int;
      (** additional block transfers charged per data page read (the
          version-selection architecture reads both adjacent copies);
          0 elsewhere *)
  before_read : txn:Dbm_workload.Workload.txn -> page:int -> k:(unit -> unit) -> unit;
      (** gate the read of a data page (shadow page-table lookup) *)
  cpu_extra_ms : txn:Dbm_workload.Workload.txn -> page:int -> write:bool -> float;
      (** extra query-processor time to process one page *)
  on_update :
    txn:Dbm_workload.Workload.txn -> page:int -> qp:int -> release:(unit -> unit) -> unit;
      (** query processor [qp] updated [page]; call [release] when the
          dirty frame may be written to disk (the WAL rule) *)
  write_back :
    (txn:Dbm_workload.Workload.txn -> page:int -> written:(unit -> unit) -> unit) option;
      (** override the write-back of a dirty page ([None] = write to the
          page's home location); call [written] when the frame may be
          freed *)
  on_commit : txn:Dbm_workload.Workload.txn -> k:(unit -> unit) -> unit;
      (** commit protocol, run after all the transaction's pages are
          processed and all its dirty frames written; call [k] when the
          transaction is durable *)
  extra_stats : unit -> (string * float) list;
      (** architecture-specific statistics appended to the results *)
}

val bare : t
(** The machine with no provision for recovery (the paper's baseline). *)

val make :
  ?extra_read_pages:(n_base:int -> int) ->
  ?read_extra_transfers:int ->
  ?before_read:(txn:Dbm_workload.Workload.txn -> page:int -> k:(unit -> unit) -> unit) ->
  ?cpu_extra_ms:(txn:Dbm_workload.Workload.txn -> page:int -> write:bool -> float) ->
  ?on_update:
    (txn:Dbm_workload.Workload.txn -> page:int -> qp:int -> release:(unit -> unit) -> unit) ->
  ?write_back:(txn:Dbm_workload.Workload.txn -> page:int -> written:(unit -> unit) -> unit) ->
  ?on_commit:(txn:Dbm_workload.Workload.txn -> k:(unit -> unit) -> unit) ->
  ?extra_stats:(unit -> (string * float) list) ->
  string ->
  t
(** [make name] builds an architecture from the given hooks; omitted
    hooks behave like {!bare}'s. *)
