type tuple = { key : int; value : string }

type strategy = Basic | Optimal

(* Differential records are stamped so the newest for a key wins. *)
type diff_record = { stamp : int; dkey : int; dvalue : string option }

type stats = { pages_scanned : int; setdiff_ops : int; qualifying_pages : int }

type t = {
  base : tuple array array;  (* pages of key-sorted tuples *)
  mutable a_file : diff_record list;  (* newest first *)
  mutable d_file : diff_record list;  (* newest first *)
  mutable next_stamp : int;
  mutable stats : stats;
}

let no_stats = { pages_scanned = 0; setdiff_ops = 0; qualifying_pages = 0 }

let dedup_sorted tuples =
  (* later duplicates win: keep the last occurrence of each key *)
  let tbl = Hashtbl.create (List.length tuples) in
  List.iter (fun tp -> Hashtbl.replace tbl tp.key tp.value) tuples;
  let all = Hashtbl.fold (fun key value acc -> { key; value } :: acc) tbl [] in
  List.sort (fun a b -> Int.compare a.key b.key) all

let create ?(tuples_per_page = 8) tuples =
  if tuples_per_page <= 0 then invalid_arg "Diff_relation.create: bad page size";
  let sorted = Array.of_list (dedup_sorted tuples) in
  let n = Array.length sorted in
  let n_pages = (n + tuples_per_page - 1) / tuples_per_page in
  let base =
    Array.init n_pages (fun p ->
        Array.sub sorted (p * tuples_per_page) (min tuples_per_page (n - (p * tuples_per_page))))
  in
  { base; a_file = []; d_file = []; next_stamp = 1; stats = no_stats }

let stamp t =
  let s = t.next_stamp in
  t.next_stamp <- s + 1;
  s

let insert t tp = t.a_file <- { stamp = stamp t; dkey = tp.key; dvalue = Some tp.value } :: t.a_file

let delete t ~key = t.d_file <- { stamp = stamp t; dkey = key; dvalue = None } :: t.d_file

let base_pages t = Array.length t.base

let a_size t = List.length t.a_file

let d_size t = List.length t.d_file

(* The newest differential record for a key, searching A and D (both
   newest-first). *)
let newest_diff t ~key =
  let rec best acc = function
    | [] -> acc
    | r :: rest ->
      let acc =
        if r.dkey = key then
          match acc with Some b when b.stamp >= r.stamp -> acc | _ -> Some r
        else acc
      in
      best acc rest
  in
  best (best None t.a_file) t.d_file

let base_lookup t ~key =
  let found = ref None in
  Array.iter
    (fun page ->
      Array.iter (fun tp -> if tp.key = key then found := Some tp.value) page)
    t.base;
  !found

let lookup t ~key =
  match newest_diff t ~key with
  | Some { dvalue; _ } -> dvalue
  | None -> base_lookup t ~key

(* Is a base/A tuple dead or superseded?  A page-level set-difference:
   scan the D (and newer A) records relevant to the candidates. *)
let surviving t candidates =
  List.filter
    (fun (tp, src_stamp) ->
      match newest_diff t ~key:tp.key with
      | Some r -> r.stamp <= src_stamp  (* our record is the newest *)
      | None -> src_stamp = 0 (* base tuple with no differential history *))
    candidates
  |> List.map fst

(* One unit of select work: scan a batch of (tuple, stamp) candidates
   with the predicate; the set-difference against the differential
   files runs per the strategy. *)
let select_batch t ~strategy ~p candidates counters =
  let pages_scanned, setdiff_ops, qualifying = counters in
  incr pages_scanned;
  let matching = List.filter (fun (tp, _) -> p tp) candidates in
  if matching <> [] then incr qualifying;
  match strategy with
  | Basic ->
    incr setdiff_ops;
    surviving t matching
  | Optimal ->
    if matching = [] then []
    else begin
      incr setdiff_ops;
      surviving t matching
    end

(* A-file records grouped into pseudo-pages of the same size as base
   pages, so the work counters treat A like the paper does ("B or A
   page"). *)
let a_pages t ~tuples_per_page =
  let adds =
    List.filter_map
      (fun r -> match r.dvalue with Some v -> Some ({ key = r.dkey; value = v }, r.stamp) | None -> None)
      t.a_file
  in
  let rec chunk = function
    | [] -> []
    | l ->
      let rec take n acc = function
        | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let page, rest = take tuples_per_page [] l in
      page :: chunk rest
  in
  chunk adds

let run_select t ~strategy ~p ~pages =
  let pages_scanned = ref 0 and setdiff_ops = ref 0 and qualifying = ref 0 in
  let counters = (pages_scanned, setdiff_ops, qualifying) in
  let out =
    List.concat_map (fun page -> select_batch t ~strategy ~p page counters) pages
  in
  t.stats <-
    {
      pages_scanned = !pages_scanned;
      setdiff_ops = !setdiff_ops;
      qualifying_pages = !qualifying;
    };
  (* distinct keys, ascending; newest-wins already applied by surviving *)
  dedup_sorted out

let all_pages t =
  let base =
    Array.to_list (Array.map (fun page -> List.map (fun tp -> (tp, 0)) (Array.to_list page)) t.base)
  in
  let per_page = if Array.length t.base > 0 then Array.length t.base.(0) else 8 in
  base @ a_pages t ~tuples_per_page:(max 1 per_page)

let select t ~strategy p = run_select t ~strategy ~p ~pages:(all_pages t)

let select_parallel t ~workers ~strategy p =
  if workers <= 0 then invalid_arg "Diff_relation.select_parallel: workers must be positive";
  let pages = all_pages t in
  (* Deal the pages round-robin over the workers; each worker evaluates
     its partition independently (no shared state beyond the read-only
     differential files), then the results are concatenated.  The
     counters accumulate across workers so total work is comparable. *)
  let partitions = Array.make workers [] in
  List.iteri (fun i page -> partitions.(i mod workers) <- page :: partitions.(i mod workers)) pages;
  let pages_scanned = ref 0 and setdiff_ops = ref 0 and qualifying = ref 0 in
  let counters = (pages_scanned, setdiff_ops, qualifying) in
  let out =
    Array.to_list partitions
    |> List.concat_map (fun partition ->
           List.concat_map (fun page -> select_batch t ~strategy ~p page counters) partition)
  in
  t.stats <-
    {
      pages_scanned = !pages_scanned;
      setdiff_ops = !setdiff_ops;
      qualifying_pages = !qualifying;
    };
  dedup_sorted out

let materialize t = select t ~strategy:Basic (fun _ -> true)

let merge t =
  let view = materialize t in
  let per_page = if Array.length t.base > 0 then Array.length t.base.(0) else 8 in
  create ~tuples_per_page:(max 1 per_page) view

let last_stats t = t.stats
