(** Differential relations and their query operators (Section 3.3).

    A relation [R] is stored as the view [R = (B u A) - D]: a read-only
    paged base file [B], an additions file [A] and a deletions file [D]
    (Severance & Lohman [19], decomposed as in Stonebraker [20]).  The
    paper {e assumes} the parallel algorithms of its companion report
    [21] for operating on this representation; this module implements
    the operators so their properties are checkable:

    - {!select} evaluates a predicate over the view with either the
      {e basic} strategy (every B/A page pays the set-difference
      against the relevant D entries) or the {e optimal} strategy (the
      set-difference runs only for pages whose initial scan yields at
      least one qualifying tuple).  Both return identical results; the
      operation counters differ — the work model behind Table 9.
    - {!select_parallel} partitions the pages over [workers] and
      evaluates each partition independently (the [21] theme);
      the result equals the serial evaluation for every worker count.
    - {!merge} folds the committed differential records into a new base
      (the reorganization Table 11's growth makes necessary).

    Tuples are [(key, value)] pairs with set semantics per key; the
    newest differential record for a key wins. *)

type tuple = { key : int; value : string }

type t

type strategy = Basic | Optimal

val create : ?tuples_per_page:int -> tuple list -> t
(** Build a relation whose base holds the given tuples (later
    duplicates win), paged [tuples_per_page] (default 8) per base page.
    @raise Invalid_argument if [tuples_per_page <= 0]. *)

val insert : t -> tuple -> unit
(** Append to the A file (also used for updates: newest wins). *)

val delete : t -> key:int -> unit
(** Append to the D file. *)

val base_pages : t -> int

val a_size : t -> int

val d_size : t -> int

val lookup : t -> key:int -> string option
(** The view's value for [key]. *)

val select : t -> strategy:strategy -> (tuple -> bool) -> tuple list
(** All view tuples satisfying the predicate, in ascending key order.
    Both strategies return the same list; see {!last_stats} for the
    work difference. *)

val select_parallel : t -> workers:int -> strategy:strategy -> (tuple -> bool) -> tuple list
(** Partition the base pages (and the differential files) over
    [workers] and evaluate independently; equal to {!select} for any
    positive worker count.  @raise Invalid_argument if [workers <= 0]. *)

val materialize : t -> tuple list
(** The whole view [(B u A) - D], ascending keys. *)

val merge : t -> t
(** A new relation whose base is the materialized view and whose
    differential files are empty. *)

type stats = {
  pages_scanned : int;
  setdiff_ops : int;  (** page-level set-difference evaluations *)
  qualifying_pages : int;  (** pages whose scan yielded >= 1 result *)
}

val last_stats : t -> stats
(** Work counters of the most recent {!select} /
    {!select_parallel} / {!materialize} call. *)
