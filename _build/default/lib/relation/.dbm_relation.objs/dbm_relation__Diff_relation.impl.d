lib/relation/diff_relation.ml: Array Hashtbl Int List
