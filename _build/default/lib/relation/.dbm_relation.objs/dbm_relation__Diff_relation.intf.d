lib/relation/diff_relation.mli:
