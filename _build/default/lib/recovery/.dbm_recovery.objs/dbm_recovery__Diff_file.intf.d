lib/recovery/diff_file.mli: Dbm_machine
