lib/recovery/version_select.mli: Dbm_disk Dbm_machine
