lib/recovery/diff_file.ml: Array Dbm_disk Dbm_machine Dbm_util Dbm_workload Float Hashtbl Printf
