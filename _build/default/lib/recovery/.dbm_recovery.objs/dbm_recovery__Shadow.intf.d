lib/recovery/shadow.mli: Dbm_disk Dbm_machine
