lib/recovery/logging.ml: Array Dbm_disk Dbm_machine Dbm_sim Dbm_util Dbm_workload Hashtbl List Printf
