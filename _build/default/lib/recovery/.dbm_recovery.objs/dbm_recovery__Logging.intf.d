lib/recovery/logging.mli: Dbm_disk Dbm_machine
