lib/recovery/shadow.ml: Array Dbm_disk Dbm_machine Dbm_util Dbm_workload Hashtbl List Option Printf
