lib/recovery/version_select.ml: Dbm_disk Dbm_machine Option Printf
