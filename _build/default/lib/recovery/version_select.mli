(** Cost model for the version-selection shadow architecture
    (Section 3.2.2.1).

    Two physically adjacent blocks alternately hold the current and
    shadow copies of each page; a read fetches {e both} and applies a
    timestamp-based version-selection algorithm, avoiding the page
    table entirely.  The paper evaluates this variant analytically
    (Section 4.2.5) and rejects it: reading the extra block lengthens
    every data-page access on a machine already limited by I/O
    bandwidth, and disk space doubles.  This module reproduces that
    analysis. *)

type analysis = {
  plain_read_ms : float;  (** seek + latency + one-page transfer *)
  versioned_read_ms : float;  (** seek + latency + two-page transfer *)
  read_penalty : float;  (** versioned / plain *)
  space_overhead : float;  (** extra disk space factor (2.0) *)
  thru_pt_overlapped : bool;
      (** whether the competing thru-page-table lookup can be fully
          overlapped (true with 2 PT processors or a large buffer),
          making version selection strictly worse *)
}

val analyze : ?avg_seek_ms:float -> Dbm_disk.Params.t -> analysis
(** [analyze params] evaluates a random read on the given drive.
    [avg_seek_ms] defaults to the drive's uniform-random average. *)

val verdict : analysis -> string
(** One-line summary matching the paper's conclusion. *)

val make_sim : Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t
(** The version-selection architecture as a machine simulation hook:
    every data-page read transfers the adjacent second copy (one extra
    block time per page); updates write the alternate slot in place of
    the home block, so clustering is preserved and no page table or
    scratch traffic exists.  The paper declined to simulate this variant
    (Section 4.2.5, an analytic argument); we do, so its position in the
    Table 12 ranking can be measured — see the ablations. *)
