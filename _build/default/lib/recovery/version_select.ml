module Params = Dbm_disk.Params

type analysis = {
  plain_read_ms : float;
  versioned_read_ms : float;
  read_penalty : float;
  space_overhead : float;
  thru_pt_overlapped : bool;
}

let analyze ?avg_seek_ms params =
  let seek = Option.value avg_seek_ms ~default:(Params.avg_seek params) in
  let latency = Params.avg_rotational_latency params in
  let xfer = params.Params.page_transfer_ms in
  let plain = seek +. latency +. xfer in
  (* Both copies are physically adjacent: one extra block transfer on
     the same track. *)
  let versioned = seek +. latency +. (2.0 *. xfer) in
  {
    plain_read_ms = plain;
    versioned_read_ms = versioned;
    read_penalty = versioned /. plain;
    space_overhead = 2.0;
    thru_pt_overlapped = true;
  }

let verdict a =
  Printf.sprintf
    "every read slows by %.1f%% on an I/O-bound machine and disk space doubles, while the \
     page-table lookup it avoids can be fully overlapped: version selection is dominated by \
     the thru-page-table architecture"
    ((a.read_penalty -. 1.0) *. 100.0)

(* Simulated variant: the only machine-visible costs are the doubled
   read transfer and a small version-selection CPU charge.  Writes go to
   the adjacent slot of the same block pair: same cylinder, same cost as
   a home write. *)
let make_sim (_ctx : Dbm_machine.Arch.ctx) =
  let cpu_extra_ms ~txn:_ ~page:_ ~write:_ = 0.2 (* select the newer of two stamps *) in
  Dbm_machine.Arch.make ~read_extra_transfers:1 ~cpu_extra_ms "version-selection"
