type event = { time : float; source : string; tag : string; detail : string }

type t = {
  ring : event Dbm_util.Ring.t;
  mutable total : int;
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Dbm_util.Ring.create ~capacity (); total = 0 }

let emit t ~time ~source ~tag ~detail =
  t.total <- t.total + 1;
  let ev = { time; source; tag; detail } in
  if not (Dbm_util.Ring.push t.ring ev) then begin
    ignore (Dbm_util.Ring.pop t.ring);
    ignore (Dbm_util.Ring.push t.ring ev)
  end

let events t = Dbm_util.Ring.to_list t.ring

let with_tag t tag = List.filter (fun e -> e.tag = tag) (events t)

let total t = t.total

let clear t =
  Dbm_util.Ring.clear t.ring;
  t.total <- 0

let pp_event ppf e =
  Format.fprintf ppf "%10.2f  %-12s %-10s %s" e.time e.source e.tag e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
