(** Bounded event tracing for simulation runs.

    A {!t} is a sink holding the most recent [capacity] events (a ring:
    old events are dropped, the total count is kept).  The machine emits
    an event at each state transition when a sink is supplied, so a
    puzzling run can be replayed as a readable timeline without paying
    for tracing when it is off. *)

type event = {
  time : float;  (** simulation time, ms *)
  source : string;  (** emitting component, e.g. ["txn 3"] or ["data-0"] *)
  tag : string;  (** event kind, e.g. ["admit"], ["read"], ["commit"] *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 10,000 events.  @raise Invalid_argument if not
    positive. *)

val emit : t -> time:float -> source:string -> tag:string -> detail:string -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val with_tag : t -> string -> event list

val total : t -> int
(** Events emitted over the sink's lifetime (retained or dropped). *)

val clear : t -> unit

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Print the retained timeline, one event per line. *)
