lib/sim/engine.mli:
