lib/sim/trace.ml: Dbm_util Format List
