lib/sim/engine.ml: Dbm_util Float Int
