lib/sim/resource.ml: Dbm_util Engine Float Queue
