type job = { service : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  servers : int;
  queue : job Queue.t;
  mutable busy : int;
  busy_acc : Dbm_util.Stats.Busy.t;
  qlen : Dbm_util.Stats.Timeweighted.t;
  mutable completed : int;
}

let create engine ~name ~servers () =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  {
    engine;
    name;
    servers;
    queue = Queue.create ();
    busy = 0;
    busy_acc = Dbm_util.Stats.Busy.create ();
    qlen = Dbm_util.Stats.Timeweighted.create ~t0:(Engine.now engine) ();
    completed = 0;
  }

let name t = t.name
let servers t = t.servers
let busy_servers t = t.busy
let queue_length t = Queue.length t.queue
let completed t = t.completed

let note_queue t =
  Dbm_util.Stats.Timeweighted.update t.qlen ~now:(Engine.now t.engine)
    ~level:(float_of_int (Queue.length t.queue))

let rec start_next t =
  if t.busy < t.servers && not (Queue.is_empty t.queue) then begin
    let job = Queue.pop t.queue in
    note_queue t;
    t.busy <- t.busy + 1;
    Dbm_util.Stats.Busy.add_busy t.busy_acc job.service;
    let finish () =
      t.busy <- t.busy - 1;
      t.completed <- t.completed + 1;
      job.k ();
      start_next t
    in
    ignore (Engine.schedule t.engine ~delay:job.service finish);
    start_next t
  end

let submit t ~service k =
  if not (Float.is_finite service) || service < 0.0 then
    invalid_arg "Resource.submit: negative or non-finite service time";
  Queue.push { service; k } t.queue;
  note_queue t;
  start_next t

let utilization t =
  Dbm_util.Stats.Busy.utilization t.busy_acc ~elapsed:(Engine.now t.engine) ~servers:t.servers

let mean_queue_length t = Dbm_util.Stats.Timeweighted.mean t.qlen ~now:(Engine.now t.engine)
