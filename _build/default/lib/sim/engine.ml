type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

type t = {
  agenda : event Dbm_util.Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int; (* scheduled and not cancelled/fired *)
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { agenda = Dbm_util.Heap.create ~cmp:compare_events (); clock = 0.0; next_seq = 0; live = 0 }

let now t = t.clock

let schedule_at t ~time action =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Dbm_util.Heap.push t.agenda ev;
  ev

let schedule t ~delay action =
  if not (Float.is_finite delay) || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let step t =
  let rec next () =
    match Dbm_util.Heap.pop t.agenda with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      t.clock <- ev.time;
      t.live <- t.live - 1;
      ev.action ();
      true
  in
  next ()

let run ?until ?max_events t =
  let fired = ref 0 in
  let within_budget () =
    match max_events with
    | None -> true
    | Some m -> !fired < m
  in
  let within_horizon () =
    match until, Dbm_util.Heap.peek t.agenda with
    | _, None -> false
    | None, Some _ -> true
    | Some horizon, Some ev -> ev.time <= horizon || ev.cancelled
  in
  while within_budget () && within_horizon () && step t do
    incr fired
  done
