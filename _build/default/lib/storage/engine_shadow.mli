(** The shadow page-table recovery engine (Section 3.2, functional).

    Data pages are reached through a page table; an update writes the
    new page image to a {e fresh} block, leaving the shadow in place,
    and records the new address in a transaction-local intention list.
    Commit writes the updated page table to the inactive table area,
    syncs it, and then atomically flips the master pointer — no undo
    and no redo are ever needed: after a crash the master pointer still
    names a consistent table, so uncommitted updates simply become
    unreferenced blocks that recovery returns to the free list.

    This is the mechanism whose machine-level cost (the page-table
    indirection) Section 4.2 quantifies.

    Satisfies {!Kv.S}; extras below. *)

include Kv.S

val create_with : ?n_keys:int -> ?keys_per_page:int -> ?spare_factor:int -> unit -> t
(** [spare_factor] controls how many spare data blocks exist per
    logical page (default 2: enough for every page to be shadowed
    concurrently). *)

val table_flips : t -> int
(** Number of master-pointer flips (committed transactions). *)

val free_blocks : t -> int

val current_block : t -> page:int -> int
(** Physical block currently holding a logical page (for tests: blocks
    move on every update). *)
