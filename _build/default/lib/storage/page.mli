(** Fixed-size data pages holding key-value records.

    Layout: an 8-byte page LSN (stamped by the logging engine, zero
    elsewhere) followed by a record area encoding a key-sorted
    association list.  Encoding and decoding are exact inverses, which
    the property tests check. *)

exception Page_full

val header_bytes : int
(** Bytes reserved for the page LSN. *)

val empty : page_size:int -> bytes
(** Zeroed page: LSN 0, no records. *)

val get_lsn : bytes -> int

val set_lsn : bytes -> int -> unit

val records : bytes -> (int * string) list
(** Decode the record area (key-sorted).
    @raise Invalid_argument on a corrupt page. *)

val set_records : bytes -> (int * string) list -> unit
(** Encode the records into the page, replacing its record area.
    Records are stored key-sorted; duplicate keys keep the last value.
    @raise Page_full when they do not fit. *)

val update : bytes -> key:int -> value:string option -> unit
(** Set or delete ([None]) one key in place.
    @raise Page_full when the result does not fit. *)

val lookup : bytes -> key:int -> string option

val free_bytes : bytes -> int
(** Space remaining in the record area. *)
