type mode = S | X

type outcome = Granted | Would_block | Deadlock of int list

type entry = {
  mutable holders : (int * mode) list;
  mutable waiters : (int * mode) list;  (* FIFO: oldest first *)
}

type t = { pages : (int, entry) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let entry t page =
  match Hashtbl.find_opt t.pages page with
  | Some e -> e
  | None ->
    let e = { holders = []; waiters = [] } in
    Hashtbl.replace t.pages page e;
    e

let compatible held requested =
  match held, requested with
  | S, S -> true
  | _ -> false

let conflicts_with t ~txn ~page ~mode =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e ->
    List.filter_map
      (fun (o, held) -> if o <> txn && not (compatible held mode) then Some o else None)
      e.holders

(* Waiters at positions strictly before [txn] in the FIFO queue whose
   requests are incompatible with [mode]. *)
let waiters_ahead e ~txn ~mode =
  let rec go acc = function
    | [] -> List.rev acc  (* txn not queued yet: everyone ahead *)
    | (w, _) :: _ when w = txn -> List.rev acc
    | (w, wmode) :: rest ->
      go (if compatible wmode mode then acc else w :: acc) rest
  in
  go [] e.waiters

(* Waits-for edges implied by the recorded waiters: a waiter waits for
   every incompatible holder of its page and for every incompatible
   waiter queued ahead of it (FIFO fairness). *)
let blockers t txn =
  Hashtbl.fold
    (fun _page e acc ->
      List.fold_left
        (fun acc (w, mode) ->
          if w = txn then
            let from_holders =
              List.fold_left
                (fun acc (o, held) ->
                  if o <> txn && not (compatible held mode) then o :: acc else acc)
                acc e.holders
            in
            List.rev_append (waiters_ahead e ~txn ~mode) from_holders
          else acc)
        acc e.waiters)
    t.pages []

(* Would adding edge [txn -> targets] close a cycle?  DFS over the
   waits-for graph from each target looking for [txn]. *)
let find_cycle t ~txn ~targets =
  let visited = Hashtbl.create 16 in
  let rec dfs path node =
    if node = txn then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      let next = blockers t node in
      List.fold_left
        (fun acc n -> match acc with Some _ -> acc | None -> dfs (node :: path) n)
        None next
    end
  in
  List.fold_left
    (fun acc target -> match acc with Some _ -> acc | None -> dfs [] target)
    None targets

let record_waiter e ~txn ~mode =
  if not (List.exists (fun (w, m) -> w = txn && m = mode) e.waiters) then
    e.waiters <- e.waiters @ [ (txn, mode) ]

let remove_waiter e ~txn = e.waiters <- List.filter (fun (w, _) -> w <> txn) e.waiters

let acquire t ~txn ~page ~mode =
  let e = entry t page in
  match List.assoc_opt txn e.holders with
  | Some held when held = X || mode = S ->
    (* Already held in a sufficient mode. *)
    remove_waiter e ~txn;
    Granted
  | Some _ ->
    (* Upgrade S -> X: allowed when we are the only holder. *)
    if List.for_all (fun (o, _) -> o = txn) e.holders then begin
      e.holders <- [ (txn, X) ];
      remove_waiter e ~txn;
      Granted
    end
    else begin
      let others = List.filter_map (fun (o, _) -> if o <> txn then Some o else None) e.holders in
      match find_cycle t ~txn ~targets:others with
      | Some cycle -> Deadlock (txn :: cycle)
      | None ->
        record_waiter e ~txn ~mode;
        Would_block
    end
  | None ->
    let conflicting = conflicts_with t ~txn ~page ~mode in
    (* FIFO fairness: an incompatible waiter queued ahead of us also
       blocks us (prevents writer starvation behind a reader stream). *)
    let blocking_waiters = waiters_ahead e ~txn ~mode in
    if conflicting = [] && blocking_waiters = [] then begin
      e.holders <- (txn, mode) :: e.holders;
      remove_waiter e ~txn;
      Granted
    end
    else begin
      match find_cycle t ~txn ~targets:(conflicting @ blocking_waiters) with
      | Some cycle -> Deadlock (txn :: cycle)
      | None ->
        record_waiter e ~txn ~mode;
        Would_block
    end

let withdraw t ~txn ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e -> remove_waiter e ~txn

let release_all t ~txn =
  let empty_pages = ref [] in
  Hashtbl.iter
    (fun page e ->
      e.holders <- List.filter (fun (o, _) -> o <> txn) e.holders;
      remove_waiter e ~txn;
      if e.holders = [] && e.waiters = [] then empty_pages := page :: !empty_pages)
    t.pages;
  List.iter (Hashtbl.remove t.pages) !empty_pages

let holds t ~txn ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

let locked_pages t =
  Hashtbl.fold (fun _ e acc -> if e.holders <> [] then acc + 1 else acc) t.pages 0

let waiting t ~txn =
  Hashtbl.fold (fun _ e acc -> acc || List.exists (fun (w, _) -> w = txn) e.waiters) t.pages false
