(** The overwriting shadow engines (Section 3.2.2.2, functional).

    Both variants keep separate shadow and current copies of each
    updated page {e only while the transaction is active}, using a
    scratch ring buffer on disk, and end with the shadow overwritten in
    place — so physical clustering survives and no page table is
    needed.

    {b No-redo} ({!No_redo}): before a page is first updated, its
    original is forced to the scratch space (with a durable intention
    record); updates then overwrite the home location in place.  A
    transaction commits only after all its updates are on disk, so
    recovery never redoes — it only restores shadows of uncommitted
    transactions from the scratch space.

    {b No-undo} ({!No_undo}): updated pages are written to the scratch
    space; once they are all durable the transaction is committed, and
    only then are the shadows overwritten (the install pass).  Recovery
    never undoes — it only re-installs committed-but-uninstalled
    transactions (idempotently) from the scratch space.

    Scratch-ring overflow raises {!Kv.Scratch_full}, the paper's
    overflow caveat.  Both modules satisfy {!Kv.S}. *)

module No_undo : sig
  include Kv.S

  val create_with : ?n_keys:int -> ?keys_per_page:int -> ?scratch_slots:int -> unit -> t

  val scratch_in_use : t -> int

  val commit_without_install : txn -> unit
  (** Commit (scratch durable + commit record) but stop before the
      install pass — the window in which the paper keeps the page locks
      held.  Used by the crash tests to exercise the re-install path of
      restart recovery; until a crash+recovery runs, other transactions
      reading the affected pages see the shadows. *)
end

module No_redo : sig
  include Kv.S

  val create_with : ?n_keys:int -> ?keys_per_page:int -> ?scratch_slots:int -> unit -> t

  val scratch_in_use : t -> int
end
