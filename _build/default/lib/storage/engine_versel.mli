(** The version-selection recovery engine (Section 3.2.2.1,
    functional).

    Every logical page owns two physically adjacent disk slots.  An
    update writes the new image into the slot {e not} holding the
    latest committed version, tagged with a version number and the
    writing transaction; nothing is ever overwritten in place while it
    is still the current copy.  A read fetches {e both} slots and runs
    the version-selection algorithm: among slots whose writer is on the
    durable committed list (or is the reading transaction itself), the
    higher version wins.

    Commit is: sync the data slots, then append the transaction id to
    the committed list and sync it.  Crash recovery is free — slots
    written by transactions missing from the committed list are simply
    never selected.  The price the paper charges this design (every
    read transfers two blocks, disk space doubles) is visible here as
    the two-slot layout and the double read in [select].

    Satisfies {!Kv.S}; extras below. *)

include Kv.S

val create_with : ?n_keys:int -> ?keys_per_page:int -> unit -> t

val committed_count : t -> int

val slot_versions : t -> page:int -> int * int
(** The version tags of the two slots of a logical page (tests). *)
