type t = {
  mutable durable : string list;  (* reversed: newest first *)
  mutable durable_count : int;
  mutable pending : string list;  (* reversed: newest first *)
  mutable pending_count : int;
  mutable base : int;  (* sequence number of the oldest retained record *)
  mutable sync_count : int;
}

let create () =
  { durable = []; durable_count = 0; pending = []; pending_count = 0; base = 0; sync_count = 0 }

let append t r =
  let seq = t.base + t.durable_count + t.pending_count in
  t.pending <- r :: t.pending;
  t.pending_count <- t.pending_count + 1;
  seq

let sync t =
  t.sync_count <- t.sync_count + 1;
  t.durable <- t.pending @ t.durable;
  t.durable_count <- t.durable_count + t.pending_count;
  t.pending <- [];
  t.pending_count <- 0

let crash t =
  t.pending <- [];
  t.pending_count <- 0

let read_all t = List.rev t.durable

let read_live t = List.rev_append t.pending [] |> List.append (List.rev t.durable)

let appended t = t.base + t.durable_count + t.pending_count

let synced t = t.base + t.durable_count

let sync_count t = t.sync_count

let truncate t ~keep_from =
  if keep_from < t.base then ()
  else if keep_from > t.base + t.durable_count then
    invalid_arg "Journal.truncate: keep_from beyond the synced records"
  else begin
    let drop = keep_from - t.base in
    (* durable is newest-first; drop the [drop] oldest records. *)
    let keep = t.durable_count - drop in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.durable <- take keep t.durable;
    t.durable_count <- keep;
    t.base <- keep_from
  end
