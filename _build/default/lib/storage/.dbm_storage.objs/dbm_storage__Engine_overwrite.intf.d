lib/storage/engine_overwrite.mli: Kv
