lib/storage/wal.ml: Buffer Bytes Char Format Int64 List Printf String
