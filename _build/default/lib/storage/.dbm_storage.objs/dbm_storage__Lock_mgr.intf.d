lib/storage/lock_mgr.mli:
