lib/storage/scheduler.mli: Kv
