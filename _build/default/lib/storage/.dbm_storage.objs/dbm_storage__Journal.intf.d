lib/storage/journal.mli:
