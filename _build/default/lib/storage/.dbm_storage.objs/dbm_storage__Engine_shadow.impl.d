lib/storage/engine_shadow.ml: Array Bytes Hashtbl Int64 Kv List Page Printf Vdisk
