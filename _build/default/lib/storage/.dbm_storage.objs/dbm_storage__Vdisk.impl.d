lib/storage/vdisk.ml: Array Bytes Hashtbl Printf
