lib/storage/engine_versel.ml: Bytes Hashtbl Int64 Journal Kv List Page Printf Vdisk
