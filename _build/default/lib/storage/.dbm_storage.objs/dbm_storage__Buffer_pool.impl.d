lib/storage/buffer_pool.ml: Hashtbl Int List Page Printf Vdisk
