lib/storage/engine_diff.ml: Hashtbl Journal Kv List Page Printf String Vdisk
