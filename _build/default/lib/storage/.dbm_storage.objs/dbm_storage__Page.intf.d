lib/storage/page.mli:
