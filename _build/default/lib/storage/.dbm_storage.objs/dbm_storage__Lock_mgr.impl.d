lib/storage/lock_mgr.ml: Hashtbl List
