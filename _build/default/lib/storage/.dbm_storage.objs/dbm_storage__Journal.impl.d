lib/storage/journal.ml: List
