lib/storage/engine_overwrite.ml: Array Hashtbl Journal Kv List Page Printf String Vdisk
