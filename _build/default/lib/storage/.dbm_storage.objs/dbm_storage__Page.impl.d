lib/storage/page.ml: Bytes Hashtbl Int Int32 Int64 List String
