lib/storage/vdisk.mli:
