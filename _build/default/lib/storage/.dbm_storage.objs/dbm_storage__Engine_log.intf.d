lib/storage/engine_log.mli: Kv Wal
