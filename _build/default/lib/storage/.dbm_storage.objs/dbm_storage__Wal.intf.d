lib/storage/wal.mli: Format
