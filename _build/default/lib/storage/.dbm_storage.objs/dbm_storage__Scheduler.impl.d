lib/storage/scheduler.ml: Int Kv List Lock_mgr
