lib/storage/engine_shadow.mli: Kv
