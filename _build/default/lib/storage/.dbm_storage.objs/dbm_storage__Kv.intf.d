lib/storage/kv.mli:
