lib/storage/kv.ml: Hashtbl Printf
