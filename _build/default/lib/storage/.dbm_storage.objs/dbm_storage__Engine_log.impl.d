lib/storage/engine_log.ml: Array Bytes Hashtbl Int Journal Kv List Option Page Printf Vdisk Wal
