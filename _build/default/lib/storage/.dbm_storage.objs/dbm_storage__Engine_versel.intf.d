lib/storage/engine_versel.mli: Kv
