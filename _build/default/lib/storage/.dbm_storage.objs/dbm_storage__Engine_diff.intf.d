lib/storage/engine_diff.mli: Kv
