(** Page-level two-phase locking with deadlock detection.

    Non-blocking interface: {!acquire} either grants the lock, reports
    that the caller would block behind the current holders, or reports
    that waiting would close a cycle in the waits-for graph (deadlock).
    On [Would_block] the requester is recorded as waiting; the waits-for
    edges persist until the request is granted on a retry, withdrawn,
    or the transaction releases its locks.  The caller (the back-end
    controller in the paper's design) chooses the victim and aborts
    it. *)

type t

type mode = S | X

type outcome =
  | Granted
  | Would_block
  | Deadlock of int list  (** the cycle of transaction ids, requester first *)

val create : unit -> t

val acquire : t -> txn:int -> page:int -> mode:mode -> outcome
(** Re-acquiring a held lock is granted; an upgrade (S held, X
    requested) is granted when the requester is the only holder. *)

val withdraw : t -> txn:int -> page:int -> unit
(** Forget a pending (blocked) request, removing its waits-for edges. *)

val release_all : t -> txn:int -> unit
(** Release every lock held by [txn] and any pending requests. *)

val holds : t -> txn:int -> page:int -> mode option

val locked_pages : t -> int

val waiting : t -> txn:int -> bool
