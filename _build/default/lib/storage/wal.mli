(** Write-ahead log records and their binary encoding.

    Update records carry full before and after images of the page, as
    in the paper's physical logging; LSNs are globally ordered across
    all log disks, which is what lets recovery proceed without merging
    the distributed logs into one physical log (Section 3.1, [13]). *)

exception Corrupt of string

type record =
  | Update of { lsn : int; txn : int; page : int; before : bytes; after : bytes }
  | Commit of { lsn : int; txn : int }
  | Abort of { lsn : int; txn : int }
  | Checkpoint of { lsn : int; active : int list }

val lsn : record -> int

val txn_of : record -> int option
(** [None] for checkpoints. *)

val encode : record -> string
(** Binary encoding with a trailing checksum. *)

val decode : string -> record
(** @raise Corrupt on a damaged or truncated encoding (checksum
    mismatch, bad tag, short buffer). *)

val pp : Format.formatter -> record -> unit
