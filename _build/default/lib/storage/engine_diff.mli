(** The differential-file recovery engine (Section 3.3, functional).

    The store is the view [(B u A) - D]: a read-only base [B] (pages on
    a virtual disk) plus append-only differential files — [A] for
    additions/updates and [D] for deletions.  A lookup consults the
    committed (or own) A and D records for the key, newest first, and
    falls back to the base: precisely the set-union/set-difference the
    paper charges the query processors for.

    Writes never touch the base, so the recovery data {e is} the data:
    commit forces the A and D files and appends a commit marker;
    records of uncommitted transactions are simply never selected, so
    crash recovery does no work.  {!checkpoint} runs the merge the
    paper mentions (folding committed A/D records into the base and
    truncating the differential files), which requires quiescence.

    Satisfies {!Kv.S}; extras below. *)

include Kv.S

val create_with : ?n_keys:int -> ?keys_per_page:int -> ?auto_merge_records:int -> unit -> t
(** [auto_merge_records], when set, runs the merge automatically at the
    first quiescent transaction boundary once the differential files
    hold at least that many records — the periodic reorganization the
    paper says must bound their size (Section 4.3.3). *)

val a_size : t -> int
(** Records currently in the additions file. *)

val d_size : t -> int
(** Records currently in the deletions file. *)

val merges : t -> int
