type frame = {
  page : int;
  data : bytes;
  mutable pins : int;
  mutable dirty : bool;
  mutable last_use : int;  (* logical clock for LRU *)
}

type t = {
  disk : Vdisk.t;
  capacity : int;
  table : (int, frame) Hashtbl.t;
  can_evict : page:int -> lsn:int -> bool;
  before_evict : page:int -> lsn:int -> unit;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

exception No_free_frame

let create disk ~frames ?(can_evict = fun ~page:_ ~lsn:_ -> true)
    ?(before_evict = fun ~page:_ ~lsn:_ -> ()) () =
  if frames <= 0 then invalid_arg "Buffer_pool.create: need at least one frame";
  {
    disk;
    capacity = frames;
    table = Hashtbl.create frames;
    can_evict;
    before_evict;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let frames t = t.capacity

let in_use t = Hashtbl.length t.table

let pinned t = Hashtbl.fold (fun _ f acc -> if f.pins > 0 then acc + 1 else acc) t.table 0

let touch t f =
  t.clock <- t.clock + 1;
  f.last_use <- t.clock

let write_back t f =
  let lsn = Page.get_lsn f.data in
  t.before_evict ~page:f.page ~lsn;
  if not (t.can_evict ~page:f.page ~lsn) then false
  else begin
    Vdisk.write t.disk f.page f.data;
    f.dirty <- false;
    true
  end

(* Evict the least-recently-used unpinned (and evictable) frame. *)
let evict_one t =
  let candidates =
    Hashtbl.fold (fun _ f acc -> if f.pins = 0 then f :: acc else acc) t.table []
  in
  let ordered = List.sort (fun a b -> Int.compare a.last_use b.last_use) candidates in
  let rec try_evict = function
    | [] -> raise No_free_frame
    | f :: rest ->
      if f.dirty && not (write_back t f) then try_evict rest
      else begin
        Hashtbl.remove t.table f.page;
        t.evictions <- t.evictions + 1
      end
  in
  try_evict ordered

let get t page =
  match Hashtbl.find_opt t.table page with
  | Some f ->
    t.hits <- t.hits + 1;
    f.pins <- f.pins + 1;
    touch t f;
    f.data
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.table >= t.capacity then evict_one t;
    let f = { page; data = Vdisk.read t.disk page; pins = 1; dirty = false; last_use = 0 } in
    touch t f;
    Hashtbl.replace t.table page f;
    f.data

let find_exn t page ~what =
  match Hashtbl.find_opt t.table page with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Buffer_pool.%s: page %d not resident" what page)

let unpin t page =
  let f = find_exn t page ~what:"unpin" in
  if f.pins <= 0 then invalid_arg (Printf.sprintf "Buffer_pool.unpin: page %d not pinned" page);
  f.pins <- f.pins - 1

let mark_dirty t page =
  let f = find_exn t page ~what:"mark_dirty" in
  f.dirty <- true

let is_dirty t page =
  match Hashtbl.find_opt t.table page with Some f -> f.dirty | None -> false

let resident t page = Hashtbl.mem t.table page

let flush_page t page =
  let f = find_exn t page ~what:"flush_page" in
  if f.dirty && not (write_back t f) then
    failwith (Printf.sprintf "Buffer_pool.flush_page: WAL gate refuses page %d" page)

let flush_all t =
  Hashtbl.iter
    (fun _ f ->
      if f.dirty && not (write_back t f) then
        failwith
          (Printf.sprintf "Buffer_pool.flush_all: WAL gate refuses page %d" f.page))
    t.table;
  Vdisk.sync t.disk

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions
