(** Concurrent transaction execution with strict two-phase locking.

    The paper assumes a page-level-locking scheduler in the back-end
    controller (Section 3); this module is its functional counterpart:
    it interleaves a set of transaction {e scripts} over any recovery
    engine, acquiring page locks (at the engine's {!Kv.S.keys_per_page} granule) through {!Lock_mgr} as operations
    execute, parking scripts that would block, and resolving deadlocks
    by aborting and restarting the requester (strict 2PL: all locks are
    held until commit).

    Because acquisition is incremental and the victim restarts from the
    beginning, every run is serializable: the committed scripts are
    equivalent to executing them serially in commit order (a property
    the test suite checks against the model). *)

type op =
  | Get of int
  | Put of int * string
  | Delete of int

type script = op list

type report = {
  commit_order : int list;  (** script ids, in commit order *)
  restarts : int;  (** deadlock-victim restarts *)
  steps : int;  (** scheduler steps taken *)
}

module Make (E : Kv.S) : sig
  val run : ?max_steps:int -> E.t -> scripts:(int * script) list -> report
  (** Run the scripts to completion, round-robin.  Script ids must be
      distinct.
      @raise Failure if the scripts have not all committed within
      [max_steps] scheduler steps (default 100,000). *)
end
