(** The parallel-logging recovery engine (Section 3.1, functional).

    A steal / no-force page store: updates are applied in place after a
    full before/after-image log record is appended to one of [N] log
    disks (write-ahead rule), commit forces every log disk holding the
    transaction's fragments, and restart recovery rebuilds each page
    from the distributed logs {e without merging them into one physical
    log} — global LSNs plus full-page images make per-page
    reconstruction order-insensitive, the property the paper's
    companion algorithm [13] exploits.

    Satisfies {!Kv.S}; extras below. *)

include Kv.S

type selection = Cyclic | By_txn | By_page

val create_with :
  ?n_keys:int ->
  ?n_log_disks:int ->
  ?selection:selection ->
  ?keys_per_page:int ->
  ?auto_checkpoint_records:int ->
  unit ->
  t
(** [create] is [create_with] with 2 log disks, cyclic selection,
    4 keys per page and no automatic checkpointing.
    [auto_checkpoint_records], when set, runs a fuzzy checkpoint at the
    first transaction boundary after that many log records have
    accumulated since the last checkpoint, bounding both the log size
    and the restart-recovery work. *)

val commit_group : txn -> unit
(** Group commit: append the commit record but do {e not} force the
    log.  The transaction becomes durable at the next {!force_commits}
    (or any other log force); a crash before that loses it — exactly
    the group-commit durability window.  Amortizes the per-commit log
    force across a batch of transactions. *)

val force_commits : t -> unit
(** Force every log disk: all group-committed transactions become
    durable. *)

val flush : t -> unit
(** Force the log disks and then the data disk: the "steal" path (a
    dirty page may reach disk before commit, but never before its log
    records — the WAL rule). *)

type recovery_strategy =
  | Sorted  (** group the distributed records per page and replay them
                in LSN order (the textbook formulation) *)
  | Unmerged
      (** the paper's companion algorithm [13]: process each log disk
          {e independently} with no global sort — redo applies a
          committed after-image iff its LSN exceeds the page's current
          LSN (idempotent, order-insensitive), and an undo fixpoint
          rolls loser images off the pages they still own.  The two
          strategies are provably equivalent; the property tests check
          it on random crash histories. *)

val set_recovery_strategy : t -> recovery_strategy -> unit
(** Default [Sorted].  Takes effect at the next [crash_and_recover]. *)

val recovery_strategy : t -> recovery_strategy

val log_disks : t -> int

val records_logged : t -> int

val dump_log : t -> disk:int -> Wal.record list
(** Durable records of one log disk, for inspection and tests. *)
