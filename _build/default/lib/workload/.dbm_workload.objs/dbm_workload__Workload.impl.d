lib/workload/workload.ml: Array Buffer Dbm_util Float Hashtbl List Printf String
