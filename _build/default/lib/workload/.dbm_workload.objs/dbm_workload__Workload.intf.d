lib/workload/workload.mli:
