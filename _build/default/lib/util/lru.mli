(** Fixed-capacity LRU map with hit/miss accounting and dirty tracking.

    Models the page-table buffer of the shadow recovery architecture
    (Section 4.2 of the paper) and backs the buffer pool of the storage
    engines.  Entries carry a [dirty] flag; evicting a dirty entry is
    reported to the caller so it can schedule a write-back. *)

type ('k, 'v) t

type ('k, 'v) evicted = { key : 'k; value : 'v; dirty : bool }

val create : capacity:int -> unit -> ('k, 'v) t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test; does not touch recency. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] promotes [k] to most-recently-used on a hit.  Updates the
    hit/miss counters. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but affects neither recency nor the counters. *)

val add : ('k, 'v) t -> ?dirty:bool -> 'k -> 'v -> ('k, 'v) evicted option
(** [add t k v] inserts or overwrites the binding (promoting it), and
    returns the entry evicted to make room, if any. *)

val set_dirty : ('k, 'v) t -> 'k -> bool -> unit
(** Mark an existing entry dirty or clean.  No-op when absent. *)

val is_dirty : ('k, 'v) t -> 'k -> bool

val remove : ('k, 'v) t -> 'k -> unit

val dirty_entries : ('k, 'v) t -> ('k * 'v) list
(** All dirty entries, most recently used first. *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate over all entries, most recently used first. *)

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drop all entries; keeps the hit/miss counters. *)
