(* Classic hashtable + doubly-linked list; the list head is the most
   recently used entry, the tail is the eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable dirty : bool;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
}

type ('k, 'v) evicted = { key : 'k; value : 'v; dirty : bool }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create capacity; head = None; tail = None; hits = 0; misses = 0 }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let mem t k = Hashtbl.mem t.table k

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> Some node.value

let evict_tail t =
  match t.tail with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    Some { key = node.key; value = node.value; dirty = node.dirty }

let add t ?(dirty = false) k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    node.dirty <- dirty || node.dirty;
    unlink t node;
    push_front t node;
    None
  | None ->
    let victim = if Hashtbl.length t.table >= t.capacity then evict_tail t else None in
    let node = { key = k; value = v; dirty; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node;
    victim

let set_dirty t k d =
  match Hashtbl.find_opt t.table k with
  | Some node -> node.dirty <- d
  | None -> ()

let is_dirty t k =
  match Hashtbl.find_opt t.table k with
  | Some node -> node.dirty
  | None -> false

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k
  | None -> ()

let fold_nodes t f init =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node) node.next
  in
  go init t.head

let dirty_entries t =
  List.rev
    (fold_nodes t (fun acc node -> if node.dirty then (node.key, node.value) :: acc else acc) [])

let iter t f = ignore (fold_nodes t (fun () node -> f node.key node.value) ())

let hits t = t.hits

let misses t = t.misses

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
