(** Imperative binary min-heap.

    The comparison function is fixed at creation time.  Used as the agenda
    of the discrete-event engine, where keys are [(time, sequence)] pairs
    so that simultaneous events fire in scheduling order. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element on top). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: the heap's contents in ascending order. *)
