lib/util/lru.mli:
