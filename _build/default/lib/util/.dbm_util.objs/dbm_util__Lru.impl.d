lib/util/lru.ml: Hashtbl List
