lib/util/stats.mli:
