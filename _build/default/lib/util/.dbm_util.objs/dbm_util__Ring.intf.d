lib/util/ring.mli:
