lib/util/prng.mli:
