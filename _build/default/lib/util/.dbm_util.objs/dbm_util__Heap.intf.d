lib/util/heap.mli:
