(** The numbers reported in the paper's Tables 1-12, transcribed
    verbatim for side-by-side comparison.

    Row order everywhere is the paper's: Conventional-Random,
    Parallel-Random, Conventional-Sequential, Parallel-Sequential
    (except Table 3, which is indexed by the number of log disks). *)

val table1_exec : (float * float) list
(** (without log, with log) execution time per page, per configuration. *)

val table1_completion : (float * float) list

val table2_log_util : float list

val table3_exec : (int * float list) list
(** (log disks, [cyclic; random; qp mod; txn mod]); the pseudo-row 0
    is the without-logging baseline replicated across policies. *)

val table3_completion : (int * float list) list

val table4_exec : (float * float * float) list
(** (bare, 1 page-table processor, 2 page-table processors). *)

val table4_completion : (float * float * float) list

val table5_util : (float * float * float * float * float) list
(** (bare data, 1pt pt-disk, 1pt data, 2pt pt-disk, 2pt data). *)

val table6_exec : (string * float * float list) list
(** (disk type, bare, [buffer 10; 25; 50]). *)

val table7_exec : (string * float * float * float * float) list
(** (disk type, bare, clustered, scrambled, overwriting). *)

val table8_exec : (string * float * float * float) list
(** (disk type, bare, thru page-table, overwriting). *)

val table9_exec : (float * float * float) list
(** (bare, basic, optimal). *)

val table9_completion : (float * float * float) list

val table10_exec : (float * float list) list
(** (bare, [output fraction 10 %; 20 %; 50 %]). *)

val table11_exec : (float * float list) list
(** (bare, [diff size 10 %; 15 %; 20 %]). *)

val table12_exec : (string * float list) list
(** (configuration, [bare; logging; pt buf10; pt buf50; 2 pt; scrambled;
    overwriting; differential]). *)
