(** The four experimental configurations of Section 4.

    Conventional vs parallel-access data disks, crossed with random vs
    sequential transaction reference strings.  The baseline machine has
    25 query processors, 100 cache frames and 2 data disks; transactions
    access 1-250 pages uniformly and update a random 20 % subset. *)

type t =
  | Conventional_random
  | Parallel_random
  | Conventional_sequential
  | Parallel_sequential

val all : t list

val name : t -> string
(** e.g. ["Conventional-Random"], as printed in the paper's tables. *)

val machine_config : ?scramble:int -> t -> Dbm_machine.Config.t
(** The baseline machine for this configuration.  [scramble] scatters
    the data pages within each disk's data zone (the shadow-mechanism
    drift experiment of Table 7). *)

val workload_config : ?n_transactions:int -> ?seed:int -> t -> Dbm_workload.Workload.config
(** The paper's workload for this configuration (50 transactions by
    default). *)

val table3_machine : Dbm_machine.Config.t
(** The Section 4.1.2 machine: 75 query processors, 150 cache frames,
    2 parallel-access data disks. *)

val table3_workload : ?n_transactions:int -> ?seed:int -> unit -> Dbm_workload.Workload.config
(** Sequential transactions for the Table 3 machine. *)
