let cache : (string, Dbm_machine.Results.t) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let run ~key ~machine ~workload ~make_arch () =
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let txns = Dbm_workload.Workload.generate workload in
    let r = Dbm_machine.Machine.run ~config:machine ~make_arch ~workload:txns in
    Hashtbl.replace cache key r;
    r

let on_scenario ~key ?scramble scenario make_arch =
  run ~key
    ~machine:(Scenario.machine_config ?scramble scenario)
    ~workload:(Scenario.workload_config scenario)
    ~make_arch ()

let bare scenario =
  on_scenario ~key:("bare/" ^ Scenario.name scenario) scenario (fun _ -> Dbm_machine.Arch.bare)
