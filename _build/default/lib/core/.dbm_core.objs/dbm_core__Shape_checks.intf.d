lib/core/shape_checks.mli:
