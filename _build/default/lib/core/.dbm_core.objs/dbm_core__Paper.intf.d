lib/core/paper.mli:
