lib/core/experiment.ml: Dbm_machine Dbm_workload Hashtbl Scenario
