lib/core/extensions.mli: Report
