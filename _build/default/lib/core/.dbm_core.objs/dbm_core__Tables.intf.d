lib/core/tables.mli: Report
