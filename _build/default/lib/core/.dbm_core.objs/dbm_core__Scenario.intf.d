lib/core/scenario.mli: Dbm_machine Dbm_workload
