lib/core/scenario.ml: Dbm_machine Dbm_workload
