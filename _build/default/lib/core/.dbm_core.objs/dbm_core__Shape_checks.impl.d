lib/core/shape_checks.ml: Dbm_machine Dbm_recovery Experiment Float List Option Printf Scenario
