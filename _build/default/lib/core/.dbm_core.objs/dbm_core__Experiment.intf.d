lib/core/experiment.mli: Dbm_machine Dbm_workload Scenario
