lib/core/extensions.ml: Array Dbm_machine Dbm_recovery Dbm_util Dbm_workload Experiment List Printf Report Scenario
