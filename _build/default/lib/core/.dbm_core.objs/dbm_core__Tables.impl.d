lib/core/tables.ml: Dbm_machine Dbm_recovery Experiment List Option Paper Printf Report Scenario
