lib/core/paper.ml:
