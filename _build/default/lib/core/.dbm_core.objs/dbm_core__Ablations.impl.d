lib/core/ablations.ml: Dbm_machine Dbm_recovery Dbm_workload Experiment List Option Printf Report Scenario
