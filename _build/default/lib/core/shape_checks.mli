(** The paper's qualitative claims, codified.

    Each check names one conclusion from the paper's evaluation and
    tests it against the regenerated tables: orderings ("overwriting is
    the worst architecture on conventional disks"), crossovers
    ("overwriting beats scrambled shadow only on parallel-access
    sequential loads"), and invariances ("logging does not affect
    throughput").  `dbmsim validate` prints them; the test suite
    asserts they all hold. *)

type check = {
  claim : string;  (** the paper's claim, quoted or paraphrased *)
  where : string;  (** paper section / table *)
  holds : bool;
}

val all : unit -> check list

val failures : unit -> check list
