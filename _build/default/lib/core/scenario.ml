module Config = Dbm_machine.Config
module Workload = Dbm_workload.Workload

type t =
  | Conventional_random
  | Parallel_random
  | Conventional_sequential
  | Parallel_sequential

let all =
  [ Conventional_random; Parallel_random; Conventional_sequential; Parallel_sequential ]

let name = function
  | Conventional_random -> "Conventional-Random"
  | Parallel_random -> "Parallel-Random"
  | Conventional_sequential -> "Conventional-Sequential"
  | Parallel_sequential -> "Parallel-Sequential"

let base = { Config.paper_base with db_pages = 65536 }

let machine_config ?scramble t =
  let cfg =
    match t with
    | Conventional_random | Conventional_sequential -> base
    | Parallel_random | Parallel_sequential -> Config.with_parallel_disks base
  in
  match scramble with None -> cfg | Some seed -> Config.with_scramble seed cfg

let workload_config ?(n_transactions = 50) ?(seed = 42) t =
  let pattern =
    match t with
    | Conventional_random | Parallel_random -> Workload.Random_access
    | Conventional_sequential | Parallel_sequential -> Workload.Sequential
  in
  { Workload.default with Workload.n_transactions; pattern; seed; db_pages = base.Config.db_pages }

let table3_machine = { Config.table3_machine with db_pages = base.Config.db_pages }

let table3_workload ?(n_transactions = 50) ?(seed = 42) () =
  {
    Workload.default with
    Workload.n_transactions;
    pattern = Workload.Sequential;
    seed;
    db_pages = table3_machine.Config.db_pages;
  }
