type cell = { measured : float; paper : float option }

type row = { row_label : string; cells : cell list }

type table = {
  id : string;
  title : string;
  columns : string list;
  rows : row list;
  notes : string list;
}

let cell ?paper measured = { measured; paper }

let format_value v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let format_cell c =
  match c.paper with
  | None -> format_value c.measured
  | Some p -> Printf.sprintf "%s [%s]" (format_value c.measured) (format_value p)

let pp ppf t =
  let header = "" :: t.columns in
  let body =
    List.map (fun r -> r.row_label :: List.map format_cell r.cells) t.rows
  in
  let all_rows = header :: body in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all_rows in
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun i s -> if String.length s > widths.(i) then widths.(i) <- String.length s))
    all_rows;
  Format.fprintf ppf "=== %s: %s ===@." t.id t.title;
  Format.fprintf ppf "(measured [paper])@.";
  let print_row cells =
    List.iteri
      (fun i s ->
        let pad = widths.(i) - String.length s in
        if i = 0 then Format.fprintf ppf "%s%s" s (String.make pad ' ')
        else Format.fprintf ppf "  %s%s" (String.make pad ' ') s)
      cells;
    Format.fprintf ppf "@."
  in
  List.iter print_row all_rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes

let to_string t = Format.asprintf "%a" pp t

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "row,column,measured,paper\n";
  List.iter
    (fun r ->
      List.iteri
        (fun i c ->
          let col = try List.nth t.columns i with _ -> string_of_int i in
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%.4f,%s\n" r.row_label col c.measured
               (match c.paper with None -> "" | Some p -> Printf.sprintf "%.4f" p)))
        r.cells)
    t.rows;
  Buffer.contents buf

let ascii_bars ?(width = 50) rows =
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  let mx =
    List.fold_left
      (fun acc (_, v) -> if Float.is_finite v && v > acc then v else acc)
      0.0 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let n =
        if mx <= 0.0 || (not (Float.is_finite v)) || v <= 0.0 then 0
        else int_of_float (Float.round (v /. mx *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s %s\n" label_w label (String.make n '#') (format_value v)))
    rows;
  Buffer.contents buf

let mean_abs_log_ratio t =
  let total = ref 0.0 and n = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          match c.paper with
          | Some p when p > 0.0 && c.measured > 0.0 ->
            total := !total +. Float.abs (log (c.measured /. p));
            incr n
          | _ -> ())
        r.cells)
    t.rows;
  if !n = 0 then 0.0 else !total /. float_of_int !n
