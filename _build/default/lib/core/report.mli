(** Table rendering for the reproduced experiments.

    Every cell carries the measured value and, when available, the
    paper's reported value, so a rendered table reads
    [measured \[paper\]] side by side. *)

type cell = { measured : float; paper : float option }

type row = { row_label : string; cells : cell list }

type table = {
  id : string;  (** e.g. "Table 3" *)
  title : string;
  columns : string list;
  rows : row list;
  notes : string list;
}

val cell : ?paper:float -> float -> cell

val pp : Format.formatter -> table -> unit

val to_string : table -> string

val to_csv : table -> string
(** Machine-readable dump: [row,column,measured,paper]. *)

val ascii_bars : ?width:int -> (string * float) list -> string
(** Render labelled values as a horizontal ASCII bar chart (longest bar
    = [width], default 50 columns).  Used by the bench harness to show
    sweep shapes (log-disk scaling, buffer sweeps) at a glance.
    Non-positive and non-finite values render as empty bars. *)

val mean_abs_log_ratio : table -> float
(** Shape metric: mean over cells (with paper values > 0) of
    [|log (measured / paper)|].  0 = perfect reproduction; 0.7 ~ a 2x
    average discrepancy. *)
