(* Quickstart: simulate the paper's database machine under parallel
   logging, then run the same recovery mechanism "for real" on the
   functional storage engine, crash it, and recover.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* -- 1. The simulation study -------------------------------------- *)
  print_endline "=== Simulating the multiprocessor database machine ===";
  let scenario = Dbm_core.Scenario.Conventional_random in
  let machine = Dbm_core.Scenario.machine_config scenario in
  let workload =
    Dbm_workload.Workload.generate (Dbm_core.Scenario.workload_config ~n_transactions:20 scenario)
  in
  let bare =
    Dbm_machine.Machine.run ~config:machine
      ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
      ~workload
  in
  let logged =
    Dbm_machine.Machine.run ~config:machine
      ~make_arch:(Dbm_recovery.Logging.make Dbm_recovery.Logging.default)
      ~workload
  in
  Printf.printf "%-28s %12s %12s\n" "" "bare machine" "with logging";
  Printf.printf "%-28s %12.2f %12.2f\n" "execution time/page (ms)"
    bare.Dbm_machine.Results.exec_ms_per_page logged.Dbm_machine.Results.exec_ms_per_page;
  Printf.printf "%-28s %12.1f %12.1f\n" "txn completion time (ms)"
    bare.Dbm_machine.Results.mean_completion_ms logged.Dbm_machine.Results.mean_completion_ms;
  Printf.printf
    "\nThe paper's headline holds: collecting recovery data by parallel logging\n\
     overlaps with data processing and barely affects throughput.\n\n";

  (* -- 2. The functional engine ------------------------------------- *)
  print_endline "=== The same mechanism as a real storage engine ===";
  let module E = Dbm_storage.Engine_log in
  let store = E.create ~n_keys:16 () in
  let t = E.begin_txn store in
  E.put t 0 "committed before the crash";
  E.commit t;
  let t = E.begin_txn store in
  E.put t 1 "uncommitted when the lights went out";
  Printf.printf "key 1 inside the txn: %s\n"
    (Option.value (E.get t 1) ~default:"<absent>");
  E.crash_and_recover store;
  let t = E.begin_txn store in
  Printf.printf "after crash+recovery:\n";
  Printf.printf "  key 0 = %s\n" (Option.value (E.get t 0) ~default:"<absent>");
  Printf.printf "  key 1 = %s\n" (Option.value (E.get t 1) ~default:"<absent>");
  E.abort t;
  List.iter (fun (k, v) -> Printf.printf "  %s = %d\n" k v) (E.stats store)
