examples/quickstart.ml: Dbm_core Dbm_machine Dbm_recovery Dbm_storage Dbm_workload List Option Printf
