examples/crash_torture.ml: Array Dbm_storage Dbm_util List Printf Sys
