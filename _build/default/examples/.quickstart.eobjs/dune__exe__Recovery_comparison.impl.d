examples/recovery_comparison.ml: Dbm_core Dbm_machine Dbm_recovery Dbm_workload List Printf
