examples/quickstart.mli:
