examples/bank_transfers.ml: Dbm_storage Dbm_util List Option Printf
