examples/differential_queries.mli:
