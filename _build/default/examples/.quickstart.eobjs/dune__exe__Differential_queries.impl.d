examples/differential_queries.ml: Dbm_relation Dbm_util List Printf
