examples/parallel_logging.ml: Dbm_core Dbm_machine Dbm_recovery Dbm_workload List Option Printf
