examples/parallel_logging.mli:
