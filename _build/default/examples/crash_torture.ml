(* Crash torture: hammer every storage engine with random operations
   and frequent crashes, continuously cross-checking against the
   in-memory model.  A longer-running, human-readable version of the
   qcheck crash properties in the test suite.

   Run with: dune exec examples/crash_torture.exe [-- <rounds>] *)

module Kv = Dbm_storage.Kv

let n_keys = 48

let torture (module E : Kv.S) ~rounds ~seed =
  let rng = Dbm_util.Prng.create seed in
  let engine = E.create ~n_keys () in
  let model = Kv.Model.create ~n_keys () in
  let ops = ref 0 and crashes = ref 0 and checkpoints = ref 0 in
  let mismatches = ref 0 in
  let verify () =
    let te = E.begin_txn engine and tm = Kv.Model.begin_txn model in
    for k = 0 to n_keys - 1 do
      if E.get te k <> Kv.Model.get tm k then incr mismatches
    done;
    E.abort te;
    Kv.Model.abort tm
  in
  for _ = 1 to rounds do
    let te = E.begin_txn engine and tm = Kv.Model.begin_txn model in
    let n_ops = 1 + Dbm_util.Prng.int rng 8 in
    for _ = 1 to n_ops do
      incr ops;
      let k = Dbm_util.Prng.int rng n_keys in
      if Dbm_util.Prng.bool rng ~p:0.75 then begin
        let v = Printf.sprintf "v%d" (Dbm_util.Prng.int rng 1000) in
        E.put te k v;
        Kv.Model.put tm k v
      end
      else begin
        E.delete te k;
        Kv.Model.delete tm k
      end
    done;
    (match Dbm_util.Prng.int rng 10 with
    | 0 | 1 ->
      (* die mid-transaction *)
      E.crash_and_recover engine;
      Kv.Model.crash_and_recover model;
      incr crashes;
      verify ()
    | 2 ->
      E.abort te;
      Kv.Model.abort tm
    | 3 ->
      E.commit te;
      Kv.Model.commit tm;
      E.checkpoint engine;
      incr checkpoints
    | _ ->
      E.commit te;
      Kv.Model.commit tm;
      if Dbm_util.Prng.bool rng ~p:0.3 then begin
        E.crash_and_recover engine;
        Kv.Model.crash_and_recover model;
        incr crashes;
        verify ()
      end)
  done;
  verify ();
  Printf.printf "%-22s %5d ops, %3d crashes, %3d checkpoints: %s\n" E.engine_name !ops !crashes
    !checkpoints
    (if !mismatches = 0 then "consistent with the model"
     else Printf.sprintf "%d MISMATCHES" !mismatches);
  !mismatches = 0

let engines : (module Kv.S) list =
  [
    (module Dbm_storage.Engine_log);
    (module Dbm_storage.Engine_shadow);
    (module Dbm_storage.Engine_versel);
    (module Dbm_storage.Engine_overwrite.No_undo);
    (module Dbm_storage.Engine_overwrite.No_redo);
    (module Dbm_storage.Engine_diff);
  ]

let () =
  let rounds =
    if Array.length Sys.argv > 1 then max 1 (int_of_string Sys.argv.(1)) else 400
  in
  Printf.printf "Crash-torturing every engine for %d transaction rounds:\n\n" rounds;
  let ok = List.for_all (fun e -> torture e ~rounds ~seed:99) engines in
  print_newline ();
  if ok then print_endline "All engines match the executable specification."
  else begin
    print_endline "AT LEAST ONE ENGINE DIVERGED FROM THE SPECIFICATION.";
    exit 1
  end
