(* Parallel logging: sweep the number of log disks and the
   log-processor selection policy on the big (Table 3) machine with
   physical logging — the regime where a single log disk becomes the
   bottleneck and the WAL rule backs dirty pages up into the cache.

   Run with: dune exec examples/parallel_logging.exe *)

module Logging = Dbm_recovery.Logging
module Results = Dbm_machine.Results

let () =
  let machine = Dbm_core.Scenario.table3_machine in
  let workload =
    Dbm_workload.Workload.generate (Dbm_core.Scenario.table3_workload ~n_transactions:20 ())
  in
  let policies =
    [
      ("cyclic", Logging.Cyclic);
      ("random", Logging.Random);
      ("qp-mod", Logging.Qp_mod);
      ("txn-mod", Logging.Txn_mod);
    ]
  in
  Printf.printf
    "75 query processors, 2 parallel-access data disks, 150 cache frames,\n\
     sequential transactions, PHYSICAL logging (two image pages per update).\n\n";
  Printf.printf "%-10s %12s %14s %12s %16s\n" "log disks" "policy" "exec/page ms" "log util"
    "frames blocked";
  let bare =
    Dbm_machine.Machine.run ~config:machine
      ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
      ~workload
  in
  for n = 1 to 5 do
    List.iter
      (fun (pname, selection) ->
        let r =
          Dbm_machine.Machine.run ~config:machine
            ~make_arch:
              (Logging.make
                 { Logging.default with Logging.n_log_processors = n; selection;
                   mode = Logging.Physical })
            ~workload
        in
        let util = Option.value (Results.find_extra r "log_disk_util") ~default:0.0 in
        Printf.printf "%-10d %12s %14.2f %12.2f %16.1f\n" n pname r.Results.exec_ms_per_page
          util r.Results.mean_frames_blocked_on_log)
      policies
  done;
  Printf.printf "%-10s %12s %14.2f\n" "none" "-" bare.Results.exec_ms_per_page;
  print_newline ();
  print_endline
    "Watch for: one log disk saturates and blocks most of the cache; adding log\n\
     disks recovers the lost throughput; txn-mod selection lags because it\n\
     concentrates each transaction's fragments on a single log processor."
