(* Compare every recovery architecture on the paper's four machine
   configurations — a miniature of Table 12, at a size that runs in a
   few seconds.

   Run with: dune exec examples/recovery_comparison.exe *)

module Scenario = Dbm_core.Scenario
module Results = Dbm_machine.Results

let architectures =
  [
    ("bare", fun _ -> Dbm_machine.Arch.bare);
    ("logging", Dbm_recovery.Logging.make Dbm_recovery.Logging.default);
    ("shadow (1 PT)", Dbm_recovery.Shadow.make Dbm_recovery.Shadow.default_thru);
    ("overwriting", Dbm_recovery.Shadow.make Dbm_recovery.Shadow.overwrite_no_undo);
    ("diff file", Dbm_recovery.Diff_file.make Dbm_recovery.Diff_file.default);
  ]

let () =
  let n_transactions = 20 in
  Printf.printf
    "Execution time per page (ms), %d transactions per configuration:\n\n" n_transactions;
  Printf.printf "%-26s" "";
  List.iter (fun (name, _) -> Printf.printf "%14s" name) architectures;
  print_newline ();
  List.iter
    (fun sc ->
      Printf.printf "%-26s" (Scenario.name sc);
      let machine = Scenario.machine_config sc in
      let workload =
        Dbm_workload.Workload.generate (Scenario.workload_config ~n_transactions sc)
      in
      List.iter
        (fun (_, make_arch) ->
          let r = Dbm_machine.Machine.run ~config:machine ~make_arch ~workload in
          Printf.printf "%14.2f" r.Results.exec_ms_per_page)
        architectures;
      print_newline ())
    Scenario.all;
  print_newline ();
  print_endline
    "Expected shape (the paper's Table 12): logging ~ bare everywhere; shadow adds a\n\
     little on random loads; overwriting hurts conventional disks badly but is fine on\n\
     parallel-access + sequential; differential files hurt most where the machine was\n\
     fastest.  Regenerate the full tables with: dune exec bench/main.exe"
