(* Bank transfers under crashes, on every recovery engine.

   N accounts each start with 100 units; random transfers move money
   between accounts inside transactions; the machine crashes at random
   points.  After every crash+recovery the invariant "total balance =
   N * 100" must hold — atomic transactions cannot create or destroy
   money, whichever recovery architecture is underneath.

   Run with: dune exec examples/bank_transfers.exe *)

module Kv = Dbm_storage.Kv

let n_accounts = 32

let initial = 100

let balance_of s = int_of_string s

let run_bank (module E : Kv.S) ~seed =
  let rng = Dbm_util.Prng.create seed in
  let store = E.create ~n_keys:n_accounts () in
  (* deposit the opening balances *)
  let t = E.begin_txn store in
  for a = 0 to n_accounts - 1 do
    E.put t a (string_of_int initial)
  done;
  E.commit t;
  let crashes = ref 0 and commits = ref 0 and aborts = ref 0 in
  for _ = 1 to 200 do
    let t = E.begin_txn store in
    let src = Dbm_util.Prng.int rng n_accounts in
    let dst = Dbm_util.Prng.int rng n_accounts in
    let amount = 1 + Dbm_util.Prng.int rng 20 in
    let read a = balance_of (Option.value (E.get t a) ~default:"0") in
    if src <> dst && read src >= amount then begin
      E.put t src (string_of_int (read src - amount));
      E.put t dst (string_of_int (read dst + amount));
      (* sometimes the system dies mid-transaction, sometimes the user
         changes their mind, usually the transfer commits *)
      match Dbm_util.Prng.int rng 10 with
      | 0 ->
        E.crash_and_recover store;
        incr crashes
      | 1 ->
        E.abort t;
        incr aborts
      | _ ->
        E.commit t;
        incr commits
    end
    else E.abort t
  done;
  (* audit *)
  let t = E.begin_txn store in
  let total = ref 0 in
  for a = 0 to n_accounts - 1 do
    total := !total + balance_of (Option.value (E.get t a) ~default:"0")
  done;
  E.abort t;
  let expected = n_accounts * initial in
  Printf.printf "%-22s %4d transfers, %2d aborts, %2d crashes: total %5d (%s)\n"
    E.engine_name !commits !aborts !crashes !total
    (if !total = expected then "conserved" else "LOST MONEY!");
  !total = expected

let engines : (module Kv.S) list =
  [
    (module Dbm_storage.Engine_log);
    (module Dbm_storage.Engine_shadow);
    (module Dbm_storage.Engine_versel);
    (module Dbm_storage.Engine_overwrite.No_undo);
    (module Dbm_storage.Engine_overwrite.No_redo);
    (module Dbm_storage.Engine_diff);
  ]

let () =
  Printf.printf "Transferring money between %d accounts with crash injection:\n\n" n_accounts;
  let ok = List.for_all (fun e -> run_bank e ~seed:2024) engines in
  print_newline ();
  if ok then print_endline "Every recovery architecture conserved the money."
  else begin
    print_endline "INVARIANT VIOLATION — a recovery engine lost or created money.";
    exit 1
  end
