(* Differential-file query processing, for real: build a relation as
   (B u A) - D, run queries under the basic and optimal strategies, and
   watch the work counters that Table 9's cost model abstracts.

   Run with: dune exec examples/differential_queries.exe *)

module R = Dbm_relation.Diff_relation

let () =
  (* A 400-tuple base relation, then 10% churn through the A and D files. *)
  let rng = Dbm_util.Prng.create 5 in
  let base = List.init 400 (fun i -> { R.key = i; value = Printf.sprintf "rec-%04d" i }) in
  let r = R.create ~tuples_per_page:8 base in
  for _ = 1 to 40 do
    let k = Dbm_util.Prng.int rng 400 in
    if Dbm_util.Prng.bool rng ~p:0.7 then R.insert r { R.key = k; value = "updated" }
    else R.delete r ~key:k
  done;
  Printf.printf "relation: %d base pages, %d A records, %d D records\n\n" (R.base_pages r)
    (R.a_size r) (R.d_size r);

  let report title result =
    let s = R.last_stats r in
    Printf.printf "%-34s %4d tuples, %3d pages scanned, %3d set-differences (%d qualifying)\n"
      title (List.length result) s.R.pages_scanned s.R.setdiff_ops s.R.qualifying_pages
  in
  let broad t = t.R.key mod 2 = 0 in
  let narrow t = t.R.key / 8 = 21 in

  print_endline "broad query (half the relation qualifies):";
  report "  basic strategy" (R.select r ~strategy:R.Basic broad);
  report "  optimal strategy" (R.select r ~strategy:R.Optimal broad);
  print_newline ();
  print_endline "narrow query (one base page qualifies):";
  report "  basic strategy" (R.select r ~strategy:R.Basic narrow);
  report "  optimal strategy" (R.select r ~strategy:R.Optimal narrow);
  print_newline ();

  (* The optimal strategy's saving is exactly the non-qualifying-page
     fraction: the `qualify_prob` knob of the simulator's differential
     architecture (lib/recovery/diff_file.ml) is this ratio. *)
  ignore (R.select r ~strategy:R.Optimal broad);
  let s = R.last_stats r in
  Printf.printf "measured qualification fraction on the broad query: %.2f\n\n"
    (float_of_int s.R.qualifying_pages /. float_of_int s.R.pages_scanned);

  (* Parallel evaluation partitions the pages over the query processors
     (the paper's companion report [21]); total work is unchanged and
     the result is identical. *)
  let serial = R.select r ~strategy:R.Optimal broad in
  let parallel = R.select_parallel r ~workers:8 ~strategy:R.Optimal broad in
  Printf.printf "parallel (8 workers) equals serial: %b\n" (serial = parallel);

  (* Merging folds the differential files back into the base. *)
  let merged = R.merge r in
  Printf.printf "after merge: %d base pages, %d A records, %d D records (view unchanged: %b)\n"
    (R.base_pages merged) (R.a_size merged) (R.d_size merged)
    (R.materialize merged = R.materialize r)
