(* The benchmark harness.

   Part 1 regenerates every table of the paper's evaluation section
   (Tables 1-12 — the paper has no figures) and prints measured values
   next to the paper's, with a per-table shape score.

   Part 2 runs Bechamel micro-benchmarks of the substrate primitives —
   one Test.make per reproduced table, timing the dominant primitive of
   that experiment — plus the storage engines' commit paths. *)

let separator title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables                                          *)
(* ------------------------------------------------------------------ *)

let run_tables () =
  separator "Reproduction of Agrawal & DeWitt (1985), Tables 1-12";
  Printf.printf "(each cell: measured [paper]; all times in ms)\n";
  let scores =
    List.map
      (fun t ->
        print_newline ();
        print_string (Dbm_core.Report.to_string t);
        let score = Dbm_core.Report.mean_abs_log_ratio t in
        Printf.printf "shape score (mean |log measured/paper|): %.3f\n" score;
        (t.Dbm_core.Report.id, score))
      (Dbm_core.Tables.all ())
  in
  separator "Shape summary";
  List.iter (fun (id, s) -> Printf.printf "%-9s %.3f\n" id s) scores;
  let mean =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 scores /. float_of_int (List.length scores)
  in
  Printf.printf "%-9s %.3f  (0 = exact; 0.7 ~ 2x average miss)\n" "overall" mean

(* Sweep shapes, at a glance. *)
let run_charts () =
  separator "Sweep shapes";
  let cell_of table ~row ~col =
    let t = Dbm_core.Tables.by_id table in
    let r = List.nth t.Dbm_core.Report.rows row in
    (List.nth r.Dbm_core.Report.cells col).Dbm_core.Report.measured
  in
  Printf.printf "\nTable 3: execution time per page vs number of log disks (cyclic):\n";
  print_string
    (Dbm_core.Report.ascii_bars
       (List.init 5 (fun i ->
            (Printf.sprintf "%d log disk%s" (i + 1) (if i > 0 then "s" else ""),
             cell_of 3 ~row:i ~col:0))
       @ [ ("no logging", cell_of 3 ~row:5 ~col:0) ]));
  Printf.printf "\nTable 11: execution time per page vs differential size (Conventional-Random):\n";
  print_string
    (Dbm_core.Report.ascii_bars
       (List.mapi
          (fun i label -> (label, cell_of 11 ~row:0 ~col:i))
          [ "bare"; "10%"; "15%"; "20%" ]))

let run_ablations () =
  separator "Ablations (design-choice experiments beyond the paper)";
  List.iter
    (fun t ->
      print_newline ();
      print_string (Dbm_core.Report.to_string t))
    (Dbm_core.Ablations.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Table 1/2 dominant primitive: assembling and writing log pages ->
   the event engine + drive service path. *)
let bench_event_engine =
  Test.make ~name:"table1-2: event engine schedule+run (1k events)"
    (Staged.stage (fun () ->
         let e = Dbm_sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Dbm_sim.Engine.schedule e ~delay:(float_of_int (i mod 17)) (fun () -> ()))
         done;
         Dbm_sim.Engine.run e))

(* Table 3: log fragment distribution -> PRNG + selection. *)
let bench_prng =
  Test.make ~name:"table3: prng draws (10k)"
    (Staged.stage (fun () ->
         let rng = Dbm_util.Prng.create 1 in
         let acc = ref 0 in
         for _ = 1 to 10_000 do
           acc := !acc + Dbm_util.Prng.int rng 5
         done;
         ignore !acc))

(* Table 4/5: page-table indirection -> drive access-time model. *)
let bench_drive_model =
  Test.make ~name:"table4-5: conventional drive service (256 pages)"
    (Staged.stage (fun () ->
         let e = Dbm_sim.Engine.create () in
         let d =
           Dbm_disk.Drive.create e ~params:Dbm_disk.Params.ibm_3350
             ~layout:Dbm_disk.Layout.Sequential ~name:"bench" ()
         in
         for p = 0 to 255 do
           Dbm_disk.Drive.submit d Dbm_disk.Drive.Read ~pages:[ p * 31 mod 60000 ] (fun () -> ())
         done;
         Dbm_sim.Engine.run e))

(* Table 6: page-table buffer -> LRU operations. *)
let bench_lru =
  Test.make ~name:"table6: lru find/add (10k ops, cap 50)"
    (Staged.stage (fun () ->
         let l = Dbm_util.Lru.create ~capacity:50 () in
         for i = 0 to 9_999 do
           let k = i * 7919 mod 200 in
           match Dbm_util.Lru.find l k with
           | Some _ -> ()
           | None -> ignore (Dbm_util.Lru.add l k k)
         done))

(* Table 7/8: scrambled placement -> layout permutation. *)
let bench_layout =
  Test.make ~name:"table7-8: scrambled locate (10k pages)"
    (Staged.stage (fun () ->
         let layout = Dbm_disk.Layout.Scrambled 11 in
         let acc = ref 0 in
         for p = 0 to 9_999 do
           acc :=
             !acc + (Dbm_disk.Layout.locate Dbm_disk.Params.ibm_3350 layout ~page:p).Dbm_disk.Layout.cylinder
         done;
         ignore !acc))

(* Table 9-11: differential files -> page record set operations. *)
let bench_page_ops =
  Test.make ~name:"table9-11: page update/lookup (1k ops)"
    (Staged.stage (fun () ->
         let p = Dbm_storage.Page.empty ~page_size:2048 in
         for i = 0 to 999 do
           Dbm_storage.Page.update p ~key:(i mod 16) ~value:(Some "value");
           ignore (Dbm_storage.Page.lookup p ~key:(i mod 16))
         done))

(* Table 12 (grand comparison): a whole miniature simulation run. *)
let bench_mini_simulation =
  Test.make ~name:"table12: full machine run (5 txns)"
    (Staged.stage (fun () ->
         let machine = { Dbm_machine.Config.paper_base with Dbm_machine.Config.db_pages = 16384 } in
         let workload =
           Dbm_workload.Workload.generate
             {
               Dbm_workload.Workload.default with
               Dbm_workload.Workload.n_transactions = 5;
               max_pages = 40;
               db_pages = 16384;
             }
         in
         ignore
           (Dbm_machine.Machine.run ~config:machine
              ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
              ~workload)))

(* Storage-engine commit paths (the functional counterparts). *)
let bench_engine (module E : Dbm_storage.Kv.S) =
  Test.make ~name:(Printf.sprintf "engine %s: 32-put txn commit" E.engine_name)
    (Staged.stage (fun () ->
         let e = E.create ~n_keys:64 () in
         let t = E.begin_txn e in
         for k = 0 to 31 do
           E.put t k "benchmark-value"
         done;
         E.commit t))

let bench_relation_select =
  Test.make ~name:"relation: optimal select over (B u A) - D (400 tuples)"
    (Staged.stage
       (let r =
          Dbm_relation.Diff_relation.create ~tuples_per_page:8
            (List.init 400 (fun i -> { Dbm_relation.Diff_relation.key = i; value = "v" }))
        in
        List.iteri
          (fun i () ->
            if i mod 3 = 0 then Dbm_relation.Diff_relation.delete r ~key:(i * 7 mod 400)
            else
              Dbm_relation.Diff_relation.insert r
                { Dbm_relation.Diff_relation.key = i * 11 mod 400; value = "u" })
          (List.init 40 (fun _ -> ()));
        fun () ->
          ignore
            (Dbm_relation.Diff_relation.select r ~strategy:Dbm_relation.Diff_relation.Optimal
               (fun t -> t.Dbm_relation.Diff_relation.key mod 7 = 0))))

let bench_wal_codec =
  Test.make ~name:"wal encode+decode (full-page images)"
    (Staged.stage (fun () ->
         let r =
           Dbm_storage.Wal.Update
             {
               lsn = 12;
               txn = 3;
               page = 9;
               before = Bytes.make 1024 'b';
               after = Bytes.make 1024 'a';
             }
         in
         ignore (Dbm_storage.Wal.decode (Dbm_storage.Wal.encode r))))

let benchmarks =
  [
    bench_event_engine;
    bench_prng;
    bench_drive_model;
    bench_lru;
    bench_layout;
    bench_page_ops;
    bench_mini_simulation;
    bench_relation_select;
    bench_wal_codec;
    bench_engine (module Dbm_storage.Engine_log);
    bench_engine (module Dbm_storage.Engine_shadow);
    bench_engine (module Dbm_storage.Engine_versel);
    bench_engine (module Dbm_storage.Engine_overwrite.No_undo);
    bench_engine (module Dbm_storage.Engine_overwrite.No_redo);
    bench_engine (module Dbm_storage.Engine_diff);
  ]

let run_benchmarks () =
  separator "Micro-benchmarks (Bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 200) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-55s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-55s (no estimate)\n" name)
        ols)
    benchmarks

let () =
  let t0 = Unix.gettimeofday () in
  run_tables ();
  run_charts ();
  run_ablations ();
  run_benchmarks ();
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
