bin/dbmsim.mli:
