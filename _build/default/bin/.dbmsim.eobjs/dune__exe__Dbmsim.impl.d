bin/dbmsim.ml: Arg Array Char Cmd Cmdliner Dbm_core Dbm_disk Dbm_machine Dbm_recovery Dbm_sim Dbm_storage Dbm_util Dbm_workload Filename Format List Option Printf String Sys Term
