bin/calibrate.mli:
