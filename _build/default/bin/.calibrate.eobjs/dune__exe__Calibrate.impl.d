bin/calibrate.ml: Dbm_core Dbm_machine Dbm_recovery Experiment List Option Printf Scenario
