(* Behavioural tests of the simulated recovery architectures: WAL
   blocking, log-processor selection, page-table buffering, overwriting
   disk traffic, differential-file overheads. *)

module Config = Dbm_machine.Config
module Machine = Dbm_machine.Machine
module Arch = Dbm_machine.Arch
module Results = Dbm_machine.Results
module W = Dbm_workload.Workload
module Logging = Dbm_recovery.Logging
module Shadow = Dbm_recovery.Shadow
module Diff_file = Dbm_recovery.Diff_file
module Version_select = Dbm_recovery.Version_select

let check = Alcotest.check

let machine = { Config.paper_base with Config.db_pages = 16384 }

let workload ?(pattern = W.Random_access) ?(n = 12) ?(seed = 3) () =
  W.generate
    { W.default with W.n_transactions = n; pattern; db_pages = 16384; max_pages = 60; seed }

let run ?(machine = machine) ?pattern ?n make_arch =
  Machine.run ~config:machine ~make_arch ~workload:(workload ?pattern ?n ())

let extra key (r : Results.t) = Option.value (Results.find_extra r key) ~default:0.0

(* --- logging ----------------------------------------------------------- *)

let test_logging_completes () =
  let r = run (Logging.make Logging.default) in
  check Alcotest.int "all txns" 12 r.Results.n_transactions

let test_logging_writes_log_pages () =
  let r = run (Logging.make Logging.default) in
  check Alcotest.bool "log pages written" true (extra "log_pages_written" r > 0.0)

let test_physical_logs_two_pages_per_update () =
  let txns = workload () in
  let r =
    Machine.run ~config:machine
      ~make_arch:(Logging.make { Logging.default with Logging.mode = Logging.Physical })
      ~workload:txns
  in
  let writes = float_of_int (W.total_writes txns) in
  check (Alcotest.float 0.1) "2 log pages per update" (2.0 *. writes) (extra "log_pages_written" r)

let test_logical_fewer_log_pages_than_physical () =
  let logical = run (Logging.make Logging.default) in
  let physical =
    run (Logging.make { Logging.default with Logging.mode = Logging.Physical })
  in
  check Alcotest.bool "assembly amortizes log volume" true
    (extra "log_pages_written" logical < extra "log_pages_written" physical /. 4.0)

let test_wal_blocks_frames () =
  let r = run (Logging.make Logging.default) in
  check Alcotest.bool "some frames wait for the log" true
    (r.Results.mean_frames_blocked_on_log > 0.0)

let test_txn_mod_concentrates () =
  (* With 3 log disks and txn-mod selection, all updates of a txn hit
     one disk: per-disk utilizations should be more skewed than cyclic. *)
  let spread selection =
    let r =
      run
        (Logging.make
           { Logging.default with Logging.n_log_processors = 3; selection;
             mode = Logging.Physical })
    in
    let utils = List.init 3 (fun i -> extra (Printf.sprintf "log_disk_util_%d" i) r) in
    let mx = List.fold_left Float.max 0.0 utils
    and mn = List.fold_left Float.min infinity utils in
    mx -. mn
  in
  check Alcotest.bool "txn-mod is more skewed than cyclic" true
    (spread Logging.Txn_mod >= spread Logging.Cyclic)

let test_more_log_disks_never_slower () =
  let exec n =
    (run
       (Logging.make
          { Logging.default with Logging.n_log_processors = n; mode = Logging.Physical }))
      .Results.exec_ms_per_page
  in
  check Alcotest.bool "3 log disks <= 1 log disk" true (exec 3 <= exec 1 +. 0.2)

let test_unbatched_release_works () =
  let r =
    run (Logging.make { Logging.default with Logging.batch_release = false })
  in
  check Alcotest.int "completes with per-update release" 12 r.Results.n_transactions

let test_via_cache_routing_works () =
  let r = run (Logging.make { Logging.default with Logging.routing = Logging.Via_cache }) in
  check Alcotest.int "completes via cache" 12 r.Results.n_transactions

let test_commit_forces_partial_pages () =
  let r = run (Logging.make Logging.default) in
  check Alcotest.bool "commit forces happen" true (extra "log_forces" r > 0.0)

(* --- shadow ------------------------------------------------------------ *)

let test_shadow_pt_reads_happen () =
  let r = run (Shadow.make Shadow.default_thru) in
  check Alcotest.bool "pt reads" true (extra "pt_reads" r > 0.0);
  check Alcotest.bool "pt writes at commit" true (extra "pt_writes" r > 0.0)

let test_shadow_bigger_buffer_hits_more () =
  let small = run (Shadow.make (Shadow.thru ~n_pt_processors:1 ~buffer_pages:2)) in
  let large = run (Shadow.make (Shadow.thru ~n_pt_processors:1 ~buffer_pages:50)) in
  check Alcotest.bool "hit rate grows with buffer" true
    (extra "pt_buffer_hit_rate" large > extra "pt_buffer_hit_rate" small)

let test_shadow_two_pt_processors_split_load () =
  let r = run (Shadow.make (Shadow.thru ~n_pt_processors:2 ~buffer_pages:10)) in
  check Alcotest.bool "disk 0 used" true (extra "pt_disk_util_0" r > 0.0);
  check Alcotest.bool "disk 1 used" true (extra "pt_disk_util_1" r > 0.0)

let test_shadow_sequential_needs_few_pt_pages () =
  let r = run ~pattern:W.Sequential (Shadow.make Shadow.default_thru) in
  (* a 60-page sequential run touches at most 2 page-table pages, so
     page-table disk reads are rare relative to data pages *)
  check Alcotest.bool "few pt reads" true
    (extra "pt_reads" r < 0.1 *. float_of_int r.Results.pages_processed);
  check Alcotest.bool "mostly buffer hits" true (extra "pt_buffer_hit_rate" r > 0.5)

let test_overwrite_three_ops_per_update () =
  let txns = workload () in
  let r =
    Machine.run ~config:machine
      ~make_arch:(Shadow.make Shadow.overwrite_no_undo)
      ~workload:txns
  in
  let w = float_of_int (W.total_writes txns) in
  check (Alcotest.float 0.1) "scratch writes" w (extra "scratch_writes" r);
  check (Alcotest.float 0.1) "scratch reads" w (extra "scratch_reads" r);
  check (Alcotest.float 0.1) "install writes" w (extra "install_writes" r)

let test_overwrite_slower_than_bare () =
  let bare = run (fun _ -> Arch.bare) in
  let ow = run (Shadow.make Shadow.overwrite_no_undo) in
  check Alcotest.bool "overwriting costs disk time" true
    (ow.Results.exec_ms_per_page > bare.Results.exec_ms_per_page)

let test_overwrite_no_redo_runs () =
  let r = run (Shadow.make Shadow.overwrite_no_redo) in
  check Alcotest.int "completes" 12 r.Results.n_transactions;
  check Alcotest.bool "shadows saved" true (extra "scratch_writes" r > 0.0)

let test_scrambled_hurts_sequential () =
  let txns = workload ~pattern:W.Sequential () in
  let clustered =
    Machine.run ~config:machine ~make_arch:(Shadow.make Shadow.default_thru) ~workload:txns
  in
  let scrambled =
    Machine.run
      ~config:(Config.with_scramble 17 machine)
      ~make_arch:(Shadow.make Shadow.default_thru) ~workload:txns
  in
  check Alcotest.bool "scrambling destroys sequentiality" true
    (scrambled.Results.exec_ms_per_page > 1.5 *. clustered.Results.exec_ms_per_page)

(* --- differential files -------------------------------------------------- *)

let test_diff_reads_extra_pages () =
  let txns = workload () in
  let r =
    Machine.run ~config:machine ~make_arch:(Diff_file.make Diff_file.default) ~workload:txns
  in
  let expected = 0.10 *. float_of_int (W.total_pages txns) in
  let got = extra "diff_pages_read" r in
  check Alcotest.bool "~10% extra pages" true
    (got > 0.8 *. expected && got < 1.2 *. expected)

let test_diff_writes_fraction_of_updates () =
  let txns = workload () in
  let r =
    Machine.run ~config:machine ~make_arch:(Diff_file.make Diff_file.default) ~workload:txns
  in
  let updates = float_of_int (W.total_writes txns) in
  let out = extra "output_pages_written" r in
  (* ~10% of an output page per update, rounded up per transaction *)
  check Alcotest.bool "far fewer output pages than updates" true (out < 0.5 *. updates);
  check Alcotest.bool "but at least one per updating txn" true (out >= 1.0)

let test_diff_basic_slower_than_optimal () =
  let basic = run (Diff_file.make Diff_file.basic) in
  let optimal = run (Diff_file.make Diff_file.default) in
  check Alcotest.bool "basic is slower" true
    (basic.Results.exec_ms_per_page > optimal.Results.exec_ms_per_page)

let test_diff_bigger_files_slower () =
  let at size =
    (run (Diff_file.make { Diff_file.default with Diff_file.size_fraction = size }))
      .Results.exec_ms_per_page
  in
  let s10 = at 0.10 and s20 = at 0.20 in
  check Alcotest.bool "20% slower than 10%" true (s20 > s10)

let test_diff_config_validation () =
  (match run (Diff_file.make { Diff_file.default with Diff_file.output_fraction = 0.0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "output fraction 0 accepted");
  match run (Diff_file.make { Diff_file.default with Diff_file.size_fraction = -0.1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative size accepted"

(* --- version selection ---------------------------------------------------- *)

let test_version_select_simulated () =
  let bare = run (fun _ -> Arch.bare) in
  let vs = run Version_select.make_sim in
  check Alcotest.bool "version selection slower than bare" true
    (vs.Results.exec_ms_per_page > bare.Results.exec_ms_per_page);
  (* the penalty is worst where transfer time dominates: sequential on
     parallel-access drives *)
  let bare_seq =
    Machine.run
      ~config:(Config.with_parallel_disks machine)
      ~make_arch:(fun _ -> Arch.bare)
      ~workload:(workload ~pattern:W.Sequential ())
  in
  let vs_seq =
    Machine.run
      ~config:(Config.with_parallel_disks machine)
      ~make_arch:Version_select.make_sim
      ~workload:(workload ~pattern:W.Sequential ())
  in
  check Alcotest.bool "large relative penalty on par-seq" true
    (vs_seq.Results.exec_ms_per_page > 1.5 *. bare_seq.Results.exec_ms_per_page)

let test_version_select_analysis () =
  let a = Version_select.analyze Dbm_disk.Params.ibm_3350 in
  check Alcotest.bool "penalty is one extra transfer" true
    (a.Version_select.versioned_read_ms -. a.Version_select.plain_read_ms -. 3.4 < 1e-9);
  check Alcotest.bool "penalty > 1" true (a.Version_select.read_penalty > 1.0);
  check (Alcotest.float 1e-9) "space doubles" 2.0 a.Version_select.space_overhead;
  check Alcotest.bool "verdict text" true (String.length (Version_select.verdict a) > 0)

let () =
  Alcotest.run "dbm_recovery"
    [
      ( "logging",
        [
          Alcotest.test_case "completes" `Quick test_logging_completes;
          Alcotest.test_case "writes log pages" `Quick test_logging_writes_log_pages;
          Alcotest.test_case "physical: 2 pages/update" `Quick
            test_physical_logs_two_pages_per_update;
          Alcotest.test_case "logical amortizes volume" `Quick
            test_logical_fewer_log_pages_than_physical;
          Alcotest.test_case "WAL blocks frames" `Quick test_wal_blocks_frames;
          Alcotest.test_case "txn-mod concentrates" `Quick test_txn_mod_concentrates;
          Alcotest.test_case "more log disks never slower" `Quick
            test_more_log_disks_never_slower;
          Alcotest.test_case "via-cache routing" `Quick test_via_cache_routing_works;
          Alcotest.test_case "per-update release" `Quick test_unbatched_release_works;
          Alcotest.test_case "commit forces" `Quick test_commit_forces_partial_pages;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "pt traffic" `Quick test_shadow_pt_reads_happen;
          Alcotest.test_case "buffer size helps" `Quick test_shadow_bigger_buffer_hits_more;
          Alcotest.test_case "2 pt processors split load" `Quick
            test_shadow_two_pt_processors_split_load;
          Alcotest.test_case "sequential needs few pt pages" `Quick
            test_shadow_sequential_needs_few_pt_pages;
          Alcotest.test_case "overwrite: 3 ops per update" `Quick
            test_overwrite_three_ops_per_update;
          Alcotest.test_case "overwrite slower than bare" `Quick test_overwrite_slower_than_bare;
          Alcotest.test_case "overwrite no-redo runs" `Quick test_overwrite_no_redo_runs;
          Alcotest.test_case "scrambled hurts sequential" `Quick test_scrambled_hurts_sequential;
        ] );
      ( "diff_file",
        [
          Alcotest.test_case "extra reads" `Quick test_diff_reads_extra_pages;
          Alcotest.test_case "output fraction" `Quick test_diff_writes_fraction_of_updates;
          Alcotest.test_case "basic slower than optimal" `Quick test_diff_basic_slower_than_optimal;
          Alcotest.test_case "bigger files slower" `Quick test_diff_bigger_files_slower;
          Alcotest.test_case "config validation" `Quick test_diff_config_validation;
        ] );
      ( "version_select",
        [
          Alcotest.test_case "analysis" `Quick test_version_select_analysis;
          Alcotest.test_case "simulated" `Quick test_version_select_simulated;
        ] );
    ]
