(* Tests for the disk models: parameters, layouts, drives. *)

module Engine = Dbm_sim.Engine
module Params = Dbm_disk.Params
module Layout = Dbm_disk.Layout
module Drive = Dbm_disk.Drive

let check = Alcotest.check

let p3350 = Params.ibm_3350

(* --- Params ----------------------------------------------------------- *)

let test_geometry () =
  check Alcotest.int "pages per cylinder" 120 (Params.pages_per_cylinder p3350);
  check Alcotest.int "total pages" (555 * 120) (Params.total_pages p3350)

let test_seek_time () =
  check (Alcotest.float 1e-9) "same cylinder" 0.0 (Params.seek_time p3350 ~from_cyl:7 ~to_cyl:7);
  check (Alcotest.float 1e-9) "adjacent" 10.0 (Params.seek_time p3350 ~from_cyl:7 ~to_cyl:8);
  let far = Params.seek_time p3350 ~from_cyl:0 ~to_cyl:554 in
  check Alcotest.bool "max seek near 55ms" true (far > 45.0 && far < 60.0);
  check (Alcotest.float 1e-9) "symmetric" far (Params.seek_time p3350 ~from_cyl:554 ~to_cyl:0)

let test_avg_seek_calibration () =
  let avg = Params.avg_seek p3350 in
  check Alcotest.bool "average seek ~25ms (IBM 3350)" true (avg > 22.0 && avg < 28.0)

let test_rotational_latency () =
  check (Alcotest.float 1e-9) "half revolution" 8.35 (Params.avg_rotational_latency p3350)

(* --- Layout ----------------------------------------------------------- *)

let test_sequential_locate () =
  let loc = Layout.locate p3350 Layout.Sequential ~page:0 in
  check Alcotest.int "cyl 0" 0 loc.Layout.cylinder;
  check Alcotest.int "track 0" 0 loc.Layout.track;
  check Alcotest.int "slot 0" 0 loc.Layout.slot;
  let loc = Layout.locate p3350 Layout.Sequential ~page:5 in
  (* slot-major: page 5 = track 1, slot 1 *)
  check Alcotest.int "track" 1 loc.Layout.track;
  check Alcotest.int "slot" 1 loc.Layout.slot;
  let loc = Layout.locate p3350 Layout.Sequential ~page:120 in
  check Alcotest.int "next cylinder" 1 loc.Layout.cylinder

let test_sequential_adjacency () =
  (* consecutive pages stay in the same cylinder 119 times out of 120 *)
  let same = ref 0 in
  for p = 0 to 118 do
    if Layout.same_cylinder p3350 Layout.Sequential p (p + 1) then incr same
  done;
  check Alcotest.int "clustered" 119 !same

let test_scrambled_bijective () =
  let seen = Hashtbl.create 1024 in
  let layout = Layout.Scrambled 99 in
  for p = 0 to 999 do
    let loc = Layout.locate p3350 layout ~page:p in
    let phys = (loc.Layout.cylinder * 120) + (loc.Layout.track * 4) + loc.Layout.slot in
    if Hashtbl.mem seen phys then Alcotest.failf "collision at page %d" p;
    Hashtbl.replace seen phys ()
  done

let test_scrambled_scatters () =
  let layout = Layout.Scrambled 99 in
  let same = ref 0 in
  for p = 0 to 199 do
    if Layout.same_cylinder p3350 layout p (p + 1) then incr same
  done;
  check Alcotest.bool "adjacent pages land on different cylinders" true (!same < 20)

let test_scrambled_deterministic () =
  let a = Layout.locate p3350 (Layout.Scrambled 7) ~page:42 in
  let b = Layout.locate p3350 (Layout.Scrambled 7) ~page:42 in
  let c = Layout.locate p3350 (Layout.Scrambled 8) ~page:42 in
  check Alcotest.bool "same seed same place" true (a = b);
  check Alcotest.bool "different seed different place" true (a <> c)

let test_slot_positions () =
  (* pages 0..3 on track 0 occupy slots 0..3; pages 4..7 the same slots
     on track 1 -> 8 consecutive pages still span only 4 slots *)
  check Alcotest.int "4 slots" 4
    (Layout.slot_positions p3350 Layout.Sequential [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
  check Alcotest.int "1 slot" 1 (Layout.slot_positions p3350 Layout.Sequential [ 0; 4; 8 ])

let test_permutation_bijective () =
  let n = 1000 in
  let seen = Array.make n false in
  for x = 0 to n - 1 do
    let y = Layout.permutation ~seed:5 ~n x in
    if seen.(y) then Alcotest.failf "permutation collision at %d" x;
    seen.(y) <- true
  done

let test_permutation_out_of_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Layout.permutation: input out of range")
    (fun () -> ignore (Layout.permutation ~seed:1 ~n:10 (-1)))

(* --- Drive ------------------------------------------------------------ *)

let run_read engine drive pages =
  let t0 = Engine.now engine in
  let finished = ref nan in
  Drive.submit drive Drive.Read ~pages (fun () -> finished := Engine.now engine);
  Engine.run engine;
  !finished -. t0

let test_conventional_one_page_per_access () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let t = run_read e d [ 0 ] in
  (* latency + transfer, no seek from cylinder 0 *)
  check (Alcotest.float 1e-6) "single page" (8.35 +. 3.4) t;
  check Alcotest.int "one access" 1 (Drive.access_count d)

let test_conventional_train () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let t = run_read e d [ 0; 1; 2; 3 ] in
  (* four accesses, all same cylinder: 4 * (latency + transfer) *)
  check (Alcotest.float 1e-6) "4-page train" (4.0 *. (8.35 +. 3.4)) t;
  check Alcotest.int "4 accesses" 4 (Drive.access_count d);
  check Alcotest.int "4 pages" 4 (Drive.pages_transferred d)

let test_conventional_seek_charged () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let near = run_read e d [ 0 ] in
  let far = run_read e d [ 120 * 300 ] in
  check Alcotest.bool "far page pays seek" true (far > near +. 20.0)

let test_parallel_batches_cylinder () =
  let e = Engine.create () in
  let d =
    Drive.create e ~params:Params.parallel_access ~layout:Layout.Sequential ~name:"d" ()
  in
  (* 12 consecutive pages: 3 tracks x 4 slots -> one access, 4 transfers *)
  let t = run_read e d (List.init 12 (fun i -> i)) in
  check (Alcotest.float 1e-6) "one access" (8.35 +. (4.0 *. 3.4)) t;
  check Alcotest.int "single access" 1 (Drive.access_count d);
  check Alcotest.int "12 pages" 12 (Drive.pages_transferred d)

let test_parallel_cheaper_than_conventional () =
  let pages = List.init 24 (fun i -> i) in
  let e1 = Engine.create () in
  let conv = Drive.create e1 ~params:p3350 ~layout:Layout.Sequential ~name:"c" () in
  let t_conv = run_read e1 conv pages in
  let e2 = Engine.create () in
  let par = Drive.create e2 ~params:Params.parallel_access ~layout:Layout.Sequential ~name:"p" () in
  let t_par = run_read e2 par pages in
  check Alcotest.bool "parallel-access much faster on a sequential batch" true
    (t_par *. 5.0 < t_conv)

let test_parallel_absorbs_queued_same_cylinder () =
  let e = Engine.create () in
  let d =
    Drive.create e ~params:Params.parallel_access ~layout:Layout.Sequential ~name:"d" ()
  in
  let completions = ref 0 in
  (* keep the drive busy on a far-away read so the two same-cylinder
     writes are both queued when it becomes free: they merge into one
     access *)
  Drive.submit d Drive.Read ~pages:[ 120 * 400 ] (fun () -> ());
  Drive.submit d Drive.Write ~pages:[ 0; 1 ] (fun () -> incr completions);
  Drive.submit d Drive.Write ~pages:[ 2; 3 ] (fun () -> incr completions);
  Engine.run e;
  check Alcotest.int "both done" 2 !completions;
  check Alcotest.int "merged into one access" 2 (Drive.access_count d)

let test_parallel_no_merge_across_kinds () =
  let e = Engine.create () in
  let d =
    Drive.create e ~params:Params.parallel_access ~layout:Layout.Sequential ~name:"d" ()
  in
  Drive.submit d Drive.Read ~pages:[ 0 ] (fun () -> ());
  Drive.submit d Drive.Write ~pages:[ 1 ] (fun () -> ());
  Engine.run e;
  check Alcotest.int "read and write stay separate" 2 (Drive.access_count d)

let test_empty_request_completes () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let fired = ref false in
  Drive.submit d Drive.Read ~pages:[] (fun () -> fired := true);
  Engine.run e;
  check Alcotest.bool "empty request still completes" true !fired;
  check Alcotest.int "no access" 0 (Drive.access_count d)

let test_fcfs_completion_order () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let order = ref [] in
  Drive.submit d Drive.Read ~pages:[ 100 ] (fun () -> order := 1 :: !order);
  Drive.submit d Drive.Read ~pages:[ 200 ] (fun () -> order := 2 :: !order);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "fcfs" [ 1; 2 ] (List.rev !order)

let test_extra_transfers_conventional () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  let base = run_read e d [ 0 ] in
  let finished = ref nan in
  let t0 = Engine.now e in
  Drive.submit d ~extra_transfers:1 Drive.Read ~pages:[ 0 ] (fun () ->
      finished := Engine.now e);
  Engine.run e;
  check (Alcotest.float 1e-6) "one extra block transfer" (base +. 3.4) (!finished -. t0)

let test_extra_transfers_parallel () =
  let e = Engine.create () in
  let d =
    Drive.create e ~params:Params.parallel_access ~layout:Layout.Sequential ~name:"d" ()
  in
  let finished = ref nan in
  Drive.submit d ~extra_transfers:1 Drive.Read ~pages:[ 0; 1; 2; 3 ] (fun () ->
      finished := Engine.now e);
  Engine.run e;
  (* 4 slots + 4 extra transfers *)
  check (Alcotest.float 1e-6) "per-page extras" (8.35 +. (8.0 *. 3.4)) !finished

let test_utilization_sane () =
  let e = Engine.create () in
  let d = Drive.create e ~params:p3350 ~layout:Layout.Sequential ~name:"d" () in
  ignore (run_read e d [ 0; 1 ]);
  (* drive was continuously busy from t=0 to completion *)
  check Alcotest.bool "fully busy" true (Drive.utilization d > 0.99)

let () =
  Alcotest.run "dbm_disk"
    [
      ( "params",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "seek time" `Quick test_seek_time;
          Alcotest.test_case "avg seek calibration" `Quick test_avg_seek_calibration;
          Alcotest.test_case "rotational latency" `Quick test_rotational_latency;
        ] );
      ( "layout",
        [
          Alcotest.test_case "sequential locate" `Quick test_sequential_locate;
          Alcotest.test_case "sequential adjacency" `Quick test_sequential_adjacency;
          Alcotest.test_case "scrambled bijective" `Quick test_scrambled_bijective;
          Alcotest.test_case "scrambled scatters" `Quick test_scrambled_scatters;
          Alcotest.test_case "scrambled deterministic" `Quick test_scrambled_deterministic;
          Alcotest.test_case "slot positions" `Quick test_slot_positions;
          Alcotest.test_case "permutation bijective" `Quick test_permutation_bijective;
          Alcotest.test_case "permutation range check" `Quick test_permutation_out_of_range;
        ] );
      ( "drive",
        [
          Alcotest.test_case "conventional: one page per access" `Quick
            test_conventional_one_page_per_access;
          Alcotest.test_case "conventional: train" `Quick test_conventional_train;
          Alcotest.test_case "conventional: seek charged" `Quick test_conventional_seek_charged;
          Alcotest.test_case "parallel: cylinder batch" `Quick test_parallel_batches_cylinder;
          Alcotest.test_case "parallel beats conventional" `Quick
            test_parallel_cheaper_than_conventional;
          Alcotest.test_case "parallel absorbs queue" `Quick
            test_parallel_absorbs_queued_same_cylinder;
          Alcotest.test_case "no merge across kinds" `Quick test_parallel_no_merge_across_kinds;
          Alcotest.test_case "empty request" `Quick test_empty_request_completes;
          Alcotest.test_case "fcfs order" `Quick test_fcfs_completion_order;
          Alcotest.test_case "extra transfers (conventional)" `Quick
            test_extra_transfers_conventional;
          Alcotest.test_case "extra transfers (parallel)" `Quick test_extra_transfers_parallel;
          Alcotest.test_case "utilization" `Quick test_utilization_sane;
        ] );
    ]
