(* Tests for the differential-relation operators: (B u A) - D semantics,
   basic vs optimal strategy equivalence, parallel-evaluation
   equivalence, merge, and the work counters behind Table 9. *)

module R = Dbm_relation.Diff_relation

let check = Alcotest.check

let tuple_list =
  Alcotest.testable
    (fun ppf ts ->
      Format.fprintf ppf "[%s]"
        (String.concat "; "
           (List.map (fun t -> Printf.sprintf "%d=%s" t.R.key t.R.value) ts)))
    ( = )

let tp key value = { R.key; value }

(* --- deterministic behaviour ------------------------------------------- *)

let sample () =
  let r = R.create ~tuples_per_page:4 [ tp 1 "one"; tp 2 "two"; tp 3 "three"; tp 4 "four" ] in
  R.insert r (tp 5 "five");
  R.insert r (tp 2 "TWO");  (* update via A *)
  R.delete r ~key:3;
  r

let test_view_semantics () =
  let r = sample () in
  check (Alcotest.option Alcotest.string) "base survives" (Some "one") (R.lookup r ~key:1);
  check (Alcotest.option Alcotest.string) "A overrides B" (Some "TWO") (R.lookup r ~key:2);
  check (Alcotest.option Alcotest.string) "D deletes" None (R.lookup r ~key:3);
  check (Alcotest.option Alcotest.string) "pure addition" (Some "five") (R.lookup r ~key:5);
  check tuple_list "materialized view"
    [ tp 1 "one"; tp 2 "TWO"; tp 4 "four"; tp 5 "five" ]
    (R.materialize r)

let test_newest_wins_across_files () =
  let r = R.create [ tp 1 "base" ] in
  R.delete r ~key:1;
  R.insert r (tp 1 "reborn");
  check (Alcotest.option Alcotest.string) "A after D" (Some "reborn") (R.lookup r ~key:1);
  R.delete r ~key:1;
  check (Alcotest.option Alcotest.string) "D after A" None (R.lookup r ~key:1)

let test_create_dedups () =
  let r = R.create [ tp 1 "old"; tp 1 "new" ] in
  check (Alcotest.option Alcotest.string) "later duplicate wins" (Some "new")
    (R.lookup r ~key:1)

let test_select_strategies_agree () =
  let r = sample () in
  let p t = t.R.key mod 2 = 0 in
  check tuple_list "basic = optimal" (R.select r ~strategy:R.Basic p)
    (R.select r ~strategy:R.Optimal p)

let test_optimal_skips_setdiffs () =
  let r =
    R.create ~tuples_per_page:2 (List.init 20 (fun i -> tp i (string_of_int i)))
  in
  R.delete r ~key:0;
  (* a very selective predicate: only one page qualifies *)
  let p t = t.R.key = 7 in
  ignore (R.select r ~strategy:R.Basic p);
  let basic = R.last_stats r in
  ignore (R.select r ~strategy:R.Optimal p);
  let optimal = R.last_stats r in
  check Alcotest.int "basic pays one set-difference per page" basic.R.pages_scanned
    basic.R.setdiff_ops;
  check Alcotest.bool "optimal pays only for qualifying pages" true
    (optimal.R.setdiff_ops < basic.R.setdiff_ops);
  check Alcotest.int "optimal setdiffs = qualifying pages" optimal.R.qualifying_pages
    optimal.R.setdiff_ops

let test_parallel_equals_serial () =
  let r = sample () in
  let p t = t.R.key <> 4 in
  let serial = R.select r ~strategy:R.Optimal p in
  List.iter
    (fun workers ->
      check tuple_list
        (Printf.sprintf "%d workers" workers)
        serial
        (R.select_parallel r ~workers ~strategy:R.Optimal p))
    [ 1; 2; 3; 7 ]

let test_parallel_validation () =
  let r = sample () in
  match R.select_parallel r ~workers:0 ~strategy:R.Basic (fun _ -> true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 workers accepted"

let test_merge () =
  let r = sample () in
  let before = R.materialize r in
  let merged = R.merge r in
  check tuple_list "merge preserves the view" before (R.materialize merged);
  check Alcotest.int "A emptied" 0 (R.a_size merged);
  check Alcotest.int "D emptied" 0 (R.d_size merged);
  check Alcotest.bool "base holds everything" true (R.base_pages merged > 0)

(* --- properties ---------------------------------------------------------- *)

type op = Ins of int * string | Del of int

let apply_model m = function
  | Ins (k, v) -> Hashtbl.replace m k v
  | Del k -> Hashtbl.remove m k

let apply_rel r = function
  | Ins (k, v) -> R.insert r (tp k v)
  | Del k -> R.delete r ~key:k

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (frequency
         [
           (3, map2 (fun k v -> Ins (k, v)) (int_range 0 30) (string_size (int_range 1 4)));
           (1, map (fun k -> Del k) (int_range 0 30));
         ]))

let base_gen =
  QCheck.Gen.(
    list_size (int_range 0 25)
      (map2 (fun k v -> tp k v) (int_range 0 30) (string_size (int_range 1 4))))

let scenario = QCheck.make QCheck.Gen.(pair base_gen ops_gen)

let model_of base ops =
  let m = Hashtbl.create 32 in
  List.iter (fun t -> Hashtbl.replace m t.R.key t.R.value) base;
  List.iter (apply_model m) ops;
  m

let rel_of base ops =
  let r = R.create ~tuples_per_page:4 base in
  List.iter (apply_rel r) ops;
  r

let prop_view_matches_model =
  QCheck.Test.make ~name:"(B u A) - D matches an assoc-map model" ~count:300 scenario
    (fun (base, ops) ->
      let m = model_of base ops and r = rel_of base ops in
      let expected =
        Hashtbl.fold (fun key value acc -> { R.key; value } :: acc) m []
        |> List.sort (fun a b -> Int.compare a.R.key b.R.key)
      in
      R.materialize r = expected)

let prop_strategies_equal =
  QCheck.Test.make ~name:"basic and optimal select agree" ~count:200 scenario
    (fun (base, ops) ->
      let r = rel_of base ops in
      let p t = t.R.key mod 3 = 0 in
      R.select r ~strategy:R.Basic p = R.select r ~strategy:R.Optimal p)

let prop_parallel_equal =
  QCheck.Test.make ~name:"parallel select equals serial for any worker count" ~count:200
    (QCheck.make QCheck.Gen.(triple base_gen ops_gen (int_range 1 8)))
    (fun (base, ops, workers) ->
      let r = rel_of base ops in
      let p t = t.R.key land 1 = 0 in
      R.select_parallel r ~workers ~strategy:R.Optimal p = R.select r ~strategy:R.Optimal p)

let prop_merge_preserves =
  QCheck.Test.make ~name:"merge preserves the materialized view" ~count:200 scenario
    (fun (base, ops) ->
      let r = rel_of base ops in
      R.materialize (R.merge r) = R.materialize r)

let prop_optimal_never_more_work =
  QCheck.Test.make ~name:"optimal never does more set-differences than basic" ~count:200 scenario
    (fun (base, ops) ->
      let r = rel_of base ops in
      let p t = t.R.key mod 5 = 0 in
      ignore (R.select r ~strategy:R.Basic p);
      let b = (R.last_stats r).R.setdiff_ops in
      ignore (R.select r ~strategy:R.Optimal p);
      let o = (R.last_stats r).R.setdiff_ops in
      o <= b)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_view_matches_model; prop_strategies_equal; prop_parallel_equal;
      prop_merge_preserves; prop_optimal_never_more_work;
    ]

let () =
  Alcotest.run "dbm_relation"
    [
      ( "differential relation",
        [
          Alcotest.test_case "view semantics" `Quick test_view_semantics;
          Alcotest.test_case "newest wins across files" `Quick test_newest_wins_across_files;
          Alcotest.test_case "create dedups" `Quick test_create_dedups;
          Alcotest.test_case "strategies agree" `Quick test_select_strategies_agree;
          Alcotest.test_case "optimal skips set-differences" `Quick test_optimal_skips_setdiffs;
          Alcotest.test_case "parallel equals serial" `Quick test_parallel_equals_serial;
          Alcotest.test_case "parallel validation" `Quick test_parallel_validation;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ("properties", qsuite);
    ]
