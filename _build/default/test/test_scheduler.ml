(* Tests for the strict-2PL scheduler and group commit.

   The central property: a scheduler run over any engine is equivalent
   to executing the committed scripts serially in commit order (checked
   against the model). *)

module Kv = Dbm_storage.Kv
module Scheduler = Dbm_storage.Scheduler
module Engine_log = Dbm_storage.Engine_log

let check = Alcotest.check

let n_keys = 32

(* Replay scripts serially (in the given order) on the model and read
   the final state. *)
let serial_state ~order ~scripts =
  let m = Kv.Model.create ~n_keys () in
  List.iter
    (fun id ->
      let script = List.assoc id scripts in
      let t = Kv.Model.begin_txn m in
      List.iter
        (function
          | Scheduler.Get k -> ignore (Kv.Model.get t k)
          | Scheduler.Put (k, v) -> Kv.Model.put t k v
          | Scheduler.Delete k -> Kv.Model.delete t k)
        script;
      Kv.Model.commit t)
    order;
  let t = Kv.Model.begin_txn m in
  let state = List.init n_keys (fun k -> Kv.Model.get t k) in
  Kv.Model.abort t;
  state

let engine_state (type a) (module E : Kv.S with type t = a) (e : a) =
  let t = E.begin_txn e in
  let state = List.init n_keys (fun k -> E.get t k) in
  E.abort t;
  state

module Harness (E : Kv.S) = struct
  module S = Scheduler.Make (E)

  let run_and_check scripts =
    let e = E.create ~n_keys () in
    let report = S.run e ~scripts in
    check Alcotest.int "all scripts committed" (List.length scripts)
      (List.length report.Scheduler.commit_order);
    let expected = serial_state ~order:report.Scheduler.commit_order ~scripts in
    let actual = engine_state (module E) e in
    check
      (Alcotest.list (Alcotest.option Alcotest.string))
      "equivalent to serial execution in commit order" expected actual;
    report

  let test_disjoint () =
    let scripts =
      [
        (1, [ Scheduler.Put (0, "a"); Scheduler.Put (1, "b") ]);
        (2, [ Scheduler.Put (16, "c"); Scheduler.Put (17, "d") ]);
      ]
    in
    let r = run_and_check scripts in
    check Alcotest.int "no restarts on disjoint scripts" 0 r.Scheduler.restarts

  let test_crossing_deadlock () =
    (* keys 0 and 16 are on different pages for every engine: the
       scripts acquire them in opposite orders, forcing a deadlock *)
    let scripts =
      [
        (1, [ Scheduler.Put (0, "t1"); Scheduler.Put (16, "t1") ]);
        (2, [ Scheduler.Put (16, "t2"); Scheduler.Put (0, "t2") ]);
      ]
    in
    let r = run_and_check scripts in
    check Alcotest.bool "a deadlock victim restarted" true (r.Scheduler.restarts >= 1)

  let test_shared_reads () =
    let scripts =
      [
        (1, [ Scheduler.Get 0; Scheduler.Get 1; Scheduler.Put (16, "x") ]);
        (2, [ Scheduler.Get 0; Scheduler.Get 1; Scheduler.Put (24, "y") ]);
      ]
    in
    let r = run_and_check scripts in
    check Alcotest.int "readers share locks" 0 r.Scheduler.restarts

  let test_empty_scripts () =
    let r = run_and_check [ (1, []); (2, [ Scheduler.Put (0, "v") ]) ] in
    check Alcotest.int "both committed" 2 (List.length r.Scheduler.commit_order)

  let test_write_conflict_serializes () =
    let scripts =
      [
        (1, [ Scheduler.Put (0, "first"); Scheduler.Put (1, "first") ]);
        (2, [ Scheduler.Put (0, "second"); Scheduler.Put (1, "second") ]);
        (3, [ Scheduler.Put (0, "third"); Scheduler.Put (1, "third") ]);
      ]
    in
    (* run_and_check verifies equivalence to commit order; additionally
       both keys must end with the same writer (no interleaving) *)
    let e = E.create ~n_keys () in
    let report = S.run e ~scripts in
    let t = E.begin_txn e in
    check
      (Alcotest.option Alcotest.string)
      "no lost update / interleaving" (E.get t 0) (E.get t 1);
    E.abort t;
    ignore report

  let prop_serializable =
    let op_gen =
      QCheck.Gen.(
        frequency
          [
            (3, map2 (fun k v -> Scheduler.Put (k, v)) (int_range 0 (n_keys - 1))
                 (string_size (int_range 1 4)));
            (1, map (fun k -> Scheduler.Delete k) (int_range 0 (n_keys - 1)));
            (2, map (fun k -> Scheduler.Get k) (int_range 0 (n_keys - 1)));
          ])
    in
    let scripts_gen =
      QCheck.Gen.(
        map
          (fun opss -> List.mapi (fun i ops -> (i, ops)) opss)
          (list_size (int_range 1 5) (list_size (int_range 0 8) op_gen)))
    in
    QCheck.Test.make
      ~name:(E.engine_name ^ ": 2PL runs are serializable")
      ~count:60
      (QCheck.make
         ~print:(fun scripts ->
           String.concat "\n"
             (List.map
                (fun (id, ops) ->
                  Printf.sprintf "%d: %s" id
                    (String.concat ";"
                       (List.map
                          (function
                            | Scheduler.Get k -> Printf.sprintf "G%d" k
                            | Scheduler.Put (k, v) -> Printf.sprintf "P%d=%s" k v
                            | Scheduler.Delete k -> Printf.sprintf "D%d" k)
                          ops)))
                scripts))
         scripts_gen)
      (fun scripts ->
        let e = E.create ~n_keys () in
        let report = S.run e ~scripts in
        serial_state ~order:report.Scheduler.commit_order ~scripts
        = engine_state (module E) e)

  let suite =
    ( "scheduler: " ^ E.engine_name,
      [
        Alcotest.test_case "disjoint scripts" `Quick test_disjoint;
        Alcotest.test_case "crossing deadlock" `Quick test_crossing_deadlock;
        Alcotest.test_case "shared reads" `Quick test_shared_reads;
        Alcotest.test_case "empty scripts" `Quick test_empty_scripts;
        Alcotest.test_case "write conflicts serialize" `Quick test_write_conflict_serializes;
        QCheck_alcotest.to_alcotest prop_serializable;
      ] )
end

module H_log = Harness (Engine_log)
module H_shadow = Harness (Dbm_storage.Engine_shadow)
module H_versel = Harness (Dbm_storage.Engine_versel)
module H_no_undo = Harness (Dbm_storage.Engine_overwrite.No_undo)
module H_no_redo = Harness (Dbm_storage.Engine_overwrite.No_redo)
module H_diff = Harness (Dbm_storage.Engine_diff)
module H_model = Harness (Kv.Model)

(* --- scheduler validation --------------------------------------------- *)

let test_duplicate_ids_rejected () =
  let module S = Scheduler.Make (Kv.Model) in
  let e = Kv.Model.create ~n_keys () in
  match S.run e ~scripts:[ (1, []); (1, []) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate script ids accepted"

(* --- group commit ------------------------------------------------------ *)

let test_group_commit_lost_without_force () =
  let e = Engine_log.create () in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 1 "grouped";
  Engine_log.commit_group t;
  (* committed in memory, never forced *)
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "lost in the group-commit window" None
    (Engine_log.get t 1);
  Engine_log.abort t

let test_group_commit_durable_after_force () =
  let e = Engine_log.create () in
  let t1 = Engine_log.begin_txn e in
  Engine_log.put t1 1 "one";
  Engine_log.commit_group t1;
  let t2 = Engine_log.begin_txn e in
  Engine_log.put t2 2 "two";
  Engine_log.commit_group t2;
  Engine_log.force_commits e;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "txn 1 durable" (Some "one") (Engine_log.get t 1);
  check (Alcotest.option Alcotest.string) "txn 2 durable" (Some "two") (Engine_log.get t 2);
  Engine_log.abort t

let test_group_commit_visible_before_force () =
  let e = Engine_log.create () in
  let t = Engine_log.begin_txn e in
  Engine_log.put t 1 "visible";
  Engine_log.commit_group t;
  let t2 = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "visible to later txns while up" (Some "visible")
    (Engine_log.get t2 1);
  Engine_log.abort t2

let test_group_commit_amortizes_syncs () =
  let syncs e = List.assoc "log_syncs" (Engine_log.stats e) in
  let eager = Engine_log.create () in
  for i = 0 to 49 do
    let t = Engine_log.begin_txn eager in
    Engine_log.put t (i mod 16) "v";
    Engine_log.commit t
  done;
  let grouped = Engine_log.create () in
  for i = 0 to 49 do
    let t = Engine_log.begin_txn grouped in
    Engine_log.put t (i mod 16) "v";
    Engine_log.commit_group t;
    if i mod 10 = 9 then Engine_log.force_commits grouped
  done;
  check Alcotest.bool "an order of magnitude fewer forces" true
    (syncs grouped * 5 < syncs eager);
  (* and the grouped store is just as durable after the last force *)
  Engine_log.crash_and_recover grouped;
  let t = Engine_log.begin_txn grouped in
  check (Alcotest.option Alcotest.string) "data intact" (Some "v") (Engine_log.get t 9);
  Engine_log.abort t

let test_regular_commit_forces_group () =
  (* a regular commit forces the log disks it uses; a group-committed
     txn whose records share those disks becomes durable with it *)
  let e = Engine_log.create_with ~n_log_disks:1 () in
  let t1 = Engine_log.begin_txn e in
  Engine_log.put t1 1 "piggybacked";
  Engine_log.commit_group t1;
  let t2 = Engine_log.begin_txn e in
  Engine_log.put t2 2 "forcing";
  Engine_log.commit t2;
  Engine_log.crash_and_recover e;
  let t = Engine_log.begin_txn e in
  check (Alcotest.option Alcotest.string) "group txn rode the force" (Some "piggybacked")
    (Engine_log.get t 1);
  Engine_log.abort t

(* Property: the group-commit durability window.  Random sequences of
   put / commit / commit_group / force / crash, mirrored against the
   model where a group-committed transaction reaches the model only
   when a force (or a regular commit, which forces the logs) makes it
   durable before the next crash. *)

type gop = GPut of int * string | GCommit | GCommitGroup | GForce | GCrash

let gop_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> GPut (k, v)) (int_range 0 15) (string_size (int_range 1 4)));
        (2, return GCommit);
        (2, return GCommitGroup);
        (2, return GForce);
        (2, return GCrash);
      ])

let prop_group_commit_window =
  QCheck.Test.make ~name:"group-commit durability window matches the model" ~count:200
    (QCheck.make
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | GPut (k, v) -> Printf.sprintf "P%d=%s" k v
                | GCommit -> "C"
                | GCommitGroup -> "G"
                | GForce -> "F"
                | GCrash -> "X")
              ops))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) gop_gen))
    (fun ops ->
      let e = Engine_log.create ~n_keys:16 () in
      let m = Kv.Model.create ~n_keys:16 () in
      (* live engine txn + its mirrored model writes *)
      let live : (Engine_log.txn * (int * string) list ref) option ref = ref None in
      (* model writes of group-committed txns not yet durable *)
      let pending_group : (int * string) list ref = ref [] in
      let ensure () =
        match !live with
        | Some pair -> pair
        | None ->
          let pair = (Engine_log.begin_txn e, ref []) in
          live := Some pair;
          pair
      in
      (* [model_apply] takes writes in chronological order *)
      let model_apply writes =
        let tm = Kv.Model.begin_txn m in
        List.iter (fun (k, v) -> Kv.Model.put tm k v) writes;
        Kv.Model.commit tm
      in
      List.iter
        (fun op ->
          match op with
          | GPut (k, v) ->
            let te, ws = ensure () in
            Engine_log.put te k v;
            ws := (k, v) :: !ws
          | GCommit ->
            (match !live with
            | Some (te, ws) ->
              Engine_log.commit te;
              (* a regular commit forces the logs: everything pending
                 becomes durable with it *)
              model_apply !pending_group;
              pending_group := [];
              model_apply (List.rev !ws);
              live := None
            | None -> ())
          | GCommitGroup ->
            (match !live with
            | Some (te, ws) ->
              Engine_log.commit_group te;
              pending_group := !pending_group @ List.rev !ws;
              live := None
            | None -> ())
          | GForce ->
            Engine_log.force_commits e;
            model_apply !pending_group;
            pending_group := []
          | GCrash ->
            Engine_log.crash_and_recover e;
            Kv.Model.crash_and_recover m;
            live := None;
            pending_group := [])
        ops;
      (* settle: force everything, then compare *)
      (match !live with Some (te, _) -> Engine_log.abort te | None -> ());
      Engine_log.force_commits e;
      model_apply !pending_group;
      let te = Engine_log.begin_txn e and tm = Kv.Model.begin_txn m in
      let ok = ref true in
      for k = 0 to 15 do
        if Engine_log.get te k <> Kv.Model.get tm k then ok := false
      done;
      Engine_log.abort te;
      Kv.Model.abort tm;
      !ok)

let () =
  Alcotest.run "dbm_storage scheduler + group commit"
    [
      H_model.suite;
      H_log.suite;
      H_shadow.suite;
      H_versel.suite;
      H_no_undo.suite;
      H_no_redo.suite;
      H_diff.suite;
      ( "scheduler validation",
        [ Alcotest.test_case "duplicate ids" `Quick test_duplicate_ids_rejected ] );
      ( "group commit",
        [
          Alcotest.test_case "lost without force" `Quick test_group_commit_lost_without_force;
          Alcotest.test_case "durable after force" `Quick test_group_commit_durable_after_force;
          Alcotest.test_case "visible before force" `Quick test_group_commit_visible_before_force;
          Alcotest.test_case "regular commit forces group" `Quick
            test_regular_commit_forces_group;
          Alcotest.test_case "group commit amortizes syncs" `Quick
            test_group_commit_amortizes_syncs;
          QCheck_alcotest.to_alcotest prop_group_commit_window;
        ] );
    ]
