test/test_engines.ml: Alcotest Dbm_storage Int List Printf QCheck QCheck_alcotest String
