test/test_workload.ml: Alcotest Array Dbm_workload Float Int List
