test/test_disk.ml: Alcotest Array Dbm_disk Dbm_sim Hashtbl List
