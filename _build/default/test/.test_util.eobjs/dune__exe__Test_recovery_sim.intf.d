test/test_recovery_sim.mli:
