test/test_sim.ml: Alcotest Dbm_machine Dbm_sim Dbm_workload List
