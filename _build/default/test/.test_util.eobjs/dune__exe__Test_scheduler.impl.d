test/test_scheduler.ml: Alcotest Dbm_storage List Printf QCheck QCheck_alcotest String
