test/test_util.ml: Alcotest Array Dbm_util Float Gen Int List Printf QCheck QCheck_alcotest
