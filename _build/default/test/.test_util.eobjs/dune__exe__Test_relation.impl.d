test/test_relation.ml: Alcotest Dbm_relation Format Hashtbl Int List Printf QCheck QCheck_alcotest String
