test/test_recovery_sim.ml: Alcotest Dbm_disk Dbm_machine Dbm_recovery Dbm_workload Float List Option Printf String
