test/test_storage.ml: Alcotest Bytes Char Dbm_storage Format Gen Hashtbl List QCheck QCheck_alcotest String
