test/test_machine.ml: Alcotest Array Dbm_disk Dbm_machine Dbm_workload Hashtbl Int List Option QCheck QCheck_alcotest
