test/test_tables.ml: Alcotest Dbm_core Dbm_machine Dbm_recovery Dbm_workload Float List Printf String
