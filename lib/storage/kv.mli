(** The common signature of all recovery engines.

    Every recovery mechanism the paper studies is implemented as a
    transactional key-value page store satisfying {!S}, so the crash
    property tests and the examples run unchanged against logging,
    shadow page-table, version-selection, overwriting (both variants)
    and differential-file engines.

    Concurrency: engines support multiple live transactions, but
    conflicting access to the same key must be serialized by the caller
    (in the paper's machine the back-end controller's page-level
    scheduler does this; {!Lock_mgr} is provided for composition). *)

exception Txn_finished
(** Raised when using a transaction handle after commit/abort or after
    a crash. *)

exception Scratch_full
(** Raised by the overwriting engines when the scratch ring buffer
    overflows (the paper's Section 3.2.2.1 overflow caveat). *)

module type S = sig
  type t

  type txn

  val engine_name : string

  val create : ?n_keys:int -> unit -> t
  (** Fresh store holding keys [0 .. n_keys-1] (default 256). *)

  val max_keys : t -> int

  val keys_per_page : t -> int
  (** Locking granule: keys [k] and [k'] share a page (and therefore a
      lock) iff [k / keys_per_page = k' / keys_per_page].  1 for the
      model and record-granular engines. *)

  val begin_txn : t -> txn

  val get : txn -> int -> string option

  val put : txn -> int -> string -> unit

  val delete : txn -> int -> unit

  val commit : txn -> unit

  val abort : txn -> unit

  val crash_and_recover : t -> unit
  (** Simulate a system crash (volatile state lost) followed by
      restart recovery.  Live transaction handles become unusable. *)

  val checkpoint : t -> unit
  (** Engine-specific housekeeping: log checkpoint + truncation for the
      logging engine, merge of the differential files for the
      differential engine, a no-op elsewhere.  May require quiescence
      (no live transactions); raises [Failure] otherwise where so. *)

  val stats : t -> (string * int) list
  (** Engine-specific counters (log records, scratch slots in use,
      table flips, ...). *)
end

(** Engines that retain old committed versions can expose them as MVCC
    snapshots: a {!SNAPSHOT.snapshot} is a consistent read-only view
    pinned to the commit point at which it was taken.  Reads through it
    see exactly the committed state of that instant — never a later
    commit, never uncommitted work — without taking any lock and
    without copying the store.  Old versions are reclaimed only once
    every snapshot that could see them has been released (the snapshot
    horizon), so merge/checkpoint/truncation never frees a version a
    live snapshot still needs. *)
module type SNAPSHOT = sig
  include S

  type snapshot

  val snapshot : t -> snapshot
  (** Pin a read-only view to the current commit point.  O(1): no data
      is copied; visibility is decided per read against the commit
      ordering the engine already maintains. *)

  val snapshot_get : snapshot -> int -> string option
  (** Read through the pinned view.  Lock-free and non-blocking.
      @raise Txn_finished after {!snapshot_release} or a crash. *)

  val snapshot_release : snapshot -> unit
  (** Close the view and advance the reclamation watermark.  Idempotent
      after a crash (crashes drop every snapshot). *)

  val live_snapshots : t -> int
  (** Snapshots taken and not yet released (crashes reset it to 0). *)
end

module Model : S
(** Executable specification: an in-memory store with perfect
    transactional semantics (commit durable, uncommitted work lost on
    crash).  The property tests compare every engine against it. *)
