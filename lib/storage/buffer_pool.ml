type frame = {
  page : int;
  data : bytes;
  mutable pins : int;
  mutable dirty : bool;
  mutable last_use : int;  (* logical clock for LRU *)
  mutable prev : frame option;  (* toward the MRU head *)
  mutable next : frame option;  (* toward the LRU tail *)
}

(* Frames live on an intrusive doubly-linked list, most recently used at
   [head].  Because every access touches its frame to the head and the
   logical clock is strictly increasing, walking from [tail] toward the
   head visits frames in ascending [last_use] order — the same candidate
   order the original fold-and-sort eviction produced, without building a
   list per miss. *)
type t = {
  disk : Vdisk.t;
  capacity : int;
  table : (int, frame) Hashtbl.t;
  can_evict : page:int -> lsn:int -> bool;
  before_evict : page:int -> lsn:int -> unit;
  mutable head : frame option;
  mutable tail : frame option;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable pinned_count : int;
  mutable dirty_count : int;
}

exception No_free_frame

let create disk ~frames ?(can_evict = fun ~page:_ ~lsn:_ -> true)
    ?(before_evict = fun ~page:_ ~lsn:_ -> ()) () =
  if frames <= 0 then invalid_arg "Buffer_pool.create: need at least one frame";
  {
    disk;
    capacity = frames;
    table = Hashtbl.create frames;
    can_evict;
    before_evict;
    head = None;
    tail = None;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    pinned_count = 0;
    dirty_count = 0;
  }

let frames t = t.capacity

let in_use t = Hashtbl.length t.table

let pinned t = t.pinned_count

let dirty_frames t = t.dirty_count

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.prev <- None;
  f.next <- t.head;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let touch t f =
  t.clock <- t.clock + 1;
  f.last_use <- t.clock;
  match t.head with
  | Some h when h == f -> ()
  | _ ->
    unlink t f;
    push_front t f

let set_dirty t f d =
  if f.dirty <> d then begin
    f.dirty <- d;
    t.dirty_count <- t.dirty_count + (if d then 1 else -1)
  end

let write_back t f =
  let lsn = Page.get_lsn f.data in
  t.before_evict ~page:f.page ~lsn;
  if not (t.can_evict ~page:f.page ~lsn) then false
  else begin
    Vdisk.write t.disk f.page f.data;
    set_dirty t f false;
    true
  end

(* Evict the least-recently-used unpinned (and evictable) frame: walk from
   the LRU tail, skipping pinned frames and dirty frames the WAL gate
   refuses to let go. *)
let evict_one t =
  let rec try_evict = function
    | None -> raise No_free_frame
    | Some f ->
      if f.pins > 0 then try_evict f.prev
      else if f.dirty && not (write_back t f) then try_evict f.prev
      else begin
        unlink t f;
        Hashtbl.remove t.table f.page;
        t.evictions <- t.evictions + 1
      end
  in
  try_evict t.tail

let get t page =
  match Hashtbl.find_opt t.table page with
  | Some f ->
    t.hits <- t.hits + 1;
    if f.pins = 0 then t.pinned_count <- t.pinned_count + 1;
    f.pins <- f.pins + 1;
    touch t f;
    f.data
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.table >= t.capacity then evict_one t;
    let f =
      {
        page;
        data = Vdisk.read t.disk page;
        pins = 1;
        dirty = false;
        last_use = 0;
        prev = None;
        next = None;
      }
    in
    t.pinned_count <- t.pinned_count + 1;
    push_front t f;
    touch t f;
    Hashtbl.replace t.table page f;
    f.data

let find_exn t page ~what =
  match Hashtbl.find_opt t.table page with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Buffer_pool.%s: page %d not resident" what page)

let unpin t page =
  let f = find_exn t page ~what:"unpin" in
  if f.pins <= 0 then invalid_arg (Printf.sprintf "Buffer_pool.unpin: page %d not pinned" page);
  f.pins <- f.pins - 1;
  if f.pins = 0 then t.pinned_count <- t.pinned_count - 1

let mark_dirty t page =
  let f = find_exn t page ~what:"mark_dirty" in
  set_dirty t f true

let is_dirty t page =
  match Hashtbl.find_opt t.table page with Some f -> f.dirty | None -> false

let resident t page = Hashtbl.mem t.table page

let flush_page t page =
  let f = find_exn t page ~what:"flush_page" in
  if f.dirty && not (write_back t f) then
    failwith (Printf.sprintf "Buffer_pool.flush_page: WAL gate refuses page %d" page)

let flush_all t =
  Hashtbl.iter
    (fun _ f ->
      if f.dirty && not (write_back t f) then
        failwith
          (Printf.sprintf "Buffer_pool.flush_all: WAL gate refuses page %d" f.page))
    t.table;
  Vdisk.sync t.disk

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions
