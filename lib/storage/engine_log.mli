(** The parallel-logging recovery engine (Section 3.1, functional).

    A steal / no-force page store: updates are applied in place after a
    full before/after-image log record is appended to one of [N] log
    disks (write-ahead rule), commit forces every log disk holding the
    transaction's fragments, and restart recovery rebuilds each page
    from the distributed logs {e without merging them into one physical
    log} — global LSNs plus full-page images make per-page
    reconstruction order-insensitive, the property the paper's
    companion algorithm [13] exploits.

    Satisfies {!Kv.S}; extras below. *)

include Kv.S

type selection = Cyclic | By_txn | By_page

type log_format =
  | Physical  (** full before/after page images per update (the paper's logging) *)
  | Delta
      (** {!Wal.Delta} records carrying only each update's changed byte
          range (common-prefix/suffix diff), with full images logged at
          every clean->dirty page transition (the chain anchor replay
          needs) and past the size threshold.  Abort restores are
          logged too — reusing the LSN the restore burns in physical
          mode, so both formats issue identical LSN streams and recover
          to identical fingerprints.  Replay expands each page's slice
          chain back to full images against the durable base
          ({!Replay.expand_page}) and then runs the unchanged
          winner/loser fold. *)

val create_with :
  ?n_keys:int ->
  ?n_log_disks:int ->
  ?selection:selection ->
  ?keys_per_page:int ->
  ?auto_checkpoint_records:int ->
  ?log_format:log_format ->
  unit ->
  t
(** [create] is [create_with] with 2 log disks, cyclic selection,
    4 keys per page, no automatic checkpointing and [Physical] log
    records.
    [auto_checkpoint_records], when set, runs a sharp checkpoint at the
    first transaction boundary after that many log records have
    accumulated since the last checkpoint, bounding both the log size
    and the restart-recovery work. *)

val log_format : t -> log_format

val log_bytes : t -> int
(** Total durable log volume in bytes across all log disks — what the
    physical / delta / logical head-to-head meters. *)

val commit_group : txn -> unit
(** Group commit: append the commit record but do {e not} force the
    log.  The transaction becomes durable at the next {!force_commits}
    (or any other force reaching its commit disk — the engine tracks a
    per-disk dependency set so any such force co-forces the disks
    holding the transaction's update records, keeping the WAL
    atomicity invariant); a crash before that loses it — exactly the
    group-commit durability window.  Amortizes the per-commit log
    force across a batch of transactions. *)

val force_commits : t -> unit
(** Force every log disk: all group-committed transactions become
    durable. *)

(** {2 Two-phase commit (participant side)}

    The hooks the {!Shard} layer drives.  A cross-shard transaction
    runs [prepare] on every participant (each makes its effects and
    vote durable), the coordinator logs the decision
    ({!Coordinator_log}), and each participant then applies it:
    {!commit_group} — the local decision record may stay unforced
    because restart recovery resolves in-doubt transactions from the
    coordinator — or {!Kv.S.abort}. *)

val prepare : txn -> gid:int -> unit
(** Durable vote for global transaction [gid]: force the disks holding
    this transaction's update records (plus group-commit closure,
    exactly as an eager commit would), then append and force a
    {!Wal.Prepare} record.  The transaction stays active — undo state
    and locks survive — until the decision. *)

val in_doubt : t -> (int * int) list
(** [(txn, gid)] for every durably prepared transaction with no durable
    decision record, ascending by txn id.  Empty after a
    [crash_and_recover_resolved] (resolution records are appended), and
    always empty for an engine that never prepared. *)

val crash_and_recover_resolved : resolve:(gid:int -> bool) -> t -> unit
(** {!Kv.S.crash_and_recover} with in-doubt transactions resolved from
    the coordinator: an in-doubt transaction replays as committed iff
    [resolve ~gid] holds (plain [crash_and_recover] presumes abort).
    After replay a Commit/Abort resolution record is appended and
    forced for each, so the next restart needs no coordinator. *)

val truncate_to_checkpoint : t -> unit
(** Drop each journal's durable prefix below the newest durable fuzzy
    checkpoint's replay-start LSN — the records replay skips without
    decoding anyway.  A no-op when no durable fuzzy checkpoint exists.
    The checkpoint record survives, and so does the newest record of
    the highest-id transaction (it re-seeds the txn counter), so
    recovery after truncation reaches a state fingerprint-identical to
    recovery on the untruncated log under either strategy. *)

val flush : t -> unit
(** Force the log disks and then the data disk: the "steal" path (a
    dirty page may reach disk before commit, but never before its log
    records — the WAL rule). *)

type recovery_strategy =
  | Sorted  (** group the distributed records per page and replay them
                in LSN order (the textbook formulation) *)
  | Unmerged
      (** the paper's companion algorithm [13]: process each log disk
          {e independently} with no global sort — redo applies a
          committed after-image iff its LSN exceeds the page's current
          LSN (idempotent, order-insensitive), and an undo fixpoint
          rolls loser images off the pages they still own.  The two
          strategies are provably equivalent; the property tests check
          it on random crash histories. *)

val set_recovery_strategy : t -> recovery_strategy -> unit
(** Default [Sorted].  Takes effect at the next [crash_and_recover].
    A [Delta]-format engine always recovers along the [Sorted] path
    (the companion algorithm keys redo off full-page images). *)

val recovery_strategy : t -> recovery_strategy

val set_recovery_pool : t -> Dbm_util.Pool.t option -> unit
(** Domain pool for restart recovery (default [None] = serial).  With a
    pool, log decoding fans contiguous record chunks across the domains
    and the [Sorted] strategy replays page-hash partitions in parallel
    (see {!Replay}); the rebuilt state is bit-identical for any pool
    size — [None] and a 1-job pool are literally the serial path.  The
    engine does not own the pool; the caller shuts it down. *)

val recovery_pool : t -> Dbm_util.Pool.t option

val checkpoint_fuzzy : ?sync:bool -> t -> unit
(** Fuzzy checkpoint: force the log disks and append one
    {!Wal.Fuzzy_checkpoint} record naming the LSN a future replay may
    start from (the minimum over every active transaction's earliest
    update LSN and every dirty page's recovery LSN) plus the dirty-page
    table.  Unlike {!checkpoint} it does not force the data disk, does
    not truncate, and does not care who is running — its cost is one
    log force regardless of the data state.  [sync] (default [true])
    forces the checkpoint record itself; [sync:false] leaves it in the
    volatile tail, where a crash simply loses it (recovery falls back
    to the previous checkpoint or to record 0 — never to a wrong
    state). *)

val state_fingerprint : t -> string
(** 128-bit hex digest of every data page image plus the LSN/txn
    counters — the state restart recovery is responsible for.  Disk
    operation counters are excluded: checkpoint-aware replay writes
    fewer pages by design.  Equal fingerprints after
    [crash_and_recover] and [crash_and_recover_reference] are the
    parallel path's correctness gate. *)

val crash_and_recover_reference : t -> unit
(** Crash, then recover along the preserved pre-parallelization path
    ({!Naive.Log_replay}): serial decode, from-zero sorted replay,
    fuzzy-checkpoint records ignored.  Reference for equivalence tests
    and the bench baseline; same counter-reset epilogue as
    [crash_and_recover]. *)

val log_disks : t -> int

val records_logged : t -> int

val dump_log : t -> disk:int -> Wal.record list
(** Durable records of one log disk, for inspection and tests. *)
