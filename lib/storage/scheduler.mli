(** Concurrent transaction execution with strict two-phase locking.

    The paper assumes a page-level-locking scheduler in the back-end
    controller (Section 3); this module is its functional counterpart:
    it interleaves a set of transaction {e scripts} over any recovery
    engine, acquiring page locks (at the engine's {!Kv.S.keys_per_page} granule) through {!Lock_mgr} as operations
    execute, parking scripts that would block, and resolving deadlocks
    by aborting and restarting the requester (strict 2PL: all locks are
    held until commit).

    Because acquisition is incremental and the victim restarts from the
    beginning, every run is serializable: the committed scripts are
    equivalent to executing them serially in commit order (a property
    the test suite checks against the model).

    The module is split into an execution core ({!Make.Exec}: tasks,
    locks, single-step advance, pluggable commit sink) and the
    closed-loop driver {!Make.run} built on it.  The open-loop
    {!Server} drives the same core with arrivals from a clock and
    commits routed through a {!Commit_pipeline}. *)

type op =
  | Get of int
  | Put of int * string
  | Delete of int

type script = op list

type report = {
  commit_order : int list;  (** script ids, in commit order *)
  restarts : int;  (** deadlock-victim restarts *)
  steps : int;  (** scheduler steps taken *)
}

(** A pinned read-only view of an engine, as the scheduler consumes it:
    how to read a key and how to close the view.  Engine-agnostic so
    the execution core does not require {!Kv.SNAPSHOT} — callers build
    one from an engine's [snapshot]/[snapshot_get]/[snapshot_release]
    and install the factory via {!Make.Exec.create}. *)
type view = {
  view_get : int -> string option;
  view_close : unit -> unit;
}

module Make (E : Kv.S) : sig
  (** The admission-independent execution core: who holds which page
      lock, who is parked on what, and how one scheduler turn advances
      one task.  Callers own the driving loop — which tasks exist, in
      what order they get turns, and what time a turn costs. *)
  module Exec : sig
    type t

    type task

    type outcome =
      | Skipped  (** backoff ticked down, or parked and not woken *)
      | Blocked  (** ran the lock acquire and parked on the page *)
      | Advanced  (** executed one operation *)
      | Restarted  (** deadlock victim: rolled back, will retry *)
      | Committed

    val create :
      ?commit:(id:int -> E.txn -> unit) ->
      ?hold:(id:int -> bool) ->
      ?snapshot:(unit -> view) ->
      ?read_mode:Lock_mgr.mode ->
      E.t ->
      t
    (** [commit] is the commit sink, called exactly once per finishing
        task with the script id and the open transaction; it must
        commit (eagerly or via {!Kv} group commit).  Default:
        [E.commit].  Locks are released right after the sink returns —
        strict 2PL ends when the commit record is appended; a deferred
        force does not extend lock hold times.

        [hold] (default: never) is consulted at that point: a held task
        keeps its page locks after the sink returns — the {!Shard}
        layer holds 2PC participant slices, whose sink {e prepares}
        rather than commits, until the coordinator's decision; the
        driver then calls {!release_locks}.  A held task never requests
        another lock (its script is exhausted), so it can never be a
        deadlock victim.

        [snapshot] is the MVCC view factory.  When present, tasks
        spawned [~read_only:true] execute lock-free: a view is pinned
        at the task's first read and every Get goes through it, so the
        task never touches {!Lock_mgr} — it cannot block, cannot
        deadlock, never restarts.  Absent (the default), read-only
        tasks run the ordinary locked path.

        [read_mode] is the lock mode Gets acquire (default
        {!Lock_mgr.S}).  [Lock_mgr.X] turns the scheduler into the
        exclusive-only baseline — every read serializes against every
        other access to its page — which is what the snapshot bench
        compares against.  Defaults reproduce the pre-MVCC scheduler
        bit-identically. *)

    val spawn : t -> ?read_only:bool -> index:int -> id:int -> script -> task
    (** Register a task.  [id] must be unique among live tasks (it keys
        the lock table); [index] should be small and distinct among
        concurrent tasks — it scales the post-restart backoff.
        [read_only] (default [false]) selects the lock-free snapshot
        path when the factory is installed; the script must then be all
        Gets.
        @raise Invalid_argument on a read-only script containing a
        write while a snapshot factory is installed. *)

    val step : t -> task -> outcome
    (** One scheduler turn: count a step, serve backoff, skip a parked
        task that nothing woke, otherwise try to advance one
        operation. *)

    val finished : task -> bool

    val task_restarts : task -> int
    (** Deadlock-victim restarts suffered by this task alone. *)

    val commit_order : t -> int list

    val restarts : t -> int

    val steps : t -> int

    val lock_acquires : t -> int
    (** Lock acquisition attempts issued to {!Lock_mgr} (grants, blocks
        and deadlocks alike).  Snapshot-path reads issue none — the
        read-only bench pins this at zero. *)

    val release_locks : t -> id:int -> unit
    (** Release every page lock task [id] still holds and wake the
        scripts parked on those pages — the deferred half of commit for
        a task the [hold] predicate kept locked. *)
  end

  val run : ?max_steps:int -> E.t -> scripts:(int * script) list -> report
  (** Run the scripts to completion, round-robin, committing eagerly.
      Script ids must be distinct.  Bit-identical ([steps],
      [commit_order], [restarts]) to the pre-split scheduler and to
      {!Naive.Sched} (a CI gate holds this).
      @raise Failure if the scripts have not all committed within
      [max_steps] scheduler steps (default 100,000). *)
end
