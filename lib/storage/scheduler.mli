(** Concurrent transaction execution with strict two-phase locking.

    The paper assumes a page-level-locking scheduler in the back-end
    controller (Section 3); this module is its functional counterpart:
    it interleaves a set of transaction {e scripts} over any recovery
    engine, acquiring page locks (at the engine's {!Kv.S.keys_per_page} granule) through {!Lock_mgr} as operations
    execute, parking scripts that would block, and resolving deadlocks
    by aborting and restarting the requester (strict 2PL: all locks are
    held until commit).

    Because acquisition is incremental and the victim restarts from the
    beginning, every run is serializable: the committed scripts are
    equivalent to executing them serially in commit order (a property
    the test suite checks against the model).

    The module is split into an execution core ({!Make.Exec}: tasks,
    locks, single-step advance, pluggable commit sink) and the
    closed-loop driver {!Make.run} built on it.  The open-loop
    {!Server} drives the same core with arrivals from a clock and
    commits routed through a {!Commit_pipeline}. *)

type op =
  | Get of int
  | Put of int * string
  | Delete of int

type script = op list

type report = {
  commit_order : int list;  (** script ids, in commit order *)
  restarts : int;  (** deadlock-victim restarts *)
  steps : int;  (** scheduler steps taken *)
}

module Make (E : Kv.S) : sig
  (** The admission-independent execution core: who holds which page
      lock, who is parked on what, and how one scheduler turn advances
      one task.  Callers own the driving loop — which tasks exist, in
      what order they get turns, and what time a turn costs. *)
  module Exec : sig
    type t

    type task

    type outcome =
      | Skipped  (** backoff ticked down, or parked and not woken *)
      | Blocked  (** ran the lock acquire and parked on the page *)
      | Advanced  (** executed one operation *)
      | Restarted  (** deadlock victim: rolled back, will retry *)
      | Committed

    val create : ?commit:(id:int -> E.txn -> unit) -> E.t -> t
    (** [commit] is the commit sink, called exactly once per finishing
        task with the script id and the open transaction; it must
        commit (eagerly or via {!Kv} group commit).  Default:
        [E.commit].  Locks are released right after the sink returns —
        strict 2PL ends when the commit record is appended; a deferred
        force does not extend lock hold times. *)

    val spawn : t -> index:int -> id:int -> script -> task
    (** Register a task.  [id] must be unique among live tasks (it keys
        the lock table); [index] should be small and distinct among
        concurrent tasks — it scales the post-restart backoff. *)

    val step : t -> task -> outcome
    (** One scheduler turn: count a step, serve backoff, skip a parked
        task that nothing woke, otherwise try to advance one
        operation. *)

    val finished : task -> bool

    val commit_order : t -> int list

    val restarts : t -> int

    val steps : t -> int
  end

  val run : ?max_steps:int -> E.t -> scripts:(int * script) list -> report
  (** Run the scripts to completion, round-robin, committing eagerly.
      Script ids must be distinct.  Bit-identical ([steps],
      [commit_order], [restarts]) to the pre-split scheduler and to
      {!Naive.Sched} (a CI gate holds this).
      @raise Failure if the scripts have not all committed within
      [max_steps] scheduler steps (default 100,000). *)
end
