exception Corrupt = Wal_codec.Corrupt

type record =
  | Update of { lsn : int; txn : int; page : int; before : bytes; after : bytes }
  | Delta of {
      lsn : int;
      txn : int;
      page : int;
      off : int;
      prev_lsn : int;
      before_slice : string;
      after_slice : string;
    }
  | Op of { lsn : int; txn : int; key : int; value : string option }
  | Commit of { lsn : int; txn : int }
  | Abort of { lsn : int; txn : int }
  | Prepare of { lsn : int; txn : int; gid : int }
  | Checkpoint of { lsn : int; active : int list }
  | Fuzzy_checkpoint of {
      lsn : int;
      start_lsn : int;
      active : int list;
      dirty : (int * int) list;  (* (page, rec_lsn), ascending by page *)
    }

let lsn = function
  | Update { lsn; _ } | Delta { lsn; _ } | Op { lsn; _ } | Commit { lsn; _ }
  | Abort { lsn; _ } | Prepare { lsn; _ } | Checkpoint { lsn; _ }
  | Fuzzy_checkpoint { lsn; _ } ->
    lsn

let txn_of = function
  | Update { txn; _ } | Delta { txn; _ } | Op { txn; _ } | Commit { txn; _ } | Abort { txn; _ }
  | Prepare { txn; _ } ->
    Some txn
  | Checkpoint _ | Fuzzy_checkpoint _ -> None

(* --- delta computation / application ------------------------------- *)

(* Common-prefix/suffix diff: the smallest single [off, off+len) range
   outside which [before] and [after] agree.  [None] when identical. *)
let diff_range ~before ~after =
  let n = Bytes.length before in
  if Bytes.length after <> n then invalid_arg "Wal.diff_range: length mismatch";
  let p = ref 0 in
  while !p < n && Bytes.unsafe_get before !p = Bytes.unsafe_get after !p do incr p done;
  if !p = n then None
  else begin
    let q = ref (n - 1) in
    while Bytes.unsafe_get before !q = Bytes.unsafe_get after !q do decr q done;
    Some (!p, !q + 1 - !p)
  end

(* The page's 8-byte LSN header (Page.header_bytes) changes on every
   update, so a whole-page diff would always start at byte 0 and span to
   the changed record — position-dependent and near-useless for keys
   late in the page.  Delta records therefore slice the {e body} only
   (off >= 8): the header is reproduced from the record itself — [lsn]
   going forward, [prev_lsn] going backward. *)
let header_bytes = 8

let delta_update ~threshold ~lsn ~txn ~page ~before ~after =
  let n = Bytes.length before in
  if Bytes.length after <> n then invalid_arg "Wal.delta_update: length mismatch";
  if n < header_bytes + 1 then Update { lsn; txn; page; before; after }
  else begin
    if Int64.to_int (Bytes.get_int64_le after 0) <> lsn then
      invalid_arg "Wal.delta_update: after image header is not at the record LSN";
    let prev_lsn = Int64.to_int (Bytes.get_int64_le before 0) in
    (* Common-prefix/suffix diff over the body alone. *)
    let p = ref header_bytes in
    while !p < n && Bytes.unsafe_get before !p = Bytes.unsafe_get after !p do incr p done;
    let off, len =
      if !p = n then (header_bytes, 0)
      else begin
        let q = ref (n - 1) in
        while Bytes.unsafe_get before !q = Bytes.unsafe_get after !q do decr q done;
        (!p, !q + 1 - !p)
      end
    in
    if 2 * len <= threshold then
      Delta
        {
          lsn;
          txn;
          page;
          off;
          prev_lsn;
          before_slice = Bytes.sub_string before off len;
          after_slice = Bytes.sub_string after off len;
        }
    else Update { lsn; txn; page; before; after }
  end

let apply_slice image ~off slice =
  let len = String.length slice in
  if off < 0 || off + len > Bytes.length image then raise (Corrupt "delta slice out of range");
  Bytes.blit_string slice 0 image off len

(* --- binary encoding ------------------------------------------------ *)

(* v2 framing (Wal_codec): tag byte, then the fixed 8-byte LSN — and,
   for the transaction-bearing shapes, the fixed 8-byte txn id — so the
   unchecked peeks below keep their O(1) offsets; everything after the
   fixed header is varint-framed; word-at-a-time FNV checksum trailer.

   v2 tags are lowercase.  The uppercase tags of the pre-codec format
   (fixed 8-byte fields throughout, 31-polynomial checksum) remain
   decodable below, so journals holding old encodings still replay. *)

let encode_with enc r =
  let open Wal_codec.Enc in
  (match r with
  | Update { lsn; txn; page; before; after } ->
    reset enc ~tag:'u';
    int64 enc lsn;
    int64 enc txn;
    varint enc page;
    bytes enc before;
    bytes enc after
  | Delta { lsn; txn; page; off; prev_lsn; before_slice; after_slice } ->
    if String.length before_slice <> String.length after_slice then
      invalid_arg "Wal.encode: delta slice length mismatch";
    reset enc ~tag:'d';
    int64 enc lsn;
    int64 enc txn;
    varint enc page;
    varint enc off;
    varint enc prev_lsn;
    varint enc (String.length before_slice);
    (* One shared length prefix; the two slices are the same size by
       construction (they cover the same byte range). *)
    substring enc before_slice ~pos:0 ~len:(String.length before_slice);
    substring enc after_slice ~pos:0 ~len:(String.length after_slice)
  | Op { lsn; txn; key; value } ->
    reset enc ~tag:'o';
    int64 enc lsn;
    int64 enc txn;
    varint enc key;
    (match value with
    | None -> byte enc 0
    | Some v ->
      byte enc 1;
      string enc v)
  | Commit { lsn; txn } ->
    reset enc ~tag:'c';
    int64 enc lsn;
    int64 enc txn
  | Abort { lsn; txn } ->
    reset enc ~tag:'a';
    int64 enc lsn;
    int64 enc txn
  | Prepare { lsn; txn; gid } ->
    reset enc ~tag:'p';
    int64 enc lsn;
    int64 enc txn;
    varint enc gid
  | Checkpoint { lsn; active } ->
    reset enc ~tag:'k';
    int64 enc lsn;
    varint enc (List.length active);
    List.iter (varint enc) active
  | Fuzzy_checkpoint { lsn; start_lsn; active; dirty } ->
    reset enc ~tag:'f';
    int64 enc lsn;
    varint enc start_lsn;
    varint enc (List.length active);
    List.iter (varint enc) active;
    varint enc (List.length dirty);
    List.iter
      (fun (page, rec_lsn) ->
        varint enc page;
        varint enc rec_lsn)
      dirty);
  finish enc

let encode r = encode_with (Wal_codec.Enc.create ()) r

(* --- unchecked peeks ------------------------------------------------ *)

(* Every record shape places its LSN at bytes 1-8 (after the tag) and —
   for the transaction-bearing shapes — its txn id at bytes 9-16, in
   both the legacy and v2 framings, so both read with two loads and no
   checksum pass.  Safe only on records the engine itself appended (the
   in-memory journals hold exactly what [encode] produced); [decode]
   remains the checked path. *)

let peek_lsn s =
  if String.length s < 17 then raise (Corrupt "record too short");
  Int64.to_int (String.get_int64_le s 1)

let peek_txn s =
  if String.length s < 17 then raise (Corrupt "record too short");
  match s.[0] with
  | 'U' | 'C' | 'A' | 'u' | 'd' | 'o' | 'c' | 'a' | 'p' ->
    if String.length s < 25 then raise (Corrupt "record too short");
    Some (Int64.to_int (String.get_int64_le s 9))
  | _ -> None

let peek_is_fuzzy_checkpoint s =
  String.length s > 0 && (s.[0] = 'f' || s.[0] = 'F')

(* --- v2 decode ------------------------------------------------------ *)

let decode_v2 s =
  let open Wal_codec.Dec in
  let c = start s in
  let r =
    match Wal_codec.Dec.tag s with
    | 'u' ->
      let lsn = int64 c in
      let txn = int64 c in
      let page = varint c in
      let before = bytes c in
      let after = bytes c in
      Update { lsn; txn; page; before; after }
    | 'd' ->
      let lsn = int64 c in
      let txn = int64 c in
      let page = varint c in
      let off = varint c in
      let prev_lsn = varint c in
      let len = varint c in
      let before_slice = string c in
      let after_slice = string c in
      if off < header_bytes then raise (Corrupt "delta slice overlaps the page header");
      if String.length before_slice <> len || String.length after_slice <> len then
        raise (Corrupt "delta slice length mismatch");
      Delta { lsn; txn; page; off; prev_lsn; before_slice; after_slice }
    | 'o' ->
      let lsn = int64 c in
      let txn = int64 c in
      let key = varint c in
      let value =
        match byte c with
        | 0 -> None
        | 1 -> Some (string c)
        | _ -> raise (Corrupt "bad op flag")
      in
      Op { lsn; txn; key; value }
    | 'c' ->
      let lsn = int64 c in
      let txn = int64 c in
      Commit { lsn; txn }
    | 'a' ->
      let lsn = int64 c in
      let txn = int64 c in
      Abort { lsn; txn }
    | 'p' ->
      let lsn = int64 c in
      let txn = int64 c in
      let gid = varint c in
      Prepare { lsn; txn; gid }
    | 'k' ->
      let lsn = int64 c in
      let n = varint c in
      let active = List.init n (fun _ -> varint c) in
      Checkpoint { lsn; active }
    | 'f' ->
      let lsn = int64 c in
      let start_lsn = varint c in
      let n = varint c in
      let active = List.init n (fun _ -> varint c) in
      let d = varint c in
      let dirty =
        List.init d (fun _ ->
            let page = varint c in
            let rec_lsn = varint c in
            (page, rec_lsn))
      in
      Fuzzy_checkpoint { lsn; start_lsn; active; dirty }
    | tag -> raise (Corrupt (Printf.sprintf "unknown tag %C" tag))
  in
  if not (finished c) then raise (Corrupt "trailing bytes");
  r

(* --- legacy decode -------------------------------------------------- *)

(* The pre-codec format: uppercase tags, every integer a fixed 8-byte
   field, 31-polynomial checksum.  Kept so journals written before the
   codec change (persisted fixtures, mixed-version tests) still
   decode; [encode] never emits it. *)

let legacy_checksum s stop =
  let h = ref 0 in
  for i = 0 to stop - 1 do
    h := ((!h * 31) + Char.code (String.unsafe_get s i)) land 0x3FFFFFFF
  done;
  !h

type legacy_cursor = { ls : string; mutable lpos : int; llimit : int }

let take_int c =
  if c.lpos + 8 > c.llimit then raise (Corrupt "truncated integer");
  let v = Int64.to_int (String.get_int64_le c.ls c.lpos) in
  c.lpos <- c.lpos + 8;
  v

let take_bytes c =
  let len = take_int c in
  if len < 0 || c.lpos + len > c.llimit then raise (Corrupt "truncated payload");
  (* Single copy (the old path went String.sub then Bytes.of_string). *)
  let b = Bytes.create len in
  Bytes.blit_string c.ls c.lpos b 0 len;
  c.lpos <- c.lpos + len;
  b

let decode_legacy s =
  if String.length s < 9 then raise (Corrupt "record too short");
  let body = String.length s - 8 in
  let stored = Int64.to_int (String.get_int64_le s body) in
  if legacy_checksum s body <> stored then raise (Corrupt "checksum mismatch");
  let c = { ls = s; lpos = 1; llimit = body } in
  match s.[0] with
  | 'U' ->
    let lsn = take_int c in
    let txn = take_int c in
    let page = take_int c in
    let before = take_bytes c in
    let after = take_bytes c in
    Update { lsn; txn; page; before; after }
  | 'C' ->
    let lsn = take_int c in
    let txn = take_int c in
    Commit { lsn; txn }
  | 'A' ->
    let lsn = take_int c in
    let txn = take_int c in
    Abort { lsn; txn }
  | 'K' ->
    let lsn = take_int c in
    let n = take_int c in
    if n < 0 then raise (Corrupt "negative active count");
    let active = List.init n (fun _ -> take_int c) in
    Checkpoint { lsn; active }
  | 'F' ->
    let lsn = take_int c in
    let start_lsn = take_int c in
    let n = take_int c in
    if n < 0 then raise (Corrupt "negative active count");
    let active = List.init n (fun _ -> take_int c) in
    let d = take_int c in
    if d < 0 then raise (Corrupt "negative dirty count");
    let dirty =
      List.init d (fun _ ->
          let page = take_int c in
          let rec_lsn = take_int c in
          (page, rec_lsn))
    in
    Fuzzy_checkpoint { lsn; start_lsn; active; dirty }
  | tag -> raise (Corrupt (Printf.sprintf "unknown tag %C" tag))

let encode_legacy r =
  let buf = Buffer.create 64 in
  let add_int v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Buffer.add_bytes buf b
  in
  let add_bytes s =
    add_int (Bytes.length s);
    Buffer.add_bytes buf s
  in
  (match r with
  | Update { lsn; txn; page; before; after } ->
    Buffer.add_char buf 'U';
    add_int lsn;
    add_int txn;
    add_int page;
    add_bytes before;
    add_bytes after
  | Commit { lsn; txn } ->
    Buffer.add_char buf 'C';
    add_int lsn;
    add_int txn
  | Abort { lsn; txn } ->
    Buffer.add_char buf 'A';
    add_int lsn;
    add_int txn
  | Checkpoint { lsn; active } ->
    Buffer.add_char buf 'K';
    add_int lsn;
    add_int (List.length active);
    List.iter add_int active
  | Fuzzy_checkpoint { lsn; start_lsn; active; dirty } ->
    Buffer.add_char buf 'F';
    add_int lsn;
    add_int start_lsn;
    add_int (List.length active);
    List.iter add_int active;
    add_int (List.length dirty);
    List.iter
      (fun (page, rec_lsn) ->
        add_int page;
        add_int rec_lsn)
      dirty
  | Delta _ | Op _ | Prepare _ -> invalid_arg "Wal.encode_legacy: no legacy framing for this shape");
  let body = Buffer.contents buf in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 (Int64.of_int (legacy_checksum body (String.length body)));
  body ^ Bytes.to_string tail

let decode s =
  if String.length s = 0 then raise (Corrupt "empty record");
  match s.[0] with
  | 'U' | 'C' | 'A' | 'K' | 'F' -> decode_legacy s
  | _ -> decode_v2 s

let pp ppf = function
  | Update { lsn; txn; page; _ } -> Format.fprintf ppf "Update(lsn=%d txn=%d page=%d)" lsn txn page
  | Delta { lsn; txn; page; off; prev_lsn; before_slice; _ } ->
    Format.fprintf ppf "Delta(lsn=%d prev=%d txn=%d page=%d [%d,%d))" lsn prev_lsn txn page off
      (off + String.length before_slice)
  | Op { lsn; txn; key; value } ->
    Format.fprintf ppf "Op(lsn=%d txn=%d %s)" lsn txn
      (match value with Some v -> Printf.sprintf "put %d=%S" key v | None -> Printf.sprintf "del %d" key)
  | Commit { lsn; txn } -> Format.fprintf ppf "Commit(lsn=%d txn=%d)" lsn txn
  | Abort { lsn; txn } -> Format.fprintf ppf "Abort(lsn=%d txn=%d)" lsn txn
  | Prepare { lsn; txn; gid } -> Format.fprintf ppf "Prepare(lsn=%d txn=%d gid=%d)" lsn txn gid
  | Checkpoint { lsn; active } ->
    Format.fprintf ppf "Checkpoint(lsn=%d active=[%s])" lsn
      (String.concat ";" (List.map string_of_int active))
  | Fuzzy_checkpoint { lsn; start_lsn; active; dirty } ->
    Format.fprintf ppf "FuzzyCkpt(lsn=%d start=%d active=[%s] dirty=[%s])" lsn start_lsn
      (String.concat ";" (List.map string_of_int active))
      (String.concat ";" (List.map (fun (p, l) -> Printf.sprintf "%d@%d" p l) dirty))
