exception Corrupt of string

type record =
  | Update of { lsn : int; txn : int; page : int; before : bytes; after : bytes }
  | Commit of { lsn : int; txn : int }
  | Abort of { lsn : int; txn : int }
  | Checkpoint of { lsn : int; active : int list }
  | Fuzzy_checkpoint of {
      lsn : int;
      start_lsn : int;
      active : int list;
      dirty : (int * int) list;  (* (page, rec_lsn), ascending by page *)
    }

let lsn = function
  | Update { lsn; _ } | Commit { lsn; _ } | Abort { lsn; _ } | Checkpoint { lsn; _ }
  | Fuzzy_checkpoint { lsn; _ } ->
    lsn

let txn_of = function
  | Update { txn; _ } | Commit { txn; _ } | Abort { txn; _ } -> Some txn
  | Checkpoint _ | Fuzzy_checkpoint _ -> None

(* --- binary encoding ---------------------------------------------- *)

let add_int buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let add_bytes buf s =
  add_int buf (Bytes.length s);
  Buffer.add_bytes buf s

let checksum s =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0x3FFFFFFF) s;
  !h

let encode r =
  let buf = Buffer.create 64 in
  (match r with
  | Update { lsn; txn; page; before; after } ->
    Buffer.add_char buf 'U';
    add_int buf lsn;
    add_int buf txn;
    add_int buf page;
    add_bytes buf before;
    add_bytes buf after
  | Commit { lsn; txn } ->
    Buffer.add_char buf 'C';
    add_int buf lsn;
    add_int buf txn
  | Abort { lsn; txn } ->
    Buffer.add_char buf 'A';
    add_int buf lsn;
    add_int buf txn
  | Checkpoint { lsn; active } ->
    Buffer.add_char buf 'K';
    add_int buf lsn;
    add_int buf (List.length active);
    List.iter (add_int buf) active
  | Fuzzy_checkpoint { lsn; start_lsn; active; dirty } ->
    Buffer.add_char buf 'F';
    add_int buf lsn;
    add_int buf start_lsn;
    add_int buf (List.length active);
    List.iter (add_int buf) active;
    add_int buf (List.length dirty);
    List.iter
      (fun (page, rec_lsn) ->
        add_int buf page;
        add_int buf rec_lsn)
      dirty);
  let body = Buffer.contents buf in
  let tail = Bytes.create 8 in
  Bytes.set_int64_le tail 0 (Int64.of_int (checksum body));
  body ^ Bytes.to_string tail

(* --- unchecked peeks ----------------------------------------------- *)

(* Every record shape places its LSN at bytes 1-8 (after the tag) and —
   for the transaction-bearing shapes U/C/A — its txn id at bytes 9-16,
   so both read with two loads and no checksum pass.  Safe only on
   records the engine itself appended (the in-memory journals hold
   exactly what [encode] produced); [decode] remains the checked path. *)

let peek_lsn s =
  if String.length s < 17 then raise (Corrupt "record too short");
  Int64.to_int (String.get_int64_le s 1)

let peek_txn s =
  if String.length s < 17 then raise (Corrupt "record too short");
  match s.[0] with
  | 'U' | 'C' | 'A' ->
    if String.length s < 25 then raise (Corrupt "record too short");
    Some (Int64.to_int (String.get_int64_le s 9))
  | _ -> None

let peek_is_fuzzy_checkpoint s = String.length s > 0 && s.[0] = 'F'

type cursor = { s : string; mutable pos : int }

let take_int c =
  if c.pos + 8 > String.length c.s then raise (Corrupt "truncated integer");
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let take_bytes c =
  let len = take_int c in
  if len < 0 || c.pos + len > String.length c.s then raise (Corrupt "truncated payload");
  let b = Bytes.of_string (String.sub c.s c.pos len) in
  c.pos <- c.pos + len;
  b

let decode s =
  if String.length s < 9 then raise (Corrupt "record too short");
  let body = String.sub s 0 (String.length s - 8) in
  let stored = Int64.to_int (String.get_int64_le s (String.length s - 8)) in
  if checksum body <> stored then raise (Corrupt "checksum mismatch");
  let c = { s = body; pos = 1 } in
  match body.[0] with
  | 'U' ->
    let lsn = take_int c in
    let txn = take_int c in
    let page = take_int c in
    let before = take_bytes c in
    let after = take_bytes c in
    Update { lsn; txn; page; before; after }
  | 'C' ->
    let lsn = take_int c in
    let txn = take_int c in
    Commit { lsn; txn }
  | 'A' ->
    let lsn = take_int c in
    let txn = take_int c in
    Abort { lsn; txn }
  | 'K' ->
    let lsn = take_int c in
    let n = take_int c in
    if n < 0 then raise (Corrupt "negative active count");
    let active = List.init n (fun _ -> take_int c) in
    Checkpoint { lsn; active }
  | 'F' ->
    let lsn = take_int c in
    let start_lsn = take_int c in
    let n = take_int c in
    if n < 0 then raise (Corrupt "negative active count");
    let active = List.init n (fun _ -> take_int c) in
    let d = take_int c in
    if d < 0 then raise (Corrupt "negative dirty count");
    let dirty =
      List.init d (fun _ ->
          let page = take_int c in
          let rec_lsn = take_int c in
          (page, rec_lsn))
    in
    Fuzzy_checkpoint { lsn; start_lsn; active; dirty }
  | tag -> raise (Corrupt (Printf.sprintf "unknown tag %C" tag))

let pp ppf = function
  | Update { lsn; txn; page; _ } -> Format.fprintf ppf "Update(lsn=%d txn=%d page=%d)" lsn txn page
  | Commit { lsn; txn } -> Format.fprintf ppf "Commit(lsn=%d txn=%d)" lsn txn
  | Abort { lsn; txn } -> Format.fprintf ppf "Abort(lsn=%d txn=%d)" lsn txn
  | Checkpoint { lsn; active } ->
    Format.fprintf ppf "Checkpoint(lsn=%d active=[%s])" lsn
      (String.concat ";" (List.map string_of_int active))
  | Fuzzy_checkpoint { lsn; start_lsn; active; dirty } ->
    Format.fprintf ppf "FuzzyCkpt(lsn=%d start=%d active=[%s] dirty=[%s])" lsn start_lsn
      (String.concat ";" (List.map string_of_int active))
      (String.concat ";" (List.map (fun (p, l) -> Printf.sprintf "%d@%d" p l) dirty))
