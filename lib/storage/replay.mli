(** Page-partitioned parallel log replay (the tentpole of the multicore
    recovery work).

    Restart recovery over a set of distributed log journals decomposes
    into three phases, each of which parallelizes without changing the
    result:

    {ol
    {- {b decode} — every durable record is length-checked, checksummed
       and decoded.  Records are independent, so the per-disk record
       arrays are cut into contiguous chunks and decoded across the
       {!Dbm_util.Pool} domains; chunk results are reassembled in input
       order, so the decoded arrays are identical to a serial decode.}
    {- {b partition} — update records at or after the replay start LSN
       are hash-partitioned by page ([page mod partitions]).  Every
       record of one page lands in exactly one partition, so partitions
       touch disjoint page sets.}
    {- {b merge/replay} — each partition independently groups its
       records per page, sorts them by LSN (the global total order the
       engines issue), filters through the committed-transaction set and
       folds to a final image per page: the last committed after-image
       wins, and a page touched only by losers reverts to the before
       image of its earliest retained update.  Because the fold is per
       page and pages do not straddle partitions, the images are
       independent of the partition count and of worker interleaving.}}

    Final images are handed to the caller in ascending page order, once
    per page, so disk write counts and contents are identical for any
    job count — [pool = None] (or a 1-job pool) reproduces the serial
    path exactly. *)

val map_list : ?pool:Dbm_util.Pool.t -> 'a list -> f:('a -> 'b) -> 'b list
(** The one parallel primitive every phase uses: input order in, result
    order out.  [pool = None] is [List.map]; a 1-job pool is documented
    by {!Dbm_util.Pool.map_ordered} to be a plain left-to-right map, so
    both ARE the serial path. *)

val chunk_ranges : len:int -> pieces:int -> (int * int) list
(** Contiguous [(lo, hi)] ranges covering [0, len), at most [pieces] of
    them, sizes differing by at most one.  Empty for [len <= 0]. *)

val replay_start : Wal.record array array -> int
(** The replay start LSN announced by the newest durable
    {!Wal.Fuzzy_checkpoint} record across all logs, or [0] when no
    checkpoint record survives (full-log replay). *)

val decode : ?pool:Dbm_util.Pool.t -> Journal.t array -> Wal.record array array
(** Decode every retained durable record of every journal, fanning
    contiguous chunks across the pool.  Output order per disk is append
    order, bit-identical for any pool size.
    @raise Wal.Corrupt as a serial decode would. *)

(** {2 Prefix skipping}

    Decoding is the dominant recovery cost (a checksum pass over every
    page image), so a fuzzy checkpoint only pays off if the prefix it
    licenses skipping is never decoded at all.  The helpers below work
    on the raw encoded strings ([Journal.to_array]) via the O(1)
    {!Wal.peek_lsn}/{!Wal.peek_txn} loads: find the newest checkpoint,
    binary-search each journal for the replay suffix, decode only that,
    and rebuild indexes / epilogue maxima from peeked metadata. *)

type meta = {
  lsns : int array array;  (** peeked LSN of every retained record *)
  txns : int array array;  (** peeked txn id, [-1] for checkpoint records *)
}

val scan : string array array -> meta
(** Peek LSN and txn id of every retained record — two fixed-offset
    loads per record, no checksum pass. *)

val replay_start_raw : string array array -> int
(** {!replay_start} over raw encodings: checkpoint candidates are found
    by tag byte and only those pay for a checked decode.  [0] when no
    fuzzy checkpoint record survives. *)

val suffix_starts : meta -> start_lsn:int -> int array
(** Per-journal index of the first retained record with
    [lsn >= start_lsn] (journal LSNs strictly increase, so this is a
    binary search).  Everything before it may skip decoding. *)

val decode_from :
  ?pool:Dbm_util.Pool.t -> string array array -> lo:int array -> Wal.record array array
(** Decode only the suffix [lo.(disk) ..] of each journal's raw record
    array, fanning contiguous chunks across the pool.  [decode] is this
    with [lo] all zero.
    @raise Wal.Corrupt as a serial decode would. *)

val committed : ?also:int list -> start_lsn:int -> Wal.record array array -> (int, unit) Hashtbl.t
(** Transactions with a durable commit record at [lsn >= start_lsn].
    Any transaction owning an update record in the replay range has its
    commit record (when durable at all) in the range too, because commit
    LSNs are issued after every update LSN of the transaction — so the
    range-restricted set is exactly the set full-log replay would
    compute for the transactions replay will encounter.  [also] adds
    transactions committed by external resolution (2PC in-doubt winners
    whose local — unforced — commit record did not survive the crash but
    whose coordinator decision did). *)

val in_doubt : string array array -> (int * int) list
(** Prepared-but-undecided transactions in the raw durable logs
    ([Journal.to_array]): [(txn, gid)] for every {!Wal.Prepare} record
    whose transaction has no Commit/Abort record anywhere, ascending by
    txn id.  Only prepare records pay for a checked decode; decision
    records are recognized by tag byte and peeked. *)

val expand_page : base:bytes -> Wal.record list -> (int * int * bytes * bytes) list
(** Reconstruct full [(lsn, txn, before, after)] images for one page's
    mixed {!Wal.Update}/{!Wal.Delta} chain ([recs] ascending by LSN,
    [base] the page's durable disk image).  Delta-mode engines log every
    volatile page change (updates {e and} abort restores), so the
    records form an unbroken chain of page states with [base] one of
    them (at the page's header LSN): records at or below that LSN are
    walked backward from the base to the chain's first state, and the
    forward pass rebuilds each record's images, re-anchoring at any
    full Update record.  Exposed for the property tests; replay calls
    it per page inside {!recover_sorted}. *)

val recover_sorted :
  ?pool:Dbm_util.Pool.t ->
  ?read:(page:int -> bytes) ->
  ?also_committed:int list ->
  records:Wal.record array array ->
  start_lsn:int ->
  write:(page:int -> bytes -> unit) ->
  unit ->
  unit
(** The sorted-replay strategy over the partitioned plan described
    above.  [write] receives each touched page's final image exactly
    once, in ascending page order, from the calling domain.

    When the log holds {!Wal.Delta} records, [read] must supply each
    page's durable base image; bases are snapshotted serially before
    the fan-out (worker domains never touch the disk) and each page's
    chain is expanded to full images with {!expand_page} before the
    unchanged winner/loser fold runs.  Physical-only logs never invoke
    [read].
    @raise Wal.Corrupt on delta records without a [read]. *)

val recover_logical :
  ?pool:Dbm_util.Pool.t ->
  ?also_committed:int list ->
  records:Wal.record array array ->
  start_lsn:int ->
  page_of:(int -> int) ->
  read:(page:int -> bytes) ->
  write:(page:int -> bytes -> unit) ->
  unit ->
  unit
(** REDO-only re-execution for the no-steal operation-logging engine:
    committed {!Wal.Op} records are partitioned by page ([page_of] is
    the engine's static key layout), each page's operations re-execute
    in LSN order onto its durable base image, and the page-header LSN
    guard skips operations the image already holds (idempotence).
    Loser operations are ignored — no-steal means they never reached
    the durable image.  [write] semantics as in {!recover_sorted};
    pages whose image was already current are not rewritten. *)
