(* Records ride the shared codec framing (Wal_codec): tag byte, varint
   fields, FNV-64 checksum trailer.  The tags are private to this
   engine's journals — 'A' add/update (stamp, txn, key, value),
   'D' delete (stamp, txn, key), 'C' commit id (txn), 'M' fuzzy
   checkpoint marker.  Stamps are globally ordered so (B u A) - D
   resolves by newest-wins. *)

type store = {
  n_keys : int;
  keys_per_page : int;
  n_pages : int;
  base : Vdisk.t;
  a_file : Journal.t;
  d_file : Journal.t;
  commits : Journal.t;
  enc : Wal_codec.Enc.t;
  (* txn id -> commit sequence number.  Seqs order commits totally (the
     order of the commit-journal records), which is what pins a
     snapshot: a record is visible to a snapshot iff its writer's seq
     is at or below the snapshot's horizon. *)
  committed : (int, int) Hashtbl.t;
  mutable next_seq : int;
  (* live snapshot id -> pinned horizon; the reclamation watermark is
     the minimum over this table (infinite when empty) *)
  snaps : (int, int) Hashtbl.t;
  mutable next_snap : int;
  mutable next_txn : int;
  mutable next_stamp : int;
  (* Exact maxima over the currently retained A/D records (0 when the
     files are empty): what a full scan of the files would find.  Fuzzy
     checkpoint markers persist them so recovery can skip the scan of
     everything before the marker. *)
  mutable max_record_stamp : int;
  mutable max_record_txn : int;
  mutable epoch : int;
  mutable live : int;
  auto_merge_records : int option;
  mutable recovery_pool : Dbm_util.Pool.t option;
  mutable recoveries : int;
  mutable merge_count : int;
  mutable fuzzy_checkpoints : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "differential-file"

let page_size = 1024

let corrupt what r =
  raise
    (Wal_codec.Corrupt
       (Printf.sprintf "Engine_diff: corrupt %s record (%d bytes)" what (String.length r)))

let encode_a enc ~stamp ~txn ~key ~value =
  Wal_codec.Enc.reset enc ~tag:'A';
  Wal_codec.Enc.varint enc stamp;
  Wal_codec.Enc.varint enc txn;
  Wal_codec.Enc.varint enc key;
  Wal_codec.Enc.string enc value;
  Wal_codec.Enc.finish enc

let encode_d enc ~stamp ~txn ~key =
  Wal_codec.Enc.reset enc ~tag:'D';
  Wal_codec.Enc.varint enc stamp;
  Wal_codec.Enc.varint enc txn;
  Wal_codec.Enc.varint enc key;
  Wal_codec.Enc.finish enc

let decode_a r =
  if Wal_codec.Dec.tag r <> 'A' then corrupt "A" r;
  let d = Wal_codec.Dec.start r in
  let stamp = Wal_codec.Dec.varint d in
  let txn = Wal_codec.Dec.varint d in
  let key = Wal_codec.Dec.varint d in
  let value = Wal_codec.Dec.string d in
  if not (Wal_codec.Dec.finished d) then corrupt "A" r;
  (stamp, txn, key, value)

let decode_d r =
  if Wal_codec.Dec.tag r <> 'D' then corrupt "D" r;
  let d = Wal_codec.Dec.start r in
  let stamp = Wal_codec.Dec.varint d in
  let txn = Wal_codec.Dec.varint d in
  let key = Wal_codec.Dec.varint d in
  if not (Wal_codec.Dec.finished d) then corrupt "D" r;
  (stamp, txn, key)

let encode_commit enc ~txn =
  Wal_codec.Enc.reset enc ~tag:'C';
  Wal_codec.Enc.varint enc txn;
  Wal_codec.Enc.finish enc

let decode_commit r =
  if Wal_codec.Dec.tag r <> 'C' then corrupt "commit" r;
  let d = Wal_codec.Dec.start r in
  let txn = Wal_codec.Dec.varint d in
  if not (Wal_codec.Dec.finished d) then corrupt "commit" r;
  txn

let create_with ?(n_keys = 256) ?(keys_per_page = 4) ?auto_merge_records () =
  if n_keys <= 0 then invalid_arg "Engine_diff.create: need at least one key";
  if keys_per_page <= 0 then invalid_arg "Engine_diff.create: bad keys_per_page";
  (match auto_merge_records with
  | Some n when n <= 0 -> invalid_arg "Engine_diff.create: bad auto_merge_records"
  | _ -> ());
  let n_pages = (n_keys + keys_per_page - 1) / keys_per_page in
  {
    n_keys;
    keys_per_page;
    n_pages;
    base = Vdisk.create ~pages:n_pages ~page_size ();
    a_file = Journal.create ();
    d_file = Journal.create ();
    commits = Journal.create ();
    enc = Wal_codec.Enc.create ~size:256 ();
    committed = Hashtbl.create 32;
    next_seq = 1;
    snaps = Hashtbl.create 8;
    next_snap = 0;
    auto_merge_records;
    next_txn = 1;
    next_stamp = 1;
    max_record_stamp = 0;
    max_record_txn = 0;
    epoch = 0;
    live = 0;
    recovery_pool = None;
    recoveries = 0;
    merge_count = 0;
    fuzzy_checkpoints = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

(* A and D records are appended per key, so the locking granule is the
   key itself even though the base file is paged. *)
let keys_per_page _ = 1

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

(* Set once [checkpoint] (the merge) is defined below. *)
let maybe_auto_merge : (store -> unit) ref = ref (fun _ -> ())

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live <- t.live + 1;
  { st = t; id; born = t.epoch; finished = false }

let check h = if h.finished || h.born <> h.st.epoch then raise Kv.Txn_finished

let stamp t =
  let s = t.next_stamp in
  t.next_stamp <- s + 1;
  s

(* The view (B u A) - D for one key, as seen by [own]: among the A and
   D records for the key whose writer is committed or [own], the one
   with the newest stamp decides; otherwise the base file does. *)
let get h k =
  check h;
  check_key h.st k;
  let t = h.st in
  let visible txn = txn = h.id || Hashtbl.mem t.committed txn in
  let best = ref None in
  let consider stamp outcome =
    match !best with
    | Some (s, _) when s >= stamp -> ()
    | _ -> best := Some (stamp, outcome)
  in
  Journal.iter_live
    (fun r ->
      let stamp, txn, key, value = decode_a r in
      if key = k && visible txn then consider stamp (Some value))
    t.a_file;
  Journal.iter_live
    (fun r ->
      let stamp, txn, key = decode_d r in
      if key = k && visible txn then consider stamp None)
    t.d_file;
  match !best with
  | Some (_, outcome) -> outcome
  | None -> Page.lookup (Vdisk.read_ro t.base (page_of t k)) ~key:k

let note_record t ~stamp ~txn =
  if stamp > t.max_record_stamp then t.max_record_stamp <- stamp;
  if txn > t.max_record_txn then t.max_record_txn <- txn

let put h k v =
  check h;
  check_key h.st k;
  let t = h.st in
  let s = stamp t in
  ignore (Journal.append t.a_file (encode_a t.enc ~stamp:s ~txn:h.id ~key:k ~value:v));
  note_record t ~stamp:s ~txn:h.id

let delete h k =
  check h;
  check_key h.st k;
  let t = h.st in
  let s = stamp t in
  ignore (Journal.append t.d_file (encode_d t.enc ~stamp:s ~txn:h.id ~key:k));
  note_record t ~stamp:s ~txn:h.id

let finish h =
  h.finished <- true;
  h.st.live <- h.st.live - 1

let commit_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let commit h =
  check h;
  let t = h.st in
  (* The differential files ARE the recovery data: force them, then the
     commit marker. *)
  Journal.sync t.a_file;
  Journal.sync t.d_file;
  ignore (Journal.append t.commits (encode_commit t.enc ~txn:h.id));
  Journal.sync t.commits;
  Hashtbl.replace t.committed h.id (commit_seq t);
  finish h;
  !maybe_auto_merge t

(* Group commit: the commit marker is appended but not forced, and the
   differential files are not forced either — the whole transaction
   becomes durable at the next [force_commits] (or any eager [commit],
   whose three syncs cover every pending record: the A/D/commits files
   are single shared journals, so one force is inherently global).
   Until then the transaction is committed in memory (visible to
   readers) but a crash loses it — the group-commit durability
   window.  Housekeeping (the auto-merge check) is deferred to
   [force_commits]. *)
let commit_group h =
  check h;
  let t = h.st in
  ignore (Journal.append t.commits (encode_commit t.enc ~txn:h.id));
  Hashtbl.replace t.committed h.id (commit_seq t);
  finish h

(* Records before markers: the A/D files are forced before the commits
   journal so a durable commit id can never precede the records it
   promises. *)
let force_commits t =
  Journal.sync t.a_file;
  Journal.sync t.d_file;
  Journal.sync t.commits;
  !maybe_auto_merge t

let abort h =
  check h;
  (* Appended records of an uncommitted transaction are never visible:
     nothing to undo. *)
  finish h;
  !maybe_auto_merge h.st

(* Fuzzy checkpoint markers ride in the commits journal — tag 'M' with
   varints (a_mark, d_mark, max_stamp, max_txn): the A/D sequence
   numbers everything before which was durable at marker time, plus the
   exact record-stamp/txn maxima of that durable prefix.  Recovery only
   scans records at or after the newest marker's marks; the floors
   stand in for the skipped prefix. *)
let encode_marker t =
  Wal_codec.Enc.reset t.enc ~tag:'M';
  Wal_codec.Enc.varint t.enc (Journal.synced t.a_file);
  Wal_codec.Enc.varint t.enc (Journal.synced t.d_file);
  Wal_codec.Enc.varint t.enc t.max_record_stamp;
  Wal_codec.Enc.varint t.enc t.max_record_txn;
  Wal_codec.Enc.finish t.enc

type marker = { a_mark : int; d_mark : int; stamp_floor : int; txn_floor : int }

let is_marker r = String.length r > 0 && r.[0] = 'M'

let decode_marker r =
  let d = Wal_codec.Dec.start r in
  let a_mark = Wal_codec.Dec.varint d in
  let d_mark = Wal_codec.Dec.varint d in
  let stamp_floor = Wal_codec.Dec.varint d in
  let txn_floor = Wal_codec.Dec.varint d in
  if not (Wal_codec.Dec.finished d) then corrupt "checkpoint marker" r;
  { a_mark; d_mark; stamp_floor; txn_floor }

(* Rebuild [committed] from the commit markers; the newest durable
   fuzzy-checkpoint marker (if any) rides back too. *)
let read_commits t =
  let marker = ref None in
  let seq = ref 0 in
  List.iter
    (fun r ->
      if is_marker r then marker := Some (decode_marker r)
      else begin
        (* Commit seqs rebuild from durable commit-record order — the
           order they were assigned in (appends happen at commit). *)
        incr seq;
        Hashtbl.replace t.committed (decode_commit r) !seq
      end)
    (Journal.read_all t.commits);
  t.next_seq <- !seq + 1;
  !marker

(* Max (stamp, txn) over the durable records of [journal] with sequence
   number >= [from_seq], chunk-scanned across the pool. *)
let scan_max ?pool journal ~from_seq ~decode =
  let raw = Journal.to_array journal in
  let base = Journal.synced journal - Journal.length journal in
  let lo = max 0 (from_seq - base) in
  let len = Array.length raw in
  if lo >= len then (0, 0)
  else begin
    let pieces = match pool with None -> 1 | Some p -> 4 * Dbm_util.Pool.jobs p in
    Replay.map_list ?pool
      (Replay.chunk_ranges ~len:(len - lo) ~pieces)
      ~f:(fun (clo, chi) ->
        let ms = ref 0 and mt = ref 0 in
        for i = lo + clo to lo + chi - 1 do
          let s, txn = decode raw.(i) in
          if s > !ms then ms := s;
          if txn > !mt then mt := txn
        done;
        (!ms, !mt))
    |> List.fold_left (fun (ams, amt) (ms, mt) -> (max ams ms, max amt mt)) (0, 0)
  end

(* Shared recovery epilogue: re-seed the counters from the computed
   record maxima plus the committed ids. *)
let finish_recovery t ~max_stamp ~record_txn =
  t.max_record_stamp <- max_stamp;
  t.max_record_txn <- record_txn;
  let max_txn = Hashtbl.fold (fun id _ acc -> max acc id) t.committed record_txn in
  t.next_txn <- max_txn + 1;
  t.next_stamp <- max_stamp + 1;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let recover t =
  Hashtbl.reset t.committed;
  let marker = read_commits t in
  let a_from, d_from, stamp_floor, txn_floor =
    match marker with
    | None -> (0, 0, 0, 0)
    | Some m -> (m.a_mark, m.d_mark, m.stamp_floor, m.txn_floor)
  in
  let pool = t.recovery_pool in
  let a_stamp, a_txn =
    scan_max ?pool t.a_file ~from_seq:a_from ~decode:(fun r ->
        let s, txn, _, _ = decode_a r in
        (s, txn))
  in
  let d_stamp, d_txn =
    scan_max ?pool t.d_file ~from_seq:d_from ~decode:(fun r ->
        let s, txn, _ = decode_d r in
        (s, txn))
  in
  finish_recovery t
    ~max_stamp:(max stamp_floor (max a_stamp d_stamp))
    ~record_txn:(max txn_floor (max a_txn d_txn))

let crash_and_recover t =
  Vdisk.crash t.base;
  Journal.crash t.a_file;
  Journal.crash t.d_file;
  Journal.crash t.commits;
  Hashtbl.reset t.snaps;
  t.epoch <- t.epoch + 1;
  recover t

(* The pre-parallelization recovery, preserved: one thread, full scan
   of both differential files, no marker shortcuts (markers are parsed
   only to be skipped).  [crash_and_recover] must reach the same
   fingerprint — the marker floors are defined as exactly what the full
   scan finds in the skipped prefix. *)
let crash_and_recover_reference t =
  Vdisk.crash t.base;
  Journal.crash t.a_file;
  Journal.crash t.d_file;
  Journal.crash t.commits;
  Hashtbl.reset t.snaps;
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.committed;
  ignore (read_commits t);
  let max_txn = ref 0 and max_stamp = ref 0 in
  List.iter
    (fun r ->
      let s, txn, _, _ = decode_a r in
      max_stamp := max !max_stamp s;
      max_txn := max !max_txn txn)
    (Journal.read_all t.a_file);
  List.iter
    (fun r ->
      let s, txn, _ = decode_d r in
      max_stamp := max !max_stamp s;
      max_txn := max !max_txn txn)
    (Journal.read_all t.d_file);
  finish_recovery t ~max_stamp:!max_stamp ~record_txn:!max_txn

(* Fuzzy checkpoint: force the differential files (making every record
   before the recorded marks durable), then append one marker carrying
   the exact prefix maxima.  No quiescence, no base write, no
   truncation — cost is two journal forces regardless of load.
   [sync:false] leaves the marker volatile for the
   crash-during-checkpoint tests: losing it falls back to the previous
   marker or a full scan, never to a wrong state. *)
let checkpoint_fuzzy ?(sync = true) t =
  Journal.sync t.a_file;
  Journal.sync t.d_file;
  ignore (Journal.append t.commits (encode_marker t));
  if sync then Journal.sync t.commits;
  t.fuzzy_checkpoints <- t.fuzzy_checkpoints + 1

let set_recovery_pool t pool = t.recovery_pool <- pool

let recovery_pool t = t.recovery_pool

(* Digest of everything recovery is responsible for: base pages,
   retained differential records, the committed set and the re-seeded
   counters.  Journal sequence positions are included via the synced
   counts so a truncation-shifted-but-equal state cannot alias. *)
let state_fingerprint t =
  let d = Dbm_util.Digest.create () in
  for p = 0 to t.n_pages - 1 do
    Dbm_util.Digest.string d (Bytes.to_string (Vdisk.read_ro t.base p))
  done;
  let feed_journal j =
    Dbm_util.Digest.int d (Journal.synced j);
    List.iter (Dbm_util.Digest.string d) (Journal.read_all j)
  in
  feed_journal t.a_file;
  feed_journal t.d_file;
  Hashtbl.fold (fun id _ acc -> id :: acc) t.committed []
  |> List.sort Int.compare
  |> List.iter (Dbm_util.Digest.int d);
  Dbm_util.Digest.int d t.next_stamp;
  Dbm_util.Digest.int d t.next_txn;
  Dbm_util.Digest.hex d

(* --- MVCC snapshots ------------------------------------------------- *)

(* A snapshot is just a pinned horizon: the commit seq of the newest
   commit at pin time.  Reads decide visibility per record against it —
   no copies, no locks.  The store tracks live horizons so the merge
   below never folds away (and the truncation never drops) a version
   some live snapshot can still see. *)

type snapshot = {
  s_st : store;
  s_id : int;
  s_horizon : int;
  s_born : int;
  mutable s_released : bool;
}

(* Oldest horizon any live snapshot is pinned to; commits at or below
   it are visible to every live snapshot. *)
let watermark t = Hashtbl.fold (fun _ h acc -> min h acc) t.snaps max_int

let snapshot t =
  let id = t.next_snap in
  t.next_snap <- id + 1;
  let horizon = t.next_seq - 1 in
  Hashtbl.replace t.snaps id horizon;
  { s_st = t; s_id = id; s_horizon = horizon; s_born = t.epoch; s_released = false }

let snapshot_release s =
  if not s.s_released then begin
    s.s_released <- true;
    (* After a crash the table was already reset; nothing to remove. *)
    if s.s_born = s.s_st.epoch then Hashtbl.remove s.s_st.snaps s.s_id
  end

let live_snapshots t = Hashtbl.length t.snaps

(* Same (B u A) - D resolution as [get], with visibility pinned to the
   horizon: a record counts iff its writer committed at or before the
   pin.  The base is always visible — merges only ever fold records
   every live snapshot could see (and any snapshot taken later can see
   everything the merge folded). *)
let snapshot_get s k =
  if s.s_released || s.s_born <> s.s_st.epoch then raise Kv.Txn_finished;
  let t = s.s_st in
  check_key t k;
  let visible txn =
    match Hashtbl.find_opt t.committed txn with
    | Some seq -> seq <= s.s_horizon
    | None -> false
  in
  let best = ref None in
  let consider stamp outcome =
    match !best with
    | Some (st, _) when st >= stamp -> ()
    | _ -> best := Some (stamp, outcome)
  in
  Journal.iter_live
    (fun r ->
      let stamp, txn, key, value = decode_a r in
      if key = k && visible txn then consider stamp (Some value))
    t.a_file;
  Journal.iter_live
    (fun r ->
      let stamp, txn, key = decode_d r in
      if key = k && visible txn then consider stamp None)
    t.d_file;
  match !best with
  | Some (_, outcome) -> outcome
  | None -> Page.lookup (Vdisk.read_ro t.base (page_of t k)) ~key:k

(* Merge the committed differential records into the base file and
   truncate A and D — the periodic reorganization the paper notes must
   bound the differential files' size.  Requires quiescence so no
   uncommitted record is lost by the truncation. *)
let checkpoint t =
  if t.live > 0 then failwith "Engine_diff.checkpoint: merge requires no live transactions";
  (* Force the files first: the fold, the truncation and the recomputed
     marker floors below all walk the durable window only, yet a record
     still pending here (an aborted writer's, or a group-committed one
     awaiting [force_commits]) would be synced below a *later* marker's
     mark by the next fuzzy checkpoint — which would then publish this
     merge's floors as if they covered it.  Recovery seeded from that
     marker re-issues the record's stamp and newest-wins reads go wrong.
     With the sync there is no pending tail and the floors are exact. *)
  Journal.sync t.a_file;
  Journal.sync t.d_file;
  (* Snapshot fence: the merge may fold into the base — and drop — only
     records every live snapshot can already see.  Stamps are issued
     monotonically and records appended immediately, so each file is
     stamp-ordered and the droppable set is the stamp prefix strictly
     before the earliest-stamped record whose writer committed past the
     watermark.  (A prefix cut per stamp, not per seq: a snapshot must
     keep finding the newest visible record for a key in the journals
     whenever any journal record for that key survives, so no record
     may be dropped while an older-stamped one for the same key is
     retained.)  With no live snapshots the fence is infinite and this
     is the full merge. *)
  let fence = ref max_int in
  if Hashtbl.length t.snaps > 0 then begin
    let wm = watermark t in
    let consider stamp txn =
      match Hashtbl.find_opt t.committed txn with
      | Some seq when seq > wm -> if stamp < !fence then fence := stamp
      | Some _ | None -> ()
    in
    Journal.iter_all
      (fun r ->
        let stamp, txn, _, _ = decode_a r in
        consider stamp txn)
      t.a_file;
    Journal.iter_all
      (fun r ->
        let stamp, txn, _ = decode_d r in
        consider stamp txn)
      t.d_file
  end;
  let fence = !fence in
  (* One pass over each file builds key -> newest committed outcome;
     stamps are unique and monotonically issued, so newest-wins per key
     is order-independent and matches the old per-key re-scan exactly. *)
  let winners : (int, int * string option) Hashtbl.t = Hashtbl.create 64 in
  let consider key stamp outcome =
    match Hashtbl.find_opt winners key with
    | Some (s, _) when s >= stamp -> ()
    | _ -> Hashtbl.replace winners key (stamp, outcome)
  in
  Journal.iter_all
    (fun r ->
      let stamp, txn, key, value = decode_a r in
      if stamp < fence && Hashtbl.mem t.committed txn then consider key stamp (Some value))
    t.a_file;
  Journal.iter_all
    (fun r ->
      let stamp, txn, key = decode_d r in
      if stamp < fence && Hashtbl.mem t.committed txn then consider key stamp None)
    t.d_file;
  for p = 0 to t.n_pages - 1 do
    let page = Vdisk.read t.base p in
    let changed = ref false in
    for k = p * t.keys_per_page to min ((p + 1) * t.keys_per_page) t.n_keys - 1 do
      match Hashtbl.find_opt winners k with
      | None -> ()
      | Some (_, outcome) ->
        Page.update page ~key:k ~value:outcome;
        changed := true
    done;
    if !changed then Vdisk.write t.base p page
  done;
  (* Base durable first; replaying the (idempotent) records after a
     badly-timed crash is harmless, losing base pages is not. *)
  Vdisk.sync t.base;
  (* Drop each file's sub-fence stamp prefix; with no live snapshots
     that is every durable record, exactly the old full truncation. *)
  let cut journal stamp_of =
    let raw = Journal.to_array journal in
    let base = Journal.synced journal - Journal.length journal in
    let n = Array.length raw in
    let i = ref 0 in
    while !i < n && stamp_of raw.(!i) < fence do
      incr i
    done;
    Journal.truncate journal ~keep_from:(base + !i)
  in
  cut t.a_file (fun r ->
      let s, _, _, _ = decode_a r in
      s);
  cut t.d_file (fun r ->
      let s, _, _ = decode_d r in
      s);
  (* The record maxima a full durable scan would now find — zero after
     a full truncation — and every older checkpoint marker's floors are
     stale either way.  Record the new state durably so recovery never
     trusts one. *)
  let ms = ref 0 and mt = ref 0 in
  let note s txn =
    if s > !ms then ms := s;
    if txn > !mt then mt := txn
  in
  Journal.iter_all
    (fun r ->
      let s, txn, _, _ = decode_a r in
      note s txn)
    t.a_file;
  Journal.iter_all
    (fun r ->
      let s, txn, _ = decode_d r in
      note s txn)
    t.d_file;
  t.max_record_stamp <- !ms;
  t.max_record_txn <- !mt;
  ignore (Journal.append t.commits (encode_marker t));
  Journal.sync t.commits;
  t.merge_count <- t.merge_count + 1

let () =
  maybe_auto_merge :=
    fun t ->
      match t.auto_merge_records with
      | Some threshold
        when t.live = 0 && Journal.length t.a_file + Journal.length t.d_file >= threshold ->
        checkpoint t
      | Some _ | None -> ()

let a_size t = Journal.length t.a_file

let d_size t = Journal.length t.d_file

let merges t = t.merge_count

let stats t =
  [
    ("disk_reads", Vdisk.reads t.base);
    ("disk_writes", Vdisk.writes t.base);
    ("a_records", a_size t);
    ("d_records", d_size t);
    ("committed", Hashtbl.length t.committed);
    ("live_txns", t.live);
    ("recoveries", t.recoveries);
    ("merges", t.merge_count);
    ("fuzzy_checkpoints", t.fuzzy_checkpoints);
  ]
