(* A record: "stamp txn key value" (value base64-free: we store the raw
   value after a length prefix to keep parsing unambiguous).
   D record: "stamp txn key".  Commit marker journal: txn ids.  Stamps
   are globally ordered so (B u A) - D resolves by newest-wins. *)

type store = {
  n_keys : int;
  keys_per_page : int;
  n_pages : int;
  base : Vdisk.t;
  a_file : Journal.t;
  d_file : Journal.t;
  commits : Journal.t;
  committed : (int, unit) Hashtbl.t;
  mutable next_txn : int;
  mutable next_stamp : int;
  mutable epoch : int;
  mutable live : int;
  auto_merge_records : int option;
  mutable recoveries : int;
  mutable merge_count : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "differential-file"

let page_size = 1024

let encode_a ~stamp ~txn ~key ~value =
  Printf.sprintf "%d %d %d %d:%s" stamp txn key (String.length value) value

let encode_d ~stamp ~txn ~key = Printf.sprintf "%d %d %d" stamp txn key

let decode_a r =
  match String.index_opt r ':' with
  | None -> invalid_arg ("Engine_diff: corrupt A record " ^ r)
  | Some colon ->
    let head = String.sub r 0 colon in
    (match String.split_on_char ' ' head with
    | [ stamp; txn; key; len ] ->
      let len = int_of_string len in
      let value = String.sub r (colon + 1) len in
      (int_of_string stamp, int_of_string txn, int_of_string key, value)
    | _ -> invalid_arg ("Engine_diff: corrupt A record " ^ r))

let decode_d r =
  match String.split_on_char ' ' r with
  | [ stamp; txn; key ] -> (int_of_string stamp, int_of_string txn, int_of_string key)
  | _ -> invalid_arg ("Engine_diff: corrupt D record " ^ r)

let create_with ?(n_keys = 256) ?(keys_per_page = 4) ?auto_merge_records () =
  if n_keys <= 0 then invalid_arg "Engine_diff.create: need at least one key";
  if keys_per_page <= 0 then invalid_arg "Engine_diff.create: bad keys_per_page";
  (match auto_merge_records with
  | Some n when n <= 0 -> invalid_arg "Engine_diff.create: bad auto_merge_records"
  | _ -> ());
  let n_pages = (n_keys + keys_per_page - 1) / keys_per_page in
  {
    n_keys;
    keys_per_page;
    n_pages;
    base = Vdisk.create ~pages:n_pages ~page_size ();
    a_file = Journal.create ();
    d_file = Journal.create ();
    commits = Journal.create ();
    committed = Hashtbl.create 32;
    auto_merge_records;
    next_txn = 1;
    next_stamp = 1;
    epoch = 0;
    live = 0;
    recoveries = 0;
    merge_count = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

(* A and D records are appended per key, so the locking granule is the
   key itself even though the base file is paged. *)
let keys_per_page _ = 1

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

(* Set once [checkpoint] (the merge) is defined below. *)
let maybe_auto_merge : (store -> unit) ref = ref (fun _ -> ())

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live <- t.live + 1;
  { st = t; id; born = t.epoch; finished = false }

let check h = if h.finished || h.born <> h.st.epoch then raise Kv.Txn_finished

let stamp t =
  let s = t.next_stamp in
  t.next_stamp <- s + 1;
  s

(* The view (B u A) - D for one key, as seen by [own]: among the A and
   D records for the key whose writer is committed or [own], the one
   with the newest stamp decides; otherwise the base file does. *)
let get h k =
  check h;
  check_key h.st k;
  let t = h.st in
  let visible txn = txn = h.id || Hashtbl.mem t.committed txn in
  let best = ref None in
  let consider stamp outcome =
    match !best with
    | Some (s, _) when s >= stamp -> ()
    | _ -> best := Some (stamp, outcome)
  in
  Journal.iter_live
    (fun r ->
      let stamp, txn, key, value = decode_a r in
      if key = k && visible txn then consider stamp (Some value))
    t.a_file;
  Journal.iter_live
    (fun r ->
      let stamp, txn, key = decode_d r in
      if key = k && visible txn then consider stamp None)
    t.d_file;
  match !best with
  | Some (_, outcome) -> outcome
  | None -> Page.lookup (Vdisk.read_ro t.base (page_of t k)) ~key:k

let put h k v =
  check h;
  check_key h.st k;
  let t = h.st in
  ignore (Journal.append t.a_file (encode_a ~stamp:(stamp t) ~txn:h.id ~key:k ~value:v))

let delete h k =
  check h;
  check_key h.st k;
  let t = h.st in
  ignore (Journal.append t.d_file (encode_d ~stamp:(stamp t) ~txn:h.id ~key:k))

let finish h =
  h.finished <- true;
  h.st.live <- h.st.live - 1

let commit h =
  check h;
  let t = h.st in
  (* The differential files ARE the recovery data: force them, then the
     commit marker. *)
  Journal.sync t.a_file;
  Journal.sync t.d_file;
  ignore (Journal.append t.commits (string_of_int h.id));
  Journal.sync t.commits;
  Hashtbl.replace t.committed h.id ();
  finish h;
  !maybe_auto_merge t

let abort h =
  check h;
  (* Appended records of an uncommitted transaction are never visible:
     nothing to undo. *)
  finish h;
  !maybe_auto_merge h.st

let recover t =
  Hashtbl.reset t.committed;
  List.iter (fun r -> Hashtbl.replace t.committed (int_of_string r) ()) (Journal.read_all t.commits);
  let max_txn = ref 0 and max_stamp = ref 0 in
  List.iter
    (fun r ->
      let s, txn, _, _ = decode_a r in
      max_stamp := max !max_stamp s;
      max_txn := max !max_txn txn)
    (Journal.read_all t.a_file);
  List.iter
    (fun r ->
      let s, txn, _ = decode_d r in
      max_stamp := max !max_stamp s;
      max_txn := max !max_txn txn)
    (Journal.read_all t.d_file);
  Hashtbl.iter (fun id () -> max_txn := max !max_txn id) t.committed;
  t.next_txn <- !max_txn + 1;
  t.next_stamp <- !max_stamp + 1;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let crash_and_recover t =
  Vdisk.crash t.base;
  Journal.crash t.a_file;
  Journal.crash t.d_file;
  Journal.crash t.commits;
  t.epoch <- t.epoch + 1;
  recover t

(* Merge the committed differential records into the base file and
   truncate A and D — the periodic reorganization the paper notes must
   bound the differential files' size.  Requires quiescence so no
   uncommitted record is lost by the truncation. *)
let checkpoint t =
  if t.live > 0 then failwith "Engine_diff.checkpoint: merge requires no live transactions";
  (* One pass over each file builds key -> newest committed outcome;
     stamps are unique and monotonically issued, so newest-wins per key
     is order-independent and matches the old per-key re-scan exactly. *)
  let winners : (int, int * string option) Hashtbl.t = Hashtbl.create 64 in
  let consider key stamp outcome =
    match Hashtbl.find_opt winners key with
    | Some (s, _) when s >= stamp -> ()
    | _ -> Hashtbl.replace winners key (stamp, outcome)
  in
  Journal.iter_all
    (fun r ->
      let stamp, txn, key, value = decode_a r in
      if Hashtbl.mem t.committed txn then consider key stamp (Some value))
    t.a_file;
  Journal.iter_all
    (fun r ->
      let stamp, txn, key = decode_d r in
      if Hashtbl.mem t.committed txn then consider key stamp None)
    t.d_file;
  for p = 0 to t.n_pages - 1 do
    let page = Vdisk.read t.base p in
    let changed = ref false in
    for k = p * t.keys_per_page to min ((p + 1) * t.keys_per_page) t.n_keys - 1 do
      match Hashtbl.find_opt winners k with
      | None -> ()
      | Some (_, outcome) ->
        Page.update page ~key:k ~value:outcome;
        changed := true
    done;
    if !changed then Vdisk.write t.base p page
  done;
  (* Base durable first; replaying the (idempotent) records after a
     badly-timed crash is harmless, losing base pages is not. *)
  Vdisk.sync t.base;
  Journal.truncate t.a_file ~keep_from:(Journal.synced t.a_file);
  Journal.truncate t.d_file ~keep_from:(Journal.synced t.d_file);
  t.merge_count <- t.merge_count + 1

let () =
  maybe_auto_merge :=
    fun t ->
      match t.auto_merge_records with
      | Some threshold
        when t.live = 0 && Journal.length t.a_file + Journal.length t.d_file >= threshold ->
        checkpoint t
      | Some _ | None -> ()

let a_size t = Journal.length t.a_file

let d_size t = Journal.length t.d_file

let merges t = t.merge_count

let stats t =
  [
    ("disk_reads", Vdisk.reads t.base);
    ("disk_writes", Vdisk.writes t.base);
    ("a_records", a_size t);
    ("d_records", d_size t);
    ("committed", Hashtbl.length t.committed);
    ("live_txns", t.live);
    ("recoveries", t.recoveries);
    ("merges", t.merge_count);
  ]
