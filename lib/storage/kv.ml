exception Txn_finished

exception Scratch_full

module type S = sig
  type t
  type txn

  val engine_name : string
  val create : ?n_keys:int -> unit -> t
  val max_keys : t -> int
  val keys_per_page : t -> int
  val begin_txn : t -> txn
  val get : txn -> int -> string option
  val put : txn -> int -> string -> unit
  val delete : txn -> int -> unit
  val commit : txn -> unit
  val abort : txn -> unit
  val crash_and_recover : t -> unit
  val checkpoint : t -> unit
  val stats : t -> (string * int) list
end

module type SNAPSHOT = sig
  include S

  type snapshot

  val snapshot : t -> snapshot
  val snapshot_get : snapshot -> int -> string option
  val snapshot_release : snapshot -> unit
  val live_snapshots : t -> int
end

module Model : S = struct
  type t = {
    n_keys : int;
    committed : (int, string) Hashtbl.t;
    mutable epoch : int;
    mutable live : int;
  }

  type txn = {
    store : t;
    born : int;
    writes : (int, string option) Hashtbl.t;
    mutable finished : bool;
  }

  let engine_name = "model"

  let create ?(n_keys = 256) () =
    if n_keys <= 0 then invalid_arg "Model.create: need at least one key";
    { n_keys; committed = Hashtbl.create 64; epoch = 0; live = 0 }

  let max_keys t = t.n_keys

  let keys_per_page _ = 1

  let check_key t k =
    if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

  let begin_txn t =
    t.live <- t.live + 1;
    { store = t; born = t.epoch; writes = Hashtbl.create 8; finished = false }

  let check txn =
    if txn.finished || txn.born <> txn.store.epoch then raise Txn_finished

  let get txn k =
    check txn;
    check_key txn.store k;
    match Hashtbl.find_opt txn.writes k with
    | Some v -> v
    | None -> Hashtbl.find_opt txn.store.committed k

  let put txn k v =
    check txn;
    check_key txn.store k;
    Hashtbl.replace txn.writes k (Some v)

  let delete txn k =
    check txn;
    check_key txn.store k;
    Hashtbl.replace txn.writes k None

  let finish txn =
    txn.finished <- true;
    txn.store.live <- txn.store.live - 1

  let commit txn =
    check txn;
    Hashtbl.iter
      (fun k v ->
        match v with
        | Some v -> Hashtbl.replace txn.store.committed k v
        | None -> Hashtbl.remove txn.store.committed k)
      txn.writes;
    finish txn

  let abort txn =
    check txn;
    finish txn

  let crash_and_recover t =
    t.epoch <- t.epoch + 1;
    t.live <- 0

  let checkpoint _ = ()

  let stats t = [ ("committed_keys", Hashtbl.length t.committed); ("live_txns", t.live) ]
end
