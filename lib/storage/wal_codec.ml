(* Shared zero-copy log-record framing.  See wal_codec.mli. *)

exception Corrupt of string

let checksum s ~pos ~len = Dbm_util.Digest.fnv64_words s ~pos ~len

let varint_size v =
  if v < 0 then invalid_arg "Wal_codec.varint_size: negative";
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

(* --- encoder -------------------------------------------------------- *)

module Enc = struct
  type t = { mutable buf : Bytes.t; mutable pos : int }

  let create ?(size = 256) () = { buf = Bytes.create (max 16 size); pos = 0 }

  let ensure t n =
    let need = t.pos + n in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < need do cap := !cap * 2 done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.pos;
      t.buf <- bigger
    end

  let reset t ~tag =
    t.pos <- 0;
    ensure t 1;
    Bytes.unsafe_set t.buf 0 tag;
    t.pos <- 1

  let int64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.pos (Int64.of_int v);
    t.pos <- t.pos + 8

  let varint t v =
    if v < 0 then invalid_arg "Wal_codec.Enc.varint: negative";
    ensure t 10;
    let v = ref v in
    while !v >= 0x80 do
      Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
      t.pos <- t.pos + 1;
      v := !v lsr 7
    done;
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr !v);
    t.pos <- t.pos + 1

  let byte t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (v land 0xff));
    t.pos <- t.pos + 1

  let substring t s ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Wal_codec.Enc.substring: bad range";
    varint t len;
    ensure t len;
    Bytes.blit_string s pos t.buf t.pos len;
    t.pos <- t.pos + len

  let subbytes t b ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      invalid_arg "Wal_codec.Enc.subbytes: bad range";
    varint t len;
    ensure t len;
    Bytes.blit b pos t.buf t.pos len;
    t.pos <- t.pos + len

  let string t s = substring t s ~pos:0 ~len:(String.length s)

  let bytes t b = subbytes t b ~pos:0 ~len:(Bytes.length b)

  let size t = t.pos

  let finish t =
    let body = t.pos in
    ensure t 8;
    (* The scratch is a Bytes.t; checksum over it without a copy. *)
    let ck =
      Dbm_util.Digest.fnv64_words
        (Bytes.unsafe_to_string t.buf) ~pos:0 ~len:body
    in
    Bytes.set_int64_le t.buf body ck;
    Bytes.sub_string t.buf 0 (body + 8)
end

(* --- decoder -------------------------------------------------------- *)

module Dec = struct
  type t = { s : string; mutable pos : int; limit : int }

  let tag s =
    if String.length s = 0 then raise (Corrupt "empty record");
    String.unsafe_get s 0

  let start s =
    let len = String.length s in
    if len < 9 then raise (Corrupt "record too short");
    let stored = String.get_int64_le s (len - 8) in
    if not (Int64.equal (checksum s ~pos:0 ~len:(len - 8)) stored) then
      raise (Corrupt "checksum mismatch");
    { s; pos = 1; limit = len - 8 }

  let int64 t =
    if t.pos + 8 > t.limit then raise (Corrupt "truncated integer");
    let v = Int64.to_int (String.get_int64_le t.s t.pos) in
    t.pos <- t.pos + 8;
    v

  let varint t =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if t.pos >= t.limit then raise (Corrupt "truncated varint");
      if !shift > 62 then raise (Corrupt "varint overflow");
      let b = Char.code (String.unsafe_get t.s t.pos) in
      t.pos <- t.pos + 1;
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b < 0x80 then continue := false
    done;
    !v

  let byte t =
    if t.pos >= t.limit then raise (Corrupt "truncated byte");
    let v = Char.code (String.unsafe_get t.s t.pos) in
    t.pos <- t.pos + 1;
    v

  let string t =
    let len = varint t in
    if t.pos + len > t.limit then raise (Corrupt "truncated payload");
    let v = String.sub t.s t.pos len in
    t.pos <- t.pos + len;
    v

  let bytes t =
    let len = varint t in
    if t.pos + len > t.limit then raise (Corrupt "truncated payload");
    (* The single copy: straight from the encoded string into fresh
       bytes, no intermediate String.sub. *)
    let b = Bytes.create len in
    Bytes.blit_string t.s t.pos b 0 len;
    t.pos <- t.pos + len;
    b

  let finished t = t.pos = t.limit
end
