(* Storage-half throughput measurements.  Pure library code: the caller
   supplies the clock (bench/main and dbmsim pass Unix.gettimeofday), so
   dbm_storage itself needs no unix dependency. *)

type engine_tps = {
  engine : string;
  low_tps : float;  (* committed txns/sec, disjoint key blocks *)
  low_restarts : int;
  high_tps : float;  (* committed txns/sec, hot key set *)
  high_restarts : int;
}

type recovery_jobs_point = {
  rj_jobs : int;
  rj_oversubscribed : bool;  (* pool larger than the host's cores *)
  rj_wall_ms : float;
  rj_equivalent : bool;  (* fingerprint equals the serial reference recovery *)
}

type recovery_ckpt_point = {
  ck_fraction : float;  (* commits preceding the checkpoint; 0 = none *)
  ck_records : int;
  ck_wall_ms : float;
  ck_equivalent : bool;
}

type log_format_point = {
  lf_format : string;  (* "physical" | "delta" | "oplog" *)
  lf_committed_txns : int;
  lf_records : int;
  lf_log_bytes : int;
  lf_bytes_per_txn : float;
  lf_append_ns_per_record : float;  (* full append path, load wall / records *)
  lf_replay_wall_ms : float;  (* best-of-five serial crash-and-recover *)
  lf_replay_parallel_ms : float;  (* best wall across the parallel job counts *)
  lf_equivalent : bool;  (* equals the physical serial reference, at every job count *)
}

type server_point = {
  sv_offered_tps : float;  (* open-loop Poisson arrival rate *)
  sv_sustained_tps : float;  (* completed / makespan, simulated time *)
  sv_completed : int;
  sv_p50_us : float;  (* arrival-to-durable-ack latency percentiles *)
  sv_p99_us : float;
  sv_p999_us : float;
  sv_mean_us : float;
  sv_max_us : float;
  sv_restarts : int;
  sv_forces : int;
  sv_max_queued : int;  (* peak admission-queue depth *)
}

type server_engine = {
  sv_engine : string;
  sv_sweep : server_point list;  (* group-commit pipeline, rising load *)
  sv_eager_tps : float;  (* per-txn-sync sustained tps at the top load *)
  sv_grouped_tps : float;  (* group-commit sustained tps at the top load *)
  sv_speedup : float;  (* grouped / eager *)
  sv_eager_p99_us : float;
  sv_grouped_p99_us : float;
  sv_equivalent : bool;
      (* recovered fingerprint of a grouped commit sequence (with a
         crash between append and force) equals the eager reference *)
}

type read_mode_point = {
  rm_mode : string;  (* "xlock" | "slock" | "snapshot" *)
  rm_sustained_tps : float;
  rm_restarts : int;
  rm_ro_restarts : int;
  rm_lock_acquires : int;
  rm_ro_p50_us : float;
  rm_ro_p99_us : float;
  rm_rw_p50_us : float;
  rm_rw_p99_us : float;
}

type read_frac_point = {
  rf_read_frac : float;
  rf_heavy_tail : bool;  (* Pareto transaction sizes at this point *)
  rf_modes : read_mode_point list;
  rf_snapshot_speedup : float;  (* snapshot tps / exclusive-lock tps *)
  rf_equivalent : bool;  (* post-crash scan digests equal across modes *)
}

type read_engine = { re_engine : string; re_points : read_frac_point list }

type shard_point = {
  sh_shards : int;
  sh_oversubscribed : bool;  (* more shard domains than host cores *)
  sh_sustained_tps : float;  (* simulated time; machine-independent *)
  sh_makespan_us : float;
  sh_p99_us : float;
  sh_restarts : int;
  sh_serial_identical : bool;
      (* shards = 1 only: the Shard layer's result is field-for-field
         the plain Server.run result (vacuously true elsewhere) *)
  sh_scan_equal : bool;  (* crash-recovered scan equals the serial reference *)
  sh_in_doubt : int;  (* prepared-but-unresolved txns after recovery: must be 0 *)
}

type cross_point = {
  cf_cross_frac : float;  (* requested cross-shard transaction fraction *)
  cf_cross_txns : int;  (* transactions actually spanning >= 2 shards *)
  cf_sustained_tps : float;
  cf_p99_cross_us : float;  (* cross-shard class latency tail (0 when none) *)
  cf_scan_equal : bool;
  cf_in_doubt : int;
}

type shard_bench = {
  sb_points : shard_point list;  (* zero-cross workload, rising shard count *)
  sb_scaling : float;  (* top-shard-count tps / 1-shard tps *)
  sb_cross : cross_point list;  (* top shard count, rising cross fraction *)
  sb_equivalent : bool;
      (* every scan matched the serial reference, shards = 1 was
         bit-identical, and no transaction stayed in doubt *)
}

type t = {
  scale : int;
  (* Contended-scheduler head-to-head: identical workload through the
     pre-overhaul polling scheduler (Naive) and the wakeup scheduler. *)
  sched_txns : int;
  sched_naive_ms : float;
  sched_opt_ms : float;
  sched_speedup : float;
  sched_equivalent : bool;  (* commit order, restarts and steps all equal *)
  engines : engine_tps list;
  (* Logging-engine restart recovery at L and 2L committed txns. *)
  recovery_txns_l : int;
  recovery_records_l : int;
  recovery_wall_l_ms : float;
  recovery_records_2l : int;
  recovery_wall_2l_ms : float;
  recovery_wall_ratio : float;  (* ~linear means <= ~2.5 *)
  (* Parallel restart recovery: wall vs worker-domain count on one
     fixed log, every point fingerprint-checked against the serial
     reference replay. *)
  recovery_jobs : recovery_jobs_point list;
  recovery_parallel_speedup : float;  (* serial wall / best parallel wall *)
  (* Fuzzy checkpoints: wall vs checkpoint age on same-length logs,
     replayed serially so the saving isolates the skipped prefix. *)
  recovery_ckpt : recovery_ckpt_point list;
  recovery_ckpt_speedup : float;  (* full-replay wall / newest-checkpoint wall *)
  recovery_equivalent : bool;  (* every point above matched the reference *)
  (* Log-format head-to-head: the same committed workload through
     physical full-image logging, delta logging and operation logging;
     all three must recover to the physical reference fingerprint. *)
  log_formats : log_format_point list;
  log_delta_reduction : float;  (* physical bytes/txn over delta's *)
  log_oplog_reduction : float;
  log_format_equivalent : bool;
  (* Open-loop transaction server: offered-load sweep through the
     group-commit pipeline plus an eager-vs-grouped head-to-head at the
     top load, per engine, all in simulated time. *)
  server : server_engine list;
  server_speedup : float;  (* worst grouped/eager ratio across engines *)
  server_equivalent : bool;  (* every engine's equivalence check passed *)
  (* MVCC snapshot reads: read-heavy open-loop sweep per
     snapshot-capable engine, exclusive-lock baseline vs S/X locked
     reads vs snapshot read-only class. *)
  read_heavy : read_engine list;
  read_speedup : float;  (* worst snapshot/xlock tps ratio at ~0.9 *)
  read_ro_restarts : int;  (* total snapshot-mode read-only restarts *)
  read_equivalent : bool;  (* every point's cross-mode scan check passed *)
  (* Sharded multicore execution: tps vs shard count on a fully
     partitionable workload, plus a cross-shard-fraction sweep at the
     top shard count through two-phase commit. *)
  shard : shard_bench;
  pool_hit_ns : float;
  pool_miss_ns : float;
  journal_append_per_sec : float;
  journal_append_sync_per_sec : float;  (* with a sync every 64 appends *)
}

let time now f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* --- contended scheduler: naive polling vs wakeup parking ----------- *)

(* Many scripts each pin down a block of private pages, then contend on
   one hot page.  The private locks make the lock table large, which is
   exactly what the naive scheduler's whole-table folds pay for on every
   poll of a blocked script; the wakeup scheduler parks the blocked
   scripts instead. *)
let sched_scripts ~scripts ~privates =
  let hot = scripts * privates in
  List.init scripts (fun i ->
      let base = i * privates in
      let ops =
        List.init privates (fun j -> Scheduler.Put (base + j, "p"))
        @ [ Scheduler.Put (hot, "h"); Scheduler.Get (hot) ]
      in
      (i + 1, ops))

let run_sched_comparison ~now ~scale =
  let scripts = 24 * scale and privates = 40 in
  let n_keys = (scripts * privates) + 1 in
  let specs = sched_scripts ~scripts ~privates in
  let max_steps = 100_000_000 in
  let module NSched = Naive.Sched (Kv.Model) in
  let module OSched = Scheduler.Make (Kv.Model) in
  let naive_engine = Kv.Model.create ~n_keys () in
  let r_naive, naive_s = time now (fun () -> NSched.run ~max_steps naive_engine ~scripts:specs) in
  let opt_engine = Kv.Model.create ~n_keys () in
  let r_opt, opt_s = time now (fun () -> OSched.run ~max_steps opt_engine ~scripts:specs) in
  let equivalent =
    r_naive.Scheduler.commit_order = r_opt.Scheduler.commit_order
    && r_naive.Scheduler.restarts = r_opt.Scheduler.restarts
    && r_naive.Scheduler.steps = r_opt.Scheduler.steps
  in
  (scripts, naive_s *. 1000., opt_s *. 1000., equivalent)

(* --- per-engine committed-txns/sec under the 2PL scheduler ---------- *)

let value = "value-0123456789abcdef"

(* 8 scripts on disjoint 16-key blocks: no blocking at any page granule. *)
let low_contention_scripts =
  List.init 8 (fun i ->
      let base = i * 16 in
      ( i + 1,
        List.init 4 (fun j -> Scheduler.Put (base + j, value))
        @ List.init 2 (fun j -> Scheduler.Get (base + j)) ))

(* 8 scripts over keys 0..7 in per-script orders: lots of blocking and
   some deadlock restarts at page or key granularity. *)
let high_contention_scripts =
  List.init 8 (fun i ->
      ( i + 1,
        [
          Scheduler.Put ((i * 3) mod 8, value);
          Scheduler.Get ((i * 5 + 1) mod 8);
          Scheduler.Put ((i * 7 + 2) mod 8, value);
          Scheduler.Get ((i + 3) mod 8);
          Scheduler.Put ((i * 5 + 4) mod 8, value);
        ] ))

let bench_engine (module E : Kv.S) ~now ~rounds =
  let module Sched = Scheduler.Make (E) in
  let measure scripts =
    let engine = E.create () in
    let committed = ref 0 and restarts = ref 0 in
    let _, wall_s =
      time now (fun () ->
          for _ = 1 to rounds do
            let r = Sched.run engine ~scripts in
            committed := !committed + List.length r.Scheduler.commit_order;
            restarts := !restarts + r.Scheduler.restarts
          done)
    in
    (float_of_int !committed /. wall_s, !restarts)
  in
  let low_tps, low_restarts = measure low_contention_scripts in
  let high_tps, high_restarts = measure high_contention_scripts in
  { engine = E.engine_name; low_tps; low_restarts; high_tps; high_restarts }

let all_engines : (module Kv.S) list =
  [
    (module Engine_log);
    (module Engine_shadow);
    (module Engine_versel);
    (module Engine_overwrite.No_undo);
    (module Engine_overwrite.No_redo);
    (module Engine_diff);
    (module Kv.Model);
  ]

(* --- recovery wall vs durable log length ---------------------------- *)

(* [checkpoint_after]: after that many committed transactions the engine
   flushes (the page cleaner catching up) and takes a fuzzy checkpoint;
   the remaining transactions dirty pages again on top of it, so the
   checkpoint ages as the log keeps growing. *)
let load_log_engine ?checkpoint_after ~txns () =
  let t = Engine_log.create_with ~n_keys:256 () in
  for i = 0 to txns - 1 do
    (match checkpoint_after with
    | Some c when i = c ->
      Engine_log.flush t;
      Engine_log.checkpoint_fuzzy t
    | _ -> ());
    let txn = Engine_log.begin_txn t in
    for j = 0 to 7 do
      Engine_log.put txn (((i * 8) + j) mod 256) value
    done;
    Engine_log.commit txn
  done;
  t

let durable_records t =
  List.fold_left
    (fun acc d -> acc + List.length (Engine_log.dump_log t ~disk:d))
    0
    (List.init (Engine_log.log_disks t) Fun.id)

(* The linearity ratio wall(2L)/wall(L) is a CI gate, so it must not
   wobble with whatever heap and machine state earlier bench sections
   left behind.  Both engines are built first, the heap is compacted
   once, and the two log lengths are then timed in alternation — any
   remaining distortion hits both measurements alike and cancels in the
   ratio.  Best of five: recovery leaves the journal intact, so repeated
   crash-and-recover runs measure the same work. *)
let recovery_walls ~now ~txns =
  let t_l = load_log_engine ~txns () in
  let t_2l = load_log_engine ~txns:(2 * txns) () in
  let records_l = durable_records t_l in
  let records_2l = durable_records t_2l in
  Gc.compact ();
  let best_l = ref infinity and best_2l = ref infinity in
  for _ = 1 to 5 do
    let (), wall_l = time now (fun () -> Engine_log.crash_and_recover t_l) in
    if wall_l < !best_l then best_l := wall_l;
    let (), wall_2l = time now (fun () -> Engine_log.crash_and_recover t_2l) in
    if wall_2l < !best_2l then best_2l := wall_2l
  done;
  (records_l, !best_l *. 1000., records_2l, !best_2l *. 1000.)

(* --- parallel recovery: wall vs worker domains ---------------------- *)

module Pool = Dbm_util.Pool

(* Best-of-five crash-and-recover wall; recovery leaves the durable
   journal intact, so repeated runs measure the same work.  Returns the
   wall and the post-recovery fingerprint for the equivalence check. *)
let timed_recovery ~now t =
  let best = ref infinity in
  for _ = 1 to 5 do
    let (), w = time now (fun () -> Engine_log.crash_and_recover t) in
    if w < !best then best := w
  done;
  (!best *. 1000., Engine_log.state_fingerprint t)

(* One fixed uncheckpointed log replayed at each domain count; every
   point's restart state must fingerprint-equal the serial reference
   replay (Naive.Log_replay), which is measured first on the same
   engine.  A 1-core host would leave no parallel point at all, so an
   oversubscribed 2-domain run stands in (and is flagged as such) —
   mirroring the table-regeneration fallback in bench/main. *)
(* The domain counts a recovery curve actually runs: the request list
   plus the jobs = 1 baseline, capped at the host's cores unless
   oversubscription is allowed, with a 2-domain stand-in when nothing
   parallel survives (1-core hosts). *)
let kept_jobs ~jobs ~allow_oversubscribe =
  let host = Pool.default_jobs () in
  let requested = List.sort_uniq Int.compare (1 :: jobs) in
  let kept =
    if allow_oversubscribe then requested
    else List.filter (fun j -> j <= host) requested
  in
  if List.exists (fun j -> j > 1) kept then kept else kept @ [ 2 ]

let recovery_vs_jobs ~now ~jobs ~allow_oversubscribe ~txns =
  let host = Pool.default_jobs () in
  let kept = kept_jobs ~jobs ~allow_oversubscribe in
  let t = load_log_engine ~txns () in
  Gc.compact ();
  Engine_log.crash_and_recover_reference t;
  let ref_fp = Engine_log.state_fingerprint t in
  let points =
    List.map
      (fun j ->
        let pool =
          if j = 1 then None else Some (Pool.create ~jobs:j ~allow_oversubscribe:true ())
        in
        Engine_log.set_recovery_pool t pool;
        let wall_ms, fp = timed_recovery ~now t in
        Engine_log.set_recovery_pool t None;
        Option.iter Pool.shutdown pool;
        {
          rj_jobs = j;
          rj_oversubscribed = j > host;
          rj_wall_ms = wall_ms;
          rj_equivalent = String.equal fp ref_fp;
        })
      kept
  in
  let serial = List.find (fun p -> p.rj_jobs = 1) points in
  let best_parallel =
    List.fold_left
      (fun acc p -> if p.rj_jobs > 1 then Float.min acc p.rj_wall_ms else acc)
      infinity points
  in
  (points, serial.rj_wall_ms /. best_parallel)

(* --- fuzzy checkpoints: wall vs checkpoint age ---------------------- *)

(* Same committed work at every point; only where (and whether) the
   fuzzy checkpoint record sits in the log varies.  Replay is serial
   (no pool), so any saving is the skipped prefix — the records before
   the checkpoint's start LSN that recovery never decodes — and not
   parallelism.  Each point's restart state is fingerprint-checked
   against the from-zero serial reference on the same engine. *)
let recovery_vs_checkpoint_age ~now ~txns =
  let fractions = [ 0.0; 0.5; 0.9 ] in
  let engines =
    List.map
      (fun frac ->
        let checkpoint_after =
          if frac <= 0.0 then None else Some (int_of_float (frac *. float_of_int txns))
        in
        (frac, load_log_engine ?checkpoint_after ~txns ()))
      fractions
  in
  Gc.compact ();
  let points =
    List.map
      (fun (frac, t) ->
        let wall_ms, fp = timed_recovery ~now t in
        Engine_log.crash_and_recover_reference t;
        let equivalent = String.equal fp (Engine_log.state_fingerprint t) in
        {
          ck_fraction = frac;
          ck_records = durable_records t;
          ck_wall_ms = wall_ms;
          ck_equivalent = equivalent;
        })
      engines
  in
  let wall_at f = (List.find (fun p -> p.ck_fraction = f) points).ck_wall_ms in
  (points, wall_at 0.0 /. wall_at 0.9)

(* --- log formats: physical vs delta vs operation logging ------------ *)

(* What the head-to-head needs from an engine; Engine_log (under either
   log format) and Engine_oplog both satisfy it. *)
module type FORMAT_ENGINE = sig
  type t

  type txn

  val begin_txn : t -> txn

  val put : txn -> int -> string -> unit

  val commit : txn -> unit

  val crash_and_recover : t -> unit

  val state_fingerprint : t -> string

  val set_recovery_pool : t -> Pool.t option -> unit

  val log_bytes : t -> int

  val records_logged : t -> int
end

(* Exactly [load_log_engine]'s committed workload, format-generic: the
   engines issue identical LSN streams on it, so their recovered states
   must fingerprint-match the physical reference byte for byte. *)
let load_format (type a) (module E : FORMAT_ENGINE with type t = a) (e : a) ~txns =
  for i = 0 to txns - 1 do
    let txn = E.begin_txn e in
    for j = 0 to 7 do
      E.put txn (((i * 8) + j) mod 256) value
    done;
    E.commit txn
  done

let format_point (type a) (module E : FORMAT_ENGINE with type t = a) ~now ~name ~txns
    ~par_jobs ~ref_fp (e : a) =
  Gc.compact ();
  let (), load_s = time now (fun () -> load_format (module E) e ~txns) in
  let records = E.records_logged e in
  let bytes = E.log_bytes e in
  let timed () =
    let best = ref infinity in
    for _ = 1 to 5 do
      let (), w = time now (fun () -> E.crash_and_recover e) in
      if w < !best then best := w
    done;
    (!best *. 1000., E.state_fingerprint e)
  in
  let serial_ms, serial_fp = timed () in
  let par =
    List.map
      (fun j ->
        let pool = Pool.create ~jobs:j ~allow_oversubscribe:true () in
        E.set_recovery_pool e (Some pool);
        let ms, fp = timed () in
        E.set_recovery_pool e None;
        Pool.shutdown pool;
        (ms, fp))
      par_jobs
  in
  {
    lf_format = name;
    lf_committed_txns = txns;
    lf_records = records;
    lf_log_bytes = bytes;
    lf_bytes_per_txn = float_of_int bytes /. float_of_int txns;
    lf_append_ns_per_record = load_s *. 1e9 /. float_of_int (max 1 records);
    lf_replay_wall_ms = serial_ms;
    lf_replay_parallel_ms =
      List.fold_left (fun acc (ms, _) -> Float.min acc ms) infinity par;
    lf_equivalent =
      String.equal serial_fp ref_fp
      && List.for_all (fun (_, fp) -> String.equal fp ref_fp) par;
  }

let known_formats = [ "physical"; "delta"; "oplog" ]

let log_format_bench ~now ~jobs ~allow_oversubscribe ~formats ~txns =
  List.iter
    (fun f ->
      if not (List.mem f known_formats) then
        invalid_arg (Printf.sprintf "Storage_bench.run: unknown log format %S" f))
    formats;
  let want f = List.mem f formats in
  let par_jobs = List.filter (fun j -> j > 1) (kept_jobs ~jobs ~allow_oversubscribe) in
  (* The cross-format reference: the physical engine's serial reference
     replay (Naive.Log_replay) on the same workload. *)
  let ref_fp =
    let t = load_log_engine ~txns () in
    Engine_log.crash_and_recover_reference t;
    Engine_log.state_fingerprint t
  in
  let physical =
    format_point
      (module Engine_log)
      ~now ~name:"physical" ~txns ~par_jobs ~ref_fp
      (Engine_log.create_with ~n_keys:256 ())
  in
  let delta =
    if not (want "delta") then None
    else
      Some
        (format_point
           (module Engine_log)
           ~now ~name:"delta" ~txns ~par_jobs ~ref_fp
           (Engine_log.create_with ~n_keys:256 ~log_format:Engine_log.Delta ()))
  in
  let oplog =
    if not (want "oplog") then None
    else
      Some
        (format_point
           (module Engine_oplog)
           ~now ~name:"oplog" ~txns ~par_jobs ~ref_fp
           (Engine_oplog.create_with ~n_keys:256 ()))
  in
  (* A format the caller excluded scores [infinity]: "no bytes spent". *)
  let reduction = function
    | Some pt when pt.lf_bytes_per_txn > 0. -> physical.lf_bytes_per_txn /. pt.lf_bytes_per_txn
    | Some _ | None -> infinity
  in
  let points = physical :: List.filter_map Fun.id [ delta; oplog ] in
  (points, reduction delta, reduction oplog, List.for_all (fun p -> p.lf_equivalent) points)

(* --- buffer pool and journal microbenchmarks ------------------------ *)

let pool_ns ~now ~iters =
  let disk = Vdisk.create ~pages:512 ~page_size:1024 () in
  let pool = Buffer_pool.create disk ~frames:128 () in
  for p = 0 to 127 do
    ignore (Buffer_pool.get pool p);
    Buffer_pool.unpin pool p
  done;
  let hit_iters = iters in
  let (), hit_s =
    time now (fun () ->
        for i = 0 to hit_iters - 1 do
          let p = i land 127 in
          ignore (Buffer_pool.get pool p);
          Buffer_pool.unpin pool p
        done)
  in
  (* 384 cold pages cycled through 128 frames: every get is a miss. *)
  let miss_iters = iters / 8 in
  let (), miss_s =
    time now (fun () ->
        for i = 0 to miss_iters - 1 do
          let p = 128 + (i mod 384) in
          ignore (Buffer_pool.get pool p);
          Buffer_pool.unpin pool p
        done)
  in
  ( hit_s *. 1e9 /. float_of_int hit_iters,
    miss_s *. 1e9 /. float_of_int miss_iters )

let journal_throughput ~now ~iters =
  let record = String.make 64 'r' in
  let j1 = Journal.create () in
  let (), append_s =
    time now (fun () ->
        for _ = 1 to iters do
          ignore (Journal.append j1 record)
        done;
        Journal.sync j1)
  in
  let j2 = Journal.create () in
  let (), append_sync_s =
    time now (fun () ->
        for i = 1 to iters do
          ignore (Journal.append j2 record);
          if i land 63 = 0 then Journal.sync j2
        done;
        Journal.sync j2)
  in
  ( float_of_int iters /. append_s,
    float_of_int iters /. append_sync_s )

(* --- open-loop server: group commit vs per-transaction sync --------- *)

module W = Dbm_workload.Workload
module Hist = Dbm_util.Stats.Histogram

module type SERVER_ENGINE = sig
  include Server.ENGINE

  val state_fingerprint : t -> string
end

(* Random-access transactions from the workload generator, one key per
   referenced page so lock conflicts stay at the paper's page granule. *)
let server_scripts ~n ~seed =
  let cfg =
    {
      W.n_transactions = n;
      min_pages = 2;
      max_pages = 8;
      write_fraction = 0.7;
      pattern = W.Random_access;
      db_pages = 1024;
      seed;
    }
  in
  Array.map
    (fun t ->
      List.init (Array.length t.W.pages) (fun i ->
          let k = t.W.pages.(i) * 4 in
          if t.W.writes.(i) then Scheduler.Put (k, value) else Scheduler.Get k))
    (W.generate cfg)

(* Deterministic serial equivalence check: a grouped commit sequence —
   forces between batches and a crash {e between append and force} on
   the middle batch — must recover to the same fingerprint as an eager
   run of exactly the surviving transactions. *)
let grouped_equivalent (type a) (module E : SERVER_ENGINE with type t = a) =
  let value_of i = Printf.sprintf "v%d" i in
  let run_grouped () =
    let e = E.create ~n_keys:64 () in
    let durable = ref [] and volatile = ref [] in
    let txn i =
      let t = E.begin_txn e in
      E.put t (i * 3 mod 64) (value_of i);
      E.commit_group t;
      volatile := (i * 3 mod 64, value_of i) :: !volatile
    in
    for i = 0 to 9 do
      txn i
    done;
    E.force_commits e;
    durable := !volatile @ !durable;
    volatile := [];
    (* commit records appended, never forced: the crash must lose
       exactly this batch *)
    for i = 10 to 14 do
      txn i
    done;
    E.crash_and_recover e;
    volatile := [];
    for i = 15 to 19 do
      txn i
    done;
    E.force_commits e;
    durable := !volatile @ !durable;
    E.crash_and_recover e;
    (E.state_fingerprint e, List.rev !durable)
  in
  let fp_grouped, survivors = run_grouped () in
  let r = E.create ~n_keys:64 () in
  List.iter
    (fun (k, v) ->
      let t = E.begin_txn r in
      E.put t k v;
      E.commit t)
    survivors;
  E.crash_and_recover r;
  String.equal fp_grouped (E.state_fingerprint r)

let server_bench_engine (type a) (module E : SERVER_ENGINE with type t = a) ~loads ~n ~seed =
  let module Srv = Server.Make (E) in
  let scripts = server_scripts ~n ~seed in
  let arrivals rate =
    let rng = Dbm_util.Prng.create (seed + int_of_float rate) in
    Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (W.Poisson { rate }) ~n)
  in
  let grouped_mode = Commit_pipeline.Grouped { batch = 32; timeout_us = 1000.0 } in
  let point ?ro_hist ?rw_hist ~mode rate =
    let e = E.create ~n_keys:4096 () in
    Srv.run ?ro_hist ?rw_hist ~mpl:64 ~op_cost_us:1.0 ~sync_cost_us:100.0 ~mode
      ~arrivals_us:(arrivals rate) ~scripts e
  in
  (* One histogram pair for the whole sweep, cleared between points:
     every point's scalars are extracted before the next run, so the
     ~6k-bucket arrays need not be reallocated per load.  The
     eager-vs-grouped head-to-head below still takes fresh histograms —
     it reads both results after both runs. *)
  let ro_h = Hist.create () and rw_h = Hist.create () in
  let sweep =
    List.map
      (fun rate ->
        Hist.clear ro_h;
        Hist.clear rw_h;
        let r = point ~ro_hist:ro_h ~rw_hist:rw_h ~mode:grouped_mode rate in
        {
          sv_offered_tps = rate;
          sv_sustained_tps = r.Server.sustained_tps;
          sv_completed = r.Server.completed;
          sv_p50_us = Hist.p50 r.Server.latency_us;
          sv_p99_us = Hist.p99 r.Server.latency_us;
          sv_p999_us = Hist.p999 r.Server.latency_us;
          sv_mean_us = Hist.mean r.Server.latency_us;
          sv_max_us = Hist.max r.Server.latency_us;
          sv_restarts = r.Server.restarts;
          sv_forces = r.Server.forces;
          sv_max_queued = r.Server.max_queued;
        })
      loads
  in
  let top = List.fold_left Float.max 0.0 loads in
  let eager = point ~mode:Commit_pipeline.Eager top in
  let grouped = point ~mode:grouped_mode top in
  {
    sv_engine = E.engine_name;
    sv_sweep = sweep;
    sv_eager_tps = eager.Server.sustained_tps;
    sv_grouped_tps = grouped.Server.sustained_tps;
    sv_speedup =
      (if eager.Server.sustained_tps > 0. then
         grouped.Server.sustained_tps /. eager.Server.sustained_tps
       else infinity);
    sv_eager_p99_us = Hist.p99 eager.Server.latency_us;
    sv_grouped_p99_us = Hist.p99 grouped.Server.latency_us;
    sv_equivalent = grouped_equivalent (module E);
  }

(* Offered loads spanning both engines' saturation points: eager
   capacity is ~1/(sync + ops) ~ 9k tps, grouped ~1/(ops + sync/batch)
   — the top points drive both pipelines well past saturation. *)
let server_loads = [ 2_000.0; 10_000.0; 40_000.0; 160_000.0; 400_000.0 ]

(* The logging engine on the slimmed (delta) log: the BENCH_7 server
   sweep re-run over far fewer log bytes per commit. *)
module Engine_log_delta = struct
  include Engine_log

  let engine_name = "logging-delta"

  let create ?n_keys () = create_with ?n_keys ~log_format:Delta ()
end

let server_bench ~scale =
  let n = 800 * scale and seed = 20_250 in
  [
    server_bench_engine (module Engine_log) ~loads:server_loads ~n ~seed;
    server_bench_engine (module Engine_log_delta) ~loads:server_loads ~n ~seed;
    server_bench_engine (module Engine_diff) ~loads:server_loads ~n ~seed;
  ]

(* --- MVCC snapshot reads: read-heavy head-to-head ------------------- *)

(* What the read-heavy sweep needs: a {!Server.ENGINE} whose engine can
   also pin MVCC snapshots.  Engine_diff, Engine_versel and
   Engine_oplog all satisfy it. *)
module type SNAPSHOT_SERVER_ENGINE = sig
  include Server.ENGINE

  type snapshot

  val snapshot : t -> snapshot

  val snapshot_get : snapshot -> int -> string option

  val snapshot_release : snapshot -> unit

  val live_snapshots : t -> int
end

let snapshot_engines : (module SNAPSHOT_SERVER_ENGINE) list =
  [ (module Engine_diff); (module Engine_versel); (module Engine_oplog) ]

(* Zipfian-page transactions with a read-only class carved out: each
   transaction's whole write set is cleared with probability
   [read_frac].  One key per referenced page keeps conflicts at the
   page granule; the heavy-tail variant draws Pareto sizes (satellite:
   mostly-small, occasionally-huge transaction mixes). *)
let read_heavy_scripts ~n ~seed ~read_frac ~heavy =
  let cfg =
    {
      W.n_transactions = n;
      min_pages = 2;
      max_pages = (if heavy then 32 else 8);
      write_fraction = 0.6;
      pattern = W.Zipfian { theta = 0.99 };
      db_pages = 256;
      seed;
    }
  in
  let size_dist = if heavy then W.Pareto_size { alpha = 1.5 } else W.Uniform_size in
  let txns = W.generate_with ~size_dist cfg in
  let rng = Dbm_util.Prng.create (seed lxor 0x5eed) in
  let txns = W.apply_read_fraction rng ~read_frac txns in
  let read_only = Array.map (fun t -> W.write_set_size t = 0) txns in
  let scripts =
    Array.map
      (fun t ->
        List.init (Array.length t.W.pages) (fun i ->
            let k = t.W.pages.(i) * 4 in
            if t.W.writes.(i) then Scheduler.Put (k, value) else Scheduler.Get k))
      txns
  in
  (scripts, read_only)

(* The committed data, as data: crash-recover, then digest a full key
   scan through a fresh transaction.  Every put writes the one constant
   [value], so the recovered store is independent of commit order and
   the three lock modes must scan identically — unlike the engines'
   [state_fingerprint]s, whose counters legitimately differ across
   modes. *)
let read_scan_digest (type a) (module E : SNAPSHOT_SERVER_ENGINE with type t = a) (e : a) =
  E.crash_and_recover e;
  let d = Dbm_util.Digest.create () in
  let txn = E.begin_txn e in
  for k = 0 to E.max_keys e - 1 do
    Dbm_util.Digest.int d k;
    match E.get txn k with
    | Some v ->
      Dbm_util.Digest.int d 1;
      Dbm_util.Digest.string d v
    | None -> Dbm_util.Digest.int d 0
  done;
  E.abort txn;
  Dbm_util.Digest.hex d

let pctl h p = if Hist.count h = 0 then 0.0 else Hist.percentile h ~p

(* One server run of the workload under one read-lock regime, through
   the eager (per-commit-force) pipeline: in the locked modes {e every}
   transaction — read-only ones included — appends a commit record and
   pays the force; the snapshot read-only class has nothing to make
   durable and bypasses the pipeline, which together with the absent
   lock waits is where its throughput headroom comes from.  Returns
   the point and the post-crash scan digest (plus a snapshot-leak
   check: every view must be closed by the end). *)
let read_mode_run (type a) (module E : SNAPSHOT_SERVER_ENGINE with type t = a) ~mode_name
    ~arrivals_us ~scripts ~read_only =
  let module Srv = Server.Make (E) in
  let e = E.create ~n_keys:1024 () in
  let snapshot =
    if not (String.equal mode_name "snapshot") then None
    else
      Some
        (fun () ->
          let s = E.snapshot e in
          {
            Scheduler.view_get = (fun k -> E.snapshot_get s k);
            view_close = (fun () -> E.snapshot_release s);
          })
  in
  let read_mode = if String.equal mode_name "xlock" then Some Lock_mgr.X else None in
  let r =
    Srv.run ?snapshot ?read_mode ~read_only ~mpl:64 ~op_cost_us:1.0 ~sync_cost_us:100.0
      ~mode:Commit_pipeline.Eager ~arrivals_us ~scripts e
  in
  let leaked = E.live_snapshots e in
  let point =
    {
      rm_mode = mode_name;
      rm_sustained_tps = r.Server.sustained_tps;
      rm_restarts = r.Server.restarts;
      rm_ro_restarts = r.Server.ro_restarts;
      rm_lock_acquires = r.Server.lock_acquires;
      rm_ro_p50_us = pctl r.Server.ro_latency_us 50.0;
      rm_ro_p99_us = pctl r.Server.ro_latency_us 99.0;
      rm_rw_p50_us = pctl r.Server.rw_latency_us 50.0;
      rm_rw_p99_us = pctl r.Server.rw_latency_us 99.0;
    }
  in
  (point, read_scan_digest (module E) e, leaked = 0)

let read_frac_point (module E : SNAPSHOT_SERVER_ENGINE) ~n ~seed ~read_frac ~heavy =
  let scripts, read_only = read_heavy_scripts ~n ~seed ~read_frac ~heavy in
  (* Offered load well above the eager baseline's ~9.5k tps capacity
     (one 100 µs force per commit), so the locked modes are
     capacity-bound and sustained tps measures capacity, not the
     arrival rate. *)
  let arrivals_us =
    let rng = Dbm_util.Prng.create (seed + int_of_float (read_frac *. 1000.0)) in
    Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (W.Poisson { rate = 160_000.0 }) ~n)
  in
  let run name = read_mode_run (module E) ~mode_name:name ~arrivals_us ~scripts ~read_only in
  let xlock, fp_x, ok_x = run "xlock" in
  let slock, fp_s, ok_s = run "slock" in
  let snap, fp_n, ok_n = run "snapshot" in
  {
    rf_read_frac = read_frac;
    rf_heavy_tail = heavy;
    rf_modes = [ xlock; slock; snap ];
    rf_snapshot_speedup =
      (if xlock.rm_sustained_tps > 0. then snap.rm_sustained_tps /. xlock.rm_sustained_tps
       else infinity);
    rf_equivalent =
      String.equal fp_x fp_s && String.equal fp_x fp_n && ok_x && ok_s && ok_n;
  }

let read_heavy_bench ~scale ~read_fracs =
  let n = 400 * scale and seed = 90_125 in
  List.map
    (fun (module E : SNAPSHOT_SERVER_ENGINE) ->
      let points =
        List.map (fun rf -> read_frac_point (module E) ~n ~seed ~read_frac:rf ~heavy:false) read_fracs
        @ [ read_frac_point (module E) ~n ~seed ~read_frac:0.9 ~heavy:true ]
      in
      { re_engine = E.engine_name; re_points = points })
    snapshot_engines

(* The gate point: among each engine's uniform-size points, the one
   closest to read fraction 0.9 (exactly 0.9 on default sweeps). *)
let read_gate_speedup read_heavy =
  List.fold_left
    (fun acc re ->
      let uniform = List.filter (fun p -> not p.rf_heavy_tail) re.re_points in
      match uniform with
      | [] -> acc
      | _ ->
        let best =
          List.fold_left
            (fun (d, sp) p ->
              let d' = Float.abs (p.rf_read_frac -. 0.9) in
              if d' < d then (d', p.rf_snapshot_speedup) else (d, sp))
            (infinity, infinity) uniform
        in
        Float.min acc (snd best))
    infinity read_heavy

let snapshot_mode_ro_restarts read_heavy =
  List.fold_left
    (fun acc re ->
      List.fold_left
        (fun acc p ->
          List.fold_left
            (fun acc m -> if String.equal m.rm_mode "snapshot" then acc + m.rm_ro_restarts else acc)
            acc p.rf_modes)
        acc re.re_points)
    0 read_heavy

(* --- sharded multicore execution: tps vs shards, cross-shard 2PC ---- *)

module Sharded_log = Shard.Make (Engine_log)
module Serial_log = Server.Make (Engine_log)

let shard_db_pages = 1024

let shard_n_keys = shard_db_pages * 4 (* 4 keys per page *)

(* Workload with an exact cross-shard fraction carved against the {e
   top} shard count's router.  The router's class at [top] refines its
   class at every divisor (x mod 2 is determined by x mod 4), so when
   the swept counts all divide the top one, a zero-cross workload stays
   single-shard at {e every} count — the fully-parallel regime the
   scaling gate measures. *)
let shard_scripts ~n ~seed ~cross_frac ~top =
  let cfg =
    {
      W.n_transactions = n;
      min_pages = 2;
      max_pages = 8;
      write_fraction = 0.7;
      pattern = W.Random_access;
      db_pages = shard_db_pages;
      seed;
    }
  in
  let txns = W.generate cfg in
  let rng = Dbm_util.Prng.create (seed lxor 0xc105) in
  let txns =
    W.apply_cross_fraction rng ~cross_frac ~classes:top
      ~class_of:(fun p -> Shard_router.shard_of_page ~shards:top p)
      ~db_pages:shard_db_pages txns
  in
  Array.map
    (fun t ->
      List.init (Array.length t.W.pages) (fun i ->
          let k = t.W.pages.(i) * 4 in
          if t.W.writes.(i) then Scheduler.Put (k, value) else Scheduler.Get k))
    txns

(* Offered load far above a single serial server's capacity, so tps
   measures capacity and the shard sweep exposes the parallel
   headroom.  Simulated time: the curve is machine-independent. *)
let shard_arrivals ~n ~seed =
  let rng = Dbm_util.Prng.create (seed + 77) in
  Array.map (fun s -> s *. 1e6) (W.gen_arrival_times rng (W.Poisson { rate = 400_000.0 }) ~n)

(* The committed data as data (as in the snapshot sweep): every put
   writes the one constant [value], so any serializable execution of
   the same transaction set scans identically after crash recovery —
   the cross-shard-count and cross-fraction equality gate. *)
let shard_scan_digest ~shards engines =
  let keys_per_page = Engine_log.keys_per_page engines.(0) in
  let d = Dbm_util.Digest.create () in
  for k = 0 to shard_n_keys - 1 do
    let s = Shard_router.shard_of_key ~shards ~keys_per_page k in
    let t = Engine_log.begin_txn engines.(s) in
    Dbm_util.Digest.int d k;
    (match Engine_log.get t k with
    | Some v ->
      Dbm_util.Digest.int d 1;
      Dbm_util.Digest.string d v
    | None -> Dbm_util.Digest.int d 0);
    Engine_log.abort t
  done;
  Dbm_util.Digest.hex d

let shard_mode = Commit_pipeline.Grouped { batch = 32; timeout_us = 1000.0 }

(* One sharded point: fresh engines and coordinator, serve the whole
   workload, then crash everything and run coordinator-resolved restart
   recovery on every shard.  Returns the result, the recovered scan
   digest, and the number of transactions still in doubt (must be 0:
   resolution records are forced during recovery). *)
let shard_run ~shards ~arrivals_us ~scripts =
  let engines =
    Array.init shards (fun _ -> Engine_log.create_with ~n_keys:shard_n_keys ~n_log_disks:2 ())
  in
  let coordinator = Coordinator_log.create () in
  let r =
    Sharded_log.run ~mpl:64 ~op_cost_us:1.0 ~sync_cost_us:100.0 ~mode:shard_mode ~arrivals_us
      ~scripts ~coordinator engines
  in
  Coordinator_log.crash_and_recover coordinator;
  Array.iter
    (Engine_log.crash_and_recover_resolved ~resolve:(fun ~gid ->
         Coordinator_log.resolve coordinator ~gid))
    engines;
  let in_doubt =
    Array.fold_left (fun acc e -> acc + List.length (Engine_log.in_doubt e)) 0 engines
  in
  (r, shard_scan_digest ~shards engines, in_doubt)

(* The serial reference for a workload: the PR 9 server on one engine,
   plain restart recovery, same scan digest. *)
let shard_serial_reference ~arrivals_us ~scripts =
  let e = Engine_log.create_with ~n_keys:shard_n_keys ~n_log_disks:2 () in
  let r =
    Serial_log.run ~mpl:64 ~op_cost_us:1.0 ~sync_cost_us:100.0 ~mode:shard_mode ~arrivals_us
      ~scripts e
  in
  Engine_log.crash_and_recover e;
  (r, shard_scan_digest ~shards:1 [| e |])

let shard_serial_identical (r : Shard.result) (direct : Server.result) =
  match r.Shard.serial with
  | None -> false
  | Some s ->
    s.Server.completed = direct.Server.completed
    && s.Server.makespan_us = direct.Server.makespan_us
    && s.Server.restarts = direct.Server.restarts
    && s.Server.forces = direct.Server.forces
    && s.Server.max_inflight = direct.Server.max_inflight
    && s.Server.max_queued = direct.Server.max_queued
    && s.Server.lock_acquires = direct.Server.lock_acquires
    && Hist.count s.Server.latency_us = Hist.count direct.Server.latency_us
    && Hist.total s.Server.latency_us = Hist.total direct.Server.latency_us
    && Hist.max s.Server.latency_us = Hist.max direct.Server.latency_us

let shard_section ~scale ~shard_counts ~cross_fracs =
  let n = 600 * scale and seed = 31_850 in
  let counts = List.sort_uniq Int.compare (1 :: shard_counts) in
  let top = List.fold_left Stdlib.max 1 counts in
  let arrivals_us = shard_arrivals ~n ~seed in
  (* tps vs shard count on the zero-cross workload *)
  let scripts0 = shard_scripts ~n ~seed ~cross_frac:0.0 ~top in
  let direct, reference = shard_serial_reference ~arrivals_us ~scripts:scripts0 in
  let points =
    List.map
      (fun shards ->
        let r, digest, in_doubt = shard_run ~shards ~arrivals_us ~scripts:scripts0 in
        {
          sh_shards = shards;
          sh_oversubscribed = r.Shard.oversubscribed;
          sh_sustained_tps = r.Shard.sustained_tps;
          sh_makespan_us = r.Shard.makespan_us;
          sh_p99_us = Hist.p99 r.Shard.latency_us;
          sh_restarts = r.Shard.restarts;
          sh_serial_identical = (shards <> 1 || shard_serial_identical r direct);
          sh_scan_equal = String.equal digest reference;
          sh_in_doubt = in_doubt;
        })
      counts
  in
  let tps_of c =
    List.fold_left (fun acc p -> if p.sh_shards = c then p.sh_sustained_tps else acc) 0.0 points
  in
  let scaling = if tps_of 1 > 0.0 then tps_of top /. tps_of 1 else infinity in
  (* cross-shard fraction sweep at the top shard count, each fraction
     gated against its own serial reference *)
  let cross =
    List.map
      (fun cf ->
        let scripts = shard_scripts ~n ~seed ~cross_frac:cf ~top in
        let _, reference = shard_serial_reference ~arrivals_us ~scripts in
        let r, digest, in_doubt = shard_run ~shards:top ~arrivals_us ~scripts in
        {
          cf_cross_frac = cf;
          cf_cross_txns = r.Shard.cross_committed;
          cf_sustained_tps = r.Shard.sustained_tps;
          cf_p99_cross_us =
            (if Hist.count r.Shard.cross_latency_us = 0 then 0.0
             else Hist.p99 r.Shard.cross_latency_us);
          cf_scan_equal = String.equal digest reference;
          cf_in_doubt = in_doubt;
        })
      cross_fracs
  in
  {
    sb_points = points;
    sb_scaling = scaling;
    sb_cross = cross;
    sb_equivalent =
      List.for_all
        (fun p -> p.sh_scan_equal && p.sh_serial_identical && p.sh_in_doubt = 0)
        points
      && List.for_all (fun c -> c.cf_scan_equal && c.cf_in_doubt = 0) cross;
  }

(* --- entry point ---------------------------------------------------- *)

let default_shard_counts = [ 1; 2; 4 ]

let default_cross_fracs = [ 0.0; 0.05; 0.2 ]

let default_read_fracs = [ 0.5; 0.9; 0.99 ]

let run ?(scale = 1) ?(jobs = [ 1; 2; 4 ]) ?(allow_oversubscribe = false)
    ?(log_formats = known_formats) ?(read_fracs = default_read_fracs)
    ?(shard_counts = default_shard_counts) ?(cross_fracs = default_cross_fracs) ~now () =
  if scale <= 0 then invalid_arg "Storage_bench.run: scale must be positive";
  if List.exists (fun j -> j < 1) jobs then
    invalid_arg "Storage_bench.run: jobs must all be >= 1";
  if read_fracs = [] || List.exists (fun f -> not (f >= 0.0 && f <= 1.0)) read_fracs then
    invalid_arg "Storage_bench.run: read_fracs must be non-empty, each in [0,1]";
  if shard_counts = [] || List.exists (fun s -> s < 1) shard_counts then
    invalid_arg "Storage_bench.run: shard_counts must be non-empty, each >= 1";
  if List.exists (fun f -> not (f >= 0.0 && f <= 1.0)) cross_fracs then
    invalid_arg "Storage_bench.run: cross_fracs must each be in [0,1]";
  let sched_txns, sched_naive_ms, sched_opt_ms, sched_equivalent =
    run_sched_comparison ~now ~scale
  in
  let engines = List.map (fun e -> bench_engine e ~now ~rounds:(20 * scale)) all_engines in
  let txns_l = 600 * scale in
  let recovery_records_l, recovery_wall_l_ms, recovery_records_2l, recovery_wall_2l_ms =
    recovery_walls ~now ~txns:txns_l
  in
  let recovery_jobs, recovery_parallel_speedup =
    recovery_vs_jobs ~now ~jobs ~allow_oversubscribe ~txns:txns_l
  in
  let recovery_ckpt, recovery_ckpt_speedup = recovery_vs_checkpoint_age ~now ~txns:txns_l in
  let log_formats, log_delta_reduction, log_oplog_reduction, log_format_equivalent =
    log_format_bench ~now ~jobs ~allow_oversubscribe ~formats:log_formats ~txns:txns_l
  in
  let server = server_bench ~scale in
  let server_speedup =
    List.fold_left (fun acc s -> Float.min acc s.sv_speedup) infinity server
  in
  let server_equivalent = List.for_all (fun s -> s.sv_equivalent) server in
  let read_heavy = read_heavy_bench ~scale ~read_fracs in
  let read_equivalent =
    List.for_all (fun re -> List.for_all (fun p -> p.rf_equivalent) re.re_points) read_heavy
  in
  let shard = shard_section ~scale ~shard_counts ~cross_fracs in
  let pool_hit_ns, pool_miss_ns = pool_ns ~now ~iters:(200_000 * scale) in
  let journal_append_per_sec, journal_append_sync_per_sec =
    journal_throughput ~now ~iters:(200_000 * scale)
  in
  {
    scale;
    sched_txns;
    sched_naive_ms;
    sched_opt_ms;
    sched_speedup = (if sched_opt_ms > 0. then sched_naive_ms /. sched_opt_ms else infinity);
    sched_equivalent;
    engines;
    recovery_txns_l = txns_l;
    recovery_records_l;
    recovery_wall_l_ms;
    recovery_records_2l;
    recovery_wall_2l_ms;
    recovery_wall_ratio =
      (if recovery_wall_l_ms > 0. then recovery_wall_2l_ms /. recovery_wall_l_ms else infinity);
    recovery_jobs;
    recovery_parallel_speedup;
    recovery_ckpt;
    recovery_ckpt_speedup;
    recovery_equivalent =
      List.for_all (fun p -> p.rj_equivalent) recovery_jobs
      && List.for_all (fun p -> p.ck_equivalent) recovery_ckpt;
    log_formats;
    log_delta_reduction;
    log_oplog_reduction;
    log_format_equivalent;
    server;
    server_speedup;
    server_equivalent;
    read_heavy;
    read_speedup = read_gate_speedup read_heavy;
    read_ro_restarts = snapshot_mode_ro_restarts read_heavy;
    read_equivalent;
    shard;
    pool_hit_ns;
    pool_miss_ns;
    journal_append_per_sec;
    journal_append_sync_per_sec;
  }
