(** Write-ahead log records and their binary encoding.

    Three logging granularities share one record type and one framing
    layer ({!Wal_codec}):

    - {b physical}: {!Update} carries full before and after images of
      the page, as in the paper's logging architecture; LSNs are
      globally ordered across all log disks, which is what lets
      recovery proceed without merging the distributed logs into one
      physical log (Section 3.1, [13]);
    - {b delta}: {!Delta} carries only the changed byte range of the
      page (a common-prefix/suffix diff of the two images), applied at
      replay by patching an image in place — far smaller records for
      small in-place value updates;
    - {b logical}: {!Op} carries the operation itself
      ([insert(k,v)]/[delete(k)]); replay re-executes it instead of
      restoring images (Lomet's logical recovery, ROADMAP item 5b). *)

exception Corrupt of string

type record =
  | Update of { lsn : int; txn : int; page : int; before : bytes; after : bytes }
  | Delta of {
      lsn : int;
      txn : int;
      page : int;
      off : int;
      prev_lsn : int;
      before_slice : string;
      after_slice : string;
    }
      (** The page {e body} changed only in [off, off + length
          before_slice): [before_slice]/[after_slice] are the old and
          new bytes of that range (equal length by construction).  The
          8-byte page-header LSN — which changes on every update and
          would otherwise drag the diff range back to byte 0 — is never
          sliced ([off >= 8]); replay reproduces it from the record
          itself: [lsn] applying forward, [prev_lsn] (the header of the
          before image) applying backward.  Carrying both slices keeps
          the record invertible, so replay can walk a page's chain in
          either direction. *)
  | Op of { lsn : int; txn : int; key : int; value : string option }
      (** Operation logging: [Some v] is [insert/put key v], [None] is
          [delete key].  No images at all — replay re-executes. *)
  | Commit of { lsn : int; txn : int }
  | Abort of { lsn : int; txn : int }
  | Prepare of { lsn : int; txn : int; gid : int }
      (** Two-phase commit vote: the transaction's effects are durable on
          this participant and it will commit iff the coordinator's
          decision record for global transaction [gid] says so.  A
          prepared transaction with no later {!Commit}/{!Abort} record is
          {e in doubt} at restart: recovery resolves it from the
          coordinator log (presumed abort when the coordinator has no
          decision). *)
  | Checkpoint of { lsn : int; active : int list }
  | Fuzzy_checkpoint of {
      lsn : int;
      start_lsn : int;
          (** replay may start at the first durable record with
              [lsn >= start_lsn]: everything older is already reflected
              in the durable data image or belongs to a transaction that
              had finished — and been undone where needed — before the
              checkpoint *)
      active : int list;  (** transactions live at checkpoint time *)
      dirty : (int * int) list;
          (** the dirty-page table: [(page, rec_lsn)] for every data
              page whose volatile image was ahead of its durable image,
              with the LSN of the earliest update it is missing *)
    }
      (** A fuzzy checkpoint: nothing is forced to the data disk and no
          log is truncated — the record only tells restart recovery how
          far into the log it may skip. *)

val lsn : record -> int

val txn_of : record -> int option
(** [None] for checkpoints. *)

(** {2 Delta computation}

    The diff that decides between {!Delta} and a full {!Update}. *)

val diff_range : before:bytes -> after:bytes -> (int * int) option
(** The smallest single [(off, len)] range outside which the two
    images agree (common-prefix/suffix diff); [None] when identical.
    @raise Invalid_argument on images of different length. *)

val delta_update :
  threshold:int -> lsn:int -> txn:int -> page:int -> before:bytes -> after:bytes -> record
(** A {!Delta} when the changed {e body} range is small enough that
    both slices together fit in [threshold] bytes
    ([2 * len <= threshold]); a full {!Update} past the threshold (a
    near-total rewrite gains nothing from slicing) or when the images
    are too small to carry the 8-byte page header.  The diff skips the
    header: [prev_lsn] is read from the before image, and the after
    image's header must already hold [lsn] (the engine stamps it before
    logging).
    @raise Invalid_argument on images of different length, or when the
    after image's header is not at [lsn]. *)

val apply_slice : bytes -> off:int -> string -> unit
(** Patch [slice] into the image at [off] — how replay applies one side
    of a {!Delta}.  @raise Corrupt when the range exceeds the image. *)

(** {2 Encoding} *)

val encode : record -> string
(** Binary encoding with a trailing checksum ({!Wal_codec} framing).
    Allocates a fresh scratch per call; engines on a hot append path
    use {!encode_with} with a reusable one. *)

val encode_with : Wal_codec.Enc.t -> record -> string
(** {!encode} through the caller's scratch buffer: fields are blitted
    straight into it and the returned string is the single allocation
    (the journal's copy of the record). *)

val decode : string -> record
(** Checked decode, one payload copy.  Dispatches on the tag byte:
    lowercase tags are the {!Wal_codec} framing, uppercase tags the
    pre-codec legacy format (fixed-width fields, 31-polynomial
    checksum), so journals written before the codec change still
    decode.
    @raise Corrupt on a damaged or truncated encoding (checksum
    mismatch, bad tag, short buffer, trailing bytes). *)

val encode_legacy : record -> string
(** The pre-codec encoding, kept for mixed-version round-trip tests.
    @raise Invalid_argument on {!Delta}/{!Op}, which postdate it. *)

(** {2 Unchecked peeks}

    Every record shape stores its LSN at a fixed offset right after the
    tag byte, and the transaction-bearing shapes store their txn id just
    past it — in the legacy and codec framings both — so both read in
    O(1) without the checksum pass [decode] pays.  These trust the
    framing: they are only safe on records the engine itself appended
    (the in-memory journals hold exactly what [encode] produced).
    Recovery uses them to locate the replay suffix and rebuild indexes
    without decoding — and checksumming — the log prefix a fuzzy
    checkpoint lets it skip. *)

val peek_lsn : string -> int
(** The encoded record's LSN, without checksum verification. *)

val peek_txn : string -> int option
(** The encoded record's txn id; [None] for checkpoint records. *)

val peek_is_fuzzy_checkpoint : string -> bool
(** Tag test: does this encoding hold a {!Fuzzy_checkpoint}? *)

val pp : Format.formatter -> record -> unit
