(** Write-ahead log records and their binary encoding.

    Update records carry full before and after images of the page, as
    in the paper's physical logging; LSNs are globally ordered across
    all log disks, which is what lets recovery proceed without merging
    the distributed logs into one physical log (Section 3.1, [13]). *)

exception Corrupt of string

type record =
  | Update of { lsn : int; txn : int; page : int; before : bytes; after : bytes }
  | Commit of { lsn : int; txn : int }
  | Abort of { lsn : int; txn : int }
  | Checkpoint of { lsn : int; active : int list }
  | Fuzzy_checkpoint of {
      lsn : int;
      start_lsn : int;
          (** replay may start at the first durable record with
              [lsn >= start_lsn]: everything older is already reflected
              in the durable data image or belongs to a transaction that
              had finished — and been undone where needed — before the
              checkpoint *)
      active : int list;  (** transactions live at checkpoint time *)
      dirty : (int * int) list;
          (** the dirty-page table: [(page, rec_lsn)] for every data
              page whose volatile image was ahead of its durable image,
              with the LSN of the earliest update it is missing *)
    }
      (** A fuzzy checkpoint: nothing is forced to the data disk and no
          log is truncated — the record only tells restart recovery how
          far into the log it may skip. *)

val lsn : record -> int

val txn_of : record -> int option
(** [None] for checkpoints. *)

val encode : record -> string
(** Binary encoding with a trailing checksum. *)

val decode : string -> record
(** @raise Corrupt on a damaged or truncated encoding (checksum
    mismatch, bad tag, short buffer). *)

(** {2 Unchecked peeks}

    Every record shape stores its LSN at a fixed offset right after the
    tag byte, and the transaction-bearing shapes store their txn id just
    past it, so both read in O(1) without the checksum pass [decode]
    pays.  These trust the framing: they are only safe on records the
    engine itself appended (the in-memory journals hold exactly what
    [encode] produced).  Recovery uses them to locate the replay suffix
    and rebuild indexes without decoding — and checksumming — the log
    prefix a fuzzy checkpoint lets it skip. *)

val peek_lsn : string -> int
(** The encoded record's LSN, without checksum verification. *)

val peek_txn : string -> int option
(** The encoded record's txn id; [None] for checkpoint records. *)

val peek_is_fuzzy_checkpoint : string -> bool
(** Tag test: does this encoding hold a {!Fuzzy_checkpoint}? *)

val pp : Format.formatter -> record -> unit
