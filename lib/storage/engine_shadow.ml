type store = {
  n_keys : int;
  keys_per_page : int;
  page_size : int;
  n_logical : int;
  table_pages : int;  (* pages per table area *)
  data_base : int;  (* first data block *)
  n_blocks : int;  (* data blocks *)
  disk : Vdisk.t;
  mutable table : int array;  (* committed logical -> physical block *)
  mutable current_area : int;  (* 0 or 1 *)
  mutable generation : int;
  free : bool array;  (* indexed by data-block ordinal *)
  mutable free_count : int;
  mutable epoch : int;
  mutable live : int;
  mutable flips : int;
  mutable recoveries : int;
}

type t = store

type txn = {
  st : store;
  born : int;
  delta : (int, int) Hashtbl.t;  (* logical page -> fresh block *)
  mutable finished : bool;
}

let engine_name = "shadow"

let entries_per_page page_size = page_size / 8

(* --- on-disk structures ------------------------------------------- *)

let master_block = 0

let encode_master t =
  let b = Bytes.make t.page_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int t.current_area);
  Bytes.set_int64_le b 8 (Int64.of_int t.generation);
  b

let table_area_base t area = 1 + (area * t.table_pages)

let write_table_area t area table =
  let epp = entries_per_page t.page_size in
  for tp = 0 to t.table_pages - 1 do
    let b = Bytes.make t.page_size '\000' in
    for i = 0 to epp - 1 do
      let logical = (tp * epp) + i in
      if logical < t.n_logical then
        Bytes.set_int64_le b (8 * i) (Int64.of_int table.(logical))
    done;
    Vdisk.write t.disk (table_area_base t area + tp) b
  done

let read_table_area t area =
  let epp = entries_per_page t.page_size in
  (* One borrowed page read per table page, not one full-page copy per
     logical entry. *)
  let cur_tp = ref (-1) in
  let cur = ref Bytes.empty in
  Array.init t.n_logical (fun logical ->
      let tp = logical / epp and i = logical mod epp in
      if tp <> !cur_tp then begin
        cur := Vdisk.read_ro t.disk (table_area_base t area + tp);
        cur_tp := tp
      end;
      Int64.to_int (Bytes.get_int64_le !cur (8 * i)))

(* --- construction -------------------------------------------------- *)

let create_with ?(n_keys = 256) ?(keys_per_page = 4) ?(spare_factor = 2) () =
  if n_keys <= 0 then invalid_arg "Engine_shadow.create: need at least one key";
  if keys_per_page <= 0 || spare_factor < 1 then invalid_arg "Engine_shadow.create: bad sizes";
  let page_size = 1024 in
  let n_logical = (n_keys + keys_per_page - 1) / keys_per_page in
  let table_pages = (n_logical * 8 / page_size) + 1 in
  let data_base = 1 + (2 * table_pages) in
  let n_blocks = n_logical * (1 + spare_factor) in
  let disk = Vdisk.create ~pages:(data_base + n_blocks) ~page_size () in
  let t =
    {
      n_keys;
      keys_per_page;
      page_size;
      n_logical;
      table_pages;
      data_base;
      n_blocks;
      disk;
      table = Array.init n_logical (fun i -> i);  (* block ordinals *)
      current_area = 0;
      generation = 0;
      free = Array.make n_blocks true;
      free_count = n_blocks;
      epoch = 0;
      live = 0;
      flips = 0;
      recoveries = 0;
    }
  in
  (* Initial identity mapping: logical page i -> data block i. *)
  for i = 0 to n_logical - 1 do
    t.free.(i) <- false
  done;
  t.free_count <- n_blocks - n_logical;
  write_table_area t 0 t.table;
  Vdisk.write t.disk master_block (encode_master t);
  Vdisk.sync t.disk;
  t

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

let keys_per_page t = t.keys_per_page

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

let block_addr t ordinal = t.data_base + ordinal

let alloc_block t =
  let rec find i =
    if i >= t.n_blocks then failwith "Engine_shadow: out of data blocks"
    else if t.free.(i) then i
    else find (i + 1)
  in
  let b = find 0 in
  t.free.(b) <- false;
  t.free_count <- t.free_count - 1;
  b

let free_block t b =
  if not t.free.(b) then begin
    t.free.(b) <- true;
    t.free_count <- t.free_count + 1
  end

(* --- transactions -------------------------------------------------- *)

let begin_txn t =
  t.live <- t.live + 1;
  { st = t; born = t.epoch; delta = Hashtbl.create 4; finished = false }

let check txn = if txn.finished || txn.born <> txn.st.epoch then raise Kv.Txn_finished

let current_ordinal txn p =
  match Hashtbl.find_opt txn.delta p with Some b -> b | None -> txn.st.table.(p)

let current_image txn p = Vdisk.read txn.st.disk (block_addr txn.st (current_ordinal txn p))

let get txn k =
  check txn;
  check_key txn.st k;
  (* Borrowed view: Page.lookup only reads the block. *)
  let p = page_of txn.st k in
  Page.lookup (Vdisk.read_ro txn.st.disk (block_addr txn.st (current_ordinal txn p))) ~key:k

let update_key txn k value =
  check txn;
  check_key txn.st k;
  let t = txn.st in
  let p = page_of t k in
  let image = current_image txn p in
  Page.update image ~key:k ~value;
  let target =
    match Hashtbl.find_opt txn.delta p with
    | Some b -> b  (* the txn's own fresh block: overwrite in place *)
    | None ->
      let b = alloc_block t in
      Hashtbl.replace txn.delta p b;
      b
  in
  Vdisk.write t.disk (block_addr t target) image

let put txn k v = update_key txn k (Some v)

let delete txn k = update_key txn k None

let finish txn =
  txn.finished <- true;
  txn.st.live <- txn.st.live - 1

let commit txn =
  check txn;
  let t = txn.st in
  if Hashtbl.length txn.delta = 0 then finish txn
  else begin
    let new_table = Array.copy t.table in
    let freed = ref [] in
    Hashtbl.iter
      (fun p b ->
        freed := t.table.(p) :: !freed;
        new_table.(p) <- b)
      txn.delta;
    let inactive = 1 - t.current_area in
    write_table_area t inactive new_table;
    (* Persist the fresh data blocks and the new table... *)
    Vdisk.sync t.disk;
    (* ...then atomically flip the master pointer to the new table. *)
    t.current_area <- inactive;
    t.generation <- t.generation + 1;
    Vdisk.write_sync t.disk master_block (encode_master t);
    t.table <- new_table;
    List.iter (free_block t) !freed;
    t.flips <- t.flips + 1;
    finish txn
  end

let abort txn =
  check txn;
  Hashtbl.iter (fun _ b -> free_block txn.st b) txn.delta;
  finish txn

(* --- crash recovery ------------------------------------------------ *)

let recover t =
  let master = Vdisk.read t.disk master_block in
  t.current_area <- Int64.to_int (Bytes.get_int64_le master 0);
  t.generation <- Int64.to_int (Bytes.get_int64_le master 8);
  t.table <- read_table_area t t.current_area;
  (* Every data block not referenced by the current table is free:
     uncommitted shadow copies vanish without any undo. *)
  Array.fill t.free 0 t.n_blocks true;
  Array.iter (fun b -> t.free.(b) <- false) t.table;
  t.free_count <- Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 t.free;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let crash_and_recover t =
  Vdisk.crash t.disk;
  t.epoch <- t.epoch + 1;
  recover t

let checkpoint _ = ()

let table_flips t = t.flips

let free_blocks t = t.free_count

let current_block t ~page =
  if page < 0 || page >= t.n_logical then invalid_arg "Engine_shadow.current_block";
  t.table.(page)

let stats t =
  [
    ("disk_reads", Vdisk.reads t.disk);
    ("disk_writes", Vdisk.writes t.disk);
    ("table_flips", t.flips);
    ("free_blocks", t.free_count);
    ("live_txns", t.live);
    ("recoveries", t.recoveries);
    ("generation", t.generation);
  ]
