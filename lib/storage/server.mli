(** The open-loop transaction server.

    The closed-loop {!Scheduler.Make.run} admits the next script when a
    previous one finishes, so it can never build a queue; this server
    is the open-loop counterpart the paper's throughput discussion
    implies: transactions {e arrive} on a simulated clock
    (microseconds) that does not care how busy the server is, an
    admission front end bounds the multiprogramming level, and all
    commits flow through one shared {!Commit_pipeline}.  Offered load
    beyond capacity shows up as queueing delay and tail latency — the
    regime where group commit pays.

    Decomposition: {!Scheduler.Make.Exec} executes operations under
    strict 2PL (admission-independent core); this module owns the
    clock, the arrival queue and the admission bound; the pipeline owns
    durability.  Costs are simulated — [op_cost_us] per executed
    operation (or rollback, or commit append), [sync_cost_us] per log
    force — so runs are deterministic and machine-independent.

    Backpressure never drops work: an arrival that finds [mpl]
    transactions in flight waits in an unbounded FIFO, and a
    transaction is in flight from admission until its durable ack, so
    [completed] always reaches the arrival count.  Per-transaction
    latency is measured arrival → durable ack (admission wait, lock
    waits, restarts, and the group-commit window all included). *)

module type ENGINE = sig
  include Kv.S

  val commit_group : txn -> unit

  val force_commits : t -> unit
end

type result = {
  completed : int;  (** transactions acknowledged (= arrivals) *)
  makespan_us : float;  (** clock instant of the last ack *)
  sustained_tps : float;  (** completed per second of simulated time *)
  restarts : int;  (** deadlock-victim restarts *)
  ro_restarts : int;
      (** restarts suffered by read-only transactions (always 0 on the
          snapshot path — they never touch the lock manager) *)
  forces : int;  (** log forces (eager commits count one each) *)
  max_inflight : int;  (** peak concurrent in-flight transactions *)
  max_queued : int;  (** peak admission-queue depth *)
  lock_acquires : int;  (** lock acquisition attempts issued *)
  latency_us : Dbm_util.Stats.Histogram.t;
      (** arrival-to-ack latency of every transaction, µs (the merge of
          the two class histograms below) *)
  ro_latency_us : Dbm_util.Stats.Histogram.t;
      (** read-only transactions only *)
  rw_latency_us : Dbm_util.Stats.Histogram.t;
      (** read-write transactions only *)
}

module Make (E : ENGINE) : sig
  val run :
    ?mpl:int ->
    ?op_cost_us:float ->
    ?sync_cost_us:float ->
    ?snapshot:(unit -> Scheduler.view) ->
    ?read_mode:Lock_mgr.mode ->
    ?read_only:bool array ->
    ?ro_hist:Dbm_util.Stats.Histogram.t ->
    ?rw_hist:Dbm_util.Stats.Histogram.t ->
    mode:Commit_pipeline.mode ->
    arrivals_us:float array ->
    scripts:Scheduler.script array ->
    E.t ->
    result
  (** Serve [scripts.(i)] arriving at [arrivals_us.(i)] (finite,
      non-negative, non-decreasing) to completion.  Defaults: [mpl] 64,
      [op_cost_us] 1.0, [sync_cost_us] 100.0 — a log force two orders
      of magnitude above an in-memory operation, the ratio that makes
      the force the dominant latency term.  Deterministic in its
      arguments.

      [read_only.(i)] marks script [i] as a read-only transaction (all
      Gets; default none).  With [snapshot] installed (see
      {!Scheduler.Make.Exec.create}) read-only transactions execute
      lock-free over pinned MVCC views, bypass the commit pipeline
      (nothing to make durable — the ack is the final step), and can
      never restart; without it they run the ordinary locked path and
      commit through the pipeline.  [read_mode] sets the lock mode of
      Gets on the locked path ({!Lock_mgr.X} = the exclusive-only
      baseline the snapshot bench compares against).

      [ro_hist]/[rw_hist] supply the per-class latency histograms
      (default: fresh ones) so sweep loops can recycle one pair via
      {!Dbm_util.Stats.Histogram.clear} across points instead of
      allocating the bucket arrays per run.  Supplied histograms must
      be empty; they are the [ro_latency_us]/[rw_latency_us] of the
      result, so extract a point's scalars before clearing.
      @raise Invalid_argument on bad parameters.
      @raise Failure on livelock (no progress for a bounded number of
      scheduler passes). *)
end
