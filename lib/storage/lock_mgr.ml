type mode = S | X

type outcome = Granted | Would_block | Deadlock of int list

type entry = {
  mutable holders : (int * mode) list;
  mutable waiters : (int * mode) list;  (* FIFO: oldest first *)
}

(* Per-transaction page sets, maintained alongside every holders/waiters
   mutation.  [held] and [waits] let release_all, waiting and the
   waits-for traversal touch only the pages a transaction is actually
   involved with instead of folding the whole lock table. *)
type txn_info = {
  held : (int, unit) Hashtbl.t;
  waits : (int, unit) Hashtbl.t;
}

type t = {
  pages : (int, entry) Hashtbl.t;
  txns : (int, txn_info) Hashtbl.t;
}

let create () = { pages = Hashtbl.create 64; txns = Hashtbl.create 16 }

let entry t page =
  match Hashtbl.find_opt t.pages page with
  | Some e -> e
  | None ->
    let e = { holders = []; waiters = [] } in
    Hashtbl.replace t.pages page e;
    e

let info t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some i -> i
  | None ->
    let i = { held = Hashtbl.create 8; waits = Hashtbl.create 4 } in
    Hashtbl.replace t.txns txn i;
    i

let prune_info t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some i when Hashtbl.length i.held = 0 && Hashtbl.length i.waits = 0 ->
    Hashtbl.remove t.txns txn
  | _ -> ()

let compatible held requested =
  match held, requested with
  | S, S -> true
  | _ -> false

let conflicts_with t ~txn ~page ~mode =
  match Hashtbl.find_opt t.pages page with
  | None -> []
  | Some e ->
    List.filter_map
      (fun (o, held) -> if o <> txn && not (compatible held mode) then Some o else None)
      e.holders

(* Waiters at positions strictly before [txn] in the FIFO queue whose
   requests are incompatible with [mode]. *)
let waiters_ahead e ~txn ~mode =
  let rec go acc = function
    | [] -> List.rev acc  (* txn not queued yet: everyone ahead *)
    | (w, _) :: _ when w = txn -> List.rev acc
    | (w, wmode) :: rest ->
      go (if compatible wmode mode then acc else w :: acc) rest
  in
  go [] e.waiters

(* Waits-for edges implied by the recorded waiters: a waiter waits for
   every incompatible holder of its page and for every incompatible
   waiter queued ahead of it (FIFO fairness).  Only the pages in the
   transaction's own waits set can contribute edges. *)
let blockers t txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> []
  | Some i ->
    Hashtbl.fold
      (fun page () acc ->
        match Hashtbl.find_opt t.pages page with
        | None -> acc
        | Some e ->
          List.fold_left
            (fun acc (w, mode) ->
              if w = txn then
                let from_holders =
                  List.fold_left
                    (fun acc (o, held) ->
                      if o <> txn && not (compatible held mode) then o :: acc else acc)
                    acc e.holders
                in
                List.rev_append (waiters_ahead e ~txn ~mode) from_holders
              else acc)
            acc e.waiters)
      i.waits []

(* Would adding edge [txn -> targets] close a cycle?  DFS over the
   waits-for graph from each target looking for [txn]. *)
let find_cycle t ~txn ~targets =
  let visited = Hashtbl.create 16 in
  let rec dfs path node =
    if node = txn then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      let next = blockers t node in
      List.fold_left
        (fun acc n -> match acc with Some _ -> acc | None -> dfs (node :: path) n)
        None next
    end
  in
  List.fold_left
    (fun acc target -> match acc with Some _ -> acc | None -> dfs [] target)
    None targets

(* Returns whether the waiter was newly queued: a fresh queue entry means
   fresh waits-for edges, which is what a parking scheduler must audit
   for deadlocks (see {!acquire_wait_info}). *)
let record_waiter t e ~page ~txn ~mode =
  let fresh = not (List.exists (fun (w, m) -> w = txn && m = mode) e.waiters) in
  if fresh then e.waiters <- e.waiters @ [ (txn, mode) ];
  Hashtbl.replace (info t txn).waits page ();
  fresh

let remove_waiter t e ~page ~txn =
  e.waiters <- List.filter (fun (w, _) -> w <> txn) e.waiters;
  match Hashtbl.find_opt t.txns txn with
  | Some i -> Hashtbl.remove i.waits page
  | None -> ()

let acquire_wait_info t ~txn ~page ~mode =
  let e = entry t page in
  match List.assoc_opt txn e.holders with
  | Some held when held = X || mode = S ->
    (* Already held in a sufficient mode. *)
    remove_waiter t e ~page ~txn;
    (Granted, false)
  | Some _ ->
    (* Upgrade S -> X: allowed when we are the only holder. *)
    if List.for_all (fun (o, _) -> o = txn) e.holders then begin
      e.holders <- [ (txn, X) ];
      remove_waiter t e ~page ~txn;
      (Granted, false)
    end
    else begin
      let others = List.filter_map (fun (o, _) -> if o <> txn then Some o else None) e.holders in
      match find_cycle t ~txn ~targets:others with
      | Some cycle -> (Deadlock (txn :: cycle), false)
      | None -> (Would_block, record_waiter t e ~page ~txn ~mode)
    end
  | None ->
    let conflicting = conflicts_with t ~txn ~page ~mode in
    (* FIFO fairness: an incompatible waiter queued ahead of us also
       blocks us (prevents writer starvation behind a reader stream). *)
    let blocking_waiters = waiters_ahead e ~txn ~mode in
    if conflicting = [] && blocking_waiters = [] then begin
      e.holders <- (txn, mode) :: e.holders;
      remove_waiter t e ~page ~txn;
      Hashtbl.replace (info t txn).held page ();
      (Granted, false)
    end
    else begin
      match find_cycle t ~txn ~targets:(conflicting @ blocking_waiters) with
      | Some cycle -> (Deadlock (txn :: cycle), false)
      | None -> (Would_block, record_waiter t e ~page ~txn ~mode)
    end

let acquire t ~txn ~page ~mode = fst (acquire_wait_info t ~txn ~page ~mode)

let withdraw t ~txn ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> ()
  | Some e ->
    remove_waiter t e ~page ~txn;
    prune_info t txn

let release_all_pages t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | None -> []
  | Some i ->
    let touched = ref [] in
    let seen = Hashtbl.create 16 in
    let visit page =
      if not (Hashtbl.mem seen page) then begin
        Hashtbl.replace seen page ();
        match Hashtbl.find_opt t.pages page with
        | None -> ()
        | Some e ->
          e.holders <- List.filter (fun (o, _) -> o <> txn) e.holders;
          e.waiters <- List.filter (fun (w, _) -> w <> txn) e.waiters;
          if e.holders = [] && e.waiters = [] then Hashtbl.remove t.pages page;
          touched := page :: !touched
      end
    in
    Hashtbl.iter (fun page () -> visit page) i.held;
    Hashtbl.iter (fun page () -> visit page) i.waits;
    Hashtbl.remove t.txns txn;
    !touched

let release_all t ~txn = ignore (release_all_pages t ~txn)

let holds t ~txn ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

let locked_pages t =
  Hashtbl.fold (fun _ e acc -> if e.holders <> [] then acc + 1 else acc) t.pages 0

let waiting t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some i -> Hashtbl.length i.waits > 0
  | None -> false
