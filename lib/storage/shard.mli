(** Sharded multicore execution: domain-parallel transaction shards
    with two-phase group commit.

    The open-loop {!Server} runs one scheduler, one commit pipeline and
    one engine on one domain.  This layer partitions the key space
    page-wise across [N] engine shards ({!Shard_router}) and runs one
    full server loop — scheduler core, group-commit pipeline, simulated
    clock — per shard on its own domain, so single-shard transactions
    (the common case under a well-partitioned workload) execute fully
    in parallel with no coordination beyond their own shard's log.

    A transaction whose script touches pages of several shards is split
    into per-shard slices and committed with lightweight two-phase
    commit: each participant slice runs under its shard's ordinary 2PL,
    and where a single-shard transaction would commit, the slice
    instead writes a {e durable prepare} ({!ENGINE.prepare}) and keeps
    its page locks.  The last participant to prepare forces the
    decision record into the shared {!Coordinator_log} — that force is
    the transaction's commit point.  Each participant then applies the
    decision: an {e unforced} local decision record ([commit_group]),
    lock release, and an ack stamped at the decision time.  Restart
    recovery resolves prepared-but-undecided slices from the
    coordinator's table with presumed abort
    ({!Engine_log.crash_and_recover_resolved},
    {!Coordinator_log.resolve}); DESIGN.md B.5 argues correctness.

    Simulated time stays per-shard: each shard's clock advances exactly
    as the serial server's would, and cross-shard commits synchronize
    the clocks — the decision time is the maximum participant prepare
    time plus one [sync_cost_us] (the coordinator force), and a shard
    applying a decision advances its clock to at least that instant.
    Makespan is the maximum over all shard clocks and decision times.

    Admission per shard is strictly FIFO in arrival order with at most
    one cross-shard slice in flight at a time.  Global ids are issued
    in arrival order, so every shard meets its cross-shard slices in
    the same global order; the smallest undecided gid's participants
    never have earlier cross-shard work pending, so that transaction
    always reaches its decision — the 2PC wait graph cannot cycle.

    With one shard, {!Make.run} delegates verbatim to {!Server.Make}:
    the serial point of every sweep is bit-identical to the PR 9
    server. *)

module type ENGINE = sig
  include Server.ENGINE

  val prepare : txn -> gid:int -> unit
  (** The participant's durable vote (see {!Engine_log.prepare}): force
      the slice's updates and a Prepare record carrying [gid], keeping
      the transaction open.  Commit-side of the decision is
      [commit_group] (unforced — the coordinator record is the durable
      truth); abort-side would be [abort]. *)
end

type result = {
  completed : int;  (** transactions acknowledged (= arrivals) *)
  makespan_us : float;
      (** max over shard clocks and cross-shard decision times *)
  sustained_tps : float;  (** completed per second of simulated time *)
  restarts : int;  (** deadlock-victim restarts, all shards *)
  forces : int;
      (** log forces: per-shard pipeline forces + prepare forces +
          coordinator decision forces *)
  lock_acquires : int;  (** lock acquisition attempts, all shards *)
  cross_committed : int;  (** cross-shard transactions committed *)
  oversubscribed : bool;
      (** shard count exceeded the host's cores, so the domains shared
          cores — wall time suffers; simulated results do not *)
  latency_us : Dbm_util.Stats.Histogram.t;
      (** arrival-to-ack latency of every transaction, µs *)
  single_latency_us : Dbm_util.Stats.Histogram.t;
      (** single-shard transactions only *)
  cross_latency_us : Dbm_util.Stats.Histogram.t;
      (** cross-shard transactions only: arrival to decision force *)
  serial : Server.result option;
      (** the delegated {!Server.Make.run} result when [shards = 1]
          (the bit-identity hook for the bench); [None] otherwise *)
}

module Make (E : ENGINE) : sig
  val run :
    ?mpl:int ->
    ?op_cost_us:float ->
    ?sync_cost_us:float ->
    mode:Commit_pipeline.mode ->
    arrivals_us:float array ->
    scripts:Scheduler.script array ->
    coordinator:Coordinator_log.t ->
    E.t array ->
    result
  (** Serve [scripts.(i)] arriving at [arrivals_us.(i)] (finite,
      non-negative, non-decreasing) to completion over
      [Array.length engines] shards.  Routing is
      {!Shard_router.split} at the first engine's [keys_per_page];
      every engine must be created with the same geometry, and the
      caller owns pre-partitioning any initial data.  Defaults match
      {!Server.Make.run} ([mpl] 64 per shard, [op_cost_us] 1.0,
      [sync_cost_us] 100.0).

      Runs one domain per shard ({!Dbm_util.Pool}, oversubscription
      allowed — see [oversubscribed]).  Deterministic in its arguments
      when no transaction is cross-shard (each shard is then the serial
      loop on its own key subset); with cross-shard transactions the
      final engine states and the set of committed transactions are
      deterministic, but simulated latencies may vary across runs with
      the OS interleaving of decision waits.
      @raise Invalid_argument on bad parameters.
      @raise Failure on livelock, or when a peer shard's loop fails. *)
end
