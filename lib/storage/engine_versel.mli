(** The version-selection recovery engine (Section 3.2.2.1,
    functional).

    Every logical page owns two physically adjacent disk slots.  An
    update writes the new image into the slot {e not} holding the
    latest committed version, tagged with a version number and the
    writing transaction; nothing is ever overwritten in place while it
    is still the current copy.  A read fetches {e both} slots and runs
    the version-selection algorithm: among slots whose writer is on the
    durable committed list (or is the reading transaction itself), the
    higher version wins.

    Commit is: sync the data slots, then append the transaction id to
    the committed list and sync it.  Crash recovery is free — slots
    written by transactions missing from the committed list are simply
    never selected.  The price the paper charges this design (every
    read transfers two blocks, disk space doubles) is visible here as
    the two-slot layout and the double read in [select].

    MVCC snapshot reads ({!Kv.SNAPSHOT}): the two slots of a page are
    two versions, so a snapshot pinned to a commit point (commit-list
    order) selects per page the highest version whose writer committed
    at or before the pin.  When an overwrite would destroy a committed
    slot image some live snapshot can still select, that single slot is
    copied into a retained side-table first; entries are pruned as
    snapshots release (and the table emptied when none remain), so with
    no live snapshots the engine runs exactly as before — zero copies.

    Satisfies {!Kv.SNAPSHOT}; extras below. *)

include Kv.SNAPSHOT

val create_with : ?n_keys:int -> ?keys_per_page:int -> unit -> t

val commit_group : txn -> unit
(** Group commit: append the commit id but force nothing.  The
    transaction is committed in memory (its slots select immediately)
    and becomes durable at the next {!force_commits} — or any eager
    [commit], whose disk and commit-list syncs cover every pending slot
    and id; a crash before that loses it. *)

val force_commits : t -> unit
(** Sync the data slots, then the committed list (slots before ids):
    every group-committed transaction becomes durable. *)

val committed_count : t -> int

val slot_versions : t -> page:int -> int * int
(** The version tags of the two slots of a logical page (tests). *)
