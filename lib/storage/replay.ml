(* Page-partitioned parallel log replay.  See replay.mli for the phase
   breakdown and the equivalence argument; DESIGN.md B.2 carries the
   full correctness discussion. *)

module Pool = Dbm_util.Pool

let pieces_of_pool = function None -> 1 | Some p -> Pool.jobs p

(* [map_list] is the one parallel primitive every phase uses: input
   order in, result order out, so a 1-job pool (or no pool) IS the
   serial path — Pool.map_ordered with jobs = 1 is documented to be a
   plain left-to-right List.map. *)
let map_list ?pool xs ~f =
  match pool with None -> List.map f xs | Some p -> Pool.map_ordered p xs ~f

(* Contiguous [lo, hi) ranges covering [0, len), at most [pieces] of
   them, sizes differing by at most one. *)
let chunk_ranges ~len ~pieces =
  if len <= 0 then []
  else begin
    let pieces = max 1 (min pieces len) in
    let base = len / pieces and extra = len mod pieces in
    let rec go i lo acc =
      if i = pieces then List.rev acc
      else
        let hi = lo + base + (if i < extra then 1 else 0) in
        go (i + 1) hi ((lo, hi) :: acc)
    in
    go 0 0 []
  end

(* Decode-phase work list: contiguous chunks of each disk's raw suffix
   [lo.(disk), len), oversplit 4x so a chunk of cheap records (commits)
   does not leave a domain idle behind a chunk of update records with
   full page images. *)
let decode_from ?pool (raws : string array array) ~(lo : int array) : Wal.record array array =
  let pieces = 4 * pieces_of_pool pool in
  let work =
    List.concat
      (List.init (Array.length raws) (fun disk ->
           List.map
             (fun (o, h) -> (disk, lo.(disk) + o, lo.(disk) + h))
             (chunk_ranges ~len:(Array.length raws.(disk) - lo.(disk)) ~pieces)))
  in
  let out =
    Array.mapi
      (fun disk raw ->
        Array.make (Array.length raw - lo.(disk)) (Wal.Commit { lsn = 0; txn = 0 }))
      raws
  in
  let chunks =
    map_list ?pool work ~f:(fun (disk, l, h) ->
        let raw = raws.(disk) in
        (disk, l, Array.init (h - l) (fun i -> Wal.decode raw.(l + i))))
  in
  List.iter
    (fun (disk, l, decoded) -> Array.blit decoded 0 out.(disk) (l - lo.(disk)) (Array.length decoded))
    chunks;
  out

let decode ?pool (logs : Journal.t array) : Wal.record array array =
  let raws = Array.map Journal.to_array logs in
  decode_from ?pool raws ~lo:(Array.map (fun _ -> 0) raws)

(* --- peeked metadata ------------------------------------------------ *)

type meta = { lsns : int array array; txns : int array array }

(* Two fixed-offset loads per record and no checksum pass, so even a
   full-log scan is cheap next to decoding one page image; recovery
   rebuilds its indexes and epilogue maxima from this instead of from
   the decoded prefix it no longer has. *)
let scan raws =
  {
    lsns = Array.map (Array.map Wal.peek_lsn) raws;
    txns =
      Array.map
        (Array.map (fun s -> match Wal.peek_txn s with Some t -> t | None -> -1))
        raws;
  }

let replay_start_raw raws =
  let best = ref 0 and best_lsn = ref (-1) in
  Array.iter
    (Array.iter (fun s ->
         if Wal.peek_is_fuzzy_checkpoint s then begin
           let lsn = Wal.peek_lsn s in
           if lsn > !best_lsn then
             (* Only checkpoint candidates pay for a checked decode. *)
             match Wal.decode s with
             | Wal.Fuzzy_checkpoint { start_lsn; _ } ->
               best_lsn := lsn;
               best := start_lsn
             | _ -> ()
         end))
    raws;
  !best

(* LSNs are issued globally and appended in issue order, so they
   strictly increase within each journal: binary search finds the first
   retained record at or past the replay start. *)
let suffix_starts meta ~start_lsn =
  Array.map
    (fun lsns ->
      let lo = ref 0 and hi = ref (Array.length lsns) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if lsns.(mid) >= start_lsn then hi := mid else lo := mid + 1
      done;
      !lo)
    meta.lsns

let replay_start records =
  let best = ref 0 and best_lsn = ref (-1) in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Fuzzy_checkpoint { lsn; start_lsn; _ } when lsn > !best_lsn ->
           best_lsn := lsn;
           best := start_lsn
         | _ -> ()))
    records;
  !best

let committed ~start_lsn records =
  let committed = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Commit { lsn; txn } when lsn >= start_lsn -> Hashtbl.replace committed txn ()
         | _ -> ()))
    records;
  committed

(* The per-page fold, verbatim from the serial algorithm (preserved as
   Naive.Log_replay): last committed after-image wins; a page touched
   only by losers reverts to the before image of its earliest retained
   update.  LSNs are globally unique, so the sort is a total order. *)
let page_state committed updates =
  let ordered = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) updates in
  List.fold_left
    (fun acc (_, txn, before, after) ->
      if Hashtbl.mem committed txn then Some after
      else match acc with None -> Some before | Some _ -> acc)
    None ordered

let recover_sorted ?pool ~(records : Wal.record array array) ~start_lsn ~write () =
  let committed = committed ~start_lsn records in
  let nparts = pieces_of_pool pool in
  let buckets = Array.make nparts [] in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Update { lsn; txn; page; before; after } when lsn >= start_lsn ->
           let b = page mod nparts in
           buckets.(b) <- (lsn, txn, page, before, after) :: buckets.(b)
         | _ -> ()))
    records;
  let images =
    map_list ?pool (List.init nparts Fun.id) ~f:(fun b ->
        (* Group this partition's records per page; the committed table
           is frozen before the fan-out, so concurrent reads are safe. *)
        let by_page : (int, (int * int * bytes * bytes) list) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (lsn, txn, page, before, after) ->
            let prev = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
            Hashtbl.replace by_page page ((lsn, txn, before, after) :: prev))
          buckets.(b);
        let pages =
          Hashtbl.fold
            (fun page updates acc ->
              match page_state committed updates with
              | Some image -> (page, image) :: acc
              | None -> acc)
            by_page []
        in
        List.sort (fun (a, _) (b, _) -> Int.compare a b) pages)
  in
  (* Partitions hold disjoint page sets, so a merge by ascending page is
     a plain sort; each page is written exactly once. *)
  List.concat images
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (page, image) -> write ~page image)
