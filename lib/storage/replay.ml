(* Page-partitioned parallel log replay.  See replay.mli for the phase
   breakdown and the equivalence argument; DESIGN.md B.2 carries the
   full correctness discussion. *)

module Pool = Dbm_util.Pool

let pieces_of_pool = function None -> 1 | Some p -> Pool.jobs p

(* [map_list] is the one parallel primitive every phase uses: input
   order in, result order out, so a 1-job pool (or no pool) IS the
   serial path — Pool.map_ordered with jobs = 1 is documented to be a
   plain left-to-right List.map. *)
let map_list ?pool xs ~f =
  match pool with None -> List.map f xs | Some p -> Pool.map_ordered p xs ~f

(* Contiguous [lo, hi) ranges covering [0, len), at most [pieces] of
   them, sizes differing by at most one. *)
let chunk_ranges ~len ~pieces =
  if len <= 0 then []
  else begin
    let pieces = max 1 (min pieces len) in
    let base = len / pieces and extra = len mod pieces in
    let rec go i lo acc =
      if i = pieces then List.rev acc
      else
        let hi = lo + base + (if i < extra then 1 else 0) in
        go (i + 1) hi ((lo, hi) :: acc)
    in
    go 0 0 []
  end

(* Decode-phase work list: contiguous chunks of each disk's raw suffix
   [lo.(disk), len), oversplit 4x so a chunk of cheap records (commits)
   does not leave a domain idle behind a chunk of update records with
   full page images. *)
let decode_from ?pool (raws : string array array) ~(lo : int array) : Wal.record array array =
  let pieces = 4 * pieces_of_pool pool in
  let work =
    List.concat
      (List.init (Array.length raws) (fun disk ->
           List.map
             (fun (o, h) -> (disk, lo.(disk) + o, lo.(disk) + h))
             (chunk_ranges ~len:(Array.length raws.(disk) - lo.(disk)) ~pieces)))
  in
  let out =
    Array.mapi
      (fun disk raw ->
        Array.make (Array.length raw - lo.(disk)) (Wal.Commit { lsn = 0; txn = 0 }))
      raws
  in
  let chunks =
    map_list ?pool work ~f:(fun (disk, l, h) ->
        let raw = raws.(disk) in
        (disk, l, Array.init (h - l) (fun i -> Wal.decode raw.(l + i))))
  in
  List.iter
    (fun (disk, l, decoded) -> Array.blit decoded 0 out.(disk) (l - lo.(disk)) (Array.length decoded))
    chunks;
  out

let decode ?pool (logs : Journal.t array) : Wal.record array array =
  let raws = Array.map Journal.to_array logs in
  decode_from ?pool raws ~lo:(Array.map (fun _ -> 0) raws)

(* --- peeked metadata ------------------------------------------------ *)

type meta = { lsns : int array array; txns : int array array }

(* Two fixed-offset loads per record and no checksum pass, so even a
   full-log scan is cheap next to decoding one page image; recovery
   rebuilds its indexes and epilogue maxima from this instead of from
   the decoded prefix it no longer has. *)
let scan raws =
  {
    lsns = Array.map (Array.map Wal.peek_lsn) raws;
    txns =
      Array.map
        (Array.map (fun s -> match Wal.peek_txn s with Some t -> t | None -> -1))
        raws;
  }

let replay_start_raw raws =
  let best = ref 0 and best_lsn = ref (-1) in
  Array.iter
    (Array.iter (fun s ->
         if Wal.peek_is_fuzzy_checkpoint s then begin
           let lsn = Wal.peek_lsn s in
           if lsn > !best_lsn then
             (* Only checkpoint candidates pay for a checked decode. *)
             match Wal.decode s with
             | Wal.Fuzzy_checkpoint { start_lsn; _ } ->
               best_lsn := lsn;
               best := start_lsn
             | _ -> ()
         end))
    raws;
  !best

(* LSNs are issued globally and appended in issue order, so they
   strictly increase within each journal: binary search finds the first
   retained record at or past the replay start. *)
let suffix_starts meta ~start_lsn =
  Array.map
    (fun lsns ->
      let lo = ref 0 and hi = ref (Array.length lsns) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if lsns.(mid) >= start_lsn then hi := mid else lo := mid + 1
      done;
      !lo)
    meta.lsns

let replay_start records =
  let best = ref 0 and best_lsn = ref (-1) in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Fuzzy_checkpoint { lsn; start_lsn; _ } when lsn > !best_lsn ->
           best_lsn := lsn;
           best := start_lsn
         | _ -> ()))
    records;
  !best

let committed ?(also = []) ~start_lsn records =
  let committed = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Commit { lsn; txn } when lsn >= start_lsn -> Hashtbl.replace committed txn ()
         | _ -> ()))
    records;
  (* Externally-resolved transactions (2PC in-doubt winners whose local
     commit record was lost): replay treats them as committed even
     though no Commit record survives. *)
  List.iter (fun txn -> Hashtbl.replace committed txn ()) also;
  committed

(* --- in-doubt detection --------------------------------------------- *)

(* Prepared-but-undecided transactions, straight off the raw encodings:
   a Prepare record whose transaction has no later Commit/Abort record
   anywhere in the logs.  Prepares are rare (cross-shard transactions
   only), so only they pay for a checked decode — decision records are
   recognized by tag byte and peeked. *)
let in_doubt (raws : string array array) : (int * int) list =
  let prepared : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let decided : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (Array.iter (fun s ->
         if String.length s > 0 then
           match s.[0] with
           | 'p' -> (
             match Wal.decode s with
             | Wal.Prepare { txn; gid; _ } -> Hashtbl.replace prepared txn gid
             | _ -> ())
           | 'c' | 'a' | 'C' | 'A' -> (
             match Wal.peek_txn s with
             | Some txn -> Hashtbl.replace decided txn ()
             | None -> ())
           | _ -> ()))
    raws;
  Hashtbl.fold
    (fun txn gid acc -> if Hashtbl.mem decided txn then acc else (txn, gid) :: acc)
    prepared []
  |> List.sort compare

(* The per-page fold, verbatim from the serial algorithm (preserved as
   Naive.Log_replay): last committed after-image wins; a page touched
   only by losers reverts to the before image of its earliest retained
   update.  LSNs are globally unique, so the sort is a total order. *)
let page_state committed updates =
  let ordered = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) updates in
  List.fold_left
    (fun acc (_, txn, before, after) ->
      if Hashtbl.mem committed txn then Some after
      else match acc with None -> Some before | Some _ -> acc)
    None ordered

(* --- delta expansion ------------------------------------------------ *)

(* Reconstruct full (lsn, txn, before, after) images for one page's
   mixed Update/Delta record chain, [recs] ascending by LSN.

   Delta-mode engines log {e every} volatile change to a page — updates
   and abort restores alike — so the retained records for a page form an
   unbroken chain of states s_0 -> s_1 -> ... -> s_n, and the durable
   disk image [base] is one of those states (the one at the page's
   header LSN, written by the last data sync).  Records at or below
   that LSN are walked {e backward} from the base (patching each
   before-slice over the image) to recover s_0; the forward pass then
   rebuilds every record's full images, resetting the chain at any full
   Update record it meets (the engine logs one whenever a page turns
   dirty, anchoring every replay window).  Delta slices never cover the
   page-header LSN: it is restored from the record itself — [prev_lsn]
   rewinding, [lsn] going forward.  DESIGN.md B.3 carries the full
   argument. *)
let expand_page ~base recs =
  let plsn = Page.get_lsn base in
  let img = Bytes.copy base in
  (* Backward to s_0 over the records the disk image already holds. *)
  let covered = List.filter (fun r -> Wal.lsn r <= plsn) recs in
  List.iter
    (fun r ->
      match r with
      | Wal.Update { before; _ } -> Bytes.blit before 0 img 0 (Bytes.length before)
      | Wal.Delta { off; before_slice; prev_lsn; _ } ->
        Wal.apply_slice img ~off before_slice;
        Page.set_lsn img prev_lsn
      | _ -> ())
    (List.rev covered);
  (* Forward, snapshotting each state exactly once: entry i's after
     image IS entry i+1's before image, never mutated after creation. *)
  let cur = ref img in
  List.map
    (fun r ->
      match r with
      | Wal.Update { lsn; txn; before; after; _ } ->
        cur := after;
        (lsn, txn, before, after)
      | Wal.Delta { lsn; txn; off; after_slice; _ } ->
        let before = !cur in
        let after = Bytes.copy before in
        Wal.apply_slice after ~off after_slice;
        Page.set_lsn after lsn;
        cur := after;
        (lsn, txn, before, after)
      | _ -> assert false)
    recs

let recover_sorted ?pool ?read ?(also_committed = []) ~(records : Wal.record array array)
    ~start_lsn ~write () =
  let committed = committed ~also:also_committed ~start_lsn records in
  let nparts = pieces_of_pool pool in
  let buckets = Array.make nparts [] in
  let delta_pages = Hashtbl.create 16 in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Update { lsn; page; _ } when lsn >= start_lsn ->
           let b = page mod nparts in
           buckets.(b) <- (page, r) :: buckets.(b)
         | Wal.Delta { lsn; page; _ } when lsn >= start_lsn ->
           let b = page mod nparts in
           buckets.(b) <- (page, r) :: buckets.(b);
           Hashtbl.replace delta_pages page ()
         | _ -> ()))
    records;
  (* Pages with delta records need their durable base image; snapshot
     them serially on the calling domain, before the fan-out, so worker
     domains never touch the disk (or its operation counters). *)
  let bases : (int, bytes) Hashtbl.t = Hashtbl.create (Hashtbl.length delta_pages) in
  (match read with
  | Some read -> Hashtbl.iter (fun page () -> Hashtbl.replace bases page (read ~page)) delta_pages
  | None ->
    if Hashtbl.length delta_pages > 0 then
      raise (Wal.Corrupt "delta records in the log but no base-image reader"));
  let images =
    map_list ?pool (List.init nparts Fun.id) ~f:(fun b ->
        (* Group this partition's records per page; the committed and
           base tables are frozen before the fan-out, so concurrent
           reads are safe. *)
        let by_page : (int, Wal.record list) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (page, r) ->
            let prev = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
            Hashtbl.replace by_page page (r :: prev))
          buckets.(b);
        let pages =
          Hashtbl.fold
            (fun page recs acc ->
              let ordered =
                List.sort (fun a b -> Int.compare (Wal.lsn a) (Wal.lsn b)) recs
              in
              let updates =
                if List.exists (function Wal.Delta _ -> true | _ -> false) ordered then
                  expand_page ~base:(Hashtbl.find bases page) ordered
                else
                  List.map
                    (function
                      | Wal.Update { lsn; txn; before; after; _ } -> (lsn, txn, before, after)
                      | _ -> assert false)
                    ordered
              in
              match page_state committed updates with
              | Some image -> (page, image) :: acc
              | None -> acc)
            by_page []
        in
        List.sort (fun (a, _) (b, _) -> Int.compare a b) pages)
  in
  (* Partitions hold disjoint page sets, so a merge by ascending page is
     a plain sort; each page is written exactly once. *)
  List.concat images
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (page, image) -> write ~page image)

(* --- logical (operation-log) replay --------------------------------- *)

(* REDO-only re-execution for the no-steal operation-logging engine:
   committed operations, grouped per page (the key -> page map is
   static), re-executed in global LSN order onto the durable page image,
   guarded by the page header LSN so already-applied operations are
   skipped (idempotence).  Loser operations are ignored outright —
   no-steal means an uncommitted change never reached the durable image,
   so there is nothing to undo. *)
let recover_logical ?pool ?(also_committed = []) ~(records : Wal.record array array) ~start_lsn
    ~page_of ~read ~write () =
  let committed = committed ~also:also_committed ~start_lsn records in
  let nparts = pieces_of_pool pool in
  let buckets = Array.make nparts [] in
  let touched = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun r ->
         match r with
         | Wal.Op { lsn; txn; key; value } when lsn >= start_lsn && Hashtbl.mem committed txn ->
           let page = page_of key in
           let b = page mod nparts in
           buckets.(b) <- (page, lsn, key, value) :: buckets.(b);
           Hashtbl.replace touched page ()
         | _ -> ()))
    records;
  let bases : (int, bytes) Hashtbl.t = Hashtbl.create (Hashtbl.length touched) in
  Hashtbl.iter (fun page () -> Hashtbl.replace bases page (read ~page)) touched;
  let images =
    map_list ?pool (List.init nparts Fun.id) ~f:(fun b ->
        let by_page : (int, (int * int * string option) list) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (page, lsn, key, value) ->
            let prev = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
            Hashtbl.replace by_page page ((lsn, key, value) :: prev))
          buckets.(b);
        let pages =
          Hashtbl.fold
            (fun page ops acc ->
              let img = Hashtbl.find bases page in
              let plsn = Page.get_lsn img in
              let ordered = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) ops in
              let applied = ref false in
              (* [ordered] ascends, so [lsn > plsn] holds for a suffix:
                 the first re-executed operation is the first one the
                 durable image is missing. *)
              List.iter
                (fun (lsn, key, value) ->
                  if lsn > plsn then begin
                    Page.update img ~key ~value;
                    Page.set_lsn img lsn;
                    applied := true
                  end)
                ordered;
              if !applied then (page, img) :: acc else acc)
            by_page []
        in
        List.sort (fun (a, _) (b, _) -> Int.compare a b) pages)
  in
  List.concat images
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (page, image) -> write ~page image)
