(* Slot layout: [version:8][writer txn:8][embedded 1024-byte data page].
   Logical page p owns adjacent slots 2p and 2p+1. *)

let payload_size = 1024

let slot_size = 16 + payload_size

(* An old committed slot image displaced by an overwrite while some
   live snapshot could still need it.  [rv_shadow] is the commit seq of
   the version that displaced it: a snapshot pinned at horizon [h]
   needs this entry only while [h < rv_shadow] (at [h >= rv_shadow] the
   displacing version is visible and newer). *)
type retained_version = {
  rv_version : int;
  rv_writer : int;
  rv_payload : Bytes.t;
  rv_shadow : int;
}

type store = {
  n_keys : int;
  keys_per_page : int;
  n_logical : int;
  disk : Vdisk.t;
  commit_list : Journal.t;
  (* txn id -> commit sequence number (commit-list append order) *)
  committed : (int, int) Hashtbl.t;
  mutable next_seq : int;
  (* live snapshot id -> pinned horizon *)
  snaps : (int, int) Hashtbl.t;
  mutable next_snap : int;
  (* logical page -> displaced committed versions live snapshots may
     still select; pruned as snapshots release *)
  retained : (int, retained_version list) Hashtbl.t;
  mutable next_txn : int;
  mutable epoch : int;
  mutable live : int;
  mutable recoveries : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "version-selection"

let create_with ?(n_keys = 256) ?(keys_per_page = 4) () =
  if n_keys <= 0 then invalid_arg "Engine_versel.create: need at least one key";
  if keys_per_page <= 0 then invalid_arg "Engine_versel.create: bad keys_per_page";
  let n_logical = (n_keys + keys_per_page - 1) / keys_per_page in
  {
    n_keys;
    keys_per_page;
    n_logical;
    disk = Vdisk.create ~pages:(2 * n_logical) ~page_size:slot_size ();
    commit_list = Journal.create ();
    committed = Hashtbl.create 32;
    next_seq = 1;
    snaps = Hashtbl.create 8;
    next_snap = 0;
    retained = Hashtbl.create 16;
    next_txn = 1;
    epoch = 0;
    live = 0;
    recoveries = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

let keys_per_page t = t.keys_per_page

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

let slot_version slot = Int64.to_int (Bytes.get_int64_le slot 0)

let slot_writer slot = Int64.to_int (Bytes.get_int64_le slot 8)

let slot_payload slot = Bytes.sub slot 16 payload_size

let make_slot ~version ~writer payload =
  let b = Bytes.make slot_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int version);
  Bytes.set_int64_le b 8 (Int64.of_int writer);
  Bytes.blit payload 0 b 16 payload_size;
  b

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live <- t.live + 1;
  { st = t; id; born = t.epoch; finished = false }

let check txn = if txn.finished || txn.born <> txn.st.epoch then raise Kv.Txn_finished

(* The version-selection algorithm: read BOTH slots, keep those whose
   writer is durable-committed (writer 0 is the initial empty state) or
   is the asking transaction, select the highest version. *)
(* Slots are borrowed views of the disk buffers: callers copy the
   payload (slot_payload is a Bytes.sub) before mutating, and never hold
   a slot across a write/sync of the same disk. *)
let select t ~own p =
  let s0 = Vdisk.read_ro t.disk (2 * p) and s1 = Vdisk.read_ro t.disk ((2 * p) + 1) in
  let valid s =
    let w = slot_writer s in
    w = 0 || Hashtbl.mem t.committed w || w = own
  in
  match valid s0, valid s1 with
  | true, true -> if slot_version s0 >= slot_version s1 then (0, s0, s1) else (1, s1, s0)
  | true, false -> (0, s0, s1)
  | false, true -> (1, s1, s0)
  | false, false -> (0, make_slot ~version:0 ~writer:0 (Page.empty ~page_size:payload_size), s1)

let get txn k =
  check txn;
  check_key txn.st k;
  let _, current, _ = select txn.st ~own:txn.id (page_of txn.st k) in
  Page.lookup (slot_payload current) ~key:k

(* Oldest horizon any live snapshot is pinned to. *)
let watermark t = Hashtbl.fold (fun _ h acc -> min h acc) t.snaps max_int

(* The commit seq of a writer tag: the initial writer 0 predates every
   commit (seq 0); an id missing from the committed list is uncommitted
   garbage. *)
let seq_of t w = if w = 0 then Some 0 else Hashtbl.find_opt t.committed w

(* About to overwrite slot [idx] of page [p]: if it holds a committed
   version some live snapshot can still select — its displacing version
   (the current committed slot) commits past the watermark — copy it
   into the retained side-table before it is destroyed.  This is the
   only copy on the write path, and it happens at most once per
   displaced committed version while snapshots are live. *)
let retain_displaced t p ~target_idx ~shadow_writer =
  if Hashtbl.length t.snaps > 0 then begin
    let old_slot = Vdisk.read_ro t.disk ((2 * p) + target_idx) in
    let tw = slot_writer old_slot in
    if tw <> 0 then
      match (Hashtbl.find_opt t.committed tw, seq_of t shadow_writer) with
      | Some _, Some shadow when shadow > watermark t ->
        let entry =
          {
            rv_version = slot_version old_slot;
            rv_writer = tw;
            rv_payload = slot_payload old_slot;
            rv_shadow = shadow;
          }
        in
        let prior = Option.value (Hashtbl.find_opt t.retained p) ~default:[] in
        Hashtbl.replace t.retained p (entry :: prior)
      | _ -> ()
  end

let update_key txn k value =
  check txn;
  check_key txn.st k;
  let t = txn.st in
  let p = page_of t k in
  let current_idx, current, _ = select t ~own:txn.id p in
  let payload = slot_payload current in
  Page.update payload ~key:k ~value;
  let next_version =
    1
    + max
        (slot_version (Vdisk.read_ro t.disk (2 * p)))
        (slot_version (Vdisk.read_ro t.disk ((2 * p) + 1)))
  in
  (* Overwrite our own earlier uncommitted version in place; otherwise
     take the slot not holding the current committed copy. *)
  let target =
    if slot_writer current = txn.id then current_idx else 1 - current_idx
  in
  if target <> current_idx then
    retain_displaced t p ~target_idx:target ~shadow_writer:(slot_writer current);
  Vdisk.write t.disk ((2 * p) + target) (make_slot ~version:next_version ~writer:txn.id payload)

let put txn k v = update_key txn k (Some v)

let delete txn k = update_key txn k None

let finish txn =
  txn.finished <- true;
  txn.st.live <- txn.st.live - 1

let commit_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let commit txn =
  check txn;
  let t = txn.st in
  (* Data slots first, then the committed list: a crash between the two
     leaves the writes invisible (the txn is simply not committed). *)
  Vdisk.sync t.disk;
  ignore (Journal.append t.commit_list (string_of_int txn.id));
  Journal.sync t.commit_list;
  Hashtbl.replace t.committed txn.id (commit_seq t);
  finish txn

(* Group commit: append the commit id but force nothing.  The
   transaction is committed in memory (its slots select) and becomes
   durable at the next [force_commits] — or any eager [commit], whose
   disk + commit-list syncs cover every pending slot and id; a crash
   before that loses it (the group-commit durability window). *)
let commit_group txn =
  check txn;
  let t = txn.st in
  ignore (Journal.append t.commit_list (string_of_int txn.id));
  Hashtbl.replace t.committed txn.id (commit_seq t);
  finish txn

(* Slots before ids, as in eager commit: a durable commit id must never
   precede the slots it promises. *)
let force_commits t =
  Vdisk.sync t.disk;
  Journal.sync t.commit_list

let abort txn =
  check txn;
  (* Nothing to undo: the uncommitted slots are never selected. *)
  finish txn

let recover t =
  Hashtbl.reset t.committed;
  (* Commit seqs rebuild from durable commit-list order — the order
     they were assigned in (appends happen at commit). *)
  let seq = ref 0 in
  List.iter
    (fun r ->
      incr seq;
      Hashtbl.replace t.committed (int_of_string r) !seq)
    (Journal.read_all t.commit_list);
  t.next_seq <- !seq + 1;
  (* Transaction ids must never be reused: a recycled id would make a
     crashed transaction's garbage slot look live.  Scan every slot. *)
  let max_tag = ref 0 in
  for s = 0 to (2 * t.n_logical) - 1 do
    max_tag := max !max_tag (slot_writer (Vdisk.read_ro t.disk s))
  done;
  Hashtbl.iter (fun id _ -> max_tag := max !max_tag id) t.committed;
  t.next_txn <- !max_tag + 1;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let crash_and_recover t =
  Vdisk.crash t.disk;
  Journal.crash t.commit_list;
  Hashtbl.reset t.snaps;
  Hashtbl.reset t.retained;
  t.epoch <- t.epoch + 1;
  recover t

let checkpoint _ = ()

(* --- MVCC snapshots ------------------------------------------------- *)

type snapshot = {
  s_st : store;
  s_id : int;
  s_horizon : int;
  s_born : int;
  mutable s_released : bool;
}

let snapshot t =
  let id = t.next_snap in
  t.next_snap <- id + 1;
  let horizon = t.next_seq - 1 in
  Hashtbl.replace t.snaps id horizon;
  { s_st = t; s_id = id; s_horizon = horizon; s_born = t.epoch; s_released = false }

(* Drop retained versions no remaining snapshot can need: an entry is
   needed only by horizons strictly below its displacing commit. *)
let prune_retained t =
  if Hashtbl.length t.snaps = 0 then Hashtbl.reset t.retained
  else begin
    let wm = watermark t in
    let stale = ref [] in
    Hashtbl.iter
      (fun p entries ->
        let kept = List.filter (fun rv -> rv.rv_shadow > wm) entries in
        if kept = [] then stale := p :: !stale
        else if List.length kept < List.length entries then Hashtbl.replace t.retained p kept)
      t.retained;
    List.iter (Hashtbl.remove t.retained) !stale
  end

let snapshot_release s =
  if not s.s_released then begin
    s.s_released <- true;
    if s.s_born = s.s_st.epoch then begin
      Hashtbl.remove s.s_st.snaps s.s_id;
      prune_retained s.s_st
    end
  end

let live_snapshots t = Hashtbl.length t.snaps

(* Version selection pinned to the horizon: among both disk slots plus
   the page's retained versions, those whose writer committed at or
   before the pin (writer 0 = the initial empty state, seq 0), the
   highest version wins.  Nothing visible = the page was empty at the
   pin. *)
let snapshot_get s k =
  if s.s_released || s.s_born <> s.s_st.epoch then raise Kv.Txn_finished;
  let t = s.s_st in
  check_key t k;
  let p = page_of t k in
  let best_v = ref (-1) in
  let best = ref None in
  let consider ~version ~writer payload =
    if version > !best_v then
      match seq_of t writer with
      | Some seq when seq <= s.s_horizon ->
        best_v := version;
        best := Some payload
      | Some _ | None -> ()
  in
  let slot i =
    let sl = Vdisk.read_ro t.disk ((2 * p) + i) in
    consider ~version:(slot_version sl) ~writer:(slot_writer sl) (slot_payload sl)
  in
  slot 0;
  slot 1;
  List.iter
    (fun rv -> consider ~version:rv.rv_version ~writer:rv.rv_writer rv.rv_payload)
    (Option.value (Hashtbl.find_opt t.retained p) ~default:[]);
  match !best with
  | Some payload -> Page.lookup payload ~key:k
  | None -> Page.lookup (Page.empty ~page_size:payload_size) ~key:k

let committed_count t = Hashtbl.length t.committed

let slot_versions t ~page =
  if page < 0 || page >= t.n_logical then invalid_arg "Engine_versel.slot_versions";
  ( slot_version (Vdisk.read t.disk (2 * page)),
    slot_version (Vdisk.read t.disk ((2 * page) + 1)) )

let stats t =
  [
    ("disk_reads", Vdisk.reads t.disk);
    ("disk_writes", Vdisk.writes t.disk);
    ("committed", Hashtbl.length t.committed);
    ("live_txns", t.live);
    ("recoveries", t.recoveries);
    ("slots", 2 * t.n_logical);
  ]
