(* Slot layout: [version:8][writer txn:8][embedded 1024-byte data page].
   Logical page p owns adjacent slots 2p and 2p+1. *)

let payload_size = 1024

let slot_size = 16 + payload_size

type store = {
  n_keys : int;
  keys_per_page : int;
  n_logical : int;
  disk : Vdisk.t;
  commit_list : Journal.t;
  committed : (int, unit) Hashtbl.t;
  mutable next_txn : int;
  mutable epoch : int;
  mutable live : int;
  mutable recoveries : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "version-selection"

let create_with ?(n_keys = 256) ?(keys_per_page = 4) () =
  if n_keys <= 0 then invalid_arg "Engine_versel.create: need at least one key";
  if keys_per_page <= 0 then invalid_arg "Engine_versel.create: bad keys_per_page";
  let n_logical = (n_keys + keys_per_page - 1) / keys_per_page in
  {
    n_keys;
    keys_per_page;
    n_logical;
    disk = Vdisk.create ~pages:(2 * n_logical) ~page_size:slot_size ();
    commit_list = Journal.create ();
    committed = Hashtbl.create 32;
    next_txn = 1;
    epoch = 0;
    live = 0;
    recoveries = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

let keys_per_page t = t.keys_per_page

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

let slot_version slot = Int64.to_int (Bytes.get_int64_le slot 0)

let slot_writer slot = Int64.to_int (Bytes.get_int64_le slot 8)

let slot_payload slot = Bytes.sub slot 16 payload_size

let make_slot ~version ~writer payload =
  let b = Bytes.make slot_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int version);
  Bytes.set_int64_le b 8 (Int64.of_int writer);
  Bytes.blit payload 0 b 16 payload_size;
  b

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live <- t.live + 1;
  { st = t; id; born = t.epoch; finished = false }

let check txn = if txn.finished || txn.born <> txn.st.epoch then raise Kv.Txn_finished

(* The version-selection algorithm: read BOTH slots, keep those whose
   writer is durable-committed (writer 0 is the initial empty state) or
   is the asking transaction, select the highest version. *)
(* Slots are borrowed views of the disk buffers: callers copy the
   payload (slot_payload is a Bytes.sub) before mutating, and never hold
   a slot across a write/sync of the same disk. *)
let select t ~own p =
  let s0 = Vdisk.read_ro t.disk (2 * p) and s1 = Vdisk.read_ro t.disk ((2 * p) + 1) in
  let valid s =
    let w = slot_writer s in
    w = 0 || Hashtbl.mem t.committed w || w = own
  in
  match valid s0, valid s1 with
  | true, true -> if slot_version s0 >= slot_version s1 then (0, s0, s1) else (1, s1, s0)
  | true, false -> (0, s0, s1)
  | false, true -> (1, s1, s0)
  | false, false -> (0, make_slot ~version:0 ~writer:0 (Page.empty ~page_size:payload_size), s1)

let get txn k =
  check txn;
  check_key txn.st k;
  let _, current, _ = select txn.st ~own:txn.id (page_of txn.st k) in
  Page.lookup (slot_payload current) ~key:k

let update_key txn k value =
  check txn;
  check_key txn.st k;
  let t = txn.st in
  let p = page_of t k in
  let current_idx, current, _ = select t ~own:txn.id p in
  let payload = slot_payload current in
  Page.update payload ~key:k ~value;
  let next_version =
    1
    + max
        (slot_version (Vdisk.read_ro t.disk (2 * p)))
        (slot_version (Vdisk.read_ro t.disk ((2 * p) + 1)))
  in
  (* Overwrite our own earlier uncommitted version in place; otherwise
     take the slot not holding the current committed copy. *)
  let target =
    if slot_writer current = txn.id then current_idx else 1 - current_idx
  in
  Vdisk.write t.disk ((2 * p) + target) (make_slot ~version:next_version ~writer:txn.id payload)

let put txn k v = update_key txn k (Some v)

let delete txn k = update_key txn k None

let finish txn =
  txn.finished <- true;
  txn.st.live <- txn.st.live - 1

let commit txn =
  check txn;
  let t = txn.st in
  (* Data slots first, then the committed list: a crash between the two
     leaves the writes invisible (the txn is simply not committed). *)
  Vdisk.sync t.disk;
  ignore (Journal.append t.commit_list (string_of_int txn.id));
  Journal.sync t.commit_list;
  Hashtbl.replace t.committed txn.id ();
  finish txn

let abort txn =
  check txn;
  (* Nothing to undo: the uncommitted slots are never selected. *)
  finish txn

let recover t =
  Hashtbl.reset t.committed;
  List.iter (fun r -> Hashtbl.replace t.committed (int_of_string r) ()) (Journal.read_all t.commit_list);
  (* Transaction ids must never be reused: a recycled id would make a
     crashed transaction's garbage slot look live.  Scan every slot. *)
  let max_tag = ref 0 in
  for s = 0 to (2 * t.n_logical) - 1 do
    max_tag := max !max_tag (slot_writer (Vdisk.read_ro t.disk s))
  done;
  Hashtbl.iter (fun id () -> max_tag := max !max_tag id) t.committed;
  t.next_txn <- !max_tag + 1;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let crash_and_recover t =
  Vdisk.crash t.disk;
  Journal.crash t.commit_list;
  t.epoch <- t.epoch + 1;
  recover t

let checkpoint _ = ()

let committed_count t = Hashtbl.length t.committed

let slot_versions t ~page =
  if page < 0 || page >= t.n_logical then invalid_arg "Engine_versel.slot_versions";
  ( slot_version (Vdisk.read t.disk (2 * page)),
    slot_version (Vdisk.read t.disk ((2 * page) + 1)) )

let stats t =
  [
    ("disk_reads", Vdisk.reads t.disk);
    ("disk_writes", Vdisk.writes t.disk);
    ("committed", Hashtbl.length t.committed);
    ("live_txns", t.live);
    ("recoveries", t.recoveries);
    ("slots", 2 * t.n_logical);
  ]
