(** Virtual stable storage with crash injection.

    A [Vdisk.t] is an array of fixed-size pages with the semantics of a
    disk behind a volatile write cache: {!write} lands in the cache,
    {!sync} makes every cached write durable, and {!crash} throws away
    whatever was not yet synced.  Page writes are atomic (no torn
    pages), the standard assumption of the recovery literature the
    paper builds on.

    Every storage engine in this library sits on one or more vdisks;
    the crash-recovery property tests drive {!crash} at arbitrary
    points and then check atomicity and durability. *)

type t

val create : pages:int -> page_size:int -> unit -> t
(** A fresh disk of zeroed pages.  @raise Invalid_argument on
    non-positive sizes. *)

val pages : t -> int

val page_size : t -> int

val read : t -> int -> bytes
(** [read t p] returns a copy of page [p]'s current contents (cached
    write if any, else the durable image).
    @raise Invalid_argument on an out-of-range page. *)

val read_ro : t -> int -> bytes
(** Borrowed view of page [p]'s current contents — no copy.  The caller
    must not mutate the buffer and must not hold it across a later
    {!write}, {!sync} or {!crash} of the same disk (those may reuse or
    overwrite it).  Counts as a read, exactly like {!read}. *)

val write : t -> int -> bytes -> unit
(** Volatile until the next {!sync}.  The buffer must be exactly
    [page_size] long.  @raise Invalid_argument otherwise. *)

val sync : t -> unit
(** Make all cached writes durable. *)

val write_sync : t -> int -> bytes -> unit
(** [write t p b] followed by {!sync}. *)

val crash : t -> unit
(** Drop every write since the last {!sync}. *)

val unsynced_pages : t -> int
(** Number of pages with cached (not yet durable) writes. *)

val reads : t -> int
val writes : t -> int
val syncs : t -> int
