(* Growable array of records.  [buf.(start .. start+durable-1)] holds the
   retained durable records oldest-first, followed by
   [buf.(start+durable .. start+durable+pending-1)] for the unsynced tail.
   Truncation advances [start] (clearing slots for the GC) instead of
   rebuilding a list; the live region is compacted to the front before the
   buffer grows, so wasted prefix space is bounded by the live size. *)
type t = {
  mutable buf : string array;
  mutable start : int;  (* index of the oldest retained durable record *)
  mutable durable : int;  (* retained durable record count *)
  mutable pending : int;  (* unsynced tail length, stored after durable *)
  mutable base : int;  (* sequence number of the oldest retained record *)
  mutable sync_count : int;
}

let create () =
  { buf = Array.make 16 ""; start = 0; durable = 0; pending = 0; base = 0; sync_count = 0 }

let live t = t.durable + t.pending

let ensure_room t =
  let used = t.start + live t in
  if used >= Array.length t.buf then begin
    if t.start > 0 then begin
      (* reclaim the truncated prefix before considering a realloc *)
      Array.blit t.buf t.start t.buf 0 (live t);
      Array.fill t.buf (live t) t.start "";
      t.start <- 0
    end;
    if live t >= Array.length t.buf then begin
      let bigger = Array.make (2 * Array.length t.buf) "" in
      Array.blit t.buf 0 bigger 0 (live t);
      t.buf <- bigger
    end
  end

let append t r =
  let seq = t.base + t.durable + t.pending in
  ensure_room t;
  t.buf.(t.start + live t) <- r;
  t.pending <- t.pending + 1;
  seq

let sync t =
  t.sync_count <- t.sync_count + 1;
  t.durable <- t.durable + t.pending;
  t.pending <- 0

let crash t =
  Array.fill t.buf (t.start + t.durable) t.pending "";
  t.pending <- 0

let length t = t.durable

let iter_all f t =
  for i = t.start to t.start + t.durable - 1 do
    f t.buf.(i)
  done

let iter_live f t =
  for i = t.start to t.start + live t - 1 do
    f t.buf.(i)
  done

let read_all t =
  let acc = ref [] in
  for i = t.start + t.durable - 1 downto t.start do
    acc := t.buf.(i) :: !acc
  done;
  !acc

let read_live t =
  let acc = ref [] in
  for i = t.start + live t - 1 downto t.start do
    acc := t.buf.(i) :: !acc
  done;
  !acc

let to_array t = Array.sub t.buf t.start t.durable

let appended t = t.base + t.durable + t.pending

let synced t = t.base + t.durable

let sync_count t = t.sync_count

let truncate t ~keep_from =
  if keep_from < t.base then ()
  else if keep_from > t.base + t.durable then
    invalid_arg "Journal.truncate: keep_from beyond the synced records"
  else begin
    let drop = keep_from - t.base in
    Array.fill t.buf t.start drop "";
    t.start <- t.start + drop;
    t.durable <- t.durable - drop;
    t.base <- keep_from
  end
