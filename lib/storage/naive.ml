(* The storage-half algorithms as they were before the throughput
   overhaul, kept alive verbatim for two jobs:

   - the benchmark's pre-optimization baseline, so BENCH_5's speedup is
     measured head-to-head in the same process on the same workload;
   - the reference model for the equivalence property tests: the
     optimized {!Lock_mgr} and {!Scheduler} must make byte-identical
     decisions on any trace.

   Nothing here is on a production path. *)

module Locks = struct
  type mode = Lock_mgr.mode = S | X

  type outcome = Lock_mgr.outcome = Granted | Would_block | Deadlock of int list

  type entry = {
    mutable holders : (int * mode) list;
    mutable waiters : (int * mode) list;  (* FIFO: oldest first *)
  }

  type t = { pages : (int, entry) Hashtbl.t }

  let create () = { pages = Hashtbl.create 64 }

  let entry t page =
    match Hashtbl.find_opt t.pages page with
    | Some e -> e
    | None ->
      let e = { holders = []; waiters = [] } in
      Hashtbl.replace t.pages page e;
      e

  let compatible held requested =
    match held, requested with
    | S, S -> true
    | _ -> false

  let conflicts_with t ~txn ~page ~mode =
    match Hashtbl.find_opt t.pages page with
    | None -> []
    | Some e ->
      List.filter_map
        (fun (o, held) -> if o <> txn && not (compatible held mode) then Some o else None)
        e.holders

  let waiters_ahead e ~txn ~mode =
    let rec go acc = function
      | [] -> List.rev acc
      | (w, _) :: _ when w = txn -> List.rev acc
      | (w, wmode) :: rest -> go (if compatible wmode mode then acc else w :: acc) rest
    in
    go [] e.waiters

  (* The pre-overhaul waits-for construction: fold the ENTIRE lock table
     looking for the transaction's queued requests. *)
  let blockers t txn =
    Hashtbl.fold
      (fun _page e acc ->
        List.fold_left
          (fun acc (w, mode) ->
            if w = txn then
              let from_holders =
                List.fold_left
                  (fun acc (o, held) ->
                    if o <> txn && not (compatible held mode) then o :: acc else acc)
                  acc e.holders
              in
              List.rev_append (waiters_ahead e ~txn ~mode) from_holders
            else acc)
          acc e.waiters)
      t.pages []

  let find_cycle t ~txn ~targets =
    let visited = Hashtbl.create 16 in
    let rec dfs path node =
      if node = txn then Some (List.rev (node :: path))
      else if Hashtbl.mem visited node then None
      else begin
        Hashtbl.replace visited node ();
        let next = blockers t node in
        List.fold_left
          (fun acc n -> match acc with Some _ -> acc | None -> dfs (node :: path) n)
          None next
      end
    in
    List.fold_left
      (fun acc target -> match acc with Some _ -> acc | None -> dfs [] target)
      None targets

  (* The pre-overhaul O(queue) append-by-concatenation. *)
  let record_waiter e ~txn ~mode =
    if not (List.exists (fun (w, m) -> w = txn && m = mode) e.waiters) then
      e.waiters <- e.waiters @ [ (txn, mode) ]

  let remove_waiter e ~txn = e.waiters <- List.filter (fun (w, _) -> w <> txn) e.waiters

  let acquire t ~txn ~page ~mode =
    let e = entry t page in
    match List.assoc_opt txn e.holders with
    | Some held when held = X || mode = S ->
      remove_waiter e ~txn;
      Granted
    | Some _ ->
      if List.for_all (fun (o, _) -> o = txn) e.holders then begin
        e.holders <- [ (txn, X) ];
        remove_waiter e ~txn;
        Granted
      end
      else begin
        let others =
          List.filter_map (fun (o, _) -> if o <> txn then Some o else None) e.holders
        in
        match find_cycle t ~txn ~targets:others with
        | Some cycle -> Deadlock (txn :: cycle)
        | None ->
          record_waiter e ~txn ~mode;
          Would_block
      end
    | None ->
      let conflicting = conflicts_with t ~txn ~page ~mode in
      let blocking_waiters = waiters_ahead e ~txn ~mode in
      if conflicting = [] && blocking_waiters = [] then begin
        e.holders <- (txn, mode) :: e.holders;
        remove_waiter e ~txn;
        Granted
      end
      else begin
        match find_cycle t ~txn ~targets:(conflicting @ blocking_waiters) with
        | Some cycle -> Deadlock (txn :: cycle)
        | None ->
          record_waiter e ~txn ~mode;
          Would_block
      end

  let withdraw t ~txn ~page =
    match Hashtbl.find_opt t.pages page with
    | None -> ()
    | Some e -> remove_waiter e ~txn

  (* The pre-overhaul release: fold the entire table. *)
  let release_all t ~txn =
    let empty_pages = ref [] in
    Hashtbl.iter
      (fun page e ->
        e.holders <- List.filter (fun (o, _) -> o <> txn) e.holders;
        remove_waiter e ~txn;
        if e.holders = [] && e.waiters = [] then empty_pages := page :: !empty_pages)
      t.pages;
    List.iter (Hashtbl.remove t.pages) !empty_pages

  let holds t ~txn ~page =
    match Hashtbl.find_opt t.pages page with
    | None -> None
    | Some e -> List.assoc_opt txn e.holders

  let locked_pages t =
    Hashtbl.fold (fun _ e acc -> if e.holders <> [] then acc + 1 else acc) t.pages 0

  let waiting t ~txn =
    Hashtbl.fold
      (fun _ e acc -> acc || List.exists (fun (w, _) -> w = txn) e.waiters)
      t.pages false
end

(* The pre-parallelization restart recovery of the logging engine,
   verbatim: one thread gathers every durable record, groups the updates
   per page in one hash table and folds each page's LSN-sorted history.
   Always replays from record 0 — fuzzy-checkpoint records are inert
   history to it.  The partitioned Replay module must produce the same
   final images on any job count; the property tests and the bench gate
   enforce it. *)
module Log_replay = struct
  let committed records =
    let committed = Hashtbl.create 16 in
    List.iter
      (fun r ->
        match r with Wal.Commit { txn; _ } -> Hashtbl.replace committed txn () | _ -> ())
      records;
    committed

  let recover_sorted ~records ~write =
    let committed = committed records in
    let by_page : (int, (int * int * bytes * bytes) list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r ->
        match r with
        | Wal.Update { lsn; txn; page; before; after } ->
          let prev = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
          Hashtbl.replace by_page page ((lsn, txn, before, after) :: prev)
        | _ -> ())
      records;
    Hashtbl.iter
      (fun page updates ->
        let ordered = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) updates in
        let state =
          List.fold_left
            (fun acc (_, txn, before, after) ->
              if Hashtbl.mem committed txn then Some after
              else match acc with None -> Some before | Some _ -> acc)
            None ordered
        in
        match state with
        | Some image -> write ~page image
        | None -> ())
      by_page

  (* Serial reference for delta logs, written independently of
     Replay.expand_page (the parallel path the property tests compare
     against): expand every page's Update/Delta chain to full images by
     replaying slices forward from the chain state the durable base
     image pins, then run the fold above verbatim. *)
  let recover_sorted_delta ~records ~read ~write =
    let by_page : (int, Wal.record list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r ->
        match r with
        | Wal.Update { page; _ } | Wal.Delta { page; _ } ->
          let prev = Option.value (Hashtbl.find_opt by_page page) ~default:[] in
          Hashtbl.replace by_page page (r :: prev)
        | _ -> ())
      records;
    let expanded = ref [] in
    Hashtbl.iter
      (fun page recs ->
        let ordered = List.sort (fun a b -> Int.compare (Wal.lsn a) (Wal.lsn b)) recs in
        let base = read ~page in
        let plsn = Page.get_lsn base in
        (* Rewind the base image to the chain's first state: undo, newest
           first, every record the durable image already contains. *)
        let s0 = Bytes.copy base in
        List.iter
          (fun r ->
            match r with
            | Wal.Update { before; _ } -> Bytes.blit before 0 s0 0 (Bytes.length before)
            | Wal.Delta { off; before_slice; prev_lsn; _ } ->
              Wal.apply_slice s0 ~off before_slice;
              Page.set_lsn s0 prev_lsn
            | _ -> ())
          (List.rev (List.filter (fun r -> Wal.lsn r <= plsn) ordered));
        (* Forward: materialize each record's full before/after pair. *)
        let cur = ref s0 in
        List.iter
          (fun r ->
            match r with
            | Wal.Update { lsn; txn; page = p; before; after } ->
              cur := after;
              expanded := Wal.Update { lsn; txn; page = p; before; after } :: !expanded
            | Wal.Delta { lsn; txn; page = p; off; after_slice; _ } ->
              let before = !cur in
              let after = Bytes.copy before in
              Wal.apply_slice after ~off after_slice;
              Page.set_lsn after lsn;
              cur := after;
              expanded := Wal.Update { lsn; txn; page = p; before; after } :: !expanded
            | _ -> ())
          ordered)
      by_page;
    (* Commit/abort records pass through untouched; the fold only needs
       the commit set and the update images. *)
    let passthrough =
      List.filter (function Wal.Update _ | Wal.Delta _ -> false | _ -> true) records
    in
    recover_sorted ~records:(passthrough @ !expanded) ~write

  (* Serial reference for operation logs: committed operations in one
     global LSN-sorted list, re-executed onto the durable images behind
     the page-header LSN guard — the textbook one-thread formulation of
     Replay.recover_logical. *)
  let recover_logical ~records ~page_of ~read ~write =
    let committed = committed records in
    let ops =
      List.filter_map
        (fun r ->
          match r with
          | Wal.Op { lsn; txn; key; value } when Hashtbl.mem committed txn ->
            Some (lsn, key, value)
          | _ -> None)
        records
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    let images : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
    let dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (lsn, key, value) ->
        let page = page_of key in
        let img =
          match Hashtbl.find_opt images page with
          | Some img -> img
          | None ->
            let img = read ~page in
            Hashtbl.replace images page img;
            img
        in
        if lsn > Page.get_lsn img then begin
          Page.update img ~key ~value;
          Page.set_lsn img lsn;
          Hashtbl.replace dirty page ()
        end)
      ops;
    Hashtbl.iter (fun page () -> write ~page (Hashtbl.find images page)) dirty
end

(* The pre-overhaul scheduler: every turn round-robin-polls every
   unfinished script, re-running the lock acquisition for blocked ones. *)
module Sched (E : Kv.S) = struct
  open Scheduler

  let key_of = function Get k -> k | Put (k, _) -> k | Delete k -> k

  let mode_of = function Get _ -> Lock_mgr.S | Put _ | Delete _ -> Lock_mgr.X

  type state = {
    id : int;
    index : int;
    script : script;
    mutable remaining : script;
    mutable txn : E.txn option;
    mutable done_ : bool;
    mutable restart_count : int;
    mutable backoff : int;
  }

  let run ?(max_steps = 100_000) engine ~scripts =
    let ids = List.map fst scripts in
    if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
      invalid_arg "Scheduler.run: duplicate script ids";
    let locks = Locks.create () in
    let states =
      List.mapi
        (fun index (id, script) ->
          {
            id;
            index;
            script;
            remaining = script;
            txn = None;
            done_ = false;
            restart_count = 0;
            backoff = 0;
          })
        scripts
    in
    let commit_order = ref [] in
    let restarts = ref 0 in
    let steps = ref 0 in
    let restart st =
      (match st.txn with Some t -> E.abort t | None -> ());
      Locks.release_all locks ~txn:st.id;
      st.txn <- None;
      st.remaining <- st.script;
      st.restart_count <- st.restart_count + 1;
      st.backoff <- st.restart_count * (st.index + 1);
      incr restarts
    in
    let txn_of st =
      match st.txn with
      | Some t -> t
      | None ->
        let t = E.begin_txn engine in
        st.txn <- Some t;
        t
    in
    let advance st =
      match st.remaining with
      | [] ->
        (match st.txn with Some t -> E.commit t | None -> E.commit (txn_of st));
        Locks.release_all locks ~txn:st.id;
        st.done_ <- true;
        commit_order := st.id :: !commit_order;
        true
      | op :: rest -> (
        let page = key_of op / E.keys_per_page engine in
        match Locks.acquire locks ~txn:st.id ~page ~mode:(mode_of op) with
        | Lock_mgr.Granted ->
          let t = txn_of st in
          (match op with
          | Get k -> ignore (E.get t k)
          | Put (k, v) -> E.put t k v
          | Delete k -> E.delete t k);
          st.remaining <- rest;
          true
        | Lock_mgr.Would_block -> false
        | Lock_mgr.Deadlock _ ->
          restart st;
          true)
    in
    let all_done () = List.for_all (fun st -> st.done_) states in
    while (not (all_done ())) && !steps < max_steps do
      List.iter
        (fun st ->
          if not st.done_ then begin
            incr steps;
            if st.backoff > 0 then st.backoff <- st.backoff - 1 else ignore (advance st)
          end)
        states
    done;
    if not (all_done ()) then failwith "Scheduler.run: scripts did not complete (livelock?)";
    { commit_order = List.rev !commit_order; restarts = !restarts; steps = !steps }
end
