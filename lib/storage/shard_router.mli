(** Key-space partitioning for the {!Shard} layer.

    A pure, stateless router: shard assignment is a function of the
    page number alone (Fibonacci-hash mixed before the mod, so the
    arithmetic key strides bench workloads use spread across the ring
    instead of aliasing onto one shard).  Routing is {e page}-aligned —
    pages are the lock and replay granule, so every key of a page lands
    on the same shard.  The property tests pin coverage (every key on
    exactly one shard) and determinism. *)

val shard_of_page : shards:int -> int -> int
(** The shard owning a page; in [0, shards).  [shards = 1] maps
    everything to shard 0.
    @raise Invalid_argument on [shards <= 0]. *)

val shard_of_key : shards:int -> keys_per_page:int -> int -> int
(** The shard owning a key: its page's shard. *)

val participants : shards:int -> keys_per_page:int -> Scheduler.script -> int list
(** The distinct shards a script touches, ascending.  A singleton means
    the transaction is single-shard (no cross-shard coordination);
    two or more participants make it a 2PC transaction. *)

val split :
  shards:int -> keys_per_page:int -> Scheduler.script -> (int * Scheduler.script) list
(** Partition a script into per-shard slices, ascending by shard, each
    slice preserving the script's operation order.  Concatenating the
    slices back in any interleaving that respects per-slice order is a
    reordering only across shards — operations on different shards
    touch different pages, so the slices commute. *)
