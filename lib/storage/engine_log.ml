type selection = Cyclic | By_txn | By_page

type recovery_strategy = Sorted | Unmerged

type log_format = Physical | Delta

(* Growable parallel arrays of (journal seq, lsn, txn) triples — the
   per-log-disk record index.  Appending is amortized O(1) where the old
   [list ref] representation re-built the whole list per append. *)
module Idx = struct
  type t = {
    mutable seqs : int array;
    mutable lsns : int array;
    mutable txns : int array;
    mutable len : int;
  }

  let create () = { seqs = Array.make 16 0; lsns = Array.make 16 0; txns = Array.make 16 0; len = 0 }

  let clear t = t.len <- 0

  let push t ~seq ~lsn ~txn =
    if t.len = Array.length t.seqs then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      t.seqs <- grow t.seqs;
      t.lsns <- grow t.lsns;
      t.txns <- grow t.txns
    end;
    t.seqs.(t.len) <- seq;
    t.lsns.(t.len) <- lsn;
    t.txns.(t.len) <- txn;
    t.len <- t.len + 1

  let iter f t =
    for i = 0 to t.len - 1 do
      f ~seq:t.seqs.(i) ~lsn:t.lsns.(i) ~txn:t.txns.(i)
    done

  (* Keep only entries with [seq >= keep_from]; entries are in ascending
     seq order, so this drops a prefix in place. *)
  let drop_before t ~keep_from =
    let src = ref 0 in
    while !src < t.len && t.seqs.(!src) < keep_from do incr src done;
    let drop = !src in
    if drop > 0 then begin
      Array.blit t.seqs drop t.seqs 0 (t.len - drop);
      Array.blit t.lsns drop t.lsns 0 (t.len - drop);
      Array.blit t.txns drop t.txns 0 (t.len - drop);
      t.len <- t.len - drop
    end
end

type store = {
  n_keys : int;
  keys_per_page : int;
  page_size : int;
  data : Vdisk.t;
  logs : Journal.t array;
  (* Per log disk: (journal sequence number, lsn, txn) of each retained
     record, oldest first — the index checkpointing needs to know how
     far each log may be truncated. *)
  indexes : Idx.t array;
  selection : selection;
  mutable next_lsn : int;
  mutable next_txn : int;
  mutable cyclic : int;
  mutable epoch : int;
  active : (int, (int, bytes * int) Hashtbl.t) Hashtbl.t;
      (* txn -> page -> (before image, lsn) of the txn's first update *)
  used_logs : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* txn -> log disks used *)
  group_deps : (int, unit) Hashtbl.t array;
      (* Per log disk [d]: the set of disks holding update records of
         transactions whose {e pending} (appended, unforced) group-commit
         record sits on [d].  Forcing [d] makes those commit records
         durable, so the listed disks must be co-forced first — the
         dependency closure that keeps partial (per-used-disk) commit
         forcing sound in the presence of group commit.  Cleared
         whenever a disk is forced (its pending commits are durable,
         dependencies discharged) and on crash (its pending commits are
         gone). *)
  dirty_rec : (int, int) Hashtbl.t;
      (* The dirty-page table: page -> recovery LSN, i.e. the LSN of the
         earliest update the page's durable image is missing.  An entry
         appears when a volatile write first moves a page ahead of its
         durable image and disappears when the data disk is synced. *)
  log_format : log_format;
  (* Reusable scratch for record encoding: fields are blitted straight
     into it and the journal's string is the only per-append
     allocation.  Engines are single-domain, so one scratch is safe. *)
  enc : Wal_codec.Enc.t;
  (* A delta record is emitted only when both slices together fit in
     this many bytes; past it a full image costs less bookkeeping. *)
  delta_threshold : int;
  mutable recovery_pool : Dbm_util.Pool.t option;
  mutable records_logged : int;
  mutable records_since_checkpoint : int;
  auto_checkpoint_records : int option;
  mutable strategy : recovery_strategy;
  mutable recoveries : int;
  mutable checkpoints : int;
  mutable fuzzy_checkpoints : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "logging"

let default_keys = 256

let create_with ?(n_keys = default_keys) ?(n_log_disks = 2) ?(selection = Cyclic)
    ?(keys_per_page = 4) ?auto_checkpoint_records ?(log_format = Physical) () =
  (match auto_checkpoint_records with
  | Some n when n <= 0 -> invalid_arg "Engine_log.create: bad auto_checkpoint_records"
  | _ -> ());
  if n_keys <= 0 then invalid_arg "Engine_log.create: need at least one key";
  if n_log_disks <= 0 then invalid_arg "Engine_log.create: need a log disk";
  if keys_per_page <= 0 then invalid_arg "Engine_log.create: bad keys_per_page";
  let n_pages = (n_keys + keys_per_page - 1) / keys_per_page in
  let page_size = 1024 in
  {
    n_keys;
    keys_per_page;
    page_size;
    data = Vdisk.create ~pages:n_pages ~page_size ();
    logs = Array.init n_log_disks (fun _ -> Journal.create ());
    indexes = Array.init n_log_disks (fun _ -> Idx.create ());
    selection;
    next_lsn = 1;
    next_txn = 1;
    cyclic = 0;
    epoch = 0;
    active = Hashtbl.create 8;
    used_logs = Hashtbl.create 8;
    group_deps = Array.init n_log_disks (fun _ -> Hashtbl.create 4);
    dirty_rec = Hashtbl.create 32;
    log_format;
    enc = Wal_codec.Enc.create ~size:(2 * page_size + 64) ();
    delta_threshold = page_size;
    recovery_pool = None;
    records_logged = 0;
    records_since_checkpoint = 0;
    auto_checkpoint_records;
    strategy = Sorted;
    recoveries = 0;
    checkpoints = 0;
    fuzzy_checkpoints = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

let keys_per_page t = t.keys_per_page

let log_disks t = Array.length t.logs

let records_logged t = t.records_logged

let log_format t = t.log_format

(* Durable log volume in bytes — what the format head-to-head meters. *)
let log_bytes t =
  let total = ref 0 in
  Array.iter (Journal.iter_all (fun s -> total := !total + String.length s)) t.logs;
  !total

let page_of t key = key / t.keys_per_page

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let select_log t ~txn ~page =
  match t.selection with
  | Cyclic ->
    let i = t.cyclic in
    t.cyclic <- (t.cyclic + 1) mod Array.length t.logs;
    i
  | By_txn -> txn mod Array.length t.logs
  | By_page -> page mod Array.length t.logs

let append_log t ~disk record =
  let seq = Journal.append t.logs.(disk) (Wal.encode_with t.enc record) in
  t.records_logged <- t.records_logged + 1;
  t.records_since_checkpoint <- t.records_since_checkpoint + 1;
  (match Wal.txn_of record with
  | Some txn -> Idx.push t.indexes.(disk) ~seq ~lsn:(Wal.lsn record) ~txn
  | None -> ());
  seq

(* Set after [checkpoint] is defined; commit/abort call through it so
   automatic checkpoints run at transaction boundaries. *)
let maybe_auto_checkpoint : (store -> unit) ref = ref (fun _ -> ())

let fresh_lsn t =
  let l = t.next_lsn in
  t.next_lsn <- l + 1;
  l

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.active id (Hashtbl.create 4);
  Hashtbl.replace t.used_logs id (Hashtbl.create 2);
  { st = t; id; born = t.epoch; finished = false }

let check txn = if txn.finished || txn.born <> txn.st.epoch then raise Kv.Txn_finished

let get txn k =
  check txn;
  check_key txn.st k;
  (* Borrowed page view: Page.lookup only reads, so skip the 1 KB copy. *)
  Page.lookup (Vdisk.read_ro txn.st.data (page_of txn.st k)) ~key:k

(* In-place update with write-ahead logging: append the before/after
   images to a log disk, then update the data page (volatile). *)
let update_key txn k value =
  check txn;
  check_key txn.st k;
  let t = txn.st in
  let p = page_of t k in
  (* Whether the durable image is current, read before this update
     dirties the page: a delta-mode clean->dirty transition logs a full
     image, anchoring the page's record chain for replay. *)
  let was_clean = not (Hashtbl.mem t.dirty_rec p) in
  let before = Vdisk.read t.data p in
  let after = Bytes.copy before in
  Page.update after ~key:k ~value;
  let lsn = fresh_lsn t in
  Page.set_lsn after lsn;
  let disk = select_log t ~txn:txn.id ~page:p in
  let record =
    match t.log_format with
    | Physical -> Wal.Update { lsn; txn = txn.id; page = p; before; after }
    | Delta when was_clean -> Wal.Update { lsn; txn = txn.id; page = p; before; after }
    | Delta ->
      Wal.delta_update ~threshold:t.delta_threshold ~lsn ~txn:txn.id ~page:p ~before ~after
  in
  ignore (append_log t ~disk record);
  (match Hashtbl.find_opt t.used_logs txn.id with
  | Some set -> Hashtbl.replace set disk ()
  | None -> assert false);
  (* Remember the first (before image, lsn) per page for in-flight abort
     and for the fuzzy checkpoint's dirty-page table. *)
  (match Hashtbl.find_opt t.active txn.id with
  | Some firsts -> if not (Hashtbl.mem firsts p) then Hashtbl.replace firsts p (before, lsn)
  | None -> assert false);
  (* The page becomes dirty at the LSN of the first update its durable
     image misses. *)
  if not (Hashtbl.mem t.dirty_rec p) then Hashtbl.replace t.dirty_rec p lsn;
  Vdisk.write t.data p after

let put txn k v = update_key txn k (Some v)

let delete txn k = update_key txn k None

let finish txn =
  txn.finished <- true;
  Hashtbl.remove txn.st.active txn.id;
  Hashtbl.remove txn.st.used_logs txn.id

(* Force every log disk and discharge all group-commit dependencies:
   everything appended anywhere is durable now. *)
let sync_all_logs t =
  Array.iter Journal.sync t.logs;
  Array.iter Hashtbl.reset t.group_deps

(* Force [seeds] plus their transitive group-commit dependency closure.
   Forcing a disk makes durable every {e pending} group-commit record
   on it, and each of those transactions needs its update disks durable
   too (WAL atomicity) — which may in turn carry pending commit records
   of their own, hence the closure.  Dependency sets of forced disks
   are cleared: their pending commits are durable, nothing depends on a
   further force. *)
let sync_closure t seeds =
  let forced = Hashtbl.create 4 in
  let rec visit d =
    if not (Hashtbl.mem forced d) then begin
      Hashtbl.replace forced d ();
      Hashtbl.iter (fun dep () -> visit dep) t.group_deps.(d)
    end
  in
  List.iter visit seeds;
  Hashtbl.iter
    (fun d () ->
      Journal.sync t.logs.(d);
      Hashtbl.reset t.group_deps.(d))
    forced

let commit txn =
  check txn;
  let t = txn.st in
  (* WAL commit rule: the disks holding THIS transaction's update
     records are forced before its commit record is appended and
     forced — not every disk.  (The pre-PR-7 path forced all N disks
     per commit; a transaction that fragmented its log over k < N disks
     pays k+1 forces now, which is what the sync-count test pins.)
     What made force-everything load-bearing was group commit: forcing
     a disk can make a {e pending} group-commit record durable while
     that transaction's update records on another disk are still
     volatile — the partial-durability window that would let recovery
     apply half a transaction.  [sync_closure] closes the window
     precisely instead of maximally, by co-forcing exactly the disks
     the pending commits on a forced disk depend on. *)
  let used =
    match Hashtbl.find_opt t.used_logs txn.id with
    | Some set -> Hashtbl.fold (fun d () acc -> d :: acc) set []
    | None -> []
  in
  sync_closure t used;
  let disk = select_log t ~txn:txn.id ~page:0 in
  ignore (append_log t ~disk (Wal.Commit { lsn = fresh_lsn t; txn = txn.id }));
  sync_closure t [ disk ];
  finish txn;
  !maybe_auto_checkpoint t

(* Group commit: the commit record is appended but the force is left
   to a later [force_commits]; until then the transaction is committed
   in memory but not durable.  The commit disk inherits a dependency on
   the transaction's update disks so that any force reaching it (an
   eager committer's [sync_closure], not just [force_commits]) makes
   the whole transaction durable atomically. *)
let commit_group txn =
  check txn;
  let t = txn.st in
  let disk = select_log t ~txn:txn.id ~page:0 in
  ignore (append_log t ~disk (Wal.Commit { lsn = fresh_lsn t; txn = txn.id }));
  (match Hashtbl.find_opt t.used_logs txn.id with
  | Some set -> Hashtbl.iter (fun d () -> if d <> disk then Hashtbl.replace t.group_deps.(disk) d ()) set
  | None -> ());
  finish txn

let force_commits t = sync_all_logs t

(* Two-phase commit, participant side.  The prepare is the durable vote:
   update disks are forced (plus closure, exactly as an eager commit
   would), then the Prepare record itself is appended and forced.  The
   transaction stays active — its undo state and locks survive — until
   the coordinator's decision arrives: [commit_group] (the decision
   record may stay unforced, recovery resolves in-doubt transactions
   from the coordinator log) or [abort]. *)
let prepare txn ~gid =
  check txn;
  let t = txn.st in
  let used =
    match Hashtbl.find_opt t.used_logs txn.id with
    | Some set -> Hashtbl.fold (fun d () acc -> d :: acc) set []
    | None -> []
  in
  sync_closure t used;
  let disk = select_log t ~txn:txn.id ~page:0 in
  ignore (append_log t ~disk (Wal.Prepare { lsn = fresh_lsn t; txn = txn.id; gid }));
  sync_closure t [ disk ]

(* Prepared-but-undecided transactions in the durable logs. *)
let in_doubt t = Replay.in_doubt (Array.map Journal.to_array t.logs)

let abort txn =
  check txn;
  let t = txn.st in
  (* Undo in place from the saved before images; recovery would reach
     the same state from the logged before images. *)
  (match Hashtbl.find_opt t.active txn.id with
  | Some firsts ->
    Hashtbl.iter
      (fun p (before, first_lsn) ->
        let lsn = fresh_lsn t in
        let restored = Bytes.copy before in
        Page.set_lsn restored lsn;
        (* Delta replay reconstructs page images by chaining slices, so
           every volatile page change must be logged — including this
           restore (physical mode leaves it implicit: full images make
           the fold order-insensitive without it).  The record reuses
           the LSN the restore burns in either mode, keeping the two
           formats' LSN streams — and hence their recovered
           fingerprints — identical. *)
        (match t.log_format with
        | Physical -> ()
        | Delta ->
          let current = Vdisk.read t.data p in
          let disk = select_log t ~txn:txn.id ~page:p in
          ignore
            (append_log t ~disk
               (Wal.delta_update ~threshold:t.delta_threshold ~lsn ~txn:txn.id ~page:p
                  ~before:current ~after:restored)));
        Vdisk.write t.data p restored;
        (* In [Physical] mode the restore itself is not logged, so a
           mid-log replay must still scan back to the loser's first
           update on this page to reproduce the undo — the dirty entry
           keeps (or regains) that LSN, never the restore's fresh one.
           ([Delta] mode logs the restore above, but keeps the same
           conservative entry: replay wants the loser's whole chain.) *)
        let rec_ =
          match Hashtbl.find_opt t.dirty_rec p with
          | Some existing -> min existing first_lsn
          | None -> first_lsn
        in
        Hashtbl.replace t.dirty_rec p rec_)
      firsts
  | None -> ());
  let disk = select_log t ~txn:txn.id ~page:0 in
  ignore (append_log t ~disk (Wal.Abort { lsn = fresh_lsn t; txn = txn.id }));
  finish txn;
  !maybe_auto_checkpoint t

let flush t =
  sync_all_logs t;
  Vdisk.sync t.data;
  (* Every page image is durable now; nothing is dirty. *)
  Hashtbl.reset t.dirty_rec

(* --- restart recovery --------------------------------------------- *)

(* Rebuild the per-disk index from peeked record metadata (LSN and txn
   id load at fixed offsets, no decode needed); element [i] of disk
   [d]'s array carries journal sequence number [synced - length + i]. *)
let rebuild_indexes t (meta : Replay.meta) =
  Array.iteri
    (fun d txns ->
      let idx = t.indexes.(d) in
      Idx.clear idx;
      let j = t.logs.(d) in
      let base = Journal.synced j - Journal.length j in
      let lsns = meta.Replay.lsns.(d) in
      Array.iteri
        (fun i txn -> if txn >= 0 then Idx.push idx ~seq:(base + i) ~lsn:lsns.(i) ~txn)
        txns)
    meta.Replay.txns

(* The companion algorithm [13]: no merging, no global sort.  Each log
   disk is processed independently.

   Redo pass (any order, any interleaving across disks): a committed
   after-image is applied iff its LSN exceeds the page's current LSN.
   Full-page images make this idempotent and order-insensitive: whatever
   order the logs are walked in, the committed image with the highest
   LSN ends up on the page.

   Undo pass: under page-level strict 2PL a page's writers are serial,
   so if the page's final LSN belongs to a loser record, restoring that
   record's before image peels one loser write off; repeating to a
   fixpoint (a loser may have updated the same page several times)
   leaves either the last committed image or the pre-history state. *)
let recover_unmerged t (decoded : Wal.record array array) committed =
  (* Redo, one log at a time, no coordination between them. *)
  Array.iter
    (fun records ->
      Array.iter
        (fun r ->
          match r with
          | Wal.Update { lsn; txn; page; after; _ } when Hashtbl.mem committed txn ->
            if lsn > Page.get_lsn (Vdisk.read_ro t.data page) then
              Vdisk.write t.data page after
          | _ -> ())
        records)
    decoded;
  (* Undo to fixpoint, again per log with no coordination. *)
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun records ->
        Array.iter
          (fun r ->
            match r with
            | Wal.Update { lsn; txn; page; before; _ }
              when not (Hashtbl.mem committed txn) ->
              if Page.get_lsn (Vdisk.read_ro t.data page) = lsn then begin
                Vdisk.write t.data page before;
                progress := true
              end
            | _ -> ())
          records)
      decoded
  done

(* Shared epilogue of every recovery path: force the rebuilt data disk,
   re-seed the LSN/txn counters past everything the log has seen, clear
   the volatile transaction state and rebuild the per-disk index. *)
let finish_recovery t (meta : Replay.meta) =
  Vdisk.sync t.data;
  let max_lsn = ref 0 and max_txn = ref 0 in
  Array.iter (Array.iter (fun l -> if l > !max_lsn then max_lsn := l)) meta.Replay.lsns;
  Array.iter (Array.iter (fun x -> if x > !max_txn then max_txn := x)) meta.Replay.txns;
  t.next_lsn <- !max_lsn + 1;
  (* From the log alone, not [max ... t.next_txn]: ids the volatile
     counter handed to transactions that never logged a record are dead
     after a crash and safe to reuse, and deriving both counters purely
     from durable state makes repeated recovery idempotent — which is
     what lets the bench fingerprint-compare recoveries run back to
     back. *)
  t.next_txn <- !max_txn + 1;
  Hashtbl.reset t.active;
  Hashtbl.reset t.used_logs;
  Hashtbl.reset t.dirty_rec;
  (* The crash dropped every pending (unforced) group-commit record, so
     no force owes anyone a co-force anymore. *)
  Array.iter Hashtbl.reset t.group_deps;
  rebuild_indexes t meta;
  t.recoveries <- t.recoveries + 1

let recover_with ~resolve t =
  let pool = t.recovery_pool in
  let raws = Array.map Journal.to_array t.logs in
  let meta = Replay.scan raws in
  (* In-doubt transactions (durably prepared, no durable decision) are
     resolved from the coordinator: committed iff [resolve ~gid] says
     so, presumed abort without a resolver.  Resolution records are
     appended after replay so the next restart needs no coordinator. *)
  let doubt = Replay.in_doubt raws in
  let decide ~gid = match resolve with Some f -> f ~gid | None -> false in
  let also_committed = List.filter_map (fun (txn, gid) -> if decide ~gid then Some txn else None) doubt in
  (* The unmerged companion strategy keys redo off full-page images; a
     delta log always replays along the sorted path, which knows how to
     expand slice chains. *)
  let strategy = match t.log_format with Delta -> Sorted | Physical -> t.strategy in
  (match strategy with
  | Sorted ->
    (* The partitioned parallel path.  The newest durable fuzzy
       checkpoint is located by tag peek, each journal is binary-searched
       for its replay suffix, and only that suffix is decoded — the
       skipped prefix never pays the checksum pass, which is where the
       checkpoint's saving lives (indexes and counter maxima come from
       the peeked [meta] instead).  With no pool (or a 1-job pool) this
       is the serial sorted replay, record for record. *)
    let start_lsn = Replay.replay_start_raw raws in
    let lo = Replay.suffix_starts meta ~start_lsn in
    let records = Replay.decode_from ?pool raws ~lo in
    Replay.recover_sorted ?pool
      ~read:(fun ~page -> Vdisk.read t.data page)
      ~also_committed ~records ~start_lsn
      ~write:(fun ~page image -> Vdisk.write t.data page image)
      ()
  | Unmerged ->
    (* The companion algorithm keys redo off page LSNs, not off a start
       point, so it always decodes and walks the full log. *)
    let records = Replay.decode_from ?pool raws ~lo:(Array.map (fun _ -> 0) raws) in
    recover_unmerged t records (Replay.committed ~also:also_committed ~start_lsn:0 records));
  finish_recovery t meta;
  if doubt <> [] then begin
    List.iter
      (fun (txn, gid) ->
        let disk = select_log t ~txn ~page:0 in
        let lsn = fresh_lsn t in
        let r =
          if decide ~gid then Wal.Commit { lsn; txn } else Wal.Abort { lsn; txn }
        in
        ignore (append_log t ~disk r))
      doubt;
    sync_all_logs t
  end

let recover t = recover_with ~resolve:None t

let crash_and_recover t =
  Vdisk.crash t.data;
  Array.iter Journal.crash t.logs;
  t.epoch <- t.epoch + 1;
  recover t

(* Crash, then recover with in-doubt transactions resolved from the
   coordinator's decision log. *)
let crash_and_recover_resolved ~resolve t =
  Vdisk.crash t.data;
  Array.iter Journal.crash t.logs;
  t.epoch <- t.epoch + 1;
  recover_with ~resolve:(Some resolve) t

(* Crash, then recover along the preserved pre-parallelization path
   (Naive.Log_replay): single-threaded decode, from-zero sorted replay,
   fuzzy-checkpoint records ignored.  The epilogue is the same
   [finish_recovery], so [state_fingerprint] after this must equal the
   fingerprint after [crash_and_recover] on the same durable state —
   the equivalence the property tests and the bench gate on. *)
let crash_and_recover_reference t =
  Vdisk.crash t.data;
  Array.iter Journal.crash t.logs;
  t.epoch <- t.epoch + 1;
  let decoded =
    Array.map (fun j -> Array.of_list (List.map Wal.decode (Journal.read_all j))) t.logs
  in
  let records = Array.to_list decoded |> List.concat_map Array.to_list in
  (match t.log_format with
  | Physical ->
    Naive.Log_replay.recover_sorted ~records
      ~write:(fun ~page image -> Vdisk.write t.data page image)
  | Delta ->
    Naive.Log_replay.recover_sorted_delta ~records
      ~read:(fun ~page -> Vdisk.read t.data page)
      ~write:(fun ~page image -> Vdisk.write t.data page image));
  finish_recovery t (Replay.scan (Array.map Journal.to_array t.logs))

(* Sharp checkpoint: force logs and data, then truncate every log disk
   up to the earliest record still needed by a live transaction. *)
let checkpoint t =
  sync_all_logs t;
  Vdisk.sync t.data;
  Hashtbl.reset t.dirty_rec;
  let active = Hashtbl.fold (fun id _ acc -> id :: acc) t.active [] in
  let disk = 0 in
  ignore (append_log t ~disk (Wal.Checkpoint { lsn = fresh_lsn t; active }));
  Journal.sync t.logs.(disk);
  Array.iteri
    (fun d j ->
      let keep_from = ref (Journal.synced j) in
      Idx.iter
        (fun ~seq ~lsn:_ ~txn ->
          if List.mem txn active && seq < !keep_from then keep_from := seq)
        t.indexes.(d);
      (* Never truncate the checkpoint record we just wrote on disk 0:
         it documents the active set for auditing. *)
      let keep_from = if d = 0 then min !keep_from (Journal.synced j - 1) else !keep_from in
      Journal.truncate j ~keep_from;
      Idx.drop_before t.indexes.(d) ~keep_from)
    t.logs;
  t.records_since_checkpoint <- 0;
  t.checkpoints <- t.checkpoints + 1

(* Fuzzy checkpoint (the paper's low-interference flavor): no data-disk
   force, no truncation, no quiescing — one log force and one record.
   The record names where a later replay may start:

     start_lsn = min( next_lsn,
                      every active transaction's earliest update LSN,
                      every dirty page's recovery LSN )

   Every update below start_lsn belongs to a finished transaction AND
   sits on a page whose durable image already includes it, so replay
   loses nothing by skipping it; DESIGN.md B.2 has the full argument.
   [sync:false] leaves the record volatile — the crash-during-checkpoint
   tests use it to check that a lost checkpoint record merely falls back
   to the previous start point. *)
let checkpoint_fuzzy ?(sync = true) t =
  sync_all_logs t;
  let start = ref t.next_lsn in
  Hashtbl.iter
    (fun _ firsts ->
      Hashtbl.iter (fun _ (_, lsn) -> if lsn < !start then start := lsn) firsts)
    t.active;
  Hashtbl.iter (fun _ rec_ -> if rec_ < !start then start := rec_) t.dirty_rec;
  let active = Hashtbl.fold (fun id _ acc -> id :: acc) t.active [] |> List.sort Int.compare in
  let dirty =
    Hashtbl.fold (fun p rec_ acc -> (p, rec_) :: acc) t.dirty_rec []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let disk = 0 in
  ignore
    (append_log t ~disk
       (Wal.Fuzzy_checkpoint { lsn = fresh_lsn t; start_lsn = !start; active; dirty }));
  if sync then Journal.sync t.logs.(disk);
  t.records_since_checkpoint <- 0;
  t.fuzzy_checkpoints <- t.fuzzy_checkpoints + 1

(* Checkpoint-aware log truncation: once a fuzzy checkpoint record is
   durable, every record below its replay-start LSN is dead weight —
   replay will binary-search past it without decoding — so each journal
   may drop its durable prefix below that LSN.  The checkpoint record
   itself survives (its own LSN is >= the start LSN it carries).

   One exception is retained: the newest record carrying the maximal
   txn id.  Recovery re-seeds [next_txn] from the retained records, and
   the highest-id transaction may be long finished with all its pages
   durable — entirely below the replay start.  Keeping its newest
   record (always a commit/abort record for a finished transaction,
   harmless to both replay strategies) pins the counter so recovery
   after truncation fingerprint-equals recovery on the untruncated
   log. *)
let truncate_to_checkpoint t =
  let raws = Array.map Journal.to_array t.logs in
  let start_lsn = Replay.replay_start_raw raws in
  if start_lsn > 0 then begin
    let meta = Replay.scan raws in
    let lo = Replay.suffix_starts meta ~start_lsn in
    let keep_txn_d = ref (-1) and keep_txn_i = ref (-1) in
    let best_txn = ref (-1) and best_lsn = ref (-1) in
    Array.iteri
      (fun d txns ->
        let lsns = meta.Replay.lsns.(d) in
        Array.iteri
          (fun i txn ->
            if txn > !best_txn || (txn = !best_txn && lsns.(i) > !best_lsn) then begin
              best_txn := txn;
              best_lsn := lsns.(i);
              keep_txn_d := d;
              keep_txn_i := i
            end)
          txns)
      meta.Replay.txns;
    Array.iteri
      (fun d j ->
        let cut = if d = !keep_txn_d then min lo.(d) !keep_txn_i else lo.(d) in
        let keep_from = Journal.synced j - Journal.length j + cut in
        Journal.truncate j ~keep_from;
        Idx.drop_before t.indexes.(d) ~keep_from)
      t.logs
  end

let set_recovery_pool t pool = t.recovery_pool <- pool

let recovery_pool t = t.recovery_pool

(* Injective digest of everything restart recovery is responsible for:
   every data page image plus the re-seeded LSN/txn counters.  Disk
   operation counters are deliberately excluded — checkpoint-aware
   replay legitimately touches fewer pages than full-log replay; that
   saving is the feature, not a divergence. *)
let state_fingerprint t =
  let d = Dbm_util.Digest.create () in
  for p = 0 to Vdisk.pages t.data - 1 do
    Dbm_util.Digest.string d (Bytes.to_string (Vdisk.read_ro t.data p))
  done;
  Dbm_util.Digest.int d t.next_lsn;
  Dbm_util.Digest.int d t.next_txn;
  Dbm_util.Digest.hex d

let () =
  maybe_auto_checkpoint :=
    fun t ->
      match t.auto_checkpoint_records with
      | Some threshold when t.records_since_checkpoint >= threshold -> checkpoint t
      | Some _ | None -> ()

let set_recovery_strategy t s = t.strategy <- s

let recovery_strategy t = t.strategy

let dump_log t ~disk = List.map Wal.decode (Journal.read_all t.logs.(disk))

let stats t =
  [
    ("disk_reads", Vdisk.reads t.data);
    ("disk_writes", Vdisk.writes t.data);
    ("log_disks", Array.length t.logs);
    ("records_logged", t.records_logged);
    ("live_txns", Hashtbl.length t.active);
    ("recoveries", t.recoveries);
    ("checkpoints", t.checkpoints);
    ("fuzzy_checkpoints", t.fuzzy_checkpoints);
    ("dirty_pages", Hashtbl.length t.dirty_rec);
    ("durable_records", Array.fold_left (fun acc j -> acc + Journal.length j) 0 t.logs);
    ("log_syncs", Array.fold_left (fun acc j -> acc + Journal.sync_count j) 0 t.logs);
  ]
