(** The shared commit pipeline: where transaction commits become
    durable, and on whose clock.

    Splitting commit into {e append} (the engine's [commit_group],
    inside the transaction's critical path) and {e force} (one log sync
    shared by a whole batch) is the classic group-commit trade: the
    per-transaction sync — the dominant latency term — is amortized
    [batch]-ways, at the cost of a durability window between append and
    force.  A crash inside the window loses exactly the unforced
    suffix, which recovery replays as if those transactions never
    committed; nothing is ever acknowledged to the client before its
    force, so no acknowledged transaction is ever lost.

    Time is simulated: the caller threads a clock (µs) through
    [submit]/[poll]/[flush], and the pipeline charges [sync_cost_us]
    per force.  Acknowledgements fire through [on_ack] at the
    post-force instant — the arrival-to-ack difference is the
    transaction latency the server histograms. *)

type mode =
  | Eager  (** one engine [commit] (and one charged sync) per transaction *)
  | Grouped of { batch : int; timeout_us : float }
      (** force when [batch] commits have accumulated or [timeout_us]
          after the oldest unforced commit, whichever comes first *)

(** What the pipeline needs from an engine: eager commit, unforced
    group commit, and a batch force.  {!Engine_log} and {!Engine_diff}
    both satisfy it. *)
module type GROUPED = sig
  type t

  type txn

  val commit : txn -> unit

  val commit_group : txn -> unit

  val force_commits : t -> unit
end

module Make (E : GROUPED) : sig
  type t

  val create : ?sync_cost_us:float -> ?on_ack:(id:int -> now:float -> unit) -> mode -> E.t -> t
  (** [sync_cost_us] (default 0) is the simulated latency of one log
      force; [on_ack ~id ~now] fires once per transaction when its
      commit record is durable.
      @raise Invalid_argument on a non-positive batch or timeout. *)

  val submit : t -> now:float -> id:int -> E.txn -> float
  (** Commit one transaction through the pipeline; returns the advanced
      clock.  [Eager]: engine commit, one charged sync, immediate ack.
      [Grouped]: unforced [commit_group]; the batch is forced here only
      if this submission fills it. *)

  val poll : t -> now:float -> float
  (** Force the pending batch iff its timeout deadline has passed. *)

  val flush : t -> now:float -> float
  (** Force the pending batch unconditionally (server shutdown, or an
      idle server draining before sleeping). *)

  val deadline : t -> float option
  (** Clock instant at which the pending batch times out, if any. *)

  val pending : t -> int
  (** Transactions committed in memory but not yet durable. *)

  val forces : t -> int
  (** Log forces charged so far (eager commits count one each). *)

  val acked : t -> int
  (** Transactions durably acknowledged so far. *)
end
