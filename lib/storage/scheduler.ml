type op = Get of int | Put of int * string | Delete of int

type script = op list

type report = { commit_order : int list; restarts : int; steps : int }

let key_of = function Get k -> k | Put (k, _) -> k | Delete k -> k

let mode_of = function Get _ -> Lock_mgr.S | Put _ | Delete _ -> Lock_mgr.X

module Make (E : Kv.S) = struct
  type state = {
    id : int;
    index : int;  (* position among the scripts, for distinct backoffs *)
    script : script;
    mutable remaining : script;
    mutable txn : E.txn option;
    mutable done_ : bool;
    mutable restart_count : int;
    mutable backoff : int;  (* scheduler turns to sit out after a restart *)
    mutable parked_on : int option;  (* page this script is blocked on *)
    mutable woken : bool;  (* a lock release touched that page *)
  }

  (* A blocked script's retry is a pure no-op except after two kinds of
     events, so instead of re-running the lock acquisition for every
     blocked script every turn (the pre-overhaul polling scheduler, kept
     in {!Naive.Sched}), scripts park on the page that blocked them and
     are woken only when a retry could decide differently:

     - a lock release touched their page ({!Lock_mgr.release_all_pages}
       names them): the retry may now be [Granted];
     - any script queued a new waiter, i.e. added waits-for edges: the
       retry may now find [Deadlock].  Cycles appear only when edges are
       added, and the closing acquire does not always see its own cycle
       (an upgrade request checks only the page's other holders), so in
       the polling world the victim is whichever transaction on the
       cycle re-acquires first.  Waking every parked script on a fresh
       edge reproduces that audit in the same round-robin order.  A
       repeat block adds no edges, so a contended steady state parks
       quietly instead of cascading wakes.

     A parked script still counts a scheduler step each turn, and a
     woken retry runs the identical acquire a poll would have run, so
     [steps], [commit_order] and [restarts] are bit-identical to the
     polling scheduler. *)
  let run ?(max_steps = 100_000) engine ~scripts =
    let ids = List.map fst scripts in
    if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
      invalid_arg "Scheduler.run: duplicate script ids";
    let locks = Lock_mgr.create () in
    let states =
      List.mapi
        (fun index (id, script) ->
          {
            id;
            index;
            script;
            remaining = script;
            txn = None;
            done_ = false;
            restart_count = 0;
            backoff = 0;
            parked_on = None;
            woken = false;
          })
        scripts
    in
    let parked : (int, state list ref) Hashtbl.t = Hashtbl.create 32 in
    let park st page =
      st.parked_on <- Some page;
      st.woken <- false;
      match Hashtbl.find_opt parked page with
      | Some l -> l := st :: !l
      | None -> Hashtbl.replace parked page (ref [ st ])
    in
    let unpark st =
      match st.parked_on with
      | None -> ()
      | Some page ->
        st.parked_on <- None;
        st.woken <- false;
        (match Hashtbl.find_opt parked page with
        | Some l ->
          l := List.filter (fun s -> s != st) !l;
          if !l = [] then Hashtbl.remove parked page
        | None -> ())
    in
    let wake_page page =
      match Hashtbl.find_opt parked page with
      | Some l -> List.iter (fun s -> s.woken <- true) !l
      | None -> ()
    in
    let wake_all () =
      Hashtbl.iter (fun _ l -> List.iter (fun s -> s.woken <- true) !l) parked
    in
    let release_and_wake txn = List.iter wake_page (Lock_mgr.release_all_pages locks ~txn) in
    let commit_order = ref [] in
    let restarts = ref 0 in
    let steps = ref 0 in
    (* Deadlock victims back off before retrying.  The backoff grows
       with the script's restart count and differs per script, so two
       scripts that keep colliding under deterministic round-robin
       eventually desynchronize (without this, repeated mutual restarts
       can livelock). *)
    let restart st =
      (match st.txn with Some t -> E.abort t | None -> ());
      release_and_wake st.id;
      st.txn <- None;
      st.remaining <- st.script;
      st.restart_count <- st.restart_count + 1;
      st.backoff <- st.restart_count * (st.index + 1);
      incr restarts
    in
    let txn_of st =
      match st.txn with
      | Some t -> t
      | None ->
        let t = E.begin_txn engine in
        st.txn <- Some t;
        t
    in
    (* One scheduler step for a script: try to advance by one operation
       (or commit).  Returns true on progress. *)
    let advance st =
      unpark st;
      match st.remaining with
      | [] ->
        (match st.txn with
        | Some t -> E.commit t
        | None ->
          (* empty script: an empty transaction still commits *)
          E.commit (txn_of st));
        release_and_wake st.id;
        st.done_ <- true;
        commit_order := st.id :: !commit_order;
        true
      | op :: rest -> (
        let page = key_of op / E.keys_per_page engine in
        match Lock_mgr.acquire_wait_info locks ~txn:st.id ~page ~mode:(mode_of op) with
        | Lock_mgr.Granted, _ ->
          let t = txn_of st in
          (match op with
          | Get k -> ignore (E.get t k)
          | Put (k, v) -> E.put t k v
          | Delete k -> E.delete t k);
          st.remaining <- rest;
          true
        | Lock_mgr.Would_block, fresh_edges ->
          if fresh_edges then wake_all ();
          park st page;
          false
        | Lock_mgr.Deadlock _, _ ->
          (* strict 2PL victim: roll back and start over *)
          restart st;
          true)
    in
    let all_done () = List.for_all (fun st -> st.done_) states in
    while (not (all_done ())) && !steps < max_steps do
      List.iter
        (fun st ->
          if not st.done_ then begin
            incr steps;
            if st.backoff > 0 then st.backoff <- st.backoff - 1
            else if st.parked_on <> None && not st.woken then ()
            else ignore (advance st)
          end)
        states
    done;
    if not (all_done ()) then failwith "Scheduler.run: scripts did not complete (livelock?)";
    { commit_order = List.rev !commit_order; restarts = !restarts; steps = !steps }
end
