type op = Get of int | Put of int * string | Delete of int

type script = op list

type report = { commit_order : int list; restarts : int; steps : int }

type view = { view_get : int -> string option; view_close : unit -> unit }

let key_of = function Get k -> k | Put (k, _) -> k | Delete k -> k

let mode_of read_mode = function
  | Get _ -> read_mode
  | Put _ | Delete _ -> Lock_mgr.X

module Make (E : Kv.S) = struct
  (* The execution core, shared by the closed-loop [run] below and the
     open-loop {!Server}: one lock manager, a set of script tasks, and a
     single-step advance.  The commit sink is pluggable so a server can
     route commits through a group-commit pipeline instead of the
     engine's eager [commit]; with the default sink the closed-loop
     driver is bit-identical to the pre-split scheduler (a CI gate
     checks it against {!Naive.Sched}). *)
  module Exec = struct
    type task = {
      id : int;
      index : int;  (* distinct small index, for distinct backoffs *)
      script : script;
      read_only : bool;
      mutable remaining : script;
      mutable txn : E.txn option;
      mutable view : view option;  (* open snapshot view (read-only tasks) *)
      mutable done_ : bool;
      mutable restart_count : int;
      mutable backoff : int;  (* scheduler turns to sit out after a restart *)
      mutable parked_on : int option;  (* page this script is blocked on *)
      mutable woken : bool;  (* a lock release touched that page *)
    }

    type t = {
      engine : E.t;
      commit : id:int -> E.txn -> unit;
      hold : id:int -> bool;
      snapshot : (unit -> view) option;
      read_mode : Lock_mgr.mode;
      locks : Lock_mgr.t;
      parked : (int, task list ref) Hashtbl.t;
      mutable commit_order : int list;  (* reversed *)
      mutable restarts : int;
      mutable steps : int;
      mutable lock_acquires : int;
    }

    type outcome =
      | Skipped  (* backoff ticked down, or parked and not woken *)
      | Blocked  (* ran the acquire, would block: parked *)
      | Advanced  (* executed one operation *)
      | Restarted  (* deadlock victim: rolled back *)
      | Committed

    let create ?commit ?hold ?snapshot ?(read_mode = Lock_mgr.S) engine =
      let commit = match commit with Some f -> f | None -> fun ~id:_ t -> E.commit t in
      let hold = match hold with Some f -> f | None -> fun ~id:_ -> false in
      {
        engine;
        commit;
        hold;
        snapshot;
        read_mode;
        locks = Lock_mgr.create ();
        parked = Hashtbl.create 32;
        commit_order = [];
        restarts = 0;
        steps = 0;
        lock_acquires = 0;
      }

    let spawn t ?(read_only = false) ~index ~id script =
      if read_only && t.snapshot <> None then
        List.iter
          (function
            | Get _ -> ()
            | Put _ | Delete _ -> invalid_arg "Scheduler.Exec.spawn: write in read-only script")
          script;
      {
        id;
        index;
        script;
        read_only;
        remaining = script;
        txn = None;
        view = None;
        done_ = false;
        restart_count = 0;
        backoff = 0;
        parked_on = None;
        woken = false;
      }

    let finished st = st.done_

    let task_restarts st = st.restart_count

    let commit_order t = List.rev t.commit_order

    let restarts t = t.restarts

    let steps t = t.steps

    let lock_acquires t = t.lock_acquires

    let park t st page =
      st.parked_on <- Some page;
      st.woken <- false;
      match Hashtbl.find_opt t.parked page with
      | Some l -> l := st :: !l
      | None -> Hashtbl.replace t.parked page (ref [ st ])

    let unpark t st =
      match st.parked_on with
      | None -> ()
      | Some page ->
        st.parked_on <- None;
        st.woken <- false;
        (match Hashtbl.find_opt t.parked page with
        | Some l ->
          l := List.filter (fun s -> s != st) !l;
          if !l = [] then Hashtbl.remove t.parked page
        | None -> ())

    let wake_page t page =
      match Hashtbl.find_opt t.parked page with
      | Some l -> List.iter (fun s -> s.woken <- true) !l
      | None -> ()

    let wake_all t =
      Hashtbl.iter (fun _ l -> List.iter (fun s -> s.woken <- true) !l) t.parked

    let release_and_wake t txn =
      List.iter (wake_page t) (Lock_mgr.release_all_pages t.locks ~txn)

    let release_locks t ~id = release_and_wake t id

    (* Deadlock victims back off before retrying.  The backoff grows
       with the script's restart count and differs per script (via its
       [index]), so two scripts that keep colliding under deterministic
       round-robin eventually desynchronize (without this, repeated
       mutual restarts can livelock). *)
    let restart t st =
      (match st.txn with Some tx -> E.abort tx | None -> ());
      release_and_wake t st.id;
      st.txn <- None;
      st.remaining <- st.script;
      st.restart_count <- st.restart_count + 1;
      st.backoff <- st.restart_count * (st.index + 1);
      t.restarts <- t.restarts + 1

    let txn_of t st =
      match st.txn with
      | Some tx -> tx
      | None ->
        let tx = E.begin_txn t.engine in
        st.txn <- Some tx;
        tx

    (* The lock-free path for a read-only task when a snapshot factory
       is installed: every Get reads through a view pinned at the
       task's first read, no lock is ever requested, so the task can
       neither block nor be a deadlock victim — it advances every turn
       it gets and commits by closing the view.  Without a factory,
       read-only tasks run the ordinary locked path. *)
    let advance_snapshot t st =
      match st.remaining with
      | [] ->
        (match st.view with Some v -> v.view_close () | None -> ());
        st.view <- None;
        st.done_ <- true;
        t.commit_order <- st.id :: t.commit_order;
        Committed
      | op :: rest ->
        let v =
          match st.view with
          | Some v -> v
          | None ->
            let v = (Option.get t.snapshot) () in
            st.view <- Some v;
            v
        in
        (match op with
        | Get k -> ignore (v.view_get k)
        | Put _ | Delete _ -> invalid_arg "Scheduler: write in read-only script");
        st.remaining <- rest;
        Advanced

    (* One advance attempt for a runnable task: execute one operation,
       or commit.  Locks are released at commit time regardless of what
       the commit sink does about durability (strict 2PL ends when the
       commit record is {e appended}; group commit only defers the
       force). *)
    let advance t st =
      if st.read_only && t.snapshot <> None then advance_snapshot t st
      else begin
      unpark t st;
      match st.remaining with
      | [] ->
        (match st.txn with
        | Some tx -> t.commit ~id:st.id tx
        | None ->
          (* empty script: an empty transaction still commits *)
          t.commit ~id:st.id (txn_of t st));
        (* A held task (a 2PC participant slice that just prepared)
           keeps its page locks past the sink: strict 2PL must extend
           to the coordinator's decision, or another transaction could
           read a value whose fate is still open.  The driver releases
           with [release_locks] when the decision arrives. *)
        if not (t.hold ~id:st.id) then release_and_wake t st.id;
        st.done_ <- true;
        st.txn <- None;
        t.commit_order <- st.id :: t.commit_order;
        Committed
      | op :: rest -> (
        t.lock_acquires <- t.lock_acquires + 1;
        let page = key_of op / E.keys_per_page t.engine in
        match
          Lock_mgr.acquire_wait_info t.locks ~txn:st.id ~page ~mode:(mode_of t.read_mode op)
        with
        | Lock_mgr.Granted, _ ->
          let tx = txn_of t st in
          (match op with
          | Get k -> ignore (E.get tx k)
          | Put (k, v) -> E.put tx k v
          | Delete k -> E.delete tx k);
          st.remaining <- rest;
          Advanced
        | Lock_mgr.Would_block, fresh_edges ->
          if fresh_edges then wake_all t;
          park t st page;
          Blocked
        | Lock_mgr.Deadlock _, _ ->
          (* strict 2PL victim: roll back and start over *)
          restart t st;
          Restarted)
      end

    (* One scheduler turn for a task: counts a step, serves the backoff,
       skips a parked-and-unwoken task, otherwise advances. *)
    let step t st =
      t.steps <- t.steps + 1;
      if st.backoff > 0 then begin
        st.backoff <- st.backoff - 1;
        Skipped
      end
      else if st.parked_on <> None && not st.woken then Skipped
      else advance t st
  end

  (* A blocked script's retry is a pure no-op except after two kinds of
     events, so instead of re-running the lock acquisition for every
     blocked script every turn (the pre-overhaul polling scheduler, kept
     in {!Naive.Sched}), scripts park on the page that blocked them and
     are woken only when a retry could decide differently:

     - a lock release touched their page ({!Lock_mgr.release_all_pages}
       names them): the retry may now be [Granted];
     - any script queued a new waiter, i.e. added waits-for edges: the
       retry may now find [Deadlock].  Cycles appear only when edges are
       added, and the closing acquire does not always see its own cycle
       (an upgrade request checks only the page's other holders), so in
       the polling world the victim is whichever transaction on the
       cycle re-acquires first.  Waking every parked script on a fresh
       edge reproduces that audit in the same round-robin order.  A
       repeat block adds no edges, so a contended steady state parks
       quietly instead of cascading wakes.

     A parked script still counts a scheduler step each turn, and a
     woken retry runs the identical acquire a poll would have run, so
     [steps], [commit_order] and [restarts] are bit-identical to the
     polling scheduler. *)
  let run ?(max_steps = 100_000) engine ~scripts =
    let ids = List.map fst scripts in
    if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
      invalid_arg "Scheduler.run: duplicate script ids";
    let ex = Exec.create engine in
    let tasks = List.mapi (fun index (id, script) -> Exec.spawn ex ~index ~id script) scripts in
    let all_done () = List.for_all Exec.finished tasks in
    while (not (all_done ())) && Exec.steps ex < max_steps do
      List.iter (fun st -> if not (Exec.finished st) then ignore (Exec.step ex st)) tasks
    done;
    if not (all_done ()) then failwith "Scheduler.run: scripts did not complete (livelock?)";
    { commit_order = Exec.commit_order ex; restarts = Exec.restarts ex; steps = Exec.steps ex }
end
