type mode = Eager | Grouped of { batch : int; timeout_us : float }

let validate_mode = function
  | Eager -> ()
  | Grouped { batch; timeout_us } ->
    if batch < 1 then invalid_arg "Commit_pipeline: batch must be >= 1";
    if not (timeout_us > 0.0 && Float.is_finite timeout_us) then
      invalid_arg "Commit_pipeline: timeout_us must be positive and finite"

module type GROUPED = sig
  type t

  type txn

  val commit : txn -> unit

  val commit_group : txn -> unit

  val force_commits : t -> unit
end

module Make (E : GROUPED) = struct
  type t = {
    engine : E.t;
    mode : mode;
    sync_cost_us : float;
    on_ack : id:int -> now:float -> unit;
    mutable pending : int list;  (* ids committed in memory, not yet forced; newest first *)
    mutable n_pending : int;
    mutable deadline : float;  (* meaningful iff n_pending > 0 *)
    mutable forces : int;
    mutable acked : int;
  }

  let create ?(sync_cost_us = 0.0) ?(on_ack = fun ~id:_ ~now:_ -> ()) mode engine =
    validate_mode mode;
    if not (sync_cost_us >= 0.0 && Float.is_finite sync_cost_us) then
      invalid_arg "Commit_pipeline: sync_cost_us must be non-negative and finite";
    {
      engine;
      mode;
      sync_cost_us;
      on_ack;
      pending = [];
      n_pending = 0;
      deadline = Float.infinity;
      forces = 0;
      acked = 0;
    }

  let pending t = t.n_pending

  let forces t = t.forces

  let acked t = t.acked

  let deadline t = if t.n_pending > 0 then Some t.deadline else None

  (* One log force: charge one sync latency, then acknowledge every
     pending transaction at the post-force instant — the moment its
     commit record is actually durable. *)
  let force t ~now =
    let now = now +. t.sync_cost_us in
    E.force_commits t.engine;
    t.forces <- t.forces + 1;
    List.iter (fun id -> t.on_ack ~id ~now) (List.rev t.pending);
    t.acked <- t.acked + t.n_pending;
    t.pending <- [];
    t.n_pending <- 0;
    t.deadline <- Float.infinity;
    now

  let flush t ~now = if t.n_pending = 0 then now else force t ~now

  let submit t ~now ~id txn =
    match t.mode with
    | Eager ->
      let now = now +. t.sync_cost_us in
      E.commit txn;
      t.forces <- t.forces + 1;
      t.on_ack ~id ~now;
      t.acked <- t.acked + 1;
      now
    | Grouped { batch; timeout_us } ->
      E.commit_group txn;
      if t.n_pending = 0 then t.deadline <- now +. timeout_us;
      t.pending <- id :: t.pending;
      t.n_pending <- t.n_pending + 1;
      if t.n_pending >= batch then force t ~now else now

  let poll t ~now = if t.n_pending > 0 && t.deadline <= now then force t ~now else now
end
