type t = {
  page_size : int;
  stable : bytes array;
  cache : (int, bytes) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
  mutable syncs : int;
}

let create ~pages ~page_size () =
  if pages <= 0 || page_size <= 0 then invalid_arg "Vdisk.create: non-positive size";
  {
    page_size;
    stable = Array.init pages (fun _ -> Bytes.make page_size '\000');
    cache = Hashtbl.create 64;
    reads = 0;
    writes = 0;
    syncs = 0;
  }

let pages t = Array.length t.stable

let page_size t = t.page_size

let check_page t p =
  if p < 0 || p >= Array.length t.stable then
    invalid_arg (Printf.sprintf "Vdisk: page %d out of range [0,%d)" p (Array.length t.stable))

let read t p =
  check_page t p;
  t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.cache p with
  | Some b -> Bytes.copy b
  | None -> Bytes.copy t.stable.(p)

let read_ro t p =
  check_page t p;
  t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.cache p with Some b -> b | None -> t.stable.(p)

let write t p b =
  check_page t p;
  if Bytes.length b <> t.page_size then
    invalid_arg
      (Printf.sprintf "Vdisk.write: buffer is %d bytes, page size is %d" (Bytes.length b)
         t.page_size);
  t.writes <- t.writes + 1;
  Hashtbl.replace t.cache p (Bytes.copy b)

let sync t =
  t.syncs <- t.syncs + 1;
  Hashtbl.iter (fun p b -> Bytes.blit b 0 t.stable.(p) 0 t.page_size) t.cache;
  Hashtbl.reset t.cache

let write_sync t p b =
  write t p b;
  sync t

let crash t = Hashtbl.reset t.cache

let unsynced_pages t = Hashtbl.length t.cache

let reads t = t.reads
let writes t = t.writes
let syncs t = t.syncs
