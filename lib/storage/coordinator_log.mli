(** The two-phase-commit coordinator's decision log.

    One journal of [(gid, commit?)] records.  A cross-shard transaction
    commits the moment its decision record is forced here — before any
    participant learns the outcome — so participants may leave their
    local decision records unforced: restart recovery finds the
    prepared-but-undecided transactions in the participant logs
    ({!Engine_log.in_doubt}) and resolves each from this table, with
    {b presumed abort} for a gid the coordinator never decided (the
    crash hit between the participants' prepares and the coordinator's
    force, so no participant can have exposed a committed value).
    DESIGN.md B.5 carries the correctness argument. *)

type t

val create : unit -> t

val decide : t -> gid:int -> commit:bool -> unit
(** Append and force the decision record for [gid] — the transaction's
    commit point.  @raise Invalid_argument on a second decision for the
    same gid (decisions are immutable). *)

val decision : t -> gid:int -> bool option
(** The durable decision for [gid]; [None] when never decided. *)

val resolve : t -> gid:int -> bool
(** {!decision} with presumed abort: [false] when never decided.  The
    resolver shape the engines' [crash_and_recover_resolved] takes. *)

val decisions : t -> int
(** Decisions recorded (and, after a crash, recovered). *)

val log_syncs : t -> int
(** Journal forces paid — one per decision. *)

val crash_and_recover : t -> unit
(** Drop the unsynced tail and rebuild the decision table from the
    durable records. *)
