(** Page-level two-phase locking with deadlock detection.

    Non-blocking interface: {!acquire} either grants the lock, reports
    that the caller would block behind the current holders, or reports
    that waiting would close a cycle in the waits-for graph (deadlock).
    On [Would_block] the requester is recorded as waiting; the waits-for
    edges persist until the request is granted on a retry, withdrawn,
    or the transaction releases its locks.  The caller (the back-end
    controller in the paper's design) chooses the victim and aborts
    it. *)

type t

type mode = S | X

type outcome =
  | Granted
  | Would_block
  | Deadlock of int list  (** the cycle of transaction ids, requester first *)

val create : unit -> t

val acquire : t -> txn:int -> page:int -> mode:mode -> outcome
(** Re-acquiring a held lock is granted; an upgrade (S held, X
    requested) is granted when the requester is the only holder. *)

val acquire_wait_info : t -> txn:int -> page:int -> mode:mode -> outcome * bool
(** Like {!acquire}, but on [Would_block] additionally reports whether
    this call queued a {e new} waiter — i.e. added waits-for edges.
    A cycle can only appear when edges are added, and not every such
    cycle is detected by the acquire that closes it: an upgrade request
    checks cycles against the page's other holders only, so the cycle it
    closes through a waiter ahead of it surfaces on some {e other}
    transaction's re-acquire.  A scheduler that parks blocked scripts
    instead of polling must therefore re-run the blocked acquires (the
    deadlock audit a poll performed implicitly) whenever a new edge
    appears; a repeat block of an already-queued request adds no edges
    and reports [false]. *)

val withdraw : t -> txn:int -> page:int -> unit
(** Forget a pending (blocked) request, removing its waits-for edges. *)

val release_all : t -> txn:int -> unit
(** Release every lock held by [txn] and any pending requests. *)

val release_all_pages : t -> txn:int -> int list
(** Like {!release_all}, but returns the pages whose lock entries were
    touched — i.e. every page another transaction could now make
    progress on.  Lets a scheduler wake exactly the scripts parked on
    those pages instead of polling everyone. *)

val holds : t -> txn:int -> page:int -> mode option

val locked_pages : t -> int

val waiting : t -> txn:int -> bool
