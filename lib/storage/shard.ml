(* Domain-parallel transaction shards with two-phase group commit.
   See shard.mli for the protocol overview and DESIGN.md B.5 for the
   correctness argument. *)

module Histogram = Dbm_util.Stats.Histogram
module Pool = Dbm_util.Pool

module type ENGINE = sig
  include Server.ENGINE

  val prepare : txn -> gid:int -> unit
end

type result = {
  completed : int;
  makespan_us : float;
  sustained_tps : float;
  restarts : int;
  forces : int;
  lock_acquires : int;
  cross_committed : int;
  oversubscribed : bool;
  latency_us : Histogram.t;
  single_latency_us : Histogram.t;
  cross_latency_us : Histogram.t;
  serial : Server.result option;
}

let idle_pass_limit = 1_000_000

(* Shared 2PC state across the shard domains.  Everything mutable in
   here is touched only under [m]; [c] is broadcast on every decision
   (and on failure) so shards blocked waiting for a decision wake. *)
type cross_state = {
  m : Mutex.t;
  c : Condition.t;
  nparts : int array;  (* participant count per gid; 0 for single-shard *)
  prepared : int array;  (* prepares registered so far *)
  prep_time : float array;  (* max participant prepare sim-time *)
  decided : float array;  (* decision sim-time; nan = undecided *)
  mutable failed : bool;  (* a peer shard raised; waiters must bail *)
}

module Make (E : ENGINE) = struct
  module Sch = Scheduler.Make (E)
  module Pipe = Commit_pipeline.Make (E)
  module Serial = Server.Make (E)

  type shard_stats = {
    s_final_us : float;
    s_restarts : int;
    s_forces : int;
    s_lock_acquires : int;
    s_hist : Histogram.t;  (* single-shard transaction latencies *)
  }

  (* One shard's server loop: the open-loop Server.run structure
     (admission FIFO, commit pipeline, round-robin passes, clock jumps
     to the next event when idle) extended with the 2PC participant
     role.  A cross-shard slice's "commit" is a durable [E.prepare];
     the slice's locks are held (Exec's [hold] predicate) until the
     coordinator's decision, which this loop applies between passes:
     local unforced decision record ([commit_group]), lock release,
     clock bumped to the decision time.

     Admission is strictly FIFO with at most one cross-shard slice in
     flight per shard.  Because every shard admits its cross slices in
     global gid order (gids are issued in arrival order and each
     shard's queue preserves it), the shard holding the smallest
     undecided gid's slices can always run them to prepare — its
     participants have no earlier cross work pending — so that gid
     decides, releases, and induction gives global progress: the 2PC
     wait graph never cycles. *)
  let shard_loop ~mpl ~op_cost_us ~sync_cost_us ~mode ~arrivals_us ~coordinator
      ~(cross : cross_state) ~is_cross ~(work : (int * Scheduler.script) array) engine =
    let total = Array.length work in
    let now = ref 0.0 in
    let hist = Histogram.create () in
    let acked = ref 0 in
    let prepares = ref 0 in
    let pipe =
      Pipe.create ~sync_cost_us
        ~on_ack:(fun ~id ~now ->
          Histogram.add hist (Float.max 0.0 (now -. arrivals_us.(id)));
          incr acked)
        mode engine
    in
    (* The prepared-but-undecided slice, at most one (admission gate). *)
    let slot : (int * E.txn) option ref = ref None in
    (* A cross slice is in flight from admission (it may be executing,
       restarting, or sitting prepared in [slot]) until its decision is
       applied.  The admission gate keys off this, not [slot]: two
       executing cross slices on one shard would already break the
       gid-order progress argument. *)
    let cross_inflight = ref false in
    let register_prepare gid t =
      Mutex.lock cross.m;
      cross.prepared.(gid) <- cross.prepared.(gid) + 1;
      if t > cross.prep_time.(gid) then cross.prep_time.(gid) <- t;
      if cross.prepared.(gid) = cross.nparts.(gid) then begin
        (* Last participant to vote writes the coordinator's decision —
           the transaction's commit point, forced before anyone learns
           it.  Decision time: every vote durable, plus the
           coordinator's own force. *)
        Coordinator_log.decide coordinator ~gid ~commit:true;
        cross.decided.(gid) <- cross.prep_time.(gid) +. sync_cost_us;
        Condition.broadcast cross.c
      end;
      Mutex.unlock cross.m
    in
    let ex =
      Sch.Exec.create
        ~commit:(fun ~id txn ->
          if is_cross id then begin
            (* The durable vote: one charged force covers the update
               disks + Prepare record (engine-side it may force more
               than one journal; the simulated cost model charges one
               round, as eager commit does). *)
            now := !now +. sync_cost_us;
            E.prepare txn ~gid:id;
            incr prepares;
            slot := Some (id, txn);
            register_prepare id !now
          end
          else now := Pipe.submit pipe ~now:!now ~id txn)
        ~hold:(fun ~id -> is_cross id)
        engine
    in
    let waitq : int Queue.t = Queue.create () in
    let runq : (Sch.Exec.task * int) Queue.t = Queue.create () in
    let next = ref 0 in
    let spawned = ref 0 in
    let idle_passes = ref 0 in
    let in_flight () = !spawned - !acked in
    let pump_arrivals () =
      while !next < total && arrivals_us.(fst work.(!next)) <= !now do
        Queue.push !next waitq;
        incr next
      done
    in
    let admit () =
      let stop = ref false in
      while (not !stop) && (not (Queue.is_empty waitq)) && in_flight () < mpl do
        let w = Queue.peek waitq in
        let gid = fst work.(w) in
        if is_cross gid && !cross_inflight then
          (* One cross slice in flight at a time: FIFO admission stalls
             here (and everything behind it waits) until the decision
             lands — the gid-order gate the progress argument needs. *)
          stop := true
        else begin
          ignore (Queue.pop waitq);
          if is_cross gid then cross_inflight := true;
          let task = Sch.Exec.spawn ex ~index:(!spawned mod mpl) ~id:gid (snd work.(w)) in
          Queue.push (task, gid) runq;
          incr spawned
        end
      done
    in
    let decided_time gid =
      Mutex.lock cross.m;
      let d = cross.decided.(gid) in
      let failed = cross.failed in
      Mutex.unlock cross.m;
      if failed then failwith "Shard.run: a peer shard failed";
      d
    in
    (* Apply a landed decision: local decision record (unforced — the
       coordinator record is the durable truth, recovery resolves from
       it), release the slice's locks, ack at the decision instant. *)
    let apply_decision () =
      match !slot with
      | Some (gid, txn) ->
        let dt = decided_time gid in
        if Float.is_nan dt then false
        else begin
          E.commit_group txn;
          Sch.Exec.release_locks ex ~id:gid;
          slot := None;
          cross_inflight := false;
          now := Float.max !now dt +. op_cost_us;
          incr acked;
          true
        end
      | None -> false
    in
    let wait_for_decision gid =
      Mutex.lock cross.m;
      while Float.is_nan cross.decided.(gid) && not cross.failed do
        Condition.wait cross.c cross.m
      done;
      let failed = cross.failed in
      Mutex.unlock cross.m;
      if failed then failwith "Shard.run: a peer shard failed"
    in
    while !acked < total do
      pump_arrivals ();
      now := Pipe.poll pipe ~now:!now;
      if apply_decision () then idle_passes := 0;
      admit ();
      let progressed = ref false in
      for _ = 1 to Queue.length runq do
        let task, gid = Queue.pop runq in
        (match Sch.Exec.step ex task with
        | Sch.Exec.Committed | Sch.Exec.Advanced | Sch.Exec.Restarted ->
          now := !now +. op_cost_us;
          progressed := true
        | Sch.Exec.Blocked | Sch.Exec.Skipped -> ());
        if not (Sch.Exec.finished task) then Queue.push (task, gid) runq
      done;
      if !progressed then idle_passes := 0
      else begin
        let next_event =
          let d = match Pipe.deadline pipe with Some d -> d | None -> Float.infinity in
          let a = if !next < total then arrivals_us.(fst work.(!next)) else Float.infinity in
          Float.min d a
        in
        if next_event > !now && Float.is_finite next_event then begin
          now := next_event;
          idle_passes := 0
        end
        else
          match !slot with
          | Some (gid, _) ->
            (* Everything local is blocked behind the prepared slice:
               sleep until a peer's vote completes the decision.  Real
               blocking (condition variable), not spinning — on an
               oversubscribed host the OS reschedules a runnable
               shard. *)
            wait_for_decision gid;
            idle_passes := 0
          | None ->
            incr idle_passes;
            if !idle_passes > idle_pass_limit then
              failwith "Shard.run: no progress (livelock or undetected deadlock)"
      end
    done;
    {
      s_final_us = !now;
      s_restarts = Sch.Exec.restarts ex;
      s_forces = Pipe.forces pipe + !prepares;
      s_lock_acquires = Sch.Exec.lock_acquires ex;
      s_hist = hist;
    }

  let run ?(mpl = 64) ?(op_cost_us = 1.0) ?(sync_cost_us = 100.0) ~mode ~arrivals_us ~scripts
      ~coordinator (engines : E.t array) =
    let shards = Array.length engines in
    if shards < 1 then invalid_arg "Shard.run: need at least one shard engine";
    let n = Array.length arrivals_us in
    if Array.length scripts <> n then
      invalid_arg "Shard.run: arrivals and scripts must have equal length";
    if shards = 1 then begin
      (* One shard IS the PR 9 server: delegate verbatim, so the serial
         point of every sweep is bit-identical to Server.run. *)
      let r = Serial.run ~mpl ~op_cost_us ~sync_cost_us ~mode ~arrivals_us ~scripts engines.(0) in
      {
        completed = r.Server.completed;
        makespan_us = r.Server.makespan_us;
        sustained_tps = r.Server.sustained_tps;
        restarts = r.Server.restarts;
        forces = r.Server.forces;
        lock_acquires = r.Server.lock_acquires;
        cross_committed = 0;
        oversubscribed = false;
        latency_us = r.Server.latency_us;
        single_latency_us = r.Server.latency_us;
        cross_latency_us = Histogram.create ();
        serial = Some r;
      }
    end
    else begin
      Array.iteri
        (fun i a ->
          if not (Float.is_finite a && a >= 0.0 && (i = 0 || a >= arrivals_us.(i - 1))) then
            invalid_arg "Shard.run: arrival times must be finite, non-negative, non-decreasing")
        arrivals_us;
      let keys_per_page = E.keys_per_page engines.(0) in
      (* Route every transaction: per-shard slices, participant counts.
         An empty script has no keys to route; it runs (and commits
         empty) on shard 0. *)
      let per_shard : (int * Scheduler.script) list ref array = Array.make shards (ref []) in
      for s = 0 to shards - 1 do
        per_shard.(s) <- ref []
      done;
      let nparts = Array.make n 0 in
      let is_cross_gid = Array.make n false in
      for gid = 0 to n - 1 do
        let slices =
          match Shard_router.split ~shards ~keys_per_page scripts.(gid) with
          | [] -> [ (0, []) ]
          | sl -> sl
        in
        nparts.(gid) <- List.length slices;
        is_cross_gid.(gid) <- nparts.(gid) > 1;
        List.iter (fun (s, slice) -> per_shard.(s) := (gid, slice) :: !(per_shard.(s))) slices
      done;
      let work =
        Array.map (fun l -> Array.of_list (List.rev !l)) per_shard
        (* gids ascend = arrival order, the FIFO each shard admits in *)
      in
      let cross =
        {
          m = Mutex.create ();
          c = Condition.create ();
          nparts;
          prepared = Array.make n 0;
          prep_time = Array.make n neg_infinity;
          decided = Array.make n Float.nan;
          failed = false;
        }
      in
      let is_cross gid = is_cross_gid.(gid) in
      let oversubscribed = shards > Pool.default_jobs () in
      (* One domain per shard: weighted map hands items out one at a
         time, so each shard loop owns a worker for its whole run —
         chunking could strand two blocking loops on one domain.
         [allow_oversubscribe] keeps that guarantee on small hosts; the
         clock is simulated, so oversubscription costs wall time, not
         measured time. *)
      let stats =
        Pool.with_pool ~jobs:shards ~allow_oversubscribe:true (fun pool ->
            Pool.map_ordered_weighted pool
              (List.init shards Fun.id)
              ~weight:(fun s -> float_of_int (Array.length work.(s)))
              ~f:(fun s ->
                try
                  shard_loop ~mpl ~op_cost_us ~sync_cost_us ~mode ~arrivals_us ~coordinator
                    ~cross ~is_cross ~work:work.(s) engines.(s)
                with e ->
                  Mutex.lock cross.m;
                  cross.failed <- true;
                  Condition.broadcast cross.c;
                  Mutex.unlock cross.m;
                  raise e))
      in
      let cross_hist = Histogram.create () in
      let cross_committed = ref 0 in
      let max_decided = ref 0.0 in
      for gid = 0 to n - 1 do
        if is_cross_gid.(gid) then begin
          incr cross_committed;
          let dt = cross.decided.(gid) in
          (* Every cross transaction decided before the loops exited. *)
          assert (not (Float.is_nan dt));
          if dt > !max_decided then max_decided := dt;
          Histogram.add cross_hist (Float.max 0.0 (dt -. arrivals_us.(gid)))
        end
      done;
      let single_hist =
        List.fold_left
          (fun acc st -> Histogram.merge acc st.s_hist)
          (Histogram.create ()) stats
      in
      let makespan_us =
        List.fold_left (fun acc st -> Float.max acc st.s_final_us) !max_decided stats
      in
      {
        completed = n;
        makespan_us;
        sustained_tps =
          (if makespan_us > 0.0 then float_of_int n /. makespan_us *. 1e6 else Float.infinity);
        restarts = List.fold_left (fun acc st -> acc + st.s_restarts) 0 stats;
        forces =
          List.fold_left (fun acc st -> acc + st.s_forces) 0 stats
          + Coordinator_log.log_syncs coordinator;
        lock_acquires = List.fold_left (fun acc st -> acc + st.s_lock_acquires) 0 stats;
        cross_committed = !cross_committed;
        oversubscribed;
        latency_us = Histogram.merge single_hist cross_hist;
        single_latency_us = single_hist;
        cross_latency_us = cross_hist;
        serial = None;
      }
    end
end
