(* Key-space partitioning for the Shard layer.  See shard_router.mli. *)

(* Fibonacci-hash mixing (a golden-ratio-style odd multiplier, trimmed
   to OCaml's 63-bit int range) before the mod: bench workloads address
   pages in arithmetic patterns (key = 4*page, sequential page scans),
   and a bare [page mod shards] would map such strides onto a single
   shard.  The multiply-shift spreads any stride across the whole ring;
   [land max_int] clears the sign bit after the wrapping multiply. *)
let mix p = (p * 0x1E3779B97F4A7C15) land max_int

let shard_of_page ~shards page =
  if shards <= 0 then invalid_arg "Shard_router.shard_of_page: shards must be positive";
  if shards = 1 then 0 else mix page lsr 31 mod shards

(* Pages are the lock and replay granule, so routing must be
   page-aligned: every key of a page lands on the page's shard. *)
let shard_of_key ~shards ~keys_per_page k =
  if keys_per_page <= 0 then invalid_arg "Shard_router.shard_of_key: bad keys_per_page";
  shard_of_page ~shards (k / keys_per_page)

let key_of = function Scheduler.Get k | Scheduler.Put (k, _) | Scheduler.Delete k -> k

let participants ~shards ~keys_per_page (script : Scheduler.script) =
  let seen = Array.make shards false in
  List.iter
    (fun op -> seen.(shard_of_key ~shards ~keys_per_page (key_of op)) <- true)
    script;
  let acc = ref [] in
  for s = shards - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

let split ~shards ~keys_per_page (script : Scheduler.script) =
  let slices = Array.make shards [] in
  List.iter
    (fun op ->
      let s = shard_of_key ~shards ~keys_per_page (key_of op) in
      slices.(s) <- op :: slices.(s))
    script;
  let acc = ref [] in
  for s = shards - 1 downto 0 do
    match slices.(s) with
    | [] -> ()
    | ops -> acc := (s, List.rev ops) :: !acc
  done;
  !acc
