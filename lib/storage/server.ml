module Histogram = Dbm_util.Stats.Histogram

module type ENGINE = sig
  include Kv.S

  val commit_group : txn -> unit

  val force_commits : t -> unit
end

type result = {
  completed : int;
  makespan_us : float;
  sustained_tps : float;
  restarts : int;
  ro_restarts : int;
  forces : int;
  max_inflight : int;
  max_queued : int;
  lock_acquires : int;
  latency_us : Histogram.t;
  ro_latency_us : Histogram.t;
  rw_latency_us : Histogram.t;
}

(* After this many consecutive round-robin passes with no task
   advancing, restarting or committing — only backoff ticks and parked
   skips — the run is declared livelocked.  Backoffs are bounded by
   [restart_count * mpl], so a healthy contended run drains its idle
   passes far below this. *)
let idle_pass_limit = 1_000_000

module Make (E : ENGINE) = struct
  module Sch = Scheduler.Make (E)
  module Pipe = Commit_pipeline.Make (E)

  let run ?(mpl = 64) ?(op_cost_us = 1.0) ?(sync_cost_us = 100.0) ?snapshot ?read_mode
      ?read_only ?ro_hist ?rw_hist ~mode ~arrivals_us ~scripts engine =
    if mpl < 1 then invalid_arg "Server.run: mpl must be >= 1";
    if not (op_cost_us >= 0.0 && Float.is_finite op_cost_us) then
      invalid_arg "Server.run: op_cost_us must be non-negative and finite";
    let n = Array.length arrivals_us in
    if Array.length scripts <> n then
      invalid_arg "Server.run: arrivals and scripts must have equal length";
    (match read_only with
    | Some ro when Array.length ro <> n ->
      invalid_arg "Server.run: read_only and scripts must have equal length"
    | _ -> ());
    Array.iteri
      (fun i a ->
        if not (Float.is_finite a && a >= 0.0 && (i = 0 || a >= arrivals_us.(i - 1))) then
          invalid_arg "Server.run: arrival times must be finite, non-negative, non-decreasing")
      arrivals_us;
    let is_ro id = match read_only with Some ro -> ro.(id) | None -> false in
    let now = ref 0.0 in
    (* Callers sweeping many points may pass recycled (cleared)
       histograms to avoid reallocating the bucket arrays per point;
       supplied histograms must be empty or the class stats skew. *)
    let fresh_or h = match h with Some h -> h | None -> Histogram.create () in
    let ro_hist = fresh_or ro_hist in
    let rw_hist = fresh_or rw_hist in
    let acked = ref 0 in
    let pipe =
      Pipe.create ~sync_cost_us
        ~on_ack:(fun ~id ~now ->
          (* Locked-path read-only transactions still commit through the
             pipeline; route their latency to their class. *)
          Histogram.add (if is_ro id then ro_hist else rw_hist) (Float.max 0.0 (now -. arrivals_us.(id)));
          incr acked)
        mode engine
    in
    (* The commit sink: every finishing task commits through the shared
       pipeline, on the server clock.  Snapshot-path read-only tasks
       never reach it — they have no transaction and nothing needing
       durability; their ack is their final step (below). *)
    let ex =
      Sch.Exec.create
        ~commit:(fun ~id txn -> now := Pipe.submit pipe ~now:!now ~id txn)
        ?snapshot ?read_mode engine
    in
    let waitq : int Queue.t = Queue.create () in
    let runq : (Sch.Exec.task * int) Queue.t = Queue.create () in
    let ro_tasks : Sch.Exec.task list ref = ref [] in
    let next = ref 0 in
    let spawned = ref 0 in
    let max_inflight = ref 0 in
    let max_queued = ref 0 in
    let idle_passes = ref 0 in
    (* Admission control: a transaction is in flight from admission
       until its durable ack; at most [mpl] may be in flight, and the
       overflow waits in an unbounded FIFO — arrivals are delayed, never
       dropped. *)
    let in_flight () = !spawned - !acked in
    let pump_arrivals () =
      while !next < n && arrivals_us.(!next) <= !now do
        Queue.push !next waitq;
        incr next;
        if Queue.length waitq > !max_queued then max_queued := Queue.length waitq
      done
    in
    let admit () =
      while (not (Queue.is_empty waitq)) && in_flight () < mpl do
        let id = Queue.pop waitq in
        let task =
          Sch.Exec.spawn ex ~read_only:(is_ro id) ~index:(!spawned mod mpl) ~id scripts.(id)
        in
        if is_ro id then ro_tasks := task :: !ro_tasks;
        Queue.push (task, id) runq;
        incr spawned;
        if in_flight () > !max_inflight then max_inflight := in_flight ()
      done
    in
    (* A snapshot-path read-only commit is its ack: no transaction, no
       pipeline, latency is arrival to final step. *)
    let snapshot_path = snapshot <> None in
    while !acked < n do
      pump_arrivals ();
      now := Pipe.poll pipe ~now:!now;
      admit ();
      (* One round-robin pass.  A turn that did work (an operation, a
         restart's rollback, a commit append) costs [op_cost_us]; the
         sink charges sync latency inside [step] when it forces. *)
      let progressed = ref false in
      for _ = 1 to Queue.length runq do
        let task, id = Queue.pop runq in
        (match Sch.Exec.step ex task with
        | Sch.Exec.Committed ->
          now := !now +. op_cost_us;
          progressed := true;
          if snapshot_path && is_ro id then begin
            Histogram.add ro_hist (Float.max 0.0 (!now -. arrivals_us.(id)));
            incr acked
          end
        | Sch.Exec.Advanced | Sch.Exec.Restarted ->
          now := !now +. op_cost_us;
          progressed := true
        | Sch.Exec.Blocked | Sch.Exec.Skipped -> ());
        if not (Sch.Exec.finished task) then Queue.push (task, id) runq
      done;
      if !progressed then idle_passes := 0
      else begin
        (* Nothing ran.  Jump the clock to the next event — the pending
           batch's timeout or the next arrival — and only if there is
           none, spin the backoff/wake machinery under a livelock
           guard. *)
        let next_event =
          let d = match Pipe.deadline pipe with Some d -> d | None -> Float.infinity in
          let a = if !next < n then arrivals_us.(!next) else Float.infinity in
          Float.min d a
        in
        if next_event > !now && Float.is_finite next_event then begin
          now := next_event;
          idle_passes := 0
        end
        else begin
          incr idle_passes;
          if !idle_passes > idle_pass_limit then
            failwith "Server.run: no progress (livelock or undetected deadlock)"
        end
      end
    done;
    let makespan_us = !now in
    {
      completed = !acked;
      makespan_us;
      sustained_tps = (if makespan_us > 0.0 then float_of_int n /. makespan_us *. 1e6 else Float.infinity);
      restarts = Sch.Exec.restarts ex;
      ro_restarts = List.fold_left (fun acc t -> acc + Sch.Exec.task_restarts t) 0 !ro_tasks;
      forces = Pipe.forces pipe;
      max_inflight = !max_inflight;
      max_queued = !max_queued;
      lock_acquires = Sch.Exec.lock_acquires ex;
      latency_us = Histogram.merge rw_hist ro_hist;
      ro_latency_us = ro_hist;
      rw_latency_us = rw_hist;
    }
end
