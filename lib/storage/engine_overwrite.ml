(* Shared core of the two overwriting variants.  Disk layout: home
   blocks [0, n_logical), scratch ring [n_logical, n_logical+slots).
   The meta journal records intentions and transaction outcomes:
     "I txn page slot"  - page is shadowed/staged in scratch slot
     "C txn"            - transaction committed
     "R txn"            - transaction resolved: its scratch slots are
                          dead and may be reused (installed, restored,
                          or discarded)
   A slot is reusable only once its transaction's R record is durable;
   otherwise a later recovery could replay an intention against a slot
   that has been recycled. *)

type variant = No_undo_v | No_redo_v

type store = {
  variant : variant;
  n_keys : int;
  keys_per_page : int;
  n_logical : int;
  scratch_slots : int;
  disk : Vdisk.t;
  meta : Journal.t;
  busy : bool array;  (* scratch slot -> in use *)
  staged : (int, (int * int) list ref) Hashtbl.t;  (* txn -> (page, slot) *)
  mutable next_txn : int;
  mutable epoch : int;
  mutable live : int;
  mutable recoveries : int;
  mutable installs : int;
}

type txn_h = { st : store; id : int; born : int; mutable finished : bool }

let page_size = 1024

let parse_meta r =
  match String.split_on_char ' ' r with
  | [ "I"; txn; page; slot ] -> `Intent (int_of_string txn, int_of_string page, int_of_string slot)
  | [ "C"; txn ] -> `Commit (int_of_string txn)
  | [ "R"; txn ] -> `Resolved (int_of_string txn)
  | _ -> invalid_arg ("Engine_overwrite: corrupt meta record " ^ r)

let intent_record ~txn ~page ~slot = Printf.sprintf "I %d %d %d" txn page slot

let make_store variant ?(n_keys = 256) ?(keys_per_page = 4) ?(scratch_slots = 64) () =
  if n_keys <= 0 then invalid_arg "Engine_overwrite.create: need at least one key";
  if keys_per_page <= 0 || scratch_slots <= 0 then invalid_arg "Engine_overwrite.create: bad sizes";
  let n_logical = (n_keys + keys_per_page - 1) / keys_per_page in
  {
    variant;
    n_keys;
    keys_per_page;
    n_logical;
    scratch_slots;
    disk = Vdisk.create ~pages:(n_logical + scratch_slots) ~page_size ();
    meta = Journal.create ();
    busy = Array.make scratch_slots false;
    staged = Hashtbl.create 8;
    next_txn = 1;
    epoch = 0;
    live = 0;
    recoveries = 0;
    installs = 0;
  }

let scratch_addr t slot = t.n_logical + slot

let alloc_slot t =
  let rec find i = if i >= t.scratch_slots then raise Kv.Scratch_full
    else if not t.busy.(i) then i
    else find (i + 1)
  in
  let s = find 0 in
  t.busy.(s) <- true;
  s

let resolve t txn_id =
  ignore (Journal.append t.meta (Printf.sprintf "R %d" txn_id));
  Journal.sync t.meta;
  (match Hashtbl.find_opt t.staged txn_id with
  | Some l -> List.iter (fun (_, slot) -> t.busy.(slot) <- false) !l
  | None -> ());
  Hashtbl.remove t.staged txn_id

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let page_of t key = key / t.keys_per_page

let begin_txn_ t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.staged id (ref []);
  { st = t; id; born = t.epoch; finished = false }

let check h = if h.finished || h.born <> h.st.epoch then raise Kv.Txn_finished

let finish h =
  h.finished <- true;
  h.st.live <- h.st.live - 1

let staged_slot t txn_id p =
  match Hashtbl.find_opt t.staged txn_id with
  | None -> None
  | Some l -> List.assoc_opt p !l

let stage t txn_id p slot =
  match Hashtbl.find_opt t.staged txn_id with
  | Some l -> l := (p, slot) :: !l
  | None -> Hashtbl.replace t.staged txn_id (ref [ (p, slot) ])

(* ---- recovery, shared -------------------------------------------- *)

let recover t =
  let records = List.map parse_meta (Journal.read_all t.meta) in
  let committed = Hashtbl.create 8 and resolved = Hashtbl.create 8 in
  let intents = Hashtbl.create 8 in
  List.iter
    (function
      | `Commit id -> Hashtbl.replace committed id ()
      | `Resolved id -> Hashtbl.replace resolved id ()
      | `Intent (id, page, slot) ->
        let l = match Hashtbl.find_opt intents id with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace intents id l;
            l
        in
        l := (page, slot) :: !l)
    records;
  Array.fill t.busy 0 t.scratch_slots false;
  Hashtbl.reset t.staged;
  let max_id = ref 0 in
  List.iter
    (function
      | `Commit id | `Resolved id -> max_id := max !max_id id
      | `Intent (id, _, _) -> max_id := max !max_id id)
    records;
  Hashtbl.iter
    (fun id l ->
      if not (Hashtbl.mem resolved id) then begin
        let is_committed = Hashtbl.mem committed id in
        let copy_scratch_to_home (page, slot) =
          (* Vdisk.write copies its input, so the borrowed read is safe. *)
          Vdisk.write t.disk page (Vdisk.read_ro t.disk (scratch_addr t slot))
        in
        (match t.variant, is_committed with
        | No_undo_v, true ->
          (* Committed but not installed: re-install (idempotent). *)
          List.iter copy_scratch_to_home !l;
          t.installs <- t.installs + List.length !l
        | No_undo_v, false ->
          (* Homes were never touched: nothing to do. *)
          ()
        | No_redo_v, true ->
          (* All updates were on disk before the commit record. *)
          ()
        | No_redo_v, false ->
          (* Restore the shadows of the uncommitted transaction. *)
          List.iter copy_scratch_to_home !l);
        Vdisk.sync t.disk;
        ignore (Journal.append t.meta (Printf.sprintf "R %d" id));
        Journal.sync t.meta
      end)
    intents;
  t.next_txn <- !max_id + 1;
  t.live <- 0;
  t.recoveries <- t.recoveries + 1

let crash_and_recover_ t =
  Vdisk.crash t.disk;
  Journal.crash t.meta;
  t.epoch <- t.epoch + 1;
  recover t

(* ---- the two variants --------------------------------------------- *)

module No_undo = struct
  type t = store
  type txn = txn_h

  let engine_name = "overwrite-no-undo"

  let create_with = make_store No_undo_v
  let create ?n_keys () = create_with ?n_keys ()
  let max_keys t = t.n_keys
  let keys_per_page t = t.keys_per_page
  let begin_txn = begin_txn_

  (* Reads see the transaction's own staged copy first; committed state
     is always installed in the home location while the system is up. *)
  let get h k =
    check h;
    check_key h.st k;
    let t = h.st in
    let p = page_of t k in
    let image =
      match staged_slot t h.id p with
      | Some slot -> Vdisk.read_ro t.disk (scratch_addr t slot)
      | None -> Vdisk.read_ro t.disk p
    in
    Page.lookup image ~key:k

  let update_key h k value =
    check h;
    check_key h.st k;
    let t = h.st in
    let p = page_of t k in
    let slot, image =
      match staged_slot t h.id p with
      | Some slot -> (slot, Vdisk.read t.disk (scratch_addr t slot))
      | None ->
        let slot = alloc_slot t in
        stage t h.id p slot;
        ignore (Journal.append t.meta (intent_record ~txn:h.id ~page:p ~slot));
        (slot, Vdisk.read t.disk p)
    in
    Page.update image ~key:k ~value;
    Vdisk.write t.disk (scratch_addr t slot) image

  let put h k v = update_key h k (Some v)
  let delete h k = update_key h k None

  let commit h =
    check h;
    let t = h.st in
    (* 1. All updated pages durable in the scratch space... *)
    Vdisk.sync t.disk;
    (* 2. ...then the commit record: the transaction is now committed. *)
    ignore (Journal.append t.meta (Printf.sprintf "C %d" h.id));
    Journal.sync t.meta;
    (* 3. Install: overwrite the shadows with the current copies.  The
       paper releases the page locks only after this pass. *)
    (match Hashtbl.find_opt t.staged h.id with
    | Some l ->
      List.iter
        (fun (p, slot) -> Vdisk.write t.disk p (Vdisk.read_ro t.disk (scratch_addr t slot)))
        !l;
      t.installs <- t.installs + List.length !l;
      Vdisk.sync t.disk
    | None -> ());
    resolve t h.id;
    finish h

  let abort h =
    check h;
    (* The homes were never touched; just retire the scratch slots. *)
    resolve h.st h.id;
    finish h

  (* Test hook: durably committed, install pass not yet run. *)
  let commit_without_install h =
    check h;
    let t = h.st in
    Vdisk.sync t.disk;
    ignore (Journal.append t.meta (Printf.sprintf "C %d" h.id));
    Journal.sync t.meta;
    finish h

  let crash_and_recover = crash_and_recover_
  let checkpoint _ = ()
  let scratch_in_use t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.busy

  let stats t =
    [
      ("disk_reads", Vdisk.reads t.disk);
      ("disk_writes", Vdisk.writes t.disk);
      ("scratch_in_use", scratch_in_use t);
      ("scratch_slots", t.scratch_slots);
      ("live_txns", t.live);
      ("recoveries", t.recoveries);
      ("installs", t.installs);
    ]
end

module No_redo = struct
  type t = store
  type txn = txn_h

  let engine_name = "overwrite-no-redo"

  let create_with = make_store No_redo_v
  let create ?n_keys () = create_with ?n_keys ()
  let max_keys t = t.n_keys
  let keys_per_page t = t.keys_per_page
  let begin_txn = begin_txn_

  (* Updates are in place, so the home block is always current. *)
  let get h k =
    check h;
    check_key h.st k;
    Page.lookup (Vdisk.read_ro h.st.disk (page_of h.st k)) ~key:k

  let update_key h k value =
    check h;
    check_key h.st k;
    let t = h.st in
    let p = page_of t k in
    (match staged_slot t h.id p with
    | Some _ -> ()  (* the shadow is already safe *)
    | None ->
      (* Force the original to the scratch space, with a durable
         intention, BEFORE the home location may be overwritten. *)
      let slot = alloc_slot t in
      stage t h.id p slot;
      Vdisk.write t.disk (scratch_addr t slot) (Vdisk.read_ro t.disk p);
      Vdisk.sync t.disk;
      ignore (Journal.append t.meta (intent_record ~txn:h.id ~page:p ~slot));
      Journal.sync t.meta);
    let image = Vdisk.read t.disk p in
    Page.update image ~key:k ~value;
    Vdisk.write t.disk p image

  let put h k v = update_key h k (Some v)
  let delete h k = update_key h k None

  let commit h =
    check h;
    let t = h.st in
    (* A transaction is committed only after all its updates are on
       disk; then the commit record makes that durable fact explicit. *)
    Vdisk.sync t.disk;
    ignore (Journal.append t.meta (Printf.sprintf "C %d" h.id));
    Journal.sync t.meta;
    resolve t h.id;
    finish h

  let abort h =
    check h;
    let t = h.st in
    (* Undo in place: restore every shadow from the scratch space. *)
    (match Hashtbl.find_opt t.staged h.id with
    | Some l ->
      List.iter
        (fun (p, slot) -> Vdisk.write t.disk p (Vdisk.read_ro t.disk (scratch_addr t slot)))
        !l;
      Vdisk.sync t.disk
    | None -> ());
    resolve t h.id;
    finish h

  let crash_and_recover = crash_and_recover_
  let checkpoint _ = ()
  let scratch_in_use t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.busy

  let stats t =
    [
      ("disk_reads", Vdisk.reads t.disk);
      ("disk_writes", Vdisk.writes t.disk);
      ("scratch_in_use", scratch_in_use t);
      ("scratch_slots", t.scratch_slots);
      ("live_txns", t.live);
      ("recoveries", t.recoveries);
      ("installs", t.installs);
    ]
end
