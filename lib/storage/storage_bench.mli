(** Storage-half throughput benchmark.

    Measures the recovery engines and their substrate the same way the
    simulation half is measured by bench/main: per-engine committed
    transactions per second under the 2PL scheduler at low and high
    contention, a head-to-head of the pre-overhaul polling scheduler
    ({!Naive}) against the wakeup scheduler on a contended workload
    (with an equivalence check on the reports), logging-engine restart
    recovery wall time at two log lengths (linearity check), restart
    recovery wall against worker-domain count and against fuzzy
    checkpoint age (each point fingerprint-checked against the serial
    reference replay), a log-format head-to-head (physical full-image
    vs delta vs operation logging: log bytes per committed transaction,
    append cost, replay wall, cross-format fingerprint equivalence),
    and buffer-pool / journal microbenchmarks.

    The caller supplies the wall clock so this library stays free of a
    unix dependency; pass [Unix.gettimeofday]. *)

type engine_tps = {
  engine : string;
  low_tps : float;  (** committed txns/sec, disjoint key blocks *)
  low_restarts : int;
  high_tps : float;  (** committed txns/sec, hot key set *)
  high_restarts : int;
}

type recovery_jobs_point = {
  rj_jobs : int;  (** worker domains used for restart recovery *)
  rj_oversubscribed : bool;  (** pool larger than the host's cores *)
  rj_wall_ms : float;  (** best-of-five crash-and-recover wall *)
  rj_equivalent : bool;
      (** restart state fingerprint equals the serial reference replay *)
}

type recovery_ckpt_point = {
  ck_fraction : float;
      (** fraction of commits preceding the fuzzy checkpoint; [0.] = no
          checkpoint, full-log replay *)
  ck_records : int;  (** durable log records at crash *)
  ck_wall_ms : float;
  ck_equivalent : bool;
}

type log_format_point = {
  lf_format : string;  (** ["physical"], ["delta"] or ["oplog"] *)
  lf_committed_txns : int;
  lf_records : int;  (** durable log records after the load *)
  lf_log_bytes : int;  (** durable log volume in bytes *)
  lf_bytes_per_txn : float;
  lf_append_ns_per_record : float;
      (** load wall over records logged — the whole append path (page
          update, diff/encode, journal append, commit force), not the
          codec alone *)
  lf_replay_wall_ms : float;  (** best-of-five serial crash-and-recover *)
  lf_replay_parallel_ms : float;
      (** best wall across the parallel job counts (the same list as
          the recovery-vs-cores curve); [infinity] when none ran *)
  lf_equivalent : bool;
      (** recovered fingerprint equals the physical engine's serial
          reference replay — serially and at every job count *)
}

type server_point = {
  sv_offered_tps : float;  (** open-loop Poisson arrival rate *)
  sv_sustained_tps : float;  (** completed / makespan, simulated time *)
  sv_completed : int;
  sv_p50_us : float;  (** arrival-to-durable-ack latency percentiles *)
  sv_p99_us : float;
  sv_p999_us : float;
  sv_mean_us : float;
  sv_max_us : float;
  sv_restarts : int;
  sv_forces : int;
  sv_max_queued : int;  (** peak admission-queue depth *)
}

type server_engine = {
  sv_engine : string;
  sv_sweep : server_point list;  (** group-commit pipeline, rising load *)
  sv_eager_tps : float;  (** per-txn-sync sustained tps at the top load *)
  sv_grouped_tps : float;  (** group-commit sustained tps at the top load *)
  sv_speedup : float;  (** grouped / eager *)
  sv_eager_p99_us : float;
  sv_grouped_p99_us : float;
  sv_equivalent : bool;
      (** recovered fingerprint of a grouped commit sequence (with a
          crash between append and force) equals the eager reference *)
}

type read_mode_point = {
  rm_mode : string;
      (** ["xlock"] — every Get takes an exclusive page lock (the
          reads-block-reads baseline); ["slock"] — S/X locking, reads
          share; ["snapshot"] — S/X plus the lock-free read-only class
          over pinned MVCC views *)
  rm_sustained_tps : float;
  rm_restarts : int;  (** deadlock-victim restarts, all classes *)
  rm_ro_restarts : int;  (** restarts of read-only transactions *)
  rm_lock_acquires : int;
  rm_ro_p50_us : float;  (** read-only class latency percentiles *)
  rm_ro_p99_us : float;
  rm_rw_p50_us : float;  (** read-write class latency percentiles *)
  rm_rw_p99_us : float;
}

type read_frac_point = {
  rf_read_frac : float;  (** fraction of transactions made read-only *)
  rf_heavy_tail : bool;
      (** Pareto transaction sizes at this point (the heavy-tailed
          generator), uniform sizes otherwise *)
  rf_modes : read_mode_point list;  (** xlock, slock, snapshot *)
  rf_snapshot_speedup : float;  (** snapshot tps over xlock tps *)
  rf_equivalent : bool;
      (** all three modes crash-recover to the same full-scan data
          digest, and no mode leaked an open snapshot *)
}

type read_engine = { re_engine : string; re_points : read_frac_point list }

type shard_point = {
  sh_shards : int;
  sh_oversubscribed : bool;
      (** more shard domains than host cores (wall time suffered;
          simulated results did not) *)
  sh_sustained_tps : float;  (** simulated time; machine-independent *)
  sh_makespan_us : float;
  sh_p99_us : float;
  sh_restarts : int;
  sh_serial_identical : bool;
      (** shards = 1 only: the {!Shard} layer's result was
          field-for-field the plain {!Server.Make.run} result,
          histograms included (vacuously true at other counts) *)
  sh_scan_equal : bool;
      (** crash-recovered full-scan digest equals the serial server's *)
  sh_in_doubt : int;
      (** prepared-but-unresolved transactions left after
          coordinator-resolved restart recovery; must be 0 *)
}

type cross_point = {
  cf_cross_frac : float;  (** requested cross-shard transaction fraction *)
  cf_cross_txns : int;  (** transactions actually spanning >= 2 shards *)
  cf_sustained_tps : float;
  cf_p99_cross_us : float;
      (** cross-shard class arrival-to-decision tail (0 when none ran) *)
  cf_scan_equal : bool;  (** against this fraction's own serial reference *)
  cf_in_doubt : int;
}

type shard_bench = {
  sb_points : shard_point list;
      (** zero-cross workload at each swept shard count (always
          includes the shards = 1 serial baseline) *)
  sb_scaling : float;  (** top-shard-count tps over 1-shard tps *)
  sb_cross : cross_point list;
      (** top shard count at each swept cross-shard fraction, every
          transaction committed via two-phase commit when it spans
          shards *)
  sb_equivalent : bool;
      (** every scan matched its serial reference, shards = 1 was
          bit-identical to {!Server.Make.run}, and no transaction
          stayed in doubt after resolved recovery *)
}

type t = {
  scale : int;
  sched_txns : int;  (** scripts in the contended comparison *)
  sched_naive_ms : float;
  sched_opt_ms : float;
  sched_speedup : float;
  sched_equivalent : bool;
      (** the two schedulers agreed on commit order, restarts and steps *)
  engines : engine_tps list;
  recovery_txns_l : int;
  recovery_records_l : int;
  recovery_wall_l_ms : float;
  recovery_records_2l : int;
  recovery_wall_2l_ms : float;
  recovery_wall_ratio : float;  (** wall(2L) / wall(L); ~2 when linear *)
  recovery_jobs : recovery_jobs_point list;
      (** one fixed uncheckpointed log replayed at each domain count;
          always includes the jobs = 1 serial baseline *)
  recovery_parallel_speedup : float;
      (** serial wall / best parallel wall (infinite on hosts where no
          parallel point ran, which cannot happen: a 1-core host gets an
          oversubscribed 2-domain point instead) *)
  recovery_ckpt : recovery_ckpt_point list;
      (** same committed work per point, serial replay; the saving at
          [ck_fraction > 0] is the log prefix recovery never decodes *)
  recovery_ckpt_speedup : float;
      (** full-replay wall / wall with the newest checkpoint *)
  recovery_equivalent : bool;
      (** every recovery point fingerprint-matched the serial reference *)
  log_formats : log_format_point list;
      (** the same committed workload through the three logging
          granularities — full page images ({!Engine_log} physical),
          changed-byte-range deltas ({!Engine_log} delta) and operation
          logging ({!Engine_oplog}) — metering durable log volume,
          append cost and replay wall; all three recover to the
          physical engine's reference fingerprint *)
  log_delta_reduction : float;
      (** physical log bytes per committed txn over delta's *)
  log_oplog_reduction : float;  (** same, over the operation log's *)
  log_format_equivalent : bool;  (** every format point passed *)
  server : server_engine list;
      (** open-loop transaction server ({!Server}) on the logging
          engine (physical and delta log formats) and the differential
          engine: a Poisson offered-load sweep through the group-commit
          pipeline, plus an eager-vs-grouped head-to-head at the top
          load.  Entirely simulated time — deterministic and
          machine-independent. *)
  server_speedup : float;  (** worst grouped/eager ratio across engines *)
  server_equivalent : bool;  (** every engine's equivalence check passed *)
  read_heavy : read_engine list;
      (** MVCC snapshot reads: a read-heavy open-loop sweep over
          Zipfian pages for every snapshot-capable engine
          ({!Engine_diff}, {!Engine_versel}, {!Engine_oplog}).  At each
          read fraction the same workload runs under three read-lock
          regimes — exclusive-lock reads, S/X shared reads, and the
          snapshot read-only class — plus one heavy-tailed
          (Pareto-size) point at read fraction 0.9.  Simulated time:
          deterministic and machine-independent. *)
  read_speedup : float;
      (** worst snapshot-over-xlock throughput ratio across engines at
          the uniform-size point nearest read fraction 0.9 (a CI gate
          holds this at >= 2) *)
  read_ro_restarts : int;
      (** snapshot-mode read-only restarts summed over every point —
          the lock-free path makes this identically 0 (CI gate) *)
  read_equivalent : bool;  (** every point's cross-mode scan check *)
  shard : shard_bench;
      (** sharded multicore execution ({!Shard} on {!Engine_log}): a
          tps-vs-shard-count sweep on a fully partitionable (zero
          cross-shard) workload, plus a cross-shard-fraction sweep at
          the top shard count through the two-phase commit path.  All
          simulated time; every point gated on crash-recovered scan
          equality with the serial server. *)
  pool_hit_ns : float;
  pool_miss_ns : float;
  journal_append_per_sec : float;
  journal_append_sync_per_sec : float;  (** with a sync every 64 appends *)
}

val default_read_fracs : float list
(** [[0.5; 0.9; 0.99]] — the read fractions the snapshot sweep visits
    by default. *)

val default_shard_counts : int list
(** [[1; 2; 4]] — the shard counts the sharded sweep visits by
    default.  Counts should divide the largest one: the router's class
    at the top count then refines its class at every other, so the
    zero-cross workload stays single-shard at every point. *)

val default_cross_fracs : float list
(** [[0.; 0.05; 0.2]] — the cross-shard fractions swept at the top
    shard count. *)

val run :
  ?scale:int ->
  ?jobs:int list ->
  ?allow_oversubscribe:bool ->
  ?log_formats:string list ->
  ?read_fracs:float list ->
  ?shard_counts:int list ->
  ?cross_fracs:float list ->
  now:(unit -> float) ->
  unit ->
  t
(** Run every section.  [scale] multiplies workload sizes (default 1,
    used by CI smoke runs).  [jobs] (default [[1; 2; 4]]) lists the
    domain counts for the recovery-vs-cores curve; counts beyond the
    host's cores are skipped unless [allow_oversubscribe] (default
    false), and a jobs = 1 point is always included.  On a 1-core host
    an oversubscribed 2-domain point stands in so the curve never comes
    back empty.  [log_formats] (default all of ["physical"], ["delta"],
    ["oplog"]) restricts the log-format head-to-head; the physical
    baseline is always measured (it is the reference the others are
    fingerprint-checked against), and an excluded format reports an
    [infinity] reduction.  [read_fracs] (default {!default_read_fracs})
    lists the read fractions of the snapshot sweep; a Pareto-size
    heavy-tail point at read fraction 0.9 is always appended.
    [shard_counts] (default {!default_shard_counts}) lists the shard
    counts of the sharded sweep (a shards = 1 baseline is always
    included); [cross_fracs] (default {!default_cross_fracs}) the
    cross-shard fractions swept at the largest count.
    @raise Invalid_argument if [scale <= 0], any job count is [< 1], a
    log format name is unknown, a read or cross fraction is outside
    [0,1], or a shard count is [< 1]. *)
