(** Storage-half throughput benchmark.

    Measures the recovery engines and their substrate the same way the
    simulation half is measured by bench/main: per-engine committed
    transactions per second under the 2PL scheduler at low and high
    contention, a head-to-head of the pre-overhaul polling scheduler
    ({!Naive}) against the wakeup scheduler on a contended workload
    (with an equivalence check on the reports), logging-engine restart
    recovery wall time at two log lengths (linearity check), and
    buffer-pool / journal microbenchmarks.

    The caller supplies the wall clock so this library stays free of a
    unix dependency; pass [Unix.gettimeofday]. *)

type engine_tps = {
  engine : string;
  low_tps : float;  (** committed txns/sec, disjoint key blocks *)
  low_restarts : int;
  high_tps : float;  (** committed txns/sec, hot key set *)
  high_restarts : int;
}

type t = {
  scale : int;
  sched_txns : int;  (** scripts in the contended comparison *)
  sched_naive_ms : float;
  sched_opt_ms : float;
  sched_speedup : float;
  sched_equivalent : bool;
      (** the two schedulers agreed on commit order, restarts and steps *)
  engines : engine_tps list;
  recovery_txns_l : int;
  recovery_records_l : int;
  recovery_wall_l_ms : float;
  recovery_records_2l : int;
  recovery_wall_2l_ms : float;
  recovery_wall_ratio : float;  (** wall(2L) / wall(L); ~2 when linear *)
  pool_hit_ns : float;
  pool_miss_ns : float;
  journal_append_per_sec : float;
  journal_append_sync_per_sec : float;  (** with a sync every 64 appends *)
}

val run : ?scale:int -> now:(unit -> float) -> unit -> t
(** Run every section.  [scale] multiplies workload sizes (default 1,
    used by CI smoke runs).  @raise Invalid_argument if [scale <= 0]. *)
