(** Append-only journal of binary records with crash semantics.

    The stable-storage analogue of a sequential log file: {!append}
    buffers a record, {!sync} makes every buffered record durable, and
    {!crash} discards the tail that was never synced.  Records are
    length-prefixed and checksummed, so a record that was only half
    "on disk" at a crash is detected and the scan stops there — exactly
    how a real log tail is handled.

    The logging engine's log disks, the overwriting engines' intention
    lists, and the version-selection commit list are all journals. *)

type t

val create : unit -> t

val append : t -> string -> int
(** Buffer a record; returns its sequence number within this journal
    (0-based, counting every record ever appended). *)

val sync : t -> unit

val crash : t -> unit
(** Drop the unsynced tail.  A record is durable as a unit or not at
    all: the length-prefix-and-checksum framing a real log uses to
    detect a torn tail is what makes that abstraction sound. *)

val read_all : t -> string list
(** The durable records, in append order.  Valid after a crash. *)

val read_live : t -> string list
(** Durable records followed by the still-buffered tail: the view an
    up-and-running reader has (a crash loses the tail). *)

val length : t -> int
(** Number of durable records currently retained (what
    [List.length (read_all t)] would count) without materializing them. *)

val iter_all : (string -> unit) -> t -> unit
(** Iterate the retained durable records in append order, no list. *)

val iter_live : (string -> unit) -> t -> unit
(** Iterate durable records then the buffered tail, no list. *)

val to_array : t -> string array
(** The retained durable records in append order, as a fresh array —
    the random-access view chunked (parallel) recovery scans need.
    Element [i] has sequence number [synced t - length t + i]. *)

val appended : t -> int
(** Records appended so far (including unsynced ones). *)

val synced : t -> int
(** Records currently durable. *)

val sync_count : t -> int
(** Number of {!sync} calls over the journal's lifetime — the "disk
    forces" a commit protocol pays (what group commit amortizes). *)

val truncate : t -> keep_from:int -> unit
(** Discard durable records with sequence number < [keep_from]
    (checkpointing).  Sequence numbers of the remaining records are
    unchanged.  @raise Invalid_argument if [keep_from] exceeds the
    synced count. *)
