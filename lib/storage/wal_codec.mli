(** Shared zero-copy log-record framing.

    The framing layer under {!Wal} (and the differential engine's
    private record formats): a record is

    {v tag:1 | fixed fields | varint-framed payload | checksum:8 v}

    - the {b tag byte} and any 8-byte fixed fields come first, at fixed
      offsets, so O(1) unchecked peeks ({!Wal.peek_lsn} and friends)
      keep working on the new encodings;
    - variable payload uses {b LEB128 varints} for lengths, counts and
      small integers, so a delta record's framing costs bytes
      proportional to what it carries, not 8 per field;
    - the trailing {b checksum} is {!Dbm_util.Digest.fnv64_words} over
      everything before it — word-at-a-time, ~8x cheaper than the old
      byte-loop on page-image payloads.

    Encoding goes through a reusable growable scratch buffer
    ({!Enc.t}), one per engine: fields are blitted straight into it and
    {!Enc.finish} hands back the single final string the journal
    stores — no [Buffer], no per-integer 8-byte boxes, no
    body-then-checksum concat.  Decoding runs a cursor over the
    original string ({!Dec}): one checksum pass, then each payload is
    extracted with exactly one copy. *)

exception Corrupt of string

val checksum : string -> pos:int -> len:int -> int64
(** The framing checksum over a range: {!Dbm_util.Digest.fnv64_words}. *)

val varint_size : int -> int
(** Encoded size in bytes of a varint ([v >= 0]), 1..10. *)

(** Scratch-buffer encoder.  One instance per engine (single-domain
    use); the buffer is reused across records and only grows. *)
module Enc : sig
  type t

  val create : ?size:int -> unit -> t
  (** [size] is the initial scratch capacity (default 256). *)

  val reset : t -> tag:char -> unit
  (** Start a fresh record: rewind the scratch and write the tag byte. *)

  val int64 : t -> int -> unit
  (** Fixed 8-byte little-endian field (LSN / txn slots the peeks
      load). *)

  val varint : t -> int -> unit
  (** LEB128.  @raise Invalid_argument on a negative value. *)

  val bytes : t -> Bytes.t -> unit
  (** Varint length prefix, then the payload. *)

  val string : t -> string -> unit
  (** Varint length prefix, then the payload. *)

  val substring : t -> string -> pos:int -> len:int -> unit
  (** Varint length prefix, then [len] bytes of [s] from [pos]. *)

  val subbytes : t -> Bytes.t -> pos:int -> len:int -> unit
  (** Varint length prefix, then [len] bytes of [b] from [pos]. *)

  val byte : t -> int -> unit
  (** One raw byte (a flag). *)

  val size : t -> int
  (** Bytes written since {!reset} (excluding the checksum). *)

  val finish : t -> string
  (** Checksum the scratch contents, append the 8-byte trailer and
      return the framed record — the one string allocation of the whole
      encode. *)
end

(** Checked single-copy decoder: a cursor over the original encoded
    string.  {!start} pays the one checksum pass; every accessor then
    reads in place, and payload extraction copies exactly once. *)
module Dec : sig
  type t

  val tag : string -> char
  (** The record's tag byte.  @raise Corrupt on an empty string. *)

  val start : string -> t
  (** Verify the trailing checksum and position the cursor just past
      the tag byte.  @raise Corrupt on a short or damaged encoding. *)

  val int64 : t -> int
  val varint : t -> int

  val bytes : t -> Bytes.t
  (** Varint-framed payload as fresh bytes — a single copy out of the
      encoded string (the old path copied twice). *)

  val string : t -> string
  (** Varint-framed payload as a fresh string, single copy. *)

  val byte : t -> int

  val finished : t -> bool
  (** Has the cursor consumed the whole body?  Decoders use it to
      reject trailing garbage. *)
end
