(* The 2PC coordinator's decision log.  See coordinator_log.mli. *)

type t = {
  j : Journal.t;
  (* gid -> decision, rebuilt from the durable journal on crash. *)
  table : (int, bool) Hashtbl.t;
  mutable decisions : int;
}

(* One record per decision: tag byte ('C' commit / 'A' abort), 8-byte
   little-endian gid.  The journal's own length-prefix-and-checksum
   framing handles torn-tail detection, so no further checksum here. *)
let encode ~gid ~commit =
  let b = Bytes.create 9 in
  Bytes.set b 0 (if commit then 'C' else 'A');
  Bytes.set_int64_le b 1 (Int64.of_int gid);
  Bytes.unsafe_to_string b

let decode s =
  if String.length s <> 9 then invalid_arg "Coordinator_log: bad record";
  let commit =
    match s.[0] with
    | 'C' -> true
    | 'A' -> false
    | _ -> invalid_arg "Coordinator_log: bad tag"
  in
  (Int64.to_int (String.get_int64_le s 1), commit)

let create () = { j = Journal.create (); table = Hashtbl.create 16; decisions = 0 }

let decide t ~gid ~commit =
  if Hashtbl.mem t.table gid then invalid_arg "Coordinator_log.decide: duplicate gid";
  ignore (Journal.append t.j (encode ~gid ~commit));
  (* The decision record IS the commit point of a cross-shard
     transaction: it is forced before any participant learns the
     outcome. *)
  Journal.sync t.j;
  Hashtbl.replace t.table gid commit;
  t.decisions <- t.decisions + 1

let decision t ~gid = Hashtbl.find_opt t.table gid

let resolve t ~gid = match decision t ~gid with Some d -> d | None -> false

let decisions t = t.decisions

let log_syncs t = Journal.sync_count t.j

let crash_and_recover t =
  Journal.crash t.j;
  Hashtbl.reset t.table;
  t.decisions <- 0;
  Journal.iter_all
    (fun s ->
      let gid, commit = decode s in
      Hashtbl.replace t.table gid commit;
      t.decisions <- t.decisions + 1)
    t.j
