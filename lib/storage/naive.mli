(** Pre-overhaul storage algorithms, preserved as a reference.

    {!Locks} is the lock manager as it was before per-transaction page
    sets (every release and waits-for query folds the whole table);
    {!Sched} is the scheduler before wakeup-driven parking (every
    blocked script re-runs its lock acquisition each turn).  They exist
    so the benchmark can measure the overhaul's speedup head-to-head in
    one process, and so the property tests can check that the optimized
    versions make identical decisions.  Not used on any production
    path. *)

module Locks : sig
  type t

  val create : unit -> t

  val acquire : t -> txn:int -> page:int -> mode:Lock_mgr.mode -> Lock_mgr.outcome

  val withdraw : t -> txn:int -> page:int -> unit

  val release_all : t -> txn:int -> unit

  val holds : t -> txn:int -> page:int -> Lock_mgr.mode option

  val locked_pages : t -> int

  val waiting : t -> txn:int -> bool
end

module Sched (E : Kv.S) : sig
  val run : ?max_steps:int -> E.t -> scripts:(int * Scheduler.script) list -> Scheduler.report
end

(** The logging engine's restart recovery as it was before the
    page-partitioned parallel {!Replay} module: a single-threaded
    full-log sorted replay (gather, group per page, fold in LSN order).
    It ignores fuzzy-checkpoint records entirely — replay always starts
    at record 0 — which is exactly what makes it the reference: the
    partitioned, checkpoint-seeking path must reach the same state. *)
module Log_replay : sig
  val committed : Wal.record list -> (int, unit) Hashtbl.t
  (** Transactions with a durable commit record anywhere in the log. *)

  val recover_sorted : records:Wal.record list -> write:(page:int -> bytes -> unit) -> unit
  (** Calls [write] once per touched page with its final image, in the
      reference's (hash-table) iteration order. *)

  val recover_sorted_delta :
    records:Wal.record list ->
    read:(page:int -> bytes) ->
    write:(page:int -> bytes -> unit) ->
    unit
  (** [recover_sorted] for logs holding {!Wal.Delta} records: each
      page's Update/Delta chain is expanded to full images against the
      durable base image [read] supplies (an implementation independent
      of {!Replay.expand_page}, which the property tests compare it
      to), then folded exactly as [recover_sorted]. *)

  val recover_logical :
    records:Wal.record list ->
    page_of:(int -> int) ->
    read:(page:int -> bytes) ->
    write:(page:int -> bytes -> unit) ->
    unit
  (** Serial reference for operation logs: committed {!Wal.Op} records
      in one global LSN-sorted pass, re-executed onto the durable
      images behind the page-header LSN guard.  Pages whose image was
      already current are not written. *)
end
