(* Operation-logging (logical) recovery engine.  See engine_oplog.mli. *)

(* Volatile per-transaction state.  [firsts] maps each touched page to
   its pre-transaction image: the undo information an abort needs.
   Never logged — no-steal means an uncommitted change can never reach
   the durable image, so restart recovery has nothing to undo.  [wset]
   is the last value written per key, consumed at commit to extend the
   snapshot version chains. *)
type live_txn = {
  firsts : (int, bytes) Hashtbl.t;
  wset : (int, string option) Hashtbl.t;
}

type store = {
  n_keys : int;
  keys_per_page : int;
  data : Vdisk.t;
  log : Journal.t;
  enc : Wal_codec.Enc.t;
  mutable next_lsn : int;
  mutable next_txn : int;
  mutable epoch : int;
  active : (int, live_txn) Hashtbl.t;
  (* commit sequence numbers, only consumed by snapshot visibility *)
  mutable next_seq : int;
  (* live snapshot id -> pinned horizon *)
  snaps : (int, int) Hashtbl.t;
  mutable next_snap : int;
  (* key -> newest-first [(commit seq, value)] version chain.  Pages are
     overwritten in place here, so old versions survive only in these
     bounded in-memory chains: a chain exists for a key only while
     snapshots are live and some commit has since written the key; it is
     trimmed past the snapshot watermark at every push and the whole
     table is dropped when the last snapshot releases (and on crash). *)
  chains : (int, (int * string option) list) Hashtbl.t;
  (* When set, commit sequence numbers are drawn from this shared
     source instead of [next_seq] — the Shard layer installs one
     process-global atomic counter across every shard's engine so
     snapshot horizons order commits consistently machine-wide. *)
  mutable seq_source : (unit -> int) option;
  mutable recovery_pool : Dbm_util.Pool.t option;
  mutable records_logged : int;
  mutable recoveries : int;
  mutable checkpoints : int;
}

type t = store

type txn = { st : store; id : int; born : int; mutable finished : bool }

let engine_name = "oplog"

let default_keys = 256

let create_with ?(n_keys = default_keys) ?(keys_per_page = 4) () =
  if n_keys <= 0 then invalid_arg "Engine_oplog.create: need at least one key";
  if keys_per_page <= 0 then invalid_arg "Engine_oplog.create: bad keys_per_page";
  let n_pages = (n_keys + keys_per_page - 1) / keys_per_page in
  let page_size = 1024 in
  {
    n_keys;
    keys_per_page;
    data = Vdisk.create ~pages:n_pages ~page_size ();
    log = Journal.create ();
    enc = Wal_codec.Enc.create ~size:128 ();
    next_lsn = 1;
    next_txn = 1;
    epoch = 0;
    active = Hashtbl.create 8;
    next_seq = 1;
    snaps = Hashtbl.create 8;
    next_snap = 0;
    chains = Hashtbl.create 16;
    seq_source = None;
    recovery_pool = None;
    records_logged = 0;
    recoveries = 0;
    checkpoints = 0;
  }

let create ?n_keys () = create_with ?n_keys ()

let max_keys t = t.n_keys

let keys_per_page t = t.keys_per_page

let records_logged t = t.records_logged

let log_bytes t =
  let total = ref 0 in
  Journal.iter_all (fun s -> total := !total + String.length s) t.log;
  !total

let page_of t key = key / t.keys_per_page

let check_key t k =
  if k < 0 || k >= t.n_keys then invalid_arg (Printf.sprintf "key %d out of range" k)

let fresh_lsn t =
  let l = t.next_lsn in
  t.next_lsn <- l + 1;
  l

let append_log t record =
  ignore (Journal.append t.log (Wal.encode_with t.enc record));
  t.records_logged <- t.records_logged + 1

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.active id { firsts = Hashtbl.create 4; wset = Hashtbl.create 4 };
  { st = t; id; born = t.epoch; finished = false }

let check txn = if txn.finished || txn.born <> txn.st.epoch then raise Kv.Txn_finished

let get txn k =
  check txn;
  check_key txn.st k;
  Page.lookup (Vdisk.read_ro txn.st.data (page_of txn.st k)) ~key:k

let update_key txn k value =
  check txn;
  check_key txn.st k;
  let t = txn.st in
  let p = page_of t k in
  (* First touch of this page by this transaction: save its image for
     the volatile undo an abort performs. *)
  (match Hashtbl.find_opt t.active txn.id with
  | Some lt ->
    if not (Hashtbl.mem lt.firsts p) then Hashtbl.replace lt.firsts p (Vdisk.read t.data p);
    Hashtbl.replace lt.wset k value
  | None -> assert false);
  let img = Vdisk.read t.data p in
  Page.update img ~key:k ~value;
  let lsn = fresh_lsn t in
  Page.set_lsn img lsn;
  (* The whole log record: which operation ran, under which LSN.  No
     images — replay re-executes. *)
  append_log t (Wal.Op { lsn; txn = txn.id; key = k; value });
  Vdisk.write t.data p img

let put txn k v = update_key txn k (Some v)

let delete txn k = update_key txn k None

let finish txn =
  txn.finished <- true;
  Hashtbl.remove txn.st.active txn.id

(* Oldest horizon any live snapshot is pinned to. *)
let watermark t = Hashtbl.fold (fun _ h acc -> min h acc) t.snaps max_int

let commit_seq t =
  match t.seq_source with
  | None ->
    let s = t.next_seq in
    t.next_seq <- s + 1;
    s
  | Some src ->
    let s = src () in
    (* Keep the local counter ahead of every sequence this shard has
       seen, so snapshot horizons ([next_seq - 1]) still bound all
       locally visible commits. *)
    if s + 1 > t.next_seq then t.next_seq <- s + 1;
    s

let set_seq_source t src = t.seq_source <- src

(* Drop the chain suffix no live snapshot can reach: everything
   strictly older than the newest entry at or below the watermark. *)
let trim_chain wm chain =
  let rec cut = function
    | ((seq, _) as keep) :: rest -> keep :: (if seq <= wm then [] else cut rest)
    | [] -> []
  in
  cut chain

(* Commit-time snapshot bookkeeping: push (seq, value) for every key
   the transaction wrote.  A key's chain is seeded on its first
   committed write while snapshots are live, with the pre-transaction
   committed value read from the undo image — tagged seq 0, correct
   because that value was necessarily committed at or before every
   horizon still live (any later commit to the key would itself have
   seeded or extended the chain).  No snapshots live = no work. *)
let extend_chains t txn seq =
  if Hashtbl.length t.snaps > 0 then
    match Hashtbl.find_opt t.active txn.id with
    | None -> ()
    | Some lt ->
      let wm = watermark t in
      Hashtbl.iter
        (fun k value ->
          let chain =
            match Hashtbl.find_opt t.chains k with
            | Some c -> c
            | None ->
              let p = k / t.keys_per_page in
              let pre =
                match Hashtbl.find_opt lt.firsts p with
                | Some img -> Page.lookup img ~key:k
                | None -> None
              in
              [ (0, pre) ]
          in
          Hashtbl.replace t.chains k (trim_chain wm ((seq, value) :: chain)))
        lt.wset

let commit txn =
  check txn;
  let t = txn.st in
  append_log t (Wal.Commit { lsn = fresh_lsn t; txn = txn.id });
  (* One journal holds every record of the transaction, so a single
     force is the whole WAL protocol. *)
  Journal.sync t.log;
  extend_chains t txn (commit_seq t);
  finish txn

let commit_group txn =
  check txn;
  let t = txn.st in
  append_log t (Wal.Commit { lsn = fresh_lsn t; txn = txn.id });
  extend_chains t txn (commit_seq t);
  finish txn

let force_commits t = Journal.sync t.log

(* Two-phase commit, participant side: the durable vote.  One journal
   holds every record of the transaction, so one force after the
   Prepare record makes both the effects and the vote durable.  The
   transaction stays active (undo images and the write set survive)
   until the coordinator's decision: [commit_group] or [abort]. *)
let prepare txn ~gid =
  check txn;
  let t = txn.st in
  append_log t (Wal.Prepare { lsn = fresh_lsn t; txn = txn.id; gid });
  Journal.sync t.log

let in_doubt t = Replay.in_doubt [| Journal.to_array t.log |]

let abort txn =
  check txn;
  let t = txn.st in
  (* Volatile undo from the saved pre-transaction images; the fresh LSN
     per restored page mirrors the physical engine's restore, keeping
     the two engines' LSN streams aligned. *)
  (match Hashtbl.find_opt t.active txn.id with
  | Some lt ->
    Hashtbl.iter
      (fun p image ->
        let lsn = fresh_lsn t in
        let restored = Bytes.copy image in
        Page.set_lsn restored lsn;
        Vdisk.write t.data p restored)
      lt.firsts
  | None -> ());
  append_log t (Wal.Abort { lsn = fresh_lsn t; txn = txn.id });
  finish txn

(* No-steal gate: the data disk may only be forced when no live
   transaction has uncommitted page writes — otherwise a dirty
   uncommitted image would become durable with no undo record anywhere
   to peel it back off. *)
let can_sync_data t =
  Hashtbl.fold (fun _ lt acc -> acc && Hashtbl.length lt.firsts = 0) t.active true

let flush t =
  Journal.sync t.log;
  if can_sync_data t then Vdisk.sync t.data

let checkpoint t =
  Journal.sync t.log;
  let quiescent = can_sync_data t in
  if quiescent then Vdisk.sync t.data;
  let active = Hashtbl.fold (fun id _ acc -> id :: acc) t.active [] in
  append_log t (Wal.Checkpoint { lsn = fresh_lsn t; active });
  Journal.sync t.log;
  (* When the no-steal gate let the data force run, every retained
     operation is reflected in the durable image: drop the prefix (the
     checkpoint record survives to re-seed the LSN counter).  This is
     what bounds the operation log — and it mirrors the physical
     engine's sharp-checkpoint truncation, keeping the two engines'
     post-crash counter re-seeds (and so their fingerprints) aligned. *)
  if quiescent then Journal.truncate t.log ~keep_from:(Journal.synced t.log - 1);
  t.checkpoints <- t.checkpoints + 1

(* --- restart recovery ---------------------------------------------- *)

let finish_recovery t meta =
  Vdisk.sync t.data;
  let max_lsn = ref 0 and max_txn = ref 0 in
  Array.iter (Array.iter (fun l -> if l > !max_lsn then max_lsn := l)) meta.Replay.lsns;
  Array.iter (Array.iter (fun x -> if x > !max_txn then max_txn := x)) meta.Replay.txns;
  t.next_lsn <- !max_lsn + 1;
  t.next_txn <- !max_txn + 1;
  Hashtbl.reset t.active;
  t.recoveries <- t.recoveries + 1

let recover_with ~resolve t =
  let pool = t.recovery_pool in
  let raws = [| Journal.to_array t.log |] in
  let meta = Replay.scan raws in
  let doubt = Replay.in_doubt raws in
  let decide ~gid = match resolve with Some f -> f ~gid | None -> false in
  let also_committed =
    List.filter_map (fun (txn, gid) -> if decide ~gid then Some txn else None) doubt
  in
  let records = Replay.decode_from ?pool raws ~lo:[| 0 |] in
  Replay.recover_logical ?pool ~also_committed ~records ~start_lsn:0
    ~page_of:(fun k -> k / t.keys_per_page)
    ~read:(fun ~page -> Vdisk.read t.data page)
    ~write:(fun ~page image -> Vdisk.write t.data page image)
    ();
  finish_recovery t meta;
  (* Resolution records: the next restart needs no coordinator. *)
  if doubt <> [] then begin
    List.iter
      (fun (txn, gid) ->
        let lsn = fresh_lsn t in
        append_log t (if decide ~gid then Wal.Commit { lsn; txn } else Wal.Abort { lsn; txn }))
      doubt;
    Journal.sync t.log
  end

let recover t = recover_with ~resolve:None t

let crash_and_recover t =
  Vdisk.crash t.data;
  Journal.crash t.log;
  Hashtbl.reset t.snaps;
  Hashtbl.reset t.chains;
  t.epoch <- t.epoch + 1;
  recover t

let crash_and_recover_resolved ~resolve t =
  Vdisk.crash t.data;
  Journal.crash t.log;
  Hashtbl.reset t.snaps;
  Hashtbl.reset t.chains;
  t.epoch <- t.epoch + 1;
  recover_with ~resolve:(Some resolve) t

let crash_and_recover_reference t =
  Vdisk.crash t.data;
  Journal.crash t.log;
  Hashtbl.reset t.snaps;
  Hashtbl.reset t.chains;
  t.epoch <- t.epoch + 1;
  let records = List.map Wal.decode (Journal.read_all t.log) in
  Naive.Log_replay.recover_logical ~records
    ~page_of:(fun k -> k / t.keys_per_page)
    ~read:(fun ~page -> Vdisk.read t.data page)
    ~write:(fun ~page image -> Vdisk.write t.data page image);
  finish_recovery t (Replay.scan [| Journal.to_array t.log |])

let set_recovery_pool t pool = t.recovery_pool <- pool

let recovery_pool t = t.recovery_pool

let state_fingerprint t =
  let d = Dbm_util.Digest.create () in
  for p = 0 to Vdisk.pages t.data - 1 do
    Dbm_util.Digest.string d (Bytes.to_string (Vdisk.read_ro t.data p))
  done;
  Dbm_util.Digest.int d t.next_lsn;
  Dbm_util.Digest.int d t.next_txn;
  Dbm_util.Digest.hex d

let dump_log t = List.map Wal.decode (Journal.read_all t.log)

(* --- MVCC snapshots ------------------------------------------------- *)

type snapshot = {
  s_st : store;
  s_id : int;
  s_horizon : int;
  s_born : int;
  mutable s_released : bool;
}

let snapshot t =
  let id = t.next_snap in
  t.next_snap <- id + 1;
  let horizon = t.next_seq - 1 in
  Hashtbl.replace t.snaps id horizon;
  { s_st = t; s_id = id; s_horizon = horizon; s_born = t.epoch; s_released = false }

let snapshot_release s =
  if not s.s_released then begin
    s.s_released <- true;
    if s.s_born = s.s_st.epoch then begin
      let t = s.s_st in
      Hashtbl.remove t.snaps s.s_id;
      if Hashtbl.length t.snaps = 0 then Hashtbl.reset t.chains
      else begin
        (* Re-trim every chain against the advanced watermark. *)
        let wm = watermark t in
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.chains [] in
        List.iter
          (fun k ->
            match Hashtbl.find_opt t.chains k with
            | Some chain -> Hashtbl.replace t.chains k (trim_chain wm chain)
            | None -> ())
          keys
      end
    end
  end

let live_snapshots t = Hashtbl.length t.snaps

(* The committed image of a page: pages are overwritten in place, so if
   a live transaction has dirtied the page its pre-transaction undo
   image is the committed copy (page access is serialized by the
   caller, so at most one live writer holds it). *)
let committed_page_image t p =
  let dirty = ref None in
  Hashtbl.iter
    (fun _ lt -> match Hashtbl.find_opt lt.firsts p with Some img -> dirty := Some img | None -> ())
    t.active;
  match !dirty with Some img -> img | None -> Vdisk.read_ro t.data p

(* A key with no chain has not been committed-to since the snapshot was
   pinned (chains exist exactly for keys written under live snapshots),
   so its current committed value is the pinned value; otherwise the
   newest chain entry at or below the horizon is. *)
let snapshot_get s k =
  if s.s_released || s.s_born <> s.s_st.epoch then raise Kv.Txn_finished;
  let t = s.s_st in
  check_key t k;
  match Hashtbl.find_opt t.chains k with
  | None -> Page.lookup (committed_page_image t (page_of t k)) ~key:k
  | Some chain -> (
    match List.find_opt (fun (seq, _) -> seq <= s.s_horizon) chain with
    | Some (_, v) -> v
    | None ->
      (* Unreachable: trimming always keeps an entry at or below the
         watermark, and live horizons are at or above it. *)
      Page.lookup (committed_page_image t (page_of t k)) ~key:k)

let stats t =
  [
    ("disk_reads", Vdisk.reads t.data);
    ("disk_writes", Vdisk.writes t.data);
    ("records_logged", t.records_logged);
    ("live_txns", Hashtbl.length t.active);
    ("recoveries", t.recoveries);
    ("checkpoints", t.checkpoints);
    ("durable_records", Journal.length t.log);
    ("log_syncs", Journal.sync_count t.log);
  ]
