(** Bounded buffer pool over a virtual disk.

    The in-memory counterpart of the database machine's disk cache: a
    fixed number of frames holding copies of vdisk pages, with
    pin/unpin, dirty tracking, LRU replacement among unpinned frames,
    and a {e write-ahead gate}: a dirty frame may only be written back
    once [can_evict ~page ~lsn] agrees (the WAL rule — the caller
    supplies the check that the page's log records are durable, and is
    given the chance to force them).

    The steal/no-force engines can be composed over this pool; it is
    also exercised directly by the test suite as a substrate component. *)

type t

exception No_free_frame
(** All frames are pinned (the paper's "cache full of blocked pages"
    condition). *)

val create :
  Vdisk.t ->
  frames:int ->
  ?can_evict:(page:int -> lsn:int -> bool) ->
  ?before_evict:(page:int -> lsn:int -> unit) ->
  unit ->
  t
(** [can_evict] (default: always true) gates the write-back of a dirty
    frame; [before_evict] runs first and may force a log so the gate
    passes.  If the gate still refuses, eviction skips that frame and
    tries the next LRU candidate.
    @raise Invalid_argument if [frames <= 0]. *)

val frames : t -> int

val in_use : t -> int

val pinned : t -> int
(** Frames with at least one pin — a maintained counter, O(1). *)

val dirty_frames : t -> int
(** Resident frames whose contents differ from disk — maintained, O(1). *)

val get : t -> int -> bytes
(** [get t page] returns the frame's contents (fetching from disk on a
    miss, evicting if needed), {e pinning} the page.  Pins nest; every
    [get] needs a matching {!unpin}.  The returned buffer is the frame
    itself: mutating it and calling {!mark_dirty} updates the cached
    page.
    @raise No_free_frame when every frame is pinned or unevictable. *)

val unpin : t -> int -> unit
(** @raise Invalid_argument if the page is not pinned. *)

val mark_dirty : t -> int -> unit
(** Note that the frame's contents differ from the disk copy.
    @raise Invalid_argument if the page is not resident. *)

val is_dirty : t -> int -> bool

val resident : t -> int -> bool

val flush_page : t -> int -> unit
(** Write the frame back (volatile; call [Vdisk.sync] for durability)
    and mark it clean.  Subject to the [can_evict] gate.
    @raise Failure if the gate refuses. *)

val flush_all : t -> unit
(** Flush every dirty frame (gate applies to each) and sync the disk:
    the checkpoint write-back. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
