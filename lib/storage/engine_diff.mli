(** The differential-file recovery engine (Section 3.3, functional).

    The store is the view [(B u A) - D]: a read-only base [B] (pages on
    a virtual disk) plus append-only differential files — [A] for
    additions/updates and [D] for deletions.  A lookup consults the
    committed (or own) A and D records for the key, newest first, and
    falls back to the base: precisely the set-union/set-difference the
    paper charges the query processors for.

    Writes never touch the base, so the recovery data {e is} the data:
    commit forces the A and D files and appends a commit marker;
    records of uncommitted transactions are simply never selected, so
    crash recovery does no work.  {!checkpoint} runs the merge the
    paper mentions (folding committed A/D records into the base and
    truncating the differential files), which requires quiescence.

    MVCC snapshot reads ({!Kv.SNAPSHOT}): the differential files
    retain every committed version until a merge folds it away, so a
    snapshot is just a pinned commit point — a record is visible iff
    its writer's commit (ordered by the commit journal) is at or below
    the pin.  The merge respects the snapshot horizon: it folds and
    truncates only the stamp prefix every live snapshot can already
    see, so no read through a live snapshot ever changes.

    Satisfies {!Kv.SNAPSHOT}; extras below. *)

include Kv.SNAPSHOT

val create_with : ?n_keys:int -> ?keys_per_page:int -> ?auto_merge_records:int -> unit -> t
(** [auto_merge_records], when set, runs the merge automatically at the
    first quiescent transaction boundary once the differential files
    hold at least that many records — the periodic reorganization the
    paper says must bound their size (Section 4.3.3). *)

val commit_group : txn -> unit
(** Group commit: append the commit marker but force nothing.  The
    transaction is committed in memory (immediately visible to
    readers) and becomes durable at the next {!force_commits} — or any
    eager [commit], whose syncs of the shared A/D/commits journals
    inherently cover every pending record; a crash before that loses
    it.  The group-commit durability window, amortizing the three
    per-commit forces across a batch. *)

val force_commits : t -> unit
(** Force the differential files and then the commit journal (records
    before markers): every group-committed transaction becomes
    durable.  Also runs the deferred auto-merge housekeeping check. *)

val checkpoint_fuzzy : ?sync:bool -> t -> unit
(** Fuzzy checkpoint: force the differential files, then append one
    marker to the commit journal recording how far they were durable
    and the exact stamp/txn maxima of that durable prefix.  Restart
    recovery then scans only the records past the newest marker instead
    of the whole files.  Needs no quiescence (unlike {!checkpoint}'s
    merge), writes nothing to the base, truncates nothing.  [sync]
    (default [true]) forces the marker; [sync:false] leaves it
    volatile, so a crash simply loses it and recovery falls back to the
    previous marker or a full scan — never to a wrong state. *)

val set_recovery_pool : t -> Dbm_util.Pool.t option -> unit
(** Domain pool for restart recovery (default [None] = serial): the
    differential-file suffix scans are chunked across the pool's
    domains.  Recovered state is identical for any pool size.  The
    engine does not own the pool. *)

val recovery_pool : t -> Dbm_util.Pool.t option

val state_fingerprint : t -> string
(** 128-bit hex digest of base pages, retained differential records,
    the committed set and the stamp/txn counters — everything restart
    recovery is responsible for.  The equivalence gate compares it
    after [crash_and_recover] vs {!crash_and_recover_reference}. *)

val crash_and_recover_reference : t -> unit
(** Crash, then recover along the preserved pre-parallelization path:
    single-threaded full scan of both differential files, checkpoint
    markers ignored (parsed only to be skipped). *)

val a_size : t -> int
(** Records currently in the additions file. *)

val d_size : t -> int
(** Records currently in the deletions file. *)

val merges : t -> int
