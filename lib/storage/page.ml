exception Page_full

let header_bytes = 8

(* Record area layout: count:4 | (key:8, len:4, bytes)* *)

let empty ~page_size =
  if page_size < header_bytes + 4 then invalid_arg "Page.empty: page too small";
  Bytes.make page_size '\000'

let get_lsn page = Int64.to_int (Bytes.get_int64_le page 0)

let set_lsn page lsn = Bytes.set_int64_le page 0 (Int64.of_int lsn)

let records page =
  let len = Bytes.length page in
  let count = Int32.to_int (Bytes.get_int32_le page header_bytes) in
  if count < 0 then invalid_arg "Page.records: negative record count";
  let rec go i pos acc =
    if i = count then List.rev acc
    else begin
      if pos + 12 > len then invalid_arg "Page.records: truncated record header";
      let key = Int64.to_int (Bytes.get_int64_le page pos) in
      let vlen = Int32.to_int (Bytes.get_int32_le page (pos + 8)) in
      if vlen < 0 || pos + 12 + vlen > len then invalid_arg "Page.records: truncated value";
      let value = Bytes.sub_string page (pos + 12) vlen in
      go (i + 1) (pos + 12 + vlen) ((key, value) :: acc)
    end
  in
  go 0 (header_bytes + 4) []

let encoded_size kvs =
  List.fold_left (fun acc (_, v) -> acc + 12 + String.length v) 4 kvs

let set_records page kvs =
  (* Key-sorted, last value wins for duplicates. *)
  let tbl = Hashtbl.create (List.length kvs) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) kvs;
  let kvs =
    List.sort (fun (a, _) (b, _) -> Int.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let len = Bytes.length page in
  if header_bytes + encoded_size kvs > len then raise Page_full;
  (* Clear the record area so stale bytes never masquerade as data. *)
  Bytes.fill page header_bytes (len - header_bytes) '\000';
  Bytes.set_int32_le page header_bytes (Int32.of_int (List.length kvs));
  let pos = ref (header_bytes + 4) in
  List.iter
    (fun (k, v) ->
      Bytes.set_int64_le page !pos (Int64.of_int k);
      Bytes.set_int32_le page (!pos + 8) (Int32.of_int (String.length v));
      Bytes.blit_string v 0 page (!pos + 12) (String.length v);
      pos := !pos + 12 + String.length v)
    kvs

(* Offset of [key]'s record header, scanning the record area directly
   without materializing the record list.  Records are key-sorted, so the
   scan stops early at the first larger key.  Returns [None] when absent. *)
let find_record page ~key =
  let len = Bytes.length page in
  let count = Int32.to_int (Bytes.get_int32_le page header_bytes) in
  if count < 0 then invalid_arg "Page.lookup: negative record count";
  let rec go i pos =
    if i = count then None
    else begin
      if pos + 12 > len then invalid_arg "Page.lookup: truncated record header";
      let k = Int64.to_int (Bytes.get_int64_le page pos) in
      let vlen = Int32.to_int (Bytes.get_int32_le page (pos + 8)) in
      if vlen < 0 || pos + 12 + vlen > len then invalid_arg "Page.lookup: truncated value";
      if k = key then Some (pos, vlen)
      else if k > key then None
      else go (i + 1) (pos + 12 + vlen)
    end
  in
  go 0 (header_bytes + 4)

let update page ~key ~value =
  match value, find_record page ~key with
  | Some v, Some (pos, vlen) when String.length v = vlen ->
    (* Equal-length overwrite: splice the value in place instead of the
       decode/Hashtbl/sort/re-encode round trip. *)
    Bytes.blit_string v 0 page (pos + 12) vlen
  | _ ->
    let kvs = records page in
    let without = List.filter (fun (k, _) -> k <> key) kvs in
    let kvs' = match value with None -> without | Some v -> (key, v) :: without in
    set_records page kvs'

let lookup page ~key =
  match find_record page ~key with
  | None -> None
  | Some (pos, vlen) -> Some (Bytes.sub_string page (pos + 12) vlen)

let free_bytes page = Bytes.length page - header_bytes - encoded_size (records page)
