(** The operation-logging (logical) recovery engine — ROADMAP item 5
    made concrete: log {e what was done} ([insert(k,v)]/[delete(k)]),
    not what the pages looked like.

    A {b no-steal / no-force} design: updates are applied volatile
    in place after a tiny {!Wal.Op} record is appended (the whole log
    record is the operation — no images at all), commit is one log
    force, and the data disk is only ever forced when no live
    transaction has uncommitted page writes (the no-steal gate), so an
    uncommitted change can never become durable.  That makes restart
    recovery {b REDO-only}: committed operations re-execute in LSN
    order onto the durable images behind the page-header LSN guard
    ({!Replay.recover_logical}), and there is nothing to undo — loser
    operations never reached the disk.  Abort undo uses volatile
    pre-transaction images kept in memory, never logged.

    Log records are an order of magnitude smaller than the physical
    engine's full-image records on the same workload, which is the
    whole argument (Lomet's performance-competitive logical recovery,
    PAPERS.md); the bench meters the ratio.  LSN issue order mirrors
    {!Engine_log}'s (one per update, one per commit/abort, one per
    abort-restored page), so on identical committed histories the two
    engines recover to identical {!state_fingerprint}s — the
    cross-architecture equivalence gate.

    MVCC snapshot reads ({!Kv.SNAPSHOT}): pages here are overwritten in
    place, so old versions survive only in bounded in-memory version
    chains, maintained per key {e only while snapshots are live}.  A
    chain is seeded at a key's first committed write under a live
    snapshot (pre-image taken from the committing transaction's undo
    image) and extended at each commit with the commit's sequence
    number; a snapshot pinned at horizon [h] reads the newest entry at
    or below [h], falling back to the committed page image (the undo
    image when a live writer has the page dirty) for keys never
    committed-to since the pin.  Chains are trimmed past the snapshot
    watermark at every push and release, and dropped entirely when the
    last snapshot closes or on crash — with no snapshots the engine
    runs exactly as before.

    Satisfies {!Kv.SNAPSHOT}; extras below. *)

include Kv.SNAPSHOT

val create_with : ?n_keys:int -> ?keys_per_page:int -> unit -> t
(** [create] is [create_with] with 4 keys per page (1 KB pages, one log
    journal). *)

val commit_group : txn -> unit
(** Group commit: append the commit record but leave the force to the
    next {!force_commits} (or any eager {!commit}, which forces the one
    shared journal).  A crash before the force loses the transaction —
    the group-commit durability window. *)

val force_commits : t -> unit
(** Force the log journal: every group-committed transaction becomes
    durable. *)

(** {2 Two-phase commit (participant side)}

    Same protocol as {!Engine_log}: [prepare] is the durable vote (one
    force covers the operations and the {!Wal.Prepare} record — one
    journal holds everything), the transaction stays active until the
    coordinator's decision ({!commit_group} or abort), and restart
    recovery resolves in-doubt transactions from the coordinator. *)

val prepare : txn -> gid:int -> unit
(** Durable vote for global transaction [gid]. *)

val in_doubt : t -> (int * int) list
(** [(txn, gid)] for every durably prepared transaction with no durable
    decision record, ascending by txn id. *)

val crash_and_recover_resolved : resolve:(gid:int -> bool) -> t -> unit
(** Crash-and-recover with in-doubt transactions committed iff
    [resolve ~gid] holds (plain [crash_and_recover] presumes abort);
    resolution records are appended and forced so the next restart
    needs no coordinator. *)

val set_seq_source : t -> (unit -> int) option -> unit
(** Draw commit sequence numbers from a shared source instead of the
    private counter — a sharded driver ({!Shard} callers such as
    [dbmsim serve-bench --shards]) installs one process-global atomic
    counter across every shard's engine so snapshot horizons order
    commits consistently machine-wide.  [None] restores the private
    counter. *)

val flush : t -> unit
(** Force the log, then the data disk — but the data force is skipped
    whenever a live transaction holds uncommitted page writes (the
    no-steal gate; stealing would strand an undo-less uncommitted image
    on disk).

    [checkpoint] (from {!Kv.S}) is the sharp form: force the log, force
    the data disk when the no-steal gate allows it, append a
    {!Wal.Checkpoint} record — and, when the data force ran, truncate
    the log down to that record (every retained operation is then
    reflected in the durable image).  The truncation is what bounds the
    operation log, and it mirrors {!Engine_log}'s sharp-checkpoint
    truncation so the two engines' post-crash counter re-seeds stay
    fingerprint-aligned. *)

val set_recovery_pool : t -> Dbm_util.Pool.t option -> unit
(** Domain pool for restart recovery (default [None] = serial): log
    decoding and per-page re-execution fan out across the domains, with
    bit-identical results at any pool size.  The engine does not own
    the pool. *)

val recovery_pool : t -> Dbm_util.Pool.t option

val state_fingerprint : t -> string
(** 128-bit hex digest of every data page image plus the LSN/txn
    counters — comparable across engines (same digest layout as
    {!Engine_log.state_fingerprint}). *)

val crash_and_recover_reference : t -> unit
(** Crash, then recover along the serial reference
    ({!Naive.Log_replay.recover_logical}): one global LSN-sorted pass,
    no partitioning.  Same epilogue as [crash_and_recover]; equal
    fingerprints are the parallel path's correctness gate. *)

val records_logged : t -> int

val log_bytes : t -> int
(** Total durable log volume in bytes. *)

val dump_log : t -> Wal.record list
(** Durable records of the log journal, for inspection and tests. *)
