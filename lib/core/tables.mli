(** Regeneration of the paper's twelve evaluation tables.

    Each function runs the required simulations (memoized across
    tables) and returns a {!Report.table} whose cells pair the measured
    value with the paper's reported value.  The paper's evaluation
    section contains tables only — no figures. *)

val table1 : unit -> Report.table
(** Impact of logging on execution time per page and transaction
    completion time (one log disk, logical logging). *)

val table2 : unit -> Report.table
(** Log-disk utilization with one log processor. *)

val table3 : unit -> Report.table
(** Parallel logging with physical logging on the 75-QP machine:
    1-5 log disks x four log-processor selection policies. *)

val table4 : unit -> Report.table
(** Impact of the shadow (thru page-table) mechanism, 1 vs 2 page-table
    processors. *)

val table5 : unit -> Report.table
(** Average utilization of the data and page-table disks. *)

val table6 : unit -> Report.table
(** Execution time per page vs page-table buffer size (random
    transactions, 1 page-table processor). *)

val table7 : unit -> Report.table
(** Sequential transactions: clustered vs scrambled placement vs the
    overwriting architecture. *)

val table8 : unit -> Report.table
(** Random transactions: thru page-table vs overwriting. *)

val table9 : unit -> Report.table
(** Impact of the differential-file mechanism, basic vs optimal query
    processing. *)

val table10 : unit -> Report.table
(** Effect of the output fraction on execution time per page. *)

val table11 : unit -> Report.table
(** Effect of the size of the differential files. *)

val table12 : unit -> Report.table
(** Grand comparison of all recovery architectures. *)

val runs : unit -> Experiment.request list
(** The flattened run-level work list: one request per simulation the
    twelve tables need (most expensive first).  Dedup by digest, force
    them — in any order, on any number of domains — and table assembly
    afterwards is pure cache hits. *)

val all : ?pool:Dbm_util.Pool.t -> unit -> Report.table list
(** All twelve, in order.  With [pool] (effective jobs > 1), {!runs} is
    deduplicated and fanned out across its domains first and the tables
    are then assembled serially from the memo cache, so the result is
    byte-identical to the serial run regardless of pool size or cache
    state. *)

val by_id : int -> Report.table
(** @raise Invalid_argument unless [1 <= id <= 12]. *)
