(** Experiment runner with memoization.

    A run is identified by a [key]; repeated requests for the same key
    (e.g. the bare machine baseline shared by most tables) reuse the
    first result.  All runs are deterministic, so memoization is
    semantically transparent. *)

val cached : key:string -> (unit -> Dbm_machine.Results.t) -> Dbm_machine.Results.t
(** [cached ~key compute] returns the memoized result for [key], running
    [compute] (exactly once across all domains; concurrent requesters
    wait on the in-flight marker) on a miss.  [compute] must be
    deterministic for the memoization to be transparent. *)

val run :
  key:string ->
  machine:Dbm_machine.Config.t ->
  workload:Dbm_workload.Workload.config ->
  make_arch:(Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  unit ->
  Dbm_machine.Results.t

val bare : Scenario.t -> Dbm_machine.Results.t
(** Baseline (no recovery) run of a configuration. *)

val on_scenario :
  key:string ->
  ?scramble:int ->
  Scenario.t ->
  (Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  Dbm_machine.Results.t
(** Run an architecture on one of the paper's four configurations. *)

val clear_cache : unit -> unit
