(** Content-addressed experiment runner.

    A run is identified by a {e digest}: a canonical serialization of
    its full input — the architecture descriptor, every field of the
    machine configuration and every field of the workload generator
    configuration — hashed with {!Dbm_util.Digest}.  Runs requested
    from different tables with content-identical inputs therefore share
    one digest and one simulation, whatever label the call sites used.

    Two cache levels sit behind {!force}:

    - an in-process memo (digest -> result) shared by all domains, with
      an in-flight marker so concurrent requesters of the same digest
      wait instead of recomputing;
    - an optional persistent store ({!Dbm_util.Run_cache}) consulted on
      memo misses and written after computation, enabling warm-start
      regeneration across processes.

    All runs are deterministic, so both levels are semantically
    transparent: cached output is byte-identical to recomputation. *)

(** {1 Requests} *)

type request
(** A schedulable unit of work: a digest plus the deterministic
    computation it addresses. *)

val request :
  arch:string ->
  machine:Dbm_machine.Config.t ->
  workload:Dbm_workload.Workload.config ->
  make_arch:(Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  request
(** [arch] must be a canonical architecture descriptor (e.g. from
    {!Dbm_recovery.Logging.descriptor}), i.e. determined by the
    architecture's configuration alone — never by the requesting table
    — and [make_arch] must be the architecture it describes.  The
    profile label defaults to [arch]; see {!with_label}. *)

val with_label : string -> request -> request
(** Override the request's human-readable {!label} (used by {!profile}
    attribution only — never part of the digest). *)

val scenario_request :
  ?label:string ->
  arch:string ->
  ?scramble:int ->
  Scenario.t ->
  (Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  request
(** {!request} on one of the paper's four configurations; the default
    label is ["<arch> @ <scenario>"]. *)

val bare_request : Scenario.t -> request
(** Baseline (no recovery architecture) run of a configuration. *)

val custom_request :
  ?label:string ->
  ?prior_ms:float ->
  tag:string ->
  machine:Dbm_machine.Config.t ->
  (unit -> Dbm_machine.Results.t) ->
  request
(** Escape hatch for runs whose workload is built by hand.  [tag] must
    uniquely determine the computation given the machine config, and
    must be versioned (e.g. ["ext-mixed/v1"]) so changing the
    construction logic invalidates old persistent entries.  [prior_ms]
    (default 50) seeds the cost estimate until the model has observed
    the digest. *)

val digest : request -> string
(** The request's content digest (32 hex characters). *)

val label : request -> string
(** Human-readable attribution (table/architecture) for profiles. *)

val force : request -> Dbm_machine.Results.t
(** Resolve a request: memo hit, else persistent-store hit, else
    compute (exactly once across all domains) and populate both
    levels. *)

val dedup : request list -> request list
(** Drop requests whose digest already appeared earlier in the list
    (stable; keeps first occurrences).  Schedule the deduplicated list
    and let {!force} fan the shared results back to every requester. *)

(** {1 Forced convenience wrappers} *)

val run :
  arch:string ->
  machine:Dbm_machine.Config.t ->
  workload:Dbm_workload.Workload.config ->
  make_arch:(Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  unit ->
  Dbm_machine.Results.t

val on_scenario :
  arch:string ->
  ?scramble:int ->
  Scenario.t ->
  (Dbm_machine.Arch.ctx -> Dbm_machine.Arch.t) ->
  Dbm_machine.Results.t

val bare : Scenario.t -> Dbm_machine.Results.t

(** {1 Cache control} *)

val cached : key:string -> (unit -> Dbm_machine.Results.t) -> Dbm_machine.Results.t
(** Raw memoization layer: [cached ~key compute] returns the memoized
    result for [key], running [compute] (exactly once across all
    domains; concurrent requesters wait on the in-flight marker) on a
    miss.  [compute] must be deterministic. *)

val clear_cache : unit -> unit
(** Drop the in-process memo (persistent entries are untouched). *)

val schema_version : int
(** Version of the marshalled {!Dbm_machine.Results.t} payload; salts
    every persistent entry so stale formats self-invalidate. *)

val enable_disk_cache : dir:string -> unit
(** Route {!force} through a persistent store rooted at [dir]
    (created on demand). *)

val disable_disk_cache : unit -> unit

val disk_cache_dir : unit -> string option

(** {1 Instrumentation} *)

type counters = {
  requested : int;  (** {!force} calls *)
  computed : int;  (** simulations actually executed *)
  disk_hits : int;  (** results loaded from the persistent store *)
}

val counters : unit -> counters
(** Monotonic since process start or the last {!reset_counters};
    memo hits are [requested - computed - disk_hits]. *)

val reset_counters : unit -> unit

(** {1 Cost model and profile}

    When a {!Dbm_util.Cost_model} is installed, {!force} folds the wall
    time of every simulation it {e actually executes} into the model,
    and {!estimated_cost} answers the scheduler's "how long will this
    run take?".  Results served from the memo or the persistent store
    record {e no} observation — their near-zero wall is cache-load
    time, not simulation cost, and would poison the model. *)

val set_cost_model : Dbm_util.Cost_model.t option -> unit
(** Install (or remove) the process-wide cost model.  Not synchronised:
    set it before fanning work out to a pool. *)

val cost_model : unit -> Dbm_util.Cost_model.t option

val estimated_cost : request -> float
(** Estimated wall time in ms: the model's EWMA for this digest when it
    has one, otherwise a prior derived from the request's workload
    descriptor (transactions x mean pages, arrival-process factor).
    Priors are rank estimates — meaningful relative to each other, not
    as clock time. *)

type observation = {
  obs_digest : string;
  obs_label : string;
  wall_ms : float;  (** observed wall time of the simulation *)
  estimate_ms : float;  (** what {!estimated_cost} said just before it ran *)
}

val profile : unit -> observation list
(** Every simulation actually executed since process start (or
    {!reset_profile}), in execution order.  Cache hits never appear. *)

val reset_profile : unit -> unit
