module Results = Dbm_machine.Results
module Logging = Dbm_recovery.Logging
module Shadow = Dbm_recovery.Shadow
module Diff_file = Dbm_recovery.Diff_file

let scenarios = Scenario.all

(* ---------------------------------------------------------------- *)
(* Content-addressed runs shared across tables                        *)
(* ---------------------------------------------------------------- *)

(* Each helper names the architecture by its canonical descriptor, so
   two tables (or an ablation, or an extension) requesting the same
   configuration on the same scenario share one digest — and one
   simulation — no matter where the request came from. *)

let bare_request = Experiment.bare_request

let logging1_request sc =
  Experiment.scenario_request ~arch:(Logging.descriptor Logging.default) sc
    (Logging.make Logging.default)

let shadow_pt_request ~n_pt ~buf sc =
  let cfg = Shadow.thru ~n_pt_processors:n_pt ~buffer_pages:buf in
  Experiment.scenario_request ~arch:(Shadow.descriptor cfg) sc (Shadow.make cfg)

let shadow_scrambled_request sc =
  let cfg = Shadow.thru ~n_pt_processors:1 ~buffer_pages:10 in
  Experiment.scenario_request ~arch:(Shadow.descriptor cfg) ~scramble:1009 sc (Shadow.make cfg)

let overwriting_request sc =
  let cfg = Shadow.overwrite_no_undo in
  Experiment.scenario_request ~arch:(Shadow.descriptor cfg) sc (Shadow.make cfg)

let diff_request ?(size = 0.10) ?(out = 0.10) ~strategy sc =
  let cfg =
    {
      Diff_file.default with
      Diff_file.size_fraction = size;
      output_fraction = out;
      strategy;
    }
  in
  Experiment.scenario_request ~arch:(Diff_file.descriptor cfg) sc (Diff_file.make cfg)

let bare = Experiment.bare

let logging1 sc = Experiment.force (logging1_request sc)

let shadow_pt ~n_pt ~buf sc = Experiment.force (shadow_pt_request ~n_pt ~buf sc)

let shadow_scrambled sc = Experiment.force (shadow_scrambled_request sc)

let overwriting sc = Experiment.force (overwriting_request sc)

let diff ?size ?out ~strategy sc = Experiment.force (diff_request ?size ?out ~strategy sc)

(* ---------------------------------------------------------------- *)

let cell = Report.cell

let exec (r : Results.t) = r.Results.exec_ms_per_page

let completion (r : Results.t) = r.Results.mean_completion_ms

let extra key (r : Results.t) = Option.value (Results.find_extra r key) ~default:0.0

let table1 () =
  let rows =
    List.map2
      (fun sc ((pe_wo, pe_w), (pc_wo, pc_w)) ->
        let b = bare sc and l = logging1 sc in
        {
          Report.row_label = Scenario.name sc;
          cells =
            [
              cell ~paper:pe_wo (exec b);
              cell ~paper:pe_w (exec l);
              cell ~paper:pc_wo (completion b);
              cell ~paper:pc_w (completion l);
            ];
        })
      scenarios
      (List.combine Paper.table1_exec Paper.table1_completion)
  in
  {
    Report.id = "Table 1";
    title = "Impact of Logging";
    columns =
      [ "exec/page w/o log"; "exec/page with log"; "completion w/o log"; "completion with log" ];
    rows;
    notes = [ "one log processor, logical logging, dedicated 1 MB/s interconnect" ];
  }

let table2 () =
  let rows =
    List.map2
      (fun sc p ->
        let l = logging1 sc in
        { Report.row_label = Scenario.name sc; cells = [ cell ~paper:p (extra "log_disk_util" l) ] })
      scenarios Paper.table2_log_util
  in
  {
    Report.id = "Table 2";
    title = "Log Characteristics (one log processor)";
    columns = [ "log disk utilization" ];
    rows;
    notes = [];
  }

(* Table 3: 75 QPs, 2 parallel-access data disks, 150 frames,
   sequential transactions, physical logging. *)
let table3_request ~n_log ~selection =
  let arch, make_arch =
    if n_log = 0 then ("bare", fun _ -> Dbm_machine.Arch.bare)
    else begin
      let cfg =
        { Logging.default with Logging.n_log_processors = n_log; selection; mode = Logging.Physical }
      in
      (Logging.descriptor cfg, Logging.make cfg)
    end
  in
  Experiment.request ~arch ~machine:Scenario.table3_machine
    ~workload:(Scenario.table3_workload ()) ~make_arch

let table3_run ~n_log ~selection = Experiment.force (table3_request ~n_log ~selection)

let selections = [ Logging.Cyclic; Logging.Random; Logging.Qp_mod; Logging.Txn_mod ]

let table3 () =
  let row ~metric ~label n_log papers =
    {
      Report.row_label = label;
      cells =
        List.map2
          (fun selection paper -> cell ~paper (metric (table3_run ~n_log ~selection)))
          selections papers;
    }
  in
  let make metric paper_rows suffix =
    List.map
      (fun (n, papers) ->
        let label =
          if n = 0 then "w/o logging" ^ suffix
          else Printf.sprintf "%d log disk%s%s" n (if n > 1 then "s" else "") suffix
        in
        row ~metric ~label n papers)
      paper_rows
  in
  {
    Report.id = "Table 3";
    title =
      "Parallel Logging and Log Processor Selection (75 QPs, 2 parallel-access disks, 150 \
       frames, physical logging)";
    columns = [ "cyclic"; "random"; "QpNo mod"; "TranNo mod" ];
    rows =
      make exec Paper.table3_exec " (exec/page)"
      @ make completion Paper.table3_completion " (completion)";
    notes = [];
  }

let table4 () =
  let rows =
    List.map2
      (fun sc ((pe_b, pe_1, pe_2), (pc_b, pc_1, pc_2)) ->
        let b = bare sc in
        let s1 = shadow_pt ~n_pt:1 ~buf:10 sc in
        let s2 = shadow_pt ~n_pt:2 ~buf:10 sc in
        {
          Report.row_label = Scenario.name sc;
          cells =
            [
              cell ~paper:pe_b (exec b);
              cell ~paper:pe_1 (exec s1);
              cell ~paper:pe_2 (exec s2);
              cell ~paper:pc_b (completion b);
              cell ~paper:pc_1 (completion s1);
              cell ~paper:pc_2 (completion s2);
            ];
        })
      scenarios
      (List.combine Paper.table4_exec Paper.table4_completion)
  in
  {
    Report.id = "Table 4";
    title = "Impact of the Shadow Mechanism";
    columns =
      [
        "exec bare"; "exec 1 PT proc"; "exec 2 PT procs"; "compl bare"; "compl 1 PT";
        "compl 2 PT";
      ];
    rows;
    notes = [ "page-table buffer of 10 pages" ];
  }

let table5 () =
  let data_util (r : Results.t) = Results.data_disk_utilization r in
  let rows =
    List.map2
      (fun sc (p_bare, p1_pt, p1_data, p2_pt, p2_data) ->
        let b = bare sc in
        let s1 = shadow_pt ~n_pt:1 ~buf:10 sc in
        let s2 = shadow_pt ~n_pt:2 ~buf:10 sc in
        {
          Report.row_label = Scenario.name sc;
          cells =
            [
              cell ~paper:p_bare (data_util b);
              cell ~paper:p1_pt (extra "pt_disk_util" s1);
              cell ~paper:p1_data (data_util s1);
              cell ~paper:p2_pt (extra "pt_disk_util" s2);
              cell ~paper:p2_data (data_util s2);
            ];
        })
      scenarios Paper.table5_util
  in
  {
    Report.id = "Table 5";
    title = "Average Utilization of Data and Page-Table Disks";
    columns = [ "bare: data"; "1 PT: pt disk"; "1 PT: data"; "2 PT: pt disk"; "2 PT: data" ];
    rows;
    notes = [];
  }

let table6 () =
  let buffer_sizes = [ 10; 25; 50 ] in
  let rows =
    List.map2
      (fun sc (label, p_bare, papers) ->
        let b = bare sc in
        {
          Report.row_label = label;
          cells =
            cell ~paper:p_bare (exec b)
            :: List.map2
                 (fun buf paper -> cell ~paper (exec (shadow_pt ~n_pt:1 ~buf sc)))
                 buffer_sizes papers;
        })
      [ Scenario.Conventional_random; Scenario.Parallel_random ]
      Paper.table6_exec
  in
  {
    Report.id = "Table 6";
    title = "Execution Time per Page vs Page-Table Buffer Size (random transactions, 1 PT \
             processor)";
    columns = [ "bare"; "buffer 10"; "buffer 25"; "buffer 50" ];
    rows;
    notes = [];
  }

let table7 () =
  let rows =
    List.map2
      (fun sc (label, p_bare, p_clu, p_scr, p_ow) ->
        {
          Report.row_label = label;
          cells =
            [
              cell ~paper:p_bare (exec (bare sc));
              cell ~paper:p_clu (exec (shadow_pt ~n_pt:1 ~buf:10 sc));
              cell ~paper:p_scr (exec (shadow_scrambled sc));
              cell ~paper:p_ow (exec (overwriting sc));
            ];
        })
      [ Scenario.Conventional_sequential; Scenario.Parallel_sequential ]
      Paper.table7_exec
  in
  {
    Report.id = "Table 7";
    title = "Execution Time per Page (Sequential Transactions)";
    columns = [ "bare"; "clustered (thru PT)"; "scrambled (thru PT)"; "overwriting" ];
    rows;
    notes = [];
  }

let table8 () =
  let rows =
    List.map2
      (fun sc (label, p_bare, p_pt, p_ow) ->
        {
          Report.row_label = label;
          cells =
            [
              cell ~paper:p_bare (exec (bare sc));
              cell ~paper:p_pt (exec (shadow_pt ~n_pt:1 ~buf:10 sc));
              cell ~paper:p_ow (exec (overwriting sc));
            ];
        })
      [ Scenario.Conventional_random; Scenario.Parallel_random ]
      Paper.table8_exec
  in
  {
    Report.id = "Table 8";
    title = "Execution Time per Page (Random Transactions)";
    columns = [ "bare"; "thru page-table"; "overwriting" ];
    rows;
    notes = [];
  }

let table9 () =
  let rows =
    List.map2
      (fun sc ((pe_b, pe_ba, pe_o), (pc_b, pc_ba, pc_o)) ->
        let b = bare sc in
        let ba = diff ~strategy:Diff_file.Basic sc in
        let o = diff ~strategy:Diff_file.Optimal sc in
        {
          Report.row_label = Scenario.name sc;
          cells =
            [
              cell ~paper:pe_b (exec b);
              cell ~paper:pe_ba (exec ba);
              cell ~paper:pe_o (exec o);
              cell ~paper:pc_b (completion b);
              cell ~paper:pc_ba (completion ba);
              cell ~paper:pc_o (completion o);
            ];
        })
      scenarios
      (List.combine Paper.table9_exec Paper.table9_completion)
  in
  {
    Report.id = "Table 9";
    title = "Impact of the Differential File Mechanism";
    columns =
      [ "exec bare"; "exec basic"; "exec optimal"; "compl bare"; "compl basic"; "compl optimal" ];
    rows;
    notes = [ "differential files sized at 10% of the base file" ];
  }

let table10 () =
  let fractions = [ 0.10; 0.20; 0.50 ] in
  let rows =
    List.map2
      (fun sc (p_bare, papers) ->
        {
          Report.row_label = Scenario.name sc;
          cells =
            cell ~paper:p_bare (exec (bare sc))
            :: List.map2
                 (fun out paper -> cell ~paper (exec (diff ~out ~strategy:Diff_file.Optimal sc)))
                 fractions papers;
        })
      scenarios Paper.table10_exec
  in
  {
    Report.id = "Table 10";
    title = "Effect of Output Fraction on Execution Time per Page";
    columns = [ "bare"; "10%"; "20%"; "50%" ];
    rows;
    notes = [];
  }

let table11 () =
  let sizes = [ 0.10; 0.15; 0.20 ] in
  let rows =
    List.map2
      (fun sc (p_bare, papers) ->
        {
          Report.row_label = Scenario.name sc;
          cells =
            cell ~paper:p_bare (exec (bare sc))
            :: List.map2
                 (fun size paper -> cell ~paper (exec (diff ~size ~strategy:Diff_file.Optimal sc)))
                 sizes papers;
        })
      scenarios Paper.table11_exec
  in
  {
    Report.id = "Table 11";
    title = "Effect of Size of Differential Files on Execution Time per Page";
    columns = [ "bare"; "10%"; "15%"; "20%" ];
    rows;
    notes = [];
  }

let table12 () =
  let rows =
    List.map2
      (fun sc (label, papers) ->
        let measured =
          [
            exec (bare sc);
            exec (logging1 sc);
            exec (shadow_pt ~n_pt:1 ~buf:10 sc);
            exec (shadow_pt ~n_pt:1 ~buf:50 sc);
            exec (shadow_pt ~n_pt:2 ~buf:10 sc);
            exec (shadow_scrambled sc);
            exec (overwriting sc);
            exec (diff ~strategy:Diff_file.Optimal sc);
          ]
        in
        { Report.row_label = label; cells = List.map2 (fun m p -> cell ~paper:p m) measured papers })
      scenarios Paper.table12_exec
  in
  {
    Report.id = "Table 12";
    title = "Average Execution Time per Page: All Recovery Architectures";
    columns =
      [
        "bare"; "logging (1 disk)"; "PT buf=10"; "PT buf=50"; "2 PT procs"; "scrambled";
        "overwriting"; "diff file";
      ];
    rows;
    notes = [];
  }

let builders =
  [
    table1; table2; table3; table4; table5; table6; table7; table8; table9; table10; table11;
    table12;
  ]

(* The flattened run-level work list: every simulation the twelve
   tables need, one request per run, most expensive first so Table 3's
   21 physical-logging runs never gate the tail of the pool the way
   whole-table work units did.  Content-identical entries are fine —
   schedulers dedup by digest first.  Coverage drift is benign: a run a
   builder needs but the list misses is simply computed serially during
   assembly. *)
let runs () : Experiment.request list =
  let table3 =
    List.concat_map
      (fun (n_log, _) ->
        if n_log = 0 then [ table3_request ~n_log:0 ~selection:Logging.Cyclic ]
        else List.map (fun selection -> table3_request ~n_log ~selection) selections)
      Paper.table3_exec
    (* Labelled for --profile: these are the suite's dominant runs and
       the digest alone does not say where they came from. *)
    |> List.map (Experiment.with_label "Table 3")
  in
  let per_scenario =
    List.concat_map
      (fun sc ->
        [
          bare_request sc;
          logging1_request sc;
          shadow_pt_request ~n_pt:1 ~buf:10 sc;
          shadow_pt_request ~n_pt:2 ~buf:10 sc;
          shadow_pt_request ~n_pt:1 ~buf:50 sc;
          shadow_scrambled_request sc;
          overwriting_request sc;
          diff_request ~strategy:Diff_file.Basic sc;
          diff_request ~strategy:Diff_file.Optimal sc;
          diff_request ~out:0.20 ~strategy:Diff_file.Optimal sc;
          diff_request ~out:0.50 ~strategy:Diff_file.Optimal sc;
          diff_request ~size:0.15 ~strategy:Diff_file.Optimal sc;
          diff_request ~size:0.20 ~strategy:Diff_file.Optimal sc;
        ])
      scenarios
  in
  let table6_extra =
    (* buffers 10 and 50 are already covered for every scenario above *)
    List.map
      (fun sc -> shadow_pt_request ~n_pt:1 ~buf:25 sc)
      [ Scenario.Conventional_random; Scenario.Parallel_random ]
  in
  table3 @ per_scenario @ table6_extra

(* The unit of parallelism is the individual run: the work list above
   is deduplicated by digest and fanned out across the pool to fill the
   (mutex-protected, in-flight latched) memo cache, and the tables are
   then assembled serially from cache hits — so the rendered output
   cannot depend on the pool size, the dedup, or the state of any
   persistent cache, and no single slow table gates the schedule.
   The fan-out is cost-aware (LPT): runs are handed out longest-first
   by their estimated wall time (cost-model EWMA, workload prior when
   cold), so the 130 ms Table 3 runs start immediately instead of
   stalling the tail of the schedule. *)
let all ?pool () =
  let serial () = List.map (fun f -> f ()) builders in
  match pool with
  | None -> serial ()
  | Some p ->
    if Dbm_util.Pool.jobs p <= 1 then serial ()
    else begin
      let work = Experiment.dedup (runs ()) in
      ignore
        (Dbm_util.Pool.map_ordered_weighted p work ~weight:Experiment.estimated_cost
           ~f:(fun r -> ignore (Experiment.force r)));
      serial ()
    end

let by_id = function
  | 1 -> table1 ()
  | 2 -> table2 ()
  | 3 -> table3 ()
  | 4 -> table4 ()
  | 5 -> table5 ()
  | 6 -> table6 ()
  | 7 -> table7 ()
  | 8 -> table8 ()
  | 9 -> table9 ()
  | 10 -> table10 ()
  | 11 -> table11 ()
  | 12 -> table12 ()
  | n -> invalid_arg (Printf.sprintf "Tables.by_id: no table %d (1-12)" n)
