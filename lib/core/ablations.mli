(** Ablation experiments for the design choices called out in
    DESIGN.md.

    These go beyond the paper: each table switches off (or sweeps) one
    modelling decision to show how much of the reproduced behaviour it
    carries.  Cells have no paper counterpart, so the tables print
    measured values only. *)

val wal_rule : unit -> Report.table
(** The write-ahead rule on vs off under physical logging on the
    Table 3 machine: the WAL blocking of dirty frames is what collapses
    the cache when the log disk saturates. *)

val release_batching : unit -> Report.table
(** Batched vs per-update release of logged data pages (logical
    logging): the source of the same-cylinder write coalescing of
    Section 4.1.2. *)

val scratch_placement : unit -> Report.table
(** Overwriting with the scratch ring adjacent to the data zone vs at
    the far end of the disk: the arm-travel component of Table 7/8. *)

val diff_qualify : unit -> Report.table
(** Sensitivity of the optimal differential strategy to the
    qualification probability (how selective the short-circuit scan
    is). *)

val pt_buffer_sweep : unit -> Report.table
(** Fine-grained page-table buffer sweep (beyond Table 6's three
    points). *)

val mpl_sweep : unit -> Report.table
(** Multiprogramming-level sensitivity of the bare machine. *)

val read_batch_sweep : unit -> Report.table
(** Anticipatory-paging batch size vs parallel-access effectiveness. *)

val version_selection : unit -> Report.table
(** The version-selection shadow variant, actually simulated (the paper
    rejects it analytically in Section 4.2.5): every read transfers both
    adjacent copies. *)

val runs : unit -> Experiment.request list
(** Flattened run-level work list (one request per simulation); several
    entries are content-identical to table runs and collapse under
    {!Experiment.dedup}.  See {!Tables.runs}. *)

val all : ?pool:Dbm_util.Pool.t -> unit -> Report.table list
(** All ablations, in order; with [pool] the individual runs are fanned
    out across its domains first and the tables assembled from the memo
    cache, with a byte-identical result. *)
