module Config = Dbm_machine.Config
module Results = Dbm_machine.Results
module Workload = Dbm_workload.Workload
module Logging = Dbm_recovery.Logging

let cell = Report.cell

let e1_skews =
  [
    ("uniform", Workload.Random_access);
    ("10% hot, 50% of accesses", Workload.Hotspot { hot_fraction = 0.10; hot_access_prob = 0.5 });
    ("5% hot, 80% of accesses", Workload.Hotspot { hot_fraction = 0.05; hot_access_prob = 0.8 });
    ("2% hot, 80% of accesses", Workload.Hotspot { hot_fraction = 0.02; hot_access_prob = 0.8 });
    ("1% hot, 95% of accesses", Workload.Hotspot { hot_fraction = 0.01; hot_access_prob = 0.95 });
  ]

(* The workload pattern is part of the digest, so the uniform rows
   collapse (via dedup) onto the Table 1 bare/logging runs of the same
   machine. *)
let e1_request ~arch ~make_arch (_label, pattern) =
  let machine = Scenario.machine_config Scenario.Conventional_random in
  let workload =
    { (Scenario.workload_config Scenario.Conventional_random) with Workload.pattern }
  in
  Experiment.request ~arch ~machine ~workload ~make_arch

let e1_bare_request = e1_request ~arch:"bare" ~make_arch:(fun _ -> Dbm_machine.Arch.bare)

let e1_logging_request =
  e1_request ~arch:(Logging.descriptor Logging.default) ~make_arch:(Logging.make Logging.default)

let hotspot_contention () =
  let rows =
    List.map
      (fun skew ->
        let label, _ = skew in
        let bare = Experiment.force (e1_bare_request skew) in
        let log = Experiment.force (e1_logging_request skew) in
        {
          Report.row_label = label;
          cells =
            [
              cell bare.Results.exec_ms_per_page;
              cell bare.Results.mean_completion_ms;
              cell bare.Results.mean_active_txns;
              cell (Results.data_disk_utilization bare);
              cell log.Results.exec_ms_per_page;
              cell log.Results.mean_completion_ms;
            ];
        })
      e1_skews
  in
  {
    Report.id = "Extension E1";
    title = "Hot-spot contention under page-level locking (Conventional-Random machine)";
    columns =
      [
        "bare exec/page"; "bare completion"; "effective MPL"; "data disk util";
        "logging exec/page"; "logging completion";
      ];
    rows;
    notes =
      [
        "two competing effects the paper's uniform workloads never expose: exclusive \
         locks on a shrinking hot region serialize admissions (the effective MPL falls \
         well below the configured 3), while the same locality shortens seeks; at \
         moderate skew locality wins, and only once the effective MPL approaches 1 \
         does the machine start idling (falling disk utilization)";
      ];
  }

(* 20 small transactions (1-10 pages) mixed with 5 very large ones
   (200-250 pages), interleaved in arrival order.  The workload array
   is hand-built, so this run uses a custom request whose versioned tag
   stands in for the construction below: bump the tag when changing
   it, or stale persistent entries would be served. *)
let e2_request () =
  let machine = Scenario.machine_config Scenario.Conventional_random in
  Experiment.custom_request ~tag:"ext-mixed/v1" ~machine @@ fun () ->
  let small =
    Workload.generate
      {
        (Scenario.workload_config Scenario.Conventional_random) with
        Workload.n_transactions = 20;
        min_pages = 1;
        max_pages = 10;
        seed = 11;
      }
  in
  let large =
    Workload.generate
      {
        (Scenario.workload_config Scenario.Conventional_random) with
        Workload.n_transactions = 5;
        min_pages = 200;
        max_pages = 250;
        seed = 12;
      }
  in
  (* interleave, re-numbering ids so they stay unique; ids < 1000 are
     small, >= 1000 large *)
  let small = Array.mapi (fun i t -> { t with Workload.id = i }) small in
  let large = Array.mapi (fun i t -> { t with Workload.id = 1000 + i }) large in
  let mixed =
    Array.concat
      (List.concat (List.init 5 (fun i -> [ Array.sub small (4 * i) 4; [| large.(i) |] ])))
  in
  Dbm_machine.Machine.run ~config:machine
    ~make_arch:(fun _ -> Dbm_machine.Arch.bare)
    ~workload:mixed

let mixed_size_fairness () =
  let r = Experiment.force (e2_request ()) in
  let class_mean pred =
    let xs = List.filter_map (fun (id, c) -> if pred id then Some c else None) r.Results.completions in
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  {
    Report.id = "Extension E2";
    title = "Mixed transaction sizes: completion time by class (bare Conventional-Random)";
    columns = [ "mean completion (ms)"; "count" ];
    rows =
      [
        {
          Report.row_label = "small (1-10 pages)";
          cells = [ cell (class_mean (fun id -> id < 1000)); cell 20.0 ];
        };
        {
          Report.row_label = "large (200-250 pages)";
          cells = [ cell (class_mean (fun id -> id >= 1000)); cell 5.0 ];
        };
        {
          Report.row_label = "all";
          cells = [ cell r.Results.mean_completion_ms; cell 25.0 ];
        };
      ];
    notes =
      [
        "small transactions ride along nearly unharmed: static page-level locking \
         admits them between the giants (their page sets rarely collide at db scale)";
      ];
  }

(* Offered load vs response time in an open system (Poisson arrivals):
   the closed-model paper reports completion under a fixed MPL; this
   sweep shows the classic response-time knee as utilization rises. *)
let e3_interarrivals = [ 10_000.0; 5_000.0; 3_500.0; 3_000.0 ]

let e3_request ~arch ~make_arch mean =
  let machine = Scenario.machine_config Scenario.Conventional_random in
  let machine = { machine with Config.arrivals = Config.Poisson mean } in
  let workload =
    { (Scenario.workload_config Scenario.Conventional_random) with Workload.n_transactions = 40 }
  in
  Experiment.request ~arch ~machine ~workload ~make_arch

let e3_bare_request = e3_request ~arch:"bare" ~make_arch:(fun _ -> Dbm_machine.Arch.bare)

let e3_logging_request =
  e3_request ~arch:(Logging.descriptor Logging.default) ~make_arch:(Logging.make Logging.default)

let open_system_load () =
  let rows =
    List.map
      (fun mean ->
        let bare = Experiment.force (e3_bare_request mean) in
        let log = Experiment.force (e3_logging_request mean) in
        let p95 (r : Results.t) =
          Dbm_util.Stats.percentile (List.map snd r.Results.completions) ~p:95.0
        in
        {
          Report.row_label = Printf.sprintf "interarrival %5.0f ms" mean;
          cells =
            [
              cell bare.Results.mean_completion_ms;
              cell (p95 bare);
              cell (Results.data_disk_utilization bare);
              cell log.Results.mean_completion_ms;
            ];
        })
      e3_interarrivals
  in
  {
    Report.id = "Extension E3";
    title = "Open system: response time vs offered load (Poisson arrivals, Conventional-Random)";
    columns =
      [ "bare mean response"; "bare p95 response"; "data disk util"; "logging mean response" ];
    rows;
    notes =
      [
        "response time grows from ~3.1 s toward the knee as the offered load (shown as data-disk utilization) rises; tail response degrades first, and logging tracks the bare machine across the whole sweep";
      ];
  }

let builders = [ hotspot_contention; mixed_size_fairness; open_system_load ]

(* Flattened run-level work list (see Tables.runs). *)
let runs () : Experiment.request list =
  List.concat
    [
      List.concat_map (fun skew -> [ e1_bare_request skew; e1_logging_request skew ]) e1_skews;
      [ e2_request () ];
      List.concat_map (fun mean -> [ e3_bare_request mean; e3_logging_request mean ]) e3_interarrivals;
    ]

let all ?pool () =
  let serial () = List.map (fun f -> f ()) builders in
  match pool with
  | None -> serial ()
  | Some p ->
    if Dbm_util.Pool.jobs p <= 1 then serial ()
    else begin
      let work = Experiment.dedup (runs ()) in
      ignore
        (Dbm_util.Pool.map_ordered_weighted p work ~weight:Experiment.estimated_cost
           ~f:(fun r -> ignore (Experiment.force r)));
      serial ()
    end
