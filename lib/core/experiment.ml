(* The memo cache is shared by every domain running experiments.  A key
   is either [Done] or [Running] (some domain is computing it); a second
   requester of a [Running] key blocks on [changed] instead of
   recomputing, so the pool never duplicates the runs shared across
   tables (the bare baselines, the common logging/shadow configurations)
   that memoization deduplicates in the serial path.  All runs are
   deterministic, so which domain computes a key never affects the
   result. *)

type slot = Done of Dbm_machine.Results.t | Running

let cache : (string, slot) Hashtbl.t = Hashtbl.create 64

let lock = Mutex.create ()

let changed = Condition.create ()

let clear_cache () =
  Mutex.lock lock;
  (* Never discard Running markers: the computing domain would leave a
     stale entry behind.  Dropping only Done entries keeps waiters sound. *)
  Hashtbl.filter_map_inplace
    (fun _ s -> match s with Done _ -> None | Running -> Some s)
    cache;
  Mutex.unlock lock

let cached ~key compute =
  Mutex.lock lock;
  let rec claim () =
    match Hashtbl.find_opt cache key with
    | Some (Done r) ->
      Mutex.unlock lock;
      `Ready r
    | Some Running ->
      Condition.wait changed lock;
      claim ()
    | None ->
      Hashtbl.replace cache key Running;
      Mutex.unlock lock;
      `Compute
  in
  match claim () with
  | `Ready r -> r
  | `Compute ->
    let finish slot =
      Mutex.lock lock;
      (match slot with
      | Some r -> Hashtbl.replace cache key (Done r)
      | None -> Hashtbl.remove cache key);
      Condition.broadcast changed;
      Mutex.unlock lock
    in
    (match compute () with
    | r ->
      finish (Some r);
      r
    | exception e ->
      finish None;
      raise e)

let run ~key ~machine ~workload ~make_arch () =
  cached ~key (fun () ->
      let txns = Dbm_workload.Workload.generate workload in
      Dbm_machine.Machine.run ~config:machine ~make_arch ~workload:txns)

let on_scenario ~key ?scramble scenario make_arch =
  run ~key
    ~machine:(Scenario.machine_config ?scramble scenario)
    ~workload:(Scenario.workload_config scenario)
    ~make_arch ()

let bare scenario =
  on_scenario ~key:("bare/" ^ Scenario.name scenario) scenario (fun _ -> Dbm_machine.Arch.bare)
