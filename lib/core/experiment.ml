(* The memo cache is shared by every domain running experiments.  A key
   is either [Done] or [Running] (some domain is computing it); a second
   requester of a [Running] key blocks on [changed] instead of
   recomputing, so the pool never duplicates the runs shared across
   tables (the bare baselines, the common logging/shadow configurations)
   that memoization deduplicates in the serial path.  All runs are
   deterministic, so which domain computes a key never affects the
   result.

   Since PR 3 the memo key is a content digest of the run's full input
   (architecture descriptor + machine config + workload config) rather
   than a caller-chosen label, so content-identical runs requested from
   different tables collapse to one simulation; a second, persistent
   level (Run_cache) survives process restarts. *)

module Digest = Dbm_util.Digest
module Run_cache = Dbm_util.Run_cache
module Results = Dbm_machine.Results

(* Bump whenever the marshalled shape of [Results.t] (or anything the
   payload transitively contains) changes: the version string salts
   every persistent entry, so stale formats read as misses. *)
let schema_version = 1

type slot = Done of Results.t | Running

let cache : (string, slot) Hashtbl.t = Hashtbl.create 64

let lock = Mutex.create ()

let changed = Condition.create ()

let clear_cache () =
  Mutex.lock lock;
  (* Never discard Running markers: the computing domain would leave a
     stale entry behind.  Dropping only Done entries keeps waiters sound. *)
  Hashtbl.filter_map_inplace
    (fun _ s -> match s with Done _ -> None | Running -> Some s)
    cache;
  Mutex.unlock lock

let cached ~key compute =
  Mutex.lock lock;
  let rec claim () =
    match Hashtbl.find_opt cache key with
    | Some (Done r) ->
      Mutex.unlock lock;
      `Ready r
    | Some Running ->
      Condition.wait changed lock;
      claim ()
    | None ->
      Hashtbl.replace cache key Running;
      Mutex.unlock lock;
      `Compute
  in
  match claim () with
  | `Ready r -> r
  | `Compute ->
    let finish slot =
      Mutex.lock lock;
      (match slot with
      | Some r -> Hashtbl.replace cache key (Done r)
      | None -> Hashtbl.remove cache key);
      Condition.broadcast changed;
      Mutex.unlock lock
    in
    (match compute () with
    | r ->
      finish (Some r);
      r
    | exception e ->
      finish None;
      raise e)

(* ------------------------------------------------------------------ *)
(* Persistent store                                                    *)
(* ------------------------------------------------------------------ *)

let disk : Run_cache.t option ref = ref None

let enable_disk_cache ~dir =
  disk :=
    Some (Run_cache.create ~dir ~version:(Printf.sprintf "results-schema-%d" schema_version))

let disable_disk_cache () = disk := None

let disk_cache_dir () = Option.map Run_cache.dir !disk

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = { digest : string; compute : unit -> Results.t }

let digest r = r.digest

let requested_c = Atomic.make 0

let computed_c = Atomic.make 0

let disk_hits_c = Atomic.make 0

type counters = { requested : int; computed : int; disk_hits : int }

let counters () =
  {
    requested = Atomic.get requested_c;
    computed = Atomic.get computed_c;
    disk_hits = Atomic.get disk_hits_c;
  }

let reset_counters () =
  Atomic.set requested_c 0;
  Atomic.set computed_c 0;
  Atomic.set disk_hits_c 0

let request ~arch ~machine ~workload ~make_arch =
  let d = Digest.create () in
  Digest.string d "run-request";
  Digest.string d arch;
  Dbm_machine.Config.feed_digest d machine;
  Dbm_workload.Workload.feed_config d workload;
  {
    digest = Digest.hex d;
    compute =
      (fun () ->
        let txns = Dbm_workload.Workload.generate workload in
        Dbm_machine.Machine.run ~config:machine ~make_arch ~workload:txns);
  }

let scenario_request ~arch ?scramble scenario make_arch =
  request ~arch
    ~machine:(Scenario.machine_config ?scramble scenario)
    ~workload:(Scenario.workload_config scenario)
    ~make_arch

let bare_request scenario = scenario_request ~arch:"bare" scenario (fun _ -> Dbm_machine.Arch.bare)

let custom_request ~tag ~machine compute =
  let d = Digest.create () in
  Digest.string d "custom-request";
  Digest.string d tag;
  Dbm_machine.Config.feed_digest d machine;
  { digest = Digest.hex d; compute }

(* Disk lookups happen inside the memo's compute branch, so at most one
   domain per digest touches the store, and a hit still lands in the
   memo for later same-process requesters. *)
let force req =
  Atomic.incr requested_c;
  cached ~key:req.digest (fun () ->
      let from_disk =
        match !disk with
        | None -> None
        | Some store -> (
          match Run_cache.find store ~digest:req.digest with
          | None -> None
          | Some payload -> (
            (* The checksummed header makes a bad unmarshal unlikely,
               but the cache must never turn into an error source. *)
            match (Marshal.from_string payload 0 : Results.t) with
            | r ->
              Atomic.incr disk_hits_c;
              Some r
            | exception _ -> None))
      in
      match from_disk with
      | Some r -> r
      | None ->
        Atomic.incr computed_c;
        let r = req.compute () in
        (match !disk with
        | None -> ()
        | Some store -> Run_cache.store store ~digest:req.digest (Marshal.to_string r []));
        r)

let dedup reqs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.digest then false
      else begin
        Hashtbl.add seen r.digest ();
        true
      end)
    reqs

(* ------------------------------------------------------------------ *)
(* Forced convenience wrappers                                         *)
(* ------------------------------------------------------------------ *)

let run ~arch ~machine ~workload ~make_arch () = force (request ~arch ~machine ~workload ~make_arch)

let on_scenario ~arch ?scramble scenario make_arch =
  force (scenario_request ~arch ?scramble scenario make_arch)

let bare scenario = force (bare_request scenario)
