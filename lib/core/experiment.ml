(* The memo cache is shared by every domain running experiments.  A key
   is either [Done] or [Running] (some domain is computing it); a second
   requester of a [Running] key blocks on [changed] instead of
   recomputing, so the pool never duplicates the runs shared across
   tables (the bare baselines, the common logging/shadow configurations)
   that memoization deduplicates in the serial path.  All runs are
   deterministic, so which domain computes a key never affects the
   result.

   Since PR 3 the memo key is a content digest of the run's full input
   (architecture descriptor + machine config + workload config) rather
   than a caller-chosen label, so content-identical runs requested from
   different tables collapse to one simulation; a second, persistent
   level (Run_cache) survives process restarts. *)

module Digest = Dbm_util.Digest
module Run_cache = Dbm_util.Run_cache
module Cost_model = Dbm_util.Cost_model
module Results = Dbm_machine.Results

(* Bump whenever the marshalled shape of [Results.t] (or anything the
   payload transitively contains) changes: the version string salts
   every persistent entry, so stale formats read as misses. *)
let schema_version = 1

type slot = Done of Results.t | Running

let cache : (string, slot) Hashtbl.t = Hashtbl.create 64

let lock = Mutex.create ()

let changed = Condition.create ()

let clear_cache () =
  Mutex.lock lock;
  (* Never discard Running markers: the computing domain would leave a
     stale entry behind.  Dropping only Done entries keeps waiters sound. *)
  Hashtbl.filter_map_inplace
    (fun _ s -> match s with Done _ -> None | Running -> Some s)
    cache;
  Mutex.unlock lock

let cached ~key compute =
  Mutex.lock lock;
  let rec claim () =
    match Hashtbl.find_opt cache key with
    | Some (Done r) ->
      Mutex.unlock lock;
      `Ready r
    | Some Running ->
      Condition.wait changed lock;
      claim ()
    | None ->
      Hashtbl.replace cache key Running;
      Mutex.unlock lock;
      `Compute
  in
  match claim () with
  | `Ready r -> r
  | `Compute ->
    let finish slot =
      Mutex.lock lock;
      (match slot with
      | Some r -> Hashtbl.replace cache key (Done r)
      | None -> Hashtbl.remove cache key);
      Condition.broadcast changed;
      Mutex.unlock lock
    in
    (match compute () with
    | r ->
      finish (Some r);
      r
    | exception e ->
      finish None;
      raise e)

(* ------------------------------------------------------------------ *)
(* Persistent store                                                    *)
(* ------------------------------------------------------------------ *)

let disk : Run_cache.t option ref = ref None

let enable_disk_cache ~dir =
  disk :=
    Some (Run_cache.create ~dir ~version:(Printf.sprintf "results-schema-%d" schema_version))

let disable_disk_cache () = disk := None

let disk_cache_dir () = Option.map Run_cache.dir !disk

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request = {
  digest : string;
  label : string; (* human-readable attribution for --profile *)
  prior_ms : float; (* cost estimate when the model has no history *)
  compute : unit -> Results.t;
}

let digest r = r.digest

let label r = r.label

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let cost_model_ref : Cost_model.t option ref = ref None

let set_cost_model m = cost_model_ref := m

let cost_model () = !cost_model_ref

(* A rank prior, not a clock estimate: simulated work scales with how
   many page references the run must push through the machine, so
   transactions x mean pages orders cold runs usefully even though the
   absolute milliseconds are fiction.  Open-arrival runs simulate the
   arrival tail on top; the factor keeps them sorted above an otherwise
   equal closed run.

   Cold runs of DIFFERENT architectures on one scenario must not
   collapse to one flat estimate (a batch of equal priors degrades LPT
   scheduling to arbitrary order), so the estimate also weighs the
   architecture family — recovery machinery that simulates extra
   per-write work ranks above the bare machine — the write fraction
   each family is sensitive to, the access pattern, and finally a tiny
   descriptor-hash tiebreak so two variant configs of one family stay
   distinguishable. *)
let arch_family arch =
  match String.index_opt arch ':' with Some i -> String.sub arch 0 i | None -> arch

let default_prior_ms ~arch ~machine ~workload =
  let mean_pages =
    float_of_int (workload.Dbm_workload.Workload.min_pages + workload.Dbm_workload.Workload.max_pages)
    /. 2.0
  in
  let refs = float_of_int workload.Dbm_workload.Workload.n_transactions *. mean_pages in
  let arrival_factor =
    match machine.Dbm_machine.Config.arrivals with
    | Dbm_machine.Config.Batch -> 1.0
    | Dbm_machine.Config.Poisson _ -> 1.25
  in
  (* [base] orders the families by how much simulated machinery each
     reference drags along; [write_weight] scales with how much of that
     machinery only fires on writes. *)
  let base, write_weight =
    match arch_family arch with
    | "bare" -> (0.45, 0.0)
    | "version-select" -> (0.7, 0.3)
    | "logging" -> (1.0, 0.8)
    | "shadow" -> (1.1, 1.0)
    | "diff-file" -> (1.35, 1.2)
    | _ -> (1.0, 0.5)
  in
  let write_factor = 1.0 +. (write_weight *. workload.Dbm_workload.Workload.write_fraction) in
  let pattern_factor =
    match workload.Dbm_workload.Workload.pattern with
    | Dbm_workload.Workload.Sequential -> 0.9
    | Dbm_workload.Workload.Random_access -> 1.0
    | Dbm_workload.Workload.Hotspot _ -> 1.15
    (* Skewed like a hotspot, and the rejection sampling on hot pages
       costs a little more generator time. *)
    | Dbm_workload.Workload.Zipfian _ -> 1.15
  in
  (* Deterministic in [0, 1/16): breaks ties between variant configs of
     one family without reordering anything a real factor separates. *)
  let tiebreak =
    1.0 +. (float_of_int (Int64.to_int (Digest.fnv64 arch) land 0xff) /. 4096.0)
  in
  refs *. arrival_factor *. base *. write_factor *. pattern_factor *. tiebreak /. 20.0

let estimated_cost req =
  match !cost_model_ref with
  | None -> req.prior_ms
  | Some m -> (
    match Cost_model.estimate m ~digest:req.digest with Some e -> e | None -> req.prior_ms)

(* ------------------------------------------------------------------ *)
(* Profile log                                                         *)
(* ------------------------------------------------------------------ *)

type observation = { obs_digest : string; obs_label : string; wall_ms : float; estimate_ms : float }

let profile_mutex = Mutex.create ()

let profile_log : observation list ref = ref []

let record_observation ~digest ~label ~wall_ms ~estimate_ms =
  (match !cost_model_ref with Some m -> Cost_model.observe m ~digest ~wall_ms | None -> ());
  Mutex.lock profile_mutex;
  profile_log := { obs_digest = digest; obs_label = label; wall_ms; estimate_ms } :: !profile_log;
  Mutex.unlock profile_mutex

let profile () =
  Mutex.lock profile_mutex;
  let l = List.rev !profile_log in
  Mutex.unlock profile_mutex;
  l

let reset_profile () =
  Mutex.lock profile_mutex;
  profile_log := [];
  Mutex.unlock profile_mutex

let requested_c = Atomic.make 0

let computed_c = Atomic.make 0

let disk_hits_c = Atomic.make 0

type counters = { requested : int; computed : int; disk_hits : int }

let counters () =
  {
    requested = Atomic.get requested_c;
    computed = Atomic.get computed_c;
    disk_hits = Atomic.get disk_hits_c;
  }

let reset_counters () =
  Atomic.set requested_c 0;
  Atomic.set computed_c 0;
  Atomic.set disk_hits_c 0

(* Generated workloads are deterministic in their config and immutable
   once built (the machine only ever reads the page/write arrays), so
   runs sharing a workload config — every architecture evaluated on one
   scenario — can share one transaction array.  Workload generation
   accounts for roughly half the major-heap words a run promotes, so
   this domain-local cache rides the same switch as the simulation
   arenas: disabling recycling restores the build-everything-fresh
   behaviour the allocation benchmark compares against. *)
let workload_cache_key :
    (string, Dbm_workload.Workload.txn array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let generate_workload workload =
  if Dbm_sim.Arena.recycling_enabled () then begin
    let tbl = Domain.DLS.get workload_cache_key in
    let d = Digest.create () in
    Dbm_workload.Workload.feed_config d workload;
    let key = Digest.hex d in
    match Hashtbl.find_opt tbl key with
    | Some txns -> txns
    | None ->
      let txns = Dbm_workload.Workload.generate workload in
      Hashtbl.add tbl key txns;
      txns
  end
  else Dbm_workload.Workload.generate workload

let request ~arch ~machine ~workload ~make_arch =
  let d = Digest.create () in
  Digest.string d "run-request";
  Digest.string d arch;
  Dbm_machine.Config.feed_digest d machine;
  Dbm_workload.Workload.feed_config d workload;
  {
    digest = Digest.hex d;
    label = arch;
    prior_ms = default_prior_ms ~arch ~machine ~workload;
    compute =
      (fun () ->
        let txns = generate_workload workload in
        Dbm_machine.Machine.run ~config:machine ~make_arch ~workload:txns);
  }

let with_label label req = { req with label }

let scenario_request ?label ~arch ?scramble scenario make_arch =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "%s @ %s" arch (Scenario.name scenario)
  in
  with_label label
    (request ~arch
       ~machine:(Scenario.machine_config ?scramble scenario)
       ~workload:(Scenario.workload_config scenario)
       ~make_arch)

let bare_request scenario = scenario_request ~arch:"bare" scenario (fun _ -> Dbm_machine.Arch.bare)

let custom_request ?label ?(prior_ms = 50.0) ~tag ~machine compute =
  let d = Digest.create () in
  Digest.string d "custom-request";
  Digest.string d tag;
  Dbm_machine.Config.feed_digest d machine;
  {
    digest = Digest.hex d;
    label = (match label with Some l -> l | None -> tag);
    prior_ms;
    compute;
  }

(* Disk lookups happen inside the memo's compute branch, so at most one
   domain per digest touches the store, and a hit still lands in the
   memo for later same-process requesters. *)
let force req =
  Atomic.incr requested_c;
  cached ~key:req.digest (fun () ->
      let from_disk =
        match !disk with
        | None -> None
        | Some store -> (
          match Run_cache.find store ~digest:req.digest with
          | None -> None
          | Some payload -> (
            (* The checksummed header makes a bad unmarshal unlikely,
               but the cache must never turn into an error source. *)
            match (Marshal.from_string payload 0 : Results.t) with
            | r ->
              Atomic.incr disk_hits_c;
              Some r
            | exception _ -> None))
      in
      match from_disk with
      (* A cache hit records NO cost observation: its near-zero wall is
         load time, not simulation cost, and folding it into the EWMA
         would poison the schedule of the next cold regeneration. *)
      | Some r -> r
      | None ->
        Atomic.incr computed_c;
        let estimate_ms = estimated_cost req in
        let t0 = Unix.gettimeofday () in
        let r = req.compute () in
        let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        record_observation ~digest:req.digest ~label:req.label ~wall_ms ~estimate_ms;
        (match !disk with
        | None -> ()
        | Some store -> Run_cache.store store ~digest:req.digest (Marshal.to_string r []));
        r)

let dedup reqs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.digest then false
      else begin
        Hashtbl.add seen r.digest ();
        true
      end)
    reqs

(* ------------------------------------------------------------------ *)
(* Forced convenience wrappers                                         *)
(* ------------------------------------------------------------------ *)

let run ~arch ~machine ~workload ~make_arch () = force (request ~arch ~machine ~workload ~make_arch)

let on_scenario ~arch ?scramble scenario make_arch =
  force (scenario_request ~arch ?scramble scenario make_arch)

let bare scenario = force (bare_request scenario)
