module Config = Dbm_machine.Config
module Results = Dbm_machine.Results
module Logging = Dbm_recovery.Logging
module Shadow = Dbm_recovery.Shadow
module Diff_file = Dbm_recovery.Diff_file

let cell = Report.cell

let exec (r : Results.t) = r.Results.exec_ms_per_page

let extra key (r : Results.t) = Option.value (Results.find_extra r key) ~default:0.0

(* Every run helper below builds a content-addressed request; the
   ablation tables force them, and [runs] hands the same requests to
   the pool.  Architecture descriptors make the sharing explicit:
   e.g. A2's coalesce=true runs are the same simulations as the
   Table 1 logging runs, and dedup collapses them. *)

let a1_request ~enforce =
  let cfg = { Logging.default with Logging.mode = Logging.Physical; enforce_wal = enforce } in
  Experiment.request ~arch:(Logging.descriptor cfg) ~machine:Scenario.table3_machine
    ~workload:(Scenario.table3_workload ()) ~make_arch:(Logging.make cfg)

let a1_run ~enforce = Experiment.force (a1_request ~enforce)

let wal_rule () =
  let on = a1_run ~enforce:true and off = a1_run ~enforce:false in
  {
    Report.id = "Ablation A1";
    title = "Write-ahead rule on vs off (physical logging, 1 log disk, Table 3 machine)";
    columns =
      [ "exec/page (ms)"; "mean completion (ms)"; "frames blocked on log"; "log disk util" ];
    rows =
      [
        {
          Report.row_label = "WAL enforced";
          cells =
            [
              cell (exec on);
              cell on.Results.mean_completion_ms;
              cell on.Results.mean_frames_blocked_on_log;
              cell (extra "log_disk_util" on);
            ];
        };
        {
          Report.row_label = "WAL disabled (unsafe)";
          cells =
            [
              cell (exec off);
              cell off.Results.mean_completion_ms;
              cell off.Results.mean_frames_blocked_on_log;
              cell (extra "log_disk_util" off);
            ];
        };
      ];
    notes =
      [
        "with one saturated log disk the throughput limit is the log disk either way; what the WAL rule adds is the cache back-pressure (the blocked frames) and the wait for the log inside each transaction's completion time";
      ];
  }

let a2_scenarios = [ Scenario.Parallel_random; Scenario.Parallel_sequential ]

let a2_request sc ~coalesce =
  let machine = { (Scenario.machine_config sc) with Config.drive_coalesce = coalesce } in
  Experiment.request ~arch:(Logging.descriptor Logging.default) ~machine
    ~workload:(Scenario.workload_config sc) ~make_arch:(Logging.make Logging.default)

let a2_run sc ~coalesce = Experiment.force (a2_request sc ~coalesce)

let release_batching () =
  let scenarios = a2_scenarios in
  let run = a2_run in
  let rows =
    List.map
      (fun sc ->
        let b = run sc ~coalesce:true and u = run sc ~coalesce:false in
        {
          Report.row_label = Scenario.name sc;
          cells =
            [
              cell (exec b);
              cell (exec u);
              cell (float_of_int b.Results.data_disk_accesses);
              cell (float_of_int u.Results.data_disk_accesses);
            ];
        })
      scenarios
  in
  {
    Report.id = "Ablation A2";
    title = "Parallel-access queue coalescing on vs off (logical logging)";
    columns =
      [ "exec coalescing"; "exec without"; "disk accesses with"; "disk accesses without" ];
    rows;
    notes =
      [
        "absorbing queued same-cylinder requests into one access is how a whole log page's worth of simultaneously-released write-backs reaches disk in one I/O (Section 4.1.2)";
      ];
  }

let a3_scenarios = [ Scenario.Conventional_random; Scenario.Conventional_sequential ]

let a3_request sc placement =
  let machine = { (Scenario.machine_config sc) with Config.scratch_placement = placement } in
  Experiment.request
    ~arch:(Shadow.descriptor Shadow.overwrite_no_undo)
    ~machine
    ~workload:(Scenario.workload_config sc)
    ~make_arch:(Shadow.make Shadow.overwrite_no_undo)

let a3_run sc placement = Experiment.force (a3_request sc placement)

let scratch_placement () =
  let scenarios = a3_scenarios in
  let run = a3_run in
  let rows =
    List.map
      (fun sc ->
        {
          Report.row_label = Scenario.name sc;
          cells =
            [ cell (exec (run sc Config.Adjacent)); cell (exec (run sc Config.Far_end)) ];
        })
      scenarios
  in
  {
    Report.id = "Ablation A3";
    title = "Overwriting architecture: scratch ring adjacent to the data vs at the far end";
    columns = [ "scratch adjacent"; "scratch far end" ];
    rows;
    notes =
      [ "the data<->scratch arm travel is a large share of overwriting's penalty (4.2.4)" ];
  }

let a4_probs = [ 0.15; 0.3; 0.6 ]

let a4_scenarios = [ Scenario.Conventional_random; Scenario.Parallel_sequential ]

let a4_request sc p =
  let cfg = { Diff_file.default with Diff_file.qualify_prob = p } in
  Experiment.scenario_request ~arch:(Diff_file.descriptor cfg) sc (Diff_file.make cfg)

let a4_run sc p = Experiment.force (a4_request sc p)

let diff_qualify () =
  let probs = a4_probs in
  let rows =
    List.map
      (fun sc ->
        {
          Report.row_label = Scenario.name sc;
          cells =
            List.map (fun p -> cell (exec (a4_run sc p))) probs;
        })
      a4_scenarios
  in
  {
    Report.id = "Ablation A4";
    title = "Differential files: sensitivity to the qualification probability";
    columns = List.map (fun p -> Printf.sprintf "q = %.2f" p) probs;
    rows;
    notes =
      [
        "the optimal strategy's benefit is exactly the fraction of pages the initial \
         scan short-circuits";
      ];
  }

let a5_sizes = [ 1; 2; 5; 10; 25; 50; 100 ]

let a5_request buf =
  let cfg = Shadow.thru ~n_pt_processors:1 ~buffer_pages:buf in
  Experiment.scenario_request ~arch:(Shadow.descriptor cfg) Scenario.Conventional_random
    (Shadow.make cfg)

let a5_run buf = Experiment.force (a5_request buf)

let pt_buffer_sweep () =
  let sizes = a5_sizes in
  let rows =
    List.map
      (fun buf ->
        let r = a5_run buf in
        {
          Report.row_label = Printf.sprintf "buffer %3d" buf;
          cells =
            [
              cell (exec r);
              cell (extra "pt_buffer_hit_rate" r);
              cell (extra "pt_disk_util" r);
              cell (extra "pt_commit_rereads" r);
            ];
        })
      sizes
  in
  {
    Report.id = "Ablation A5";
    title = "Page-table buffer sweep (Conventional-Random, 1 PT processor)";
    columns = [ "exec/page"; "hit rate"; "pt disk util"; "commit rereads" ];
    rows;
    notes = [];
  }

let a6_levels = [ 1; 2; 3; 4; 6; 8 ]

let a6_request mpl =
  let machine = { (Scenario.machine_config Scenario.Conventional_random) with Config.mpl } in
  Experiment.request ~arch:"bare" ~machine
    ~workload:(Scenario.workload_config Scenario.Conventional_random)
    ~make_arch:(fun _ -> Dbm_machine.Arch.bare)

let a6_run mpl = Experiment.force (a6_request mpl)

let mpl_sweep () =
  let levels = a6_levels in
  let rows =
    List.map
      (fun mpl ->
        let r = a6_run mpl in
        {
          Report.row_label = Printf.sprintf "MPL %d" mpl;
          cells =
            [
              cell (exec r);
              cell r.Results.mean_completion_ms;
              cell (Results.data_disk_utilization r);
            ];
        })
      levels
  in
  {
    Report.id = "Ablation A6";
    title = "Multiprogramming level (bare machine, Conventional-Random)";
    columns = [ "exec/page"; "mean completion"; "data disk util" ];
    rows;
    notes =
      [ "throughput saturates once the disks do; completion time keeps growing with MPL" ];
  }

let a7_batches = [ 2; 4; 8; 16; 32 ]

let a7_request read_batch =
  (* queue coalescing is disabled here: with it on, the drive re-merges
     small adjacent requests and the batch size barely matters -- itself
     a finding (see A2) *)
  let machine =
    { (Scenario.machine_config Scenario.Parallel_sequential) with
      Config.read_batch;
      drive_coalesce = false }
  in
  let workload =
    (* read-only so the read-batch effect is not drowned by the
       (uncoalesced) single-page write-backs *)
    {
      (Scenario.workload_config Scenario.Parallel_sequential) with
      Dbm_workload.Workload.write_fraction = 0.0;
    }
  in
  Experiment.request ~arch:"bare" ~machine ~workload ~make_arch:(fun _ -> Dbm_machine.Arch.bare)

let a7_run read_batch = Experiment.force (a7_request read_batch)

let read_batch_sweep () =
  let batches = a7_batches in
  let rows =
    List.map
      (fun read_batch ->
        let r = a7_run read_batch in
        {
          Report.row_label = Printf.sprintf "batch %2d" read_batch;
          cells = [ cell (exec r); cell (float_of_int r.Results.data_disk_accesses) ];
        })
      batches
  in
  {
    Report.id = "Ablation A7";
    title =
      "Anticipatory-paging batch size (bare machine, Parallel-Sequential, read-only, queue \
       coalescing off)";
    columns = [ "exec/page"; "data disk accesses" ];
    rows;
    notes =
      [
        "bigger read batches let one parallel access deliver more of a cylinder; with \
         queue coalescing enabled (the default) the drive re-merges small requests and \
         the batch size barely matters";
      ];
  }

(* The paper rejects version selection analytically (4.2.5); measuring
   it confirms the argument and quantifies the margin. *)
let a8_versel_request sc =
  Experiment.scenario_request ~arch:"version-select" sc Dbm_recovery.Version_select.make_sim

let a8_versel sc = Experiment.force (a8_versel_request sc)

let a8_shadow_request sc =
  let cfg = Shadow.thru ~n_pt_processors:2 ~buffer_pages:10 in
  Experiment.scenario_request ~arch:(Shadow.descriptor cfg) sc (Shadow.make cfg)

let a8_shadow sc = Experiment.force (a8_shadow_request sc)

let version_selection () =
  let rows =
    List.map
      (fun sc ->
        let vs = a8_versel sc in
        let pt = a8_shadow sc in
        let bare = Experiment.bare sc in
        {
          Report.row_label = Scenario.name sc;
          cells = [ cell (exec bare); cell (exec vs); cell (exec pt) ];
        })
      Scenario.all
  in
  {
    Report.id = "Ablation A8";
    title = "Version selection, simulated (vs the overlappable thru-page-table shadow)";
    columns = [ "bare"; "version selection"; "thru-PT (2 procs)" ];
    rows;
    notes =
      [
        "every read transfers the second copy on an I/O-bound machine, and the cost \
         cannot be overlapped the way page-table lookups can: the paper's Section 4.2.5 \
         rejection, now measured (plus the 2x disk space it would cost)";
      ];
  }

let builders =
  [
    wal_rule; release_batching; scratch_placement; diff_qualify; pt_buffer_sweep; mpl_sweep;
    read_batch_sweep; version_selection;
  ]

(* Flattened run-level work list (see Tables.runs): one request per
   simulation, so the pool schedules individual runs, not whole
   ablations.  Several entries are content-identical to table runs
   (e.g. A2 coalesce=true = Table 1 logging, A5 buffer 10 = Table 4's
   1-PT shadow, A6 mpl 3 = the bare baseline) — digest dedup collapses
   them instead of relying on matching string keys. *)
let runs () : Experiment.request list =
  List.concat
    [
      List.map (fun enforce -> a1_request ~enforce) [ true; false ];
      List.concat_map
        (fun sc -> List.map (fun coalesce -> a2_request sc ~coalesce) [ true; false ])
        a2_scenarios;
      List.concat_map
        (fun sc -> List.map (fun p -> a3_request sc p) [ Config.Adjacent; Config.Far_end ])
        a3_scenarios;
      List.concat_map (fun sc -> List.map (fun p -> a4_request sc p) a4_probs) a4_scenarios;
      List.map (fun buf -> a5_request buf) a5_sizes;
      List.map (fun mpl -> a6_request mpl) a6_levels;
      List.map (fun b -> a7_request b) a7_batches;
      List.concat_map
        (fun sc -> [ a8_versel_request sc; a8_shadow_request sc; Experiment.bare_request sc ])
        Scenario.all;
    ]

let all ?pool () =
  let serial () = List.map (fun f -> f ()) builders in
  match pool with
  | None -> serial ()
  | Some p ->
    if Dbm_util.Pool.jobs p <= 1 then serial ()
    else begin
      let work = Experiment.dedup (runs ()) in
      ignore
        (Dbm_util.Pool.map_ordered_weighted p work ~weight:Experiment.estimated_cost
           ~f:(fun r -> ignore (Experiment.force r)));
      serial ()
    end
