module Results = Dbm_machine.Results
module Logging = Dbm_recovery.Logging
module Shadow = Dbm_recovery.Shadow
module Diff_file = Dbm_recovery.Diff_file

type check = { claim : string; where : string; holds : bool }

let exec (r : Results.t) = r.Results.exec_ms_per_page

let extra key (r : Results.t) = Option.value (Results.find_extra r key) ~default:0.0

(* Shared content-addressed runs (same digests as Tables, so nothing
   reruns). *)
let bare = Experiment.bare

let logging1 sc =
  Experiment.on_scenario ~arch:(Logging.descriptor Logging.default) sc
    (Logging.make Logging.default)

let shadow_pt ~n_pt ~buf sc =
  let cfg = Shadow.thru ~n_pt_processors:n_pt ~buffer_pages:buf in
  Experiment.on_scenario ~arch:(Shadow.descriptor cfg) sc (Shadow.make cfg)

let scrambled sc =
  let cfg = Shadow.thru ~n_pt_processors:1 ~buffer_pages:10 in
  Experiment.on_scenario ~arch:(Shadow.descriptor cfg) ~scramble:1009 sc (Shadow.make cfg)

let overwriting sc =
  Experiment.on_scenario
    ~arch:(Shadow.descriptor Shadow.overwrite_no_undo)
    sc
    (Shadow.make Shadow.overwrite_no_undo)

let diff ~strategy sc =
  let cfg = { Diff_file.default with Diff_file.strategy } in
  Experiment.on_scenario ~arch:(Diff_file.descriptor cfg) sc (Diff_file.make cfg)

let table3 ~n_log ~selection =
  let cfg =
    { Logging.default with Logging.n_log_processors = n_log; selection; mode = Logging.Physical }
  in
  Experiment.run
    ~arch:(Logging.descriptor cfg)
    ~machine:Scenario.table3_machine
    ~workload:(Scenario.table3_workload ())
    ~make_arch:(Logging.make cfg)
    ()

let all () =
  let open Scenario in
  let within_pct a b pct = Float.abs (a -. b) <= pct /. 100.0 *. b in
  [
    {
      claim = "logging does not affect the throughput of the database machine";
      where = "Section 4.1.1, Table 1";
      holds =
        List.for_all
          (fun sc -> within_pct (exec (logging1 sc)) (exec (bare sc)) 10.0)
          Scenario.all;
    };
    {
      claim = "a single log disk is grossly underutilized under logical logging";
      where = "Section 4.1.2, Table 2";
      holds =
        List.for_all (fun sc -> extra "log_disk_util" (logging1 sc) < 0.35) Scenario.all;
    };
    {
      claim =
        "with physical logging one log disk becomes the bottleneck; adding log disks \
         restores throughput monotonically";
      where = "Section 4.1.2, Table 3";
      holds =
        (let e n = exec (table3 ~n_log:n ~selection:Logging.Cyclic) in
         e 1 > 2.0 *. e 3 && e 3 >= e 5 && e 1 > 3.0 *. e 5);
    };
    {
      claim =
        "the transaction-number-mod selection is a loser; cyclic, random and \
         QP-number-mod are comparable";
      where = "Section 4.1.2, Table 3";
      holds =
        (let at s = exec (table3 ~n_log:4 ~selection:s) in
         at Logging.Txn_mod > 1.15 *. at Logging.Cyclic
         && within_pct (at Logging.Random) (at Logging.Cyclic) 20.0
         && within_pct (at Logging.Qp_mod) (at Logging.Cyclic) 20.0);
    };
    {
      claim =
        "with 1 page-table processor and a small buffer, random-transaction throughput \
         degrades; 2 page-table processors annul the degradation";
      where = "Section 4.2.1, Table 4";
      holds =
        List.for_all
          (fun sc ->
            exec (shadow_pt ~n_pt:1 ~buf:10 sc) > 1.08 *. exec (bare sc)
            && within_pct (exec (shadow_pt ~n_pt:2 ~buf:10 sc)) (exec (bare sc)) 8.0)
          [ Conventional_random; Parallel_random ];
    };
    {
      claim = "a larger page-table buffer annuls the degradation even with 1 processor";
      where = "Section 4.2.2, Table 6";
      holds =
        List.for_all
          (fun sc ->
            exec (shadow_pt ~n_pt:1 ~buf:50 sc) < exec (shadow_pt ~n_pt:1 ~buf:10 sc)
            && within_pct (exec (shadow_pt ~n_pt:1 ~buf:50 sc)) (exec (bare sc)) 8.0)
          [ Conventional_random; Parallel_random ];
    };
    {
      claim =
        "sequential transactions are unaffected by the shadow mechanism when clustering \
         is preserved";
      where = "Section 4.2.1, Table 4";
      holds =
        List.for_all
          (fun sc -> within_pct (exec (shadow_pt ~n_pt:1 ~buf:10 sc)) (exec (bare sc)) 8.0)
          [ Conventional_sequential; Parallel_sequential ];
    };
    {
      claim =
        "if logically adjacent pages are scattered, performance degrades very \
         significantly for sequential transactions — an order of magnitude on \
         parallel-access disks";
      where = "Section 4.2.3, Table 7";
      holds =
        exec (scrambled Conventional_sequential) > 1.8 *. exec (bare Conventional_sequential)
        && exec (scrambled Parallel_sequential) > 8.0 *. exec (bare Parallel_sequential);
    };
    {
      claim =
        "overwriting performs much worse than thru-page-table on conventional disks, but \
         is competitive on parallel-access disks with sequential transactions";
      where = "Sections 4.2.4, Tables 7-8";
      holds =
        exec (overwriting Conventional_random) > 1.15 *. exec (shadow_pt ~n_pt:1 ~buf:10 Conventional_random)
        && exec (overwriting Parallel_sequential) < 1.5 *. exec (bare Parallel_sequential);
    };
    {
      claim =
        "the basic differential strategy saturates the query processors and flattens all \
         four configurations to roughly the same execution time";
      where = "Section 4.3.1, Table 9";
      holds =
        (let es = List.map (fun sc -> exec (diff ~strategy:Diff_file.Basic sc)) Scenario.all in
         let mx = List.fold_left Float.max 0.0 es
         and mn = List.fold_left Float.min infinity es in
         mx < 1.1 *. mn && mn > 2.0 *. exec (bare Conventional_random));
    };
    {
      claim =
        "the optimal strategy restores disk-bound behaviour on random loads but the \
         differential mechanism still hurts most where the machine was fastest";
      where = "Section 4.3.1, Table 9";
      holds =
        within_pct (exec (diff ~strategy:Diff_file.Optimal Conventional_random))
          (exec (bare Conventional_random))
          15.0
        && exec (diff ~strategy:Diff_file.Optimal Parallel_sequential)
           > 5.0 *. exec (bare Parallel_sequential);
    };
    {
      claim =
        "overall, parallel logging emerges as the best recovery architecture: in every \
         configuration it is within a few percent of the cheapest alternative";
      where = "Section 5, Table 12";
      holds =
        List.for_all
          (fun sc ->
            let contenders =
              [
                exec (logging1 sc);
                exec (shadow_pt ~n_pt:1 ~buf:10 sc);
                exec (shadow_pt ~n_pt:2 ~buf:10 sc);
                exec (overwriting sc);
                exec (diff ~strategy:Diff_file.Optimal sc);
              ]
            in
            let best = List.fold_left Float.min infinity contenders in
            exec (logging1 sc) <= 1.05 *. best)
          Scenario.all;
    };
  ]

let failures () = List.filter (fun c -> not c.holds) (all ())
