(** Extension experiments beyond the paper's evaluation.

    The paper's workloads reference pages uniformly, so its page-level
    locking scheduler never becomes visible in the numbers.  These
    experiments add the missing dimensions. *)

val hotspot_contention : unit -> Report.table
(** Skewed reference strings (a small hot region drawing most
    accesses): exclusive locks on hot pages serialize admissions, the
    effective multiprogramming level collapses, and throughput follows
    — for both the bare machine and the best recovery architecture
    (logging). *)

val mixed_size_fairness : unit -> Report.table
(** Small transactions mixed with very large ones: completion time of
    each class under the static-locking admission policy. *)

val open_system_load : unit -> Report.table
(** Poisson arrivals instead of the paper's closed batch: mean and max
    response time as the offered load approaches the machine's
    capacity. *)

val runs : unit -> Experiment.request list
(** Flattened run-level work list (one request per simulation); the
    uniform-skew E1 entries are content-identical to Table 1's runs and
    collapse under {!Experiment.dedup}.  See {!Tables.runs}. *)

val all : ?pool:Dbm_util.Pool.t -> unit -> Report.table list
(** All extensions, in order; with [pool] the individual runs are fanned
    out across its domains first and the tables assembled from the memo
    cache, with a byte-identical result. *)
