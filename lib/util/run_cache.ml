(* Persistent content-addressed result store.

   One file per digest under [dir/<first-2-hex>/<digest>.res].  Each
   entry is a small text header followed by an opaque payload:

     DBM-RUN-CACHE 1\n
     <version>\n
     <payload length in bytes>\n
     <16-hex FNV-1a checksum of the payload>\n
     <payload bytes>

   The version line is the caller's results-schema version: entries
   written by an older schema fail the equality check and read as
   misses, so stale formats self-invalidate without any migration.
   Anything malformed — wrong magic, short file, length mismatch,
   checksum mismatch, unreadable file — is a miss, never an error:
   a corrupt entry costs one recomputation and is then overwritten.

   Writes go to a uniquely-named temp file in the final directory and
   are renamed into place, so readers never observe a partial entry
   (rename is atomic on POSIX).  Concurrent writers of the same digest
   compute identical payloads (runs are deterministic), so whichever
   rename lands last is equivalent. *)

type t = { dir : string; version : string }

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ~dir ~version =
  mkdir_p dir;
  { dir; version }

let dir t = t.dir

let magic = "DBM-RUN-CACHE 1"

let entry_path t ~digest =
  let prefix = if String.length digest >= 2 then String.sub digest 0 2 else "xx" in
  Filename.concat (Filename.concat t.dir prefix) (digest ^ ".res")

let encode t payload =
  Printf.sprintf "%s\n%s\n%d\n%s\n%s" magic t.version (String.length payload)
    (Digest.fnv64_hex payload) payload

let decode t s =
  match
    let e1 = String.index_from s 0 '\n' in
    let e2 = String.index_from s (e1 + 1) '\n' in
    let e3 = String.index_from s (e2 + 1) '\n' in
    let e4 = String.index_from s (e3 + 1) '\n' in
    let header lo hi = String.sub s lo (hi - lo) in
    if header 0 e1 <> magic || header (e1 + 1) e2 <> t.version then None
    else
      let len = int_of_string (header (e2 + 1) e3) in
      if len < 0 || String.length s - (e4 + 1) <> len then None
      else
        let payload = String.sub s (e4 + 1) len in
        if String.equal (Digest.fnv64_hex payload) (header (e3 + 1) e4) then Some payload
        else None
  with
  | r -> r
  | exception _ -> None

let find t ~digest =
  match In_channel.with_open_bin (entry_path t ~digest) In_channel.input_all with
  | exception Sys_error _ -> None
  | s -> decode t s

let tmp_counter = Atomic.make 0

let store t ~digest payload =
  let path = entry_path t ~digest in
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path
      ((Domain.self () :> int))
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (encode t payload));
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
