(** Persistent content-addressed result store.

    Maps a digest (from {!Digest}) to an opaque payload string, one
    file per digest under [dir/<digest-prefix>/<digest>.res], with a
    versioned, checksummed header.  Designed for deterministic
    computations: a hit returns exactly the bytes stored for that
    digest, and anything else — missing file, wrong schema version,
    truncation, corruption — reads as a miss, never an error. *)

type t

val create : dir:string -> version:string -> t
(** Open (creating directories as needed) a store rooted at [dir].
    [version] is the results-schema version stamped into every entry;
    entries stamped with a different version read as misses, so stale
    formats self-invalidate. *)

val dir : t -> string

val find : t -> digest:string -> string option
(** The payload stored for [digest], or [None] on a miss (including
    corrupt, truncated, or wrong-version entries). *)

val store : t -> digest:string -> string -> unit
(** Persist a payload for [digest] (atomic write-then-rename; existing
    entries are overwritten).  I/O failures are swallowed: the cache is
    an accelerator, never a correctness dependency. *)

val entry_path : t -> digest:string -> string
(** The on-disk path an entry for [digest] would use (exposed for
    tests and diagnostics). *)
