(** Persistent EWMA wall-time estimates, keyed by run digest.

    The scheduler ({!Pool.map_ordered_weighted}) wants to start the
    longest runs first; this module remembers how long each run took the
    last few times and answers "how long will this digest take?".  The
    model lives in one small flat file next to the run cache, framed and
    schema-versioned like {!Run_cache}: a damaged, truncated, stale or
    missing file loads as an empty model, never an error — the cost
    model only affects scheduling order, not results.

    All operations are safe to call from any domain. *)

type t

val load : path:string -> version:string -> t
(** Read the model at [path].  Any damage (wrong magic/version, bad
    checksum, truncation, unparseable entries) yields an empty model. *)

val in_memory : version:string -> t
(** A model that is never persisted ({!save} is a no-op); for benches
    and tests that want cost-aware scheduling without touching disk. *)

val path : t -> string
(** The backing file path ([""] for {!in_memory} models). *)

val size : t -> int
(** Number of digests with at least one observation. *)

val estimate : t -> digest:string -> float option
(** Current EWMA wall-time estimate in milliseconds, if any run with
    this digest has ever been observed. *)

val observations : t -> digest:string -> int
(** How many observations the digest's EWMA has absorbed (0 if none). *)

val observe : t -> digest:string -> wall_ms:float -> unit
(** Fold one observed wall time into the digest's EWMA (the first
    observation sets the estimate directly).  Non-finite or negative
    walls are ignored. *)

val save : t -> unit
(** Atomically write the model back to its file (temp file + rename, as
    {!Run_cache}).  I/O errors are swallowed — persistence is purely an
    optimisation. *)

val ewma_alpha : float
(** Weight given to the newest observation (newest-biased smoothing). *)
